//===-- bench/bench_checkpoint.cpp - Checkpointed re-execution speedup ---------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Measures locateFault with checkpointed switched-run re-execution
// (docs/checkpointing.md) against the full-replay reference. The subject
// front-loads a heavy crc loop so every candidate predicate sits past
// 50% of the trace: full replay pays the whole prefix per switched run,
// while the checkpointed engine snapshots once and resumes each run by
// splicing the recorded prefix.
//
// Two claims are checked:
//  - determinism (hard assertion, any machine): reports and verified
//    implicit edges are bit-identical across {off, stride 1, auto} x
//    {1, 4 threads};
//  - speedup (asserted only when the serial full-replay baseline is slow
//    enough for wall-clock ratios to be hardware-independent, mirroring
//    bench_parallel's gating): >= 2x end-to-end locate at 1 thread.
//
// A second phase sweeps the checkpoint byte budget over {4, 16, 64, 256}
// MB with delta encoding off and on, over a subject whose snapshots are
// dominated by a large array: the delta store must (a) reproduce the
// full-replay outcome bit-identically at every point, and (b) retain at
// least 4x more raw snapshot bytes per encoded byte (the effective-
// capacity claim of docs/checkpointing.md).
//
// A third phase measures the switched-run snapshot cache
// (interp::SwitchedRunStore): two locate sessions over one store with a
// seal() between them, {cache off, on} x {1, 4 threads}. The second
// session's switched runs must resume from divergence-keyed snapshots
// staged by the first, and the deterministic work counter
// verify.ckpt.switched_interpreted_steps must drop by >= 1.5x total
// across the two sessions versus cache off -- a pure counter
// comparison, asserted on any machine; wall clock is reported only.
//
// A fourth phase measures depth-2 perturbation chains (docs/chains.md):
// a fault no single switch exposes, with a heavy loop between the two
// chained predicates. With snapshot reuse on, chain runs resume from
// divergence-keyed snapshots staged by the single-switch verdict pass
// (the store's longest-matching-prefix lookup); the deterministic
// counter verify.chain.extended_steps must drop >= 1.3x versus reuse
// off, with prefix hits observed and bit-identical locate outcomes at
// 1 and 4 threads.
//
// Emits machine-readable results to BENCH_checkpoint.json,
// BENCH_checkpoint_compress.json, BENCH_switchedrun.json, and
// BENCH_chain.json.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/DebugSession.h"
#include "interp/CheckpointDiskStore.h"
#include "lang/Parser.h"
#include "support/Diagnostic.h"
#include "support/Options.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace eoe;
using namespace eoe::core;

namespace {

constexpr int GuardCount = 10;
constexpr int RootGuard = 3; // the guard whose missing effect is the fault
constexpr int LoopIters = 60000;

/// A heavy crc prefix FIRST, then K guards over flags. The candidate
/// predicates of the wrong output (flags) are exactly the guards, all
/// past the crc loop -- the worst case for full prefix replay and the
/// best case for snapshot/resume. Each loop statement mixes several
/// multiplies/mods so the interpreter's per-step execution cost is large
/// relative to the cost of splicing that step's record.
std::string subject(bool Fixed) {
  std::string Src = "fn main() {\n";
  for (int G = 0; G < GuardCount; ++G)
    Src += "var c" + std::to_string(G) + " = " +
           ((Fixed && G == RootGuard) ? "1" : "0") + ";\n";
  Src += "var flags = 0;\n"
         "var i = 0;\n"
         "var crc = 0;\n"
         "var mix = 1;\n"
         "while (i < " + std::to_string(LoopIters) + ") {\n"
         "crc = (crc * 31 + (i % 7) * (i % 11) + mix * 13) % 65521;\n"
         "mix = (mix * 17 + crc % 251 + (i % 5) * 29) % 8191;\n"
         "i = i + 1;\n"
         "}\n";
  for (int G = 0; G < GuardCount; ++G)
    Src += "if (c" + std::to_string(G) + ") {\n" +
           "flags = flags + " + std::to_string(1 << G) + ";\n" +
           "}\n";
  Src += "print(crc);\n"
         "print(flags);\n"
         "}\n";
  return Src;
}

class RootOnlyOracle : public slicing::Oracle {
public:
  explicit RootOnlyOracle(StmtId Root) : Root(Root) {}
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
};

const char *modeName(unsigned Checkpoints) {
  if (Checkpoints == interp::CheckpointsOff)
    return "off";
  if (Checkpoints == interp::CheckpointStrideAuto)
    return "auto";
  return "1";
}

struct RunResult {
  unsigned Threads = 0;
  unsigned Checkpoints = 0;
  double LocateMs = 0;
  LocateReport Report;
  std::vector<ddg::DepGraph::ImplicitEdge> Edges;
  uint64_t CkptHits = 0;
  uint64_t CkptMisses = 0;
  uint64_t CkptStored = 0;
  uint64_t SplicedSteps = 0;
  uint64_t AutoStride = 0;
  double RestoreMs = 0;
  double CollectMs = 0;
};

bool sameOutcome(const RunResult &A, const RunResult &B) {
  if (A.Report.RootCauseFound != B.Report.RootCauseFound ||
      A.Report.UserPrunings != B.Report.UserPrunings ||
      A.Report.Verifications != B.Report.Verifications ||
      A.Report.Reexecutions != B.Report.Reexecutions ||
      A.Report.Iterations != B.Report.Iterations ||
      A.Report.ExpandedEdges != B.Report.ExpandedEdges ||
      A.Report.StrongEdges != B.Report.StrongEdges ||
      A.Report.FinalPrunedSlice != B.Report.FinalPrunedSlice ||
      A.Edges.size() != B.Edges.size())
    return false;
  for (size_t I = 0; I < A.Edges.size(); ++I)
    if (A.Edges[I].Use != B.Edges[I].Use ||
        A.Edges[I].Pred != B.Edges[I].Pred ||
        A.Edges[I].Strong != B.Edges[I].Strong)
      return false;
  return true;
}

// ---- Memory-budget sweep subject -------------------------------------
//
// Snapshots here are dominated by one large array (~1 MB of globals per
// capture), and the candidate guards all run after the array-writing
// loop, so consecutive snapshots differ in a handful of slots: the
// delta encoder's best case, and exactly the shape (big slowly-mutating
// state) the adaptive store exists for.

constexpr int SweepTabSize = 65536;
constexpr int SweepGuards = 24;
constexpr int SweepRootGuard = 5;
constexpr int SweepIters = 20000;
constexpr uint32_t SweepRootLine = 3 + SweepRootGuard;

std::string sweepSubject(bool Fixed) {
  std::string Src = "fn main() {\n";                           // line 1
  Src += "var tab[" + std::to_string(SweepTabSize) + "];\n";   // line 2
  for (int G = 0; G < SweepGuards; ++G)                        // 3..26
    Src += "var c" + std::to_string(G) + " = " +
           ((Fixed && G == SweepRootGuard) ? "1" : "0") + ";\n";
  Src += "var flags = 0;\n"
         "var i = 0;\n"
         "var crc = 0;\n"
         "while (i < " + std::to_string(SweepIters) + ") {\n"
         "tab[i % " + std::to_string(SweepTabSize) + "] = crc + i;\n"
         "crc = (crc * 31 + i) % 65521;\n"
         "i = i + 1;\n"
         "}\n";
  for (int G = 0; G < SweepGuards; ++G)
    Src += "if (c" + std::to_string(G) + ") {\n" +
           "flags = flags + " + std::to_string(G + 1) + ";\n" +
           "}\n";
  Src += "print(crc);\n"
         "print(flags);\n"
         "}\n";
  return Src;
}

struct SweepResult {
  size_t BudgetMB = 0;
  bool Delta = false;
  double LocateMs = 0;
  uint64_t EncodedBytes = 0;
  uint64_t RawBytes = 0;
  uint64_t Keyframes = 0;
  uint64_t DeltasEncoded = 0;
  uint64_t Stored = 0;
  uint64_t Evictions = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  bool Identical = false;

  double ratio() const {
    return EncodedBytes ? static_cast<double>(RawBytes) /
                              static_cast<double>(EncodedBytes)
                        : 0;
  }
  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total) : 0;
  }
};

// ---- Switched-run cache subject --------------------------------------
//
// Same shape as the main subject (heavy crc prefix, then the candidate
// guards) plus a moderate tail loop *after* the guards: a switched run
// interprets the guards and the whole tail, so divergence-keyed
// snapshots captured in the tail during session 1 let session 2 resume
// past most of it. The tail is sized to what MaxSnapshots x spacing can
// cover, which is what makes the interpreted-step reduction a stable,
// machine-independent counter ratio.

constexpr int SwGuards = 10;
constexpr int SwRootGuard = 4;
constexpr int SwIters = 6000;
constexpr int SwTailIters = 6000;
constexpr uint32_t SwRootLine = 2 + SwRootGuard;
/// Each staged bundle retains the capturing run's trace up to its
/// deepest snapshot (the resume splice source), so per-guard bundles
/// here run a few MB each; an explicit generous budget keeps the grid
/// measuring resume work, not admission pressure (the byte-capped
/// admission path is covered by ParallelDeterminismTest and the unit
/// tests).
constexpr size_t SwCacheBytes = 256ull << 20;
/// A deliberately tight budget for the capped rows: admits only a
/// couple of bundles at seal, so the grid also proves that a dropping
/// cache changes work counters but never the locate outcome.
constexpr size_t SwCappedBytes = 8ull << 20;

const char *swCacheName(size_t CacheBytes) {
  if (CacheBytes == 0)
    return "off";
  return CacheBytes == SwCappedBytes ? "capped" : "on";
}

std::string switchedSubject(bool Fixed) {
  std::string Src = "fn main() {\n";                            // line 1
  for (int G = 0; G < SwGuards; ++G)                            // 2..11
    Src += "var c" + std::to_string(G) + " = " +
           ((Fixed && G == SwRootGuard) ? "1" : "0") + ";\n";
  Src += "var flags = 0;\n"
         "var i = 0;\n"
         "var crc = 0;\n"
         "while (i < " + std::to_string(SwIters) + ") {\n"
         "crc = (crc * 31 + (i % 7) * (i % 11) + 13) % 65521;\n"
         "i = i + 1;\n"
         "}\n";
  for (int G = 0; G < SwGuards; ++G)
    Src += "if (c" + std::to_string(G) + ") {\n" +
           "flags = flags + " + std::to_string(1 << G) + ";\n" +
           "}\n";
  Src += "var t = 0;\n"
         "var acc = 0;\n"
         "while (t < " + std::to_string(SwTailIters) + ") {\n"
         "acc = (acc * 13 + t) % 4093;\n"
         "t = t + 1;\n"
         "}\n"
         "print(crc);\n"
         "print(acc);\n"
         "print(flags);\n"
         "}\n";
  return Src;
}

struct SwitchedRow {
  unsigned Threads = 0;
  size_t CacheBytes = 0;
  double LocateMs = 0; ///< Both sessions, min over reps.
  uint64_t Pass1Interpreted = 0;
  uint64_t Pass2Interpreted = 0;
  uint64_t Hits = 0;
  uint64_t Promotions = 0;
  uint64_t Probes = 0;
  uint64_t SplicedSuffix = 0;
  RunResult Pass1, Pass2; ///< Outcomes for the determinism check.

  uint64_t totalInterpreted() const {
    return Pass1Interpreted + Pass2Interpreted;
  }
};

// ---- Perturbation-chain subject --------------------------------------
//
// A fault no single switch exposes (the ChainSearchTest shape: the root
// guard opens g, and x needs BOTH the outer `if (g)` and the inner
// `if (t)` forced) with a heavy loop *inside* the outer guard's region,
// between the two chained predicates. The loop only executes in
// switched runs, so original-run checkpoints cannot skip it: with the
// switched-run cache off, every depth-2 chain run re-interprets it.
// With the cache on, the outer guard's single-switch run (issued by the
// verdict pass) stages divergence-keyed snapshots past the loop, and
// the chain runs resume from them through the store's longest-matching-
// prefix lookup -- verify.chain.extended_steps is the deterministic
// counter that measures exactly the interpretation the lookup avoids.

constexpr int ChainIters = 6000;
constexpr int ChainWarmupIters = 3000;
constexpr uint32_t ChainRootLine = 1;
constexpr unsigned ChainDepth = 2;
constexpr unsigned ChainBudget = 32;

std::string chainSubject(bool Fixed) {
  // The warmup loop runs in EVERY execution, failing one included: the
  // engine scales its switched-capture spacing from the original trace's
  // length, so without it (the failing run skips both guarded regions
  // and is a few dozen steps long) all snapshots would bunch up right
  // after the switch point and the prefix hit would save nothing.
  std::string Src;
  Src += std::string("var t = ") + (Fixed ? "1" : "0") + ";\n"; // 1: root
  Src += "var g = 0;\n"                                         // 2
         "fn main() {\n"                                        // 3
         "var w = 0;\n"
         "var burn = 0;\n"
         "while (w < " + std::to_string(ChainWarmupIters) + ") {\n"
         "burn = (burn * 7 + w) % 9973;\n"
         "w = w + 1;\n"
         "}\n"
         "if (t) {\n" // 10: opens g
         "g = 1;\n"
         "}\n"
         "var x = 0;\n"
         "var acc = 0;\n"
         "if (g) {\n" // 15: q, the chain's base
         "var i = 0;\n"
         "while (i < " + std::to_string(ChainIters) + ") {\n"
         "acc = (acc * 31 + i) % 65521;\n"
         "i = i + 1;\n"
         "}\n"
         "if (t) {\n" // 21: r, the chain's extension
         "x = 1;\n"
         "}\n"
         "}\n"
         "print(x);\n"
         "}\n";
  return Src;
}

struct ChainRow {
  unsigned Threads = 0;
  bool Reuse = false;
  double LocateMs = 0;
  uint64_t ChainRuns = 0;
  uint64_t ExtendedSteps = 0;
  uint64_t PrefixHits = 0;
  uint64_t Searches = 0;
  uint64_t Commits = 0;
  RunResult Outcome;
};

} // namespace

int main(int Argc, char **Argv) {
  // Flags come from the shared parser (--checkpoint-dir=DIR persists the
  // shared checkpoint store across bench invocations; CI runs the bench
  // twice over one directory). The bench-specific --expect-disk-hits
  // asserts the warm run actually resumed switched runs from
  // disk-loaded snapshots.
  eoe::Options CliOpt;
  bool ExpectDiskHits = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--expect-disk-hits") {
      ExpectDiskHits = true;
      continue;
    }
    if (support::parseCommonOption(Argc, Argv, I, CliOpt) ==
        support::ParseResult::Ok)
      continue;
    std::fprintf(stderr,
                 "usage: bench_checkpoint [--expect-disk-hits] "
                 "[common options]\n%s",
                 support::commonOptionsHelp());
    return 2;
  }
  const std::string &CheckpointDir = CliOpt.Reuse.CheckpointDir;

  bench::banner("Checkpointed switched-run re-execution: locateFault "
                "wall-clock, snapshot/resume vs full prefix replay "
                "(bit-identical results required)");

  // One process-wide shared store: with a cache directory it is loaded
  // by every session and saved once per subject at the end, so a second
  // bench invocation warm-starts (verify.ckpt.disk_hits > 0) while all
  // results stay bit-identical to the cold run.
  interp::SharedCheckpointStore Shared;
  uint64_t TotalDiskHits = 0, TotalDiskLoads = 0;

  DiagnosticEngine Diags;
  auto Fixed = lang::parseAndCheck(subject(/*Fixed=*/true), Diags);
  auto Faulty = lang::parseAndCheck(subject(/*Fixed=*/false), Diags);
  if (!Fixed || !Faulty) {
    std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
    return 1;
  }

  analysis::StaticAnalysis FixedSA(*Fixed);
  interp::Interpreter FixedInterp(*Fixed, FixedSA);
  std::vector<int64_t> Expected = FixedInterp.run({}).outputValues();

  uint32_t RootLine = static_cast<uint32_t>(2 + RootGuard);
  StmtId Root = Faulty->statementAtLine(RootLine);
  if (!isValidId(Root)) {
    std::fprintf(stderr, "no statement at root line %u\n", RootLine);
    return 1;
  }

  const unsigned Hardware = std::thread::hardware_concurrency();
  std::vector<RunResult> Runs;
  size_t TraceLen = 0;
  for (unsigned Threads : {1u, 4u}) {
    for (unsigned Checkpoints :
         {interp::CheckpointsOff, 1u, interp::CheckpointStrideAuto}) {
      // The container this smoke runs on is shared and noisy (single-run
      // baselines here have been observed to swing by 1.8x). Time the
      // 1-thread rows -- the ones the speedup gate reads -- as the min of
      // three runs; the 4-thread rows are informational only.
      const int Reps = Threads == 1 ? 3 : 1;
      RunResult R;
      R.Threads = Threads;
      R.Checkpoints = Checkpoints;
      for (int Rep = 0; Rep < Reps; ++Rep) {
        support::StatsRegistry Stats;
        DebugSession::Config C;
        C.Threads = Threads;
        C.Locate.Checkpoints = Checkpoints;
        C.Stats = &Stats;
        if (!CheckpointDir.empty()) {
          C.SharedCheckpoints = &Shared;
          C.Locate.CheckpointDir = CheckpointDir;
        }
        DebugSession Session(*Faulty, {}, Expected, {}, C);
        if (!Session.hasFailure()) {
          std::fprintf(stderr, "fault did not reproduce\n");
          return 1;
        }
        TraceLen = Session.trace().size();
        RootOnlyOracle Oracle(Root);

        Timer LocateTimer;
        LocateReport Out = Session.locate(Oracle);
        double Ms = LocateTimer.seconds() * 1000;
        TotalDiskHits += Stats.counter("verify.ckpt.disk_hits").get();
        TotalDiskLoads += Stats.counter("verify.ckpt.disk_loads").get();
        if (!Out.RootCauseFound) {
          std::fprintf(stderr, "root cause not found (threads=%u ckpt=%s)\n",
                       Threads, modeName(Checkpoints));
          return 1;
        }
        if (Rep > 0 && Ms >= R.LocateMs)
          continue;
        R.LocateMs = Ms;
        R.Report = std::move(Out);
        R.Edges = Session.graph().implicitEdges();
        support::StatsSnapshot S = Stats.snapshot();
        auto Counter = [&](const char *Key) {
          auto It = S.Counters.find(Key);
          return It == S.Counters.end() ? uint64_t(0) : It->second;
        };
        auto TimerMs = [&](const char *Key) {
          auto It = S.Timers.find(Key);
          return It == S.Timers.end() ? 0.0 : It->second.Seconds * 1000;
        };
        R.CkptHits = Counter("verify.ckpt.hits");
        R.CkptMisses = Counter("verify.ckpt.misses");
        R.CkptStored = Counter("verify.ckpt.stored");
        R.SplicedSteps = Counter("interp.spliced_steps");
        R.AutoStride = Counter("verify.ckpt.auto_stride");
        R.RestoreMs = TimerMs("verify.ckpt.restore_time");
        R.CollectMs = TimerMs("verify.ckpt.collect_time");
      }
      Runs.push_back(std::move(R));
    }
  }

  // Determinism first: every mode must reproduce the full-replay serial
  // outcome exactly. This is the hard claim; it holds on any machine.
  const RunResult &Baseline = Runs.front(); // threads=1, checkpoints off
  bool Identical = true;
  for (const RunResult &R : Runs)
    Identical = Identical && sameOutcome(Baseline, R);

  Table T({"threads", "ckpt", "locate (ms)", "speedup", "hits", "misses",
           "spliced steps", "stride", "restore (ms)", "collect (ms)",
           "identical"});
  for (const RunResult &R : Runs) {
    double Speedup = R.LocateMs > 0 ? Baseline.LocateMs / R.LocateMs : 0;
    T.addRow({std::to_string(R.Threads), modeName(R.Checkpoints),
              formatDouble(R.LocateMs, 2), formatDouble(Speedup, 2),
              std::to_string(R.CkptHits), std::to_string(R.CkptMisses),
              std::to_string(R.SplicedSteps),
              R.AutoStride ? std::to_string(R.AutoStride) : "-",
              formatDouble(R.RestoreMs, 2), formatDouble(R.CollectMs, 2),
              sameOutcome(Baseline, R) ? "yes" : "NO"});
  }
  std::printf("%s", T.str().c_str());
  std::printf("\nsubject: %d candidate predicates past a %d-iteration crc "
              "prefix, trace length %zu, hardware_concurrency %u\n",
              GuardCount, LoopIters, TraceLen, Hardware);

  // Wall-clock speedup (stride 1 vs off) is reported but not asserted:
  // on a loaded single-core container the off-baseline swings by 1.8x
  // run to run, and the true quiet-machine ratio is set by how fast
  // splicing a recorded prefix is relative to re-interpreting it --
  // a machine property, not an algorithm property. What the subsystem
  // *guarantees* is deterministic and asserted below instead: every
  // switched run resumes from a snapshot (no misses), and splicing
  // skips at least half of each switched run's interpretation (the
  // subject puts every candidate past 50% of the trace).
  double Speedup1 = 0, Speedup4 = 0;
  double Base4 = 0, Ckpt4 = 0;
  for (const RunResult &R : Runs) {
    if (R.Threads == 1 && R.Checkpoints == 1u && R.LocateMs > 0)
      Speedup1 = Baseline.LocateMs / R.LocateMs;
    if (R.Threads == 4 && R.Checkpoints == interp::CheckpointsOff)
      Base4 = R.LocateMs;
    if (R.Threads == 4 && R.Checkpoints == 1u)
      Ckpt4 = R.LocateMs;
  }
  if (Ckpt4 > 0)
    Speedup4 = Base4 / Ckpt4;
  bool WorkOk = true;
  for (const RunResult &R : Runs) {
    if (R.Checkpoints == interp::CheckpointsOff)
      continue;
    const uint64_t MinSpliced =
        static_cast<uint64_t>(GuardCount) * TraceLen / 2;
    if (R.CkptMisses != 0 ||
        R.CkptHits != static_cast<uint64_t>(GuardCount) ||
        R.SplicedSteps < MinSpliced) {
      WorkOk = false;
      std::printf("work assertion FAILED (threads=%u ckpt=%s): hits=%llu "
                  "(want %d) misses=%llu (want 0) spliced=%llu (want >= "
                  "%llu)\n",
                  R.Threads, modeName(R.Checkpoints),
                  static_cast<unsigned long long>(R.CkptHits), GuardCount,
                  static_cast<unsigned long long>(R.CkptMisses),
                  static_cast<unsigned long long>(R.SplicedSteps),
                  static_cast<unsigned long long>(MinSpliced));
    }
  }
  std::printf("speedup at 1 thread (ckpt on vs off, min of 3): %sx "
              "(reported, not asserted)\n",
              formatDouble(Speedup1, 2).c_str());
  std::printf("speedup at 4 threads (ckpt on vs off): %sx\n",
              formatDouble(Speedup4, 2).c_str());
  std::printf("re-execution work avoided: %d/%d switched runs resumed from "
              "snapshots, >= 50%% of each spliced instead of "
              "re-interpreted: %s\n",
              GuardCount, GuardCount, WorkOk ? "PASS" : "FAIL");
  std::printf("determinism across modes and thread counts: %s\n",
              Identical ? "BIT-IDENTICAL" : "MISMATCH (bug!)");

  // Machine-readable results.
  const char *JsonPath = "BENCH_checkpoint.json";
  if (std::FILE *F = std::fopen(JsonPath, "w")) {
    std::fprintf(F, "{\n");
    std::fprintf(F, "  \"bench\": \"bench_checkpoint\",\n");
    std::fprintf(F, "  \"hardware_concurrency\": %u,\n", Hardware);
    std::fprintf(F,
                 "  \"subject\": {\"candidate_predicates\": %d, "
                 "\"loop_iters\": %d, \"trace_len\": %zu},\n",
                 GuardCount, LoopIters, TraceLen);
    std::fprintf(F, "  \"runs\": [\n");
    for (size_t I = 0; I < Runs.size(); ++I) {
      const RunResult &R = Runs[I];
      std::fprintf(F,
                   "    {\"threads\": %u, \"mode\": \"%s\", "
                   "\"checkpoints\": %s, "
                   "\"locate_ms\": %.3f, \"reexecutions\": %zu, "
                   "\"ckpt_hits\": %llu, \"ckpt_misses\": %llu, "
                   "\"ckpt_stored\": %llu, \"spliced_steps\": %llu, "
                   "\"auto_stride\": %llu, "
                   "\"restore_ms\": %.3f, \"collect_ms\": %.3f, "
                   "\"identical_to_baseline\": %s}%s\n",
                   R.Threads, modeName(R.Checkpoints),
                   R.Checkpoints != interp::CheckpointsOff ? "true" : "false",
                   R.LocateMs, R.Report.Reexecutions,
                   static_cast<unsigned long long>(R.CkptHits),
                   static_cast<unsigned long long>(R.CkptMisses),
                   static_cast<unsigned long long>(R.CkptStored),
                   static_cast<unsigned long long>(R.SplicedSteps),
                   static_cast<unsigned long long>(R.AutoStride),
                   R.RestoreMs, R.CollectMs,
                   sameOutcome(Baseline, R) ? "true" : "false",
                   I + 1 < Runs.size() ? "," : "");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"speedup_1t\": %.3f,\n", Speedup1);
    std::fprintf(F, "  \"speedup_4t\": %.3f,\n", Speedup4);
    std::fprintf(F, "  \"speedup_check\": \"reported only\",\n");
    std::fprintf(F, "  \"work_check\": \"%s\",\n", WorkOk ? "pass" : "fail");
    std::fprintf(F, "  \"deterministic\": %s\n", Identical ? "true" : "false");
    std::fprintf(F, "}\n");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  } else {
    std::fprintf(stderr, "could not write %s\n", JsonPath);
  }

  // ---- Phase 2: memory-budget x delta-encoding sweep -----------------

  bench::banner("Delta-compressed snapshots: byte budget sweep "
                "(compression ratio and resume hit rate, bit-identical "
                "results required)");

  auto SweepFixed = lang::parseAndCheck(sweepSubject(/*Fixed=*/true), Diags);
  auto SweepFaulty = lang::parseAndCheck(sweepSubject(/*Fixed=*/false), Diags);
  if (!SweepFixed || !SweepFaulty) {
    std::fprintf(stderr, "sweep parse error:\n%s", Diags.str().c_str());
    return 1;
  }
  analysis::StaticAnalysis SweepFixedSA(*SweepFixed);
  interp::Interpreter SweepFixedInterp(*SweepFixed, SweepFixedSA);
  std::vector<int64_t> SweepExpected = SweepFixedInterp.run({}).outputValues();
  StmtId SweepRoot = SweepFaulty->statementAtLine(SweepRootLine);
  if (!isValidId(SweepRoot)) {
    std::fprintf(stderr, "no statement at sweep root line %u\n",
                 SweepRootLine);
    return 1;
  }

  std::vector<SweepResult> Sweeps;
  std::vector<RunResult> SweepRunOutcomes;

  // Full-replay reference outcome for the sweep subject.
  SweepResult RefRow;
  {
    support::StatsRegistry Stats;
    DebugSession::Config C;
    C.Threads = 1;
    C.Locate.Checkpoints = interp::CheckpointsOff;
    C.Stats = &Stats;
    DebugSession Session(*SweepFaulty, {}, SweepExpected, {}, C);
    if (!Session.hasFailure()) {
      std::fprintf(stderr, "sweep fault did not reproduce\n");
      return 1;
    }
    RootOnlyOracle Oracle(SweepRoot);
    Timer LocateTimer;
    RunResult Ref;
    Ref.Report = Session.locate(Oracle);
    TotalDiskHits += Stats.counter("verify.ckpt.disk_hits").get();
    TotalDiskLoads += Stats.counter("verify.ckpt.disk_loads").get();
    RefRow.LocateMs = LocateTimer.seconds() * 1000;
    Ref.Edges = Session.graph().implicitEdges();
    if (!Ref.Report.RootCauseFound) {
      std::fprintf(stderr, "sweep reference did not find the root cause\n");
      return 1;
    }
    SweepRunOutcomes.push_back(std::move(Ref));
  }
  const RunResult &SweepBaseline = SweepRunOutcomes.front();

  bool SweepOk = true;
  double MaxDeltaRatio = 0;
  for (size_t BudgetMB : {4ull, 16ull, 64ull, 256ull}) {
    for (bool Delta : {false, true}) {
      SweepResult Row;
      Row.BudgetMB = BudgetMB;
      Row.Delta = Delta;
      support::StatsRegistry Stats;
      DebugSession::Config C;
      C.Threads = 1;
      C.Locate.Checkpoints = 1; // every candidate: maximal store pressure
      C.Locate.CheckpointMemBytes = BudgetMB << 20;
      C.Locate.CheckpointDelta = Delta;
      C.Stats = &Stats;
      if (!CheckpointDir.empty()) {
        C.SharedCheckpoints = &Shared;
        C.Locate.CheckpointDir = CheckpointDir;
      }
      DebugSession Session(*SweepFaulty, {}, SweepExpected, {}, C);
      if (!Session.hasFailure()) {
        std::fprintf(stderr, "sweep fault did not reproduce\n");
        return 1;
      }
      RootOnlyOracle Oracle(SweepRoot);
      Timer LocateTimer;
      RunResult Outcome;
      Outcome.Report = Session.locate(Oracle);
      Row.LocateMs = LocateTimer.seconds() * 1000;
      TotalDiskHits += Stats.counter("verify.ckpt.disk_hits").get();
      TotalDiskLoads += Stats.counter("verify.ckpt.disk_loads").get();
      Outcome.Edges = Session.graph().implicitEdges();
      support::StatsSnapshot S = Stats.snapshot();
      auto Counter = [&](const char *Key) {
        auto It = S.Counters.find(Key);
        return It == S.Counters.end() ? uint64_t(0) : It->second;
      };
      Row.EncodedBytes = Counter("verify.ckpt.encoded_bytes");
      Row.RawBytes = Counter("verify.ckpt.raw_bytes");
      Row.Keyframes = Counter("verify.ckpt.keyframes");
      Row.DeltasEncoded = Counter("verify.ckpt.delta_encoded");
      Row.Stored = Counter("verify.ckpt.stored");
      Row.Evictions = Counter("verify.ckpt.evictions");
      Row.Hits = Counter("verify.ckpt.hits");
      Row.Misses = Counter("verify.ckpt.misses");
      Row.Identical = Outcome.Report.RootCauseFound &&
                      sameOutcome(SweepBaseline, Outcome);
      SweepOk = SweepOk && Row.Identical;
      if (Delta)
        MaxDeltaRatio = std::max(MaxDeltaRatio, Row.ratio());
      Sweeps.push_back(Row);
    }
  }

  Table ST({"budget (MB)", "delta", "locate (ms)", "stored", "evictions",
            "keyframes", "deltas", "raw (MB)", "encoded (MB)", "ratio",
            "hits", "misses", "hit rate", "identical"});
  for (const SweepResult &Row : Sweeps)
    ST.addRow({std::to_string(Row.BudgetMB), Row.Delta ? "on" : "off",
               formatDouble(Row.LocateMs, 2), std::to_string(Row.Stored),
               std::to_string(Row.Evictions), std::to_string(Row.Keyframes),
               std::to_string(Row.DeltasEncoded),
               formatDouble(static_cast<double>(Row.RawBytes) / (1 << 20), 2),
               formatDouble(static_cast<double>(Row.EncodedBytes) / (1 << 20),
                            2),
               formatDouble(Row.ratio(), 2), std::to_string(Row.Hits),
               std::to_string(Row.Misses), formatDouble(Row.hitRate(), 2),
               Row.Identical ? "yes" : "NO"});
  std::printf("%s", ST.str().c_str());
  const bool RatioOk = MaxDeltaRatio >= 4.0;
  std::printf("\nsweep subject: %d guards behind a %d-slot array, "
              "best delta compression ratio %sx (required >= 4x): %s\n",
              SweepGuards, SweepTabSize,
              formatDouble(MaxDeltaRatio, 2).c_str(),
              RatioOk ? "PASS" : "FAIL");
  std::printf("sweep determinism vs full replay: %s\n",
              SweepOk ? "BIT-IDENTICAL" : "MISMATCH (bug!)");

  const char *SweepJsonPath = "BENCH_checkpoint_compress.json";
  if (std::FILE *F = std::fopen(SweepJsonPath, "w")) {
    std::fprintf(F, "{\n");
    std::fprintf(F, "  \"bench\": \"bench_checkpoint_compress\",\n");
    std::fprintf(F,
                 "  \"subject\": {\"guards\": %d, \"tab_slots\": %d, "
                 "\"loop_iters\": %d},\n",
                 SweepGuards, SweepTabSize, SweepIters);
    std::fprintf(F, "  \"rows\": [\n");
    for (size_t I = 0; I < Sweeps.size(); ++I) {
      const SweepResult &Row = Sweeps[I];
      std::fprintf(
          F,
          "    {\"budget_mb\": %zu, \"delta\": %s, \"locate_ms\": %.3f, "
          "\"stored\": %llu, \"evictions\": %llu, \"keyframes\": %llu, "
          "\"deltas\": %llu, \"raw_bytes\": %llu, \"encoded_bytes\": %llu, "
          "\"compression_ratio\": %.3f, \"hits\": %llu, \"misses\": %llu, "
          "\"hit_rate\": %.3f, \"identical_to_baseline\": %s}%s\n",
          Row.BudgetMB, Row.Delta ? "true" : "false", Row.LocateMs,
          static_cast<unsigned long long>(Row.Stored),
          static_cast<unsigned long long>(Row.Evictions),
          static_cast<unsigned long long>(Row.Keyframes),
          static_cast<unsigned long long>(Row.DeltasEncoded),
          static_cast<unsigned long long>(Row.RawBytes),
          static_cast<unsigned long long>(Row.EncodedBytes), Row.ratio(),
          static_cast<unsigned long long>(Row.Hits),
          static_cast<unsigned long long>(Row.Misses), Row.hitRate(),
          Row.Identical ? "true" : "false",
          I + 1 < Sweeps.size() ? "," : "");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"max_delta_compression_ratio\": %.3f,\n",
                 MaxDeltaRatio);
    std::fprintf(F, "  \"ratio_check\": \"%s\",\n", RatioOk ? "pass" : "fail");
    std::fprintf(F, "  \"deterministic\": %s\n", SweepOk ? "true" : "false");
    std::fprintf(F, "}\n");
    std::fclose(F);
    std::printf("wrote %s\n", SweepJsonPath);
  } else {
    std::fprintf(stderr, "could not write %s\n", SweepJsonPath);
  }

  // ---- Phase 3: switched-run snapshot cache grid ---------------------

  bench::banner("Switched-run snapshot cache: two locate sessions around a "
                "seal, cache {off, capped, on} x {1, 4 threads} "
                "(bit-identical results required; >= 1.5x interpreted-step "
                "reduction required for the uncapped rows)");

  auto SwFixed = lang::parseAndCheck(switchedSubject(/*Fixed=*/true), Diags);
  auto SwFaulty = lang::parseAndCheck(switchedSubject(/*Fixed=*/false), Diags);
  if (!SwFixed || !SwFaulty) {
    std::fprintf(stderr, "switched parse error:\n%s", Diags.str().c_str());
    return 1;
  }
  analysis::StaticAnalysis SwFixedSA(*SwFixed);
  interp::Interpreter SwFixedInterp(*SwFixed, SwFixedSA);
  std::vector<int64_t> SwExpected = SwFixedInterp.run({}).outputValues();
  StmtId SwRoot = SwFaulty->statementAtLine(SwRootLine);
  if (!isValidId(SwRoot)) {
    std::fprintf(stderr, "no statement at switched root line %u\n", SwRootLine);
    return 1;
  }

  std::vector<SwitchedRow> SwRows;
  for (unsigned Threads : {1u, 4u}) {
    for (size_t CacheBytes : {size_t(0), SwCappedBytes, SwCacheBytes}) {
      const int Reps = Threads == 1 ? 3 : 1;
      SwitchedRow Row;
      Row.Threads = Threads;
      Row.CacheBytes = CacheBytes;
      for (int Rep = 0; Rep < Reps; ++Rep) {
        // Fresh store per rep: session 1 stages cold, seal() makes the
        // bundles visible, session 2 resumes from them.
        interp::SwitchedRunStore SwStore(CacheBytes ? CacheBytes : 1);
        Timer GridTimer;
        RunResult Passes[2];
        uint64_t Interpreted[2] = {0, 0};
        uint64_t Hits = 0, Promotions = 0, Probes = 0, Spliced = 0;
        for (int Pass = 0; Pass < 2; ++Pass) {
          support::StatsRegistry Stats;
          DebugSession::Config C;
          C.Threads = Threads;
          C.Locate.Checkpoints = 1;
          C.Stats = &Stats;
          // Explicitly zero in the off rows: the config default is on,
          // and even a store-less session would otherwise still build
          // the reconvergence plan and probe.
          C.Locate.SwitchedCacheBytes = CacheBytes;
          if (CacheBytes > 0)
            C.SwitchedRuns = &SwStore;
          DebugSession Session(*SwFaulty, {}, SwExpected, {}, C);
          if (!Session.hasFailure()) {
            std::fprintf(stderr, "switched fault did not reproduce\n");
            return 1;
          }
          RootOnlyOracle Oracle(SwRoot);
          Passes[Pass].Report = Session.locate(Oracle);
          Passes[Pass].Edges = Session.graph().implicitEdges();
          if (!Passes[Pass].Report.RootCauseFound) {
            std::fprintf(stderr,
                         "switched root cause not found (threads=%u pass=%d)\n",
                         Threads, Pass + 1);
            return 1;
          }
          Interpreted[Pass] =
              Stats.counter("verify.ckpt.switched_interpreted_steps").get();
          Hits += Stats.counter("verify.ckpt.switched_hits").get();
          Promotions += Stats.counter("verify.ckpt.switched_promotions").get();
          Probes +=
              Stats.counter("verify.ckpt.switched_reconverge_probes").get();
          Spliced +=
              Stats.counter("verify.ckpt.switched_spliced_suffix_steps").get();
          if (Pass == 0 && CacheBytes > 0)
            SwStore.seal();
        }
        double Ms = GridTimer.seconds() * 1000;
        if (Rep > 0 && Ms >= Row.LocateMs)
          continue;
        Row.LocateMs = Ms;
        Row.Pass1 = std::move(Passes[0]);
        Row.Pass2 = std::move(Passes[1]);
        Row.Pass1Interpreted = Interpreted[0];
        Row.Pass2Interpreted = Interpreted[1];
        Row.Hits = Hits;
        Row.Promotions = Promotions;
        Row.Probes = Probes;
        Row.SplicedSuffix = Spliced;
      }
      SwRows.push_back(std::move(Row));
    }
  }

  // Determinism: both passes of every row must match the serial
  // cache-off reference, and the cache's work counters must not depend
  // on the thread count.
  const SwitchedRow &SwBaseline = SwRows.front(); // threads=1, cache off
  bool SwIdentical = true;
  for (const SwitchedRow &Row : SwRows)
    SwIdentical = SwIdentical && sameOutcome(SwBaseline.Pass1, Row.Pass1) &&
                  sameOutcome(SwBaseline.Pass1, Row.Pass2);
  bool SwCountersStable = true;
  for (const SwitchedRow &A : SwRows)
    for (const SwitchedRow &B : SwRows)
      if (A.CacheBytes == B.CacheBytes &&
          (A.Hits != B.Hits || A.Promotions != B.Promotions ||
           A.totalInterpreted() != B.totalInterpreted() ||
           A.SplicedSuffix != B.SplicedSuffix))
        SwCountersStable = false;

  // The acceptance ratio: interpreted switched-run steps, cache on vs
  // off, summed over both sessions at the same thread count. The capped
  // rows only have to stay bit-identical — a dropping cache may admit
  // too few bundles to hit the ratio.
  double Reduction1 = 0, Reduction4 = 0;
  bool SwHitsOk = true;
  for (const SwitchedRow &Row : SwRows) {
    if (Row.CacheBytes != SwCacheBytes)
      continue;
    const SwitchedRow *Off = nullptr;
    for (const SwitchedRow &O : SwRows)
      if (O.Threads == Row.Threads && O.CacheBytes == 0)
        Off = &O;
    double R = Row.totalInterpreted()
                   ? static_cast<double>(Off->totalInterpreted()) /
                         static_cast<double>(Row.totalInterpreted())
                   : 0;
    (Row.Threads == 1 ? Reduction1 : Reduction4) = R;
    SwHitsOk = SwHitsOk && Row.Hits > 0 && Row.Promotions > 0;
  }
  const bool ReductionOk = Reduction1 >= 1.5 && Reduction4 >= 1.5;

  Table SwT({"threads", "cache", "locate 2x (ms)", "interp steps p1",
             "interp steps p2", "reduction", "hits", "promotions", "probes",
             "spliced", "identical"});
  for (const SwitchedRow &Row : SwRows) {
    const SwitchedRow *Off = nullptr;
    for (const SwitchedRow &O : SwRows)
      if (O.Threads == Row.Threads && O.CacheBytes == 0)
        Off = &O;
    double R = Row.totalInterpreted()
                   ? static_cast<double>(Off->totalInterpreted()) /
                         static_cast<double>(Row.totalInterpreted())
                   : 0;
    SwT.addRow({std::to_string(Row.Threads),
                swCacheName(Row.CacheBytes), formatDouble(Row.LocateMs, 2),
                std::to_string(Row.Pass1Interpreted),
                std::to_string(Row.Pass2Interpreted), formatDouble(R, 2),
                std::to_string(Row.Hits), std::to_string(Row.Promotions),
                std::to_string(Row.Probes), std::to_string(Row.SplicedSuffix),
                sameOutcome(SwBaseline.Pass1, Row.Pass2) ? "yes" : "NO"});
  }
  std::printf("%s", SwT.str().c_str());
  std::printf("\nswitched subject: %d guards past a %d-iteration crc prefix, "
              "%d-iteration tail after the guards\n",
              SwGuards, SwIters, SwTailIters);
  std::printf("interpreted-step reduction (cache on vs off, both sessions): "
              "%sx at 1 thread, %sx at 4 threads (required >= 1.5x): %s\n",
              formatDouble(Reduction1, 2).c_str(),
              formatDouble(Reduction4, 2).c_str(),
              ReductionOk ? "PASS" : "FAIL");
  std::printf("switched-run determinism (cache off/capped/on, 1/4 threads, "
              "both sessions): %s\n",
              SwIdentical ? "BIT-IDENTICAL" : "MISMATCH (bug!)");
  std::printf("cache work counters thread-count invariant: %s\n",
              SwCountersStable ? "yes" : "NO (bug!)");

  const char *SwJsonPath = "BENCH_switchedrun.json";
  if (std::FILE *F = std::fopen(SwJsonPath, "w")) {
    std::fprintf(F, "{\n");
    std::fprintf(F, "  \"bench\": \"bench_switchedrun\",\n");
    std::fprintf(F,
                 "  \"subject\": {\"guards\": %d, \"prefix_iters\": %d, "
                 "\"tail_iters\": %d},\n",
                 SwGuards, SwIters, SwTailIters);
    std::fprintf(F, "  \"rows\": [\n");
    for (size_t I = 0; I < SwRows.size(); ++I) {
      const SwitchedRow &Row = SwRows[I];
      std::fprintf(
          F,
          "    {\"threads\": %u, \"cache\": \"%s\", \"cache_mb\": %llu, "
          "\"locate_ms\": %.3f, "
          "\"interpreted_steps_pass1\": %llu, "
          "\"interpreted_steps_pass2\": %llu, \"hits\": %llu, "
          "\"promotions\": %llu, \"reconverge_probes\": %llu, "
          "\"spliced_suffix_steps\": %llu, \"identical_to_baseline\": %s}%s\n",
          Row.Threads, swCacheName(Row.CacheBytes),
          static_cast<unsigned long long>(Row.CacheBytes >> 20), Row.LocateMs,
          static_cast<unsigned long long>(Row.Pass1Interpreted),
          static_cast<unsigned long long>(Row.Pass2Interpreted),
          static_cast<unsigned long long>(Row.Hits),
          static_cast<unsigned long long>(Row.Promotions),
          static_cast<unsigned long long>(Row.Probes),
          static_cast<unsigned long long>(Row.SplicedSuffix),
          sameOutcome(SwBaseline.Pass1, Row.Pass2) ? "true" : "false",
          I + 1 < SwRows.size() ? "," : "");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"reduction_1t\": %.3f,\n", Reduction1);
    std::fprintf(F, "  \"reduction_4t\": %.3f,\n", Reduction4);
    std::fprintf(F, "  \"reduction_check\": \"%s\",\n",
                 ReductionOk ? "pass" : "fail");
    std::fprintf(F, "  \"deterministic\": %s\n",
                 SwIdentical && SwCountersStable ? "true" : "false");
    std::fprintf(F, "}\n");
    std::fclose(F);
    std::printf("wrote %s\n", SwJsonPath);
  } else {
    std::fprintf(stderr, "could not write %s\n", SwJsonPath);
  }

  // ---- Phase 4: multi-switch perturbation chains ---------------------

  bench::banner("Perturbation chains: depth-2 chain search, snapshot reuse "
                "{off, on} x {1, 4 threads} (bit-identical results "
                "required; >= 1.3x extended-step reduction and prefix "
                "hits required for the reuse rows)");

  auto ChFixed = lang::parseAndCheck(chainSubject(/*Fixed=*/true), Diags);
  auto ChFaulty = lang::parseAndCheck(chainSubject(/*Fixed=*/false), Diags);
  if (!ChFixed || !ChFaulty) {
    std::fprintf(stderr, "chain parse error:\n%s", Diags.str().c_str());
    return 1;
  }
  analysis::StaticAnalysis ChFixedSA(*ChFixed);
  interp::Interpreter ChFixedInterp(*ChFixed, ChFixedSA);
  std::vector<int64_t> ChExpected = ChFixedInterp.run({}).outputValues();
  StmtId ChRoot = ChFaulty->statementAtLine(ChainRootLine);
  if (!isValidId(ChRoot)) {
    std::fprintf(stderr, "no statement at chain root line %u\n",
                 ChainRootLine);
    return 1;
  }

  std::vector<ChainRow> ChRows;
  for (unsigned Threads : {1u, 4u}) {
    for (bool Reuse : {false, true}) {
      ChainRow Row;
      Row.Threads = Threads;
      Row.Reuse = Reuse;
      // One store per cell: the verdict pass stages the single-switch
      // bundles, ChainSearch seals before each frontier depth, and the
      // chain runs look them up -- all inside one locate call.
      interp::SwitchedRunStore ChStore(interp::DefaultSwitchedCacheBytes);
      support::StatsRegistry Stats;
      DebugSession::Config C;
      C.Opt.Exec.Threads = Threads;
      C.Opt.Exec.Stats = &Stats;
      C.Opt.Reuse.ChainDepth = ChainDepth;
      C.Opt.Reuse.ChainBudget = ChainBudget;
      C.Opt.Reuse.SwitchedCacheBytes =
          Reuse ? interp::DefaultSwitchedCacheBytes : 0;
      if (Reuse)
        C.SwitchedRuns = &ChStore;
      DebugSession Session(*ChFaulty, {}, ChExpected, {}, C);
      if (!Session.hasFailure()) {
        std::fprintf(stderr, "chain fault did not reproduce\n");
        return 1;
      }
      RootOnlyOracle Oracle(ChRoot);
      Timer LocateTimer;
      Row.Outcome.Report = Session.locate(Oracle);
      Row.LocateMs = LocateTimer.seconds() * 1000;
      Row.Outcome.Edges = Session.graph().implicitEdges();
      if (!Row.Outcome.Report.RootCauseFound) {
        std::fprintf(stderr,
                     "chain root cause not found (threads=%u reuse=%s)\n",
                     Threads, Reuse ? "on" : "off");
        return 1;
      }
      Row.ChainRuns = Stats.counter("verify.chain.runs").get();
      Row.ExtendedSteps = Stats.counter("verify.chain.extended_steps").get();
      Row.PrefixHits = Stats.counter("verify.chain.prefix_hits").get();
      Row.Searches = Stats.counter("locate.chain.searches").get();
      Row.Commits = Stats.counter("locate.chain.commits").get();
      ChRows.push_back(std::move(Row));
    }
  }

  // Determinism: reuse on/off and thread count change chain *work*, not
  // any locate outcome, and the chain counters themselves are invariant
  // across thread counts at fixed reuse config.
  const ChainRow &ChBaseline = ChRows.front(); // threads=1, reuse off
  bool ChIdentical = true;
  for (const ChainRow &Row : ChRows)
    ChIdentical = ChIdentical && sameOutcome(ChBaseline.Outcome, Row.Outcome);
  bool ChCountersStable = true;
  for (const ChainRow &A : ChRows)
    for (const ChainRow &B : ChRows)
      if (A.Reuse == B.Reuse &&
          (A.ChainRuns != B.ChainRuns || A.ExtendedSteps != B.ExtendedSteps ||
           A.PrefixHits != B.PrefixHits || A.Commits != B.Commits))
        ChCountersStable = false;

  // The acceptance ratio: chain steps actually interpreted, reuse off vs
  // on, per thread count.
  double ChReduction1 = 0, ChReduction4 = 0;
  bool ChPrefixOk = true;
  for (const ChainRow &Row : ChRows) {
    if (!Row.Reuse)
      continue;
    const ChainRow *Off = nullptr;
    for (const ChainRow &O : ChRows)
      if (O.Threads == Row.Threads && !O.Reuse)
        Off = &O;
    double R = Row.ExtendedSteps
                   ? static_cast<double>(Off->ExtendedSteps) /
                         static_cast<double>(Row.ExtendedSteps)
                   : 0;
    (Row.Threads == 1 ? ChReduction1 : ChReduction4) = R;
    ChPrefixOk = ChPrefixOk && Row.PrefixHits > 0;
  }
  const bool ChReductionOk = ChReduction1 >= 1.3 && ChReduction4 >= 1.3;

  Table ChT({"threads", "reuse", "locate (ms)", "chain runs", "ext steps",
             "reduction", "prefix hits", "searches", "commits", "identical"});
  for (const ChainRow &Row : ChRows) {
    const ChainRow *Off = nullptr;
    for (const ChainRow &O : ChRows)
      if (O.Threads == Row.Threads && !O.Reuse)
        Off = &O;
    double R = Row.ExtendedSteps
                   ? static_cast<double>(Off->ExtendedSteps) /
                         static_cast<double>(Row.ExtendedSteps)
                   : 0;
    ChT.addRow({std::to_string(Row.Threads), Row.Reuse ? "on" : "off",
                formatDouble(Row.LocateMs, 2), std::to_string(Row.ChainRuns),
                std::to_string(Row.ExtendedSteps), formatDouble(R, 2),
                std::to_string(Row.PrefixHits), std::to_string(Row.Searches),
                std::to_string(Row.Commits),
                sameOutcome(ChBaseline.Outcome, Row.Outcome) ? "yes" : "NO"});
  }
  std::printf("%s", ChT.str().c_str());
  std::printf("\nchain subject: depth-%u chain over a %d-iteration loop "
              "inside the base guard's region\n",
              ChainDepth, ChainIters);
  std::printf("chain extended-step reduction (reuse on vs off): %sx at 1 "
              "thread, %sx at 4 threads (required >= 1.3x): %s\n",
              formatDouble(ChReduction1, 2).c_str(),
              formatDouble(ChReduction4, 2).c_str(),
              ChReductionOk ? "PASS" : "FAIL");
  std::printf("chain prefix hits in every reuse row: %s\n",
              ChPrefixOk ? "PASS" : "FAIL");
  std::printf("chain determinism (reuse off/on, 1/4 threads): %s\n",
              ChIdentical && ChCountersStable ? "BIT-IDENTICAL"
                                              : "MISMATCH (bug!)");

  const char *ChJsonPath = "BENCH_chain.json";
  if (std::FILE *F = std::fopen(ChJsonPath, "w")) {
    std::fprintf(F, "{\n");
    std::fprintf(F, "  \"bench\": \"bench_chain\",\n");
    std::fprintf(F,
                 "  \"subject\": {\"chain_depth\": %u, \"chain_budget\": %u, "
                 "\"loop_iters\": %d},\n",
                 ChainDepth, ChainBudget, ChainIters);
    std::fprintf(F, "  \"rows\": [\n");
    for (size_t I = 0; I < ChRows.size(); ++I) {
      const ChainRow &Row = ChRows[I];
      std::fprintf(
          F,
          "    {\"threads\": %u, \"reuse\": %s, \"locate_ms\": %.3f, "
          "\"chain_runs\": %llu, \"extended_steps\": %llu, "
          "\"prefix_hits\": %llu, \"searches\": %llu, \"commits\": %llu, "
          "\"identical_to_baseline\": %s}%s\n",
          Row.Threads, Row.Reuse ? "true" : "false", Row.LocateMs,
          static_cast<unsigned long long>(Row.ChainRuns),
          static_cast<unsigned long long>(Row.ExtendedSteps),
          static_cast<unsigned long long>(Row.PrefixHits),
          static_cast<unsigned long long>(Row.Searches),
          static_cast<unsigned long long>(Row.Commits),
          sameOutcome(ChBaseline.Outcome, Row.Outcome) ? "true" : "false",
          I + 1 < ChRows.size() ? "," : "");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"reduction_1t\": %.3f,\n", ChReduction1);
    std::fprintf(F, "  \"reduction_4t\": %.3f,\n", ChReduction4);
    std::fprintf(F, "  \"reduction_check\": \"%s\",\n",
                 ChReductionOk ? "pass" : "fail");
    std::fprintf(F, "  \"prefix_hits_check\": \"%s\",\n",
                 ChPrefixOk ? "pass" : "fail");
    std::fprintf(F, "  \"deterministic\": %s\n",
                 ChIdentical && ChCountersStable ? "true" : "false");
    std::fprintf(F, "}\n");
    std::fclose(F);
    std::printf("wrote %s\n", ChJsonPath);
  } else {
    std::fprintf(stderr, "could not write %s\n", ChJsonPath);
  }

  // Persist the shared store for the next invocation: one cache file per
  // subject, keyed the way the sessions load (default LocateConfig step
  // budget).
  if (!CheckpointDir.empty()) {
    interp::CheckpointDiskStore Disk(CheckpointDir);
    if (!Disk.save(Shared, *Faulty, LocateConfig().MaxSteps) ||
        !Disk.save(Shared, *SweepFaulty, LocateConfig().MaxSteps)) {
      std::fprintf(stderr, "could not write checkpoint cache in %s\n",
                   CheckpointDir.c_str());
      return 1;
    }
    std::printf("checkpoint cache: %llu snapshots loaded from disk, %llu "
                "switched runs resumed from disk snapshots\n",
                static_cast<unsigned long long>(TotalDiskLoads),
                static_cast<unsigned long long>(TotalDiskHits));
  }
  if (ExpectDiskHits && TotalDiskHits == 0) {
    std::fprintf(stderr, "--expect-disk-hits: no switched run resumed from "
                         "a disk-loaded snapshot\n");
    return 1;
  }

  if (!Identical || !SweepOk)
    return 1;
  if (!WorkOk)
    return 1;
  if (!RatioOk)
    return 1;
  if (!SwIdentical || !SwCountersStable || !ReductionOk || !SwHitsOk)
    return 1;
  if (!ChIdentical || !ChCountersStable || !ChReductionOk || !ChPrefixOk)
    return 1;
  return 0;
}
