//===-- bench/bench_checkpoint.cpp - Checkpointed re-execution speedup ---------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Measures locateFault with checkpointed switched-run re-execution
// (docs/checkpointing.md) against the full-replay reference. The subject
// front-loads a heavy crc loop so every candidate predicate sits past
// 50% of the trace: full replay pays the whole prefix per switched run,
// while the checkpointed engine snapshots once and resumes each run by
// splicing the recorded prefix.
//
// Two claims are checked:
//  - determinism (hard assertion, any machine): reports and verified
//    implicit edges are bit-identical across {checkpoints on, off} x
//    {1, 4 threads};
//  - speedup (asserted only when the serial full-replay baseline is slow
//    enough for wall-clock ratios to be hardware-independent, mirroring
//    bench_parallel's gating): >= 2x end-to-end locate at 1 thread.
//
// Emits machine-readable results to BENCH_checkpoint.json.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/DebugSession.h"
#include "lang/Parser.h"
#include "support/Diagnostic.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace eoe;
using namespace eoe::core;

namespace {

constexpr int GuardCount = 10;
constexpr int RootGuard = 3; // the guard whose missing effect is the fault
constexpr int LoopIters = 60000;

/// A heavy crc prefix FIRST, then K guards over flags. The candidate
/// predicates of the wrong output (flags) are exactly the guards, all
/// past the crc loop -- the worst case for full prefix replay and the
/// best case for snapshot/resume. Each loop statement mixes several
/// multiplies/mods so the interpreter's per-step execution cost is large
/// relative to the cost of splicing that step's record.
std::string subject(bool Fixed) {
  std::string Src = "fn main() {\n";
  for (int G = 0; G < GuardCount; ++G)
    Src += "var c" + std::to_string(G) + " = " +
           ((Fixed && G == RootGuard) ? "1" : "0") + ";\n";
  Src += "var flags = 0;\n"
         "var i = 0;\n"
         "var crc = 0;\n"
         "var mix = 1;\n"
         "while (i < " + std::to_string(LoopIters) + ") {\n"
         "crc = (crc * 31 + (i % 7) * (i % 11) + mix * 13) % 65521;\n"
         "mix = (mix * 17 + crc % 251 + (i % 5) * 29) % 8191;\n"
         "i = i + 1;\n"
         "}\n";
  for (int G = 0; G < GuardCount; ++G)
    Src += "if (c" + std::to_string(G) + ") {\n" +
           "flags = flags + " + std::to_string(1 << G) + ";\n" +
           "}\n";
  Src += "print(crc);\n"
         "print(flags);\n"
         "}\n";
  return Src;
}

class RootOnlyOracle : public slicing::Oracle {
public:
  explicit RootOnlyOracle(StmtId Root) : Root(Root) {}
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
};

struct RunResult {
  unsigned Threads = 0;
  unsigned Checkpoints = 0;
  double LocateMs = 0;
  LocateReport Report;
  std::vector<ddg::DepGraph::ImplicitEdge> Edges;
  uint64_t CkptHits = 0;
  uint64_t CkptMisses = 0;
  uint64_t CkptStored = 0;
  uint64_t SplicedSteps = 0;
  double RestoreMs = 0;
  double CollectMs = 0;
};

bool sameOutcome(const RunResult &A, const RunResult &B) {
  if (A.Report.RootCauseFound != B.Report.RootCauseFound ||
      A.Report.UserPrunings != B.Report.UserPrunings ||
      A.Report.Verifications != B.Report.Verifications ||
      A.Report.Reexecutions != B.Report.Reexecutions ||
      A.Report.Iterations != B.Report.Iterations ||
      A.Report.ExpandedEdges != B.Report.ExpandedEdges ||
      A.Report.StrongEdges != B.Report.StrongEdges ||
      A.Report.FinalPrunedSlice != B.Report.FinalPrunedSlice ||
      A.Edges.size() != B.Edges.size())
    return false;
  for (size_t I = 0; I < A.Edges.size(); ++I)
    if (A.Edges[I].Use != B.Edges[I].Use ||
        A.Edges[I].Pred != B.Edges[I].Pred ||
        A.Edges[I].Strong != B.Edges[I].Strong)
      return false;
  return true;
}

} // namespace

int main() {
  bench::banner("Checkpointed switched-run re-execution: locateFault "
                "wall-clock, snapshot/resume vs full prefix replay "
                "(bit-identical results required)");

  DiagnosticEngine Diags;
  auto Fixed = lang::parseAndCheck(subject(/*Fixed=*/true), Diags);
  auto Faulty = lang::parseAndCheck(subject(/*Fixed=*/false), Diags);
  if (!Fixed || !Faulty) {
    std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
    return 1;
  }

  analysis::StaticAnalysis FixedSA(*Fixed);
  interp::Interpreter FixedInterp(*Fixed, FixedSA);
  std::vector<int64_t> Expected = FixedInterp.run({}).outputValues();

  uint32_t RootLine = static_cast<uint32_t>(2 + RootGuard);
  StmtId Root = Faulty->statementAtLine(RootLine);
  if (!isValidId(Root)) {
    std::fprintf(stderr, "no statement at root line %u\n", RootLine);
    return 1;
  }

  const unsigned Hardware = std::thread::hardware_concurrency();
  std::vector<RunResult> Runs;
  size_t TraceLen = 0;
  for (unsigned Threads : {1u, 4u}) {
    for (unsigned Checkpoints : {0u, 1u}) {
      support::StatsRegistry Stats;
      DebugSession::Config C;
      C.Threads = Threads;
      C.Locate.Checkpoints = Checkpoints;
      C.Stats = &Stats;
      DebugSession Session(*Faulty, {}, Expected, {}, C);
      if (!Session.hasFailure()) {
        std::fprintf(stderr, "fault did not reproduce\n");
        return 1;
      }
      TraceLen = Session.trace().size();
      RootOnlyOracle Oracle(Root);

      RunResult R;
      R.Threads = Threads;
      R.Checkpoints = Checkpoints;
      Timer LocateTimer;
      R.Report = Session.locate(Oracle);
      R.LocateMs = LocateTimer.seconds() * 1000;
      R.Edges = Session.graph().implicitEdges();
      if (!R.Report.RootCauseFound) {
        std::fprintf(stderr, "root cause not found (threads=%u ckpt=%u)\n",
                     Threads, Checkpoints);
        return 1;
      }
      support::StatsSnapshot S = Stats.snapshot();
      auto Counter = [&](const char *Key) {
        auto It = S.Counters.find(Key);
        return It == S.Counters.end() ? uint64_t(0) : It->second;
      };
      auto TimerMs = [&](const char *Key) {
        auto It = S.Timers.find(Key);
        return It == S.Timers.end() ? 0.0 : It->second.Seconds * 1000;
      };
      R.CkptHits = Counter("verify.ckpt.hits");
      R.CkptMisses = Counter("verify.ckpt.misses");
      R.CkptStored = Counter("verify.ckpt.stored");
      R.SplicedSteps = Counter("interp.spliced_steps");
      R.RestoreMs = TimerMs("verify.ckpt.restore_time");
      R.CollectMs = TimerMs("verify.ckpt.collect_time");
      Runs.push_back(std::move(R));
    }
  }

  // Determinism first: every mode must reproduce the full-replay serial
  // outcome exactly. This is the hard claim; it holds on any machine.
  const RunResult &Baseline = Runs.front(); // threads=1, checkpoints off
  bool Identical = true;
  for (const RunResult &R : Runs)
    Identical = Identical && sameOutcome(Baseline, R);

  Table T({"threads", "ckpt", "locate (ms)", "speedup", "hits", "misses",
           "spliced steps", "restore (ms)", "collect (ms)", "identical"});
  for (const RunResult &R : Runs) {
    double Speedup = R.LocateMs > 0 ? Baseline.LocateMs / R.LocateMs : 0;
    T.addRow({std::to_string(R.Threads), R.Checkpoints ? "on" : "off",
              formatDouble(R.LocateMs, 2), formatDouble(Speedup, 2),
              std::to_string(R.CkptHits), std::to_string(R.CkptMisses),
              std::to_string(R.SplicedSteps), formatDouble(R.RestoreMs, 2),
              formatDouble(R.CollectMs, 2),
              sameOutcome(Baseline, R) ? "yes" : "NO"});
  }
  std::printf("%s", T.str().c_str());
  std::printf("\nsubject: %d candidate predicates past a %d-iteration crc "
              "prefix, trace length %zu, hardware_concurrency %u\n",
              GuardCount, LoopIters, TraceLen, Hardware);

  // Speedup at one thread: checkpoints on vs off. Gated on the baseline
  // being slow enough that the ratio is a property of the algorithm, not
  // of timer resolution or machine noise (mirrors bench_parallel, which
  // gates its speedup assertion on hardware capability).
  double Speedup1 = 0, Speedup4 = 0;
  double Base4 = 0, Ckpt4 = 0;
  for (const RunResult &R : Runs) {
    if (R.Threads == 1 && R.Checkpoints && R.LocateMs > 0)
      Speedup1 = Baseline.LocateMs / R.LocateMs;
    if (R.Threads == 4 && !R.Checkpoints)
      Base4 = R.LocateMs;
    if (R.Threads == 4 && R.Checkpoints)
      Ckpt4 = R.LocateMs;
  }
  if (Ckpt4 > 0)
    Speedup4 = Base4 / Ckpt4;
  const double MinBaselineMs = 20;
  const bool SpeedupApplies = Baseline.LocateMs >= MinBaselineMs;
  const bool SpeedupOk = Speedup1 >= 2.0;
  if (SpeedupApplies)
    std::printf("speedup at 1 thread (ckpt on vs off): %sx (required >= 2x): "
                "%s\n",
                formatDouble(Speedup1, 2).c_str(), SpeedupOk ? "PASS" : "FAIL");
  else
    std::printf("speedup at 1 thread: %sx -- assertion SKIPPED (baseline "
                "%s ms < %s ms; determinism still asserted)\n",
                formatDouble(Speedup1, 2).c_str(),
                formatDouble(Baseline.LocateMs, 2).c_str(),
                formatDouble(MinBaselineMs, 0).c_str());
  std::printf("speedup at 4 threads (ckpt on vs off): %sx\n",
              formatDouble(Speedup4, 2).c_str());
  std::printf("determinism across modes and thread counts: %s\n",
              Identical ? "BIT-IDENTICAL" : "MISMATCH (bug!)");

  // Machine-readable results.
  const char *JsonPath = "BENCH_checkpoint.json";
  if (std::FILE *F = std::fopen(JsonPath, "w")) {
    std::fprintf(F, "{\n");
    std::fprintf(F, "  \"bench\": \"bench_checkpoint\",\n");
    std::fprintf(F, "  \"hardware_concurrency\": %u,\n", Hardware);
    std::fprintf(F,
                 "  \"subject\": {\"candidate_predicates\": %d, "
                 "\"loop_iters\": %d, \"trace_len\": %zu},\n",
                 GuardCount, LoopIters, TraceLen);
    std::fprintf(F, "  \"runs\": [\n");
    for (size_t I = 0; I < Runs.size(); ++I) {
      const RunResult &R = Runs[I];
      std::fprintf(F,
                   "    {\"threads\": %u, \"checkpoints\": %s, "
                   "\"locate_ms\": %.3f, \"reexecutions\": %zu, "
                   "\"ckpt_hits\": %llu, \"ckpt_misses\": %llu, "
                   "\"ckpt_stored\": %llu, \"spliced_steps\": %llu, "
                   "\"restore_ms\": %.3f, \"collect_ms\": %.3f, "
                   "\"identical_to_baseline\": %s}%s\n",
                   R.Threads, R.Checkpoints ? "true" : "false", R.LocateMs,
                   R.Report.Reexecutions,
                   static_cast<unsigned long long>(R.CkptHits),
                   static_cast<unsigned long long>(R.CkptMisses),
                   static_cast<unsigned long long>(R.CkptStored),
                   static_cast<unsigned long long>(R.SplicedSteps),
                   R.RestoreMs, R.CollectMs,
                   sameOutcome(Baseline, R) ? "true" : "false",
                   I + 1 < Runs.size() ? "," : "");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"speedup_1t\": %.3f,\n", Speedup1);
    std::fprintf(F, "  \"speedup_4t\": %.3f,\n", Speedup4);
    std::fprintf(F, "  \"speedup_check\": \"%s\",\n",
                 !SpeedupApplies ? "skipped: baseline too fast"
                 : SpeedupOk     ? "pass"
                                 : "fail");
    std::fprintf(F, "  \"deterministic\": %s\n", Identical ? "true" : "false");
    std::fprintf(F, "}\n");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  } else {
    std::fprintf(stderr, "could not write %s\n", JsonPath);
  }

  if (!Identical)
    return 1;
  if (SpeedupApplies && !SpeedupOk)
    return 1;
  return 0;
}
