//===-- bench/bench_figure2_alignment.cpp - Figures 2 and 3 --------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Regenerates the paper's Figure 2 (execution alignment across a
// predicate switch: executions (1), (2), (3)) and Figure 3 (the
// single-entry-multiple-exit case), printing the region decomposition and
// the match verdicts the paper derives:
//   - 15(1) matches 15(2) even though the switch inserts a loop between
//     them (2(1) -id-> 15(1) does NOT hold in execution (2): an explicit
//     path exists instead);
//   - 15(1) has no match in execution (3) => 2(1) -id-> 15(1) holds.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "align/Aligner.h"
#include "analysis/StaticAnalysis.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "support/Diagnostic.h"

#include <cstdio>
#include <string>

using namespace eoe;
using namespace eoe::bench;
using namespace eoe::interp;

namespace {

std::string figure2Source(bool C2Faulty) {
  std::string Body = C2Faulty ? "C2 = 1;" : "C2 = 0;";
  return std::string("fn main() {\n"     // 1
                     "var i = 0;\n"      // 2
                     "var t = 0;\n"      // 3
                     "var x = 0;\n"      // 4
                     "var P = 0;\n"      // 5
                     "var C1 = 0;\n"     // 6
                     "var C2 = 0;\n"     // 7
                     "var y = 0;\n"      // 8
                     "if (P) {\n"        // 9: the paper's "2"
                     "t = 1;\n") +       // 10: "3"
         Body + "\n"                     // 11
                "x = 42;\n"              // 12: "4"
                "}\n"                    // 13
                "while (i < t) {\n"      // 14: "6"
                "y = y + 1;\n"           // 15: "7"
                "if (C1) {\n"            // 16: "8"
                "y = y + 2;\n"           // 17: "9"
                "}\n"                    // 18
                "i = i + 1;\n"           // 19: "11"
                "}\n"                    // 20
                "if (1) {\n"             // 21: "13"
                "if (C2 == 0) {\n"       // 22: "14"
                "y = x;\n"               // 23: "15" -- the use of x
                "}\n"                    // 24
                "y = y + 3;\n"           // 25: "17"
                "}\n"                    // 26
                "print(y);\n"            // 27
                "}\n";
}

void printTrace(const lang::Program &Prog, const ExecutionTrace &T,
                const char *Label) {
  std::printf("%s:", Label);
  for (TraceIdx I = 0; I < T.size(); ++I)
    std::printf(" %u", Prog.statement(T.step(I).Stmt)->loc().Line);
  std::printf("\n");
}

int runScenario(bool C2Faulty, const char *Title, bool ExpectMatch) {
  std::printf("\n--- %s ---\n", Title);
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(figure2Source(C2Faulty), Diags);
  if (!Prog) {
    std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
    return 1;
  }
  analysis::StaticAnalysis SA(*Prog);
  Interpreter Interp(*Prog, SA);

  ExecutionTrace E = Interp.run({});
  SwitchSpec Spec{Prog->statementAtLine(9), 1};
  ExecutionTrace EP = Interp.runSwitched({}, Spec, 100000);
  printTrace(*Prog, E, "original trace (source lines)");
  printTrace(*Prog, EP, "switched trace (source lines)");

  TraceIdx U = InvalidId;
  StmtId UseStmt = Prog->statementAtLine(23);
  for (TraceIdx I = 0; I < E.size(); ++I)
    if (E.step(I).Stmt == UseStmt)
      U = I;
  if (U == InvalidId) {
    std::fprintf(stderr, "error: use statement not executed\n");
    return 1;
  }

  align::ExecutionAligner A(E, EP);
  align::AlignResult R = A.match(U);
  if (R.found())
    std::printf("match of 15(1) [y = x at index %u]: FOUND at switched "
                "index %u (reads x = %lld)\n",
                U, R.Matched,
                static_cast<long long>(EP.step(R.Matched).Uses.empty()
                                           ? -1
                                           : EP.step(R.Matched).Uses[0].Value));
  else
    std::printf("match of 15(1): NOT FOUND (%s)\n",
                R.Why == align::AlignFailure::BranchDiverged
                    ? "a predicate on the path took the other branch"
                    : "region ended early");
  bool Ok = R.found() == ExpectMatch;
  std::printf("paper's verdict %s\n", Ok ? "reproduced" : "VIOLATED");
  return Ok ? 0 : 1;
}

int runFigure3() {
  std::printf("\n--- Figure 3: single-entry-multiple-exit regions ---\n");
  // The paper's loop with a data-dependent break: switching P changes C0,
  // and the match of 7 is not found because the region exits early.
  const char *Src = "fn main() {\n"         // 1
                    "var P = 0;\n"          // 2
                    "var c0 = 0;\n"         // 3
                    "if (P) {\n"            // 4  <- switched ("1")
                    "c0 = 1;\n"             // 5
                    "}\n"                   // 6
                    "var i = 0;\n"          // 7
                    "var x = 9;\n"          // 8
                    "var y = 0;\n"          // 9
                    "while (i < 2) {\n"     // 10: "3"
                    "if (c0) {\n"           // 11: "4"
                    "break;\n"              // 12: "5"
                    "}\n"                   // 13
                    "if (1) {\n"            // 14: "6"
                    "y = x;\n"              // 15: "7" -- the use
                    "}\n"                   // 16
                    "i = i + 1;\n"          // 17: "8"
                    "}\n"                   // 18
                    "print(y);\n"           // 19: "10"
                    "}\n";
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Src, Diags);
  if (!Prog) {
    std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
    return 1;
  }
  analysis::StaticAnalysis SA(*Prog);
  Interpreter Interp(*Prog, SA);
  ExecutionTrace E = Interp.run({});
  ExecutionTrace EP =
      Interp.runSwitched({}, {Prog->statementAtLine(4), 1}, 100000);
  printTrace(*Prog, E, "original trace (source lines)");
  printTrace(*Prog, EP, "switched trace (source lines)");

  TraceIdx U = InvalidId;
  for (TraceIdx I = 0; I < E.size(); ++I)
    if (E.step(I).Stmt == Prog->statementAtLine(15) &&
        E.step(I).InstanceNo == 1)
      U = I;
  align::ExecutionAligner A(E, EP);
  align::AlignResult R = A.match(U);
  std::printf("match of 7 (y = x, iteration 1): %s\n",
              R.found() ? "FOUND (unexpected!)" : "NOT FOUND");
  std::printf("paper's verdict (no match: the loop exits by break) %s\n",
              !R.found() ? "reproduced" : "VIOLATED");
  return R.found() ? 1 : 0;
}

} // namespace

int main() {
  banner("Figures 2 and 3: region-based execution alignment");
  int Rc = 0;
  Rc |= runScenario(false, "Figure 2, executions (1) vs (2): match exists",
                    /*ExpectMatch=*/true);
  Rc |= runScenario(true,
                    "Figure 2, executions (1) vs (3): no match "
                    "(t = C2 = 1 variant)",
                    /*ExpectMatch=*/false);
  Rc |= runFigure3();
  return Rc;
}
