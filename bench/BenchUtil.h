//===-- bench/BenchUtil.h - Shared bench helpers -----------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#ifndef EOE_BENCH_BENCHUTIL_H
#define EOE_BENCH_BENCHUTIL_H

#include "ddg/DepGraph.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <string>

namespace eoe {
namespace bench {

/// Formats a slice size as the paper's "static/dynamic" cell.
inline std::string sizeCell(const ddg::SliceStats &S) {
  return std::to_string(S.StaticStmts) + "/" +
         std::to_string(S.DynamicInstances);
}

/// Formats a ratio pair "a/b" with one decimal.
inline std::string ratioCell(const ddg::SliceStats &Num,
                             const ddg::SliceStats &Den) {
  double SR = Den.StaticStmts
                  ? static_cast<double>(Num.StaticStmts) / Den.StaticStmts
                  : 0.0;
  double DR = Den.DynamicInstances
                  ? static_cast<double>(Num.DynamicInstances) /
                        Den.DynamicInstances
                  : 0.0;
  return formatDouble(SR, 2) + "/" + formatDouble(DR, 1);
}

/// Prints a bench banner so the combined bench log is navigable.
inline void banner(const char *Title) {
  std::printf("\n================================================================"
              "===============\n%s\n============================================="
              "==================================\n",
              Title);
}

} // namespace bench
} // namespace eoe

#endif // EOE_BENCH_BENCHUTIL_H
