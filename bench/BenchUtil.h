//===-- bench/BenchUtil.h - Shared bench helpers -----------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#ifndef EOE_BENCH_BENCHUTIL_H
#define EOE_BENCH_BENCHUTIL_H

#include "ddg/DepGraph.h"
#include "support/Stats.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <string>

namespace eoe {
namespace bench {

/// Formats a slice size as the paper's "static/dynamic" cell.
inline std::string sizeCell(const ddg::SliceStats &S) {
  return std::to_string(S.StaticStmts) + "/" +
         std::to_string(S.DynamicInstances);
}

/// Formats a ratio pair "a/b" with one decimal.
inline std::string ratioCell(const ddg::SliceStats &Num,
                             const ddg::SliceStats &Den) {
  double SR = Den.StaticStmts
                  ? static_cast<double>(Num.StaticStmts) / Den.StaticStmts
                  : 0.0;
  double DR = Den.DynamicInstances
                  ? static_cast<double>(Num.DynamicInstances) /
                        Den.DynamicInstances
                  : 0.0;
  return formatDouble(SR, 2) + "/" + formatDouble(DR, 1);
}

/// Prints a bench banner so the combined bench log is navigable.
inline void banner(const char *Title) {
  std::printf("\n================================================================"
              "===============\n%s\n============================================="
              "==================================\n",
              Title);
}

/// Dumps the per-phase statistics a bench collected through a
/// support::StatsRegistry, under its own banner so the numbers sit next
/// to the paper-table output. Prints nothing when the registry is empty,
/// so benches can call it unconditionally.
inline void dumpStats(const support::StatsRegistry &Stats,
                      const char *Title = "Per-phase pipeline statistics") {
  support::StatsSnapshot S = Stats.snapshot();
  if (S.Counters.empty() && S.Timers.empty() && S.Histograms.empty())
    return;
  banner(Title);
  std::printf("%s", Stats.str().c_str());
}

} // namespace bench
} // namespace eoe

#endif // EOE_BENCH_BENCHUTIL_H
