//===-- bench/bench_table4.cpp - Table 4: performance ---------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Regenerates Table 4 ("Performance"): per fault, the cost of a plain
// (uninstrumented) run, a graph-construction (tracing) run, and the
// verification procedure, using google-benchmark for stable timing of the
// first two. The paper's observation to reproduce in shape: graph
// construction dominates plain execution by a large constant factor
// (their valgrind prototype: 18.3x - 154.9x), and verification cost
// scales with the number of re-executions.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/StaticAnalysis.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "support/Diagnostic.h"
#include "support/Table.h"
#include "workloads/Runner.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

using namespace eoe;
using namespace eoe::workloads;

namespace {

/// Parsed programs shared across benchmark registrations.
struct Subject {
  std::unique_ptr<lang::Program> Prog;
  std::unique_ptr<analysis::StaticAnalysis> SA;
  std::unique_ptr<interp::Interpreter> Interp;
  const FaultInfo *Fault;
};

std::map<std::string, Subject> &subjects() {
  static std::map<std::string, Subject> Map;
  return Map;
}

void benchPlain(benchmark::State &State, const std::string &Id) {
  Subject &S = subjects()[Id];
  interp::Interpreter::Options Opts;
  Opts.Trace = false;
  for (auto _ : State) {
    auto T = S.Interp->run(S.Fault->FailingInput, Opts);
    benchmark::DoNotOptimize(T.Outputs.size());
  }
}

void benchGraph(benchmark::State &State, const std::string &Id) {
  Subject &S = subjects()[Id];
  interp::Interpreter::Options Opts;
  for (auto _ : State) {
    auto T = S.Interp->run(S.Fault->FailingInput, Opts);
    benchmark::DoNotOptimize(T.Steps.size());
  }
}

void benchVerification(benchmark::State &State, const std::string &Id) {
  Subject &S = subjects()[Id];
  // One representative verification: re-execute with the first predicate
  // instance switched and align (the unit cost the paper's Verif column
  // accumulates).
  auto Trace = S.Interp->run(S.Fault->FailingInput);
  TraceIdx Pred = InvalidId;
  for (TraceIdx I = 0; I < Trace.size(); ++I) {
    if (Trace.step(I).isPredicateInstance()) {
      Pred = I;
      break;
    }
  }
  if (Pred == InvalidId) {
    State.SkipWithError("no predicate instance");
    return;
  }
  interp::SwitchSpec Spec{Trace.step(Pred).Stmt, Trace.step(Pred).InstanceNo};
  for (auto _ : State) {
    auto Switched = S.Interp->runSwitched(S.Fault->FailingInput, Spec,
                                          2'000'000);
    align::ExecutionAligner A(Trace, Switched);
    benchmark::DoNotOptimize(A.match(static_cast<TraceIdx>(Trace.size() - 1)));
  }
}

struct PaperRow {
  const char *Fault;
  double Plain, Graph, Verif, Ratio;
};

// Verbatim from the paper's Table 4 (seconds on their 2007 hardware).
const PaperRow PaperRows[] = {
    {"flex-v1-f9", 0.29, 22.7, 2.7, 78.3},
    {"flex-v2-f14", 0.28, 22.3, 1.92, 79.6},
    {"flex-v3-f10", 0.28, 22.4, 0.52, 80},
    {"flex-v4-f6", 0.34, 15.6, 3.6, 45.9},
    {"flex-v5-f6", 0.12, 2.2, 0.48, 18.3},
    {"grep-v4-f2", 0.43, 66.6, 43.3, 154.9},
    {"gzip-v2-f3", 0.41, 13.5, 0.68, 32.9},
    {"sed-v3-f2", 0.26, 11.4, 16.6, 43.8},
    {"sed-v3-f3", 0.14, 4.7, 32.2, 33.6},
};

void printPaperReference() {
  bench::banner("Table 4: Performance -- paper reference values "
                "(valgrind prototype, seconds)");
  Table T({"Fault", "Plain (s)", "Graph (s)", "Verif (s)", "Graph/Plain"});
  for (const PaperRow &R : PaperRows)
    T.addRow({R.Fault, formatDouble(R.Plain, 2), formatDouble(R.Graph, 1),
              formatDouble(R.Verif, 2), formatDouble(R.Ratio, 1)});
  std::printf("%s", T.str().c_str());
  std::printf("\nOur measurements follow (google-benchmark; compare the "
              "Graph/Plain ratio's order of magnitude, not absolute "
              "times -- the substrates differ).\n\n");
}

} // namespace

int main(int argc, char **argv) {
  for (const FaultInfo &F : faults()) {
    DiagnosticEngine Diags;
    Subject S;
    S.Prog = lang::parseAndCheck(F.FaultySource, Diags);
    if (!S.Prog) {
      std::fprintf(stderr, "error: %s does not parse\n", F.Id.c_str());
      return 1;
    }
    S.SA = std::make_unique<analysis::StaticAnalysis>(*S.Prog);
    S.Interp = std::make_unique<interp::Interpreter>(*S.Prog, *S.SA);
    S.Fault = &F;
    subjects()[F.Id] = std::move(S);

    benchmark::RegisterBenchmark(("plain/" + F.Id).c_str(), benchPlain, F.Id);
    benchmark::RegisterBenchmark(("graph/" + F.Id).c_str(), benchGraph, F.Id);
    benchmark::RegisterBenchmark(("verify_once/" + F.Id).c_str(),
                                 benchVerification, F.Id);
  }

  printPaperReference();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
