//===-- bench/bench_figure1.cpp - Figure 1: the motivating gzip error ----------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Walks the paper's Figure 1 end to end on the gzip-v2-f3 workload: the
// dynamic slice misses the root cause, the relevant slice captures it
// (with the false S7 dependence), and the demand-driven procedure adds
// exactly the strong implicit edge S4 -> S6 and reaches the root cause.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/PrettyPrinter.h"
#include "support/Table.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace eoe;
using namespace eoe::bench;
using namespace eoe::workloads;

int main() {
  banner("Figure 1: the motivating execution omission error (gzip)");

  const FaultInfo *F = findFault("gzip-v2-f3");
  if (!F) {
    std::fprintf(stderr, "error: gzip-v2-f3 not registered\n");
    return 1;
  }
  FaultRunner Runner(*F);
  if (!Runner.valid()) {
    std::fprintf(stderr, "error: fault did not reproduce\n");
    return 1;
  }

  std::printf("\nRoot cause (line %u): %s\n", F->RootCauseLine,
              lang::describeStmt(Runner.faultyProgram(), Runner.rootCause())
                  .c_str());

  FaultRunner::Options Opts;
  ExperimentResult R = Runner.run(Opts);

  Table T({"Technique", "size (static/dynamic)", "captures root cause?"});
  T.addRow({"dynamic slice (DS)", sizeCell(R.DS), R.DSHasRoot ? "yes" : "no"});
  T.addRow({"relevant slice (RS)", sizeCell(R.RS), R.RSHasRoot ? "yes" : "no"});
  T.addRow({"pruned slice (PS)", sizeCell(R.PS), R.PSHasRoot ? "yes" : "no"});
  T.addRow({"implicit-dep pruned slice (IPS)", sizeCell(R.Report.IPSStats),
            R.Report.RootCauseFound ? "yes" : "no"});
  std::printf("%s", T.str().c_str());

  std::printf("\nDemand-driven session: %zu user prunings, %zu "
              "verifications, %zu iterations, %zu implicit edges (%zu "
              "strong).\n",
              R.Report.UserPrunings, R.Report.Verifications,
              R.Report.Iterations, R.Report.ExpandedEdges,
              R.Report.StrongEdges);
  std::printf("Paper's walk-through: prune {S2,S3,S6,S10} -> {S2,S6,S10}; "
              "VerifyDep(S7,S10) = NOT_ID; VerifyDep(S4,S6) = STRONG_ID; "
              "final slice {S1,S2,S4,S6,S10} contains the root cause S1.\n");

  bool Ok = !R.DSHasRoot && R.RSHasRoot && !R.PSHasRoot &&
            R.Report.RootCauseFound && R.Report.StrongEdges >= 1;
  std::printf("\nFigure 1 shape: %s\n", Ok ? "REPRODUCED" : "VIOLATED");
  return Ok ? 0 : 1;
}
