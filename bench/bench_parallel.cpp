//===-- bench/bench_parallel.cpp - Parallel verification speedup ---------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Measures locateFault under the parallel verification engine at 1/2/4/8
// threads. The subject stacks K independent false guards over one
// observed variable, so the selected use has K candidate predicates and
// the engine verifies one batch of K switched re-executions -- the
// paper's dominant cost (Table 4's Verif column) -- concurrently. A crc
// loop pads every (re-)execution so each task is coarse enough to
// amortize scheduling.
//
// Two claims are checked:
//  - determinism (hard assertion, any thread count): counters, verified
//    implicit edges, and the final pruned slice are bit-identical to the
//    Threads=1 serial reference engine;
//  - speedup (asserted only when the host actually has >= 4 cores --
//    reported as skipped otherwise): >= 2x at 4 threads.
//
// Emits machine-readable results to BENCH_parallel.json.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/DebugSession.h"
#include "lang/Parser.h"
#include "support/Diagnostic.h"
#include "support/Options.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace eoe;
using namespace eoe::core;

namespace {

constexpr int GuardCount = 8;
constexpr int RootGuard = 2; // the guard whose missing effect is the fault
constexpr int LoopIters = 20000;

/// K guards over flags + a crc loop. In the fixed program guard
/// \p RootGuard is armed; the faulty program leaves every guard cold, so
/// flags misses its contribution -- a classic execution omission.
std::string subject(bool Fixed) {
  std::string Src = "fn main() {\n";
  for (int G = 0; G < GuardCount; ++G)
    Src += "var c" + std::to_string(G) + " = " +
           ((Fixed && G == RootGuard) ? "1" : "0") + ";\n";
  Src += "var flags = 0;\n";
  for (int G = 0; G < GuardCount; ++G)
    Src += "if (c" + std::to_string(G) + ") {\n" +
           "flags = flags + " + std::to_string(1 << G) + ";\n" +
           "}\n";
  Src += "var i = 0;\n"
         "var crc = 0;\n"
         "while (i < " + std::to_string(LoopIters) + ") {\n"
         "crc = (crc * 31 + i) % 65521;\n"
         "i = i + 1;\n"
         "}\n"
         "print(crc);\n"
         "print(flags);\n"
         "}\n";
  return Src;
}

class RootOnlyOracle : public slicing::Oracle {
public:
  explicit RootOnlyOracle(StmtId Root) : Root(Root) {}
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
};

struct RunResult {
  unsigned Threads = 0;
  double LocateMs = 0;
  LocateReport Report;
  std::vector<ddg::DepGraph::ImplicitEdge> Edges;
};

bool sameOutcome(const RunResult &A, const RunResult &B) {
  if (A.Report.RootCauseFound != B.Report.RootCauseFound ||
      A.Report.UserPrunings != B.Report.UserPrunings ||
      A.Report.Verifications != B.Report.Verifications ||
      A.Report.Reexecutions != B.Report.Reexecutions ||
      A.Report.Iterations != B.Report.Iterations ||
      A.Report.ExpandedEdges != B.Report.ExpandedEdges ||
      A.Report.StrongEdges != B.Report.StrongEdges ||
      A.Report.FinalPrunedSlice != B.Report.FinalPrunedSlice ||
      A.Edges.size() != B.Edges.size())
    return false;
  for (size_t I = 0; I < A.Edges.size(); ++I)
    if (A.Edges[I].Use != B.Edges[I].Use ||
        A.Edges[I].Pred != B.Edges[I].Pred ||
        A.Edges[I].Strong != B.Edges[I].Strong)
      return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  // The thread sweep is fixed (it IS the experiment); every other knob
  // -- checkpointing, caches, chain depth, step budget -- comes from the
  // shared parser so ad-hoc reruns use the same flags as eoec.
  eoe::Options BaseOpt;
  for (int I = 1; I < Argc; ++I) {
    if (support::parseCommonOption(Argc, Argv, I, BaseOpt) ==
        support::ParseResult::Ok)
      continue;
    std::fprintf(stderr, "usage: bench_parallel [common options]\n%s",
                 support::commonOptionsHelp());
    return 2;
  }

  bench::banner("Parallel verification engine: locateFault wall-clock vs "
                "thread count (bit-identical results required)");

  DiagnosticEngine Diags;
  auto Fixed = lang::parseAndCheck(subject(/*Fixed=*/true), Diags);
  auto Faulty = lang::parseAndCheck(subject(/*Fixed=*/false), Diags);
  if (!Fixed || !Faulty) {
    std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
    return 1;
  }

  analysis::StaticAnalysis FixedSA(*Fixed);
  interp::Interpreter FixedInterp(*Fixed, FixedSA);
  std::vector<int64_t> Expected = FixedInterp.run({}).outputValues();

  // The faulty program's root cause: the cold initialization of the
  // guard the fix arms.
  uint32_t RootLine = static_cast<uint32_t>(2 + RootGuard);
  StmtId Root = Faulty->statementAtLine(RootLine);
  if (!isValidId(Root)) {
    std::fprintf(stderr, "no statement at root line %u\n", RootLine);
    return 1;
  }

  const unsigned Hardware = std::thread::hardware_concurrency();
  std::vector<RunResult> Runs;
  size_t TraceLen = 0;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    DebugSession::Config C;
    C.Opt = BaseOpt;
    C.Opt.Exec.Threads = Threads;
    DebugSession Session(*Faulty, {}, Expected, {}, C);
    if (!Session.hasFailure()) {
      std::fprintf(stderr, "fault did not reproduce\n");
      return 1;
    }
    TraceLen = Session.trace().size();
    RootOnlyOracle Oracle(Root);

    RunResult R;
    R.Threads = Threads;
    Timer LocateTimer;
    R.Report = Session.locate(Oracle);
    R.LocateMs = LocateTimer.seconds() * 1000;
    R.Edges = Session.graph().implicitEdges();
    if (!R.Report.RootCauseFound) {
      std::fprintf(stderr, "root cause not found at Threads=%u\n", Threads);
      return 1;
    }
    Runs.push_back(std::move(R));
  }

  // Determinism: every thread count must reproduce the serial outcome
  // exactly. This is the hard claim; it holds on any machine.
  const RunResult &Serial = Runs.front();
  bool Identical = true;
  for (const RunResult &R : Runs)
    Identical = Identical && sameOutcome(Serial, R);

  Table T({"threads", "locate (ms)", "speedup", "re-execs", "re-execs/s",
           "identical"});
  for (const RunResult &R : Runs) {
    double Speedup = R.LocateMs > 0 ? Serial.LocateMs / R.LocateMs : 0;
    double ReexecPerSec =
        R.LocateMs > 0 ? R.Report.Reexecutions / (R.LocateMs / 1000) : 0;
    T.addRow({std::to_string(R.Threads), formatDouble(R.LocateMs, 2),
              formatDouble(Speedup, 2),
              std::to_string(R.Report.Reexecutions),
              formatDouble(ReexecPerSec, 1),
              sameOutcome(Serial, R) ? "yes" : "NO"});
  }
  std::printf("%s", T.str().c_str());
  std::printf("\nsubject: %d candidate predicates per batch, trace length "
              "%zu, hardware_concurrency %u\n",
              GuardCount, TraceLen, Hardware);

  // Speedup: only meaningful with real cores to run on.
  double Speedup4 = 0;
  for (const RunResult &R : Runs)
    if (R.Threads == 4 && R.LocateMs > 0)
      Speedup4 = Serial.LocateMs / R.LocateMs;
  const bool SpeedupApplies = Hardware >= 4;
  const bool SpeedupOk = Speedup4 >= 2.0;
  if (SpeedupApplies)
    std::printf("speedup at 4 threads: %sx (required >= 2x): %s\n",
                formatDouble(Speedup4, 2).c_str(),
                SpeedupOk ? "PASS" : "FAIL");
  else
    std::printf("speedup at 4 threads: %sx -- assertion SKIPPED "
                "(hardware_concurrency %u < 4; determinism still asserted)\n",
                formatDouble(Speedup4, 2).c_str(), Hardware);
  std::printf("determinism across thread counts: %s\n",
              Identical ? "BIT-IDENTICAL" : "MISMATCH (bug!)");

  // Machine-readable results.
  const char *JsonPath = "BENCH_parallel.json";
  if (std::FILE *F = std::fopen(JsonPath, "w")) {
    std::fprintf(F, "{\n");
    std::fprintf(F, "  \"bench\": \"bench_parallel\",\n");
    std::fprintf(F, "  \"hardware_concurrency\": %u,\n", Hardware);
    std::fprintf(F,
                 "  \"subject\": {\"candidate_predicates\": %d, "
                 "\"loop_iters\": %d, \"trace_len\": %zu},\n",
                 GuardCount, LoopIters, TraceLen);
    std::fprintf(F, "  \"runs\": [\n");
    for (size_t I = 0; I < Runs.size(); ++I) {
      const RunResult &R = Runs[I];
      double ReexecPerSec =
          R.LocateMs > 0 ? R.Report.Reexecutions / (R.LocateMs / 1000) : 0;
      std::fprintf(F,
                   "    {\"threads\": %u, \"locate_ms\": %.3f, "
                   "\"speedup\": %.3f, \"reexecutions\": %zu, "
                   "\"reexec_per_sec\": %.1f, "
                   "\"identical_to_serial\": %s}%s\n",
                   R.Threads, R.LocateMs,
                   R.LocateMs > 0 ? Serial.LocateMs / R.LocateMs : 0.0,
                   R.Report.Reexecutions, ReexecPerSec,
                   sameOutcome(Serial, R) ? "true" : "false",
                   I + 1 < Runs.size() ? "," : "");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"speedup_4t\": %.3f,\n", Speedup4);
    std::fprintf(F, "  \"speedup_check\": \"%s\",\n",
                 !SpeedupApplies ? "skipped: hardware_concurrency < 4"
                 : SpeedupOk     ? "pass"
                                 : "fail");
    std::fprintf(F, "  \"deterministic\": %s\n", Identical ? "true" : "false");
    std::fprintf(F, "}\n");
    std::fclose(F);
    std::printf("wrote %s\n", JsonPath);
  } else {
    std::fprintf(stderr, "could not write %s\n", JsonPath);
  }

  if (!Identical)
    return 1;
  if (SpeedupApplies && !SpeedupOk)
    return 1;
  return 0;
}
