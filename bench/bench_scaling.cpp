//===-- bench/bench_scaling.cpp - Cost scaling with trace length ----------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Supplementary scaling study backing Table 4's cost model: tracing,
// region-tree construction, one verification (switched re-execution +
// alignment), and a backward slice all scale linearly with trace length.
// The subject is the Figure-1 shape with a crc loop of parameterized
// iteration count between the omission and the observation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "align/Aligner.h"
#include "analysis/StaticAnalysis.h"
#include "ddg/DepGraph.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "support/Diagnostic.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>

using namespace eoe;
using namespace eoe::interp;

namespace {

std::string subject(int Iterations) {
  return "fn main() {\n"
         "var save = 0;\n"
         "var flags = 0;\n"
         "if (save) {\n"                       // line 4 <- switched
         "flags = flags + 8;\n"
         "}\n"
         "var i = 0;\n"
         "var crc = 0;\n"
         "while (i < " + std::to_string(Iterations) + ") {\n"
         "crc = (crc * 31 + i) % 65521;\n"
         "i = i + 1;\n"
         "}\n"
         "print(crc);\n"
         "print(flags);\n"                     // line 14: the observation
         "}\n";
}

} // namespace

int main() {
  bench::banner("Scaling: per-phase cost vs trace length "
                "(all phases are expected to grow linearly)");

  Table T({"loop iters", "trace len", "trace (ms)", "trace+stats (ms)",
           "regions (ms)", "verify once (ms)", "slice (ms)"});
  double PrevVerify = 0;
  bool Linearish = true;
  int PrevIters = 0;
  // The observability layer's contract is that a null registry costs one
  // pointer branch; the trace+stats column lets the log show the enabled
  // cost is itself within run-to-run noise, which bounds the disabled
  // cost from above.
  support::StatsRegistry Stats;
  for (int Iterations : {2000, 8000, 32000, 128000}) {
    DiagnosticEngine Diags;
    auto Prog = lang::parseAndCheck(subject(Iterations), Diags);
    if (!Prog) {
      std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
      return 1;
    }
    analysis::StaticAnalysis SA(*Prog);
    Interpreter Interp(*Prog, SA);

    Timer TraceTimer;
    ExecutionTrace E = Interp.run({});
    double TraceMs = TraceTimer.seconds() * 1000;

    Interpreter InstrumentedInterp(*Prog, SA, &Stats);
    Timer StatsTimer;
    ExecutionTrace EStats = InstrumentedInterp.run({});
    double StatsMs = StatsTimer.seconds() * 1000;
    if (EStats.size() != E.size()) {
      std::fprintf(stderr, "instrumented run diverged\n");
      return 1;
    }

    Timer RegionTimer;
    align::RegionTree Tree(E);
    double RegionMs = RegionTimer.seconds() * 1000;

    Timer VerifyTimer;
    SwitchSpec Spec{Prog->statementAtLine(4), 1};
    ExecutionTrace EP = Interp.runSwitched({}, Spec, 10'000'000);
    align::ExecutionAligner A(E, EP);
    align::AlignResult R = A.match(static_cast<TraceIdx>(E.size() - 1));
    double VerifyMs = VerifyTimer.seconds() * 1000;
    if (!R.found()) {
      std::fprintf(stderr, "alignment unexpectedly failed\n");
      return 1;
    }

    Timer SliceTimer;
    ddg::DepGraph G(E);
    auto Member = G.backwardClosure({E.Outputs[0].Step},
                                    ddg::DepGraph::ClosureOptions());
    double SliceMs = SliceTimer.seconds() * 1000;
    if (G.stats(Member).DynamicInstances < static_cast<size_t>(Iterations)) {
      std::fprintf(stderr, "slice unexpectedly small\n");
      return 1;
    }

    T.addRow({std::to_string(Iterations), std::to_string(E.size()),
              formatDouble(TraceMs, 2), formatDouble(StatsMs, 2),
              formatDouble(RegionMs, 2), formatDouble(VerifyMs, 2),
              formatDouble(SliceMs, 2)});

    // Linearity check: 4x the work should cost clearly less than ~12x
    // (generous bound; rules out accidental quadratic behaviour).
    if (PrevVerify > 0.05 && Iterations == PrevIters * 4)
      Linearish = Linearish && VerifyMs < 12 * PrevVerify + 5;
    PrevVerify = VerifyMs;
    PrevIters = Iterations;
  }
  std::printf("%s", T.str().c_str());
  std::printf("\nLinear-scaling sanity check: %s\n",
              Linearish ? "HOLDS" : "VIOLATED (superlinear growth!)");
  bench::dumpStats(Stats, "Interpreter statistics across all scaling runs");
  return Linearish ? 0 : 1;
}
