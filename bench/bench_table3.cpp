//===-- bench/bench_table3.cpp - Table 3: effectiveness ------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Regenerates Table 3 ("Effectiveness"): per fault, the number of user
// prunings, verifications, iterations, and expanded implicit edges of the
// demand-driven procedure, plus the final pruned slice (IPS) and the
// failure-inducing chain (OS). The paper's observations to reproduce in
// shape:
//   - every root cause is located;
//   - iterations and expanded edges are mostly very small;
//   - IPS sizes are close to OS (near-optimal slices);
//   - grep is the hardest case (most verifications, largest OS).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Table.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace eoe;
using namespace eoe::bench;
using namespace eoe::workloads;

namespace {

struct PaperRow {
  const char *Fault;
  int Prunings, Verifications, Iterations, Edges;
  const char *IPS, *OS;
};

// Verbatim from the paper's Table 3.
const PaperRow PaperRows[] = {
    {"flex-v1-f9", 2, 5, 1, 5, "17/51", "7/16"},
    {"flex-v2-f14", 1, 4, 1, 1, "7/24", "7/24"},
    {"flex-v3-f10", 1, 1, 1, 1, "4/2", "4/2"},
    {"flex-v4-f6", 0, 6, 1, 5, "8/28", "6/23"},
    {"flex-v5-f6", 1, 2, 1, 2, "10/27", "10/27"},
    {"grep-v4-f2", 15, 313, 1, 62, "103/2177", "93/1196"},
    {"gzip-v2-f3", 2, 1, 1, 1, "5/7", "5/7"},
    {"sed-v3-f2", 9, 36, 2, 2, "25/74", "23/69"},
    {"sed-v3-f3", 10, 115, 1, 1, "26/74", "26/74"},
};

const PaperRow *paperRow(const std::string &Id) {
  for (const PaperRow &R : PaperRows)
    if (Id == R.Fault)
      return &R;
  return nullptr;
}

} // namespace

int main() {
  bench::banner("Table 3: Effectiveness of demand-driven implicit "
                "dependence location (paper values in parentheses)");

  Table T({"Fault", "#prunings", "#verifs", "#iters", "#edges",
           "IPS (paper)", "OS (paper)", "located"});
  bool AllLocated = true;
  size_t MaxVerifications = 0;
  std::string HardestFault;
  support::StatsRegistry Stats;
  for (const FaultInfo &F : faults()) {
    FaultRunner Runner(F);
    if (!Runner.valid()) {
      std::fprintf(stderr, "error: %s did not reproduce\n", F.Id.c_str());
      return 1;
    }
    FaultRunner::Options Opts;
    Opts.ComputeSlices = false;
    Opts.Stats = &Stats;
    ExperimentResult R = Runner.run(Opts);
    const PaperRow *P = paperRow(F.Id);

    auto Num = [](size_t Ours, int Paper) {
      return std::to_string(Ours) + " (" + std::to_string(Paper) + ")";
    };
    T.addRow({F.Id,
              Num(R.Report.UserPrunings, P ? P->Prunings : -1),
              Num(R.Report.Verifications, P ? P->Verifications : -1),
              Num(R.Report.Iterations, P ? P->Iterations : -1),
              Num(R.Report.ExpandedEdges, P ? P->Edges : -1),
              sizeCell(R.Report.IPSStats) + " (" + (P ? P->IPS : "-") + ")",
              sizeCell(R.OS) + " (" + (P ? P->OS : "-") + ")",
              R.Valid ? "yes" : "NO"});
    AllLocated = AllLocated && R.Valid;
    if (R.Report.Verifications > MaxVerifications) {
      MaxVerifications = R.Report.Verifications;
      HardestFault = F.Id;
    }
  }
  std::printf("%s", T.str().c_str());

  std::printf("\nAll root causes located: %s\n", AllLocated ? "YES" : "NO");
  std::printf("Hardest case by verifications: %s (paper: grep-v4-f2)\n",
              HardestFault.c_str());
  bench::dumpStats(Stats,
                   "Per-phase pipeline cost across all Table 3 faults");
  return AllLocated ? 0 : 1;
}
