//===-- bench/bench_table1.cpp - Table 1: benchmark characteristics -----------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Regenerates Table 1 ("Characteristics of benchmarks"): lines of code,
// number of procedures, and error type per benchmark program. The paper's
// values for the original Siemens-suite binaries are printed alongside
// ours for the Siml miniatures (absolute sizes differ by design; the
// *structure* -- four utilities of the same kinds, multiple seeded faults
// -- is what the reproduction preserves).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "lang/Parser.h"
#include "support/Diagnostic.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace eoe;
using namespace eoe::workloads;

namespace {

struct PaperRow {
  const char *Name;
  int LOC;
  int Procedures;
};

const PaperRow PaperRows[] = {
    {"flex", 10459, 162},
    {"grep", 10068, 146},
    {"gzip", 5680, 104},
    {"sed", 14427, 255},
};

size_t countLines(const char *Source) {
  size_t Lines = 0;
  for (const char *P = Source; *P; ++P)
    if (*P == '\n')
      ++Lines;
  return Lines;
}

} // namespace

int main() {
  bench::banner("Table 1: Characteristics of benchmarks "
                "(paper LOC/procs vs our Siml miniatures)");

  Table T({"Benchmark", "paper LOC", "paper #procs", "our LOC", "our #procs",
           "Error type", "Description"});
  for (const BenchmarkInfo &B : benchmarks()) {
    DiagnosticEngine Diags;
    auto Prog = lang::parseAndCheck(B.ReferenceSource, Diags);
    if (!Prog) {
      std::fprintf(stderr, "error: %s failed to parse:\n%s", B.Name.c_str(),
                   Diags.str().c_str());
      return 1;
    }
    const PaperRow *Paper = nullptr;
    for (const PaperRow &R : PaperRows)
      if (B.Name == R.Name)
        Paper = &R;
    T.addRow({B.Name, Paper ? std::to_string(Paper->LOC) : "-",
              Paper ? std::to_string(Paper->Procedures) : "-",
              std::to_string(countLines(B.ReferenceSource)),
              std::to_string(Prog->functions().size()), B.ErrorType,
              B.Description});
  }
  std::printf("%s", T.str().c_str());

  std::printf("\n%zu seeded execution omission faults registered:\n",
              faults().size());
  Table F({"Fault", "Benchmark", "Root line", "Description"});
  for (const FaultInfo &Fault : faults())
    F.addRow({Fault.Id, Fault.BenchmarkName,
              std::to_string(Fault.RootCauseLine), Fault.Description});
  std::printf("%s", F.str().c_str());
  return 0;
}
