//===-- bench/bench_naive_combination.cpp - Section 3.2's pitfall --------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Reproduces the paper's closing argument of section 3.2: "a plausible
// alternative ... is to directly combine relevant slicing and confidence
// analysis. Unfortunately, this straightforward solution is problematic:
// propagating confidence along these possibly false dependence edges may
// result in a faulty statement appearing non-faulty" (the Figure 1
// example: conf 1 flows from the correct S9 over the false potential edge
// S7 -> S9 and on to the root S1, sanitizing it).
//
// The naive scheme modeled here: add every potential dependence edge to
// the graph unverified, and treat "reaches a correct output" as
// confidence 1 (reachability-based propagation). A fault's root cause is
// *sanitized* when it reaches a correct output only through potential
// edges. The verified-implicit-edge approach never adds the false edges,
// so the root cause survives pruning for every fault.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ddg/DepGraph.h"
#include "support/Table.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace eoe;
using namespace eoe::bench;
using namespace eoe::interp;
using namespace eoe::workloads;

int main() {
  banner("Section 3.2: naive 'relevant slicing + confidence' combination "
         "vs verified implicit dependences");

  Table T({"Fault", "root reaches correct output", "via real edges only",
           "via potential edges (naive)", "naive sanitizes root?",
           "verified approach locates?"});

  size_t Sanitized = 0, Located = 0;
  for (const FaultInfo &F : faults()) {
    FaultRunner Runner(F);
    if (!Runner.valid()) {
      std::fprintf(stderr, "error: %s did not reproduce\n", F.Id.c_str());
      return 1;
    }
    core::DebugSession Session(Runner.faultyProgram(), F.FailingInput,
                               Runner.expectedOutputs(), F.TestSuite);
    const ExecutionTrace &Trace = Session.trace();
    const auto &V = Session.verdicts();

    std::vector<TraceIdx> CorrectSeeds;
    for (size_t O : V.CorrectOutputs)
      CorrectSeeds.push_back(Trace.Outputs.at(O).Step);

    // Reachability over the *real* (data + control) edges.
    ddg::DepGraph Real(Trace);
    auto RealReach =
        Real.backwardClosure(CorrectSeeds, ddg::DepGraph::ClosureOptions());

    // The naive scheme: every potential dependence becomes an edge.
    ddg::DepGraph Naive(Trace);
    for (TraceIdx I = 0; I < Trace.size(); ++I)
      for (const UseRecord &Use : Trace.step(I).Uses)
        for (TraceIdx P :
             Session.potentialDeps().compute(I, Use, /*OnePerPred=*/true))
          Naive.addImplicitEdge(I, P, /*Strong=*/false);
    auto NaiveReach =
        Naive.backwardClosure(CorrectSeeds, ddg::DepGraph::ClosureOptions());

    StmtId Root = Runner.rootCause();
    bool RealHit = false, NaiveHit = false;
    for (TraceIdx I = 0; I < Trace.size(); ++I) {
      if (Trace.step(I).Stmt != Root)
        continue;
      RealHit = RealHit || RealReach[I];
      NaiveHit = NaiveHit || NaiveReach[I];
    }
    // Sanitized: the naive conf-1 rule prunes the root because false
    // potential edges (and only they) connect it to correct outputs.
    bool RootSanitized = NaiveHit && !RealHit;

    FaultRunner::Options Opts;
    Opts.ComputeSlices = false;
    ExperimentResult R = Runner.run(Opts);

    T.addRow({F.Id, NaiveHit ? "yes" : "no", RealHit ? "yes" : "no",
              (NaiveHit && !RealHit) ? "yes" : "no",
              RootSanitized ? "YES (root lost)" : "no",
              R.Valid ? "yes" : "NO"});
    Sanitized += RootSanitized;
    Located += R.Valid;
  }
  std::printf("%s", T.str().c_str());

  std::printf("\nNaive combination sanitizes the root cause for %zu/9 "
              "faults; the verified-implicit-edge procedure locates "
              "%zu/9.\n",
              Sanitized, Located);
  std::printf("Paper: \"confidence analysis can only be performed along "
              "verified implicit dependence edges\" -- %s.\n",
              (Located == 9 && Sanitized > 0) ? "reproduced"
                                              : "see rows above");
  return Located == 9 ? 0 : 1;
}
