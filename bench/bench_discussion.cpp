//===-- bench/bench_discussion.cpp - Table 5: feasibility and soundness --------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Regenerates the paper's section 5 discussion examples:
//   Table 5(a) feasibility -- forcing a predicate may traverse a path
//   infeasible in the faulty program; the dependence is still reported
//   (the predicate itself may be the error).
//   Table 5(b) soundness -- two nested predicates testing the same faulty
//   definition: switching one at a time misses the implicit dependence
//   (the technique's documented unsoundness).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/ValuePerturb.h"
#include "core/VerifyDep.h"
#include "analysis/StaticAnalysis.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "slicing/OutputVerdicts.h"
#include "support/Diagnostic.h"

#include <cstdio>

using namespace eoe;
using namespace eoe::bench;
using namespace eoe::core;
using namespace eoe::interp;

namespace {

/// Runs one VerifyDep query over a tiny scenario.
DepVerdict runCase(const char *Src, std::vector<int64_t> Input,
                   uint32_t PredLine, uint32_t UseLine, const char *VarName,
                   int64_t Vexp) {
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Src, Diags);
  if (!Prog) {
    std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
    return DepVerdict::NotImplicit;
  }
  analysis::StaticAnalysis SA(*Prog);
  Interpreter Interp(*Prog, SA);
  ExecutionTrace T = Interp.run(Input);

  slicing::OutputVerdicts V;
  V.WrongOutput = 0;
  V.ExpectedValue = Vexp;

  ImplicitDepVerifier Verifier(Interp, T, Input, V,
                               ImplicitDepVerifier::Config());
  TraceIdx P = InvalidId, U = InvalidId;
  for (TraceIdx I = 0; I < T.size(); ++I) {
    if (T.step(I).Stmt == Prog->statementAtLine(PredLine))
      P = I;
    if (T.step(I).Stmt == Prog->statementAtLine(UseLine))
      U = I;
  }
  for (const UseRecord &Use : T.step(U).Uses)
    if (isValidId(Use.Var) && Prog->variable(Use.Var).Name == VarName)
      return Verifier.verify(P, U, Use.LoadExpr);
  std::fprintf(stderr, "error: use of %s not found\n", VarName);
  return DepVerdict::NotImplicit;
}

} // namespace

int main() {
  banner("Table 5: discussion examples (feasibility and soundness)");

  // Table 5(a): A = 15 takes P1; P2 is false. Forcing P2 true follows a
  // path infeasible in this program text -- the dependence is reported
  // anyway, by design.
  const char *FeasSrc = "fn main() {\n"
                        "var A = input();\n" // 2
                        "var X = 1;\n"       // 3: S1
                        "if (A > 10) {\n"    // 4: P1
                        "A = 3;\n"           // 5: S2
                        "}\n"
                        "if (A > 100) {\n"   // 7: P2
                        "X = 2;\n"           // 8: S3
                        "}\n"
                        "print(X);\n"        // 10: S3's use
                        "}";
  DepVerdict Feas = runCase(FeasSrc, {15}, 7, 10, "X", /*Vexp=*/42);
  std::printf("\nTable 5(a) feasibility: VerifyDep(P2, X@print) = %s\n",
              depVerdictName(Feas));
  bool FeasOk = Feas != DepVerdict::NotImplicit;
  std::printf("paper: the (possibly infeasible) dependence IS exposed -- "
              "%s\n", FeasOk ? "reproduced" : "VIOLATED");

  // Table 5(b): A = 5; P1 false, P2 guarded by P1 also tests A. Switching
  // P1 alone makes P2 evaluate false, so no dependence is found although
  // one exists per Definition 2 -- the documented miss.
  const char *SoundSrc = "fn main() {\n"
                         "var A = input();\n" // 2
                         "var X = 1;\n"       // 3: S1
                         "if (A > 10) {\n"    // 4: P1
                         "if (A < 5) {\n"     // 5: P2
                         "X = 2;\n"           // 6: S2
                         "}\n"
                         "}\n"
                         "print(X);\n"        // 9: S4
                         "}";
  DepVerdict Sound = runCase(SoundSrc, {5}, 4, 9, "X", /*Vexp=*/42);
  std::printf("\nTable 5(b) soundness: VerifyDep(P1, X@print) = %s\n",
              depVerdictName(Sound));
  bool SoundOk = Sound == DepVerdict::NotImplicit;
  std::printf("paper: the dependence is MISSED (nested predicates share "
              "the faulty definition) -- %s\n",
              SoundOk ? "reproduced" : "VIOLATED");

  // Section 5's proposed remedy: perturb the faulty definition's value
  // instead of a branch outcome. Satisfiable variant of 5(b): the
  // correct A (20) would take both nested guards.
  std::printf("\nSection 5 extension: value perturbation on the nested-"
              "predicate case\n");
  const char *PerturbSrc = "fn main() {\n"
                           "var A = input();\n" // 2 (faulty: 5, correct: 20)
                           "var X = 1;\n"       // 3
                           "if (A > 10) {\n"    // 4
                           "if (A > 15) {\n"    // 5
                           "X = 2;\n"           // 6
                           "}\n"
                           "}\n"
                           "print(X);\n"        // 9
                           "}";
  bool PerturbOk = false;
  {
    DiagnosticEngine Diags;
    auto Prog = lang::parseAndCheck(PerturbSrc, Diags);
    if (Prog) {
      analysis::StaticAnalysis SA(*Prog);
      Interpreter Interp(*Prog, SA);
      ExecutionTrace T = Interp.run({5});
      slicing::OutputVerdicts V;
      V.WrongOutput = 0;
      V.ExpectedValue = 2;
      TraceIdx DefA = InvalidId, Use = InvalidId;
      ExprId Load = InvalidId;
      for (TraceIdx I = 0; I < T.size(); ++I) {
        if (T.step(I).Stmt == Prog->statementAtLine(2))
          DefA = I;
        if (T.step(I).Stmt == Prog->statementAtLine(9))
          Use = I;
      }
      for (const UseRecord &U : T.step(Use).Uses)
        Load = U.LoadExpr;
      ValuePerturbVerifier Verifier(Interp, T, {5}, V,
                                    ValuePerturbVerifier::Config());
      auto R = Verifier.verify(DefA, Use, Load, {7, 12, 20, 25});
      std::printf("  candidates {7, 12, 20, 25}: exposed=%s, output "
                  "corrected=%s, witness=%lld, re-executions=%zu\n",
                  R.DependenceExposed ? "yes" : "no",
                  R.OutputCorrected ? "yes" : "no",
                  static_cast<long long>(R.WitnessValue), R.Reexecutions);
      PerturbOk = R.DependenceExposed && R.OutputCorrected;
    }
  }
  std::printf("paper: 'perturb the value of A instead of the branch "
              "outcome, which is much more expensive' -- dependence "
              "exposed at integer-domain cost: %s\n",
              PerturbOk ? "reproduced" : "VIOLATED");

  return (FeasOk && SoundOk && PerturbOk) ? 0 : 1;
}
