//===-- bench/bench_table2.cpp - Table 2: slice sizes --------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Regenerates Table 2 ("Execution Omission Errors"): for every fault, the
// relevant slice (RS), dynamic slice (DS), and pruned slice (PS) sizes in
// unique statements / dynamic instances, plus the RS/DS and RS/PS ratios.
// The paper's observations to reproduce in shape:
//   - RS captures every root cause; DS and PS miss all of them;
//   - static RS and DS are comparable, dynamic RS is much larger;
//   - PS is significantly smaller than RS.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Table.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace eoe;
using namespace eoe::bench;
using namespace eoe::workloads;

namespace {

struct PaperRow {
  const char *Fault;
  const char *RS, *DS, *PS, *RSoverDS, *RSoverPS;
};

// Verbatim from the paper's Table 2 (static/dynamic).
const PaperRow PaperRows[] = {
    {"flex-v1-f9", "963/88K", "946/83K", "13/31", "1.02/1.06", "74/2838"},
    {"flex-v2-f14", "849/157K", "714/27K", "9/476", "1.18/5.8", "94/329"},
    {"flex-v3-f10", "600/103K", "80/6.8K", "8/294", "7.5/15.1", "75/350"},
    {"flex-v4-f6", "894/265K", "629/29K", "2/4", "1.42/9.14", "447/66250"},
    {"flex-v5-f6", "108/915", "104/873", "9/15", "1.04/1.05", "12/61"},
    {"grep-v4-f2", "489/32K", "416/3K", "416/3K", "1.18/10.7", "1.18/10.7"},
    {"gzip-v2-f3", "48/618", "6/9", "3/5", "8/68.7", "16/123"},
    {"sed-v3-f2", "575/392K", "498/118K", "18/76", "1.15/3.32", "31.9/5158"},
    {"sed-v3-f3", "222/5.0K", "202/3.8K", "202/3.8k", "1.10/1.32",
     "1.10/1.32"},
};

const PaperRow *paperRow(const std::string &Id) {
  for (const PaperRow &R : PaperRows)
    if (Id == R.Fault)
      return &R;
  return nullptr;
}

} // namespace

int main() {
  bench::banner("Table 2: RS / DS / PS slice sizes (static/dynamic), "
                "paper values in parentheses");

  Table T({"Fault", "RS (paper)", "DS (paper)", "PS (paper)", "RS/DS",
           "RS/PS", "RS root?", "DS root?", "PS root?"});
  bool ShapeHolds = true;
  for (const FaultInfo &F : faults()) {
    FaultRunner Runner(F);
    if (!Runner.valid()) {
      std::fprintf(stderr, "error: %s did not reproduce\n", F.Id.c_str());
      return 1;
    }
    FaultRunner::Options Opts;
    ExperimentResult R = Runner.run(Opts);
    const PaperRow *P = paperRow(F.Id);

    auto Cell = [&](const ddg::SliceStats &S, const char *Paper) {
      return sizeCell(S) + " (" + (Paper ? Paper : "-") + ")";
    };
    T.addRow({F.Id, Cell(R.RS, P ? P->RS : nullptr),
              Cell(R.DS, P ? P->DS : nullptr),
              Cell(R.PS, P ? P->PS : nullptr), ratioCell(R.RS, R.DS),
              ratioCell(R.RS, R.PS), R.RSHasRoot ? "yes" : "NO",
              R.DSHasRoot ? "YES" : "no", R.PSHasRoot ? "YES" : "no"});

    ShapeHolds = ShapeHolds && R.RSHasRoot && !R.DSHasRoot && !R.PSHasRoot &&
                 R.RS.DynamicInstances >= R.DS.DynamicInstances &&
                 R.PS.DynamicInstances <= R.DS.DynamicInstances;
  }
  std::printf("%s", T.str().c_str());

  std::printf("\nShape check (RS captures every root cause, DS/PS miss all, "
              "dyn RS >= dyn DS >= dyn PS): %s\n",
              ShapeHolds ? "HOLDS" : "VIOLATED");
  return ShapeHolds ? 0 : 1;
}
