//===-- bench/bench_baseline_cps.cpp - ICSE'06 baseline comparison -------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Compares critical-predicate switching (ICSE'06, the technique the paper
// builds on -- section 6) against the demand-driven implicit-dependence
// locator on the nine faults. The contrast the paper draws:
//  - a critical predicate, when one exists, is merely ON the failure
//    path; the root cause still has to be reached from it;
//  - when the omitted branch had several observable effects, no single
//    switch reproduces the correct output and the search fails outright;
//  - brute-force switching re-executes for every candidate, while the
//    demand-driven procedure verifies only a selected few.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/CriticalPredicate.h"
#include "lang/PrettyPrinter.h"
#include "support/Table.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace eoe;
using namespace eoe::bench;
using namespace eoe::core;
using namespace eoe::workloads;

int main() {
  banner("Baseline: critical-predicate switching (ICSE'06) vs "
         "implicit-dependence location (this paper)");

  Table T({"Fault", "CPS found?", "CPS switches", "CPS hit = root?",
           "locate iters", "locate verifs", "root located?"});
  size_t CPSFound = 0, CPSIsRoot = 0, Located = 0;
  for (const FaultInfo &F : faults()) {
    FaultRunner Runner(F);
    if (!Runner.valid()) {
      std::fprintf(stderr, "error: %s did not reproduce\n", F.Id.c_str());
      return 1;
    }

    // The ICSE'06 search.
    core::DebugSession Session(Runner.faultyProgram(), F.FailingInput,
                               Runner.expectedOutputs(), {});
    CriticalPredicateSearch Search(Session.interpreter(), Session.trace(),
                                   F.FailingInput, Runner.expectedOutputs(),
                                   CriticalPredicateSearch::Config());
    auto CPS = Search.search();
    bool HitIsRoot =
        CPS.Found && Session.trace().step(CPS.CriticalInstance).Stmt ==
                         Runner.rootCause();

    // This paper's technique.
    FaultRunner::Options Opts;
    Opts.ComputeSlices = false;
    ExperimentResult R = Runner.run(Opts);

    T.addRow({F.Id, CPS.Found ? "yes" : "no", std::to_string(CPS.Switches),
              CPS.Found ? (HitIsRoot ? "yes" : "NO") : "-",
              std::to_string(R.Report.Iterations),
              std::to_string(R.Report.Verifications),
              R.Valid ? "yes" : "NO"});
    CPSFound += CPS.Found;
    CPSIsRoot += HitIsRoot;
    Located += R.Valid;
  }
  std::printf("%s", T.str().c_str());

  std::printf("\nCPS finds a critical predicate for %zu/9 faults and it is "
              "the root cause for %zu/9; implicit-dependence location "
              "reaches the root cause for %zu/9.\n",
              CPSFound, CPSIsRoot, Located);
  std::printf("This is the paper's section 6 contrast: switching exposes "
              "evidence, but only the dependence-walking technique reaches "
              "execution omission root causes.\n");
  return Located == 9 ? 0 : 1;
}
