//===-- bench/bench_confidence.cpp - Figure 4: confidence analysis -------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Regenerates the paper's Figure 4 confidence example:
//   10: a = <input>   C = f(range(a))  -- between 0 and 1
//   20: b = a % 2     C = 1            -- printed correct at 40
//   30: c = a + 2     C = 0            -- feeds only the wrong output 41
// and sweeps the value-profile range to show the confidence estimate
// rising with the observed range, as the PLDI'06 formula prescribes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/StaticAnalysis.h"
#include "ddg/DepGraph.h"
#include "interp/Interpreter.h"
#include "interp/Profiler.h"
#include "lang/Parser.h"
#include "slicing/Confidence.h"
#include "support/Diagnostic.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace eoe;
using namespace eoe::bench;
using namespace eoe::interp;
using namespace eoe::slicing;

int main() {
  banner("Figure 4: confidence analysis example");

  const char *Src = "fn main() {\n"
                    "var a = input();\n" // 2: "10"
                    "var b = a % 2;\n"   // 3: "20"
                    "var c = a + 2;\n"   // 4: "30"
                    "print(b);\n"        // 5: "40" correct
                    "print(c);\n"        // 6: "41" wrong
                    "}";
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Src, Diags);
  if (!Prog) {
    std::fprintf(stderr, "parse error:\n%s", Diags.str().c_str());
    return 1;
  }
  analysis::StaticAnalysis SA(*Prog);
  Interpreter Interp(*Prog, SA);

  Table T({"profile runs", "C(10: a=..)", "C(20: b=a%2)", "C(30: c=a+2)"});
  double PrevA = 0.0;
  bool Monotone = true;
  for (size_t Runs : {2, 8, 32, 128}) {
    std::vector<std::vector<int64_t>> Suite;
    for (size_t I = 0; I < Runs; ++I)
      Suite.push_back({static_cast<int64_t>(3 * I + 1)});
    Profile Prof = profileTestSuite(Interp, *Prog, Suite);

    ExecutionTrace Trace = Interp.run({1});
    ddg::DepGraph G(Trace);
    OutputVerdicts V;
    V.CorrectOutputs = {0};
    V.WrongOutput = 1;
    V.ExpectedValue = 999;
    ConfidenceAnalysis CA(*Prog, G, &Prof.Values, V);

    auto ConfAtLine = [&](uint32_t Line) {
      StmtId S = Prog->statementAtLine(Line);
      for (TraceIdx I = 0; I < Trace.size(); ++I)
        if (Trace.step(I).Stmt == S)
          return CA.confidence(I);
      return -1.0;
    };
    double CA10 = ConfAtLine(2), CA20 = ConfAtLine(3), CA30 = ConfAtLine(4);
    T.addRow({std::to_string(Runs), formatDouble(CA10, 3),
              formatDouble(CA20, 3), formatDouble(CA30, 3)});
    Monotone = Monotone && CA10 >= PrevA && CA20 == 1.0 && CA30 == 0.0 &&
               CA10 > 0.0 && CA10 < 1.0;
    PrevA = CA10;
  }
  std::printf("%s", T.str().c_str());

  std::printf("\nFigure 4 shape (C=1 for the invertibly-verified b, C=0 for "
              "the wrong-output-only c, 0 < C < 1 for a, rising with the "
              "observed range): %s\n",
              Monotone ? "REPRODUCED" : "VIOLATED");
  return Monotone ? 0 : 1;
}
