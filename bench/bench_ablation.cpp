//===-- bench/bench_ablation.cpp - Design-choice ablations ----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Ablates the design decisions DESIGN.md section 5 calls out, across all
// nine faults:
//   1. Verify-fanout (Figure 5): verifying p -> t for every potential
//      dependent of a winning predicate costs extra verifications but
//      enables pruning.
//   2. One-instance-per-predicate candidate dedup vs all instances.
//   3. Potential-dependence backend: pure static vs profile-union graph
//      (the paper's prototype used the union graph).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Table.h"
#include "workloads/Runner.h"

#include <cstdio>

using namespace eoe;
using namespace eoe::bench;
using namespace eoe::workloads;

namespace {

struct Config {
  const char *Name;
  FaultRunner::Options Opts;
};

} // namespace

int main() {
  banner("Ablations: fanout / candidate dedup / PD backend "
         "(located count, total verifications, total edges, total IPS "
         "instances over the 9 faults)");

  std::vector<Config> Configs;
  {
    Config C{"baseline (fanout, dedup, static PD)", {}};
    Configs.push_back(C);
  }
  {
    Config C{"no verify-fanout", {}};
    C.Opts.VerifyFanout = false;
    Configs.push_back(C);
  }
  {
    Config C{"all candidate instances (no dedup)", {}};
    C.Opts.OnePerPredicate = false;
    Configs.push_back(C);
  }
  {
    Config C{"union-graph PD backend", {}};
    C.Opts.Backend = slicing::PotentialDepAnalyzer::Backend::UnionGraph;
    Configs.push_back(C);
  }
  {
    Config C{"safe path check (vs paper's edge check)", {}};
    C.Opts.UsePathCheck = true;
    Configs.push_back(C);
  }

  Table T({"configuration", "located", "verifications", "edges",
           "IPS dyn (total)", "prunings"});
  for (Config &C : Configs) {
    C.Opts.ComputeSlices = false;
    size_t Located = 0, Verifs = 0, Edges = 0, IPS = 0, Prunings = 0;
    for (const FaultInfo &F : faults()) {
      FaultRunner Runner(F);
      if (!Runner.valid())
        continue;
      ExperimentResult R = Runner.run(C.Opts);
      Located += R.Valid ? 1 : 0;
      Verifs += R.Report.Verifications;
      Edges += R.Report.ExpandedEdges;
      IPS += R.Report.IPSStats.DynamicInstances;
      Prunings += R.Report.UserPrunings;
    }
    T.addRow({C.Name, std::to_string(Located) + "/9", std::to_string(Verifs),
              std::to_string(Edges), std::to_string(IPS),
              std::to_string(Prunings)});
  }
  std::printf("%s", T.str().c_str());

  std::printf("\nReading: the paper argues fanout buys pruning power "
              "(Figure 5) at the cost of verifications, candidate dedup "
              "keeps verification counts practical, and the union-graph "
              "backend trades false candidates for profile coverage.\n");
  return 0;
}
