//===-- tests/CriticalPredicateTest.cpp - ICSE'06 baseline tests ---------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/CriticalPredicate.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;
using eoe::test::Session;

namespace {

/// Single-effect omission: switching the guard alone corrects the whole
/// output, so a critical predicate exists.
const char *SingleEffectSrc = "fn main() {\n"
                              "var flag = 0;\n" // 2 (root: should be 1)
                              "var x = 5;\n"    // 3
                              "if (flag) {\n"   // 4 <- the critical predicate
                              "x = 9;\n"
                              "}\n"
                              "print(x);\n"
                              "}";

TEST(CriticalPredicateTest, FindsTheCriticalPredicate) {
  Session S(SingleEffectSrc);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({});
  CriticalPredicateSearch Search(*S.Interp, T, {}, {9},
                                 CriticalPredicateSearch::Config());
  auto R = Search.search();
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(T.step(R.CriticalInstance).Stmt, S.stmtAtLine(4));
  // Note: the critical predicate is NOT the root cause (line 2) -- the
  // limitation the PLDI'07 technique overcomes.
}

TEST(CriticalPredicateTest, MultiEffectOmissionHasNoCriticalPredicate) {
  // The omitted branch has TWO effects (x and y); one switch cannot
  // reproduce the fully correct output because both guards read the
  // same corrupted flag but are separate predicates... here a single
  // guard with two outputs keeps it simple: switching corrects both.
  // Instead, use two separate guards:
  const char *Src = "fn main() {\n"
                    "var flag = 0;\n" // 2 (root)
                    "var x = 5;\n"
                    "var y = 5;\n"
                    "if (flag) {\n"   // 5
                    "x = 9;\n"
                    "}\n"
                    "if (flag) {\n"   // 8
                    "y = 9;\n"
                    "}\n"
                    "print(x);\n"
                    "print(y);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({});
  CriticalPredicateSearch Search(*S.Interp, T, {}, {9, 9},
                                 CriticalPredicateSearch::Config());
  auto R = Search.search();
  EXPECT_FALSE(R.Found) << "no single switch fixes both outputs";
  EXPECT_GT(R.Switches, 1u) << "the whole candidate space was tried";

  // Chain mode repairs exactly this: switching both guards together
  // reproduces the expected output (docs/chains.md).
  CriticalPredicateSearch::Config CC;
  CC.ChainDepth = 2;
  CriticalPredicateSearch Chained(*S.Interp, T, {}, {9, 9}, CC);
  auto CR = Chained.search();
  ASSERT_TRUE(CR.Found);
  ASSERT_EQ(CR.CriticalChain.size(), 2u);
  StmtId A = CR.CriticalChain[0].Stmt, B = CR.CriticalChain[1].Stmt;
  EXPECT_TRUE((A == S.stmtAtLine(5) && B == S.stmtAtLine(8)) ||
              (A == S.stmtAtLine(8) && B == S.stmtAtLine(5)));
  EXPECT_EQ(T.step(CR.CriticalInstance).Stmt, A)
      << "CriticalInstance is the chain's base";
}

TEST(CriticalPredicateTest, OrderingsEnumerateAllPredicates) {
  Session S(SingleEffectSrc);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({});
  for (auto Order : {CriticalPredicateSearch::Order::LastExecutedFirst,
                     CriticalPredicateSearch::Order::FirstExecutedFirst,
                     CriticalPredicateSearch::Order::DependenceAware}) {
    CriticalPredicateSearch::Config C;
    C.SearchOrder = Order;
    CriticalPredicateSearch Search(*S.Interp, T, {}, {9}, C);
    auto Candidates = Search.candidateOrder();
    size_t PredCount = 0;
    for (TraceIdx I = 0; I < T.size(); ++I)
      PredCount += T.step(I).isPredicateInstance();
    EXPECT_EQ(Candidates.size(), PredCount);
  }
}

TEST(CriticalPredicateTest, DependenceAwareOrderTriesSlicePredicatesFirst) {
  const char *Src = "fn main() {\n"
                    "var unrelated = 1;\n"
                    "if (unrelated) {\n"      // 3: not in the wrong slice
                    "unrelated = 2;\n"
                    "}\n"
                    "var flag = 0;\n"         // 6 (root)
                    "var x = 5;\n"
                    "if (flag) {\n"           // 8: in PD... switched fixes
                    "x = 9;\n"
                    "}\n"
                    "print(x);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({});

  CriticalPredicateSearch::Config Dep;
  Dep.SearchOrder = CriticalPredicateSearch::Order::DependenceAware;
  CriticalPredicateSearch DepSearch(*S.Interp, T, {}, {9}, Dep);

  CriticalPredicateSearch::Config Naive;
  Naive.SearchOrder = CriticalPredicateSearch::Order::FirstExecutedFirst;
  CriticalPredicateSearch NaiveSearch(*S.Interp, T, {}, {9}, Naive);

  auto RDep = DepSearch.search();
  auto RNaive = NaiveSearch.search();
  ASSERT_TRUE(RDep.Found);
  ASSERT_TRUE(RNaive.Found);
  EXPECT_EQ(RDep.CriticalInstance, RNaive.CriticalInstance);
  // The naive order burns a switch on the unrelated predicate first.
  EXPECT_LE(RDep.Switches, RNaive.Switches);
}

TEST(CriticalPredicateTest, SwitchBudgetIsRespected) {
  Session S(SingleEffectSrc);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({});
  CriticalPredicateSearch::Config C;
  C.MaxSwitches = 0;
  CriticalPredicateSearch Search(*S.Interp, T, {}, {9}, C);
  auto R = Search.search();
  EXPECT_FALSE(R.Found);
  EXPECT_EQ(R.Switches, 0u);
}

} // namespace
