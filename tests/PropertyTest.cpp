//===-- tests/PropertyTest.cpp - Randomized invariant sweeps -------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Property-based tests over seeded random Siml programs: the invariants
// every pipeline stage must uphold regardless of program shape --
// deterministic replay, well-formed region trees, dependence-closed
// slices, alignment laws under predicate switching, and confidence
// bounds.
//
//===----------------------------------------------------------------------===//

#include "align/Aligner.h"
#include "ddg/DepGraph.h"
#include "RandomProgram.h"
#include "slicing/Confidence.h"
#include "slicing/DynamicSlicer.h"
#include "slicing/PotentialDeps.h"
#include "slicing/RelevantSlicer.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::interp;
using namespace eoe::test;

namespace {

class RandomProgramProperty : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override {
    RandomProgramGenerator Gen(GetParam());
    std::string Source = Gen.generate();
    In = Gen.input();
    S = std::make_unique<Session>(Source);
    ASSERT_TRUE(S->valid()) << "seed " << GetParam() << " source:\n"
                            << Source;
    T = S->run(In);
    ASSERT_EQ(T.Exit, ExitReason::Finished)
        << "random programs must terminate cleanly";
    ASSERT_FALSE(T.Outputs.empty());
  }

  std::unique_ptr<Session> S;
  std::vector<int64_t> In;
  ExecutionTrace T;
};

TEST_P(RandomProgramProperty, ReplayIsDeterministic) {
  ExecutionTrace U = S->run(In);
  ASSERT_EQ(T.size(), U.size());
  for (TraceIdx I = 0; I < T.size(); ++I) {
    EXPECT_EQ(T.step(I).Stmt, U.step(I).Stmt);
    EXPECT_EQ(T.step(I).Value, U.step(I).Value);
    EXPECT_EQ(T.step(I).CdParent, U.step(I).CdParent);
    ASSERT_EQ(T.step(I).Uses.size(), U.step(I).Uses.size());
    for (size_t K = 0; K < T.step(I).Uses.size(); ++K)
      EXPECT_EQ(T.step(I).Uses[K].Def, U.step(I).Uses[K].Def);
  }
  EXPECT_EQ(T.outputValues(), U.outputValues());
}

TEST_P(RandomProgramProperty, NonTracingRunBehavesIdentically) {
  Interpreter::Options Plain;
  Plain.Trace = false;
  ExecutionTrace U = S->Interp->run(In, Plain);
  EXPECT_EQ(U.Exit, ExitReason::Finished);
  EXPECT_EQ(T.outputValues(), U.outputValues());
  EXPECT_EQ(T.ExitValue, U.ExitValue);
  EXPECT_TRUE(U.Steps.empty()) << "non-tracing runs record no steps";
}

TEST_P(RandomProgramProperty, RegionForestIsWellFormed) {
  align::RegionTree Tree(T);
  for (TraceIdx I = 0; I < T.size(); ++I) {
    TraceIdx P = Tree.parent(I);
    if (P != InvalidId) {
      EXPECT_LT(P, I) << "parents precede children";
      EXPECT_TRUE(T.step(P).isPredicateInstance() ||
                  !T.step(P).Uses.empty() || !T.step(P).Defs.empty() ||
                  true); // parent is a real instance
      EXPECT_TRUE(Tree.inRegion(I, P));
    }
    // Children are disjoint, ordered, and inside the parent.
    const auto &Kids = Tree.children(I);
    for (size_t K = 1; K < Kids.size(); ++K)
      EXPECT_LT(Kids[K - 1], Kids[K]);
    for (TraceIdx Kid : Kids)
      EXPECT_EQ(Tree.parent(Kid), I);
  }
  // Subtrees are contiguous trace intervals (the aligner depends on it).
  for (TraceIdx Head = 0; Head < T.size(); ++Head) {
    size_t Count = 0;
    TraceIdx Last = Head;
    for (TraceIdx I = Head; I < T.size(); ++I)
      if (Tree.inRegion(I, Head)) {
        ++Count;
        Last = I;
      }
    EXPECT_EQ(Count, Tree.regionSize(Head));
    EXPECT_EQ(Last - Head + 1, Count) << "region " << Head;
  }
}

TEST_P(RandomProgramProperty, BackwardSlicesAreDependenceClosed) {
  ddg::DepGraph G(T);
  TraceIdx Seed = T.Outputs.back().Step;
  auto Member = G.backwardClosure({Seed}, ddg::DepGraph::ClosureOptions());
  for (TraceIdx I = 0; I < T.size(); ++I) {
    if (!Member[I])
      continue;
    for (const UseRecord &Use : T.step(I).Uses) {
      if (Use.Def != InvalidId) {
        EXPECT_TRUE(Member[Use.Def]) << "data dep escapes the slice";
      }
    }
    if (T.step(I).CdParent != InvalidId) {
      EXPECT_TRUE(Member[T.step(I).CdParent])
          << "control dep escapes the slice";
    }
  }
}

TEST_P(RandomProgramProperty, DynamicSliceIsSubsetOfRelevantSlice) {
  ddg::DepGraph G(T);
  slicing::PotentialDepAnalyzer PD(*S->SA, T);
  TraceIdx Seed = T.Outputs.back().Step;
  slicing::SliceResult DS = slicing::computeDynamicSlice(G, Seed);
  slicing::RelevantSliceResult RS = slicing::computeRelevantSlice(G, PD, Seed);
  for (TraceIdx I = 0; I < T.size(); ++I) {
    if (DS.Member[I]) {
      EXPECT_TRUE(RS.Slice.Member[I]) << "DS must be contained in RS";
    }
  }
  EXPECT_GE(RS.Slice.Stats.DynamicInstances, DS.Stats.DynamicInstances);
}

TEST_P(RandomProgramProperty, NoSwitchAlignmentIsIdentity) {
  ExecutionTrace U = S->run(In);
  align::ExecutionAligner A(T, U);
  for (TraceIdx I = 0; I < T.size(); ++I) {
    align::AlignResult R = A.match(I);
    ASSERT_TRUE(R.found());
    EXPECT_EQ(R.Matched, I);
  }
}

TEST_P(RandomProgramProperty, SwitchedRunsObeyAlignmentLaws) {
  // Sample up to three predicate instances spread across the trace.
  std::vector<TraceIdx> Preds;
  for (TraceIdx I = 0; I < T.size(); ++I)
    if (T.step(I).isPredicateInstance())
      Preds.push_back(I);
  if (Preds.empty())
    GTEST_SKIP() << "no predicates in this program";

  for (size_t Pick = 0; Pick < 3 && Pick < Preds.size(); ++Pick) {
    TraceIdx P = Preds[Pick * Preds.size() / 3];
    SwitchSpec Spec{T.step(P).Stmt, T.step(P).InstanceNo};
    ExecutionTrace EP = S->Interp->runSwitched(In, Spec, 500000);
    ASSERT_EQ(EP.SwitchedStep, P) << "identical prefixes index the switch";

    // Prefix identity up to the switch point. Structure (statement,
    // instance number, control parent) is always identical; values are
    // identical only for records whose evaluation *completed* before the
    // switch -- a call-site record enclosing the switched predicate is
    // created earlier but finalized after the callee returns.
    align::RegionTree Tree(T);
    for (TraceIdx I = 0; I < P; ++I) {
      ASSERT_EQ(T.step(I).Stmt, EP.step(I).Stmt);
      ASSERT_EQ(T.step(I).InstanceNo, EP.step(I).InstanceNo);
      ASSERT_EQ(T.step(I).CdParent, EP.step(I).CdParent);
      if (!Tree.inRegion(P, I)) {
        ASSERT_EQ(T.step(I).Value, EP.step(I).Value);
      }
    }
    // The switched instance has the negated outcome.
    ASSERT_NE(T.step(P).BranchTaken, EP.step(P).BranchTaken);

    // Every match pairs identical statements, and matches are injective.
    if (EP.Exit != ExitReason::Finished)
      continue; // Timed-out switched runs align only partially.
    align::ExecutionAligner A(T, EP);
    std::set<TraceIdx> Seen;
    for (TraceIdx I = 0; I < T.size(); ++I) {
      align::AlignResult R = A.match(I);
      if (!R.found())
        continue;
      EXPECT_EQ(T.step(I).Stmt, EP.step(R.Matched).Stmt);
      EXPECT_TRUE(Seen.insert(R.Matched).second)
          << "two originals matched the same switched instance";
    }

    // Switching the same instance again reproduces the switched run.
    ExecutionTrace EP2 = S->Interp->runSwitched(In, Spec, 500000);
    ASSERT_EQ(EP.size(), EP2.size());
    EXPECT_EQ(EP.outputValues(), EP2.outputValues());
  }
}

TEST_P(RandomProgramProperty, ConfidenceIsBoundedAndConsistent) {
  if (T.Outputs.size() < 2)
    GTEST_SKIP() << "need at least two outputs";
  ddg::DepGraph G(T);
  slicing::OutputVerdicts V;
  for (size_t I = 0; I + 1 < T.Outputs.size(); ++I)
    V.CorrectOutputs.push_back(I);
  V.WrongOutput = T.Outputs.size() - 1;
  V.ExpectedValue = T.Outputs.back().Value + 1;
  slicing::ConfidenceAnalysis CA(*S->Prog, G, nullptr, V);

  const auto &Slice = CA.wrongOutputSlice();
  for (TraceIdx I = 0; I < T.size(); ++I) {
    double C = CA.confidence(I);
    EXPECT_GE(C, 0.0);
    EXPECT_LE(C, 1.0);
    if (CA.inferredCorrect(I)) {
      EXPECT_DOUBLE_EQ(C, 1.0);
    }
    if (!Slice[I]) {
      EXPECT_DOUBLE_EQ(C, 1.0) << "instances outside the slice are moot";
    }
  }
  for (TraceIdx I : CA.prunedSlice()) {
    EXPECT_TRUE(Slice[I]);
    EXPECT_LT(CA.confidence(I), 1.0);
  }
}

TEST_P(RandomProgramProperty, PotentialDepsSatisfyDefinitionOne) {
  slicing::PotentialDepAnalyzer PD(*S->SA, T);
  // Check conditions (i)-(iii) structurally on every reported candidate
  // of a sample of uses.
  size_t Checked = 0;
  for (TraceIdx I = 0; I < T.size() && Checked < 25; ++I) {
    for (const UseRecord &Use : T.step(I).Uses) {
      if (!isValidId(Use.Var))
        continue;
      ++Checked;
      for (TraceIdx P : PD.compute(I, Use, false)) {
        EXPECT_LT(P, I) << "(i) the predicate precedes the use";
        EXPECT_TRUE(T.step(P).isPredicateInstance());
        if (Use.Def != InvalidId) {
          EXPECT_GT(P, Use.Def) << "(iii) the reaching def precedes p";
        }
        for (TraceIdx A = T.step(I).CdParent; A != InvalidId;
             A = T.step(A).CdParent)
          EXPECT_NE(A, P) << "(ii) u must not be control dependent on p";
        EXPECT_TRUE(PD.isPotentialDep(P, I, Use)) << "query consistency";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range<uint64_t>(1, 25));

} // namespace
