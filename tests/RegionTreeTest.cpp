//===-- tests/RegionTreeTest.cpp - Region decomposition tests -----------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "align/RegionTree.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::align;
using namespace eoe::interp;
using eoe::test::Session;

namespace {

TEST(RegionTreeTest, TopLevelStatementsAreRoots) {
  Session S("fn main() { var a = 1; var b = 2; print(a + b); }");
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  RegionTree Tree(T);
  EXPECT_EQ(Tree.children(InvalidId).size(), T.size());
  for (TraceIdx I = 0; I < T.size(); ++I)
    EXPECT_EQ(Tree.depth(I), 0u);
}

TEST(RegionTreeTest, IfBodyNestsUnderPredicate) {
  const char *Src = "fn main() {\n"
                    "var c = 1;\n"
                    "if (c) {\n"
                    "print(1);\n"
                    "print(2);\n"
                    "}\n"
                    "print(3);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  RegionTree Tree(T);
  TraceIdx If = S.instanceAtLine(T, 3);
  TraceIdx P1 = S.instanceAtLine(T, 4);
  TraceIdx P2 = S.instanceAtLine(T, 5);
  TraceIdx P3 = S.instanceAtLine(T, 7);

  EXPECT_EQ(Tree.children(If), (std::vector<TraceIdx>{P1, P2}));
  EXPECT_TRUE(Tree.inRegion(P1, If));
  EXPECT_TRUE(Tree.inRegion(If, If));
  EXPECT_FALSE(Tree.inRegion(P3, If));
  EXPECT_EQ(Tree.regionSize(If), 3u);
}

TEST(RegionTreeTest, LoopIterationsNestLikeThePaper) {
  // Mirrors the paper's region [6,7,8,11,12,6]: each while test's region
  // contains its body and the *next* while test.
  const char *Src = "fn main() {\n"
                    "var i = 0;\n"
                    "while (i < 2) {\n"
                    "i = i + 1;\n"
                    "}\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  RegionTree Tree(T);
  TraceIdx W1 = S.instanceAtLine(T, 3, 1);
  TraceIdx W2 = S.instanceAtLine(T, 3, 2);
  TraceIdx W3 = S.instanceAtLine(T, 3, 3);
  TraceIdx I1 = S.instanceAtLine(T, 4, 1);

  EXPECT_EQ(Tree.children(W1), (std::vector<TraceIdx>{I1, W2}));
  EXPECT_TRUE(Tree.inRegion(W3, W1)) << "whole loop nests in iteration 1";
  EXPECT_TRUE(Tree.inRegion(W3, W2));
  EXPECT_FALSE(Tree.inRegion(W1, W2));
  EXPECT_EQ(Tree.depth(W3), 2u);
}

TEST(RegionTreeTest, CalleeBodyFormsSubregionOfCall) {
  const char *Src = "fn f() {\n"
                    "print(1);\n"
                    "return 0;\n"
                    "}\n"
                    "fn main() {\n"
                    "f();\n"
                    "print(2);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  RegionTree Tree(T);
  TraceIdx Call = S.instanceAtLine(T, 6);
  TraceIdx InnerPrint = S.instanceAtLine(T, 2);
  TraceIdx OuterPrint = S.instanceAtLine(T, 7);
  EXPECT_TRUE(Tree.inRegion(InnerPrint, Call));
  EXPECT_FALSE(Tree.inRegion(OuterPrint, Call));
}

TEST(RegionTreeTest, SubtreesAreContiguousTraceIntervals) {
  const char *Src = "fn fib(n) {\n"
                    "if (n < 2) { return n; }\n"
                    "return fib(n - 1) + fib(n - 2);\n"
                    "}\n"
                    "fn main() {\n"
                    "var i = 0;\n"
                    "while (i < 4) {\n"
                    "print(fib(i));\n"
                    "i = i + 1;\n"
                    "}\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  RegionTree Tree(T);
  // For every head, the set {x : inRegion(x, head)} must be an interval
  // starting at head. This is the structural property the aligner's
  // positional sibling walk relies on.
  for (TraceIdx Head = 0; Head < T.size(); ++Head) {
    size_t Count = 0;
    TraceIdx Last = Head;
    for (TraceIdx I = 0; I < T.size(); ++I) {
      if (Tree.inRegion(I, Head)) {
        ++Count;
        Last = I;
      }
    }
    EXPECT_EQ(Count, Tree.regionSize(Head));
    EXPECT_EQ(Last - Head + 1, Count) << "region " << Head << " not contiguous";
  }
}

TEST(RegionTreeTest, ChildrenAreInExecutionOrder) {
  const char *Src = "fn main() {\n"
                    "var c = 1;\n"
                    "if (c) {\n"
                    "print(1);\n"
                    "print(2);\n"
                    "print(3);\n"
                    "}\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  RegionTree Tree(T);
  TraceIdx If = S.instanceAtLine(T, 3);
  const auto &Kids = Tree.children(If);
  ASSERT_EQ(Kids.size(), 3u);
  EXPECT_TRUE(Kids[0] < Kids[1] && Kids[1] < Kids[2]);
}

} // namespace
