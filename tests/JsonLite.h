//===-- tests/JsonLite.h - Minimal JSON parser for tests ---------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small recursive-descent JSON parser so tests can check
/// that the observability layer's emitters (--stats=json, Chrome trace
/// files) produce structurally valid documents without pulling in a JSON
/// dependency. Strict enough for well-formedness testing: rejects
/// trailing garbage, unterminated strings, and malformed literals.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_TESTS_JSONLITE_H
#define EOE_TESTS_JSONLITE_H

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace eoe {
namespace jsonlite {

/// One parsed JSON value; a tagged union kept simple for test assertions.
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool Bool = false;
  double Number = 0;
  std::string String;
  std::vector<Value> Array;
  std::map<std::string, Value> Object;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }

  bool has(const std::string &Key) const {
    return K == Kind::Object && Object.count(Key);
  }
  /// Object member access; returns a Null value for missing keys so
  /// chained lookups in EXPECTs do not crash.
  const Value &at(const std::string &Key) const {
    static const Value Null;
    if (K != Kind::Object)
      return Null;
    auto It = Object.find(Key);
    return It == Object.end() ? Null : It->second;
  }
};

namespace detail {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  std::optional<Value> run() {
    std::optional<Value> V = parseValue();
    skipWs();
    if (!V || Pos != Text.size())
      return std::nullopt;
    return V;
  }

private:
  std::string_view Text;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }
  bool eat(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  std::optional<std::string> parseString() {
    if (!eat('"'))
      return std::nullopt;
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C == '\\') {
        if (Pos >= Text.size())
          return std::nullopt;
        char E = Text[Pos++];
        switch (E) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case '/': Out += '/'; break;
        case 'b': Out += '\b'; break;
        case 'f': Out += '\f'; break;
        case 'n': Out += '\n'; break;
        case 'r': Out += '\r'; break;
        case 't': Out += '\t'; break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return std::nullopt;
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else
              return std::nullopt;
          }
          // Tests only escape control/ASCII; wider code points would
          // need UTF-8 encoding, which the emitters never produce.
          Out += Code < 0x80 ? static_cast<char>(Code) : '?';
          break;
        }
        default:
          return std::nullopt;
        }
        continue;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return std::nullopt; // raw control character
      Out += C;
    }
    return std::nullopt; // unterminated
  }

  std::optional<Value> parseValue() {
    skipWs();
    if (Pos >= Text.size())
      return std::nullopt;
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Value V;
      V.K = Value::Kind::Object;
      skipWs();
      if (eat('}'))
        return V;
      while (true) {
        std::optional<std::string> Key = [&]() -> std::optional<std::string> {
          skipWs();
          return parseString();
        }();
        if (!Key || !eat(':'))
          return std::nullopt;
        std::optional<Value> Member = parseValue();
        if (!Member)
          return std::nullopt;
        V.Object[*Key] = std::move(*Member);
        if (eat(','))
          continue;
        if (eat('}'))
          return V;
        return std::nullopt;
      }
    }
    if (C == '[') {
      ++Pos;
      Value V;
      V.K = Value::Kind::Array;
      skipWs();
      if (eat(']'))
        return V;
      while (true) {
        std::optional<Value> Elem = parseValue();
        if (!Elem)
          return std::nullopt;
        V.Array.push_back(std::move(*Elem));
        if (eat(','))
          continue;
        if (eat(']'))
          return V;
        return std::nullopt;
      }
    }
    if (C == '"') {
      std::optional<std::string> S = parseString();
      if (!S)
        return std::nullopt;
      Value V;
      V.K = Value::Kind::String;
      V.String = std::move(*S);
      return V;
    }
    if (literal("true")) {
      Value V;
      V.K = Value::Kind::Bool;
      V.Bool = true;
      return V;
    }
    if (literal("false")) {
      Value V;
      V.K = Value::Kind::Bool;
      return V;
    }
    if (literal("null"))
      return Value();
    // Number: delegate to strtod, then verify it consumed something.
    const char *Begin = Text.data() + Pos;
    char *End = nullptr;
    double D = std::strtod(Begin, &End);
    if (End == Begin)
      return std::nullopt;
    Pos += static_cast<size_t>(End - Begin);
    Value V;
    V.K = Value::Kind::Number;
    V.Number = D;
    return V;
  }
};

} // namespace detail

/// Parses a complete JSON document; nullopt on any syntax error or
/// trailing garbage.
inline std::optional<Value> parse(std::string_view Text) {
  return detail::Parser(Text).run();
}

} // namespace jsonlite
} // namespace eoe

#endif // EOE_TESTS_JSONLITE_H
