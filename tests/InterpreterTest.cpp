//===-- tests/InterpreterTest.cpp - Interpreter unit tests --------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::interp;
using eoe::test::Session;

namespace {

std::vector<int64_t> outputsOf(std::string_view Src,
                               std::vector<int64_t> Input = {}) {
  Session S(Src);
  EXPECT_TRUE(S.valid());
  if (!S.valid())
    return {};
  return S.run(Input).outputValues();
}

TEST(InterpreterTest, Arithmetic) {
  EXPECT_EQ(outputsOf("fn main() { print(2 + 3 * 4, 10 / 3, 10 % 3, -7); }"),
            (std::vector<int64_t>{14, 3, 1, -7}));
}

TEST(InterpreterTest, Comparisons) {
  EXPECT_EQ(outputsOf("fn main() { print(1 < 2, 2 <= 2, 3 > 4, 3 >= 4,"
                      " 5 == 5, 5 != 5); }"),
            (std::vector<int64_t>{1, 1, 0, 0, 1, 0}));
}

TEST(InterpreterTest, LogicalOpsNormalizeToBool) {
  EXPECT_EQ(outputsOf("fn main() { print(2 && 3, 0 && 9, 0 || 7, !0, !5); }"),
            (std::vector<int64_t>{1, 0, 1, 1, 0}));
}

TEST(InterpreterTest, ShortCircuitSkipsRhs) {
  // If && evaluated its RHS here, the division by zero would abort.
  Session S("fn main() { var z = 0; print(0 && 1 / z); }");
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  EXPECT_EQ(T.Exit, ExitReason::Finished);
  EXPECT_EQ(T.outputValues(), (std::vector<int64_t>{0}));
}

TEST(InterpreterTest, WhileLoopAndBreakContinue) {
  // Sum odd numbers below 10, stopping at 7.
  const char *Src = "fn main() {\n"
                    "  var i = 0; var sum = 0;\n"
                    "  while (1) {\n"
                    "    i = i + 1;\n"
                    "    if (i == 7) { break; }\n"
                    "    if (i % 2 == 0) { continue; }\n"
                    "    sum = sum + i;\n"
                    "  }\n"
                    "  print(sum);\n"
                    "}";
  EXPECT_EQ(outputsOf(Src), (std::vector<int64_t>{1 + 3 + 5}));
}

TEST(InterpreterTest, GlobalsAndArrays) {
  const char *Src = "var total = 0;\n"
                    "var buf[8];\n"
                    "fn main() {\n"
                    "  var i = 0;\n"
                    "  while (i < 8) { buf[i] = i * i; i = i + 1; }\n"
                    "  i = 0;\n"
                    "  while (i < 8) { total = total + buf[i]; i = i + 1; }\n"
                    "  print(total);\n"
                    "}";
  EXPECT_EQ(outputsOf(Src), (std::vector<int64_t>{140}));
}

TEST(InterpreterTest, FunctionsAndRecursion) {
  const char *Src = "fn fib(n) {\n"
                    "  if (n < 2) { return n; }\n"
                    "  return fib(n - 1) + fib(n - 2);\n"
                    "}\n"
                    "fn main() { print(fib(10)); }";
  EXPECT_EQ(outputsOf(Src), (std::vector<int64_t>{55}));
}

TEST(InterpreterTest, InputReadsSequenceThenEofSentinel) {
  const char *Src = "fn main() {\n"
                    "  var v = input();\n"
                    "  while (v != -1) { print(v * 2); v = input(); }\n"
                    "  print(999);\n"
                    "}";
  EXPECT_EQ(outputsOf(Src, {3, 5}), (std::vector<int64_t>{6, 10, 999}));
}

TEST(InterpreterTest, UninitializedMemoryReadsZero) {
  EXPECT_EQ(outputsOf("var g; fn main() { var x; var a[3]; "
                      "print(g, x, a[2]); }"),
            (std::vector<int64_t>{0, 0, 0}));
}

TEST(InterpreterTest, DivisionByZeroIsRuntimeError) {
  Session S("fn main() { var z = 0; print(1 / z); }");
  ASSERT_TRUE(S.valid());
  EXPECT_EQ(S.run().Exit, ExitReason::RuntimeError);
}

TEST(InterpreterTest, OutOfBoundsReadIsRuntimeError) {
  Session S("fn main() { var a[2]; print(a[5]); }");
  ASSERT_TRUE(S.valid());
  EXPECT_EQ(S.run().Exit, ExitReason::RuntimeError);
}

TEST(InterpreterTest, OutOfBoundsWriteIsRuntimeError) {
  Session S("fn main() { var a[2]; var i = 9; a[i] = 1; }");
  ASSERT_TRUE(S.valid());
  EXPECT_EQ(S.run().Exit, ExitReason::RuntimeError);
}

TEST(InterpreterTest, StepLimitStopsInfiniteLoops) {
  Session S("fn main() { while (1) { } print(1); }");
  ASSERT_TRUE(S.valid());
  Interpreter::Options Opts;
  Opts.MaxSteps = 1000;
  ExecutionTrace T = S.Interp->run({}, Opts);
  EXPECT_EQ(T.Exit, ExitReason::StepLimit);
  EXPECT_LE(T.size(), 1001u);
}

TEST(InterpreterTest, ExitValueIsMainsReturn) {
  Session S("fn main() { return 42; }");
  ASSERT_TRUE(S.valid());
  EXPECT_EQ(S.run().ExitValue, 42);
}

TEST(InterpreterTest, DeterministicReplay) {
  const char *Src = "fn main() {\n"
                    "  var v = input(); var sum = 0;\n"
                    "  while (v != -1) { sum = sum + v; v = input(); }\n"
                    "  print(sum);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace A = S.run({1, 2, 3});
  ExecutionTrace B = S.run({1, 2, 3});
  ASSERT_EQ(A.size(), B.size());
  for (TraceIdx I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A.step(I).Stmt, B.step(I).Stmt);
    EXPECT_EQ(A.step(I).Value, B.step(I).Value);
    EXPECT_EQ(A.step(I).CdParent, B.step(I).CdParent);
  }
}

TEST(InterpreterTest, PredicateSwitchFlipsOneInstance) {
  const char *Src = "fn main() {\n"
                    "var flag = 0;\n"
                    "if (flag) {\n"
                    "print(111);\n"
                    "}\n"
                    "print(222);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace Plain = S.run();
  EXPECT_EQ(Plain.outputValues(), (std::vector<int64_t>{222}));

  SwitchSpec Spec{S.stmtAtLine(3), 1};
  ExecutionTrace Switched = S.Interp->runSwitched({}, Spec, 100000);
  EXPECT_EQ(Switched.outputValues(), (std::vector<int64_t>{111, 222}));
  ASSERT_NE(Switched.SwitchedStep, InvalidId);
  EXPECT_EQ(Switched.step(Switched.SwitchedStep).Stmt, Spec.Pred);
  // Prefixes are identical up to the switch point.
  for (TraceIdx I = 0; I <= Switched.SwitchedStep; ++I)
    EXPECT_EQ(Plain.step(I).Stmt, Switched.step(I).Stmt);
}

TEST(InterpreterTest, SwitchTargetsTheRequestedLoopIteration) {
  const char *Src = "fn main() {\n"
                    "var i = 0;\n"
                    "while (i < 4) {\n"
                    "if (i == 99) {\n"
                    "print(1000 + i);\n"
                    "}\n"
                    "i = i + 1;\n"
                    "}\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  // Flip the third evaluation of the inner if: only i==2 prints.
  SwitchSpec Spec{S.stmtAtLine(4), 3};
  ExecutionTrace T = S.Interp->runSwitched({}, Spec, 100000);
  EXPECT_EQ(T.outputValues(), (std::vector<int64_t>{1002}));
}

TEST(InterpreterTest, SwitchedWhileExitsLoopEarly) {
  const char *Src = "fn main() {\n"
                    "var i = 0;\n"
                    "while (i < 4) {\n"
                    "i = i + 1;\n"
                    "}\n"
                    "print(i);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  SwitchSpec Spec{S.stmtAtLine(3), 2}; // second test exits immediately
  ExecutionTrace T = S.Interp->runSwitched({}, Spec, 100000);
  EXPECT_EQ(T.outputValues(), (std::vector<int64_t>{1}));
}

} // namespace
