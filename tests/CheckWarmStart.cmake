# End-to-end warm-start check of the persistent checkpoint cache, run as
# a ctest script:
#
#   cmake -DEOEC=<eoec binary> -DEXAMPLE=<figure1.siml> -DOUT_DIR=<dir>
#         -P CheckWarmStart.cmake
#
# A cold `eoec locate --checkpoint-dir` run writes the cache; warm runs
# must produce byte-identical stdout at 1 and 4 threads (a disk-loaded
# snapshot is the same object a live collection pass would have
# promoted), and a warm --stats=json run must show the cache actually
# used: snapshots revived (ckpt.disk_loads) and at least one switched
# run resumed from a disk snapshot (ckpt.disk_hits).

foreach(Var EOEC EXAMPLE OUT_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "missing -D${Var}=...")
  endif()
endforeach()

set(CacheDir "${OUT_DIR}/warm_start_cache")
file(REMOVE_RECURSE "${CacheDir}")

set(BaseArgs locate "${EXAMPLE}" --expected 8,19387 --root-line 11
    "--checkpoint-dir=${CacheDir}")

execute_process(
  COMMAND "${EOEC}" ${BaseArgs}
  OUTPUT_VARIABLE ColdOut
  ERROR_VARIABLE ColdErr
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "cold run failed (rc=${Rc}):\n${ColdOut}\n${ColdErr}")
endif()

file(GLOB CacheFiles "${CacheDir}/*.eoeckpt")
if(CacheFiles STREQUAL "")
  message(FATAL_ERROR "cold run wrote no cache file in ${CacheDir}")
endif()

foreach(Threads 1 4)
  execute_process(
    COMMAND "${EOEC}" ${BaseArgs} --threads ${Threads}
    OUTPUT_VARIABLE WarmOut
    ERROR_VARIABLE WarmErr
    RESULT_VARIABLE Rc)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR
        "warm run failed (threads=${Threads}, rc=${Rc}):\n${WarmOut}\n${WarmErr}")
  endif()
  if(NOT WarmOut STREQUAL ColdOut)
    message(FATAL_ERROR "warm stdout differs from cold at ${Threads} "
        "threads:\n--- cold ---\n${ColdOut}\n--- warm ---\n${WarmOut}")
  endif()
endforeach()

execute_process(
  COMMAND "${EOEC}" ${BaseArgs} --stats=json
  OUTPUT_VARIABLE StatsOut
  ERROR_VARIABLE StatsErr
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "stats run failed (rc=${Rc}):\n${StatsOut}\n${StatsErr}")
endif()
string(STRIP "${StatsOut}" StatsOut)
string(REGEX REPLACE ".*\n" "" LastLine "${StatsOut}")
foreach(Key "ckpt.disk_loads" "ckpt.disk_hits")
  if(NOT LastLine MATCHES "\"${Key}\":[1-9]")
    message(FATAL_ERROR "warm run shows no ${Key}:\n${LastLine}")
  endif()
endforeach()
if(LastLine MATCHES "\"ckpt.disk_rejects\":[1-9]")
  message(FATAL_ERROR "warm run rejected its own cache:\n${LastLine}")
endif()

message(STATUS "warm-start check passed")
