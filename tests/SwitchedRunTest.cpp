//===-- tests/SwitchedRunTest.cpp - Switched-run snapshot reuse ----------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// The switched-run cache's contract (docs/checkpointing.md,
// "Switched-run reuse"): a switched run resumed from a divergence-keyed
// snapshot is *byte-identical* to the full switched run, the sealed set
// of the store is a pure function of the staged multiset (independent of
// staging order), and the reconvergence probe -- when it fires -- splices
// a suffix byte-identical to what interpretation would have produced.
//
//===----------------------------------------------------------------------===//

#include "align/Reconverge.h"
#include "align/RegionTree.h"
#include "lang/Parser.h"
#include "RandomProgram.h"
#include "support/Diagnostic.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

using namespace eoe;
using namespace eoe::interp;
using namespace eoe::test;

namespace {

constexpr uint64_t kBudget = 2'000'000;

/// All predicate instances of \p T, in trace order.
std::vector<TraceIdx> predicateInstances(const ExecutionTrace &T) {
  std::vector<TraceIdx> Preds;
  for (TraceIdx I = 0; I < T.size(); ++I)
    if (T.step(I).isPredicateInstance())
      Preds.push_back(I);
  return Preds;
}

/// EXPECTs byte-identity of two switched runs (same program, input,
/// switch spec; different execution strategy).
void expectSameTrace(const ExecutionTrace &Full, const ExecutionTrace &Other,
                     uint64_t Seed, TraceIdx P) {
  EXPECT_EQ(Full.Exit, Other.Exit) << "seed " << Seed << " pred " << P;
  EXPECT_EQ(Full.ExitValue, Other.ExitValue)
      << "seed " << Seed << " pred " << P;
  EXPECT_EQ(Full.SwitchedStep, Other.SwitchedStep)
      << "seed " << Seed << " pred " << P;
  EXPECT_EQ(Full.Outputs, Other.Outputs) << "seed " << Seed << " pred " << P;
  ASSERT_EQ(Full.Steps.size(), Other.Steps.size())
      << "seed " << Seed << " pred " << P;
  for (TraceIdx I = 0; I < Full.Steps.size(); ++I)
    ASSERT_EQ(Full.Steps[I], Other.Steps[I])
        << "seed " << Seed << " pred " << P << " step " << I;
}

/// A parsed random omission program plus everything needed to drive
/// switched runs against it.
struct Subject {
  std::shared_ptr<const lang::Program> Prog;
  std::unique_ptr<analysis::StaticAnalysis> SA;
  std::unique_ptr<Interpreter> Interp;
  std::vector<int64_t> Input;
  ExecutionTrace Original;

  static std::optional<Subject> make(uint64_t Seed) {
    RandomProgramGenerator Gen(Seed);
    auto Variant = Gen.generateOmission();
    DiagnosticEngine Diags;
    auto Prog = lang::parseAndCheck(Variant.FaultySource, Diags);
    if (!Prog)
      return std::nullopt;
    Subject S;
    S.Prog = std::move(Prog);
    S.SA = std::make_unique<analysis::StaticAnalysis>(*S.Prog);
    S.Interp = std::make_unique<Interpreter>(*S.Prog, *S.SA);
    S.Input = Variant.Input;
    S.Original = S.Interp->run(S.Input);
    if (S.Original.Exit != ExitReason::Finished)
      return std::nullopt;
    return S;
  }

  SwitchedRunStore::ValidityKey key() const {
    return {/*ProgramHash=*/0x5157ull, /*Program=*/Prog.get(),
            SwitchedRunStore::hashInput(Input), kBudget};
  }

  /// Runs the switch at trace index \p P with divergence-keyed capture
  /// (small spacing so short random traces still snapshot) and returns
  /// the bundle the verifier would stage, or nullopt if nothing was
  /// captured past the switch point.
  std::optional<SwitchedRunStore::Bundle> captureBundle(TraceIdx P) {
    const StepRecord &Step = Original.step(P);
    SwitchedCapturePlan Capture;
    Capture.SpacingSteps = 16;
    Interpreter::Options Opts;
    Opts.MaxSteps = kBudget;
    Opts.Switch = SwitchSpec{Step.Stmt, Step.InstanceNo};
    Opts.SwitchedCapture = &Capture;
    ExecutionTrace T = Interp->run(Input, Opts);
    if (Capture.Captured.empty())
      return std::nullopt;
    SwitchedRunStore::Bundle B;
    B.Key = Capture.Captured.front()->Divergence;
    B.Prefix = std::make_shared<ExecutionTrace>(std::move(T));
    B.Snapshots = std::move(Capture.Captured);
    return B;
  }
};

class SwitchedRunEquivalence : public ::testing::TestWithParam<uint64_t> {};

// The tentpole property at the raw interpreter level: stage capture
// bundles, seal, look them back up, resume from the hit -- the resumed
// switched run must be byte-identical to the full switched run.
TEST_P(SwitchedRunEquivalence, DivergenceKeyedResumeIsBitIdentical) {
  auto S = Subject::make(GetParam());
  if (!S)
    GTEST_SKIP() << "degenerate program";
  std::vector<TraceIdx> Preds = predicateInstances(S->Original);
  if (Preds.empty())
    GTEST_SKIP() << "no predicate instances";

  SwitchedRunStore Store(DefaultSwitchedCacheBytes);
  std::vector<TraceIdx> Bundled;
  for (TraceIdx P : Preds) {
    auto B = S->captureBundle(P);
    if (!B)
      continue;
    Bundled.push_back(P);
    Store.stage(S->key(), std::move(*B));
  }
  if (Bundled.empty())
    GTEST_SKIP() << "no snapshots captured past any switch point";
  ASSERT_GT(Store.seal(), 0u);

  size_t Resumed = 0;
  ExecContext Ctx;
  for (TraceIdx P : Bundled) {
    const StepRecord &Step = S->Original.step(P);
    SwitchSpec Spec{Step.Stmt, Step.InstanceNo};
    std::vector<SwitchDecision> Requested{
        SwitchDecision{Spec.Pred, Spec.InstanceNo, /*Perturb=*/false, 0}};
    auto Hit = Store.lookup(S->key(), Requested);
    ASSERT_TRUE(Hit) << "sealed bundle not served, pred " << P;
    ASSERT_FALSE(Hit->CP->Divergence.empty());
    EXPECT_EQ(Hit->CP->Divergence, Requested);

    ExecutionTrace Full = S->Interp->runSwitched(S->Input, Spec, kBudget);
    Interpreter::Options ResumeOpts;
    ResumeOpts.MaxSteps = kBudget;
    ResumeOpts.Switch = Spec;
    ExecutionTrace FromCkpt =
        S->Interp->runFrom(*Hit->CP, *Hit->Prefix, S->Input, ResumeOpts, Ctx);
    expectSameTrace(Full, FromCkpt, GetParam(), P);
    ++Resumed;
  }
  EXPECT_GT(Resumed, 0u);
}

// Capture instrumentation must not perturb the switched execution: the
// capturing run's trace equals the plain switched run's, byte for byte.
TEST_P(SwitchedRunEquivalence, CaptureDoesNotPerturbTheRun) {
  auto S = Subject::make(GetParam());
  if (!S)
    GTEST_SKIP() << "degenerate program";
  std::vector<TraceIdx> Preds = predicateInstances(S->Original);
  for (size_t N = 0; N < Preds.size(); N += 2) {
    TraceIdx P = Preds[N];
    const StepRecord &Step = S->Original.step(P);
    SwitchSpec Spec{Step.Stmt, Step.InstanceNo};
    ExecutionTrace Plain = S->Interp->runSwitched(S->Input, Spec, kBudget);

    SwitchedCapturePlan Capture;
    Capture.SpacingSteps = 16;
    Interpreter::Options Opts;
    Opts.MaxSteps = kBudget;
    Opts.Switch = Spec;
    Opts.SwitchedCapture = &Capture;
    ExecutionTrace Captured = S->Interp->run(S->Input, Opts);
    expectSameTrace(Plain, Captured, GetParam(), P);
    // Every snapshot carries the run's divergence key and sits past the
    // switch point (the prefix store covers everything before it).
    for (const auto &CP : Capture.Captured) {
      ASSERT_TRUE(CP);
      EXPECT_EQ(CP->Divergence.size(), 1u);
      EXPECT_GT(CP->Index, Plain.SwitchedStep);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchedRunEquivalence,
                         ::testing::Range<uint64_t>(400, 410));

// The two-phase store contract: nothing is served before the first
// seal(), and the sealed set (counts, bytes, and what lookup returns) is
// independent of staging order even under a budget that forces drops.
TEST(SwitchedRunStoreTest, SealedSetIsIndependentOfStagingOrder) {
  std::vector<SwitchedRunStore::Bundle> Bundles;
  std::optional<Subject> S;
  for (uint64_t Seed = 420; Seed < 440 && Bundles.size() < 4; ++Seed) {
    S = Subject::make(Seed);
    if (!S)
      continue;
    Bundles.clear();
    for (TraceIdx P : predicateInstances(S->Original)) {
      auto B = S->captureBundle(P);
      if (B)
        Bundles.push_back(std::move(*B));
    }
  }
  ASSERT_GE(Bundles.size(), 4u) << "no seed yielded enough capture bundles";
  SwitchedRunStore::ValidityKey K = S->key();

  // Size the budget from an uncapped seal so roughly half the bundles
  // fit -- the admission decision, not just the ordering, is under test.
  SwitchedRunStore Uncapped(1ull << 30);
  for (const auto &B : Bundles)
    Uncapped.stage(K, SwitchedRunStore::Bundle(B));
  ASSERT_EQ(Uncapped.seal(), Bundles.size());
  size_t Budget = Uncapped.bytes() / 2;

  SwitchedRunStore Fwd(Budget), Rev(Budget);
  for (size_t I = 0; I < Bundles.size(); ++I) {
    Fwd.stage(K, SwitchedRunStore::Bundle(Bundles[I]));
    Rev.stage(K, SwitchedRunStore::Bundle(Bundles[Bundles.size() - 1 - I]));
  }

  // Two-phase: staged bundles are invisible until seal().
  EXPECT_FALSE(Fwd.sealed());
  EXPECT_FALSE(Fwd.lookup(K, Bundles.front().Key).has_value());

  EXPECT_EQ(Fwd.seal(), Rev.seal());
  EXPECT_EQ(Fwd.sealedCount(), Rev.sealedCount());
  EXPECT_EQ(Fwd.droppedCount(), Rev.droppedCount());
  EXPECT_EQ(Fwd.bytes(), Rev.bytes());
  EXPECT_GT(Fwd.droppedCount(), 0u) << "budget did not force any drop";
  EXPECT_LE(Fwd.bytes(), Budget);

  for (const auto &B : Bundles) {
    auto HF = Fwd.lookup(K, B.Key);
    auto HR = Rev.lookup(K, B.Key);
    ASSERT_EQ(HF.has_value(), HR.has_value());
    if (HF) {
      EXPECT_EQ(HF->CP->Index, HR->CP->Index);
      EXPECT_EQ(HF->CP->Divergence, HR->CP->Divergence);
    }
  }
}

// Validity keys partition the cache: a bundle staged under one
// (program, input, budget) key never serves a different key.
TEST(SwitchedRunStoreTest, ValidityKeyMismatchMisses) {
  std::optional<SwitchedRunStore::Bundle> B;
  std::optional<Subject> S;
  for (uint64_t Seed = 440; Seed < 460 && !B; ++Seed) {
    S = Subject::make(Seed);
    if (!S)
      continue;
    for (TraceIdx P : predicateInstances(S->Original)) {
      B = S->captureBundle(P);
      if (B)
        break;
    }
  }
  ASSERT_TRUE(B) << "no seed yielded a capture bundle";

  SwitchedRunStore Store(DefaultSwitchedCacheBytes);
  SwitchedRunStore::ValidityKey K = S->key();
  std::vector<SwitchDecision> Key = B->Key;
  Store.stage(K, std::move(*B));
  ASSERT_EQ(Store.seal(), 1u);
  EXPECT_TRUE(Store.lookup(K, Key).has_value());

  SwitchedRunStore::ValidityKey OtherInput = K;
  OtherInput.InputHash ^= 1;
  EXPECT_FALSE(Store.lookup(OtherInput, Key).has_value());
  SwitchedRunStore::ValidityKey OtherBudget = K;
  OtherBudget.MaxSteps += 1;
  EXPECT_FALSE(Store.lookup(OtherBudget, Key).has_value());

  // A requested sequence that does not start with the stored key misses.
  std::vector<SwitchDecision> Foreign{
      SwitchDecision{Key[0].Stmt, Key[0].InstanceNo + 1000, false, 0}};
  EXPECT_FALSE(Store.lookup(K, Foreign).has_value());
}

// Longest-matching-prefix semantics across bundle depths (docs/chains.md):
// a bundle keyed [d1] serves any request starting with d1 whose later
// decisions are still ahead of the snapshot, a bundle keyed [d1,d2]
// serves [d1,d2...] from deeper in -- and on equal depth the longer key
// wins, because it covers more of the request. Synthetic checkpoints
// keep the geometry explicit instead of depending on capture spacing.
TEST(SwitchedRunStoreTest, LongestMatchingPrefixServesChains) {
  const SwitchDecision D1{/*Stmt=*/10, /*InstanceNo=*/1, false, 0};
  const SwitchDecision D2{/*Stmt=*/20, /*InstanceNo=*/2, false, 0};
  const SwitchDecision D3{/*Stmt=*/30, /*InstanceNo=*/1, false, 0};

  auto Snap = [](TraceIdx Index, std::vector<SwitchDecision> Div,
                 uint32_t At20, uint32_t At30) {
    auto CP = std::make_shared<Checkpoint>();
    CP->Index = Index;
    CP->Divergence = std::move(Div);
    CP->InstCount.assign(64, 0);
    CP->InstCount[20] = At20;
    CP->InstCount[30] = At30;
    return std::shared_ptr<const Checkpoint>(std::move(CP));
  };

  SwitchedRunStore::ValidityKey K{/*ProgramHash=*/1, nullptr,
                                  /*InputHash=*/2, kBudget};

  // Bundle keyed [d1]: its deepest snapshot (index 200) has already run
  // past d2's and d3's instances; the one at 150 has passed neither.
  SwitchedRunStore::Bundle A;
  A.Key = {D1};
  A.Prefix = std::make_shared<ExecutionTrace>();
  A.Snapshots = {Snap(100, {D1}, 0, 0), Snap(150, {D1}, 0, 0),
                 Snap(200, {D1}, 2, 1)};

  // Bundle keyed [d1, d2]: one snapshot, at the same index as A's middle.
  SwitchedRunStore::Bundle B;
  B.Key = {D1, D2};
  B.Prefix = std::make_shared<ExecutionTrace>();
  B.Snapshots = {Snap(150, {D1, D2}, 2, 0)};

  SwitchedRunStore Store(DefaultSwitchedCacheBytes);
  Store.stage(K, std::move(A));
  Store.stage(K, std::move(B));
  ASSERT_EQ(Store.seal(), 2u);

  // [d1]: only the [d1] bundle's key is a prefix ([d1,d2] is longer than
  // the request); no uncovered decisions remain, so its deepest snapshot
  // wins outright.
  auto H1 = Store.lookup(K, {D1});
  ASSERT_TRUE(H1);
  EXPECT_EQ(H1->CP->Index, 200u);
  EXPECT_EQ(H1->CP->Divergence, (std::vector<SwitchDecision>{D1}));

  // [d1, d2]: A's snapshot 200 is pruned -- its instance counter for
  // d2.Stmt has reached d2's instance, so the decision could no longer
  // fire -- leaving 150. B also offers 150; the depth tie goes to the
  // longer key, which covers more of the request.
  auto H2 = Store.lookup(K, {D1, D2});
  ASSERT_TRUE(H2);
  EXPECT_EQ(H2->CP->Index, 150u);
  EXPECT_EQ(H2->CP->Divergence, (std::vector<SwitchDecision>{D1, D2}));

  // [d1, d2, d3]: the depth-2 bundle still prefixes the depth-3 request
  // and d3 is still ahead of its snapshot -- depth-k captures seed the
  // depth-k+1 frontier.
  auto H3 = Store.lookup(K, {D1, D2, D3});
  ASSERT_TRUE(H3);
  EXPECT_EQ(H3->CP->Index, 150u);
  EXPECT_EQ(H3->CP->Divergence, (std::vector<SwitchDecision>{D1, D2}));

  // [d1, d3]: B's key is not a prefix of this request; A serves its
  // deepest snapshot through which d3 can still fire.
  auto H4 = Store.lookup(K, {D1, D3});
  ASSERT_TRUE(H4);
  EXPECT_EQ(H4->CP->Index, 150u);
  EXPECT_EQ(H4->CP->Divergence, (std::vector<SwitchDecision>{D1}));

  // [d2]: no sealed key prefixes the request at all.
  EXPECT_FALSE(Store.lookup(K, {D2}).has_value());
}

// A purpose-built reconvergence subject. The probe's gates dictate its
// shape: the branch arms are *balanced* (one statement each, so a
// switched run reaches later trace indices with the same step count as
// the original), and the diverging state lives in top-level *globals*
// the post-loop suffix never reads (live frames are compared exactly,
// globals only on the suffix's read footprint). Switching the
// always-false `if` therefore perturbs only junk/junk2 -- invisible to
// the suffix -- and the probe at the first post-loop site must fire.
const char *kReconvergeSrc = "var junk = 0;\n"
                             "var junk2 = 0;\n"
                             "fn main() {\n"
                             "  var i = 0;\n"
                             "  while (i < 8) {\n"
                             "    if (i > 100) {\n"
                             "      junk = junk + 1;\n"
                             "    } else {\n"
                             "      junk2 = junk2 + 1;\n"
                             "    }\n"
                             "    i = i + 1;\n"
                             "  }\n"
                             "  var j = 0;\n"
                             "  var s = 0;\n"
                             "  while (j < 50) {\n"
                             "    s = s + j;\n"
                             "    j = j + 1;\n"
                             "  }\n"
                             "  print(s);\n"
                             "}\n";

// Reconvergence suffix splicing: with probe sites built from the
// original run's snapshots, every switched run with the plan attached is
// byte-identical to the plain switched run, and at least one of the
// always-false-branch switches actually splices (this subject is built
// so the post-loop state differs only in what the suffix never reads).
TEST(SwitchedRunTest, ReconvergeProbeSplicesByteIdentically) {
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(kReconvergeSrc, Diags);
  ASSERT_TRUE(Prog) << Diags.str();
  analysis::StaticAnalysis SA(*Prog);
  Interpreter Interp(*Prog, SA);
  std::vector<int64_t> Input;

  ExecutionTrace E = Interp.run(Input);
  ASSERT_EQ(E.Exit, ExitReason::Finished);
  std::vector<TraceIdx> Preds = predicateInstances(E);
  ASSERT_FALSE(Preds.empty());

  // Snapshot every predicate instance of the original run, then build
  // the probe plan exactly the way the verifier does.
  CheckpointStore Store(64ull << 20);
  CheckpointPlan Plan;
  Plan.Store = &Store;
  Plan.Sites = Preds;
  Interpreter::Options CollectOpts;
  CollectOpts.MaxSteps = kBudget;
  CollectOpts.Checkpoints = &Plan;
  ExecutionTrace Recollected = Interp.run(Input, CollectOpts);
  ASSERT_EQ(Recollected.Steps.size(), E.Steps.size());
  ASSERT_GT(Plan.Collected, 0u);

  align::RegionTree Tree(E);
  ReconvergePlan Probe =
      align::buildReconvergePlan(E, Tree, Store.sample(MaxReconvergeSites));
  ASSERT_FALSE(Probe.Sites.empty());

  TraceIdx TotalSpliced = 0;
  ExecContext Ctx;
  for (TraceIdx P : Preds) {
    const StepRecord &Step = E.step(P);
    SwitchSpec Spec{Step.Stmt, Step.InstanceNo};
    ExecutionTrace Plain = Interp.runSwitched(Input, Spec, kBudget);

    Interpreter::Options Opts;
    Opts.MaxSteps = kBudget;
    Opts.Switch = Spec;
    Opts.Reconverge = &Probe;
    ExecutionTrace Probed = Interp.run(Input, Opts, Ctx);
    expectSameTrace(Plain, Probed, /*Seed=*/0, P);
    TotalSpliced += Probed.SplicedSuffix;
  }
  // The subject guarantees splicing fires: switching `if (i > 100)`
  // leaves the suffix's observable state untouched.
  EXPECT_GT(TotalSpliced, 0u);
}

// The probe must stay byte-invisible on arbitrary programs too, where
// reconvergence rarely fires but must never corrupt when it does.
TEST_P(SwitchedRunEquivalence, ReconvergeProbeIsInvisibleOnRandomPrograms) {
  auto S = Subject::make(GetParam());
  if (!S)
    GTEST_SKIP() << "degenerate program";
  std::vector<TraceIdx> Preds = predicateInstances(S->Original);
  if (Preds.empty())
    GTEST_SKIP() << "no predicate instances";

  CheckpointStore Store(64ull << 20);
  CheckpointPlan Plan;
  Plan.Store = &Store;
  for (size_t I = 0; I < Preds.size(); I += 2)
    Plan.Sites.push_back(Preds[I]);
  Interpreter::Options CollectOpts;
  CollectOpts.MaxSteps = kBudget;
  CollectOpts.Checkpoints = &Plan;
  (void)S->Interp->run(S->Input, CollectOpts);
  if (Plan.Collected == 0)
    GTEST_SKIP() << "all sites dirty";

  align::RegionTree Tree(S->Original);
  ReconvergePlan Probe = align::buildReconvergePlan(
      S->Original, Tree, Store.sample(MaxReconvergeSites));
  if (Probe.Sites.empty())
    GTEST_SKIP() << "no probe sites";

  ExecContext Ctx;
  for (size_t N = 0; N < Preds.size(); N += 3) {
    TraceIdx P = Preds[N];
    const StepRecord &Step = S->Original.step(P);
    SwitchSpec Spec{Step.Stmt, Step.InstanceNo};
    ExecutionTrace Plain = S->Interp->runSwitched(S->Input, Spec, kBudget);

    Interpreter::Options Opts;
    Opts.MaxSteps = kBudget;
    Opts.Switch = Spec;
    Opts.Reconverge = &Probe;
    ExecutionTrace Probed = S->Interp->run(S->Input, Opts, Ctx);
    expectSameTrace(Plain, Probed, GetParam(), P);
  }
}

} // namespace
