//===-- tests/ConfidenceTest.cpp - Confidence analysis tests ------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "slicing/Confidence.h"

#include "ddg/DepGraph.h"
#include "interp/Profiler.h"
#include "slicing/Pruning.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace eoe;
using namespace eoe::interp;
using namespace eoe::slicing;
using eoe::test::Session;

namespace {

/// The paper's Figure 4: 10: a=1; 20: b=a%2; 30: c=a+2; 40: print(b)
/// (correct); 41: print(c) (wrong).
struct Figure4 {
  Session S{"fn main() {\n"
            "var a = input();\n" // 2  ("10: a = 1")
            "var b = a % 2;\n"   // 3  ("20")
            "var c = a + 2;\n"   // 4  ("30")
            "print(b);\n"        // 5  ("40": correct)
            "print(c);\n"        // 6  ("41": wrong)
            "}"};
  ExecutionTrace T;
  std::unique_ptr<ddg::DepGraph> G;
  OutputVerdicts V;
  Profile Prof{0};

  Figure4() : Prof(0) {
    EXPECT_TRUE(S.valid());
    // Value profile over several runs so 'a' has a nontrivial range.
    Prof = profileTestSuite(*S.Interp, *S.Prog, {{1}, {3}, {5}, {7}, {9}});
    T = S.run({1});
    G = std::make_unique<ddg::DepGraph>(T);
    V.CorrectOutputs = {0};
    V.WrongOutput = 1;
    V.ExpectedValue = 999; // The scenario says c is wrong.
  }
};

TEST(ConfidenceTest, Figure4Confidences) {
  Figure4 F;
  ConfidenceAnalysis CA(*F.S.Prog, *F.G, &F.Prof.Values, F.V);

  TraceIdx DefA = F.S.instanceAtLine(F.T, 2);
  TraceIdx DefB = F.S.instanceAtLine(F.T, 3);
  TraceIdx DefC = F.S.instanceAtLine(F.T, 4);

  // 20 (b = a % 2): printed correct, copy at the print: confidence 1.
  EXPECT_TRUE(CA.inferredCorrect(DefB));
  EXPECT_DOUBLE_EQ(CA.confidence(DefB), 1.0);

  // 30 (c = a + 2): reaches only the wrong output: confidence 0.
  EXPECT_FALSE(CA.inferredCorrect(DefC));
  EXPECT_DOUBLE_EQ(CA.confidence(DefC), 0.0);

  // 10 (a): reaches a correct output but through the many-to-one %:
  // strictly between 0 and 1.
  EXPECT_FALSE(CA.inferredCorrect(DefA));
  EXPECT_GT(CA.confidence(DefA), 0.0);
  EXPECT_LT(CA.confidence(DefA), 1.0);
}

TEST(ConfidenceTest, PrunedSliceDropsConfidenceOneAndRanksSuspicionFirst) {
  Figure4 F;
  ConfidenceAnalysis CA(*F.S.Prog, *F.G, &F.Prof.Values, F.V);
  const std::vector<TraceIdx> &Ranked = CA.prunedSlice();

  TraceIdx DefB = F.S.instanceAtLine(F.T, 3);
  TraceIdx DefC = F.S.instanceAtLine(F.T, 4);
  EXPECT_EQ(std::count(Ranked.begin(), Ranked.end(), DefB), 0)
      << "confidence-1 instances are pruned";
  auto PosC = std::find(Ranked.begin(), Ranked.end(), DefC);
  ASSERT_NE(PosC, Ranked.end());
  TraceIdx DefA = F.S.instanceAtLine(F.T, 2);
  auto PosA = std::find(Ranked.begin(), Ranked.end(), DefA);
  ASSERT_NE(PosA, Ranked.end());
  EXPECT_LT(PosC - Ranked.begin(), PosA - Ranked.begin())
      << "zero-confidence c ranks more suspicious than mid-confidence a";
}

TEST(ConfidenceTest, CorrectnessPropagatesThroughInvertibleChains) {
  const char *Src = "fn main() {\n"
                    "var a = input();\n"  // 2
                    "var b = a + 1;\n"    // 3
                    "var c = b - 2;\n"    // 4
                    "var bad = a % 3;\n"  // 5
                    "print(c);\n"         // 6  correct
                    "print(bad);\n"       // 7  wrong
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({10});
  ddg::DepGraph G(T);
  OutputVerdicts V;
  V.CorrectOutputs = {0};
  V.WrongOutput = 1;
  V.ExpectedValue = 0;
  ConfidenceAnalysis CA(*S.Prog, G, nullptr, V);
  // The whole a -> b -> c chain is invertible and ends in a correct
  // output, so even a's definition is verified.
  EXPECT_TRUE(CA.inferredCorrect(S.instanceAtLine(T, 2)));
  EXPECT_TRUE(CA.inferredCorrect(S.instanceAtLine(T, 3)));
  EXPECT_TRUE(CA.inferredCorrect(S.instanceAtLine(T, 4)));
}

TEST(ConfidenceTest, BenignMarksPruneAndPropagate) {
  const char *Src = "fn main() {\n"
                    "var a = input();\n" // 2
                    "var b = a + 1;\n"   // 3
                    "var c = b % 2;\n"   // 4
                    "print(c);\n"        // 5  wrong (no correct outputs)
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({4});
  ddg::DepGraph G(T);
  OutputVerdicts V;
  V.WrongOutput = 0;
  V.ExpectedValue = 1;
  ConfidenceAnalysis CA(*S.Prog, G, nullptr, V);

  TraceIdx DefA = S.instanceAtLine(T, 2);
  TraceIdx DefB = S.instanceAtLine(T, 3);
  EXPECT_FALSE(CA.inferredCorrect(DefB));

  // The user vouches for b: b becomes correct, and through the
  // invertible +1 so does a.
  CA.recompute({DefB});
  EXPECT_TRUE(CA.inferredCorrect(DefB));
  EXPECT_TRUE(CA.inferredCorrect(DefA));
}

TEST(ConfidenceTest, PredicateWithVerifiedInputsIsNotSanitized) {
  const char *Src = "fn main() {\n"
                    "var a = input();\n"  // 2
                    "var x = 0;\n"        // 3
                    "if (a > 3) {\n"      // 4
                    "x = a % 5;\n"        // 5
                    "}\n"
                    "print(a);\n"         // 7 correct
                    "print(x);\n"         // 8 wrong
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({10});
  ddg::DepGraph G(T);
  OutputVerdicts V;
  V.CorrectOutputs = {0};
  V.WrongOutput = 1;
  V.ExpectedValue = 3;
  ConfidenceAnalysis CA(*S.Prog, G, nullptr, V);
  // a is printed correct, so the predicate's only input is verified --
  // but the predicate could itself be the fault (a mutated condition
  // computes a wrong branch from correct inputs), so it must NOT be
  // inferred correct from its inputs alone.
  EXPECT_FALSE(CA.inferredCorrect(S.instanceAtLine(T, 4)));
  EXPECT_FALSE(CA.inferredCorrect(S.instanceAtLine(T, 5)));
  // The print of a, by contrast, emitted a verified value.
  EXPECT_TRUE(CA.inferredCorrect(S.instanceAtLine(T, 7)));
}

TEST(ConfidenceTest, Figure5ImplicitDependentsSanitizeTheirPredicate) {
  const char *Src = "fn main() {\n"
                    "var p = input();\n"  // 2
                    "var t = 1;\n"        // 3
                    "var u = 2;\n"        // 4
                    "if (p) {\n"          // 5
                    "t = 5;\n"
                    "u = 6;\n"
                    "}\n"
                    "print(t);\n"         // 9  correct
                    "print(u);\n"         // 10 wrong
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({0});
  ddg::DepGraph G(T);
  OutputVerdicts V;
  V.CorrectOutputs = {0};
  V.WrongOutput = 1;
  V.ExpectedValue = 99;

  TraceIdx If = S.instanceAtLine(T, 5);
  TraceIdx PrintT = S.instanceAtLine(T, 9);

  // Without edges the predicate is not even in the wrong slice; add the
  // verified implicit edges print(t) <- if and print(u) <- if.
  TraceIdx PrintU = S.instanceAtLine(T, 10);
  G.addImplicitEdge(PrintU, If, false);

  ConfidenceAnalysis::Options NoProp;
  NoProp.PropagateAcrossImplicit = false;
  ConfidenceAnalysis CANoProp(*S.Prog, G, nullptr, V, NoProp);
  EXPECT_FALSE(CANoProp.inferredCorrect(If));

  // Figure 5: once the dependence if -> print(t) is also verified and
  // print(t) is known correct, the predicate is sanitized.
  G.addImplicitEdge(PrintT, If, false);
  ConfidenceAnalysis CAProp(*S.Prog, G, nullptr, V, ConfidenceAnalysis::Options());
  // print(t) instance: all its used values are verified correct.
  EXPECT_TRUE(CAProp.inferredCorrect(PrintT));
  EXPECT_FALSE(CAProp.inferredCorrect(If))
      << "print(u) is still corrupted, so the predicate stays";

  // If *all* implicit dependents are correct, the predicate is pruned.
  ddg::DepGraph G2(T);
  G2.addImplicitEdge(PrintT, If, false);
  ConfidenceAnalysis CA2(*S.Prog, G2, nullptr, V, ConfidenceAnalysis::Options());
  EXPECT_TRUE(CA2.inferredCorrect(If));
}

TEST(PruningTest, OracleLoopReachesMinimalSlice) {
  // The oracle declares everything benign except the c-chain: pruning
  // must converge with the corrupted chain only.
  const char *Src = "fn main() {\n"
                    "var a = input();\n" // 2
                    "var c = a % 4;\n"   // 3   (corrupted per oracle)
                    "var d = a % 5;\n"   // 4   (benign per oracle)
                    "print(c + d);\n"    // 5   wrong
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({7});
  ddg::DepGraph G(T);
  OutputVerdicts V;
  V.WrongOutput = 0;
  V.ExpectedValue = 42;
  ConfidenceAnalysis CA(*S.Prog, G, nullptr, V);

  struct ChainOracle : Oracle {
    Session &S;
    ExecutionTrace &T;
    explicit ChainOracle(Session &S, ExecutionTrace &T) : S(S), T(T) {}
    bool isBenign(TraceIdx I) override {
      StmtId Stmt = T.step(I).Stmt;
      return Stmt == S.stmtAtLine(4); // only d's def is benign
    }
    bool isRootCause(StmtId) override {
      return false; // Root never recognized: run to the minimal slice.
    }
  } O(S, T);

  PruneState State;
  std::vector<TraceIdx> Minimal = pruneSlicing(CA, O, State);
  EXPECT_EQ(State.UserPrunings, 1u);
  // d's def is gone; c's def remains.
  TraceIdx DefD = S.instanceAtLine(T, 4);
  TraceIdx DefC = S.instanceAtLine(T, 3);
  EXPECT_EQ(std::count(Minimal.begin(), Minimal.end(), DefD), 0);
  EXPECT_EQ(std::count(Minimal.begin(), Minimal.end(), DefC), 1);
}

TEST(PruningTest, SessionStopsWhenRootCauseBecomesVisible) {
  // When the root cause already sits in the pruned slice, the programmer
  // recognizes it immediately: no benign answers are recorded.
  const char *Src = "fn main() {\n"
                    "var a = input();\n" // 2
                    "var c = a % 4;\n"   // 3   (the root cause)
                    "var d = a % 5;\n"   // 4
                    "print(c + d);\n"    // 5   wrong
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({7});
  ddg::DepGraph G(T);
  OutputVerdicts V;
  V.WrongOutput = 0;
  V.ExpectedValue = 42;
  ConfidenceAnalysis CA(*S.Prog, G, nullptr, V);

  struct RootOracle : Oracle {
    Session &S;
    explicit RootOracle(Session &S) : S(S) {}
    bool isBenign(TraceIdx) override { return true; }
    bool isRootCause(StmtId Stmt) override {
      return Stmt == S.stmtAtLine(3);
    }
  } O(S);

  PruneState State;
  std::vector<TraceIdx> Ranked = pruneSlicing(CA, O, State);
  EXPECT_EQ(State.UserPrunings, 0u);
  EXPECT_EQ(std::count(Ranked.begin(), Ranked.end(), S.instanceAtLine(T, 3)),
            1);
}

} // namespace
