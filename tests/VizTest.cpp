//===-- tests/VizTest.cpp - GraphViz export tests -------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "viz/Dot.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::interp;
using eoe::test::Session;

namespace {

const char *Src = "fn main() {\n"
                  "var c = 1;\n"
                  "if (c) {\n"
                  "print(7);\n"
                  "}\n"
                  "print(8);\n"
                  "}";

TEST(VizTest, CfgDotHasBranchLabelsAndShapes) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  FuncId Main = S.Prog->mainFunction();
  std::string Dot =
      viz::cfgToDot(*S.Prog, S.SA->cfg(Main), *S.Prog->function(Main));
  EXPECT_NE(Dot.find("digraph cfg_main"), std::string::npos);
  EXPECT_NE(Dot.find("ENTRY main"), std::string::npos);
  EXPECT_NE(Dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(Dot.find("[label=\"T\"]"), std::string::npos);
  EXPECT_NE(Dot.find("[label=\"F\"]"), std::string::npos);
  EXPECT_NE(Dot.find("if (c)"), std::string::npos);
}

TEST(VizTest, RegionTreeDotNestsBodyUnderPredicate) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  align::RegionTree Tree(T);
  std::string Dot = viz::regionTreeToDot(*S.Prog, Tree);
  TraceIdx If = S.instanceAtLine(T, 3);
  TraceIdx Print7 = S.instanceAtLine(T, 4);
  std::string Edge =
      "i" + std::to_string(If) + " -> i" + std::to_string(Print7);
  EXPECT_NE(Dot.find(Edge), std::string::npos);
  EXPECT_NE(Dot.find("(T)"), std::string::npos) << "branch outcome shown";
}

TEST(VizTest, RegionTreeDotTruncatesLongTraces) {
  Session S("fn main() {\n"
            "var i = 0;\n"
            "while (i < 50) {\n"
            "i = i + 1;\n"
            "}\n"
            "}");
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  align::RegionTree Tree(T);
  std::string Dot = viz::regionTreeToDot(*S.Prog, Tree, /*MaxNodes=*/10);
  EXPECT_NE(Dot.find("more instances"), std::string::npos);
}

TEST(VizTest, DepGraphDotShowsAllThreeEdgeKinds) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  ddg::DepGraph G(T);
  TraceIdx If = S.instanceAtLine(T, 3);
  TraceIdx Print8 = S.instanceAtLine(T, 6);
  G.addImplicitEdge(Print8, If, /*Strong=*/true);

  std::string Dot = viz::depGraphToDot(*S.Prog, G);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos) << "control edge";
  EXPECT_NE(Dot.find("color=red"), std::string::npos) << "implicit edge";
  EXPECT_NE(Dot.find("strong id"), std::string::npos);
  // Data edge: the if uses c.
  TraceIdx DefC = S.instanceAtLine(T, 2);
  std::string DataEdge =
      "i" + std::to_string(If) + " -> i" + std::to_string(DefC) + ";";
  EXPECT_NE(Dot.find(DataEdge), std::string::npos);
}

TEST(VizTest, DepGraphDotRespectsFilter) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  ddg::DepGraph G(T);
  std::vector<bool> Only(T.size(), false);
  std::string Dot = viz::depGraphToDot(*S.Prog, G, &Only);
  EXPECT_NE(Dot.find("no instances selected"), std::string::npos);
}

TEST(VizTest, LabelsEscapeQuotes) {
  // No quotes in Siml source, but backslash-safety is cheap to pin down:
  // the label of print('\'') contains an escaped numeric literal only.
  Session S("fn main() { print('\\''); }");
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  align::RegionTree Tree(T);
  std::string Dot = viz::regionTreeToDot(*S.Prog, Tree);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
}

} // namespace
