//===-- tests/AlignerTest.cpp - Algorithm 1 alignment tests -------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// The scenarios mirror the paper's Figure 2 (three executions of the same
// program; matching point 15 across predicate-switched runs) and Figure 3
// (single-entry-multiple-exit regions).
//
//===----------------------------------------------------------------------===//

#include "align/Aligner.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::align;
using namespace eoe::interp;
using eoe::test::Session;

namespace {

/// The paper's Figure 2 program transcribed to Siml. When \p C2Faulty the
/// body of the P-branch also sets C2 = 1 (the paper's execution (3)).
std::string figure2Source(bool C2Faulty) {
  std::string Body = C2Faulty ? "C2 = 1;" : "C2 = 0;";
  return std::string("fn main() {\n"          // 1
                     "var i = 0;\n"           // 2
                     "var t = 0;\n"           // 3
                     "var x = 0;\n"           // 4
                     "var P = 0;\n"           // 5
                     "var C1 = 0;\n"          // 6
                     "var C2 = 0;\n"          // 7
                     "var y = 0;\n"           // 8
                     "if (P) {\n"             // 9   <- switched predicate
                     "t = 1;\n"               // 10
                     ) + Body + "\n"          // 11
                     "x = 42;\n"              // 12
                     "}\n"                    // 13
                     "while (i < t) {\n"      // 14
                     "y = y + 1;\n"           // 15
                     "if (C1) {\n"            // 16
                     "y = y + 2;\n"           // 17
                     "}\n"                    // 18
                     "i = i + 1;\n"           // 19
                     "}\n"                    // 20
                     "if (1) {\n"             // 21
                     "if (C2 == 0) {\n"       // 22
                     "y = x;\n"               // 23  <- the use of x ("15(1)")
                     "}\n"                    // 24
                     "y = y + 3;\n"           // 25
                     "}\n"                    // 26
                     "print(y);\n"            // 27
                     "}\n";                   // 28
}

TEST(AlignerTest, Figure2MatchFoundAcrossLoopNoise) {
  Session S(figure2Source(/*C2Faulty=*/false));
  ASSERT_TRUE(S.valid());
  ExecutionTrace E = S.run();
  TraceIdx U = S.instanceAtLine(E, 23);
  ASSERT_NE(U, InvalidId);

  // Switch "if (P)": the switched run additionally executes the P-branch
  // and one loop iteration, shifting all later indices.
  ExecutionTrace EP = S.Interp->runSwitched({}, {S.stmtAtLine(9), 1}, 100000);
  ASSERT_NE(EP.SwitchedStep, InvalidId);
  ASSERT_GT(EP.size(), E.size());

  ExecutionAligner A(E, EP);
  AlignResult R = A.match(U);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(EP.step(R.Matched).Stmt, S.stmtAtLine(23));
  EXPECT_NE(R.Matched, U) << "indices shift, matching is non-trivial";
  // The matched instance now reads x = 42 defined inside the P-branch.
  ASSERT_EQ(EP.step(R.Matched).Uses.size(), 1u);
  EXPECT_EQ(EP.step(R.Matched).Uses[0].Value, 42);
}

TEST(AlignerTest, Figure2Execution3HasNoMatch) {
  // Paper's execution (3): the switched branch also flips C2, so the
  // predicate guarding the use takes the other branch and 15(1) has no
  // counterpart.
  Session S(figure2Source(/*C2Faulty=*/true));
  ASSERT_TRUE(S.valid());
  ExecutionTrace E = S.run();
  TraceIdx U = S.instanceAtLine(E, 23);
  ExecutionTrace EP = S.Interp->runSwitched({}, {S.stmtAtLine(9), 1}, 100000);

  ExecutionAligner A(E, EP);
  AlignResult R = A.match(U);
  EXPECT_FALSE(R.found());
  EXPECT_EQ(R.Why, AlignFailure::BranchDiverged);
}

TEST(AlignerTest, PointsBeforeTheSwitchMatchThemselves) {
  Session S(figure2Source(false));
  ASSERT_TRUE(S.valid());
  ExecutionTrace E = S.run();
  ExecutionTrace EP = S.Interp->runSwitched({}, {S.stmtAtLine(9), 1}, 100000);
  ExecutionAligner A(E, EP);
  for (TraceIdx I = 0; I <= A.switchPoint(); ++I) {
    AlignResult R = A.match(I);
    ASSERT_TRUE(R.found());
    EXPECT_EQ(R.Matched, I);
  }
}

TEST(AlignerTest, StatementsSurvivingTheSwitchStillMatch) {
  Session S(figure2Source(true));
  ASSERT_TRUE(S.valid());
  ExecutionTrace E = S.run();
  ExecutionTrace EP = S.Interp->runSwitched({}, {S.stmtAtLine(9), 1}, 100000);
  ExecutionAligner A(E, EP);
  // Line 25 executes in both runs (its guard, line 21, is always true).
  TraceIdx U = S.instanceAtLine(E, 25);
  AlignResult R = A.match(U);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(EP.step(R.Matched).Stmt, S.stmtAtLine(25));
  // And the print as well.
  AlignResult RP = A.match(S.instanceAtLine(E, 27));
  ASSERT_TRUE(RP.found());
  EXPECT_EQ(EP.step(RP.Matched).Stmt, S.stmtAtLine(27));
}

TEST(AlignerTest, Figure3MultiExitRegionHasNoMatch) {
  // Figure 3's single-entry-multiple-exit shape: the switched predicate
  // makes the callee return early. Under Ferrante-Ottenstein-Warren
  // control dependence the statements following the conditional return
  // are control dependent on it, so the no-match verdict surfaces as a
  // branch divergence on u's region path.
  const char *Src = "fn f(P) {\n"   // 1
                    "if (P) {\n"    // 2  <- switched
                    "return 1;\n"   // 3
                    "}\n"           // 4
                    "print(5);\n"   // 5  <- u
                    "return 0;\n"   // 6
                    "}\n"           // 7
                    "fn main() {\n" // 8
                    "var P = 0;\n"  // 9
                    "print(f(P));\n" // 10
                    "}\n";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace E = S.run();
  TraceIdx U = S.instanceAtLine(E, 5);
  ExecutionTrace EP = S.Interp->runSwitched({}, {S.stmtAtLine(2), 1}, 100000);
  ExecutionAligner A(E, EP);
  AlignResult R = A.match(U);
  EXPECT_FALSE(R.found());
  EXPECT_EQ(R.Why, AlignFailure::BranchDiverged);
}

TEST(AlignerTest, RegionEndedEarlyWhenSwitchedRunTimesOut) {
  // The paper's timeout: if the switched run exhausts its budget before
  // reaching u's region, the sibling walk runs off the truncated trace
  // and the verification concludes "no dependence".
  const char *Src = "fn main() {\n"         // 1
                    "var P = 0;\n"          // 2
                    "var t = 0;\n"          // 3
                    "if (P) {\n"            // 4  <- switched
                    "t = 1000000000;\n"     // 5
                    "}\n"                   // 6
                    "var i = 0;\n"          // 7
                    "while (i < t) {\n"     // 8
                    "i = i + 1;\n"          // 9
                    "}\n"                   // 10
                    "print(7);\n"           // 11 <- u
                    "}\n";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace E = S.run();
  TraceIdx U = S.instanceAtLine(E, 11);
  ExecutionTrace EP = S.Interp->runSwitched({}, {S.stmtAtLine(4), 1}, 5000);
  ASSERT_EQ(EP.Exit, ExitReason::StepLimit);
  ExecutionAligner A(E, EP);
  AlignResult R = A.match(U);
  EXPECT_FALSE(R.found());
  EXPECT_EQ(R.Why, AlignFailure::RegionEndedEarly);
}

TEST(AlignerTest, MatchesTheRightInstanceOfARepeatedStatement) {
  // The naive "first occurrence of the statement after the switch"
  // strategy the paper rejects would pick emit(111)'s print; region
  // alignment must pick emit(222)'s.
  const char *Src = "fn emit(v) {\n" // 1
                    "print(v);\n"    // 2
                    "return 0;\n"    // 3
                    "}\n"            // 4
                    "fn main() {\n"  // 5
                    "var P = 0;\n"   // 6
                    "if (P) {\n"     // 7  <- switched
                    "emit(111);\n"   // 8
                    "}\n"            // 9
                    "emit(222);\n"   // 10
                    "}\n";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace E = S.run();
  TraceIdx U = S.instanceAtLine(E, 2, 1); // the only print in E
  ExecutionTrace EP = S.Interp->runSwitched({}, {S.stmtAtLine(7), 1}, 100000);
  ASSERT_EQ(EP.Outputs.size(), 2u);

  ExecutionAligner A(E, EP);
  AlignResult R = A.match(U);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(EP.step(R.Matched).Stmt, S.stmtAtLine(2));
  EXPECT_EQ(EP.step(R.Matched).Value, 222) << "must match the second call";
}

TEST(AlignerTest, NoSwitchAlignmentIsIdentity) {
  Session S(figure2Source(false));
  ASSERT_TRUE(S.valid());
  ExecutionTrace E = S.run();
  ExecutionTrace E2 = S.run();
  ExecutionAligner A(E, E2);
  for (TraceIdx I = 0; I < E.size(); ++I) {
    AlignResult R = A.match(I);
    ASSERT_TRUE(R.found());
    EXPECT_EQ(R.Matched, I);
  }
}

TEST(AlignerTest, SwitchingTwiceRestoresTheMatchTarget) {
  // Flipping the same predicate instance in the switched run's *switched
  // run* reproduces the original execution, so alignment composes to the
  // identity.
  Session S(figure2Source(false));
  ASSERT_TRUE(S.valid());
  ExecutionTrace E = S.run();
  SwitchSpec Spec{S.stmtAtLine(9), 1};
  ExecutionTrace EP = S.Interp->runSwitched({}, Spec, 100000);
  ExecutionTrace EPP = S.Interp->runSwitched({}, Spec, 100000);
  // EP and EPP are byte-identical; align E->EP then verify EPP->E returns
  // to the original instance via a fresh aligner in the reverse direction.
  TraceIdx U = S.instanceAtLine(E, 23);
  ExecutionAligner Fwd(E, EP);
  AlignResult R1 = Fwd.match(U);
  ASSERT_TRUE(R1.found());
  // Reverse: treat EP as original. Its switched run (same spec) is E
  // again -- but E carries no SwitchedStep, so rebuild it as a switched
  // trace by re-running with a switch that lands on the same instance.
  ExecutionAligner Rev(EP, EPP);
  AlignResult R2 = Rev.match(R1.Matched);
  ASSERT_TRUE(R2.found());
  EXPECT_EQ(R2.Matched, R1.Matched);
}

} // namespace
