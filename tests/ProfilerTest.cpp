//===-- tests/ProfilerTest.cpp - Profiling unit tests -------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::interp;
using eoe::test::Session;

namespace {

TEST(ProfilerTest, UnionGraphAccumulatesAcrossRuns) {
  const char *Src = "fn main() {\n"
                    "var p = input();\n" // 2
                    "var x = 1;\n"       // 3
                    "if (p) {\n"
                    "x = 2;\n"           // 5
                    "}\n"
                    "print(x);\n"        // 7
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());

  // Find the load expression of x at the print.
  ExecutionTrace T = S.run({1});
  TraceIdx Print = S.instanceAtLine(T, 7);
  ExprId Load = T.step(Print).Uses[0].LoadExpr;

  Profile OnlyFalse = profileTestSuite(*S.Interp, *S.Prog, {{0}});
  EXPECT_TRUE(OnlyFalse.UnionDeps.contains(S.stmtAtLine(3), Load));
  EXPECT_FALSE(OnlyFalse.UnionDeps.contains(S.stmtAtLine(5), Load));

  Profile Both = profileTestSuite(*S.Interp, *S.Prog, {{0}, {1}});
  EXPECT_TRUE(Both.UnionDeps.contains(S.stmtAtLine(3), Load));
  EXPECT_TRUE(Both.UnionDeps.contains(S.stmtAtLine(5), Load));
  EXPECT_EQ(Both.Runs, 2u);
}

TEST(ProfilerTest, ValueProfileRecordsDistinctValues) {
  const char *Src = "fn main() {\n"
                    "var v = input() * 2;\n" // 2
                    "print(v);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  Profile P = profileTestSuite(*S.Interp, *S.Prog,
                               {{1}, {2}, {3}, {3}, {1}});
  StmtId Def = S.stmtAtLine(2);
  EXPECT_EQ(P.Values.rangeSize(Def), 3u) << "distinct values only";
  EXPECT_TRUE(P.Values.values(Def).count(2));
  EXPECT_TRUE(P.Values.values(Def).count(4));
  EXPECT_TRUE(P.Values.values(Def).count(6));
}

TEST(ProfilerTest, EmptyRangeReportsOne) {
  Session S("fn main() { print(1); }");
  ASSERT_TRUE(S.valid());
  Profile P = profileTestSuite(*S.Interp, *S.Prog, {});
  EXPECT_EQ(P.Values.rangeSize(0), 1u)
      << "guards logarithmic confidence formulas";
  EXPECT_EQ(P.Runs, 0u);
}

TEST(ProfilerTest, DefinesSomethingQuery) {
  const char *Src = "fn main() {\n"
                    "var a = 1;\n" // 2: used below
                    "var b = 2;\n" // 3: never used
                    "print(a);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  Profile P = profileTestSuite(*S.Interp, *S.Prog, {{}});
  EXPECT_TRUE(P.UnionDeps.definesSomething(S.stmtAtLine(2)));
  EXPECT_FALSE(P.UnionDeps.definesSomething(S.stmtAtLine(3)));
}

} // namespace
