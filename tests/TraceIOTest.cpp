//===-- tests/TraceIOTest.cpp - Trace serialization tests ----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/TraceIO.h"

#include "align/Aligner.h"
#include "ddg/DepGraph.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::interp;
using eoe::test::Session;

namespace {

const char *Src = "fn mix(a) {\n"
                  "return a * 2;\n"
                  "}\n"
                  "fn main() {\n"
                  "var i = 0;\n"
                  "var s = 0;\n"
                  "while (i < 3) {\n"
                  "s = s + mix(i);\n"
                  "i = i + 1;\n"
                  "}\n"
                  "if (s > 4) {\n"
                  "print(s);\n"
                  "}\n"
                  "print(s, i);\n"
                  "}";

void expectTracesEqual(const ExecutionTrace &A, const ExecutionTrace &B) {
  ASSERT_EQ(A.Steps.size(), B.Steps.size());
  EXPECT_EQ(A.Exit, B.Exit);
  EXPECT_EQ(A.ExitValue, B.ExitValue);
  EXPECT_EQ(A.SwitchedStep, B.SwitchedStep);
  EXPECT_EQ(A.FirstInputStep, B.FirstInputStep);
  for (TraceIdx I = 0; I < A.Steps.size(); ++I) {
    const StepRecord &SA = A.step(I), &SB = B.step(I);
    EXPECT_EQ(SA.Stmt, SB.Stmt);
    EXPECT_EQ(SA.CdParent, SB.CdParent);
    EXPECT_EQ(SA.InstanceNo, SB.InstanceNo);
    EXPECT_EQ(SA.BranchTaken, SB.BranchTaken);
    EXPECT_EQ(SA.Value, SB.Value);
    ASSERT_EQ(SA.Uses.size(), SB.Uses.size());
    for (size_t U = 0; U < SA.Uses.size(); ++U) {
      EXPECT_EQ(SA.Uses[U].Loc.Raw, SB.Uses[U].Loc.Raw);
      EXPECT_EQ(SA.Uses[U].Def, SB.Uses[U].Def);
      EXPECT_EQ(SA.Uses[U].LoadExpr, SB.Uses[U].LoadExpr);
      EXPECT_EQ(SA.Uses[U].Var, SB.Uses[U].Var);
      EXPECT_EQ(SA.Uses[U].Value, SB.Uses[U].Value);
    }
    ASSERT_EQ(SA.Defs.size(), SB.Defs.size());
    for (size_t D = 0; D < SA.Defs.size(); ++D) {
      EXPECT_EQ(SA.Defs[D].Loc.Raw, SB.Defs[D].Loc.Raw);
      EXPECT_EQ(SA.Defs[D].Value, SB.Defs[D].Value);
    }
  }
  ASSERT_EQ(A.Outputs.size(), B.Outputs.size());
  for (size_t I = 0; I < A.Outputs.size(); ++I) {
    EXPECT_EQ(A.Outputs[I].Step, B.Outputs[I].Step);
    EXPECT_EQ(A.Outputs[I].ArgNo, B.Outputs[I].ArgNo);
    EXPECT_EQ(A.Outputs[I].Value, B.Outputs[I].Value);
  }
}

TEST(TraceIOTest, RoundTripsAFullTrace) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  std::string Text = serializeTrace(T);
  std::string Error;
  auto Back = deserializeTrace(Text, &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  expectTracesEqual(T, *Back);
}

TEST(TraceIOTest, RoundTripsSwitchedAndAbortedRuns) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T =
      S.Interp->runSwitched({}, {S.stmtAtLine(11), 1}, 100000);
  ASSERT_NE(T.SwitchedStep, InvalidId);
  auto Back = deserializeTrace(serializeTrace(T));
  ASSERT_TRUE(Back.has_value());
  expectTracesEqual(T, *Back);

  Interpreter::Options Tight;
  Tight.MaxSteps = 5;
  ExecutionTrace Aborted = S.Interp->run({}, Tight);
  ASSERT_EQ(Aborted.Exit, ExitReason::StepLimit);
  auto Back2 = deserializeTrace(serializeTrace(Aborted));
  ASSERT_TRUE(Back2.has_value());
  expectTracesEqual(Aborted, *Back2);
}

TEST(TraceIOTest, DeserializedTracesDriveTheAnalyses) {
  // The round-tripped trace is a full citizen: sliceable and alignable.
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  auto Loaded = deserializeTrace(serializeTrace(T));
  ASSERT_TRUE(Loaded.has_value());

  ddg::DepGraph G(*Loaded);
  auto Member = G.backwardClosure({Loaded->Outputs.back().Step},
                                  ddg::DepGraph::ClosureOptions());
  EXPECT_GT(G.stats(Member).DynamicInstances, 4u);

  ExecutionTrace Switched =
      S.Interp->runSwitched({}, {S.stmtAtLine(11), 1}, 100000);
  align::ExecutionAligner A(*Loaded, Switched);
  EXPECT_TRUE(A.match(Loaded->Outputs.back().Step).found());
}

TEST(TraceIOTest, RoundTripsTheFirstInputWatermark) {
  Session S("fn main() { var a = 1; var x = input(); print(a + x); }");
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.Interp->run({5});
  ASSERT_NE(T.FirstInputStep, InvalidId);
  std::string Text = serializeTrace(T);
  EXPECT_NE(Text.find("\nfirstinput "), std::string::npos);
  auto Back = deserializeTrace(Text);
  ASSERT_TRUE(Back.has_value());
  expectTracesEqual(T, *Back);

  // Version-1 documents predate the watermark; they load with it unset.
  std::string V1 = "EOETRACE 1\nexit finished 0\nswitched -\n"
                   "steps 0\noutputs 0\n";
  std::string Error;
  auto Old = deserializeTrace(V1, &Error);
  ASSERT_TRUE(Old.has_value()) << Error;
  EXPECT_EQ(Old->FirstInputStep, InvalidId);

  // A watermark pointing past the step list is corrupt.
  std::string Dangling = "EOETRACE 2\nexit finished 0\nswitched -\n"
                         "firstinput 7\nsteps 0\noutputs 0\n";
  EXPECT_FALSE(deserializeTrace(Dangling, &Error).has_value());
  EXPECT_NE(Error.find("firstinput"), std::string::npos);
}

TEST(TraceIOTest, RejectsMalformedFirstInputRecords) {
  // A version-2 document from a real input-reading run, damaged three
  // ways around its firstinput record.
  Session S("fn main() { var a = 1; var x = input(); print(a + x); }");
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.Interp->run({5});
  ASSERT_NE(T.FirstInputStep, InvalidId);
  std::string Good = serializeTrace(T);
  size_t At = Good.find("\nfirstinput ");
  ASSERT_NE(At, std::string::npos);
  size_t LineEnd = Good.find('\n', At + 1);
  ASSERT_NE(LineEnd, std::string::npos);
  std::string Error;

  // Missing: a v2 trace without the record is truncated, not "old".
  std::string Missing = Good;
  Missing.erase(At, LineEnd - At);
  EXPECT_FALSE(deserializeTrace(Missing, &Error).has_value());
  EXPECT_EQ(Error, "bad firstinput record");

  // Duplicate: a second record where the steps header belongs.
  std::string Duplicated = Good;
  Duplicated.insert(LineEnd, "\nfirstinput 0");
  EXPECT_FALSE(deserializeTrace(Duplicated, &Error).has_value());
  EXPECT_EQ(Error, "bad steps header");

  // Watermark exactly one past the last step of a non-empty trace (the
  // off-by-one boundary; the in-range indices all round-trip).
  std::string PastEnd = Good;
  PastEnd.replace(At, LineEnd - At,
                  "\nfirstinput " + std::to_string(T.Steps.size()));
  EXPECT_FALSE(deserializeTrace(PastEnd, &Error).has_value());
  EXPECT_EQ(Error, "firstinput dangling step index");
}

TEST(TraceIOTest, RejectsCorruptInput) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  std::string Good = serializeTrace(S.run());
  std::string Error;

  EXPECT_FALSE(deserializeTrace("", &Error).has_value());
  EXPECT_FALSE(deserializeTrace("NOTATRACE 1\n", &Error).has_value());
  EXPECT_FALSE(
      deserializeTrace("EOETRACE 99\nexit finished 0\n", &Error).has_value())
      << "unknown version";

  // Truncation anywhere must be detected, never crash.
  for (size_t Cut : {Good.size() / 4, Good.size() / 2, Good.size() - 3})
    EXPECT_FALSE(deserializeTrace(Good.substr(0, Cut), &Error).has_value())
        << "cut at " << Cut;

  // Dangling parent index.
  std::string Dangling = "EOETRACE 1\nexit finished 0\nswitched -\n"
                         "steps 1\ns 0 5 1 -1 0 0 0\noutputs 0\n";
  EXPECT_FALSE(deserializeTrace(Dangling, &Error).has_value());
  EXPECT_NE(Error.find("parent out of order"), std::string::npos);
}

} // namespace
