//===-- tests/TraceTest.cpp - Dependence recording tests ----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/Trace.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::interp;
using eoe::test::Session;

namespace {

TEST(MemLocTest, EncodingRoundTrips) {
  MemLoc G = MemLoc::global(7);
  EXPECT_TRUE(G.isGlobal());
  EXPECT_EQ(G.slot(), 7u);

  MemLoc F = MemLoc::frame(123, 4);
  EXPECT_FALSE(F.isGlobal());
  EXPECT_EQ(F.frameSerial(), 123u);
  EXPECT_EQ(F.slot(), 4u);
  EXPECT_FALSE(F.isRetVal());

  MemLoc R = MemLoc::retVal(123);
  EXPECT_TRUE(R.isRetVal());
  EXPECT_EQ(R.frameSerial(), 123u);
  EXPECT_NE(F.Raw, R.Raw);
}

TEST(TraceTest, DataDependenceLinksDefToUse) {
  const char *Src = "fn main() {\n"
                    "var x = 5;\n"
                    "var y = x + 1;\n"
                    "print(y);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();

  TraceIdx DefX = S.instanceAtLine(T, 2);
  TraceIdx DefY = S.instanceAtLine(T, 3);
  TraceIdx Print = S.instanceAtLine(T, 4);
  ASSERT_NE(DefX, InvalidId);
  ASSERT_NE(DefY, InvalidId);
  ASSERT_NE(Print, InvalidId);

  ASSERT_EQ(T.step(DefY).Uses.size(), 1u);
  EXPECT_EQ(T.step(DefY).Uses[0].Def, DefX);
  EXPECT_EQ(T.step(DefY).Uses[0].Value, 5);
  ASSERT_EQ(T.step(Print).Uses.size(), 1u);
  EXPECT_EQ(T.step(Print).Uses[0].Def, DefY);
}

TEST(TraceTest, RedefinitionKillsOldDef) {
  const char *Src = "fn main() {\n"
                    "var x = 1;\n"
                    "x = 2;\n"
                    "print(x);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  TraceIdx Print = S.instanceAtLine(T, 4);
  EXPECT_EQ(T.step(Print).Uses[0].Def, S.instanceAtLine(T, 3));
}

TEST(TraceTest, ArrayElementsTrackedIndividually) {
  const char *Src = "fn main() {\n"
                    "var a[4];\n"
                    "a[0] = 10;\n"
                    "a[1] = 20;\n"
                    "print(a[1]);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  TraceIdx Print = S.instanceAtLine(T, 5);
  // Uses: the element load (index is a literal, no load for it).
  ASSERT_EQ(T.step(Print).Uses.size(), 1u);
  EXPECT_EQ(T.step(Print).Uses[0].Def, S.instanceAtLine(T, 4));
  EXPECT_EQ(T.step(Print).Uses[0].Value, 20);
}

TEST(TraceTest, IndexExpressionLoadsAreUsesToo) {
  const char *Src = "fn main() {\n"
                    "var a[4];\n"
                    "var i = 2;\n"
                    "a[i] = 7;\n"
                    "print(a[2]);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  TraceIdx Store = S.instanceAtLine(T, 4);
  // The store uses i (the index).
  ASSERT_EQ(T.step(Store).Uses.size(), 1u);
  EXPECT_EQ(T.step(Store).Uses[0].Def, S.instanceAtLine(T, 3));
}

TEST(TraceTest, CallLinksArgsParamsAndReturn) {
  const char *Src = "fn double(n) {\n"
                    "return n * 2;\n"
                    "}\n"
                    "fn main() {\n"
                    "var x = 3;\n"
                    "var y = double(x);\n"
                    "print(y);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  TraceIdx DefX = S.instanceAtLine(T, 5);
  TraceIdx CallY = S.instanceAtLine(T, 6);
  TraceIdx Ret = S.instanceAtLine(T, 2);

  // The call-site instance uses x and the callee's return value.
  const StepRecord &Call = T.step(CallY);
  ASSERT_EQ(Call.Uses.size(), 2u);
  EXPECT_EQ(Call.Uses[0].Def, DefX);   // argument evaluation
  EXPECT_EQ(Call.Uses[1].Def, Ret);    // return value
  EXPECT_TRUE(Call.Uses[1].Loc.isRetVal());

  // The return instance uses the parameter, defined by the call site.
  const StepRecord &RetStep = T.step(Ret);
  ASSERT_EQ(RetStep.Uses.size(), 1u);
  EXPECT_EQ(RetStep.Uses[0].Def, CallY);
}

TEST(TraceTest, DynamicControlParentsFormLoopNesting) {
  const char *Src = "fn main() {\n"
                    "var i = 0;\n"
                    "while (i < 2) {\n"
                    "i = i + 1;\n"
                    "}\n"
                    "print(i);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();

  TraceIdx W1 = S.instanceAtLine(T, 3, 1);
  TraceIdx W2 = S.instanceAtLine(T, 3, 2);
  TraceIdx W3 = S.instanceAtLine(T, 3, 3);
  TraceIdx Inc1 = S.instanceAtLine(T, 4, 1);
  TraceIdx Inc2 = S.instanceAtLine(T, 4, 2);
  TraceIdx Print = S.instanceAtLine(T, 6);

  // Each iteration nests in the previous one (paper Definition 3).
  EXPECT_EQ(T.step(Inc1).CdParent, W1);
  EXPECT_EQ(T.step(W2).CdParent, W1);
  EXPECT_EQ(T.step(Inc2).CdParent, W2);
  EXPECT_EQ(T.step(W3).CdParent, W2);
  // Top-level statements have no parent in main.
  EXPECT_EQ(T.step(W1).CdParent, InvalidId);
  EXPECT_EQ(T.step(Print).CdParent, InvalidId);
}

TEST(TraceTest, CalleeTopLevelHangsOffCallSite) {
  const char *Src = "fn f() {\n"
                    "print(1);\n"
                    "return 0;\n"
                    "}\n"
                    "fn main() {\n"
                    "f();\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  TraceIdx Call = S.instanceAtLine(T, 6);
  TraceIdx P = S.instanceAtLine(T, 2);
  EXPECT_EQ(T.step(P).CdParent, Call);
}

TEST(TraceTest, BranchOutcomesRecorded) {
  const char *Src = "fn main() {\n"
                    "var c = 1;\n"
                    "if (c) {\n"
                    "print(1);\n"
                    "}\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  TraceIdx If = S.instanceAtLine(T, 3);
  EXPECT_TRUE(T.step(If).isPredicateInstance());
  EXPECT_TRUE(T.step(If).branch());
  TraceIdx Print = S.instanceAtLine(T, 4);
  EXPECT_FALSE(T.step(Print).isPredicateInstance());
  EXPECT_EQ(T.step(Print).CdParent, If);
}

TEST(TraceTest, OutputEventsCarryStepAndArgPositions) {
  const char *Src = "fn main() { print(10, 20); print(30); }";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  ASSERT_EQ(T.Outputs.size(), 3u);
  EXPECT_EQ(T.Outputs[0].Value, 10);
  EXPECT_EQ(T.Outputs[0].ArgNo, 0u);
  EXPECT_EQ(T.Outputs[1].ArgNo, 1u);
  EXPECT_EQ(T.Outputs[0].Step, T.Outputs[1].Step);
  EXPECT_NE(T.Outputs[0].Step, T.Outputs[2].Step);
}

TEST(TraceTest, InstanceNumbersCountOccurrences) {
  const char *Src = "fn main() {\n"
                    "var i = 0;\n"
                    "while (i < 3) {\n"
                    "i = i + 1;\n"
                    "}\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  StmtId Inc = S.stmtAtLine(4);
  uint32_t Expected = 1;
  for (TraceIdx I = 0; I < T.size(); ++I) {
    if (T.step(I).Stmt == Inc) {
      EXPECT_EQ(T.step(I).InstanceNo, Expected++);
    }
  }
  EXPECT_EQ(Expected, 4u);
}

} // namespace
