//===-- tests/CheckpointDiskTest.cpp - Persistent checkpoint cache -------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// The on-disk cache's contract (docs/checkpointing.md): serialization is
// deterministic and round-trips byte-identically; the loader rejects
// every structurally damaged image cleanly (truncation, bit flips, stale
// validity keys, interrupted writes) and never fabricates a snapshot; a
// committed golden fixture pins the version-1 byte layout so silent
// format drift forces an explicit version bump. The concurrent case --
// load() promoting into a SharedCheckpointStore other threads are
// reading -- lives here so `ctest -L parallel` under TSan covers it.
//
//===----------------------------------------------------------------------===//

#include "interp/CheckpointDiskStore.h"
#include "RandomProgram.h"
#include "support/Stats.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace eoe;
using namespace eoe::interp;
using namespace eoe::test;

namespace fs = std::filesystem;

namespace {

constexpr uint64_t kMaxSteps = 500'000;

using SnapshotList = std::vector<std::shared_ptr<const Checkpoint>>;

/// A program, its snapshots (one per clean predicate instance, strided),
/// and the content hash -- everything a cache file is made of.
struct Subject {
  std::unique_ptr<lang::Program> Prog;
  SnapshotList Snaps;
  uint64_t Hash = 0;
};

SnapshotList collectSnapshots(interp::Interpreter &Interp,
                              const std::vector<int64_t> &Input,
                              size_t Stride) {
  ExecutionTrace E = Interp.run(Input);
  CheckpointStore Store(256ull << 20);
  CheckpointPlan Plan;
  Plan.Store = &Store;
  size_t Seen = 0;
  for (TraceIdx I = 0; I < E.size(); ++I)
    if (E.step(I).isPredicateInstance() && Seen++ % Stride == 0)
      Plan.Sites.push_back(I);
  Interpreter::Options Opts;
  Opts.MaxSteps = kMaxSteps;
  Opts.Checkpoints = &Plan;
  Interp.run(Input, Opts);

  SnapshotList Snaps;
  for (TraceIdx S : Plan.Sites)
    if (auto CP = Store.nearest(S))
      if (Snaps.empty() || Snaps.back()->Index < CP->Index)
        Snaps.push_back(CP);
  return Snaps;
}

Subject makeRandomSubject(uint64_t Seed) {
  RandomProgramGenerator Gen(Seed);
  auto Variant = Gen.generateOmission();
  Subject S;
  S.Prog = parseOrDie(Variant.FaultySource);
  if (!S.Prog)
    return S;
  analysis::StaticAnalysis SA(*S.Prog);
  interp::Interpreter Interp(*S.Prog, SA);
  S.Snaps = collectSnapshots(Interp, Variant.Input, 2);
  S.Hash = SharedCheckpointStore::hashProgram(*S.Prog);
  return S;
}

bool sameSnapshots(const SnapshotList &A, const SnapshotList &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!(*A[I] == *B[I]))
      return false;
  return true;
}

/// Input-free program: every snapshot is input-independent, so the
/// SharedCheckpointStore accepts all of them (the disk store's unit).
const char *kSharedSrc = "fn helper(n) {\n"
                         "  var r = 0;\n"
                         "  if (n > 2) {\n"
                         "    r = n * 2;\n"
                         "  }\n"
                         "  return r + 1;\n"
                         "}\n"
                         "fn main() {\n"
                         "  var i = 0;\n"
                         "  var acc = 0;\n"
                         "  while (i < 8) {\n"
                         "    acc = acc + helper(i);\n"
                         "    i = i + 1;\n"
                         "  }\n"
                         "  print(acc);\n"
                         "}\n";

/// Builds a SharedCheckpointStore holding \p S's snapshots (all must be
/// input-independent) and returns how many were admitted.
size_t promoteAll(SharedCheckpointStore &Shared, const Subject &S) {
  size_t N = 0;
  for (const auto &CP : S.Snaps)
    if (Shared.promote(CP, S.Hash, S.Prog.get(), kMaxSteps))
      ++N;
  return N;
}

Subject makeSharedSubject() {
  Subject S;
  S.Prog = parseOrDie(kSharedSrc);
  if (!S.Prog)
    return S;
  analysis::StaticAnalysis SA(*S.Prog);
  interp::Interpreter Interp(*S.Prog, SA);
  S.Snaps = collectSnapshots(Interp, {}, 1);
  S.Hash = SharedCheckpointStore::hashProgram(*S.Prog);
  return S;
}

fs::path freshDir(const std::string &Name) {
  fs::path Dir = fs::path(::testing::TempDir()) / Name;
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  return Dir;
}

std::string readFile(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFile(const fs::path &P, const std::string &Bytes) {
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

class DiskRoundTrip : public ::testing::TestWithParam<uint64_t> {};

// Round trip over random programs: decode(encode(snaps)) == snaps, and
// re-encoding the decoded list reproduces the exact bytes (the encoder
// is deterministic, so byte identity is the strongest equality we have).
TEST_P(DiskRoundTrip, ByteIdenticalOverRandomPrograms) {
  Subject S = makeRandomSubject(GetParam());
  ASSERT_TRUE(S.Prog);

  std::string Bytes = serializeCheckpoints(S.Snaps, *S.Prog, S.Hash, kMaxSteps);
  ASSERT_FALSE(Bytes.empty());

  std::string Err;
  auto Back = deserializeCheckpoints(Bytes, *S.Prog, S.Hash, kMaxSteps, &Err);
  ASSERT_TRUE(Back) << Err;
  EXPECT_TRUE(sameSnapshots(S.Snaps, *Back)) << "seed " << GetParam();

  std::string Again = serializeCheckpoints(*Back, *S.Prog, S.Hash, kMaxSteps);
  EXPECT_EQ(Bytes, Again) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskRoundTrip,
                         ::testing::Range<uint64_t>(400, 412));

// Corruption injection: a flipped byte anywhere in the image must make
// the loader reject (or, when the flip cancels out, decode the original
// exactly); every truncation must reject.
TEST(CheckpointDiskTest, CorruptedImagesAreRejected) {
  Subject S = makeRandomSubject(77);
  ASSERT_TRUE(S.Prog);
  ASSERT_FALSE(S.Snaps.empty());
  std::string Bytes = serializeCheckpoints(S.Snaps, *S.Prog, S.Hash, kMaxSteps);

  // Byte flips at offsets spread over the whole image (header, record
  // frames, payloads).
  size_t Step = Bytes.size() / 64 ? Bytes.size() / 64 : 1;
  for (size_t At = 0; At < Bytes.size(); At += Step) {
    std::string M = Bytes;
    M[At] = static_cast<char>(M[At] ^ 0x5A);
    auto R = deserializeCheckpoints(M, *S.Prog, S.Hash, kMaxSteps);
    if (R) {
      EXPECT_TRUE(sameSnapshots(S.Snaps, *R)) << "flip at offset " << At;
    }
  }

  // Truncations: every prefix strictly shorter than the file.
  for (size_t Len = 0; Len < Bytes.size();
       Len += Bytes.size() / 97 ? Bytes.size() / 97 : 1) {
    std::string Err;
    auto R = deserializeCheckpoints(std::string_view(Bytes).substr(0, Len),
                                    *S.Prog, S.Hash, kMaxSteps, &Err);
    EXPECT_FALSE(R) << "truncation to " << Len << " bytes accepted";
    EXPECT_FALSE(Err.empty());
  }

  // Trailing garbage after a valid image.
  std::string Padded = Bytes + std::string(16, '\0');
  EXPECT_FALSE(deserializeCheckpoints(Padded, *S.Prog, S.Hash, kMaxSteps));
}

// The validity key: a cache written for another program revision (hash)
// or another step budget must not seed this session.
TEST(CheckpointDiskTest, StaleValidityKeysAreRejected) {
  Subject S = makeRandomSubject(78);
  ASSERT_TRUE(S.Prog);
  std::string Bytes = serializeCheckpoints(S.Snaps, *S.Prog, S.Hash, kMaxSteps);

  std::string Err;
  EXPECT_FALSE(
      deserializeCheckpoints(Bytes, *S.Prog, S.Hash + 1, kMaxSteps, &Err));
  EXPECT_EQ(Err, "stale program hash");
  EXPECT_FALSE(
      deserializeCheckpoints(Bytes, *S.Prog, S.Hash, kMaxSteps + 1, &Err));
  EXPECT_EQ(Err, "step budget mismatch");

  // Version skew: the loader accepts exactly CheckpointDiskVersion. The
  // header CRC is recomputed so the version check itself is what rejects
  // (a raw flip would trip the checksum first).
  std::string Skewed = Bytes;
  Skewed[8] = static_cast<char>(CheckpointDiskVersion + 1);
  uint32_t Crc = ckptCrc32(Skewed.data(), 32);
  for (int B = 0; B < 4; ++B)
    Skewed[32 + B] = static_cast<char>((Crc >> (8 * B)) & 0xFF);
  EXPECT_FALSE(deserializeCheckpoints(Skewed, *S.Prog, S.Hash, kMaxSteps, &Err));
  EXPECT_EQ(Err, "unsupported version");
}

// The directory-level store: save writes via temp-file + rename, so a
// leftover .tmp from an interrupted writer is inert, a truncated cache
// file costs only the warm start (counted as a reject), and the next
// save repairs it.
TEST(CheckpointDiskTest, InterruptedWritesNeverPoisonTheCache) {
  Subject S = makeSharedSubject();
  ASSERT_TRUE(S.Prog);
  SharedCheckpointStore Live;
  size_t N = promoteAll(Live, S);
  ASSERT_GT(N, 0u);

  fs::path Dir = freshDir("eoe-ckpt-atomic");
  CheckpointDiskStore Disk(Dir.string());
  support::StatsRegistry Reg;
  ASSERT_TRUE(Disk.save(Live, *S.Prog, kMaxSteps, &Reg));
  fs::path Cache(Disk.pathFor(S.Hash, kMaxSteps));
  ASSERT_TRUE(fs::exists(Cache));

  // A dying writer's leftover temp file must not confuse the loader.
  writeFile(Cache.string() + ".tmp", "interrupted garbage");
  {
    SharedCheckpointStore Revived;
    EXPECT_EQ(Disk.load(Revived, *S.Prog, kMaxSteps, &Reg), N);
    EXPECT_EQ(Revived.count(), N);
    EXPECT_EQ(Revived.diskIndicesFor(S.Hash, S.Prog.get(), kMaxSteps).size(),
              N);
    EXPECT_TRUE(sameSnapshots(
        S.Snaps, Revived.snapshotsFor(S.Hash, S.Prog.get(), kMaxSteps)));
  }
  EXPECT_EQ(Reg.counter("verify.ckpt.disk_loads").get(), N);
  EXPECT_EQ(Reg.counter("verify.ckpt.disk_rejects").get(), 0u);

  // A write that died mid-rename never happens (rename is atomic), but a
  // torn final file -- e.g. a crashed filesystem -- must reject cleanly.
  std::string Valid = readFile(Cache);
  writeFile(Cache, Valid.substr(0, Valid.size() / 2));
  {
    SharedCheckpointStore Revived;
    EXPECT_EQ(Disk.load(Revived, *S.Prog, kMaxSteps, &Reg), 0u);
    EXPECT_EQ(Revived.count(), 0u);
  }
  EXPECT_EQ(Reg.counter("verify.ckpt.disk_rejects").get(), 1u);

  // The next save repairs the cache in place.
  ASSERT_TRUE(Disk.save(Live, *S.Prog, kMaxSteps, &Reg));
  {
    SharedCheckpointStore Revived;
    EXPECT_EQ(Disk.load(Revived, *S.Prog, kMaxSteps, &Reg), N);
  }

  // A missing file is not an error and not a reject.
  fs::remove(Cache);
  {
    SharedCheckpointStore Revived;
    EXPECT_EQ(Disk.load(Revived, *S.Prog, kMaxSteps, &Reg), 0u);
  }
  EXPECT_EQ(Reg.counter("verify.ckpt.disk_rejects").get(), 1u);
}

// Snapshots revived from disk keep their disk origin; snapshots a live
// collection pass promoted first do not acquire one retroactively.
TEST(CheckpointDiskTest, DiskOriginTracksOnlyRevivedSnapshots) {
  Subject S = makeSharedSubject();
  ASSERT_TRUE(S.Prog);
  ASSERT_GE(S.Snaps.size(), 2u);

  SharedCheckpointStore Live;
  ASSERT_GT(promoteAll(Live, S), 0u);
  fs::path Dir = freshDir("eoe-ckpt-origin");
  CheckpointDiskStore Disk(Dir.string());
  ASSERT_TRUE(Disk.save(Live, *S.Prog, kMaxSteps));

  // Fresh store: a live pass promotes the first snapshot, then the cache
  // load offers everything. The pre-promoted index keeps its live origin.
  SharedCheckpointStore Mixed;
  ASSERT_TRUE(
      Mixed.promote(S.Snaps.front(), S.Hash, S.Prog.get(), kMaxSteps));
  EXPECT_EQ(Disk.load(Mixed, *S.Prog, kMaxSteps), S.Snaps.size() - 1);
  std::vector<TraceIdx> FromDisk =
      Mixed.diskIndicesFor(S.Hash, S.Prog.get(), kMaxSteps);
  EXPECT_EQ(FromDisk.size(), S.Snaps.size() - 1);
  for (TraceIdx I : FromDisk)
    EXPECT_NE(I, S.Snaps.front()->Index);
}

// TSan target: several threads load the same cache file into one shared
// store while readers resolve snapshots from it, like parallel verifier
// workers racing a warm start.
TEST(CheckpointDiskTest, ConcurrentLoadWhileVerifyIsRaceFree) {
  Subject S = makeSharedSubject();
  ASSERT_TRUE(S.Prog);
  SharedCheckpointStore Live;
  size_t N = promoteAll(Live, S);
  ASSERT_GT(N, 0u);

  fs::path Dir = freshDir("eoe-ckpt-concurrent");
  CheckpointDiskStore Disk(Dir.string());
  ASSERT_TRUE(Disk.save(Live, *S.Prog, kMaxSteps));

  SharedCheckpointStore Shared;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      SharedCheckpointStore *Target = &Shared;
      CheckpointDiskStore Loader(Dir.string());
      Loader.load(*Target, *S.Prog, kMaxSteps);
    });
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      // Verifier-side reads: enumerate and dereference whatever snapshots
      // have been promoted so far.
      for (int Round = 0; Round < 200; ++Round) {
        SnapshotList Seen =
            Shared.snapshotsFor(S.Hash, S.Prog.get(), kMaxSteps);
        uint64_t Sum = 0;
        for (const auto &CP : Seen)
          Sum += CP->StepCount + CP->Frames.size();
        (void)Sum;
        (void)Shared.diskIndicesFor(S.Hash, S.Prog.get(), kMaxSteps);
      }
    });
  for (auto &T : Threads)
    T.join();

  // Duplicate promotions were refused: exactly one copy of each snapshot.
  EXPECT_EQ(Shared.count(), N);
  EXPECT_TRUE(sameSnapshots(
      S.Snaps, Shared.snapshotsFor(S.Hash, S.Prog.get(), kMaxSteps)));
  EXPECT_EQ(Shared.diskIndicesFor(S.Hash, S.Prog.get(), kMaxSteps).size(), N);
}

// The committed golden fixture: the version-1 bytes written by the
// serializer at the time the format was frozen. The current loader must
// read it, and the current serializer must still produce it byte for
// byte -- any drift is a format change and needs a version bump plus a
// regenerated fixture (run with EOE_REGEN_GOLDEN=1 to regenerate).
TEST(CheckpointDiskTest, GoldenFixtureStillLoads) {
  Subject S = makeSharedSubject();
  ASSERT_TRUE(S.Prog);
  ASSERT_FALSE(S.Snaps.empty());
  std::string Bytes = serializeCheckpoints(S.Snaps, *S.Prog, S.Hash, kMaxSteps);

  fs::path Fixture =
      fs::path(EOE_GOLDEN_DIR) /
      CheckpointDiskStore::fileNameFor(S.Hash, kMaxSteps);
  if (std::getenv("EOE_REGEN_GOLDEN")) {
    fs::create_directories(Fixture.parent_path());
    writeFile(Fixture, Bytes);
    GTEST_SKIP() << "regenerated " << Fixture;
  }
  ASSERT_TRUE(fs::exists(Fixture))
      << Fixture << " missing; run with EOE_REGEN_GOLDEN=1 to create it";

  std::string Golden = readFile(Fixture);
  std::string Err;
  auto Back = deserializeCheckpoints(Golden, *S.Prog, S.Hash, kMaxSteps, &Err);
  ASSERT_TRUE(Back) << "golden fixture no longer loads: " << Err;
  EXPECT_TRUE(sameSnapshots(S.Snaps, *Back))
      << "golden fixture decodes to different state";
  EXPECT_EQ(Golden, Bytes)
      << "serializer output drifted from the committed version-1 fixture; "
         "bump CheckpointDiskVersion and regenerate";
}

// sweep() in a crowded directory: only our two file patterns are ever
// candidates, stale writer temps go first, then cache files leave
// oldest-mtime-first until the survivors fit the cap. Foreign files --
// the rest of a busy temp dir -- are never touched.
TEST(CheckpointDiskTest, SweepCapsACrowdedDirectory) {
  fs::path Dir = freshDir("eoe_sweep_crowded");
  auto Touch = [&](const char *Name, size_t Bytes, int AgeHours) {
    fs::path P = Dir / Name;
    writeFile(P, std::string(Bytes, 'x'));
    fs::last_write_time(P, fs::file_time_type::clock::now() -
                               std::chrono::hours(AgeHours));
    return P;
  };

  // Three cache files, oldest first; 3 KiB total.
  fs::path Oldest = Touch("ckpt-000000000000000a-100.eoeckpt", 1024, 30);
  fs::path Middle = Touch("ckpt-000000000000000b-100.eoeckpt", 1024, 20);
  fs::path Newest = Touch("ckpt-000000000000000c-100.eoeckpt", 1024, 10);
  // Writer temps: one stale (crashed writer debris), one fresh (a live
  // writer mid-save -- the rename discipline says hands off).
  fs::path StaleTmp =
      Touch("ckpt-000000000000000d-100.eoeckpt.tmp", 512, 48);
  fs::path FreshTmp = Touch("ckpt-000000000000000e-100.eoeckpt.tmp", 512, 0);
  // Foreign neighbors a crowded temp dir would hold.
  fs::path Foreign1 = Touch("unrelated.txt", 64, 99);
  fs::path Foreign2 = Touch("ckpt-not-ours.dat", 64, 99);
  fs::path Foreign3 = Touch("other.eoeckpt.bak", 64, 99);

  support::StatsRegistry Stats;
  CheckpointDiskStore Store(Dir.string());
  // Cap at 2 KiB: the stale temp and the oldest cache file must go.
  CheckpointDiskStore::SweepResult R =
      Store.sweep(2048, std::chrono::hours(1), &Stats);

  EXPECT_EQ(R.Files, 2u);
  EXPECT_EQ(R.Bytes, 1024u + 512u);
  EXPECT_FALSE(fs::exists(Oldest));
  EXPECT_FALSE(fs::exists(StaleTmp));
  EXPECT_TRUE(fs::exists(Middle));
  EXPECT_TRUE(fs::exists(Newest));
  EXPECT_TRUE(fs::exists(FreshTmp));
  EXPECT_TRUE(fs::exists(Foreign1));
  EXPECT_TRUE(fs::exists(Foreign2));
  EXPECT_TRUE(fs::exists(Foreign3));
  EXPECT_EQ(Stats.counter("verify.ckpt.disk_sweep_files").get(), 2u);
  EXPECT_EQ(Stats.counter("verify.ckpt.disk_sweep_bytes").get(), 1536u);

  // Under the cap already: a second sweep is a no-op.
  CheckpointDiskStore::SweepResult R2 = Store.sweep(2048);
  EXPECT_EQ(R2.Files, 0u);
  EXPECT_TRUE(fs::exists(Middle));
  EXPECT_TRUE(fs::exists(Newest));

  // Cap 0 evicts every cache file but still spares fresh temps and
  // foreign files.
  CheckpointDiskStore::SweepResult R3 = Store.sweep(0);
  EXPECT_EQ(R3.Files, 2u);
  EXPECT_FALSE(fs::exists(Middle));
  EXPECT_FALSE(fs::exists(Newest));
  EXPECT_TRUE(fs::exists(FreshTmp));
  EXPECT_TRUE(fs::exists(Foreign1));

  // A directory that does not exist sweeps to nothing, not an error.
  CheckpointDiskStore Missing((Dir / "nope").string());
  CheckpointDiskStore::SweepResult R4 = Missing.sweep(0);
  EXPECT_EQ(R4.Files, 0u);
  EXPECT_EQ(R4.Bytes, 0u);
}

} // namespace
