//===-- tests/RandomProgram.h - Forwarder to the library generator -------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// The generator graduated from test helper to library component
// (src/gen/RandomProgram.h) so the eoe-fuzz tool can use it; tests keep
// their original spelling via this alias.
//
//===----------------------------------------------------------------------===//

#ifndef EOE_TESTS_RANDOMPROGRAM_FWD_H
#define EOE_TESTS_RANDOMPROGRAM_FWD_H

#include "gen/RandomProgram.h"

namespace eoe {
namespace test {
using RandomProgramGenerator = ::eoe::gen::RandomProgramGenerator;
} // namespace test
} // namespace eoe

#endif // EOE_TESTS_RANDOMPROGRAM_FWD_H
