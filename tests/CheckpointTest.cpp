//===-- tests/CheckpointTest.cpp - Checkpointed re-execution -------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// The checkpointing subsystem's contract (docs/checkpointing.md): a
// switched run resumed from any dominating snapshot is *byte-identical*
// to the full-replay switched run -- same step records (and therefore
// the same dependence edges), same outputs, same exit reason, same
// switch point. Exercised both at the interpreter API level over random
// omission programs and end-to-end through locateFault, plus a TSan'd
// concurrent-restore stress (snapshots are shared read-only across
// verifier threads).
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"
#include "lang/Parser.h"
#include "RandomProgram.h"
#include "support/Diagnostic.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

using namespace eoe;
using namespace eoe::interp;
using namespace eoe::test;

namespace {

constexpr uint64_t kBudget = 2'000'000;

/// All predicate instances of \p T, in trace order.
std::vector<TraceIdx> predicateInstances(const ExecutionTrace &T) {
  std::vector<TraceIdx> Preds;
  for (TraceIdx I = 0; I < T.size(); ++I)
    if (T.step(I).isPredicateInstance())
      Preds.push_back(I);
  return Preds;
}

/// EXPECTs byte-identity of a resumed switched run against its
/// full-replay reference.
void expectSameTrace(const ExecutionTrace &Full, const ExecutionTrace &Resumed,
                     uint64_t Seed, TraceIdx P) {
  EXPECT_EQ(Full.Exit, Resumed.Exit) << "seed " << Seed << " pred " << P;
  EXPECT_EQ(Full.ExitValue, Resumed.ExitValue)
      << "seed " << Seed << " pred " << P;
  EXPECT_EQ(Full.SwitchedStep, Resumed.SwitchedStep)
      << "seed " << Seed << " pred " << P;
  EXPECT_EQ(Full.FirstInputStep, Resumed.FirstInputStep)
      << "seed " << Seed << " pred " << P;
  EXPECT_EQ(Full.Outputs, Resumed.Outputs) << "seed " << Seed << " pred " << P;
  // Step records carry the Uses/Defs lists, so equality here covers the
  // dependence edges the verifier derives from the switched run.
  ASSERT_EQ(Full.Steps.size(), Resumed.Steps.size())
      << "seed " << Seed << " pred " << P;
  for (TraceIdx I = 0; I < Full.Steps.size(); ++I)
    ASSERT_EQ(Full.Steps[I], Resumed.Steps[I])
        << "seed " << Seed << " pred " << P << " step " << I;
}

class CheckpointEquivalence : public ::testing::TestWithParam<uint64_t> {};

// The core property, at the raw interpreter API level: for every
// predicate instance with a dominating snapshot, resume == full replay,
// byte for byte.
TEST_P(CheckpointEquivalence, ResumedSwitchedRunsAreBitIdentical) {
  RandomProgramGenerator Gen(GetParam());
  auto Variant = Gen.generateOmission();
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Variant.FaultySource, Diags);
  ASSERT_TRUE(Prog) << Diags.str();
  analysis::StaticAnalysis SA(*Prog);
  Interpreter Interp(*Prog, SA);

  ExecutionTrace E = Interp.run(Variant.Input);
  ASSERT_EQ(E.Exit, ExitReason::Finished);
  std::vector<TraceIdx> Preds = predicateInstances(E);
  if (Preds.empty())
    GTEST_SKIP() << "no predicate instances";

  // Snapshot every 3rd predicate instance so nearest() has gaps to
  // bridge, like a strided collection pass would leave.
  CheckpointStore Store(64ull << 20);
  CheckpointPlan Plan;
  Plan.Store = &Store;
  for (size_t I = 0; I < Preds.size(); I += 3)
    Plan.Sites.push_back(Preds[I]);

  Interpreter::Options CollectOpts;
  CollectOpts.MaxSteps = kBudget;
  CollectOpts.Checkpoints = &Plan;
  ExecutionTrace Recollected = Interp.run(Variant.Input, CollectOpts);
  // Instrumentation must not perturb the execution...
  ASSERT_EQ(Recollected.Steps.size(), E.Steps.size());
  // ...and every site is either snapshotted or skipped as dirty (all
  // sites come from the trace, so all are reached).
  EXPECT_EQ(Plan.Collected + Plan.SkippedDirty, Plan.Sites.size());

  size_t Resumed = 0;
  ExecContext Ctx;
  for (size_t N = 0; N < Preds.size(); ++N) {
    TraceIdx P = Preds[N];
    std::shared_ptr<const Checkpoint> CP = Store.nearest(P);
    if (!CP)
      continue;
    ASSERT_LE(CP->Index, P);
    const StepRecord &Step = E.step(P);
    SwitchSpec Spec{Step.Stmt, Step.InstanceNo};
    ExecutionTrace Full = Interp.runSwitched(Variant.Input, Spec, kBudget);

    Interpreter::Options ResumeOpts;
    ResumeOpts.MaxSteps = kBudget;
    ResumeOpts.Switch = Spec;
    ExecutionTrace FromCkpt =
        Interp.runFrom(*CP, E, Variant.Input, ResumeOpts, Ctx);
    expectSameTrace(Full, FromCkpt, GetParam(), P);
    ++Resumed;
  }
  if (Plan.Collected > 0)
    EXPECT_GT(Resumed, 0u) << "snapshots exist but none was exercised";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointEquivalence,
                         ::testing::Range<uint64_t>(300, 312));

// Calls in compound expressions (here: an addition of two call results)
// are dirty sites -- mid-expression evaluator state cannot be
// checkpointed -- so snapshot requests inside them must be skipped and
// counted, never mis-captured.
TEST(CheckpointTest, DirtyCallSitesAreSkipped) {
  const char *Src = "fn helper(n) {\n"          // 1
                    "  var r = 0;\n"            // 2
                    "  if (n > 2) {\n"          // 3
                    "    r = n * 2;\n"          // 4
                    "  }\n"                     // 5
                    "  return r + 1;\n"         // 6
                    "}\n"                       // 7
                    "fn main() {\n"             // 8
                    "  var i = 0;\n"            // 9
                    "  var acc = 0;\n"          // 10
                    "  while (i < 6) {\n"       // 11
                    "    acc = acc + helper(i) + helper(i + 1);\n" // 12
                    "    i = i + 1;\n"          // 13
                    "  }\n"                     // 14
                    "  print(acc);\n"           // 15
                    "}\n";                      // 16
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace E = S.run();
  ASSERT_EQ(E.Exit, ExitReason::Finished);

  // Request a snapshot at every "if (n > 2)" instance: each one executes
  // while a dirty call (line 12's compound expression) is active.
  StmtId InnerIf = S.stmtAtLine(3);
  CheckpointStore Store(64ull << 20);
  CheckpointPlan Plan;
  Plan.Store = &Store;
  for (TraceIdx I = 0; I < E.size(); ++I)
    if (E.step(I).Stmt == InnerIf)
      Plan.Sites.push_back(I);
  ASSERT_FALSE(Plan.Sites.empty());

  Interpreter::Options Opts;
  Opts.MaxSteps = kBudget;
  Opts.Checkpoints = &Plan;
  ExecutionTrace Recollected = S.Interp->run({}, Opts);
  EXPECT_EQ(Recollected.Steps.size(), E.Steps.size());
  EXPECT_EQ(Plan.Collected, 0u);
  EXPECT_EQ(Plan.SkippedDirty, Plan.Sites.size());
  EXPECT_EQ(Store.count(), 0u);

  // The while condition (line 11) runs between statements: a clean site.
  CheckpointPlan CleanPlan;
  CleanPlan.Store = &Store;
  StmtId Loop = S.stmtAtLine(11);
  for (TraceIdx I = 0; I < E.size(); ++I)
    if (E.step(I).Stmt == Loop)
      CleanPlan.Sites.push_back(I);
  ASSERT_FALSE(CleanPlan.Sites.empty());
  Opts.Checkpoints = &CleanPlan;
  S.Interp->run({}, Opts);
  EXPECT_EQ(CleanPlan.Collected, CleanPlan.Sites.size());
  EXPECT_EQ(CleanPlan.SkippedDirty, 0u);

  // And those snapshots resume bit-identically across the dirty calls.
  ExecContext Ctx;
  for (TraceIdx P : CleanPlan.Sites) {
    std::shared_ptr<const Checkpoint> CP = Store.nearest(P);
    ASSERT_TRUE(CP);
    const StepRecord &Step = E.step(P);
    SwitchSpec Spec{Step.Stmt, Step.InstanceNo};
    ExecutionTrace Full = S.Interp->runSwitched({}, Spec, kBudget);
    Interpreter::Options ResumeOpts;
    ResumeOpts.MaxSteps = kBudget;
    ResumeOpts.Switch = Spec;
    ExecutionTrace FromCkpt = S.Interp->runFrom(*CP, E, {}, ResumeOpts, Ctx);
    expectSameTrace(Full, FromCkpt, 0, P);
  }
}

// The LRU budget: a store too small for everything keeps the most
// recently touched snapshots and reports evictions; nearest() degrades
// to earlier snapshots or a miss, never to a wrong one.
TEST(CheckpointTest, StoreEvictsUnderMemoryPressure) {
  RandomProgramGenerator Gen(301);
  auto Variant = Gen.generateOmission();
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Variant.FaultySource, Diags);
  ASSERT_TRUE(Prog) << Diags.str();
  analysis::StaticAnalysis SA(*Prog);
  Interpreter Interp(*Prog, SA);
  ExecutionTrace E = Interp.run(Variant.Input);
  std::vector<TraceIdx> Preds = predicateInstances(E);
  if (Preds.size() < 4)
    GTEST_SKIP() << "not enough predicate instances";

  // First find out how big one snapshot is, then budget for ~2.
  CheckpointStore Probe(1ull << 30);
  CheckpointPlan ProbePlan;
  ProbePlan.Store = &Probe;
  ProbePlan.Sites = Preds;
  Interpreter::Options Opts;
  Opts.MaxSteps = kBudget;
  Opts.Checkpoints = &ProbePlan;
  Interp.run(Variant.Input, Opts);
  if (ProbePlan.Collected < 4)
    GTEST_SKIP() << "too few clean sites";
  size_t PerSnapshot = Probe.bytes() / Probe.count();

  CheckpointStore Tight(2 * PerSnapshot + PerSnapshot / 2);
  CheckpointPlan TightPlan;
  TightPlan.Store = &Tight;
  TightPlan.Sites = Preds;
  Opts.Checkpoints = &TightPlan;
  Interp.run(Variant.Input, Opts);
  EXPECT_GT(Tight.evictions(), 0u);
  EXPECT_LT(Tight.count(), ProbePlan.Collected);
  EXPECT_LE(Tight.bytes(), 2 * PerSnapshot + PerSnapshot / 2);
  // Whatever survived still resumes correctly.
  ExecContext Ctx;
  TraceIdx Last = Preds.back();
  std::shared_ptr<const Checkpoint> CP = Tight.nearest(Last);
  ASSERT_TRUE(CP);
  const StepRecord &Step = E.step(Last);
  SwitchSpec Spec{Step.Stmt, Step.InstanceNo};
  ExecutionTrace Full = Interp.runSwitched(Variant.Input, Spec, kBudget);
  Interpreter::Options ResumeOpts;
  ResumeOpts.MaxSteps = kBudget;
  ResumeOpts.Switch = Spec;
  ExecutionTrace FromCkpt =
      Interp.runFrom(*CP, E, Variant.Input, ResumeOpts, Ctx);
  expectSameTrace(Full, FromCkpt, 301, Last);
}

class RootOnlyOracle : public slicing::Oracle {
public:
  explicit RootOnlyOracle(StmtId Root) : Root(Root) {}
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
};

struct LocateOutcome {
  core::LocateReport Report;
  std::vector<ddg::DepGraph::ImplicitEdge> Edges;
};

std::optional<LocateOutcome> locateVariant(const lang::Program &Faulty,
                                           const std::vector<int64_t> &Input,
                                           const std::vector<int64_t> &Expected,
                                           StmtId Root, unsigned Threads,
                                           unsigned Checkpoints,
                                           SharedCheckpointStore *Shared = nullptr,
                                           support::StatsRegistry *Stats = nullptr) {
  core::DebugSession::Config C;
  C.Threads = Threads;
  C.Locate.Checkpoints = Checkpoints;
  C.SharedCheckpoints = Shared;
  C.Stats = Stats;
  core::DebugSession Session(Faulty, Input, Expected, {}, C);
  if (!Session.hasFailure())
    return std::nullopt;
  RootOnlyOracle Oracle(Root);
  LocateOutcome O;
  O.Report = Session.locate(Oracle);
  O.Edges = Session.graph().implicitEdges();
  return O;
}

/// EXPECTs that a checkpointed locate run matches the full-replay
/// reference outcome field by field, including the implicit edges.
void expectSameOutcome(const LocateOutcome &Reference,
                       const LocateOutcome &Ckpt, uint64_t Seed,
                       unsigned Threads) {
  EXPECT_EQ(Reference.Report.RootCauseFound, Ckpt.Report.RootCauseFound)
      << "seed " << Seed << " threads " << Threads;
  EXPECT_EQ(Reference.Report.Verifications, Ckpt.Report.Verifications)
      << "seed " << Seed << " threads " << Threads;
  EXPECT_EQ(Reference.Report.Iterations, Ckpt.Report.Iterations)
      << "seed " << Seed << " threads " << Threads;
  EXPECT_EQ(Reference.Report.ExpandedEdges, Ckpt.Report.ExpandedEdges)
      << "seed " << Seed << " threads " << Threads;
  EXPECT_EQ(Reference.Report.StrongEdges, Ckpt.Report.StrongEdges)
      << "seed " << Seed << " threads " << Threads;
  EXPECT_EQ(Reference.Report.FinalPrunedSlice, Ckpt.Report.FinalPrunedSlice)
      << "seed " << Seed << " threads " << Threads;
  ASSERT_EQ(Reference.Edges.size(), Ckpt.Edges.size())
      << "seed " << Seed << " threads " << Threads;
  for (size_t I = 0; I < Reference.Edges.size(); ++I) {
    EXPECT_EQ(Reference.Edges[I].Use, Ckpt.Edges[I].Use);
    EXPECT_EQ(Reference.Edges[I].Pred, Ckpt.Edges[I].Pred);
    EXPECT_EQ(Reference.Edges[I].Strong, Ckpt.Edges[I].Strong);
  }
}

// End to end: locateFault with checkpointing produces the same report
// and the same implicit edges as full replay, serial and parallel.
TEST(CheckpointTest, LocateIsIdenticalWithAndWithoutCheckpoints) {
  int Checked = 0;
  for (uint64_t Seed : {100, 101, 102, 103, 104, 105}) {
    RandomProgramGenerator Gen(Seed);
    auto Variant = Gen.generateOmission();
    DiagnosticEngine Diags;
    auto Fixed = lang::parseAndCheck(Variant.FixedSource, Diags);
    auto Faulty = lang::parseAndCheck(Variant.FaultySource, Diags);
    ASSERT_TRUE(Fixed && Faulty) << Diags.str();
    analysis::StaticAnalysis FixedSA(*Fixed);
    Interpreter FixedInterp(*Fixed, FixedSA);
    ExecutionTrace FixedRun = FixedInterp.run(Variant.Input);
    ASSERT_EQ(FixedRun.Exit, ExitReason::Finished);
    std::vector<int64_t> Expected = FixedRun.outputValues();
    StmtId Root = Faulty->statementAtLine(Variant.RootCauseLine);
    ASSERT_TRUE(isValidId(Root));

    std::optional<LocateOutcome> Reference = locateVariant(
        *Faulty, Variant.Input, Expected, Root, 1, CheckpointsOff);
    if (!Reference)
      continue; // Masked fault.
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      // Fixed stride, the PR-5 configuration.
      std::optional<LocateOutcome> Ckpt = locateVariant(
          *Faulty, Variant.Input, Expected, Root, Threads, /*Checkpoints=*/1);
      ASSERT_TRUE(Ckpt);
      expectSameOutcome(*Reference, *Ckpt, Seed, Threads);

      // Auto stride + delta encoding + cross-session sharing: run twice
      // against one shared store so the second session resumes from
      // seeded input-independent snapshots (the warm path).
      SharedCheckpointStore Shared;
      for (int Round = 0; Round < 2; ++Round) {
        std::optional<LocateOutcome> Auto =
            locateVariant(*Faulty, Variant.Input, Expected, Root, Threads,
                          CheckpointStrideAuto, &Shared);
        ASSERT_TRUE(Auto);
        expectSameOutcome(*Reference, *Auto, Seed, Threads);
      }
    }
    ++Checked;
  }
  ASSERT_GT(Checked, 0) << "every probe seed was masked";
}

// Snapshots are shared immutably across verifier threads; hammer one
// store from a pool and diff every resumed trace against serial full
// replay (the TSan job runs this via the parallel label).
TEST(CheckpointTest, ConcurrentRestoresAreRaceFreeAndIdentical) {
  RandomProgramGenerator Gen(305);
  auto Variant = Gen.generateOmission();
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Variant.FaultySource, Diags);
  ASSERT_TRUE(Prog) << Diags.str();
  analysis::StaticAnalysis SA(*Prog);
  Interpreter Interp(*Prog, SA);
  ExecutionTrace E = Interp.run(Variant.Input);
  std::vector<TraceIdx> Preds = predicateInstances(E);
  if (Preds.empty())
    GTEST_SKIP() << "no predicate instances";

  CheckpointStore Store(256ull << 20);
  CheckpointPlan Plan;
  Plan.Store = &Store;
  Plan.Sites = Preds;
  Interpreter::Options Opts;
  Opts.MaxSteps = kBudget;
  Opts.Checkpoints = &Plan;
  Interp.run(Variant.Input, Opts);
  if (Plan.Collected == 0)
    GTEST_SKIP() << "every site was dirty";

  // Serial references first.
  std::vector<ExecutionTrace> Full(Preds.size());
  for (size_t N = 0; N < Preds.size(); ++N) {
    const StepRecord &Step = E.step(Preds[N]);
    Full[N] = Interp.runSwitched(Variant.Input,
                                 {Step.Stmt, Step.InstanceNo}, kBudget);
  }

  support::ThreadPool Pool(8);
  std::vector<std::function<void()>> Tasks;
  std::atomic<size_t> Restores{0};
  for (size_t N = 0; N < Preds.size(); ++N)
    Tasks.push_back([&, N] {
      TraceIdx P = Preds[N];
      std::shared_ptr<const Checkpoint> CP = Store.nearest(P);
      if (!CP)
        return;
      const StepRecord &Step = E.step(P);
      Interpreter::Options ResumeOpts;
      ResumeOpts.MaxSteps = kBudget;
      ResumeOpts.Switch = SwitchSpec{Step.Stmt, Step.InstanceNo};
      ExecContext Ctx;
      ExecutionTrace FromCkpt =
          Interp.runFrom(*CP, E, Variant.Input, ResumeOpts, Ctx);
      expectSameTrace(Full[N], FromCkpt, 305, P);
      Restores.fetch_add(1, std::memory_order_relaxed);
    });
  Pool.runAll(std::move(Tasks));
  EXPECT_GT(Restores.load(), 0u);
}

// The delta round-trip property: a store that delta-encodes must hand
// back, for every lookup, exactly the checkpoint a plain store hands
// back -- full state equality via Checkpoint::operator== -- while the
// budget is charged fewer (encoded) bytes.
TEST(CheckpointTest, DeltaEncodedSnapshotsRoundTripBitIdentical) {
  size_t DeltasSeen = 0, Compared = 0;
  for (uint64_t Seed = 300; Seed < 312; ++Seed) {
    RandomProgramGenerator Gen(Seed);
    auto Variant = Gen.generateOmission();
    DiagnosticEngine Diags;
    auto Prog = lang::parseAndCheck(Variant.FaultySource, Diags);
    ASSERT_TRUE(Prog) << Diags.str();
    analysis::StaticAnalysis SA(*Prog);
    Interpreter Interp(*Prog, SA);
    ExecutionTrace E = Interp.run(Variant.Input);
    std::vector<TraceIdx> Preds = predicateInstances(E);
    if (Preds.empty())
      continue;

    CheckpointStore Plain(1ull << 30);
    CheckpointPlan PlainPlan;
    PlainPlan.Store = &Plain;
    PlainPlan.Sites = Preds;
    Interpreter::Options Opts;
    Opts.MaxSteps = kBudget;
    Opts.Checkpoints = &PlainPlan;
    Interp.run(Variant.Input, Opts);

    CheckpointStore::Options DeltaOpts;
    DeltaOpts.BudgetBytes = 1ull << 30;
    DeltaOpts.DeltaEncode = true;
    DeltaOpts.KeyframeInterval = 4; // Short chains, many segments.
    CheckpointStore Delta(DeltaOpts);
    CheckpointPlan DeltaPlan;
    DeltaPlan.Store = &Delta;
    DeltaPlan.Sites = Preds;
    Opts.Checkpoints = &DeltaPlan;
    Interp.run(Variant.Input, Opts);

    // Collection is deterministic, so both stores saw identical snapshots.
    ASSERT_EQ(PlainPlan.Collected, DeltaPlan.Collected) << "seed " << Seed;
    ASSERT_EQ(Plain.count(), Delta.count()) << "seed " << Seed;
    EXPECT_EQ(Delta.rawBytes(), Plain.bytes()) << "seed " << Seed;
    EXPECT_LE(Delta.encodedBytes(), Delta.rawBytes()) << "seed " << Seed;
    if (Delta.deltaCount() > 0)
      EXPECT_LT(Delta.encodedBytes(), Delta.rawBytes()) << "seed " << Seed;
    DeltasSeen += Delta.deltaCount();

    for (TraceIdx P : Preds) {
      std::shared_ptr<const Checkpoint> Want = Plain.nearest(P);
      std::shared_ptr<const Checkpoint> Got = Delta.nearest(P);
      ASSERT_EQ(static_cast<bool>(Want), static_cast<bool>(Got))
          << "seed " << Seed << " pred " << P;
      if (!Want)
        continue;
      EXPECT_TRUE(*Want == *Got) << "seed " << Seed << " pred " << P;
      ++Compared;
    }

    // A decoded delta entry is also a usable resume point.
    if (std::shared_ptr<const Checkpoint> CP = Delta.nearest(Preds.back())) {
      const StepRecord &Step = E.step(Preds.back());
      SwitchSpec Spec{Step.Stmt, Step.InstanceNo};
      ExecutionTrace Full = Interp.runSwitched(Variant.Input, Spec, kBudget);
      Interpreter::Options ResumeOpts;
      ResumeOpts.MaxSteps = kBudget;
      ResumeOpts.Switch = Spec;
      ExecContext Ctx;
      ExecutionTrace FromCkpt =
          Interp.runFrom(*CP, E, Variant.Input, ResumeOpts, Ctx);
      expectSameTrace(Full, FromCkpt, Seed, Preds.back());
    }
  }
  EXPECT_GT(DeltasSeen, 0u) << "no seed produced a delta-encoded snapshot";
  EXPECT_GT(Compared, 0u);
}

// With delta encoding on, the LRU budget is charged with *encoded*
// bytes: under the same tight budget the delta store retains at least as
// many snapshots as the raw store, evicts whole segments, and every
// survivor still resumes bit-identically.
TEST(CheckpointTest, DeltaStoreEvictsByEncodedBytes) {
  for (uint64_t Seed : {301, 303, 305, 307, 309}) {
    RandomProgramGenerator Gen(Seed);
    auto Variant = Gen.generateOmission();
    DiagnosticEngine Diags;
    auto Prog = lang::parseAndCheck(Variant.FaultySource, Diags);
    ASSERT_TRUE(Prog) << Diags.str();
    analysis::StaticAnalysis SA(*Prog);
    Interpreter Interp(*Prog, SA);
    ExecutionTrace E = Interp.run(Variant.Input);
    std::vector<TraceIdx> Preds = predicateInstances(E);

    // Probe with everything retained to learn the encoded footprint.
    CheckpointStore::Options ProbeOpts;
    ProbeOpts.BudgetBytes = 1ull << 30;
    ProbeOpts.DeltaEncode = true;
    CheckpointStore Probe(ProbeOpts);
    CheckpointPlan ProbePlan;
    ProbePlan.Store = &Probe;
    ProbePlan.Sites = Preds;
    Interpreter::Options Opts;
    Opts.MaxSteps = kBudget;
    Opts.Checkpoints = &ProbePlan;
    Interp.run(Variant.Input, Opts);
    // Need enough material for several segments under pressure.
    if (ProbePlan.Collected < 12 || Probe.keyframes() < 3 ||
        Probe.deltaCount() == 0)
      continue;
    size_t TightBudget = Probe.bytes() / 2;

    CheckpointStore::Options TightOpts;
    TightOpts.BudgetBytes = TightBudget;
    TightOpts.DeltaEncode = true;
    CheckpointStore Tight(TightOpts);
    CheckpointPlan TightPlan;
    TightPlan.Store = &Tight;
    TightPlan.Sites = Preds;
    Opts.Checkpoints = &TightPlan;
    Interp.run(Variant.Input, Opts);
    EXPECT_GT(Tight.evictions(), 0u) << "seed " << Seed;
    EXPECT_LE(Tight.bytes(), TightBudget) << "seed " << Seed;
    EXPECT_GE(Tight.rawBytes(), Tight.bytes()) << "seed " << Seed;
    EXPECT_LT(Tight.count(), TightPlan.Collected) << "seed " << Seed;

    // Same byte budget charged with raw bytes retains no more snapshots
    // than encoded accounting does.
    CheckpointStore RawTight(TightBudget);
    CheckpointPlan RawPlan;
    RawPlan.Store = &RawTight;
    RawPlan.Sites = Preds;
    Opts.Checkpoints = &RawPlan;
    Interp.run(Variant.Input, Opts);
    EXPECT_GE(Tight.count(), RawTight.count()) << "seed " << Seed;

    // Whatever survived still resumes correctly.
    TraceIdx Last = Preds.back();
    std::shared_ptr<const Checkpoint> CP = Tight.nearest(Last);
    ASSERT_TRUE(CP) << "seed " << Seed;
    const StepRecord &Step = E.step(Last);
    SwitchSpec Spec{Step.Stmt, Step.InstanceNo};
    ExecutionTrace Full = Interp.runSwitched(Variant.Input, Spec, kBudget);
    Interpreter::Options ResumeOpts;
    ResumeOpts.MaxSteps = kBudget;
    ResumeOpts.Switch = Spec;
    ExecContext Ctx;
    ExecutionTrace FromCkpt =
        Interp.runFrom(*CP, E, Variant.Input, ResumeOpts, Ctx);
    expectSameTrace(Full, FromCkpt, Seed, Last);
    return; // One qualifying seed is enough.
  }
  GTEST_SKIP() << "no probe seed produced enough delta segments";
}

// A program whose long prefix reads no input: snapshots promoted while
// running input A are valid resume points on entirely different inputs.
constexpr const char *kSharedPrefixSrc =
    "fn main() {\n"                 // 1
    "  var i = 0;\n"                // 2
    "  var acc = 0;\n"              // 3
    "  while (i < 40) {\n"          // 4
    "    if (i % 3 > 0) {\n"        // 5
    "      acc = acc + 2;\n"        // 6
    "    }\n"                       // 7
    "    i = i + 1;\n"              // 8
    "  }\n"                         // 9
    "  var x = input();\n"          // 10
    "  var flag = 0;\n"             // 11
    "  if (flag > 0) {\n"           // 12
    "    acc = acc + 100;\n"        // 13
    "  }\n"                         // 14
    "  print(acc + x);\n"           // 15
    "}\n";                          // 16

TEST(CheckpointTest, SharedSnapshotsResumeAcrossInputs) {
  Session S(kSharedPrefixSrc);
  ASSERT_TRUE(S.valid());

  std::vector<int64_t> InputA{7};
  ExecutionTrace EA = S.Interp->run(InputA);
  ASSERT_EQ(EA.Exit, ExitReason::Finished);
  ASSERT_NE(EA.FirstInputStep, InvalidId);

  CheckpointStore Store(64ull << 20);
  SharedCheckpointStore Shared;
  CheckpointPlan Plan;
  Plan.Store = &Store;
  Plan.Sites = predicateInstances(EA);
  Plan.Share = &Shared;
  Plan.ShareHash = SharedCheckpointStore::hashProgram(*S.Prog);
  Plan.ShareProgram = S.Prog.get();
  Plan.ShareMaxSteps = kBudget;
  Interpreter::Options Opts;
  Opts.MaxSteps = kBudget;
  Opts.Checkpoints = &Plan;
  S.Interp->run(InputA, Opts);
  ASSERT_GT(Plan.Promoted, 0u);
  EXPECT_EQ(Shared.count(), Plan.Promoted);

  // Everything promoted precedes the first input() read.
  std::vector<std::shared_ptr<const Checkpoint>> Snaps =
      Shared.snapshotsFor(Plan.ShareHash, Plan.ShareProgram, kBudget);
  ASSERT_EQ(Snaps.size(), Shared.count());
  for (const auto &CP : Snaps) {
    EXPECT_TRUE(CP->InputIndependent);
    EXPECT_LT(CP->Index, EA.FirstInputStep);
  }
  // A different validity key sees nothing.
  EXPECT_TRUE(Shared.snapshotsFor(Plan.ShareHash, S.Prog.get(), kBudget + 1)
                  .empty());

  StmtId FlagIf = S.stmtAtLine(12);
  for (const std::vector<int64_t> &In :
       {std::vector<int64_t>{11}, std::vector<int64_t>{-3},
        std::vector<int64_t>{0}}) {
    ExecutionTrace EB = S.Interp->run(In);
    ASSERT_EQ(EB.Exit, ExitReason::Finished);
    // Identical pre-input prefix: the watermark lands on the same step.
    ASSERT_EQ(EB.FirstInputStep, EA.FirstInputStep);

    // Switch the post-input predicate and resume from every shared
    // snapshot, each taken while running a *different* input.
    TraceIdx SwitchAt = InvalidId;
    for (TraceIdx I = 0; I < EB.size(); ++I)
      if (EB.step(I).Stmt == FlagIf)
        SwitchAt = I;
    ASSERT_NE(SwitchAt, InvalidId);
    const StepRecord &Step = EB.step(SwitchAt);
    SwitchSpec Spec{Step.Stmt, Step.InstanceNo};
    ExecutionTrace Full = S.Interp->runSwitched(In, Spec, kBudget);
    ExecContext Ctx;
    for (const auto &CP : Snaps) {
      Interpreter::Options ResumeOpts;
      ResumeOpts.MaxSteps = kBudget;
      ResumeOpts.Switch = Spec;
      ExecutionTrace FromCkpt =
          S.Interp->runFrom(*CP, EB, In, ResumeOpts, Ctx);
      expectSameTrace(Full, FromCkpt, 0, SwitchAt);
    }
  }
}

// End to end: verifier sessions over the same program on *different*
// failing inputs reuse shared snapshots -- the first session seeds the
// store, later sessions resume from the seeded entries (counted by
// verify.ckpt.shared_hits) -- and every session's locate outcome stays
// identical to full replay.
TEST(CheckpointTest, VerifierSessionsReuseSharedSnapshots) {
  constexpr const char *FixedSrc =
      "fn main() {\n"                 // 1
      "  var i = 0;\n"                // 2
      "  var acc = 0;\n"              // 3
      "  while (i < 40) {\n"          // 4
      "    if (i % 3 > 0) {\n"        // 5
      "      acc = acc + 2;\n"        // 6
      "    }\n"                       // 7
      "    i = i + 1;\n"              // 8
      "  }\n"                         // 9
      "  var x = input();\n"          // 10
      "  var flag = 1;\n"             // 11
      "  if (flag > 0) {\n"           // 12
      "    acc = acc + 100;\n"        // 13
      "  }\n"                         // 14
      "  print(acc + x);\n"           // 15
      "}\n";                          // 16
  DiagnosticEngine Diags;
  auto Faulty = lang::parseAndCheck(kSharedPrefixSrc, Diags);
  auto Fixed = lang::parseAndCheck(FixedSrc, Diags);
  ASSERT_TRUE(Faulty && Fixed) << Diags.str();
  StmtId Root = Faulty->statementAtLine(11);
  ASSERT_TRUE(isValidId(Root));
  analysis::StaticAnalysis FixedSA(*Fixed);
  Interpreter FixedInterp(*Fixed, FixedSA);

  SharedCheckpointStore Shared;
  int SessionNo = 0;
  for (const std::vector<int64_t> &In :
       {std::vector<int64_t>{7}, std::vector<int64_t>{11},
        std::vector<int64_t>{-3}}) {
    std::vector<int64_t> Expected = FixedInterp.run(In).outputValues();
    std::optional<LocateOutcome> Reference =
        locateVariant(*Faulty, In, Expected, Root, 1, CheckpointsOff);
    ASSERT_TRUE(Reference) << "input " << In[0] << " did not fail";
    support::StatsRegistry Stats;
    std::optional<LocateOutcome> SharedRun =
        locateVariant(*Faulty, In, Expected, Root, 1, CheckpointStrideAuto,
                      &Shared, &Stats);
    ASSERT_TRUE(SharedRun);
    expectSameOutcome(*Reference, *SharedRun, /*Seed=*/0, /*Threads=*/1);
    EXPECT_TRUE(SharedRun->Report.RootCauseFound) << "input " << In[0];
    uint64_t Hits = Stats.counter("verify.ckpt.shared_hits").get();
    if (SessionNo == 0) {
      EXPECT_EQ(Hits, 0u) << "first session has nothing to reuse";
      EXPECT_GT(Shared.count(), 0u) << "first session must seed the store";
    } else {
      EXPECT_GT(Hits, 0u)
          << "session " << SessionNo << " resumed nothing from the store";
    }
    ++SessionNo;
  }
}

// Promote / snapshotsFor from many threads at once, with overlapping
// indices and two interleaved validity keys: the shared store must stay
// consistent (the TSan job runs this via the parallel label).
TEST(CheckpointTest, ConcurrentSharedStoreIsRaceFree) {
  SharedCheckpointStore Shared(64ull << 20);
  const uint64_t Hash = 0x9e3779b97f4a7c15ull;
  static int KeyA, KeyB;
  const void *ProgA = &KeyA;
  const void *ProgB = &KeyB;

  support::ThreadPool Pool(8);
  std::vector<std::function<void()>> Tasks;
  std::atomic<size_t> Promoted{0};
  std::atomic<size_t> Lookups{0};
  for (unsigned T = 0; T < 8; ++T)
    Tasks.push_back([&, T] {
      for (unsigned I = 0; I < 64; ++I) {
        auto CP = std::make_shared<Checkpoint>();
        CP->Index = (T * 64 + I) % 96; // Contended duplicates.
        CP->InputIndependent = true;
        CP->GlobalMem.assign(16, static_cast<int64_t>(CP->Index));
        const void *Prog = (I % 2) ? ProgA : ProgB;
        if (Shared.promote(CP, Hash, Prog, kBudget))
          Promoted.fetch_add(1, std::memory_order_relaxed);
        Lookups.fetch_add(Shared.snapshotsFor(Hash, Prog, kBudget).size(),
                          std::memory_order_relaxed);
        (void)Shared.bytes();
      }
    });
  Pool.runAll(std::move(Tasks));
  EXPECT_EQ(Shared.count(), Promoted.load());
  // Each (key, index) pair admitted exactly once: the odd residues mod 96
  // land under one key, the even ones under the other.
  EXPECT_EQ(Shared.count(), 96u);
  EXPECT_GT(Lookups.load(), 0u);

  // Input-dependent snapshots are always refused.
  auto Dep = std::make_shared<Checkpoint>();
  Dep->Index = 1000;
  EXPECT_FALSE(Shared.promote(Dep, Hash, ProgA, kBudget));
  EXPECT_EQ(Shared.count(), 96u);
}

} // namespace
