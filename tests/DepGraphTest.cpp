//===-- tests/DepGraphTest.cpp - Dynamic dependence graph tests ---------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "ddg/DepGraph.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::ddg;
using namespace eoe::interp;
using eoe::test::Session;

namespace {

TEST(DepGraphTest, BackwardClosureFollowsDataDeps) {
  const char *Src = "fn main() {\n"
                    "var a = 1;\n"
                    "var b = 2;\n"
                    "var c = a + 1;\n"
                    "print(c);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  DepGraph G(T);
  TraceIdx Print = S.instanceAtLine(T, 5);
  auto Member = G.backwardClosure({Print}, DepGraph::ClosureOptions());
  EXPECT_TRUE(Member[S.instanceAtLine(T, 2)]);  // a
  EXPECT_FALSE(Member[S.instanceAtLine(T, 3)]); // b is unrelated
  EXPECT_TRUE(Member[S.instanceAtLine(T, 4)]);  // c
  EXPECT_TRUE(Member[Print]);
}

TEST(DepGraphTest, BackwardClosureFollowsControlDeps) {
  const char *Src = "fn main() {\n"
                    "var c = 1;\n"
                    "if (c) {\n"
                    "print(9);\n"
                    "}\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  DepGraph G(T);
  TraceIdx Print = S.instanceAtLine(T, 4);
  auto Member = G.backwardClosure({Print}, DepGraph::ClosureOptions());
  EXPECT_TRUE(Member[S.instanceAtLine(T, 3)]); // the if predicate
  EXPECT_TRUE(Member[S.instanceAtLine(T, 2)]); // c feeds the predicate

  DepGraph::ClosureOptions NoControl;
  NoControl.Control = false;
  auto DataOnly = G.backwardClosure({Print}, NoControl);
  EXPECT_FALSE(DataOnly[S.instanceAtLine(T, 3)]);
}

TEST(DepGraphTest, ImplicitEdgesExtendTheClosure) {
  const char *Src = "fn main() {\n"
                    "var flag = 0;\n"
                    "var out = 5;\n"
                    "if (flag) {\n"
                    "out = 6;\n"
                    "}\n"
                    "print(out);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  DepGraph G(T);
  TraceIdx Print = S.instanceAtLine(T, 7);
  TraceIdx If = S.instanceAtLine(T, 4);

  auto Before = G.backwardClosure({Print}, DepGraph::ClosureOptions());
  EXPECT_FALSE(Before[If]) << "print(out) must not reach the untaken if";

  // The implicit dependence the paper's technique would verify: print's
  // use of out implicitly depends on the if.
  G.addImplicitEdge(Print, If, /*Strong=*/true);
  auto After = G.backwardClosure({Print}, DepGraph::ClosureOptions());
  EXPECT_TRUE(After[If]);
  EXPECT_TRUE(After[S.instanceAtLine(T, 2)]) << "flag feeds the predicate";

  DepGraph::ClosureOptions NoImplicit;
  NoImplicit.Implicit = false;
  auto Suppressed = G.backwardClosure({Print}, NoImplicit);
  EXPECT_FALSE(Suppressed[If]);
}

TEST(DepGraphTest, DuplicateImplicitEdgesCollapse) {
  Session S("fn main() { var x = 1; print(x); }");
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  DepGraph G(T);
  G.addImplicitEdge(1, 0, false);
  G.addImplicitEdge(1, 0, true);
  ASSERT_EQ(G.implicitEdges().size(), 1u);
  EXPECT_TRUE(G.implicitEdges()[0].Strong) << "strength upgrades";
}

TEST(DepGraphTest, DepthMeasuresDependenceDistance) {
  const char *Src = "fn main() {\n"
                    "var a = 1;\n"
                    "var b = a + 1;\n"
                    "var c = b + 1;\n"
                    "print(c);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  DepGraph G(T);
  TraceIdx Print = S.instanceAtLine(T, 5);
  std::vector<uint32_t> Depth;
  G.backwardClosure({Print}, DepGraph::ClosureOptions(), &Depth);
  EXPECT_EQ(Depth[Print], 0u);
  EXPECT_EQ(Depth[S.instanceAtLine(T, 4)], 1u);
  EXPECT_EQ(Depth[S.instanceAtLine(T, 3)], 2u);
  EXPECT_EQ(Depth[S.instanceAtLine(T, 2)], 3u);
}

TEST(DepGraphTest, ForwardClosureIsConverseOfBackward) {
  const char *Src = "fn main() {\n"
                    "var a = 1;\n"
                    "var b = a + 1;\n"
                    "var c = 7;\n"
                    "print(b, c);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  DepGraph G(T);
  TraceIdx DefA = S.instanceAtLine(T, 2);
  auto Fwd = G.forwardClosure({DefA}, DepGraph::ClosureOptions());
  EXPECT_TRUE(Fwd[S.instanceAtLine(T, 3)]);
  EXPECT_TRUE(Fwd[S.instanceAtLine(T, 5)]);
  EXPECT_FALSE(Fwd[S.instanceAtLine(T, 4)]);

  // Converse check across all pairs: i in Fwd(j) <=> j in Bwd(i).
  for (TraceIdx I = 0; I < T.size(); ++I) {
    auto Bwd = G.backwardClosure({I}, DepGraph::ClosureOptions());
    EXPECT_EQ(Fwd[I], Bwd[DefA]) << "instance " << I;
  }
}

TEST(DepGraphTest, StatsCountStaticAndDynamic) {
  const char *Src = "fn main() {\n"
                    "var i = 0;\n"
                    "var s = 0;\n"
                    "while (i < 3) {\n"
                    "s = s + i;\n"
                    "i = i + 1;\n"
                    "}\n"
                    "print(s);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  DepGraph G(T);
  TraceIdx Print = S.instanceAtLine(T, 8);
  auto Member = G.backwardClosure({Print}, DepGraph::ClosureOptions());
  SliceStats Stats = G.stats(Member);
  // Unique statements: both decls, while, both assigns, print = 6.
  EXPECT_EQ(Stats.StaticStmts, 6u);
  // Instances: decls(2) + the three taken while tests (the exiting fourth
  // test governs nothing in the slice) + s-assign x3 + i-assign x2 (the
  // third increment never feeds the printed sum) + print = 11.
  EXPECT_EQ(Stats.DynamicInstances, 11u);
}

} // namespace
