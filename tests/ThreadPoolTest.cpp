//===-- tests/ThreadPoolTest.cpp - Worker pool & shared-cache stress ----------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// The pool contract the parallel verification engine relies on: tasks
// complete, exceptions surface through futures (and runAll), destruction
// drains the queue instead of dropping packaged tasks, and the shared
// switched-run cache holds up under concurrent cache-hit pressure.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "core/VerifyDep.h"
#include "slicing/OutputVerdicts.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;
using namespace eoe::slicing;
using namespace eoe::support;
using eoe::test::Session;

namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);

  std::atomic<int> Count{0};
  std::vector<std::future<void>> Futures;
  for (int I = 0; I < 64; ++I)
    Futures.push_back(Pool.submit([&Count] { ++Count; }));
  for (std::future<void> &F : Futures)
    F.get();
  EXPECT_EQ(Count.load(), 64);
}

TEST(ThreadPoolTest, ClampsZeroThreadsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), 1u);
  std::atomic<bool> Ran{false};
  Pool.submit([&Ran] { Ran = true; }).get();
  EXPECT_TRUE(Ran.load());
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool Pool(2);
  std::future<void> F =
      Pool.submit([] { throw std::runtime_error("switched run failed"); });
  EXPECT_THROW(F.get(), std::runtime_error);

  // The worker survives the throwing task; the pool stays usable.
  std::atomic<int> Count{0};
  std::vector<std::future<void>> More;
  for (int I = 0; I < 8; ++I)
    More.push_back(Pool.submit([&Count] { ++Count; }));
  for (std::future<void> &G : More)
    G.get();
  EXPECT_EQ(Count.load(), 8);
}

TEST(ThreadPoolTest, RunAllRethrowsButFinishesEveryTask) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  std::vector<std::function<void()>> Tasks;
  for (int I = 0; I < 16; ++I)
    Tasks.push_back([&Count, I] {
      ++Count;
      if (I == 3)
        throw std::runtime_error("task 3");
    });
  EXPECT_THROW(Pool.runAll(std::move(Tasks)), std::runtime_error);
  // runAll must not rethrow before every task has finished -- a caller
  // whose lambdas capture locals by reference relies on this.
  EXPECT_EQ(Count.load(), 16);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  std::atomic<int> Count{0};
  std::mutex M;
  std::condition_variable CV;
  bool Release = false;

  {
    ThreadPool Pool(1);
    // Occupy the single worker until every other task is queued, so the
    // destructor genuinely races a non-empty queue.
    Pool.submit([&] {
      std::unique_lock<std::mutex> Lock(M);
      CV.wait(Lock, [&] { return Release; });
      ++Count;
    });
    for (int I = 0; I < 32; ++I)
      Pool.submit([&Count] { ++Count; });
    {
      std::lock_guard<std::mutex> Lock(M);
      Release = true;
    }
    CV.notify_one();
    // Destructor runs here with (up to) 32 tasks still queued.
  }

  // Drain semantics: nothing was dropped.
  EXPECT_EQ(Count.load(), 33);
}

/// The stress subject: three independent false guards over x, so three
/// distinct predicate instances each back two verification keys (the use
/// of x at line 15 and of out at line 16).
constexpr const char *StressSrc = "fn main() {\n"
                                  "var a = 0;\n"    // 2
                                  "var b = 0;\n"    // 3
                                  "var c = 0;\n"    // 4
                                  "var x = 0;\n"    // 5
                                  "if (a) {\n"      // 6
                                  "x = x + 1;\n"    // 7
                                  "}\n"
                                  "if (b) {\n"      // 9
                                  "x = x + 2;\n"    // 10
                                  "}\n"
                                  "if (c) {\n"      // 12
                                  "x = x + 4;\n"    // 13
                                  "}\n"
                                  "var out = x;\n"  // 15
                                  "print(out);\n"   // 16
                                  "}";

/// Finds the load of variable \p Name among the uses at instance \p I.
ExprId loadOfVar(const Session &S, const ExecutionTrace &T, TraceIdx I,
                 const std::string &Name) {
  for (const UseRecord &U : T.step(I).Uses)
    if (isValidId(U.Var) && S.Prog->variable(U.Var).Name == Name)
      return U.LoadExpr;
  return InvalidId;
}

TEST(ThreadPoolTest, ConcurrentCacheHitStressOnSwitchedRunCache) {
  Session S(StressSrc);
  ASSERT_TRUE(S.valid());
  std::vector<int64_t> Input;
  ExecutionTrace T = S.run(Input);
  auto Diff = diffOutputs(T, {1}); // expected: only the line-6 guard taken
  ASSERT_TRUE(Diff.has_value());
  OutputVerdicts V = *Diff;

  // The six verification keys: {3 predicates} x {2 uses}.
  struct Key {
    TraceIdx Pred, Use;
    ExprId Load;
  };
  std::vector<Key> Keys;
  const std::pair<uint32_t, const char *> UseSpecs[] = {{15, "x"},
                                                        {16, "out"}};
  for (uint32_t PredLine : {6u, 9u, 12u})
    for (auto [UseLine, Var] : UseSpecs) {
      Key K;
      K.Pred = S.instanceAtLine(T, PredLine);
      K.Use = S.instanceAtLine(T, UseLine);
      K.Load = loadOfVar(S, T, K.Use, Var);
      ASSERT_NE(K.Pred, InvalidId);
      ASSERT_NE(K.Use, InvalidId);
      ASSERT_NE(K.Load, InvalidId);
      Keys.push_back(K);
    }

  // Serial reference verdicts from a fresh single-threaded verifier.
  ImplicitDepVerifier::Config SerialCfg;
  SerialCfg.Threads = 1;
  ImplicitDepVerifier Reference(*S.Interp, T, Input, V, SerialCfg);
  std::vector<DepVerdict> Expected;
  for (const Key &K : Keys)
    Expected.push_back(Reference.verify(K.Pred, K.Use, K.Load));
  ASSERT_EQ(Reference.reexecutionCount(), 3u);
  ASSERT_EQ(Reference.verificationCount(), Keys.size());

  // Hammer one shared verifier from eight threads, every thread asking
  // for every key many times, offset so different threads start on
  // different predicates and collide on the same cells mid-flight.
  ImplicitDepVerifier Shared(*S.Interp, T, Input, V,
                             ImplicitDepVerifier::Config());
  constexpr int Hammers = 8;
  constexpr int Rounds = 25;
  std::atomic<int> Mismatches{0};
  {
    ThreadPool Pool(Hammers);
    std::vector<std::function<void()>> Tasks;
    for (int H = 0; H < Hammers; ++H)
      Tasks.push_back([&, H] {
        for (int R = 0; R < Rounds; ++R)
          for (size_t I = 0; I < Keys.size(); ++I) {
            size_t J = (I + static_cast<size_t>(H)) % Keys.size();
            if (Shared.verify(Keys[J].Pred, Keys[J].Use, Keys[J].Load) !=
                Expected[J])
              ++Mismatches;
          }
      });
    Pool.runAll(std::move(Tasks));
  }

  EXPECT_EQ(Mismatches.load(), 0);
  // One re-execution per distinct predicate and one counted verification
  // per distinct key, no matter how many concurrent duplicate demands.
  EXPECT_EQ(Shared.reexecutionCount(), 3u);
  EXPECT_EQ(Shared.verificationCount(), Keys.size());
}

TEST(ThreadPoolTest, PrepareSwitchedRunsIsIdempotentUnderConcurrency) {
  Session S(StressSrc);
  ASSERT_TRUE(S.valid());
  std::vector<int64_t> Input;
  ExecutionTrace T = S.run(Input);
  auto Diff = diffOutputs(T, {1});
  ASSERT_TRUE(Diff.has_value());
  OutputVerdicts V = *Diff;

  std::vector<TraceIdx> Preds;
  for (uint32_t Line : {6u, 9u, 12u})
    Preds.push_back(S.instanceAtLine(T, Line));

  ImplicitDepVerifier::Config Cfg;
  Cfg.Threads = 4;
  ImplicitDepVerifier Verifier(*S.Interp, T, Input, V, Cfg);
  EXPECT_EQ(Verifier.effectiveThreads(), 4u);

  // Duplicate entries in one batch and concurrent duplicate batches must
  // still run each switched execution exactly once.
  std::vector<TraceIdx> Batch = Preds;
  Batch.insert(Batch.end(), Preds.begin(), Preds.end());
  {
    ThreadPool Outer(4);
    std::vector<std::function<void()>> Tasks;
    for (int I = 0; I < 4; ++I)
      Tasks.push_back([&Verifier, &Batch] {
        Verifier.prepareSwitchedRuns(Batch);
      });
    Outer.runAll(std::move(Tasks));
  }

  EXPECT_EQ(Verifier.reexecutionCount(), Preds.size());
  for (TraceIdx P : Preds)
    EXPECT_TRUE(Verifier.hasSwitchedRun(P));
  // Preparation alone performs no verifications.
  EXPECT_EQ(Verifier.verificationCount(), 0u);
}

} // namespace
