//===-- tests/EventTracerTest.cpp - Event tracer tests ------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/EventTracer.h"
#include "support/ThreadPool.h"

#include "JsonLite.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

using namespace eoe;
using namespace eoe::support;

namespace {

TEST(EventTracer, NestedSpansCloseInnermostFirst) {
  EventTracer T;
  {
    EventTracer::Span Outer(&T, "locate", "core");
    {
      EventTracer::Span Inner(&T, "verify", "verify");
    }
  }
  std::vector<EventTracer::Event> E = T.events();
  ASSERT_EQ(E.size(), 2u);
  // Spans are recorded at close, so the inner one lands first; the
  // outer one must fully contain it on the timeline.
  EXPECT_EQ(E[0].Name, "verify");
  EXPECT_EQ(E[1].Name, "locate");
  EXPECT_EQ(E[1].Category, "core");
  EXPECT_EQ(E[0].Phase, 'X');
  EXPECT_LE(E[1].StartNs, E[0].StartNs);
  EXPECT_GE(E[1].StartNs + E[1].DurationNs, E[0].StartNs + E[0].DurationNs);
}

TEST(EventTracer, NullTracerIsNoOp) {
  EventTracer::Span S(nullptr, "nothing");
  EventTracer::instant(nullptr, "nothing");
  S.end();
}

TEST(EventTracer, EndIsIdempotent) {
  EventTracer T;
  EventTracer::Span S(&T, "phase");
  S.end();
  S.end();
  EXPECT_EQ(T.eventCount(), 1u);
}

TEST(EventTracer, MovedFromSpanDoesNotRecord) {
  EventTracer T;
  {
    EventTracer::Span A(&T, "phase");
    EventTracer::Span B = std::move(A);
  }
  EXPECT_EQ(T.eventCount(), 1u);
}

TEST(EventTracer, MoveAssignmentClosesTheOverwrittenSpan) {
  EventTracer T;
  {
    EventTracer::Span A(&T, "first");
    EventTracer::Span B(&T, "second");
    A = std::move(B); // "first" must close here, not leak
    EXPECT_EQ(T.eventCount(), 1u);
    EXPECT_EQ(T.events()[0].Name, "first");
  }
  EXPECT_EQ(T.eventCount(), 2u);
}

TEST(EventTracer, InstantMarkers) {
  EventTracer T;
  T.instant("cache_hit", "verify");
  std::vector<EventTracer::Event> E = T.events();
  ASSERT_EQ(E.size(), 1u);
  EXPECT_EQ(E[0].Phase, 'i');
  EXPECT_EQ(E[0].DurationNs, 0u);
}

TEST(EventTracer, JsonIsValidChromeTraceFormat) {
  EventTracer T;
  {
    EventTracer::Span S(&T, "interpret \"quoted\"\n", "interp");
  }
  T.instant("marker");

  std::optional<jsonlite::Value> Doc = jsonlite::parse(T.json());
  ASSERT_TRUE(Doc) << T.json();
  EXPECT_EQ(Doc->at("displayTimeUnit").String, "ms");
  const jsonlite::Value &Events = Doc->at("traceEvents");
  ASSERT_TRUE(Events.isArray());
  ASSERT_EQ(Events.Array.size(), 2u);
  for (const jsonlite::Value &E : Events.Array) {
    ASSERT_TRUE(E.isObject());
    EXPECT_TRUE(E.at("name").isString());
    EXPECT_TRUE(E.at("cat").isString());
    EXPECT_TRUE(E.at("ts").isNumber());
    EXPECT_TRUE(E.at("pid").isNumber());
    EXPECT_TRUE(E.at("tid").isNumber());
    ASSERT_TRUE(E.at("ph").isString());
    if (E.at("ph").String == "X")
      EXPECT_TRUE(E.at("dur").isNumber());
    else
      EXPECT_EQ(E.at("ph").String, "i");
  }
  // The escaped name round-trips through the parser.
  EXPECT_EQ(Events.Array[0].at("name").String, "interpret \"quoted\"\n");
}

TEST(EventTracer, WriteFileRoundTrips) {
  EventTracer T;
  {
    EventTracer::Span S(&T, "phase");
  }
  std::string Path =
      ::testing::TempDir() + "/eoe_tracer_test_trace.json";
  ASSERT_TRUE(T.writeFile(Path));
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  // The file gets a trailing newline (it is a text file); the in-memory
  // document does not.
  EXPECT_EQ(Buffer.str(), T.json() + "\n");
  std::remove(Path.c_str());
}

TEST(EventTracer, WriteFileFailsOnBadPath) {
  EventTracer T;
  EXPECT_FALSE(T.writeFile("/nonexistent-dir-eoe/trace.json"));
}

TEST(EventTracer, ConcurrentSpansOnThreadPoolGetStableTids) {
  EventTracer T;
  constexpr int Tasks = 32;
  {
    ThreadPool Pool(4);
    std::vector<std::function<void()>> Work;
    for (int I = 0; I < Tasks; ++I) {
      Work.push_back([&T] {
        EventTracer::Span S(&T, "reexec", "verify");
        T.instant("step", "verify");
      });
    }
    Pool.runAll(std::move(Work));
  }
  EXPECT_EQ(T.eventCount(), 2u * Tasks);

  // Every worker gets one stable small tid; with 4 workers there can be
  // at most 4 distinct ids (plus none from the main thread here).
  std::set<uint32_t> Tids;
  for (const EventTracer::Event &E : T.events())
    Tids.insert(E.Tid);
  EXPECT_GE(Tids.size(), 1u);
  EXPECT_LE(Tids.size(), 4u);

  // The document survives concurrent recording intact.
  std::optional<jsonlite::Value> Doc = jsonlite::parse(T.json());
  ASSERT_TRUE(Doc);
  EXPECT_EQ(Doc->at("traceEvents").Array.size(), 2u * Tasks);
}

} // namespace
