//===-- tests/StressTest.cpp - Deep-nesting robustness -------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Long-running loops nest one region per iteration (Definition 3), so
// region trees get as deep as the trace is long. These tests pin that
// alignment and slicing stay iterative (no stack overflow) and correct
// at tens of thousands of nesting levels, and that a realistic
// end-to-end locate works on a trace of that size.
//
//===----------------------------------------------------------------------===//

#include "align/Aligner.h"
#include "core/DebugSession.h"
#include "ddg/DepGraph.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::interp;
using eoe::test::Session;

namespace {

TEST(StressTest, AlignmentAcrossTwentyThousandNestedRegions) {
  const char *Src = "fn main() {\n"
                    "var p = 0;\n"
                    "var x = 1;\n"
                    "if (p) {\n"          // 4 <- switched
                    "x = 2;\n"
                    "}\n"
                    "var i = 0;\n"
                    "var s = 0;\n"
                    "while (i < 20000) {\n" // 9: 20k nested regions
                    "s = s + i;\n"
                    "i = i + 1;\n"
                    "}\n"
                    "var y = x;\n"        // 13
                    "print(y + s);\n"     // 14
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  ASSERT_GT(T.size(), 60000u);

  ExecutionTrace EP = S.Interp->runSwitched({}, {S.stmtAtLine(4), 1},
                                            1'000'000);
  align::ExecutionAligner A(T, EP);

  // The use after the loop: the walk descends 20k iteration regions.
  TraceIdx U = S.instanceAtLine(T, 13);
  align::AlignResult R = A.match(U);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(EP.step(R.Matched).Stmt, S.stmtAtLine(13));
  EXPECT_EQ(EP.step(R.Matched).Uses[0].Value, 2) << "reads the new def";

  // A point deep inside the loop aligns too.
  TraceIdx Mid = S.instanceAtLine(T, 10, 15000);
  ASSERT_NE(Mid, InvalidId);
  align::AlignResult RMid = A.match(Mid);
  ASSERT_TRUE(RMid.found());
  EXPECT_EQ(EP.step(RMid.Matched).InstanceNo, 15000u);
}

TEST(StressTest, SlicingAndRegionTreeOnLongTraces) {
  const char *Src = "fn main() {\n"
                    "var i = 0;\n"
                    "var s = 0;\n"
                    "while (i < 30000) {\n"
                    "s = s + i % 7;\n"
                    "i = i + 1;\n"
                    "}\n"
                    "print(s);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  ASSERT_GT(T.size(), 90000u);

  align::RegionTree Tree(T);
  TraceIdx Last = static_cast<TraceIdx>(T.size() - 1);
  EXPECT_GT(Tree.depth(S.instanceAtLine(T, 5, 30000)), 29000u);
  (void)Last;

  ddg::DepGraph G(T);
  auto Member = G.backwardClosure({T.Outputs[0].Step},
                                  ddg::DepGraph::ClosureOptions());
  auto Stats = G.stats(Member);
  EXPECT_GT(Stats.DynamicInstances, 80000u);
}

TEST(StressTest, EndToEndLocateOnALongTrace) {
  // The Figure-1 shape with a 5000-iteration compression loop between
  // the omission and the observation.
  const char *Src = "fn main() {\n"
                    "var save = 0;\n"      // 2 <- root (should be 1)
                    "var flags = 0;\n"
                    "if (save) {\n"        // 4
                    "flags = flags + 8;\n"
                    "}\n"
                    "var i = 0;\n"
                    "var crc = 0;\n"
                    "while (i < 5000) {\n"
                    "crc = (crc * 31 + i) % 65521;\n"
                    "i = i + 1;\n"
                    "}\n"
                    "print(crc);\n"        // 13 correct
                    "print(flags);\n"      // 14 wrong
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace Fixed = S.run(); // compute correct crc for expectations
  int64_t Crc = Fixed.Outputs[0].Value;

  core::DebugSession D(*S.Prog, {}, {Crc, 8}, {});
  ASSERT_TRUE(D.hasFailure());

  struct RootOracle : slicing::Oracle {
    StmtId Root;
    explicit RootOracle(StmtId Root) : Root(Root) {}
    bool isBenign(TraceIdx) override { return false; }
    bool isRootCause(StmtId Stmt) override { return Stmt == Root; }
  } O(S.stmtAtLine(2));

  core::LocateReport R = D.locate(O);
  EXPECT_TRUE(R.RootCauseFound);
  EXPECT_GE(R.StrongEdges, 1u);
}

} // namespace
