//===-- tests/VerifyDepTest.cpp - Implicit dependence verification ------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/VerifyDep.h"

#include "slicing/OutputVerdicts.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;
using namespace eoe::slicing;
using eoe::test::Session;

namespace {

/// Finds the use of variable \p Name recorded at instance \p I.
const UseRecord *useOfVar(const Session &S, const ExecutionTrace &T,
                          TraceIdx I, const std::string &Name) {
  for (const UseRecord &U : T.step(I).Uses)
    if (isValidId(U.Var) && S.Prog->variable(U.Var).Name == Name)
      return &U;
  return nullptr;
}

/// Shared harness: runs the program, builds verdicts from the expected
/// outputs, and exposes a verifier.
struct VerifyFixture {
  Session S;
  std::vector<int64_t> Input;
  ExecutionTrace T;
  OutputVerdicts V;
  std::unique_ptr<ImplicitDepVerifier> Verifier;

  VerifyFixture(const char *Src, std::vector<int64_t> In,
                std::vector<int64_t> Expected)
      : S(Src), Input(std::move(In)) {
    EXPECT_TRUE(S.valid());
    T = S.run(Input);
    auto Diff = diffOutputs(T, Expected);
    EXPECT_TRUE(Diff.has_value());
    V = *Diff;
    Verifier = std::make_unique<ImplicitDepVerifier>(
        *S.Interp, T, Input, V, ImplicitDepVerifier::Config());
  }

  DepVerdict verify(uint32_t PredLine, uint32_t UseLine,
                    const std::string &VarName) {
    TraceIdx P = S.instanceAtLine(T, PredLine);
    TraceIdx U = S.instanceAtLine(T, UseLine);
    EXPECT_NE(P, InvalidId);
    EXPECT_NE(U, InvalidId);
    const UseRecord *Use = useOfVar(S, T, U, VarName);
    EXPECT_NE(Use, nullptr);
    return Verifier->verify(P, U, Use->LoadExpr);
  }
};

TEST(VerifyDepTest, StrongImplicitWhenSwitchProducesExpectedOutput) {
  // Figure 1's S4 -> S6: switching the flags guard corrects the output.
  const char *Src = "fn main() {\n"
                    "var save = 0;\n"    // 2 (root cause)
                    "var flags = 0;\n"   // 3
                    "if (save) {\n"      // 4 (S4)
                    "flags = flags + 32;\n" // 5 (S5)
                    "}\n"
                    "var out = flags;\n" // 7 (S6)
                    "print(out);\n"      // 8 (S10-ish)
                    "}";
  VerifyFixture F(Src, {}, {32});
  EXPECT_EQ(F.verify(4, 7, "flags"), DepVerdict::StrongImplicit);
  EXPECT_EQ(F.Verifier->verificationCount(), 1u);
  EXPECT_EQ(F.Verifier->reexecutionCount(), 1u);
}

TEST(VerifyDepTest, ImplicitWhenUseAffectedButOutputStillWrong) {
  // Switching exposes a new reaching definition for the use, but the
  // output does not become the expected value: plain ID, not strong.
  const char *Src = "fn main() {\n"
                    "var p = 0;\n"
                    "var x = 1;\n"
                    "if (p) {\n"        // 4
                    "x = 2;\n"
                    "}\n"
                    "var y = x;\n"      // 7
                    "print(y);\n"       // 8
                    "}";
  VerifyFixture F(Src, {}, {99}); // expected value unreachable
  EXPECT_EQ(F.verify(4, 7, "x"), DepVerdict::Implicit);
}

TEST(VerifyDepTest, ImplicitWhenTheUseDisappears) {
  // Figure 2 execution (3): the switch flips a predicate guarding u, so
  // u has no match -- Definition 2 condition (i).
  const char *Src = "fn main() {\n"
                    "var p = 0;\n"
                    "var c = 0;\n"
                    "var x = 5;\n"
                    "if (p) {\n"      // 5
                    "c = 1;\n"
                    "}\n"
                    "if (c == 0) {\n" // 8
                    "x = x + 1;\n"    // 9 (u: the use of x)
                    "}\n"
                    "print(x);\n"     // 11
                    "}";
  VerifyFixture F(Src, {}, {77});
  EXPECT_EQ(F.verify(5, 9, "x"), DepVerdict::Implicit);
}

TEST(VerifyDepTest, NotImplicitForUnrelatedPredicates) {
  // Figure 1's S7 -> S10 false potential dependence: switching S7 does
  // not change outbuf[1], so verification rejects the edge.
  const char *Src = "var outbuf[8];\n"
                    "fn main() {\n"
                    "var save = 0;\n"        // 3
                    "var cnt = 0;\n"         // 4
                    "outbuf[cnt] = 8;\n"     // 5
                    "cnt = cnt + 1;\n"       // 6
                    "outbuf[cnt] = 0;\n"     // 7
                    "cnt = cnt + 1;\n"       // 8
                    "if (save) {\n"          // 9 (S7)
                    "outbuf[cnt] = 55;\n"    // 10 (S8: may-alias outbuf[1])
                    "cnt = cnt + 1;\n"       // 11
                    "}\n"
                    "print(outbuf[0]);\n"    // 13 (correct)
                    "print(outbuf[1]);\n"    // 14 (wrong)
                    "}";
  VerifyFixture F(Src, {}, {8, 32});
  EXPECT_EQ(F.verify(9, 14, "outbuf"), DepVerdict::NotImplicit);
}

TEST(VerifyDepTest, VerdictsAreCachedPerDependence) {
  const char *Src = "fn main() {\n"
                    "var p = 0;\n"
                    "var x = 1;\n"
                    "if (p) {\n"
                    "x = 2;\n"
                    "}\n"
                    "var y = x;\n"
                    "print(y);\n"
                    "}";
  VerifyFixture F(Src, {}, {99});
  DepVerdict First = F.verify(4, 7, "x");
  DepVerdict Second = F.verify(4, 7, "x");
  EXPECT_EQ(First, Second);
  EXPECT_EQ(F.Verifier->verificationCount(), 1u) << "cache hit";
  EXPECT_EQ(F.Verifier->reexecutionCount(), 1u);
}

TEST(VerifyDepTest, OneReexecutionServesManyUses) {
  const char *Src = "fn main() {\n"
                    "var p = 0;\n"
                    "var x = 1;\n"
                    "var z = 1;\n"
                    "if (p) {\n"      // 5
                    "x = 2;\n"
                    "z = 2;\n"
                    "}\n"
                    "var y = x;\n"    // 9
                    "var w = z;\n"    // 10
                    "print(y + w);\n" // 11
                    "}";
  VerifyFixture F(Src, {}, {99});
  EXPECT_EQ(F.verify(5, 9, "x"), DepVerdict::Implicit);
  EXPECT_EQ(F.verify(5, 10, "z"), DepVerdict::Implicit);
  EXPECT_EQ(F.Verifier->verificationCount(), 2u);
  EXPECT_EQ(F.Verifier->reexecutionCount(), 1u)
      << "switched runs are shared per predicate instance";
}

TEST(VerifyDepTest, Table5aInfeasiblePathStillReportsDependence) {
  // Discussion, Table 5(a): forcing P2 may traverse a path infeasible in
  // the faulty program; the paper argues the dependence must still be
  // reported because P1/P2 themselves may be the error.
  const char *Src = "fn main() {\n"
                    "var A = input();\n" // 2: A = 15
                    "var X = 1;\n"       // 3: S1
                    "if (A > 10) {\n"    // 4: P1 (taken)
                    "A = 3;\n"           // 5
                    "}\n"
                    "if (A > 100) {\n"   // 7: P2 (not taken)
                    "X = 2;\n"           // 8: S3
                    "}\n"
                    "print(X);\n"        // 10
                    "}";
  VerifyFixture F(Src, {15}, {42});
  EXPECT_NE(F.verify(7, 10, "X"), DepVerdict::NotImplicit);
}

TEST(VerifyDepTest, Table5bNestedPredicatesExposeUnsoundness) {
  // Discussion, Table 5(b): both predicates test the same (faulty) A;
  // switching P1 alone lets P2 evaluate false, so the method misses the
  // implicit dependence -- the documented unsoundness.
  const char *Src = "fn main() {\n"
                    "var A = input();\n" // 2: A = 5 (wrong value)
                    "var X = 1;\n"       // 3: S1
                    "if (A > 10) {\n"    // 4: P1 (not taken)
                    "if (A < 5) {\n"     // 5: P2
                    "X = 2;\n"           // 6: S2
                    "}\n"
                    "}\n"
                    "print(X);\n"        // 9: S4
                    "}";
  VerifyFixture F(Src, {5}, {42});
  EXPECT_EQ(F.verify(4, 9, "X"), DepVerdict::NotImplicit)
      << "the paper's documented miss: switching one of two nested "
         "predicates that share the faulty definition";
}

TEST(VerifyDepTest, TimedOutSwitchedRunMeansNoDependence) {
  // Switching makes the program loop forever; the step budget expires
  // and verification concludes NOT_ID (the paper's timer policy). The
  // wrong output is unreachable too, so no strong evidence either.
  const char *Src = "fn main() {\n"
                    "var p = 0;\n"
                    "var x = 1;\n"
                    "if (p) {\n"            // 4
                    "while (1) {\n"
                    "x = x + 1;\n"
                    "}\n"
                    "}\n"
                    "var y = x;\n"          // 9
                    "print(y);\n"           // 10
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({});
  auto Diff = diffOutputs(T, {99});
  ASSERT_TRUE(Diff.has_value());
  ImplicitDepVerifier::Config C;
  C.MaxSteps = 2000;
  ImplicitDepVerifier Verifier(*S.Interp, T, {}, *Diff, C);
  TraceIdx P = S.instanceAtLine(T, 4);
  TraceIdx U = S.instanceAtLine(T, 9);
  const UseRecord *Use = useOfVar(S, T, U, "x");
  ASSERT_NE(Use, nullptr);
  EXPECT_EQ(Verifier.verify(P, U, Use->LoadExpr), DepVerdict::NotImplicit);
}

} // namespace
