# Smoke check of eoec's observability surface, run as a ctest script:
#
#   cmake -DEOEC=<eoec binary> -DEXAMPLE=<figure1.siml> -DOUT_DIR=<dir>
#         -P CheckObservability.cmake
#
# Drives `eoec locate --stats=json --trace-out=FILE` on the example
# program and asserts the documented shape: the last stdout line is
# schema-tagged stats JSON covering every pipeline layer, and the trace
# file is a Chrome trace_event document containing the phase spans.
# (Structural JSON validity of both emitters is covered by the unit
# tests; this guards the CLI wiring end to end.)

foreach(Var EOEC EXAMPLE OUT_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "missing -D${Var}=...")
  endif()
endforeach()

set(TraceFile "${OUT_DIR}/eoec_smoke_trace.json")
file(REMOVE "${TraceFile}")

execute_process(
  COMMAND "${EOEC}" locate "${EXAMPLE}"
          --expected 8,19387 --root-line 11
          --stats=json "--trace-out=${TraceFile}"
  OUTPUT_VARIABLE Stdout
  ERROR_VARIABLE Stderr
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "eoec locate failed (rc=${Rc}):\n${Stdout}\n${Stderr}")
endif()

# The stats JSON is the final stdout line, tagged with its schema.
string(STRIP "${Stdout}" Stdout)
string(REGEX REPLACE ".*\n" "" LastLine "${Stdout}")
if(NOT LastLine MATCHES "^\\{\"schema\":\"eoe-stats-v1\"")
  message(FATAL_ERROR "last stdout line is not eoe-stats-v1 JSON:\n${LastLine}")
endif()
foreach(Key
    "\"interp\"" "\"align\"" "\"verify\"" "\"locate\"" "\"slicing\""
    "\"verifications\"" "\"reexecutions\"" "\"ckpt.hits\"" "\"ckpt.misses\""
    "\"ckpt.restore_time\"" "\"ckpt.delta_encoded\"" "\"ckpt.keyframes\""
    "\"ckpt.encoded_bytes\"" "\"ckpt.raw_bytes\"" "\"ckpt.shared_hits\""
    "\"ckpt.auto_stride\"" "\"ckpt.disk_hits\"" "\"ckpt.disk_loads\""
    "\"ckpt.disk_rejects\"" "\"ckpt.disk_write_bytes\""
    "\"ckpt.switched_hits\"" "\"ckpt.switched_promotions\""
    "\"ckpt.switched_spliced_suffix_steps\""
    "\"ckpt.switched_reconverge_probes\""
    "\"ckpt.switched_interpreted_steps\""
    "\"chain.runs\"" "\"chain.prefix_hits\"" "\"chain.extended_steps\""
    "\"counters\"" "\"timers\""
    "\"histograms\"")
  if(NOT LastLine MATCHES "${Key}")
    message(FATAL_ERROR "stats JSON lacks ${Key}:\n${LastLine}")
  endif()
endforeach()

if(NOT EXISTS "${TraceFile}")
  message(FATAL_ERROR "trace file was not written: ${TraceFile}")
endif()
file(READ "${TraceFile}" Trace)
if(NOT Trace MATCHES "\"traceEvents\":\\[")
  message(FATAL_ERROR "not a Chrome trace document:\n${Trace}")
endif()
foreach(Span "interpret" "align" "verify" "locate")
  if(NOT Trace MATCHES "\"name\":\"${Span}\"")
    message(FATAL_ERROR "trace lacks the ${Span} span:\n${Trace}")
  endif()
endforeach()

message(STATUS "observability smoke passed")
