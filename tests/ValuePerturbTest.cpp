//===-- tests/ValuePerturbTest.cpp - Section 5 extension tests ----------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Tests for the value-perturbation extension (the paper's proposed way
// around the Table 5(b) nested-predicate unsoundness) and for the
// paths-vs-edges VerifyDep option (section 3.2's design choice).
//
//===----------------------------------------------------------------------===//

#include "core/ValuePerturb.h"
#include "core/VerifyDep.h"

#include "slicing/OutputVerdicts.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;
using namespace eoe::slicing;
using eoe::test::Session;

namespace {

/// The satisfiable nested-predicate scenario: both guards test A, the
/// correct A (20) would execute X = 2, the faulty A (5) takes neither
/// branch. Single-predicate switching is blind here; value perturbation
/// is not.
const char *NestedSrc = "fn main() {\n"
                        "var A = input();\n" // 2  <- perturbed definition
                        "var X = 1;\n"       // 3
                        "if (A > 10) {\n"    // 4  P1
                        "if (A > 15) {\n"    // 5  P2
                        "X = 2;\n"           // 6
                        "}\n"
                        "}\n"
                        "print(X);\n"        // 9  wrong: 1, expected 2
                        "}";

struct NestedFixture {
  Session S{NestedSrc};
  ExecutionTrace T;
  OutputVerdicts V;

  NestedFixture() {
    EXPECT_TRUE(S.valid());
    T = S.run({5});
    V.WrongOutput = 0;
    V.ExpectedValue = 2;
  }

  const UseRecord *xUse(TraceIdx I) const {
    for (const UseRecord &U : T.step(I).Uses)
      if (isValidId(U.Var) && S.Prog->variable(U.Var).Name == "X")
        return &U;
    return nullptr;
  }
};

TEST(ValuePerturbTest, BranchSwitchingMissesTheNestedDependence) {
  NestedFixture F;
  ImplicitDepVerifier Verifier(*F.S.Interp, F.T, {5}, F.V,
                               ImplicitDepVerifier::Config());
  TraceIdx P1 = F.S.instanceAtLine(F.T, 4);
  TraceIdx Use = F.S.instanceAtLine(F.T, 9);
  const UseRecord *U = F.xUse(Use);
  ASSERT_NE(U, nullptr);
  EXPECT_EQ(Verifier.verify(P1, Use, U->LoadExpr), DepVerdict::NotImplicit)
      << "the Table 5(b) blind spot";
}

TEST(ValuePerturbTest, PerturbationExposesIt) {
  NestedFixture F;
  ValuePerturbVerifier Verifier(*F.S.Interp, F.T, {5}, F.V,
                                ValuePerturbVerifier::Config());
  TraceIdx DefA = F.S.instanceAtLine(F.T, 2);
  TraceIdx Use = F.S.instanceAtLine(F.T, 9);
  const UseRecord *U = F.xUse(Use);
  ASSERT_NE(U, nullptr);

  auto R = Verifier.verify(DefA, Use, U->LoadExpr, {7, 12, 20});
  EXPECT_TRUE(R.DependenceExposed);
  EXPECT_TRUE(R.OutputCorrected) << "A = 20 produces the expected output";
  EXPECT_EQ(R.WitnessValue, 20);
  EXPECT_EQ(R.Reexecutions, 3u) << "7 and 12 are tried and rejected first";
}

TEST(ValuePerturbTest, NoWitnessMeansNoDependence) {
  NestedFixture F;
  ValuePerturbVerifier Verifier(*F.S.Interp, F.T, {5}, F.V,
                                ValuePerturbVerifier::Config());
  TraceIdx DefA = F.S.instanceAtLine(F.T, 2);
  TraceIdx Use = F.S.instanceAtLine(F.T, 9);
  const UseRecord *U = F.xUse(Use);
  ASSERT_NE(U, nullptr);

  // Candidates that keep both guards un-taken do not expose anything.
  auto R = Verifier.verify(DefA, Use, U->LoadExpr, {1, 3, 9, 5});
  EXPECT_FALSE(R.DependenceExposed);
  EXPECT_EQ(R.Reexecutions, 3u) << "the original value 5 is skipped";
}

TEST(ValuePerturbTest, PerturbedInterpreterRunsDeterministically) {
  NestedFixture F;
  Interpreter::Options Opts;
  Opts.Perturb = PerturbSpec{F.S.stmtAtLine(2), 1, 20};
  ExecutionTrace A = F.S.Interp->run({5}, Opts);
  ExecutionTrace B = F.S.Interp->run({5}, Opts);
  ASSERT_EQ(A.size(), B.size());
  EXPECT_EQ(A.outputValues(), (std::vector<int64_t>{2}));
  EXPECT_NE(A.SwitchedStep, InvalidId);
  EXPECT_EQ(A.step(A.SwitchedStep).Stmt, F.S.stmtAtLine(2));
}

//===----------------------------------------------------------------------===//
// Paths-vs-edges (section 3.2): the paper's own example where the edge
// check misses but an explicit dependence path exists in the switched run.
//===----------------------------------------------------------------------===//

/// Figure 2 with statement "7" being x = ...: switching P executes the
/// loop, which redefines x via a chain of control and data edges, but
/// the new definition reaching the use is NOT directly inside P's
/// region -- the edge check says NOT_ID, the path check says ID.
const char *PathSrc = "fn main() {\n"
                      "var i = 0;\n"      // 2
                      "var t = 0;\n"      // 3
                      "var x = 0;\n"      // 4
                      "var P = 0;\n"      // 5
                      "if (P) {\n"        // 6  <- switched
                      "t = 1;\n"          // 7
                      "}\n"
                      "while (i < t) {\n" // 9
                      "x = 42;\n"         // 10 ("statement 7 is x=...")
                      "i = i + 1;\n"      // 11
                      "}\n"
                      "var y = x;\n"      // 13 (the use of x)
                      "print(y);\n"       // 14
                      "}";

TEST(VerifyDepPathCheckTest, EdgeCheckMissesIndirectExposure) {
  Session S(PathSrc);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({});
  OutputVerdicts V;
  V.WrongOutput = 0;
  V.ExpectedValue = 99; // unreachable: never strong

  TraceIdx P = S.instanceAtLine(T, 6);
  TraceIdx Use = S.instanceAtLine(T, 13);
  ExprId Load = InvalidId;
  for (const UseRecord &U : T.step(Use).Uses)
    if (isValidId(U.Var) && S.Prog->variable(U.Var).Name == "x")
      Load = U.LoadExpr;
  ASSERT_NE(Load, InvalidId);

  ImplicitDepVerifier EdgeVerifier(*S.Interp, T, {}, V,
                                   ImplicitDepVerifier::Config());
  EXPECT_EQ(EdgeVerifier.verify(P, Use, Load), DepVerdict::NotImplicit)
      << "x's new definition lives in the loop, not in P's region";

  ImplicitDepVerifier::Config PathConfig;
  PathConfig.UsePathCheck = true;
  ImplicitDepVerifier PathVerifier(*S.Interp, T, {}, V, PathConfig);
  EXPECT_EQ(PathVerifier.verify(P, Use, Load), DepVerdict::Implicit)
      << "the explicit path P -cd-> t=1 -dd-> while -cd-> x=42 -dd-> use "
         "exists in the switched run";
}

TEST(VerifyDepPathCheckTest, BothChecksAgreeOnDirectRegionDefs) {
  const char *Src = "fn main() {\n"
                    "var p = 0;\n"
                    "var x = 1;\n"
                    "if (p) {\n"   // 4
                    "x = 2;\n"
                    "}\n"
                    "var y = x;\n" // 7
                    "print(y);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({});
  OutputVerdicts V;
  V.WrongOutput = 0;
  V.ExpectedValue = 99;
  TraceIdx P = S.instanceAtLine(T, 4);
  TraceIdx Use = S.instanceAtLine(T, 7);
  ExprId Load = T.step(Use).Uses[0].LoadExpr;

  ImplicitDepVerifier Edge(*S.Interp, T, {}, V,
                           ImplicitDepVerifier::Config());
  ImplicitDepVerifier::Config PC;
  PC.UsePathCheck = true;
  ImplicitDepVerifier Path(*S.Interp, T, {}, V, PC);
  EXPECT_EQ(Edge.verify(P, Use, Load), DepVerdict::Implicit);
  EXPECT_EQ(Path.verify(P, Use, Load), DepVerdict::Implicit);
}

} // namespace
