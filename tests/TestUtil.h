//===-- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#ifndef EOE_TESTS_TESTUTIL_H
#define EOE_TESTS_TESTUTIL_H

#include "analysis/StaticAnalysis.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "support/Diagnostic.h"

#include <gtest/gtest.h>

#include <memory>
#include <string_view>

namespace eoe {
namespace test {

/// Parses and checks \p Source, failing the test on any diagnostic.
inline std::unique_ptr<lang::Program> parseOrDie(std::string_view Source) {
  DiagnosticEngine Diags;
  std::unique_ptr<lang::Program> Prog = lang::parseAndCheck(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  if (Diags.hasErrors())
    return nullptr;
  return Prog;
}

/// A parsed program with its static analysis and interpreter, ready to run.
struct Session {
  std::unique_ptr<lang::Program> Prog;
  std::unique_ptr<analysis::StaticAnalysis> SA;
  std::unique_ptr<interp::Interpreter> Interp;

  explicit Session(std::string_view Source) {
    Prog = parseOrDie(Source);
    if (!Prog)
      return;
    SA = std::make_unique<analysis::StaticAnalysis>(*Prog);
    Interp = std::make_unique<interp::Interpreter>(*Prog, *SA);
  }

  bool valid() const { return Interp != nullptr; }

  interp::ExecutionTrace run(const std::vector<int64_t> &Input = {}) const {
    return Interp->run(Input);
  }

  /// Returns the first statement on source line \p Line; asserts it exists.
  StmtId stmtAtLine(uint32_t Line) const {
    StmtId Id = Prog->statementAtLine(Line);
    EXPECT_TRUE(isValidId(Id)) << "no statement at line " << Line;
    return Id;
  }

  /// Finds the Nth (1-based) instance of the statement at \p Line in \p T.
  TraceIdx instanceAtLine(const interp::ExecutionTrace &T, uint32_t Line,
                          uint32_t Nth = 1) const {
    StmtId S = Prog->statementAtLine(Line);
    for (TraceIdx I = 0; I < T.size(); ++I)
      if (T.step(I).Stmt == S && T.step(I).InstanceNo == Nth)
        return I;
    return InvalidId;
  }
};

} // namespace test
} // namespace eoe

#endif // EOE_TESTS_TESTUTIL_H
