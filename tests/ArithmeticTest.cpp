//===-- tests/ArithmeticTest.cpp - Siml numeric semantics ----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Pins Siml's numeric edge-case semantics: +, -, * wrap in two's
// complement (so host behaviour is defined whatever programs the random
// generators produce), and the two trapping divisions (by zero, and
// INT64_MIN / -1) end the run as runtime errors.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdint>

using namespace eoe;
using namespace eoe::interp;
using eoe::test::Session;

namespace {

int64_t evalOf(const char *ExprText, std::vector<int64_t> In = {}) {
  std::string Src =
      std::string("fn main() { print(") + ExprText + "); }";
  Session S(Src);
  EXPECT_TRUE(S.valid());
  ExecutionTrace T = S.run(In);
  EXPECT_EQ(T.Exit, ExitReason::Finished);
  EXPECT_EQ(T.Outputs.size(), 1u);
  return T.Outputs.empty() ? 0 : T.Outputs[0].Value;
}

TEST(ArithmeticTest, AdditionWrapsAtInt64Max) {
  // INT64_MAX as input (literals are parsed digit-by-digit; feed it in).
  Session S("fn main() { var big = input(); print(big + 1); }");
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({INT64_MAX});
  ASSERT_EQ(T.Exit, ExitReason::Finished);
  EXPECT_EQ(T.Outputs[0].Value, INT64_MIN);
}

TEST(ArithmeticTest, SubtractionAndNegationWrapAtInt64Min) {
  Session S("fn main() { var small = input(); print(small - 1, -small); }");
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({INT64_MIN});
  ASSERT_EQ(T.Exit, ExitReason::Finished);
  EXPECT_EQ(T.Outputs[0].Value, INT64_MAX);
  EXPECT_EQ(T.Outputs[1].Value, INT64_MIN) << "-INT64_MIN wraps to itself";
}

TEST(ArithmeticTest, MultiplicationWraps) {
  Session S("fn main() { var big = input(); print(big * 2); }");
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({INT64_MAX});
  ASSERT_EQ(T.Exit, ExitReason::Finished);
  EXPECT_EQ(T.Outputs[0].Value, -2);
}

TEST(ArithmeticTest, TruncatingDivisionTowardZero) {
  EXPECT_EQ(evalOf("7 / 2"), 3);
  EXPECT_EQ(evalOf("-7 / 2"), -3);
  EXPECT_EQ(evalOf("7 % 3"), 1);
  EXPECT_EQ(evalOf("-7 % 3"), -1);
}

TEST(ArithmeticTest, MinDividedByMinusOneTraps) {
  Session S("fn main() { var small = input(); print(small / -1); }");
  ASSERT_TRUE(S.valid());
  EXPECT_EQ(S.run({INT64_MIN}).Exit, ExitReason::RuntimeError);

  Session M("fn main() { var small = input(); print(small % -1); }");
  ASSERT_TRUE(M.valid());
  EXPECT_EQ(M.run({INT64_MIN}).Exit, ExitReason::RuntimeError);
}

TEST(ArithmeticTest, ComparisonChainsProduceBooleans) {
  EXPECT_EQ(evalOf("(1 < 2) + (2 < 1) + (3 == 3)"), 2);
  EXPECT_EQ(evalOf("!(5 - 5)"), 1);
}

} // namespace
