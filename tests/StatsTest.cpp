//===-- tests/StatsTest.cpp - Statistics registry tests -----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"
#include "support/ThreadPool.h"

#include "JsonLite.h"

#include <gtest/gtest.h>

#include <thread>

using namespace eoe;
using namespace eoe::support;

namespace {

TEST(StatsRegistry, FindOrCreateReturnsStableMetric) {
  StatsRegistry Reg;
  StatCounter &A = Reg.counter("interp.runs");
  A.add(3);
  // Same name resolves to the same object, even after unrelated
  // registrations force rebalancing in the name table.
  for (int I = 0; I < 100; ++I)
    Reg.counter("filler." + std::to_string(I));
  EXPECT_EQ(&A, &Reg.counter("interp.runs"));
  EXPECT_EQ(A.get(), 3u);
}

TEST(StatsRegistry, CounterTimerHistogramAreSeparateNamespaces) {
  StatsRegistry Reg;
  Reg.counter("x").add(1);
  Reg.timer("x").record(1000);
  Reg.histogram("x").record(5);
  StatsSnapshot S = Reg.snapshot();
  EXPECT_EQ(S.Counters.at("x"), 1u);
  EXPECT_EQ(S.Timers.at("x").Count, 1u);
  EXPECT_EQ(S.Histograms.at("x").Count, 1u);
}

TEST(StatsRegistry, NullTolerantHelpers) {
  // The disabled configuration: helpers and scoped timers accept null
  // and do nothing.
  StatsRegistry::add(nullptr, "a.b");
  StatsRegistry::sample(nullptr, "a.b", 7);
  { ScopedTimer T(nullptr); }

  StatsRegistry Reg;
  StatsRegistry::add(&Reg, "a.b", 2);
  StatsRegistry::sample(&Reg, "a.c", 7);
  EXPECT_EQ(Reg.counter("a.b").get(), 2u);
  EXPECT_EQ(Reg.histogram("a.c").sum(), 7u);
}

TEST(StatsRegistry, ScopedTimerRecordsOnce) {
  StatsRegistry Reg;
  StatTimer &T = Reg.timer("phase");
  {
    ScopedTimer S(&T);
    S.stop();
    // The destructor after stop() must not double-record.
  }
  EXPECT_EQ(T.count(), 1u);
}

TEST(StatsRegistry, ResetZeroesButKeepsNames) {
  StatsRegistry Reg;
  Reg.counter("a").add(5);
  Reg.timer("b").record(1000);
  Reg.histogram("c").record(9);
  Reg.reset();
  StatsSnapshot S = Reg.snapshot();
  ASSERT_TRUE(S.Counters.count("a"));
  EXPECT_EQ(S.Counters.at("a"), 0u);
  ASSERT_TRUE(S.Timers.count("b"));
  EXPECT_EQ(S.Timers.at("b").Count, 0u);
  ASSERT_TRUE(S.Histograms.count("c"));
  EXPECT_EQ(S.Histograms.at("c").Count, 0u);
  EXPECT_EQ(S.Histograms.at("c").Max, 0u);
  EXPECT_TRUE(S.Histograms.at("c").Buckets.empty());
}

TEST(StatHistogram, BucketsByBitWidth) {
  EXPECT_EQ(StatHistogram::bucketFor(0), 0u);
  EXPECT_EQ(StatHistogram::bucketFor(1), 1u);
  EXPECT_EQ(StatHistogram::bucketFor(2), 2u);
  EXPECT_EQ(StatHistogram::bucketFor(3), 2u);
  EXPECT_EQ(StatHistogram::bucketFor(4), 3u);
  EXPECT_EQ(StatHistogram::bucketFor(7), 3u);
  EXPECT_EQ(StatHistogram::bucketFor(8), 4u);
  EXPECT_EQ(StatHistogram::bucketFor(~0ull), StatHistogram::NumBuckets - 1);

  StatHistogram H;
  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 100ull})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 106u);
  EXPECT_EQ(H.max(), 100u);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 1u);
  EXPECT_EQ(H.bucket(2), 2u);
  EXPECT_EQ(H.bucket(7), 1u); // 100 has bit width 7
}

TEST(StatsRegistry, SnapshotTrimsTrailingHistogramBuckets) {
  StatsRegistry Reg;
  Reg.histogram("h").record(4); // bucket 3
  StatsSnapshot S = Reg.snapshot();
  ASSERT_EQ(S.Histograms.at("h").Buckets.size(), 4u);
  EXPECT_EQ(S.Histograms.at("h").Buckets[3], 1u);
}

TEST(StatsRegistry, JsonIsValidAndGroupedHierarchically) {
  StatsRegistry Reg;
  Reg.counter("interp.runs").add(2);
  Reg.counter("interp.steps").add(50);
  Reg.counter("verify.verifications").add(1);
  Reg.counter("flat").add(9);
  Reg.timer("locate.total_time").record(2'000'000);
  Reg.histogram("verify.batch_size").record(3);

  std::optional<jsonlite::Value> Doc = jsonlite::parse(Reg.toJson());
  ASSERT_TRUE(Doc) << Reg.toJson();
  ASSERT_TRUE(Doc->isObject());

  // Schema check of --stats=json: version tag plus the three sections,
  // each grouped by the metric name's leading dotted component.
  EXPECT_EQ(Doc->at("schema").String, "eoe-stats-v1");
  const jsonlite::Value &C = Doc->at("counters");
  ASSERT_TRUE(C.isObject());
  EXPECT_EQ(C.at("interp").at("runs").Number, 2);
  EXPECT_EQ(C.at("interp").at("steps").Number, 50);
  EXPECT_EQ(C.at("verify").at("verifications").Number, 1);
  EXPECT_EQ(C.at("flat").Number, 9);

  const jsonlite::Value &T = Doc->at("timers").at("locate").at("total_time");
  ASSERT_TRUE(T.isObject());
  EXPECT_EQ(T.at("count").Number, 1);
  EXPECT_NEAR(T.at("seconds").Number, 0.002, 1e-9);

  const jsonlite::Value &H =
      Doc->at("histograms").at("verify").at("batch_size");
  ASSERT_TRUE(H.isObject());
  EXPECT_EQ(H.at("count").Number, 1);
  EXPECT_EQ(H.at("sum").Number, 3);
  EXPECT_EQ(H.at("max").Number, 3);
  ASSERT_TRUE(H.at("buckets").isArray());
  ASSERT_EQ(H.at("buckets").Array.size(), 3u);
  EXPECT_EQ(H.at("buckets").Array[2].Number, 1);
}

TEST(StatsRegistry, JsonEscapesMetricNames) {
  StatsRegistry Reg;
  Reg.counter("weird.\"name\"\n").add(1);
  std::optional<jsonlite::Value> Doc = jsonlite::parse(Reg.toJson());
  ASSERT_TRUE(Doc) << Reg.toJson();
  EXPECT_EQ(Doc->at("counters").at("weird").at("\"name\"\n").Number, 1);
}

TEST(StatsRegistry, EmptyRegistryStillEmitsValidJson) {
  StatsRegistry Reg;
  std::optional<jsonlite::Value> Doc = jsonlite::parse(Reg.toJson());
  ASSERT_TRUE(Doc);
  EXPECT_TRUE(Doc->at("counters").Object.empty());
  EXPECT_TRUE(Doc->at("timers").Object.empty());
  EXPECT_TRUE(Doc->at("histograms").Object.empty());
}

TEST(StatsRegistry, ConcurrentIncrementsOnThreadPool) {
  StatsRegistry Reg;
  constexpr int Tasks = 16;
  constexpr int PerTask = 20'000;
  {
    ThreadPool Pool(4);
    std::vector<std::function<void()>> Work;
    for (int T = 0; T < Tasks; ++T) {
      Work.push_back([&Reg] {
        // Half the increments go through a cached handle (the hot-path
        // pattern), half through the registry lookup, interleaved with
        // histogram samples and concurrent snapshots.
        StatCounter &Hot = Reg.counter("stress.hot");
        for (int I = 0; I < PerTask; ++I) {
          Hot.add();
          StatsRegistry::add(&Reg, "stress.cold");
          if (I % 1024 == 0)
            Reg.histogram("stress.sizes").record(static_cast<uint64_t>(I));
        }
      });
    }
    // A reader runs snapshots against the writers; values it observes
    // must be monotonic for a single counter.
    Work.push_back([&Reg] {
      uint64_t Prev = 0;
      for (int I = 0; I < 200; ++I) {
        StatsSnapshot S = Reg.snapshot();
        auto It = S.Counters.find("stress.hot");
        uint64_t Cur = It == S.Counters.end() ? 0 : It->second;
        EXPECT_GE(Cur, Prev);
        Prev = Cur;
        std::this_thread::yield();
      }
    });
    Pool.runAll(std::move(Work));
  }
  EXPECT_EQ(Reg.counter("stress.hot").get(),
            static_cast<uint64_t>(Tasks) * PerTask);
  EXPECT_EQ(Reg.counter("stress.cold").get(),
            static_cast<uint64_t>(Tasks) * PerTask);
  EXPECT_EQ(Reg.histogram("stress.sizes").count(),
            static_cast<uint64_t>(Tasks) * ((PerTask + 1023) / 1024));
}

} // namespace
