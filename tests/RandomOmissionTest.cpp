//===-- tests/RandomOmissionTest.cpp - Pipeline hammer test --------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// End-to-end property: inject a synthetic execution omission fault into a
// *random* program and require the whole pipeline to behave like the
// paper promises -- the dynamic slice misses the root cause, the relevant
// slice captures it, and the demand-driven locator finds it. This
// exercises the technique far beyond the nine curated workload faults.
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"
#include "lang/Parser.h"
#include "RandomProgram.h"
#include "support/Diagnostic.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::interp;
using namespace eoe::test;

namespace {

class RootOnlyOracle : public slicing::Oracle {
public:
  explicit RootOnlyOracle(StmtId Root) : Root(Root) {}
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
};

class RandomOmissionFault : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomOmissionFault, PipelineLocatesInjectedOmissions) {
  RandomProgramGenerator Gen(GetParam());
  auto Variant = Gen.generateOmission();

  DiagnosticEngine Diags;
  auto Fixed = lang::parseAndCheck(Variant.FixedSource, Diags);
  ASSERT_TRUE(Fixed) << Diags.str() << "\n" << Variant.FixedSource;
  auto Faulty = lang::parseAndCheck(Variant.FaultySource, Diags);
  ASSERT_TRUE(Faulty) << Diags.str();

  // Expected outputs come from the fixed program.
  analysis::StaticAnalysis FixedSA(*Fixed);
  Interpreter FixedInterp(*Fixed, FixedSA);
  ExecutionTrace FixedRun = FixedInterp.run(Variant.Input);
  ASSERT_EQ(FixedRun.Exit, ExitReason::Finished);

  core::DebugSession Session(*Faulty, Variant.Input,
                             FixedRun.outputValues(), {});
  if (!Session.hasFailure()) {
    // The random surroundings overwrote the observed globals after the
    // skeleton; the fault is masked on this input. Nothing to assert.
    GTEST_SKIP() << "fault masked by later definitions";
  }

  StmtId Root = Faulty->statementAtLine(Variant.RootCauseLine);
  ASSERT_TRUE(isValidId(Root));

  // The omission signature: DS misses the root, RS captures it.
  EXPECT_FALSE(Session.dynamicSlice().containsStmt(Session.trace(), Root))
      << "seed " << GetParam() << ": not an omission error?";
  EXPECT_TRUE(
      Session.relevantSlice().Slice.containsStmt(Session.trace(), Root))
      << "seed " << GetParam();

  // And the paper's technique finds it.
  RootOnlyOracle Oracle(Root);
  core::LocateReport R = Session.locate(Oracle);
  EXPECT_TRUE(R.RootCauseFound) << "seed " << GetParam() << "\n"
                                << Variant.FaultySource;
  EXPECT_GE(R.ExpandedEdges, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOmissionFault,
                         ::testing::Range<uint64_t>(100, 130));

} // namespace
