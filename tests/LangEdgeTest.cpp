//===-- tests/LangEdgeTest.cpp - Frontend edge cases ----------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "lang/AST.h"
#include "lang/Parser.h"

#include "support/Casting.h"
#include "support/Diagnostic.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::lang;
using eoe::test::parseOrDie;
using eoe::test::Session;

namespace {

TEST(LangEdgeTest, StatementAtLinePicksTheFirstOnALine) {
  auto Prog = parseOrDie("fn main() { var a = 1; var b = 2; print(a + b); }");
  ASSERT_TRUE(Prog);
  StmtId S = Prog->statementAtLine(1);
  ASSERT_TRUE(isValidId(S));
  EXPECT_EQ(cast<VarDeclStmt>(Prog->statement(S))->name(), "a");
  EXPECT_FALSE(isValidId(Prog->statementAtLine(99)));
}

TEST(LangEdgeTest, FindFunctionIsExactMatch) {
  auto Prog = parseOrDie("fn helper() { return 1; }\n"
                         "fn main() { print(helper()); }");
  ASSERT_TRUE(Prog);
  EXPECT_TRUE(isValidId(Prog->findFunction("helper")));
  EXPECT_FALSE(isValidId(Prog->findFunction("help")));
  EXPECT_FALSE(isValidId(Prog->findFunction("helperr")));
}

TEST(LangEdgeTest, ConstantEvaluationHandlesNegationChains) {
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck("var g = --5;\nfn main() { print(g); }",
                                  Diags);
  ASSERT_TRUE(Prog) << Diags.str();
  int64_t Value = 0;
  EXPECT_TRUE(evaluateConstant(Prog->globals()[0]->init(), Value));
  EXPECT_EQ(Value, 5);
}

TEST(LangEdgeTest, DeeplyNestedExpressionsParse) {
  std::string Expr = "1";
  for (int I = 0; I < 200; ++I)
    Expr = "(" + Expr + " + 1)";
  Session S("fn main() { print(" + std::string(Expr) + "); }");
  ASSERT_TRUE(S.valid());
  EXPECT_EQ(S.run().outputValues(), (std::vector<int64_t>{201}));
}

TEST(LangEdgeTest, DeeplyNestedBlocksParse) {
  std::string Src = "fn main() { var x = 0;\n";
  for (int I = 0; I < 100; ++I)
    Src += "if (x == 0) {\n";
  Src += "x = 7;\n";
  for (int I = 0; I < 100; ++I)
    Src += "}\n";
  Src += "print(x); }";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  EXPECT_EQ(S.run().outputValues(), (std::vector<int64_t>{7}));
}

TEST(LangEdgeTest, MutualRecursionResolves) {
  const char *Src = "fn isEven(n) {\n"
                    "if (n == 0) { return 1; }\n"
                    "return isOdd(n - 1);\n"
                    "}\n"
                    "fn isOdd(n) {\n"
                    "if (n == 0) { return 0; }\n"
                    "return isEven(n - 1);\n"
                    "}\n"
                    "fn main() { print(isEven(10), isOdd(10)); }";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  EXPECT_EQ(S.run().outputValues(), (std::vector<int64_t>{1, 0}));
}

TEST(LangEdgeTest, ShadowedVariablesResolveInnermost) {
  const char *Src = "var x = 1;\n"
                    "fn main() {\n"
                    "var x = 2;\n"
                    "if (1) {\n"
                    "var x = 3;\n"
                    "print(x);\n"
                    "}\n"
                    "print(x);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  EXPECT_EQ(S.run().outputValues(), (std::vector<int64_t>{3, 2}));
}

TEST(LangEdgeTest, ParserRecoversAndReportsMultipleErrors) {
  DiagnosticEngine Diags;
  lang::parseAndCheck("fn main() {\n"
                      "var x = ;\n"
                      "y = 3;\n"
                      "}",
                      Diags);
  EXPECT_GE(Diags.errorCount(), 1u);
}

TEST(LangEdgeTest, ErrorCascadesAreCapped) {
  // A hopeless input must not produce unbounded diagnostics or hang.
  std::string Garbage;
  for (int I = 0; I < 500; ++I)
    Garbage += "@ ";
  DiagnosticEngine Diags;
  lang::parseAndCheck(Garbage, Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_LE(Diags.diagnostics().size(), 600u);
}

TEST(LangEdgeTest, EmptyFunctionBodiesAreLegal) {
  Session S("fn noop() { }\nfn main() { noop(); print(1); }");
  ASSERT_TRUE(S.valid());
  EXPECT_EQ(S.run().outputValues(), (std::vector<int64_t>{1}));
}

TEST(LangEdgeTest, CallResultsNestAsArguments) {
  const char *Src = "fn add(a, b) { return a + b; }\n"
                    "fn main() { print(add(add(1, 2), add(3, add(4, 5)))); }";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  EXPECT_EQ(S.run().outputValues(), (std::vector<int64_t>{15}));
}

} // namespace
