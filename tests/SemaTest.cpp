//===-- tests/SemaTest.cpp - Semantic checker unit tests ----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "support/Diagnostic.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::lang;
using eoe::test::parseOrDie;

namespace {

bool failsSema(std::string_view Src) {
  DiagnosticEngine Diags;
  return lang::parseAndCheck(Src, Diags) == nullptr;
}

TEST(SemaTest, ResolvesLocalsAndGlobals) {
  auto Prog = parseOrDie("var g = 7; fn main() { var x = g; print(x); }");
  ASSERT_TRUE(Prog);
  const VarInfo &G = Prog->variable(Prog->globals()[0]->var());
  EXPECT_TRUE(G.isGlobal());
  EXPECT_EQ(G.Name, "g");
  const Function *Main = Prog->function(Prog->mainFunction());
  EXPECT_EQ(Main->frameSlots(), 1u);
}

TEST(SemaTest, FrameLayoutCountsArrays) {
  auto Prog =
      parseOrDie("fn main() { var a[10]; var x = 0; var b[5]; print(x); }");
  ASSERT_TRUE(Prog);
  EXPECT_EQ(Prog->function(Prog->mainFunction())->frameSlots(), 16u);
}

TEST(SemaTest, ParamsGetSlots) {
  auto Prog = parseOrDie("fn f(a, b) { return a + b; }\n"
                         "fn main() { print(f(1, 2)); }");
  ASSERT_TRUE(Prog);
  const Function *F = Prog->function(Prog->findFunction("f"));
  ASSERT_EQ(F->params().size(), 2u);
  EXPECT_EQ(Prog->variable(F->params()[0]).Slot, 0u);
  EXPECT_EQ(Prog->variable(F->params()[1]).Slot, 1u);
}

TEST(SemaTest, InnerScopesShadowOuter) {
  auto Prog = parseOrDie(
      "fn main() { var x = 1; if (1) { var x = 2; print(x); } print(x); }");
  ASSERT_TRUE(Prog);
  // Two distinct variables named x.
  int Count = 0;
  for (const VarInfo &V : Prog->variables())
    if (V.Name == "x")
      ++Count;
  EXPECT_EQ(Count, 2);
}

TEST(SemaTest, ScopeEndsWithBlock) {
  EXPECT_TRUE(failsSema(
      "fn main() { if (1) { var x = 2; } print(x); }"));
}

TEST(SemaTest, UnknownVariableIsAnError) {
  EXPECT_TRUE(failsSema("fn main() { print(nope); }"));
}

TEST(SemaTest, UnknownFunctionIsAnError) {
  EXPECT_TRUE(failsSema("fn main() { nope(); }"));
}

TEST(SemaTest, ArityMismatchIsAnError) {
  EXPECT_TRUE(failsSema("fn f(a) { return a; } fn main() { f(1, 2); }"));
}

TEST(SemaTest, BreakOutsideLoopIsAnError) {
  EXPECT_TRUE(failsSema("fn main() { break; }"));
}

TEST(SemaTest, ContinueOutsideLoopIsAnError) {
  EXPECT_TRUE(failsSema("fn main() { if (1) { continue; } }"));
}

TEST(SemaTest, BreakInsideLoopIsAccepted) {
  EXPECT_FALSE(failsSema("fn main() { while (1) { break; } }"));
}

TEST(SemaTest, ArrayUsedAsScalarIsAnError) {
  EXPECT_TRUE(failsSema("fn main() { var a[3]; a = 1; }"));
}

TEST(SemaTest, ScalarIndexedIsAnError) {
  EXPECT_TRUE(failsSema("fn main() { var x = 0; x[0] = 1; }"));
}

TEST(SemaTest, DuplicateLocalIsAnError) {
  EXPECT_TRUE(failsSema("fn main() { var x = 1; var x = 2; }"));
}

TEST(SemaTest, DuplicateGlobalIsAnError) {
  EXPECT_TRUE(failsSema("var g; var g; fn main() { print(1); }"));
}

TEST(SemaTest, DuplicateFunctionIsAnError) {
  EXPECT_TRUE(failsSema("fn f() { return 0; } fn f() { return 1; }\n"
                        "fn main() { print(1); }"));
}

TEST(SemaTest, MissingMainIsAnError) {
  EXPECT_TRUE(failsSema("fn helper() { return 0; }"));
}

TEST(SemaTest, MainWithParamsIsAnError) {
  EXPECT_TRUE(failsSema("fn main(x) { print(x); }"));
}

TEST(SemaTest, GlobalWithNonConstantInitIsAnError) {
  EXPECT_TRUE(failsSema("var g = 1 + 2; fn main() { print(g); }"));
}

TEST(SemaTest, ArrayInitializerIsAnError) {
  EXPECT_TRUE(failsSema("fn main() { var a[3] = 1; }"));
}

} // namespace
