//===-- tests/ParserTest.cpp - Parser unit tests ------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "lang/PrettyPrinter.h"
#include "support/Diagnostic.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::lang;
using eoe::test::parseOrDie;

namespace {

/// Parses (without Sema) and returns the program; fails the test on error.
std::unique_ptr<Program> parseOnly(std::string_view Src) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  Parser P(L.lexAll(), Diags);
  auto Prog = P.parseProgram();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Prog;
}

TEST(ParserTest, MinimalProgram) {
  auto Prog = parseOrDie("fn main() { print(1); }");
  ASSERT_TRUE(Prog);
  ASSERT_EQ(Prog->functions().size(), 1u);
  EXPECT_EQ(Prog->functions()[0]->name(), "main");
  ASSERT_EQ(Prog->functions()[0]->body().size(), 1u);
  EXPECT_EQ(Prog->functions()[0]->body()[0]->kind(), Stmt::Kind::Print);
}

TEST(ParserTest, GlobalDeclarations) {
  auto Prog = parseOrDie("var g = 3; var buf[16]; fn main() { print(g); }");
  ASSERT_TRUE(Prog);
  ASSERT_EQ(Prog->globals().size(), 2u);
  EXPECT_EQ(Prog->globals()[0]->name(), "g");
  EXPECT_FALSE(Prog->globals()[0]->isArray());
  EXPECT_EQ(Prog->globals()[1]->arraySize(), 16);
}

TEST(ParserTest, PrecedenceReflectedInTree) {
  auto Prog = parseOnly("fn main() { var x = 1 + 2 * 3; }");
  auto *Decl = cast<VarDeclStmt>(Prog->functions()[0]->body()[0]);
  EXPECT_EQ(exprToString(Decl->init()), "(1 + (2 * 3))");
}

TEST(ParserTest, ComparisonBindsLooserThanArithmetic) {
  auto Prog = parseOnly("fn main() { var x = 1 + 2 < 3 * 4; }");
  auto *Decl = cast<VarDeclStmt>(Prog->functions()[0]->body()[0]);
  EXPECT_EQ(exprToString(Decl->init()), "((1 + 2) < (3 * 4))");
}

TEST(ParserTest, LogicalOperatorsBindLoosest) {
  auto Prog = parseOnly("fn main() { var x = a == 1 && b < 2 || c; }");
  auto *Decl = cast<VarDeclStmt>(Prog->functions()[0]->body()[0]);
  EXPECT_EQ(exprToString(Decl->init()), "(((a == 1) && (b < 2)) || c)");
}

TEST(ParserTest, UnaryOperators) {
  auto Prog = parseOnly("fn main() { var x = -a + !b; }");
  auto *Decl = cast<VarDeclStmt>(Prog->functions()[0]->body()[0]);
  EXPECT_EQ(exprToString(Decl->init()), "(-(a) + !(b))");
}

TEST(ParserTest, IfElseChain) {
  auto Prog = parseOnly("fn main() { if (a) { x = 1; } else if (b) { x = 2; }"
                        " else { x = 3; } }");
  auto *If = cast<IfStmt>(Prog->functions()[0]->body()[0]);
  ASSERT_EQ(If->elseBody().size(), 1u);
  EXPECT_EQ(If->elseBody()[0]->kind(), Stmt::Kind::If);
}

TEST(ParserTest, WhileWithBreakContinue) {
  auto Prog = parseOnly(
      "fn main() { while (1) { if (a) { break; } continue; } }");
  auto *W = cast<WhileStmt>(Prog->functions()[0]->body()[0]);
  ASSERT_EQ(W->body().size(), 2u);
  EXPECT_EQ(W->body()[1]->kind(), Stmt::Kind::Continue);
}

TEST(ParserTest, CallsAsStatementsAndExpressions) {
  auto Prog = parseOrDie("fn helper(a, b) { return a + b; }\n"
                         "fn main() { helper(1, 2); var x = helper(3, 4); }");
  ASSERT_TRUE(Prog);
  const auto &Body = Prog->function(Prog->findFunction("main"))->body();
  EXPECT_EQ(Body[0]->kind(), Stmt::Kind::CallStmt);
  auto *Decl = cast<VarDeclStmt>(Body[1]);
  EXPECT_EQ(Decl->init()->kind(), Expr::Kind::Call);
}

TEST(ParserTest, ArrayReadAndWrite) {
  auto Prog = parseOnly("fn main() { var a[4]; a[0] = 1; var x = a[0] + 1; }");
  const auto &Body = Prog->functions()[0]->body();
  EXPECT_EQ(Body[1]->kind(), Stmt::Kind::ArrayAssign);
}

TEST(ParserTest, StatementIdsAreDense) {
  auto Prog = parseOnly("fn main() { x = 1; y = 2; z = 3; }");
  for (StmtId I = 0; I < Prog->statements().size(); ++I)
    EXPECT_EQ(Prog->statement(I)->id(), I);
}

TEST(ParserTest, ExpressionIdsAreDense) {
  auto Prog = parseOnly("fn main() { x = 1 + 2 * 3; }");
  for (ExprId I = 0; I < Prog->expressions().size(); ++I)
    EXPECT_EQ(Prog->expression(I)->id(), I);
}

TEST(ParserTest, MissingSemicolonIsAnError) {
  DiagnosticEngine Diags;
  Lexer L("fn main() { x = 1 }", Diags);
  Parser P(L.lexAll(), Diags);
  P.parseProgram();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, TopLevelGarbageIsAnError) {
  DiagnosticEngine Diags;
  Lexer L("notakeyword", Diags);
  Parser P(L.lexAll(), Diags);
  P.parseProgram();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, NegativeArraySizeIsAnError) {
  DiagnosticEngine Diags;
  Lexer L("fn main() { var a[0]; }", Diags);
  Parser P(L.lexAll(), Diags);
  P.parseProgram();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, RoundTripThroughPrettyPrinter) {
  const char *Src = "var g = 1;\n"
                    "fn add(a, b) { return a + b; }\n"
                    "fn main() { var i = 0; while (i < 3) { if (i % 2 == 0) {"
                    " print(add(g, i)); } i = i + 1; } }";
  auto Prog = parseOrDie(Src);
  ASSERT_TRUE(Prog);
  std::string Printed = programToString(*Prog);
  auto Reparsed = parseOrDie(Printed);
  ASSERT_TRUE(Reparsed);
  EXPECT_EQ(programToString(*Reparsed), Printed);
}

} // namespace
