//===-- tests/AnalysisTest.cpp - CFG / dominators / control dependence --------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/ControlDependence.h"
#include "analysis/Dominators.h"
#include "analysis/StaticAnalysis.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::analysis;
using eoe::test::parseOrDie;

namespace {

/// Convenience: true if Parents contains (Pred, Branch).
bool hasParent(const std::vector<ControlDependence::Parent> &Parents,
               StmtId Pred, bool Branch) {
  for (const auto &P : Parents)
    if (P.Pred == Pred && P.Branch == Branch)
      return true;
  return false;
}

TEST(CFGTest, StraightLineChains) {
  auto Prog = parseOrDie("fn main() { var x = 1; x = 2; print(x); }");
  ASSERT_TRUE(Prog);
  CFG G = CFG::build(*Prog, *Prog->functions()[0]);
  // Entry, Exit, 3 statements.
  EXPECT_EQ(G.size(), 5u);
  uint32_t N = G.node(CFG::EntryNode).Succs[0];
  EXPECT_EQ(Prog->statement(G.node(N).Stmt)->kind(),
            lang::Stmt::Kind::VarDecl);
  // The chain ends at Exit.
  uint32_t Last = N;
  while (!G.node(Last).Succs.empty() && G.node(Last).Succs[0] != CFG::ExitNode)
    Last = G.node(Last).Succs[0];
  EXPECT_EQ(G.node(Last).Succs[0], CFG::ExitNode);
}

TEST(CFGTest, IfHasTwoSuccessors) {
  auto Prog = parseOrDie(
      "fn main() { var c = 0; if (c) { print(1); } else { print(2); } }");
  ASSERT_TRUE(Prog);
  CFG G = CFG::build(*Prog, *Prog->functions()[0]);
  StmtId IfStmtId = Prog->statementAtLine(1); // all on line 1; find the if
  // Locate the if node by kind instead.
  (void)IfStmtId;
  uint32_t IfNode = InvalidId;
  for (uint32_t I = 0; I < G.size(); ++I)
    if (isValidId(G.node(I).Stmt) &&
        Prog->statement(G.node(I).Stmt)->kind() == lang::Stmt::Kind::If)
      IfNode = I;
  ASSERT_NE(IfNode, InvalidId);
  EXPECT_TRUE(G.isBranch(IfNode));
  EXPECT_NE(G.branchTarget(IfNode, true), G.branchTarget(IfNode, false));
}

TEST(CFGTest, WhileLoopHasBackEdge) {
  auto Prog = parseOrDie(
      "fn main() { var i = 0; while (i < 3) { i = i + 1; } print(i); }");
  ASSERT_TRUE(Prog);
  CFG G = CFG::build(*Prog, *Prog->functions()[0]);
  uint32_t WhileNode = InvalidId, BodyNode = InvalidId;
  for (uint32_t I = 0; I < G.size(); ++I) {
    if (!isValidId(G.node(I).Stmt))
      continue;
    auto K = Prog->statement(G.node(I).Stmt)->kind();
    if (K == lang::Stmt::Kind::While)
      WhileNode = I;
    if (K == lang::Stmt::Kind::Assign)
      BodyNode = I;
  }
  ASSERT_NE(WhileNode, InvalidId);
  ASSERT_NE(BodyNode, InvalidId);
  EXPECT_EQ(G.branchTarget(WhileNode, true), BodyNode);
  EXPECT_EQ(G.node(BodyNode).Succs[0], WhileNode);
}

TEST(CFGTest, BreakJumpsPastLoop) {
  auto Prog = parseOrDie("fn main() { while (1) { break; } print(1); }");
  ASSERT_TRUE(Prog);
  CFG G = CFG::build(*Prog, *Prog->functions()[0]);
  uint32_t BreakNode = InvalidId, PrintNode = InvalidId;
  for (uint32_t I = 0; I < G.size(); ++I) {
    if (!isValidId(G.node(I).Stmt))
      continue;
    auto K = Prog->statement(G.node(I).Stmt)->kind();
    if (K == lang::Stmt::Kind::Break)
      BreakNode = I;
    if (K == lang::Stmt::Kind::Print)
      PrintNode = I;
  }
  ASSERT_NE(BreakNode, InvalidId);
  EXPECT_EQ(G.node(BreakNode).Succs[0], PrintNode);
}

TEST(CFGTest, ReturnJumpsToExit) {
  auto Prog = parseOrDie("fn main() { return 1; }");
  ASSERT_TRUE(Prog);
  CFG G = CFG::build(*Prog, *Prog->functions()[0]);
  uint32_t Ret = G.node(CFG::EntryNode).Succs[0];
  EXPECT_EQ(G.node(Ret).Succs[0], CFG::ExitNode);
}

TEST(DominatorsTest, DiamondGraph) {
  //      0
  //    /   \.
  //   1     2
  //    \   /
  //      3
  std::vector<std::vector<uint32_t>> Succs = {{1, 2}, {3}, {3}, {}};
  std::vector<std::vector<uint32_t>> Preds = {{}, {0}, {0}, {1, 2}};
  auto IDom = computeImmediateDominators(0, Succs, Preds);
  EXPECT_EQ(IDom[0], 0u);
  EXPECT_EQ(IDom[1], 0u);
  EXPECT_EQ(IDom[2], 0u);
  EXPECT_EQ(IDom[3], 0u);
  EXPECT_TRUE(dominates(IDom, 0, 3, 0));
  EXPECT_FALSE(dominates(IDom, 1, 3, 0));
}

TEST(DominatorsTest, ChainGraph) {
  std::vector<std::vector<uint32_t>> Succs = {{1}, {2}, {3}, {}};
  std::vector<std::vector<uint32_t>> Preds = {{}, {0}, {1}, {2}};
  auto IDom = computeImmediateDominators(0, Succs, Preds);
  EXPECT_EQ(IDom[3], 2u);
  EXPECT_EQ(IDom[2], 1u);
  EXPECT_TRUE(dominates(IDom, 1, 3, 0));
}

TEST(DominatorsTest, LoopGraph) {
  // 0 -> 1 -> 2 -> 1, 2 -> 3
  std::vector<std::vector<uint32_t>> Succs = {{1}, {2}, {1, 3}, {}};
  std::vector<std::vector<uint32_t>> Preds = {{}, {0, 2}, {1}, {2}};
  auto IDom = computeImmediateDominators(0, Succs, Preds);
  EXPECT_EQ(IDom[1], 0u);
  EXPECT_EQ(IDom[2], 1u);
  EXPECT_EQ(IDom[3], 2u);
}

TEST(DominatorsTest, UnreachableNodesGetInvalid) {
  std::vector<std::vector<uint32_t>> Succs = {{1}, {}, {1}};
  std::vector<std::vector<uint32_t>> Preds = {{}, {0, 2}, {}};
  auto IDom = computeImmediateDominators(0, Succs, Preds);
  EXPECT_EQ(IDom[2], InvalidId);
}

TEST(ControlDependenceTest, ThenBranchDependsOnIf) {
  auto Prog = parseOrDie("fn main() {\n"
                         "var c = 0;\n"
                         "if (c) {\n"
                         "print(1);\n"
                         "}\n"
                         "print(2);\n"
                         "}");
  ASSERT_TRUE(Prog);
  StaticAnalysis SA(*Prog);
  StmtId If = Prog->statementAtLine(3);
  StmtId Print1 = Prog->statementAtLine(4);
  StmtId Print2 = Prog->statementAtLine(6);
  EXPECT_TRUE(hasParent(SA.cdParents(Print1), If, true));
  EXPECT_TRUE(SA.cdParents(Print2).empty());
  // Region query: print(1) is guarded by (if, true) but not (if, false).
  EXPECT_TRUE(SA.cdRegionContains(If, true, Print1));
  EXPECT_FALSE(SA.cdRegionContains(If, false, Print1));
}

TEST(ControlDependenceTest, ElseBranchDependsOnIfFalse) {
  auto Prog = parseOrDie("fn main() {\n"
                         "var c = 0;\n"
                         "if (c) {\n"
                         "print(1);\n"
                         "} else {\n"
                         "print(2);\n"
                         "}\n"
                         "}");
  ASSERT_TRUE(Prog);
  StaticAnalysis SA(*Prog);
  StmtId If = Prog->statementAtLine(3);
  StmtId Print2 = Prog->statementAtLine(6);
  EXPECT_TRUE(hasParent(SA.cdParents(Print2), If, false));
}

TEST(ControlDependenceTest, LoopBodyAndLoopSelfDependence) {
  auto Prog = parseOrDie("fn main() {\n"
                         "var i = 0;\n"
                         "while (i < 3) {\n"
                         "i = i + 1;\n"
                         "}\n"
                         "print(i);\n"
                         "}");
  ASSERT_TRUE(Prog);
  StaticAnalysis SA(*Prog);
  StmtId While = Prog->statementAtLine(3);
  StmtId Body = Prog->statementAtLine(4);
  StmtId After = Prog->statementAtLine(6);
  EXPECT_TRUE(hasParent(SA.cdParents(Body), While, true));
  // The loop predicate re-tests itself: classic self control dependence.
  EXPECT_TRUE(hasParent(SA.cdParents(While), While, true));
  EXPECT_TRUE(SA.cdParents(After).empty());
}

TEST(ControlDependenceTest, StatementsAfterConditionalBreak) {
  auto Prog = parseOrDie("fn main() {\n"
                         "var i = 0;\n"
                         "var c = 0;\n"
                         "while (i < 3) {\n"
                         "if (c) {\n"
                         "break;\n"
                         "}\n"
                         "i = i + 1;\n"
                         "}\n"
                         "print(i);\n"
                         "}");
  ASSERT_TRUE(Prog);
  StaticAnalysis SA(*Prog);
  StmtId If = Prog->statementAtLine(5);
  StmtId Inc = Prog->statementAtLine(8);
  StmtId While = Prog->statementAtLine(4);
  // i = i + 1 executes only when the break condition is false.
  EXPECT_TRUE(hasParent(SA.cdParents(Inc), If, false));
  // The next loop test also depends on not breaking.
  EXPECT_TRUE(hasParent(SA.cdParents(While), If, false));
}

TEST(StaticAnalysisTest, DefsIndexAndReachability) {
  auto Prog = parseOrDie("var g = 0;\n"
                         "fn main() {\n"
                         "g = 1;\n"
                         "print(g);\n"
                         "g = 2;\n"
                         "}");
  ASSERT_TRUE(Prog);
  StaticAnalysis SA(*Prog);
  VarId G = Prog->globals()[0]->var();
  // Three defs: the global decl, and the two assignments.
  EXPECT_EQ(SA.defsOfVar(G).size(), 3u);
  StmtId A1 = Prog->statementAtLine(3);
  StmtId P = Prog->statementAtLine(4);
  StmtId A2 = Prog->statementAtLine(5);
  EXPECT_TRUE(SA.mayReach(A1, P));
  EXPECT_FALSE(SA.mayReach(A2, P));
  EXPECT_EQ(SA.definedVar(A1), G);
  EXPECT_EQ(SA.definedVar(P), InvalidId);
}

TEST(StaticAnalysisTest, LoopMakesStatementsMutuallyReachable) {
  auto Prog = parseOrDie("fn main() {\n"
                         "var i = 0;\n"
                         "while (i < 3) {\n"
                         "var a = 1;\n"
                         "var b = 2;\n"
                         "i = i + 1;\n"
                         "}\n"
                         "}");
  ASSERT_TRUE(Prog);
  StaticAnalysis SA(*Prog);
  StmtId A = Prog->statementAtLine(4);
  StmtId B = Prog->statementAtLine(5);
  EXPECT_TRUE(SA.mayReach(A, B));
  EXPECT_TRUE(SA.mayReach(B, A)); // around the back edge
  EXPECT_TRUE(SA.mayReach(A, A)); // on a cycle
}

TEST(StaticAnalysisTest, FunctionOfMapsStatements) {
  auto Prog = parseOrDie("fn f() { return 1; }\n"
                         "fn main() { print(f()); }");
  ASSERT_TRUE(Prog);
  StaticAnalysis SA(*Prog);
  FuncId F = Prog->findFunction("f");
  FuncId Main = Prog->findFunction("main");
  EXPECT_EQ(SA.statementCount(F), 1u);
  EXPECT_EQ(SA.statementCount(Main), 1u);
}

} // namespace
