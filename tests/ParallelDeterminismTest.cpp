//===-- tests/ParallelDeterminismTest.cpp - Threads=1 vs Threads=4 ------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// The parallel verification engine's contract: locateFault with Threads=4
// is *bit-identical* to the serial reference engine (Threads=1) -- same
// Table 3 counters, same verified implicit edges in the same order, same
// final pruned slice -- on randomly generated omission faults. Only
// wall-clock time may differ.
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"
#include "lang/Parser.h"
#include "RandomProgram.h"
#include "support/Diagnostic.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::interp;
using namespace eoe::test;

namespace {

class RootOnlyOracle : public slicing::Oracle {
public:
  explicit RootOnlyOracle(StmtId Root) : Root(Root) {}
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
};

/// Everything a locate() run produces that must be thread-count
/// invariant.
struct LocateOutcome {
  core::LocateReport Report;
  std::vector<ddg::DepGraph::ImplicitEdge> Edges;
  std::vector<bool> Chain;
};

LocateOutcome locateWithThreads(const lang::Program &Faulty,
                                const std::vector<int64_t> &Input,
                                const std::vector<int64_t> &Expected,
                                StmtId Root, unsigned Threads) {
  core::DebugSession::Config C;
  C.Threads = Threads;
  core::DebugSession Session(Faulty, Input, Expected, {}, C);
  EXPECT_TRUE(Session.hasFailure());
  RootOnlyOracle Oracle(Root);
  LocateOutcome O;
  O.Report = Session.locate(Oracle);
  O.Edges = Session.graph().implicitEdges();
  O.Chain = Session.failureChain(Root);
  return O;
}

class ParallelDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDeterminism, SerialAndParallelLocateAreBitIdentical) {
  RandomProgramGenerator Gen(GetParam());
  auto Variant = Gen.generateOmission();

  DiagnosticEngine Diags;
  auto Fixed = lang::parseAndCheck(Variant.FixedSource, Diags);
  ASSERT_TRUE(Fixed) << Diags.str();
  auto Faulty = lang::parseAndCheck(Variant.FaultySource, Diags);
  ASSERT_TRUE(Faulty) << Diags.str();

  analysis::StaticAnalysis FixedSA(*Fixed);
  Interpreter FixedInterp(*Fixed, FixedSA);
  ExecutionTrace FixedRun = FixedInterp.run(Variant.Input);
  ASSERT_EQ(FixedRun.Exit, ExitReason::Finished);
  std::vector<int64_t> Expected = FixedRun.outputValues();

  {
    // Masked faults have nothing to locate; mirror RandomOmissionTest.
    core::DebugSession Probe(*Faulty, Variant.Input, Expected, {});
    if (!Probe.hasFailure())
      GTEST_SKIP() << "fault masked by later definitions";
  }

  StmtId Root = Faulty->statementAtLine(Variant.RootCauseLine);
  ASSERT_TRUE(isValidId(Root));

  LocateOutcome Serial =
      locateWithThreads(*Faulty, Variant.Input, Expected, Root, 1);
  LocateOutcome Parallel =
      locateWithThreads(*Faulty, Variant.Input, Expected, Root, 4);

  const char *Seed = "seed ";
  // Table 3 counters.
  EXPECT_EQ(Serial.Report.RootCauseFound, Parallel.Report.RootCauseFound)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.UserPrunings, Parallel.Report.UserPrunings)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.Verifications, Parallel.Report.Verifications)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.Reexecutions, Parallel.Report.Reexecutions)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.Iterations, Parallel.Report.Iterations)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.ExpandedEdges, Parallel.Report.ExpandedEdges)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.StrongEdges, Parallel.Report.StrongEdges)
      << Seed << GetParam();

  // The final pruned slice (IPS): same instances in the same rank order.
  EXPECT_EQ(Serial.Report.FinalPrunedSlice, Parallel.Report.FinalPrunedSlice)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.IPSStats.StaticStmts,
            Parallel.Report.IPSStats.StaticStmts)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.IPSStats.DynamicInstances,
            Parallel.Report.IPSStats.DynamicInstances)
      << Seed << GetParam();

  // Verdicts, observed through the verified implicit edges: same edges,
  // same strong/plain classification, same insertion order.
  ASSERT_EQ(Serial.Edges.size(), Parallel.Edges.size()) << Seed << GetParam();
  for (size_t I = 0; I < Serial.Edges.size(); ++I) {
    EXPECT_EQ(Serial.Edges[I].Use, Parallel.Edges[I].Use)
        << Seed << GetParam() << " edge " << I;
    EXPECT_EQ(Serial.Edges[I].Pred, Parallel.Edges[I].Pred)
        << Seed << GetParam() << " edge " << I;
    EXPECT_EQ(Serial.Edges[I].Strong, Parallel.Edges[I].Strong)
        << Seed << GetParam() << " edge " << I;
  }

  // And the derived failure-inducing chain (OS) agrees.
  EXPECT_EQ(Serial.Chain, Parallel.Chain) << Seed << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism,
                         ::testing::Range<uint64_t>(100, 110));

} // namespace
