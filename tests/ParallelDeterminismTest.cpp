//===-- tests/ParallelDeterminismTest.cpp - Threads=1 vs Threads=4 ------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// The parallel verification engine's contract: locateFault with Threads=4
// is *bit-identical* to the serial reference engine (Threads=1) -- same
// Table 3 counters, same verified implicit edges in the same order, same
// final pruned slice -- on randomly generated omission faults. Only
// wall-clock time may differ.
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"
#include "lang/Parser.h"
#include "RandomProgram.h"
#include "support/Diagnostic.h"
#include "support/Stats.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace eoe;
using namespace eoe::interp;
using namespace eoe::test;

namespace {

class RootOnlyOracle : public slicing::Oracle {
public:
  explicit RootOnlyOracle(StmtId Root) : Root(Root) {}
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
};

/// Everything a locate() run produces that must be thread-count
/// invariant.
struct LocateOutcome {
  core::LocateReport Report;
  std::vector<ddg::DepGraph::ImplicitEdge> Edges;
  std::vector<bool> Chain;
};

LocateOutcome locateWithThreads(const lang::Program &Faulty,
                                const std::vector<int64_t> &Input,
                                const std::vector<int64_t> &Expected,
                                StmtId Root, unsigned Threads,
                                support::StatsRegistry *Stats = nullptr) {
  core::DebugSession::Config C;
  C.Threads = Threads;
  C.Stats = Stats;
  core::DebugSession Session(Faulty, Input, Expected, {}, C);
  EXPECT_TRUE(Session.hasFailure());
  RootOnlyOracle Oracle(Root);
  LocateOutcome O;
  O.Report = Session.locate(Oracle);
  O.Edges = Session.graph().implicitEdges();
  O.Chain = Session.failureChain(Root);
  return O;
}

class ParallelDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDeterminism, SerialAndParallelLocateAreBitIdentical) {
  RandomProgramGenerator Gen(GetParam());
  auto Variant = Gen.generateOmission();

  DiagnosticEngine Diags;
  auto Fixed = lang::parseAndCheck(Variant.FixedSource, Diags);
  ASSERT_TRUE(Fixed) << Diags.str();
  auto Faulty = lang::parseAndCheck(Variant.FaultySource, Diags);
  ASSERT_TRUE(Faulty) << Diags.str();

  analysis::StaticAnalysis FixedSA(*Fixed);
  Interpreter FixedInterp(*Fixed, FixedSA);
  ExecutionTrace FixedRun = FixedInterp.run(Variant.Input);
  ASSERT_EQ(FixedRun.Exit, ExitReason::Finished);
  std::vector<int64_t> Expected = FixedRun.outputValues();

  {
    // Masked faults have nothing to locate; mirror RandomOmissionTest.
    core::DebugSession Probe(*Faulty, Variant.Input, Expected, {});
    if (!Probe.hasFailure())
      GTEST_SKIP() << "fault masked by later definitions";
  }

  StmtId Root = Faulty->statementAtLine(Variant.RootCauseLine);
  ASSERT_TRUE(isValidId(Root));

  LocateOutcome Serial =
      locateWithThreads(*Faulty, Variant.Input, Expected, Root, 1);
  LocateOutcome Parallel =
      locateWithThreads(*Faulty, Variant.Input, Expected, Root, 4);

  const char *Seed = "seed ";
  // Table 3 counters.
  EXPECT_EQ(Serial.Report.RootCauseFound, Parallel.Report.RootCauseFound)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.UserPrunings, Parallel.Report.UserPrunings)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.Verifications, Parallel.Report.Verifications)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.Reexecutions, Parallel.Report.Reexecutions)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.Iterations, Parallel.Report.Iterations)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.ExpandedEdges, Parallel.Report.ExpandedEdges)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.StrongEdges, Parallel.Report.StrongEdges)
      << Seed << GetParam();

  // The final pruned slice (IPS): same instances in the same rank order.
  EXPECT_EQ(Serial.Report.FinalPrunedSlice, Parallel.Report.FinalPrunedSlice)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.IPSStats.StaticStmts,
            Parallel.Report.IPSStats.StaticStmts)
      << Seed << GetParam();
  EXPECT_EQ(Serial.Report.IPSStats.DynamicInstances,
            Parallel.Report.IPSStats.DynamicInstances)
      << Seed << GetParam();

  // Verdicts, observed through the verified implicit edges: same edges,
  // same strong/plain classification, same insertion order.
  ASSERT_EQ(Serial.Edges.size(), Parallel.Edges.size()) << Seed << GetParam();
  for (size_t I = 0; I < Serial.Edges.size(); ++I) {
    EXPECT_EQ(Serial.Edges[I].Use, Parallel.Edges[I].Use)
        << Seed << GetParam() << " edge " << I;
    EXPECT_EQ(Serial.Edges[I].Pred, Parallel.Edges[I].Pred)
        << Seed << GetParam() << " edge " << I;
    EXPECT_EQ(Serial.Edges[I].Strong, Parallel.Edges[I].Strong)
        << Seed << GetParam() << " edge " << I;
  }

  // And the derived failure-inducing chain (OS) agrees.
  EXPECT_EQ(Serial.Chain, Parallel.Chain) << Seed << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism,
                         ::testing::Range<uint64_t>(100, 110));

/// A random omission fault that is not masked, shared by the registry
/// tests below; nullopt when every probe seed masks (does not happen for
/// the seeds used, but keep the tests honest).
struct PreparedFault {
  std::unique_ptr<lang::Program> Faulty;
  std::vector<int64_t> Input;
  std::vector<int64_t> Expected;
  StmtId Root = InvalidId;
};

std::optional<PreparedFault> prepareFault(uint64_t Seed) {
  RandomProgramGenerator Gen(Seed);
  auto Variant = Gen.generateOmission();
  DiagnosticEngine Diags;
  auto Fixed = lang::parseAndCheck(Variant.FixedSource, Diags);
  auto Faulty = lang::parseAndCheck(Variant.FaultySource, Diags);
  if (!Fixed || !Faulty)
    return std::nullopt;
  analysis::StaticAnalysis FixedSA(*Fixed);
  Interpreter FixedInterp(*Fixed, FixedSA);
  ExecutionTrace FixedRun = FixedInterp.run(Variant.Input);
  if (FixedRun.Exit != ExitReason::Finished)
    return std::nullopt;
  PreparedFault F;
  F.Expected = FixedRun.outputValues();
  core::DebugSession Probe(*Faulty, Variant.Input, F.Expected, {});
  if (!Probe.hasFailure())
    return std::nullopt;
  F.Root = Faulty->statementAtLine(Variant.RootCauseLine);
  if (!isValidId(F.Root))
    return std::nullopt;
  F.Faulty = std::move(Faulty);
  F.Input = Variant.Input;
  return F;
}

// The registry keys whose values are semantic -- functions of which
// work was done, not of when threads did it -- and therefore must be
// bit-identical across thread counts. Deliberately an allowlist:
// scheduling-dependent keys (interp.ctx_reuses, interp.ctx_acquires,
// verify.batches, verify.batch_requests, verify.prepare_batches,
// verify.prepared_runs) legitimately differ between the serial
// reference loop and the batched engine.
const char *const InvariantCounterKeys[] = {
    "interp.runs", "interp.switched_runs", "interp.steps", "interp.outputs",
    "interp.aborted_runs",
    // Checkpointing is deterministic by construction: collection runs
    // single-threaded at the same pipeline point on both engines, and
    // nearest-snapshot lookups happen once per distinct predicate.
    "interp.resumed_runs", "interp.spliced_steps", "verify.ckpt.hits",
    "verify.ckpt.misses", "verify.ckpt.stored", "verify.ckpt.bytes",
    "verify.ckpt.evictions", "verify.ckpt.skipped_dirty",
    // The adaptive-storage counters are functions of the collection run
    // alone (single-threaded, deterministic): what got delta-encoded,
    // the segment keyframes, the encoded/raw footprint, the autotuned
    // stride, and (with no shared store wired here) zero shared hits.
    "verify.ckpt.delta_encoded", "verify.ckpt.keyframes",
    "verify.ckpt.encoded_bytes", "verify.ckpt.raw_bytes",
    "verify.ckpt.shared_hits", "verify.ckpt.auto_stride",
    // The persistent-cache counters: loads/rejects/write_bytes are
    // functions of the cache file alone, and disk-hit attribution
    // resolves once per distinct predicate like ckpt.hits (zero here,
    // with no cache directory wired).
    "verify.ckpt.disk_hits", "verify.ckpt.disk_loads",
    "verify.ckpt.disk_rejects", "verify.ckpt.disk_write_bytes",
    // The switched-run cache resolves once per distinct predicate under
    // the run cell's call_once, and capture/probe/splice work is a pure
    // function of each (session, predicate) -- invariant like ckpt.hits.
    "verify.ckpt.switched_hits", "verify.ckpt.switched_promotions",
    "verify.ckpt.switched_spliced_suffix_steps",
    "verify.ckpt.switched_reconverge_probes",
    "verify.ckpt.switched_interpreted_steps", "interp.spliced_suffix_steps",
    "align.aligners", "align.queries", "align.matched",
    "align.prefix_hits", "align.regions_walked",
    "align.no_match.region_ended_early", "align.no_match.branch_diverged",
    "align.no_match.static_mismatch", "align.no_match.switch_not_applied",
    "verify.verifications", "verify.reexecutions", "verify.reexec_aborts",
    "verify.verdict_cache_hits", "verify.verdict_cache_misses",
    "verify.verdict.strong", "verify.verdict.implicit",
    "verify.verdict.not_implicit", "locate.rounds", "locate.expanded_edges",
    "locate.strong_edges", "locate.candidate_requests",
    "locate.fanout_requests", "slicing.prune_rounds", "slicing.oracle_queries",
    "slicing.benign_marks", "slicing.corrupted_marks",
    "slicing.dynamic_slices", "slicing.relevant_slices",
    // Chain search is deliberately serial inside the locate loop and its
    // trigger is a pure function of thread-invariant verdicts, so every
    // chain counter is invariant too (zero at the default ChainDepth=1;
    // ChainDeterminism below exercises them at depth 2).
    "verify.chain.runs", "verify.chain.prefix_hits",
    "verify.chain.extended_steps", "locate.chain.searches",
    "locate.chain.commits",
};

/// Two locate sessions around a SwitchedRunStore seal(), so the second
/// session's switched runs actually resume from staged snapshots and
/// splice reconvergent suffixes. Returns both outcomes. CacheBytes 0 is
/// the reference configuration (no store wired, full interpretation).
std::vector<LocateOutcome> locateTwiceCached(const PreparedFault &F,
                                             unsigned Threads,
                                             size_t CacheBytes) {
  SwitchedRunStore Store(CacheBytes);
  std::vector<LocateOutcome> Out;
  for (int Pass = 0; Pass < 2; ++Pass) {
    core::DebugSession::Config C;
    C.Threads = Threads;
    C.Locate.SwitchedCacheBytes = CacheBytes;
    if (CacheBytes > 0)
      C.SwitchedRuns = &Store;
    core::DebugSession Session(*F.Faulty, F.Input, F.Expected, {}, C);
    EXPECT_TRUE(Session.hasFailure());
    RootOnlyOracle Oracle(F.Root);
    LocateOutcome O;
    O.Report = Session.locate(Oracle);
    O.Edges = Session.graph().implicitEdges();
    O.Chain = Session.failureChain(F.Root);
    Out.push_back(std::move(O));
    Store.seal();
  }
  return Out;
}

void expectSameOutcome(const LocateOutcome &A, const LocateOutcome &B,
                       uint64_t Seed, const char *What) {
  EXPECT_EQ(A.Report.RootCauseFound, B.Report.RootCauseFound)
      << What << " seed " << Seed;
  EXPECT_EQ(A.Report.Verifications, B.Report.Verifications)
      << What << " seed " << Seed;
  EXPECT_EQ(A.Report.Reexecutions, B.Report.Reexecutions)
      << What << " seed " << Seed;
  EXPECT_EQ(A.Report.Iterations, B.Report.Iterations)
      << What << " seed " << Seed;
  EXPECT_EQ(A.Report.ExpandedEdges, B.Report.ExpandedEdges)
      << What << " seed " << Seed;
  EXPECT_EQ(A.Report.StrongEdges, B.Report.StrongEdges)
      << What << " seed " << Seed;
  EXPECT_EQ(A.Report.FinalPrunedSlice, B.Report.FinalPrunedSlice)
      << What << " seed " << Seed;
  ASSERT_EQ(A.Edges.size(), B.Edges.size()) << What << " seed " << Seed;
  for (size_t I = 0; I < A.Edges.size(); ++I) {
    EXPECT_EQ(A.Edges[I].Use, B.Edges[I].Use)
        << What << " seed " << Seed << " edge " << I;
    EXPECT_EQ(A.Edges[I].Pred, B.Edges[I].Pred)
        << What << " seed " << Seed << " edge " << I;
    EXPECT_EQ(A.Edges[I].Strong, B.Edges[I].Strong)
        << What << " seed " << Seed << " edge " << I;
  }
  EXPECT_EQ(A.Chain, B.Chain) << What << " seed " << Seed;
}

class SwitchedCacheDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SwitchedCacheDeterminism, CacheOnOffAndThreadCountAreInvisible) {
  // The switched-run snapshot cache's contract: cache on, off, or
  // size-capped, serial or parallel, every locate outcome is
  // bit-identical -- only re-execution work may change.
  std::optional<PreparedFault> F = prepareFault(GetParam());
  if (!F)
    GTEST_SKIP() << "fault masked by later definitions";

  std::vector<LocateOutcome> Ref = locateTwiceCached(*F, 1, 0);
  expectSameOutcome(Ref[0], Ref[1], GetParam(), "off@1 pass0 vs pass1");
  for (auto [Threads, Bytes, What] :
       {std::tuple<unsigned, size_t, const char *>{4, 0, "off@4"},
        {1, DefaultSwitchedCacheBytes, "on@1"},
        {4, DefaultSwitchedCacheBytes, "on@4"},
        {1, size_t(64) << 10, "capped@1"},
        {4, size_t(64) << 10, "capped@4"}}) {
    std::vector<LocateOutcome> Got = locateTwiceCached(*F, Threads, Bytes);
    expectSameOutcome(Ref[0], Got[0], GetParam(), What);
    expectSameOutcome(Ref[1], Got[1], GetParam(), What);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchedCacheDeterminism,
                         ::testing::Range<uint64_t>(200, 210));

class ChainDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChainDeterminism, ChainSearchIsThreadCountInvariant) {
  // Depth-2 chain search extends the determinism contract: its trigger
  // (both verdict pools empty for a use) is a pure function of the
  // thread-invariant single-switch verdicts, and the search itself runs
  // serially, so outcomes AND every chain counter must be bit-identical
  // across thread counts.
  std::optional<PreparedFault> F = prepareFault(GetParam());
  if (!F)
    GTEST_SKIP() << "fault masked by later definitions";

  auto Locate = [&](unsigned Threads, support::StatsRegistry *Reg) {
    core::DebugSession::Config C;
    C.Opt.Exec.Threads = Threads;
    C.Opt.Exec.Stats = Reg;
    C.Opt.Reuse.ChainDepth = 2;
    core::DebugSession Session(*F->Faulty, F->Input, F->Expected, {}, C);
    EXPECT_TRUE(Session.hasFailure());
    RootOnlyOracle Oracle(F->Root);
    LocateOutcome O;
    O.Report = Session.locate(Oracle);
    O.Edges = Session.graph().implicitEdges();
    O.Chain = Session.failureChain(F->Root);
    return O;
  };

  support::StatsRegistry SerialReg, PooledReg;
  LocateOutcome Serial = Locate(1, &SerialReg);
  LocateOutcome Pooled = Locate(4, &PooledReg);
  expectSameOutcome(Serial, Pooled, GetParam(), "chain@1 vs chain@4");

  for (const char *Key :
       {"verify.chain.runs", "verify.chain.prefix_hits",
        "verify.chain.extended_steps", "locate.chain.searches",
        "locate.chain.commits"})
    EXPECT_EQ(SerialReg.counter(Key).get(), PooledReg.counter(Key).get())
        << "seed " << GetParam() << " counter " << Key;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainDeterminism,
                         ::testing::Range<uint64_t>(300, 306));

TEST(ParallelStats, RegistryCountersAreThreadCountInvariant) {
  // Satellite of the observability PR: the determinism contract extends
  // to the stats registry. Serial and 4-thread locate runs must agree on
  // every distinct-key counter above, on several seeds.
  int Checked = 0;
  for (uint64_t Seed : {100, 101, 102, 103, 104, 105}) {
    std::optional<PreparedFault> F = prepareFault(Seed);
    if (!F)
      continue;
    support::StatsRegistry SerialReg, ParallelReg;
    locateWithThreads(*F->Faulty, F->Input, F->Expected, F->Root, 1,
                      &SerialReg);
    locateWithThreads(*F->Faulty, F->Input, F->Expected, F->Root, 4,
                      &ParallelReg);
    support::StatsSnapshot Serial = SerialReg.snapshot();
    support::StatsSnapshot Parallel = ParallelReg.snapshot();
    auto Get = [](const support::StatsSnapshot &S, const char *Key) {
      auto It = S.Counters.find(Key);
      return It == S.Counters.end() ? uint64_t(0) : It->second;
    };
    for (const char *Key : InvariantCounterKeys)
      EXPECT_EQ(Get(Serial, Key), Get(Parallel, Key))
          << "seed " << Seed << " counter " << Key;
    // Histogram *distributions* over semantic values are invariant too.
    for (const char *Key : {"verify.reexec_steps", "locate.final_slice_size",
                            "locate.candidates_per_use",
                            "slicing.pruned_slice_size"}) {
      auto SIt = Serial.Histograms.find(Key);
      auto PIt = Parallel.Histograms.find(Key);
      ASSERT_EQ(SIt == Serial.Histograms.end(),
                PIt == Parallel.Histograms.end())
          << "seed " << Seed << " histogram " << Key;
      if (SIt == Serial.Histograms.end())
        continue;
      EXPECT_EQ(SIt->second.Count, PIt->second.Count)
          << "seed " << Seed << " histogram " << Key;
      EXPECT_EQ(SIt->second.Sum, PIt->second.Sum)
          << "seed " << Seed << " histogram " << Key;
      EXPECT_EQ(SIt->second.Max, PIt->second.Max)
          << "seed " << Seed << " histogram " << Key;
      EXPECT_EQ(SIt->second.Buckets, PIt->second.Buckets)
          << "seed " << Seed << " histogram " << Key;
    }
    ++Checked;
  }
  ASSERT_GT(Checked, 0) << "every probe seed was masked";
}

TEST(ParallelStats, SnapshotsDuringParallelLocateAreRaceFree) {
  // Regression test for the verifier's counter unification: snapshots
  // and the verifier's accessor views must be data-race free against
  // pool workers incrementing the same metrics (run under
  // -DEOE_SANITIZE=thread via the parallel label).
  std::optional<PreparedFault> F;
  for (uint64_t Seed : {100, 101, 102, 103, 104, 105}) {
    F = prepareFault(Seed);
    if (F)
      break;
  }
  ASSERT_TRUE(F) << "every probe seed was masked";

  support::StatsRegistry Reg;
  core::DebugSession::Config C;
  C.Threads = 4;
  C.Stats = &Reg;
  core::DebugSession Session(*F->Faulty, F->Input, F->Expected, {}, C);
  ASSERT_TRUE(Session.hasFailure());

  std::atomic<bool> Done{false};
  std::thread Reader([&] {
    uint64_t PrevSnapshot = 0, PrevAccessor = 0;
    while (!Done.load(std::memory_order_acquire)) {
      support::StatsSnapshot S = Reg.snapshot();
      auto It = S.Counters.find("verify.verifications");
      uint64_t FromSnapshot = It == S.Counters.end() ? 0 : It->second;
      // The accessors are thin views over the same registry counters;
      // both observation paths must be monotonic and race-free mid-run.
      uint64_t FromAccessor = Session.verifier().verificationCount();
      EXPECT_GE(FromSnapshot, PrevSnapshot);
      EXPECT_GE(FromAccessor, PrevAccessor);
      PrevSnapshot = FromSnapshot;
      PrevAccessor = FromAccessor;
      std::this_thread::yield();
    }
  });
  RootOnlyOracle Oracle(F->Root);
  core::LocateReport R = Session.locate(Oracle);
  Done.store(true, std::memory_order_release);
  Reader.join();

  EXPECT_EQ(R.Verifications, Session.verifier().verificationCount());
  EXPECT_EQ(R.Verifications, Reg.counter("verify.verifications").get());
  EXPECT_EQ(R.Reexecutions, Reg.counter("verify.reexecutions").get());
}

} // namespace
