//===-- tests/DebugSessionTest.cpp - Facade tests -------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::slicing;
using eoe::test::Session;

namespace {

const char *Src = "fn main() {\n"
                  "var flag = 0;\n"     // 2 <- root (should be 1)
                  "var x = 10;\n"
                  "if (flag) {\n"
                  "x = 20;\n"
                  "}\n"
                  "print(3);\n"         // correct
                  "print(x);\n"         // wrong: 10, expected 20
                  "}";

class NeverOracle : public Oracle {
public:
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId) override { return false; }
};

TEST(DebugSessionTest, NoFailureWhenOutputsMatch) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  DebugSession D(*S.Prog, {}, /*Expected=*/{3, 10}, {});
  EXPECT_FALSE(D.hasFailure());
}

TEST(DebugSessionTest, VerdictsDescribeTheFirstMismatch) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  DebugSession D(*S.Prog, {}, {3, 20}, {});
  ASSERT_TRUE(D.hasFailure());
  EXPECT_EQ(D.verdicts().WrongOutput, 1u);
  EXPECT_EQ(D.verdicts().ExpectedValue, 20);
  EXPECT_EQ(D.verdicts().CorrectOutputs.size(), 1u);
}

TEST(DebugSessionTest, ProfileIsCollectedOverTheSuite) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  DebugSession D(*S.Prog, {}, {3, 20}, {{}, {}, {}});
  EXPECT_EQ(D.profile().Runs, 3u);
}

TEST(DebugSessionTest, LocateIsIdempotentOnTheSameSession) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  DebugSession D(*S.Prog, {}, {3, 20}, {});
  ASSERT_TRUE(D.hasFailure());

  struct RootOracle : Oracle {
    StmtId Root;
    explicit RootOracle(StmtId Root) : Root(Root) {}
    bool isBenign(TraceIdx) override { return false; }
    bool isRootCause(StmtId Stmt) override { return Stmt == Root; }
  } O(S.stmtAtLine(2));

  LocateReport First = D.locate(O);
  EXPECT_TRUE(First.RootCauseFound);
  size_t Edges = D.graph().implicitEdges().size();
  EXPECT_GE(Edges, 1u);

  // A second locate on the already-expanded graph terminates immediately
  // (the root is already visible) and adds nothing.
  LocateReport Second = D.locate(O);
  EXPECT_TRUE(Second.RootCauseFound);
  EXPECT_EQ(Second.Iterations, 0u);
  EXPECT_EQ(D.graph().implicitEdges().size(), Edges);
}

TEST(DebugSessionTest, UnknownRootReportsFailureNotHang) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  DebugSession::Config C;
  C.Locate.MaxIterations = 5;
  DebugSession D(*S.Prog, {}, {3, 20}, {}, C);
  ASSERT_TRUE(D.hasFailure());
  NeverOracle O;
  LocateReport R = D.locate(O);
  EXPECT_FALSE(R.RootCauseFound);
}

TEST(DebugSessionTest, UnionBackendSessionWorksWithAWarmProfile) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  DebugSession::Config C;
  C.PDBackend = PotentialDepAnalyzer::Backend::UnionGraph;
  // A profiling input cannot take the branch (flag is the constant 0),
  // so the union backend must rely on the static region part only for
  // the candidate's def; with no exercised flow, PD is empty and the
  // locator reports failure rather than crashing.
  DebugSession D(*S.Prog, {}, {3, 20}, {{}}, C);
  ASSERT_TRUE(D.hasFailure());
  struct RootOracle : Oracle {
    StmtId Root;
    explicit RootOracle(StmtId Root) : Root(Root) {}
    bool isBenign(TraceIdx) override { return false; }
    bool isRootCause(StmtId Stmt) override { return Stmt == Root; }
  } O(S.stmtAtLine(2));
  LocateReport R = D.locate(O);
  EXPECT_FALSE(R.RootCauseFound)
      << "the union graph never saw the omitted flow";
}

TEST(DebugSessionTest, PathCheckConfigReachesTheVerifier) {
  Session S(Src);
  ASSERT_TRUE(S.valid());
  DebugSession::Config C;
  C.Locate.UsePathCheck = true;
  DebugSession D(*S.Prog, {}, {3, 20}, {}, C);
  ASSERT_TRUE(D.hasFailure());
  struct RootOracle : Oracle {
    StmtId Root;
    explicit RootOracle(StmtId Root) : Root(Root) {}
    bool isBenign(TraceIdx) override { return false; }
    bool isRootCause(StmtId Stmt) override { return Stmt == Root; }
  } O(S.stmtAtLine(2));
  EXPECT_TRUE(D.locate(O).RootCauseFound);
}

} // namespace
