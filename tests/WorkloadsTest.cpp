//===-- tests/WorkloadsTest.cpp - Benchmark fault integration tests -----------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Parameterized over the nine seeded faults: each must (a) reproduce,
// (b) be missed by the dynamic slice, (c) be captured by the relevant
// slice, and (d) be located by the demand-driven procedure with the
// paper's oracle protocol.
//
//===----------------------------------------------------------------------===//

#include "workloads/Runner.h"

#include "lang/Parser.h"
#include "support/Diagnostic.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::workloads;

namespace {

class WorkloadFaultTest : public ::testing::TestWithParam<const FaultInfo *> {
};

TEST_P(WorkloadFaultTest, SourcesParseAndFaultReproduces) {
  const FaultInfo &F = *GetParam();
  DiagnosticEngine Diags;
  EXPECT_TRUE(lang::parseAndCheck(F.FaultySource, Diags)) << Diags.str();
  EXPECT_TRUE(lang::parseAndCheck(F.FixedSource, Diags)) << Diags.str();

  FaultRunner Runner(F);
  EXPECT_TRUE(Runner.valid()) << F.Id << " did not reproduce";
}

TEST_P(WorkloadFaultTest, FullProtocol) {
  const FaultInfo &F = *GetParam();
  FaultRunner Runner(F);
  ASSERT_TRUE(Runner.valid());

  FaultRunner::Options Opts;
  ExperimentResult R = Runner.run(Opts);
  ASSERT_TRUE(R.Valid) << F.Id << ": root cause not located";

  // Table 2 shape: DS and PS miss the root, RS captures it and is not
  // smaller than DS.
  EXPECT_FALSE(R.DSHasRoot) << F.Id << ": not an execution omission error";
  EXPECT_FALSE(R.PSHasRoot) << F.Id;
  EXPECT_TRUE(R.RSHasRoot) << F.Id << ": relevant slicing must capture it";
  EXPECT_GE(R.RS.StaticStmts, R.DS.StaticStmts) << F.Id;
  EXPECT_GE(R.RS.DynamicInstances, R.DS.DynamicInstances) << F.Id;
  EXPECT_LE(R.PS.DynamicInstances, R.DS.DynamicInstances) << F.Id;

  // Table 3 shape: located with a handful of expansions, the IPS exists
  // and OS is nonempty.
  EXPECT_TRUE(R.Report.RootCauseFound) << F.Id;
  EXPECT_GE(R.Report.ExpandedEdges, 1u) << F.Id;
  EXPECT_GT(R.OS.DynamicInstances, 0u) << F.Id;
  EXPECT_GT(R.Report.IPSStats.DynamicInstances, 0u) << F.Id;
}

std::vector<const FaultInfo *> allFaults() {
  std::vector<const FaultInfo *> Out;
  for (const FaultInfo &F : faults())
    Out.push_back(&F);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(AllFaults, WorkloadFaultTest,
                         ::testing::ValuesIn(allFaults()),
                         [](const auto &Info) {
                           std::string Name = Info.param->Id;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

TEST(WorkloadRegistryTest, NineFaultsAcrossFourBenchmarks) {
  EXPECT_EQ(faults().size(), 9u);
  EXPECT_EQ(benchmarks().size(), 4u);
  int Flex = 0, Grep = 0, Gzip = 0, Sed = 0;
  for (const FaultInfo &F : faults()) {
    if (F.BenchmarkName == "flex")
      ++Flex;
    if (F.BenchmarkName == "grep")
      ++Grep;
    if (F.BenchmarkName == "gzip")
      ++Gzip;
    if (F.BenchmarkName == "sed")
      ++Sed;
  }
  EXPECT_EQ(Flex, 5);
  EXPECT_EQ(Grep, 1);
  EXPECT_EQ(Gzip, 1);
  EXPECT_EQ(Sed, 2);
}

TEST(WorkloadRegistryTest, FindFaultById) {
  EXPECT_NE(findFault("gzip-v2-f3"), nullptr);
  EXPECT_EQ(findFault("gzip-v9-f9"), nullptr);
}

TEST(WorkloadRegistryTest, FaultyAndFixedDifferOnOneLine) {
  for (const FaultInfo &F : faults()) {
    std::vector<std::string> FaultyLines, FixedLines;
    std::string Cur;
    for (char C : F.FaultySource) {
      if (C == '\n') {
        FaultyLines.push_back(Cur);
        Cur.clear();
      } else {
        Cur += C;
      }
    }
    Cur.clear();
    for (char C : F.FixedSource) {
      if (C == '\n') {
        FixedLines.push_back(Cur);
        Cur.clear();
      } else {
        Cur += C;
      }
    }
    ASSERT_EQ(FaultyLines.size(), FixedLines.size()) << F.Id;
    int Diffs = 0;
    for (size_t I = 0; I < FaultyLines.size(); ++I) {
      if (FaultyLines[I] != FixedLines[I]) {
        ++Diffs;
        EXPECT_EQ(I + 1, F.RootCauseLine) << F.Id;
      }
    }
    EXPECT_EQ(Diffs, 1) << F.Id;
  }
}

} // namespace
