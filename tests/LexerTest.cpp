//===-- tests/LexerTest.cpp - Lexer unit tests --------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include "support/Diagnostic.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::lang;

namespace {

std::vector<Token> lex(std::string_view Src) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  std::vector<Token> Toks = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Toks;
}

TEST(LexerTest, EmptyInputYieldsOnlyEof) {
  std::vector<Token> Toks = lex("");
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_TRUE(Toks[0].is(TokenKind::EndOfFile));
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  std::vector<Token> Toks = lex("var fn if else while break continue return "
                                "print input foo _bar x9");
  std::vector<TokenKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokenKind> Expected = {
      TokenKind::KwVar,      TokenKind::KwFn,       TokenKind::KwIf,
      TokenKind::KwElse,     TokenKind::KwWhile,    TokenKind::KwBreak,
      TokenKind::KwContinue, TokenKind::KwReturn,   TokenKind::KwPrint,
      TokenKind::KwInput,    TokenKind::Identifier, TokenKind::Identifier,
      TokenKind::Identifier, TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
  EXPECT_EQ(Toks[10].Text, "foo");
  EXPECT_EQ(Toks[11].Text, "_bar");
  EXPECT_EQ(Toks[12].Text, "x9");
}

TEST(LexerTest, IntegerLiterals) {
  std::vector<Token> Toks = lex("0 42 123456789");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Value, 0);
  EXPECT_EQ(Toks[1].Value, 42);
  EXPECT_EQ(Toks[2].Value, 123456789);
}

TEST(LexerTest, CharacterLiterals) {
  std::vector<Token> Toks = lex("'a' '\\n' '\\\\' '\\0'");
  ASSERT_EQ(Toks.size(), 5u);
  EXPECT_EQ(Toks[0].Value, 'a');
  EXPECT_TRUE(Toks[0].is(TokenKind::IntLiteral));
  EXPECT_EQ(Toks[1].Value, '\n');
  EXPECT_EQ(Toks[2].Value, '\\');
  EXPECT_EQ(Toks[3].Value, 0);
}

TEST(LexerTest, TwoCharOperators) {
  std::vector<Token> Toks = lex("== != <= >= && || = < > !");
  std::vector<TokenKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokenKind> Expected = {
      TokenKind::EqEq,   TokenKind::NotEq,     TokenKind::LessEq,
      TokenKind::GreaterEq, TokenKind::AmpAmp, TokenKind::PipePipe,
      TokenKind::Assign, TokenKind::Less,      TokenKind::Greater,
      TokenKind::Bang,   TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, CommentsAreSkipped) {
  std::vector<Token> Toks = lex("x // the rest is ignored == != \n y");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "x");
  EXPECT_EQ(Toks[1].Text, "y");
}

TEST(LexerTest, LocationsTrackLinesAndColumns) {
  std::vector<Token> Toks = lex("a\n  b");
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Col, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Col, 3u);
}

TEST(LexerTest, UnknownCharacterIsAnError) {
  DiagnosticEngine Diags;
  Lexer L("x @ y", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, LoneAmpersandIsAnError) {
  DiagnosticEngine Diags;
  Lexer L("a & b", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, UnterminatedCharLiteralIsAnError) {
  DiagnosticEngine Diags;
  Lexer L("'a", Diags);
  L.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace
