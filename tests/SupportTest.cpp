//===-- tests/SupportTest.cpp - Support library unit tests --------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"
#include "support/RNG.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <gtest/gtest.h>

using namespace eoe;

namespace {

TEST(StringUtilsTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(splitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(splitString(",a,", ','),
            (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilsTest, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("z"), "z");
}

TEST(StringUtilsTest, JoinInterleavesSeparator) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ","), "");
  EXPECT_EQ(joinStrings({"only"}, ","), "only");
}

TEST(StringUtilsTest, FormatDoubleTrimsTrailingZeros) {
  EXPECT_EQ(formatDouble(1.5, 2), "1.5");
  EXPECT_EQ(formatDouble(2.0, 2), "2");
  EXPECT_EQ(formatDouble(0.123456, 3), "0.123");
  EXPECT_EQ(formatDouble(-3.10, 2), "-3.1");
}

TEST(StringUtilsTest, EncodeDecodeRoundTripsPrintableText) {
  std::string Text = "Hello, Siml! 123";
  std::vector<int64_t> Codes = encodeString(Text);
  ASSERT_EQ(Codes.size(), Text.size());
  EXPECT_EQ(decodeString(Codes), Text);
}

TEST(StringUtilsTest, DecodeEscapesNonPrintable) {
  EXPECT_EQ(decodeString({10}), "\\x0a");
  EXPECT_EQ(decodeString({'A', 0}), "A\\x00");
}

TEST(RNGTest, DeterministicPerSeed) {
  RNG A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    (void)C.next();
  }
  RNG D(42), E(43);
  EXPECT_NE(D.next(), E.next());
}

TEST(RNGTest, RangesRespectBounds) {
  RNG Rng(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(Rng.nextBelow(10), 10u);
    int64_t V = Rng.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
  EXPECT_EQ(Rng.nextInRange(3, 3), 3);
}

TEST(RNGTest, ChanceIsRoughlyCalibrated) {
  RNG Rng(11);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += Rng.chance(1, 4);
  EXPECT_GT(Hits, 2200);
  EXPECT_LT(Hits, 2800);
}

TEST(DiagnosticTest, CountsAndRendersErrors) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({1, 2}, "just a warning");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({3, 4}, "boom");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  std::string Text = Diags.str();
  EXPECT_NE(Text.find("1:2: warning: just a warning"), std::string::npos);
  EXPECT_NE(Text.find("3:4: error: boom"), std::string::npos);
}

TEST(TableTest, AlignsColumnsAndPadsShortRows) {
  Table T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer-name"});
  std::string Out = T.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4);
  EXPECT_NE(Out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(Out.find("| longer-name |       |"), std::string::npos);
}

} // namespace
