//===-- tests/LocateFaultTest.cpp - Algorithm 2 end-to-end tests --------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;
using namespace eoe::slicing;
using eoe::test::Session;

namespace {

/// Oracle that knows the root cause statement and optionally a
/// failure-inducing chain (instances outside it are benign) -- the
/// paper's evaluation protocol.
class TestOracle : public Oracle {
public:
  TestOracle(StmtId Root, const std::vector<bool> *Chain = nullptr)
      : Root(Root), Chain(Chain) {}

  bool isBenign(TraceIdx I) override {
    return Chain && !(*Chain)[I];
  }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
  const std::vector<bool> *Chain;
};

/// Figure 1 (gzip) as in SlicingTest, kept in sync.
const char *Figure1Src = "var flags = 0;\n"          // 1
                         "var save_orig_name = 0;\n" // 2
                         "var outbuf[32];\n"         // 3
                         "var outcnt = 0;\n"         // 4
                         "fn main() {\n"             // 5
                         "var opt_name = input();\n" // 6
                         "save_orig_name = 0;\n"     // 7  <- root cause
                         "var method = 8;\n"         // 8
                         "outbuf[outcnt] = method;\n"// 9
                         "outcnt = outcnt + 1;\n"    // 10
                         "if (save_orig_name) {\n"   // 11 (S4)
                         "flags = flags + 32;\n"     // 12 (S5)
                         "}\n"
                         "outbuf[outcnt] = flags;\n" // 14 (S6)
                         "outcnt = outcnt + 1;\n"    // 15
                         "if (save_orig_name) {\n"   // 16 (S7)
                         "outbuf[outcnt] = opt_name;\n" // 17
                         "outcnt = outcnt + 1;\n"    // 18
                         "}\n"
                         "print(outbuf[0]);\n"       // 20 (correct)
                         "print(outbuf[1]);\n"       // 21 (wrong)
                         "}\n";

TEST(LocateFaultTest, Figure1EndToEnd) {
  Session S(Figure1Src);
  ASSERT_TRUE(S.valid());
  DebugSession D(*S.Prog, /*FailingInput=*/{1}, /*Expected=*/{8, 32},
                 /*TestSuite=*/{{1}, {2}});
  ASSERT_TRUE(D.hasFailure());

  StmtId Root = S.stmtAtLine(7);
  TestOracle O(Root);
  LocateReport R = D.locate(O);

  EXPECT_TRUE(R.RootCauseFound);
  EXPECT_GE(R.ExpandedEdges, 1u);
  EXPECT_GE(R.StrongEdges, 1u) << "S4 -> S6 is a strong implicit dep";
  EXPECT_GE(R.Iterations, 1u);
  EXPECT_LE(R.Iterations, 3u) << "the paper locates gzip in one expansion";

  // The added edge's predicate is S4 (line 11), not the false S7.
  bool SawS4 = false;
  for (const auto &E : D.graph().implicitEdges()) {
    EXPECT_NE(D.trace().step(E.Pred).Stmt, S.stmtAtLine(16))
        << "the false potential dependence S7 must be rejected";
    if (D.trace().step(E.Pred).Stmt == S.stmtAtLine(11))
      SawS4 = true;
  }
  EXPECT_TRUE(SawS4);

  // The final pruned slice contains the root cause and S4.
  bool HasRoot = false, HasS4 = false;
  for (TraceIdx I : R.FinalPrunedSlice) {
    if (D.trace().step(I).Stmt == Root)
      HasRoot = true;
    if (D.trace().step(I).Stmt == S.stmtAtLine(11))
      HasS4 = true;
  }
  EXPECT_TRUE(HasRoot);
  EXPECT_TRUE(HasS4);
}

TEST(LocateFaultTest, DynamicSliceAloneMissesWhatLocateFinds) {
  Session S(Figure1Src);
  ASSERT_TRUE(S.valid());
  DebugSession D(*S.Prog, {1}, {8, 32}, {});
  ASSERT_TRUE(D.hasFailure());
  StmtId Root = S.stmtAtLine(7);
  EXPECT_FALSE(D.dynamicSlice().containsStmt(D.trace(), Root));
  EXPECT_TRUE(D.relevantSlice().Slice.containsStmt(D.trace(), Root));
}

TEST(LocateFaultTest, FailureChainLinksRootToFailure) {
  Session S(Figure1Src);
  ASSERT_TRUE(S.valid());
  DebugSession D(*S.Prog, {1}, {8, 32}, {});
  ASSERT_TRUE(D.hasFailure());
  StmtId Root = S.stmtAtLine(7);
  TestOracle O(Root);
  LocateReport R = D.locate(O);
  ASSERT_TRUE(R.RootCauseFound);

  std::vector<bool> Chain = D.failureChain(Root);
  // OS contains the root cause, S4, S6, and the wrong output.
  auto StmtInChain = [&](uint32_t Line) {
    StmtId Id = S.stmtAtLine(Line);
    for (TraceIdx I = 0; I < D.trace().size(); ++I)
      if (Chain[I] && D.trace().step(I).Stmt == Id)
        return true;
    return false;
  };
  EXPECT_TRUE(StmtInChain(7));
  EXPECT_TRUE(StmtInChain(11));
  EXPECT_TRUE(StmtInChain(14));
  EXPECT_TRUE(StmtInChain(21));
  EXPECT_FALSE(StmtInChain(16)) << "S7 is not on the failure chain";

  // IPS should be close to OS (the paper's near-optimality claim).
  size_t ChainSize = std::count(Chain.begin(), Chain.end(), true);
  EXPECT_LE(R.IPSStats.DynamicInstances, ChainSize + 8);
}

TEST(LocateFaultTest, OracleChainProtocolCountsPrunings) {
  Session S(Figure1Src);
  ASSERT_TRUE(S.valid());

  // Phase A: locate with a root-only oracle to discover the implicit
  // edges, then derive OS.
  DebugSession DA(*S.Prog, {1}, {8, 32}, {{1}, {2}});
  ASSERT_TRUE(DA.hasFailure());
  StmtId Root = S.stmtAtLine(7);
  TestOracle OA(Root);
  ASSERT_TRUE(DA.locate(OA).RootCauseFound);
  std::vector<bool> Chain = DA.failureChain(Root);

  // Phase B: fresh session, oracle answers by the chain (the paper's
  // "instances not in OS were selected ... as being benign").
  DebugSession DB(*S.Prog, {1}, {8, 32}, {{1}, {2}});
  ASSERT_TRUE(DB.hasFailure());
  TestOracle OB(Root, &Chain);
  LocateReport R = DB.locate(OB);
  EXPECT_TRUE(R.RootCauseFound);
  // Everything in the final IPS lies on the chain or was added by the
  // expansion; prunings stay small.
  EXPECT_LE(R.UserPrunings, 10u);
}

TEST(LocateFaultTest, NoFalseRootWhenProgramHasNoOmissionPath) {
  // A program whose failure is a plain value error: the wrong constant
  // flows directly to the output. locate() must find it in the pruned
  // slice with zero expansions.
  const char *Src = "fn main() {\n"
                    "var x = 3;\n"  // 2 <- root cause (should be 4)
                    "var y = x * 2;\n"
                    "print(y);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  DebugSession D(*S.Prog, {}, {8}, {});
  ASSERT_TRUE(D.hasFailure());
  TestOracle O(S.stmtAtLine(2));
  LocateReport R = D.locate(O);
  EXPECT_TRUE(R.RootCauseFound);
  EXPECT_EQ(R.Iterations, 0u);
  EXPECT_EQ(R.ExpandedEdges, 0u);
}

TEST(LocateFaultTest, ReportsFailureWhenRootIsUnreachable) {
  // The "root cause" the oracle demands is never executed and has no
  // implicit path to the failure: the procedure must terminate and
  // report failure instead of looping.
  const char *Src = "fn dead() {\n"
                    "return 1;\n"  // 2: never executed
                    "}\n"
                    "fn main() {\n"
                    "var x = 3;\n"
                    "print(x);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  DebugSession D(*S.Prog, {}, {4}, {});
  ASSERT_TRUE(D.hasFailure());
  TestOracle O(S.stmtAtLine(2));
  LocateReport R = D.locate(O);
  EXPECT_FALSE(R.RootCauseFound);
}

TEST(LocateFaultTest, FanoutAblationVerifiesFewerEdges) {
  Session S(Figure1Src);
  ASSERT_TRUE(S.valid());
  StmtId Root = S.stmtAtLine(7);

  DebugSession::Config WithFanout;
  DebugSession DFan(*S.Prog, {1}, {8, 32}, {{1}}, WithFanout);
  ASSERT_TRUE(DFan.hasFailure());
  TestOracle O1(Root);
  LocateReport RFan = DFan.locate(O1);

  DebugSession::Config NoFanout;
  NoFanout.Locate.VerifyFanout = false;
  DebugSession DNo(*S.Prog, {1}, {8, 32}, {{1}}, NoFanout);
  ASSERT_TRUE(DNo.hasFailure());
  TestOracle O2(Root);
  LocateReport RNo = DNo.locate(O2);

  EXPECT_TRUE(RFan.RootCauseFound);
  EXPECT_TRUE(RNo.RootCauseFound);
  EXPECT_LE(RNo.Verifications, RFan.Verifications);
}

} // namespace
