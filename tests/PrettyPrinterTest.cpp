//===-- tests/PrettyPrinterTest.cpp - Source rendering tests -------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "lang/PrettyPrinter.h"

#include "lang/Parser.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::lang;
using eoe::test::parseOrDie;

namespace {

const Stmt *firstMainStmt(const Program &Prog) {
  return Prog.function(Prog.mainFunction())->body().front();
}

TEST(PrettyPrinterTest, RendersEveryStatementKind) {
  auto Check = [](const char *Body, const char *Expected) {
    std::string Src = std::string("fn helper(v) { return v; }\n"
                                  "fn main() { var q = 0; var a[4]; ") +
                      Body + " }";
    auto Prog = parseOrDie(Src);
    ASSERT_TRUE(Prog);
    const auto &Stmts = Prog->function(Prog->mainFunction())->body();
    EXPECT_EQ(stmtToString(Stmts.back()), Expected) << Body;
  };
  Check("q = q + 1;", "q = (q + 1);");
  Check("a[2] = 7;", "a[2] = 7;");
  Check("if (q) { }", "if (q)");
  Check("while (q < 3) { q = 4; }", "while ((q < 3))");
  Check("return 5;", "return 5;");
  Check("print(q, 2);", "print(q, 2);");
  Check("helper(q);", "helper(q);");
  Check("var z = input();", "var z = input();");
  Check("var b[9];", "var b[9];");
}

TEST(PrettyPrinterTest, RendersOperatorsWithExplicitGrouping) {
  auto Prog = parseOrDie("fn main() { var x = -(1) + 2 * 3 - (4 == 5); "
                         "print(x); }");
  ASSERT_TRUE(Prog);
  const auto *Decl = cast<VarDeclStmt>(firstMainStmt(*Prog));
  EXPECT_EQ(exprToString(Decl->init()),
            "((-(1) + (2 * 3)) - (4 == 5))");
}

TEST(PrettyPrinterTest, DescribeStmtIncludesTheLine) {
  auto Prog = parseOrDie("fn main() {\n"
                         "var x = 1;\n"
                         "print(x);\n"
                         "}");
  ASSERT_TRUE(Prog);
  StmtId Print = Prog->statementAtLine(3);
  EXPECT_EQ(describeStmt(*Prog, Print), "line 3: print(x);");
}

TEST(PrettyPrinterTest, ProgramPrintingIsIdempotent) {
  const char *Src = "var g = -7;\n"
                    "var buf[3];\n"
                    "fn f(a, b) {\n"
                    "  if (a > b) { return a; } else { return b; }\n"
                    "}\n"
                    "fn main() {\n"
                    "  var i = 0;\n"
                    "  while (i < 3) {\n"
                    "    buf[i] = f(i, g);\n"
                    "    if (buf[i] == 0) { continue; }\n"
                    "    i = i + 1;\n"
                    "  }\n"
                    "  print(buf[0], buf[1], buf[2]);\n"
                    "}\n";
  auto Prog = parseOrDie(Src);
  ASSERT_TRUE(Prog);
  std::string Once = programToString(*Prog);
  auto Reparsed = parseOrDie(Once);
  ASSERT_TRUE(Reparsed);
  EXPECT_EQ(programToString(*Reparsed), Once);
}

TEST(PrettyPrinterTest, ReprintedProgramsBehaveIdentically) {
  const char *Src = "fn main() {\n"
                    "  var n = input();\n"
                    "  var acc = 0;\n"
                    "  while (n > 0) {\n"
                    "    acc = acc + n % 3;\n"
                    "    n = n - 1;\n"
                    "  }\n"
                    "  print(acc);\n"
                    "}\n";
  eoe::test::Session A(Src);
  ASSERT_TRUE(A.valid());
  eoe::test::Session B(programToString(*A.Prog));
  ASSERT_TRUE(B.valid());
  EXPECT_EQ(A.run({10}).outputValues(), B.run({10}).outputValues());
}

} // namespace
