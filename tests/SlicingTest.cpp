//===-- tests/SlicingTest.cpp - DS / RS / PD unit tests -----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "slicing/DynamicSlicer.h"
#include "slicing/Invertibility.h"
#include "slicing/OutputVerdicts.h"
#include "slicing/PotentialDeps.h"
#include "slicing/RelevantSlicer.h"

#include "ddg/DepGraph.h"
#include "interp/Profiler.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::interp;
using namespace eoe::slicing;
using eoe::test::Session;

namespace {

/// The paper's Figure 1 (gzip) scenario, faithfully miniaturized. The
/// root cause is line 7: save_orig_name is wrongly computed as 0, so the
/// branches at lines 11 (S4) and 16 (S7) are silently not taken and
/// flags reaches the output as 0 instead of 32.
const char *Figure1Src = "var flags = 0;\n"          // 1
                         "var save_orig_name = 0;\n" // 2
                         "var outbuf[32];\n"         // 3
                         "var outcnt = 0;\n"         // 4
                         "fn main() {\n"             // 5
                         "var opt_name = input();\n" // 6
                         "save_orig_name = 0;\n"     // 7  <- root cause (S1)
                         "var method = 8;\n"         // 8
                         "outbuf[outcnt] = method;\n"// 9  (S3)
                         "outcnt = outcnt + 1;\n"    // 10
                         "if (save_orig_name) {\n"   // 11 (S4)
                         "flags = flags + 32;\n"     // 12 (S5)
                         "}\n"                       // 13
                         "outbuf[outcnt] = flags;\n" // 14 (S6)
                         "outcnt = outcnt + 1;\n"    // 15
                         "if (save_orig_name) {\n"   // 16 (S7)
                         "outbuf[outcnt] = opt_name;\n" // 17 (S8)
                         "outcnt = outcnt + 1;\n"    // 18
                         "}\n"                       // 19
                         "print(outbuf[0]);\n"       // 20 (S9, correct: 8)
                         "print(outbuf[1]);\n"       // 21 (S10, wrong: 0)
                         "}\n";

/// Expected outputs of the fixed gzip (save_orig_name = 1): [8, 32].
const std::vector<int64_t> Figure1Expected = {8, 32};

struct Figure1 {
  Session S{Figure1Src};
  ExecutionTrace T;
  std::unique_ptr<ddg::DepGraph> G;
  OutputVerdicts V;

  Figure1() {
    EXPECT_TRUE(S.valid());
    T = S.run({1});
    G = std::make_unique<ddg::DepGraph>(T);
    auto Diff = diffOutputs(T, Figure1Expected);
    EXPECT_TRUE(Diff.has_value());
    V = *Diff;
  }
};

TEST(OutputVerdictsTest, FirstMismatchSplitsOutputs) {
  Figure1 F;
  EXPECT_EQ(F.V.WrongOutput, 1u);
  EXPECT_EQ(F.V.CorrectOutputs, (std::vector<size_t>{0}));
  EXPECT_EQ(F.V.ExpectedValue, 32);
}

TEST(OutputVerdictsTest, NoMismatchMeansNoFailure) {
  Session S("fn main() { print(1, 2); }");
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  EXPECT_FALSE(diffOutputs(T, {1, 2}).has_value());
  EXPECT_TRUE(diffOutputs(T, {1, 3}).has_value());
}

TEST(DynamicSlicerTest, Figure1SliceMissesTheRootCause) {
  Figure1 F;
  SliceResult DS = sliceOfWrongOutput(*F.G, F.V);
  // The paper: DS = {S2, S3, S6, S10} -- the flags chain, but not the
  // assignment to save_orig_name, and not the untaken predicates.
  EXPECT_TRUE(DS.containsStmt(F.T, F.S.stmtAtLine(14))); // S6
  EXPECT_TRUE(DS.containsStmt(F.T, F.S.stmtAtLine(21))); // S10
  EXPECT_FALSE(DS.containsStmt(F.T, F.S.stmtAtLine(7))) // root cause
      << "dynamic slicing must miss execution omission errors";
  EXPECT_FALSE(DS.containsStmt(F.T, F.S.stmtAtLine(11))); // S4 untaken
  EXPECT_FALSE(DS.containsStmt(F.T, F.S.stmtAtLine(12))); // S5 omitted
}

TEST(PotentialDepsTest, Figure1PDSetsMatchThePaper) {
  Figure1 F;
  PotentialDepAnalyzer PD(*F.S.SA, F.T);

  // PD(flags@S6) = { S4 }: the use of flags at line 14.
  TraceIdx S6 = F.S.instanceAtLine(F.T, 14);
  const UseRecord *FlagsUse = nullptr;
  for (const UseRecord &U : F.T.step(S6).Uses)
    if (F.S.Prog->variable(U.Var).Name == "flags")
      FlagsUse = &U;
  ASSERT_NE(FlagsUse, nullptr);
  std::vector<TraceIdx> PDFlags = PD.compute(S6, *FlagsUse, false);
  ASSERT_EQ(PDFlags.size(), 1u);
  EXPECT_EQ(F.T.step(PDFlags[0]).Stmt, F.S.stmtAtLine(11)); // S4

  // PD(outbuf[1]@S10) = { S7 }: the conservative false candidate the
  // paper blames on static analysis (the S8 store may alias outbuf[1]).
  TraceIdx S10 = F.S.instanceAtLine(F.T, 21);
  ASSERT_EQ(F.T.step(S10).Uses.size(), 1u);
  std::vector<TraceIdx> PDOut = PD.compute(S10, F.T.step(S10).Uses[0], false);
  ASSERT_EQ(PDOut.size(), 1u);
  EXPECT_EQ(F.T.step(PDOut[0]).Stmt, F.S.stmtAtLine(16)); // S7
}

TEST(PotentialDepsTest, ConditionIIIExcludesKilledBranchDefs) {
  // The paper's three-line example: the def reaching the use occurs
  // *after* the predicate, so the predicate is not in PD.
  const char *Src = "fn main() {\n"
                    "var p = 0;\n"
                    "var x = 0;\n"
                    "if (p) {\n"
                    "x = 1;\n"
                    "}\n"
                    "x = 2;\n"
                    "print(x);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  PotentialDepAnalyzer PD(*S.SA, T);
  TraceIdx Print = S.instanceAtLine(T, 8);
  EXPECT_TRUE(PD.compute(Print, T.step(Print).Uses[0], false).empty());
}

TEST(PotentialDepsTest, WithoutTheKillThePredicateQualifies) {
  const char *Src = "fn main() {\n"
                    "var p = 0;\n"
                    "var x = 0;\n"
                    "if (p) {\n"
                    "x = 1;\n"
                    "}\n"
                    "print(x);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  PotentialDepAnalyzer PD(*S.SA, T);
  TraceIdx Print = S.instanceAtLine(T, 7);
  std::vector<TraceIdx> Out = PD.compute(Print, T.step(Print).Uses[0], false);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(T.step(Out[0]).Stmt, S.stmtAtLine(4));
}

TEST(PotentialDepsTest, ConditionIIExcludesControlAncestors) {
  const char *Src = "fn main() {\n"
                    "var p = 1;\n"
                    "var x = 0;\n"
                    "if (p) {\n"
                    "x = 1;\n"      // also a def of x on the true side
                    "print(x);\n"   // use control dependent on the if
                    "}\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  PotentialDepAnalyzer PD(*S.SA, T);
  TraceIdx Print = S.instanceAtLine(T, 6);
  EXPECT_TRUE(PD.compute(Print, T.step(Print).Uses[0], false).empty());
}

TEST(PotentialDepsTest, LoopsYieldOneInstancePerIterationUnlessDeduped) {
  const char *Src = "fn main() {\n"
                    "var x = 0;\n"
                    "var i = 0;\n"
                    "while (i < 10) {\n"
                    "if (i == 99) {\n"
                    "x = 1;\n"
                    "}\n"
                    "i = i + 1;\n"
                    "}\n"
                    "print(x);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  PotentialDepAnalyzer PD(*S.SA, T);
  TraceIdx Print = S.instanceAtLine(T, 10);
  std::vector<TraceIdx> All = PD.compute(Print, T.step(Print).Uses[0], false);
  // Every iteration's if qualifies, plus the final (false-taking) while
  // test: switching it would run one more iteration containing the def.
  EXPECT_EQ(All.size(), 11u);
  std::vector<TraceIdx> One = PD.compute(Print, T.step(Print).Uses[0], true);
  ASSERT_EQ(One.size(), 2u) << "one instance per static predicate";
  EXPECT_EQ(One[0], All[0]) << "dedup keeps the closest instance";
}

TEST(PotentialDepsTest, UnionBackendRequiresAnExercisedFlow) {
  const char *Src = "fn main() {\n"
                    "var p = input();\n"
                    "var x = 0;\n"
                    "if (p) {\n"
                    "x = 1;\n"
                    "}\n"
                    "print(x);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run({0}); // failing-style run: branch untaken

  TraceIdx Print = S.instanceAtLine(T, 7);
  const UseRecord &Use = T.step(Print).Uses[0];

  // Profile that never took the branch: the union graph lacks the flow.
  Profile Cold = profileTestSuite(*S.Interp, *S.Prog, {{0}, {0}});
  PotentialDepAnalyzer PDCold(*S.SA, T, PotentialDepAnalyzer::Backend::UnionGraph,
                              &Cold.UnionDeps);
  EXPECT_TRUE(PDCold.compute(Print, Use, false).empty());

  // Profile that exercised it: the candidate appears.
  Profile Warm = profileTestSuite(*S.Interp, *S.Prog, {{0}, {1}});
  PotentialDepAnalyzer PDWarm(*S.SA, T, PotentialDepAnalyzer::Backend::UnionGraph,
                              &Warm.UnionDeps);
  EXPECT_EQ(PDWarm.compute(Print, Use, false).size(), 1u);

  // The static backend needs no profile at all.
  PotentialDepAnalyzer PDStatic(*S.SA, T);
  EXPECT_EQ(PDStatic.compute(Print, Use, false).size(), 1u);
}

TEST(RelevantSlicerTest, Figure1RelevantSliceCapturesTheRootCause) {
  Figure1 F;
  PotentialDepAnalyzer PD(*F.S.SA, F.T);
  RelevantSliceResult RS = relevantSliceOfWrongOutput(*F.G, PD, F.V);
  SliceResult DS = sliceOfWrongOutput(*F.G, F.V);

  EXPECT_TRUE(RS.Slice.containsStmt(F.T, F.S.stmtAtLine(7)))
      << "RS must capture the execution omission root cause";
  EXPECT_TRUE(RS.Slice.containsStmt(F.T, F.S.stmtAtLine(11))); // S4
  EXPECT_TRUE(RS.Slice.containsStmt(F.T, F.S.stmtAtLine(16)))
      << "the false potential dependence S7 -> S10 inflates RS";
  EXPECT_GT(RS.Slice.Stats.StaticStmts, DS.Stats.StaticStmts);
  EXPECT_GE(RS.PotentialEdges, 2u);
}

TEST(RelevantSlicerTest, DynamicSizeExplodesWithLoopIterations) {
  // Section 2's discussion: a predicate executed N times contributes N
  // instances to the relevant slice but only 1 static statement.
  const char *Src = "fn main() {\n"
                    "var x = 0;\n"
                    "var i = 0;\n"
                    "while (i < 50) {\n"
                    "if (i == 99) {\n"
                    "x = 1;\n"
                    "}\n"
                    "i = i + 1;\n"
                    "}\n"
                    "print(x);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  ddg::DepGraph G(T);
  PotentialDepAnalyzer PD(*S.SA, T);

  auto Diff = diffOutputs(T, {1});
  ASSERT_TRUE(Diff.has_value());
  SliceResult DS = sliceOfWrongOutput(G, *Diff);
  RelevantSliceResult RS = relevantSliceOfWrongOutput(G, PD, *Diff);

  // DS: print + decl of x only (x's def never re-assigned; the loop does
  // not feed it). RS: additionally all 50 if instances and their whole
  // control/data support.
  EXPECT_LE(DS.Stats.DynamicInstances, 3u);
  EXPECT_GE(RS.Slice.Stats.DynamicInstances,
            DS.Stats.DynamicInstances + 50);
  EXPECT_GE(RS.Slice.Stats.StaticStmts, DS.Stats.StaticStmts + 2);
}

TEST(InvertibilityTest, AddSubNegChainsAreInvertible) {
  Session S("fn main() {\n"
            "var a = 1;\n"
            "var b = -(a + 3) - 2;\n"
            "print(b);\n"
            "}");
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  TraceIdx DefB = S.instanceAtLine(T, 3);
  ASSERT_NE(DefB, InvalidId);
  const lang::Expr *Root = valueRoot(S.Prog->statement(T.step(DefB).Stmt));
  ASSERT_NE(Root, nullptr);
  ASSERT_EQ(T.step(DefB).Uses.size(), 1u);
  EXPECT_TRUE(invertiblePath(Root, T.step(DefB).Uses[0].LoadExpr));
}

TEST(InvertibilityTest, ManyToOneOpsAreNot) {
  const char *Src = "fn main() {\n"
                    "var a = 5;\n"
                    "var m = a % 2;\n"
                    "var d = a / 2;\n"
                    "var c = a < 3;\n"
                    "var t = a * 0;\n"
                    "var s = a * 3;\n"
                    "print(m + d + c + t + s);\n"
                    "}";
  Session S(Src);
  ASSERT_TRUE(S.valid());
  ExecutionTrace T = S.run();
  auto CheckLine = [&](uint32_t Line, bool Expect) {
    TraceIdx I = S.instanceAtLine(T, Line);
    ASSERT_NE(I, InvalidId);
    const lang::Expr *Root = valueRoot(S.Prog->statement(T.step(I).Stmt));
    ASSERT_NE(Root, nullptr);
    ASSERT_EQ(T.step(I).Uses.size(), 1u);
    EXPECT_EQ(invertiblePath(Root, T.step(I).Uses[0].LoadExpr), Expect)
        << "line " << Line;
  };
  CheckLine(3, false); // %
  CheckLine(4, false); // /
  CheckLine(5, false); // <
  CheckLine(6, false); // * 0
  CheckLine(7, true);  // * 3 (nonzero constant)
}

} // namespace
