//===-- tests/ChainSearchTest.cpp - Multi-switch chain tests ------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/ChainSearch.h"
#include "core/DebugSession.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;
using namespace eoe::slicing;
using eoe::test::Session;

namespace {

/// Oracle that only knows the root cause statement.
class RootOracle : public Oracle {
public:
  explicit RootOracle(StmtId Root) : Root(Root) {}
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
};

/// A fault no single switch can expose: the correct program initializes
/// t = 1, which opens BOTH guards on the way to x. Switching only the
/// outer `if (g)` leaves the inner `if (t)` closed (x stays 0); switching
/// only `if (t)` at line 4 changes g, not x directly -- and `if (t)` at
/// line 9 never executes in the failing run, so it is not a candidate.
/// Only the chain [if(g), if(t)@9] forces x = 1 and reproduces the
/// expected output.
const char *ChainSrc = "var t = 0;\n"   // 1  <- root cause (correct: 1)
                       "var g = 0;\n"   // 2
                       "fn main() {\n"  // 3
                       "if (t) {\n"     // 4  p: opens g
                       "g = 1;\n"       // 5
                       "}\n"            // 6
                       "var x = 0;\n"   // 7
                       "if (g) {\n"     // 8  q: outer guard of x
                       "if (t) {\n"     // 9  r: inner guard of x
                       "x = 1;\n"       // 10
                       "}\n"            // 11
                       "}\n"            // 12
                       "print(x);\n"    // 13 wrong: 0, expected 1
                       "}\n";

struct ChainFixture {
  Session S;
  support::StatsRegistry Reg;
  std::unique_ptr<DebugSession> D;

  explicit ChainFixture(unsigned ChainDepth, unsigned ChainBudget = 32,
                        unsigned Threads = 1)
      : S(ChainSrc) {
    EXPECT_TRUE(S.valid());
    DebugSession::Config C;
    C.Opt.Reuse.ChainDepth = ChainDepth;
    C.Opt.Reuse.ChainBudget = ChainBudget;
    C.Opt.Exec.Threads = Threads;
    C.Opt.Exec.Stats = &Reg;
    D = std::make_unique<DebugSession>(*S.Prog, /*FailingInput=*/
                                       std::vector<int64_t>{},
                                       /*Expected=*/std::vector<int64_t>{1},
                                       /*TestSuite=*/
                                       std::vector<std::vector<int64_t>>{}, C);
    EXPECT_TRUE(D->hasFailure());
  }

  LocateReport locate() {
    RootOracle O(S.stmtAtLine(1));
    return D->locate(O);
  }
};

TEST(ChainSearchTest, SingleSwitchCannotLocate) {
  // The reference configuration (chains off): every single-switch verdict
  // is NOT_ID, so the procedure runs out of verifiable dependences.
  ChainFixture F(/*ChainDepth=*/1);
  LocateReport R = F.locate();
  EXPECT_FALSE(R.RootCauseFound);
  EXPECT_EQ(R.ExpandedEdges, 0u);
  EXPECT_EQ(F.Reg.counter("verify.chain.runs").get(), 0u);
}

TEST(ChainSearchTest, DepthTwoChainLocates) {
  ChainFixture F(/*ChainDepth=*/2);
  LocateReport R = F.locate();
  EXPECT_TRUE(R.RootCauseFound);
  EXPECT_GE(R.StrongEdges, 1u) << "the [q, r] chain reproduces the expected "
                                  "output, which is strong evidence";

  // The committed edge's predicate is the chain's base: the outer guard.
  bool SawOuter = false;
  for (const auto &E : F.D->graph().implicitEdges())
    if (F.D->trace().step(E.Pred).Stmt == F.S.stmtAtLine(8))
      SawOuter = true;
  EXPECT_TRUE(SawOuter);

  EXPECT_GE(F.Reg.counter("verify.chain.runs").get(), 1u);
  EXPECT_GE(F.Reg.counter("locate.chain.searches").get(), 1u);
  EXPECT_GE(F.Reg.counter("locate.chain.commits").get(), 1u);
}

TEST(ChainSearchTest, ZeroBudgetBehavesLikeChainsOff) {
  ChainFixture F(/*ChainDepth=*/2, /*ChainBudget=*/0);
  LocateReport R = F.locate();
  EXPECT_FALSE(R.RootCauseFound);
  EXPECT_EQ(F.Reg.counter("verify.chain.runs").get(), 0u);
}

TEST(ChainSearchTest, VerifyChainDirectlyIsStrong) {
  // Unit-level: the verifier's chain API classifies the [q, r] chain as
  // STRONG_ID from the output evidence alone.
  Session S(ChainSrc);
  ASSERT_TRUE(S.valid());
  std::vector<int64_t> Input;
  ExecutionTrace T = S.run(Input);
  auto V = diffOutputs(T, {1});
  ASSERT_TRUE(V.has_value());
  ImplicitDepVerifier Verifier(*S.Interp, T, Input, *V,
                               ImplicitDepVerifier::Config());

  TraceIdx Q = S.instanceAtLine(T, 8);
  ASSERT_NE(Q, InvalidId);
  const StepRecord &QS = T.step(Q);
  // r (line 9) never executes in the failing run: its decision names the
  // first instance the chained run will see.
  StmtId RStmt = S.stmtAtLine(9);
  std::vector<SwitchDecision> Chain{
      {QS.Stmt, QS.InstanceNo, /*Perturb=*/false, /*Value=*/0},
      {RStmt, /*InstanceNo=*/1, /*Perturb=*/false, /*Value=*/0}};
  EXPECT_EQ(Verifier.verifyChain(Q, Chain, /*UseInst=*/0, /*UseLoad=*/0),
            DepVerdict::StrongImplicit);

  // The chained trace is cached and reflects both decisions: x = 1 ran.
  const ExecutionTrace &EP = Verifier.chainTrace(Q, Chain);
  EXPECT_EQ(EP.outputValues(), (std::vector<int64_t>{1}));
}

TEST(ChainSearchTest, ChainSearchFindsTheChain) {
  // Drive ChainSearch directly: given q as the only candidate, the
  // search must extend through r and return the strong depth-2 chain.
  Session S(ChainSrc);
  ASSERT_TRUE(S.valid());
  std::vector<int64_t> Input;
  ExecutionTrace T = S.run(Input);
  auto V = diffOutputs(T, {1});
  ASSERT_TRUE(V.has_value());
  ImplicitDepVerifier Verifier(*S.Interp, T, Input, *V,
                               ImplicitDepVerifier::Config());

  TraceIdx Q = S.instanceAtLine(T, 8);
  TraceIdx U = S.instanceAtLine(T, 13);
  ASSERT_NE(Q, InvalidId);
  ASSERT_NE(U, InvalidId);
  ASSERT_FALSE(T.step(U).Uses.empty());
  ExprId Load = T.step(U).Uses.front().LoadExpr;

  // Seed the single-switch cache the way locateFault's verdict pass does.
  EXPECT_EQ(Verifier.verify(Q, U, Load), DepVerdict::NotImplicit);

  ChainSearch Search(Verifier, T, /*MaxDepth=*/2, /*Budget=*/32);
  ChainSearch::Result R = Search.search({Q}, U, Load);
  ASSERT_TRUE(R.Found);
  EXPECT_TRUE(R.Strong);
  EXPECT_EQ(R.BasePred, Q);
  ASSERT_EQ(R.Chain.size(), 2u);
  EXPECT_EQ(R.Chain[0].Stmt, T.step(Q).Stmt);
  EXPECT_EQ(R.Chain[1].Stmt, S.stmtAtLine(9));
  EXPECT_GE(Search.used(), 1u);
}

TEST(ChainSearchTest, LocateIsIdenticalAcrossThreadCounts) {
  ChainFixture Serial(/*ChainDepth=*/2, /*ChainBudget=*/32, /*Threads=*/1);
  ChainFixture Pooled(/*ChainDepth=*/2, /*ChainBudget=*/32, /*Threads=*/4);
  LocateReport A = Serial.locate();
  LocateReport B = Pooled.locate();
  EXPECT_EQ(A.RootCauseFound, B.RootCauseFound);
  EXPECT_EQ(A.ExpandedEdges, B.ExpandedEdges);
  EXPECT_EQ(A.StrongEdges, B.StrongEdges);
  EXPECT_EQ(A.Iterations, B.Iterations);
  EXPECT_EQ(A.FinalPrunedSlice, B.FinalPrunedSlice);
  EXPECT_EQ(Serial.Reg.counter("verify.chain.runs").get(),
            Pooled.Reg.counter("verify.chain.runs").get());
}

} // namespace
