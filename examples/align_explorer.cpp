//===-- examples/align_explorer.cpp - Region trees and alignment ----------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Visualizes the machinery of section 3.1: runs the paper's Figure 2
// program, prints both executions' region decompositions (Definition 3)
// as indented trees, and shows the alignment verdict for every instance
// of the original run.
//
//   $ ./examples/align_explorer
//
//===----------------------------------------------------------------------===//

#include "align/Aligner.h"
#include "analysis/StaticAnalysis.h"
#include "interp/Interpreter.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "support/Diagnostic.h"

#include <cstdio>
#include <string>

using namespace eoe;
using namespace eoe::align;
using namespace eoe::interp;

namespace {

const char *Source = "fn main() {\n"     // 1
                     "var i = 0;\n"      // 2
                     "var t = 0;\n"      // 3
                     "var x = 0;\n"      // 4
                     "var P = 0;\n"      // 5
                     "var C2 = 0;\n"     // 6
                     "var y = 0;\n"      // 7
                     "if (P) {\n"        // 8   <- switched
                     "t = 2;\n"          // 9
                     "x = 42;\n"         // 10
                     "}\n"
                     "while (i < t) {\n" // 12
                     "y = y + 1;\n"      // 13
                     "i = i + 1;\n"      // 14
                     "}\n"
                     "if (C2 == 0) {\n"  // 16
                     "y = x;\n"          // 17
                     "}\n"
                     "print(y);\n"       // 19
                     "}\n";

void printRegion(const lang::Program &Prog, const ExecutionTrace &T,
                 const RegionTree &Tree, TraceIdx Head, int Indent) {
  std::printf("%*s[%u] %s\n", Indent * 2, "", Head,
              lang::stmtToString(Prog.statement(T.step(Head).Stmt)).c_str());
  for (TraceIdx Child : Tree.children(Head))
    printRegion(Prog, T, Tree, Child, Indent + 1);
}

void printForest(const lang::Program &Prog, const ExecutionTrace &T,
                 const RegionTree &Tree, const char *Title) {
  std::printf("\n%s\n", Title);
  for (TraceIdx Root : Tree.children(InvalidId))
    printRegion(Prog, T, Tree, Root, 1);
}

} // namespace

int main() {
  std::printf("== Region trees and execution alignment ==\n\n%s\n", Source);

  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return 1;
  }
  analysis::StaticAnalysis SA(*Prog);
  Interpreter Interp(*Prog, SA);

  ExecutionTrace E = Interp.run({});
  SwitchSpec Spec{Prog->statementAtLine(8), 1};
  ExecutionTrace EP = Interp.runSwitched({}, Spec, 100000);

  ExecutionAligner Aligner(E, EP);
  printForest(*Prog, E, Aligner.originalTree(),
              "original execution's region forest (Definition 3):");
  printForest(*Prog, EP, Aligner.switchedTree(),
              "switched execution's region forest (if (P) forced true; the "
              "while loop now runs twice):");

  std::printf("\nalignment of every original instance (Algorithm 1):\n");
  bool AllExplained = true;
  for (TraceIdx I = 0; I < E.size(); ++I) {
    AlignResult R = Aligner.match(I);
    std::string Verdict;
    if (R.found())
      Verdict = "-> " + std::to_string(R.Matched);
    else if (R.Why == AlignFailure::BranchDiverged)
      Verdict = "no match (branch diverged)";
    else if (R.Why == AlignFailure::RegionEndedEarly)
      Verdict = "no match (region ended early)";
    else
      Verdict = "no match";
    std::printf("  [%2u] %-24s %s\n", I,
                lang::stmtToString(Prog->statement(E.step(I).Stmt)).c_str(),
                Verdict.c_str());
    if (R.found() && E.step(I).Stmt != EP.step(R.Matched).Stmt)
      AllExplained = false;
  }
  std::printf("\nevery match pairs identical statements: %s\n",
              AllExplained ? "yes" : "NO (bug!)");
  return AllExplained ? 0 : 1;
}
