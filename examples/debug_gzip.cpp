//===-- examples/debug_gzip.cpp - The Figure 1 session, end to end --------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Replays the paper's motivating debugging session on the mini-gzip
// workload: the ORIG_NAME flag never reaches the output header because
// save_orig_name is computed false. Shows every stage a user of the
// library would drive: output diffing, slicing baselines, single
// dependence verification, and the full demand-driven procedure.
//
//   $ ./examples/debug_gzip
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"
#include "lang/PrettyPrinter.h"
#include "workloads/Runner.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace eoe;
using namespace eoe::workloads;

int main() {
  std::printf("== Debugging mini-gzip (the paper's Figure 1) ==\n\n");
  const FaultInfo *Fault = findFault("gzip-v2-f3");
  if (!Fault) {
    std::fprintf(stderr, "gzip-v2-f3 not registered\n");
    return 1;
  }
  FaultRunner Runner(*Fault);
  if (!Runner.valid()) {
    std::fprintf(stderr, "fault did not reproduce\n");
    return 1;
  }
  const lang::Program &Prog = Runner.faultyProgram();
  std::printf("root cause: %s\n\n",
              lang::describeStmt(Prog, Runner.rootCause()).c_str());

  core::DebugSession Session(Prog, Fault->FailingInput,
                             Runner.expectedOutputs(), Fault->TestSuite);
  if (!Session.hasFailure()) {
    std::fprintf(stderr, "no observable failure\n");
    return 1;
  }

  // Stage 1: the observable failure.
  const auto &V = Session.verdicts();
  std::printf("stage 1 -- output diff: %zu correct values precede the "
              "wrong one;\n  output #%zu is %lld, expected %lld (the "
              "header's flags byte)\n\n",
              V.CorrectOutputs.size(), V.WrongOutput,
              static_cast<long long>(
                  Session.trace().Outputs[V.WrongOutput].Value),
              static_cast<long long>(V.ExpectedValue));

  // Stage 2: slicing baselines.
  auto DS = Session.dynamicSlice();
  auto RS = Session.relevantSlice();
  std::printf("stage 2 -- baselines:\n");
  std::printf("  DS %zu/%zu (root: %s), RS %zu/%zu (root: %s)\n\n",
              DS.Stats.StaticStmts, DS.Stats.DynamicInstances,
              DS.containsStmt(Session.trace(), Runner.rootCause()) ? "in"
                                                                   : "MISSING",
              RS.Slice.Stats.StaticStmts, RS.Slice.Stats.DynamicInstances,
              RS.Slice.containsStmt(Session.trace(), Runner.rootCause())
                  ? "in"
                  : "missing");

  // Stage 3: verify one implicit dependence by hand, like section 3.1:
  // does the flags value used by the header write depend on the
  // "if (save_orig_name)" guard?
  std::printf("stage 3 -- manual verification via predicate switching:\n");
  const auto &T = Session.trace();
  StmtId FlagsGuard = InvalidId;
  for (const lang::Stmt *S : Prog.statements()) {
    if (!S->isPredicate())
      continue;
    std::string Text = lang::stmtToString(S);
    if (Text.find("save_orig_name") != std::string::npos &&
        FlagsGuard == InvalidId)
      FlagsGuard = S->id();
  }
  TraceIdx GuardInst = InvalidId, FlagsUseInst = InvalidId;
  ExprId FlagsLoad = InvalidId;
  for (TraceIdx I = 0; I < T.size(); ++I) {
    if (T.step(I).Stmt == FlagsGuard && GuardInst == InvalidId)
      GuardInst = I;
    for (const interp::UseRecord &Use : T.step(I).Uses) {
      if (isValidId(Use.Var) && Prog.variable(Use.Var).Name == "flags" &&
          I > GuardInst && GuardInst != InvalidId &&
          FlagsUseInst == InvalidId) {
        FlagsUseInst = I;
        FlagsLoad = Use.LoadExpr;
      }
    }
  }
  if (GuardInst == InvalidId || FlagsUseInst == InvalidId) {
    std::fprintf(stderr, "could not find the Figure 1 sites\n");
    return 1;
  }
  core::DepVerdict Verdict =
      Session.verifier().verify(GuardInst, FlagsUseInst, FlagsLoad);
  std::printf("  VerifyDep(%s, flags@%s) = %s\n\n",
              lang::describeStmt(Prog, FlagsGuard).c_str(),
              lang::describeStmt(Prog, T.step(FlagsUseInst).Stmt).c_str(),
              core::depVerdictName(Verdict));

  // Stage 4: the full demand-driven procedure.
  ProtocolOracle Oracle(Runner.rootCause(), nullptr);
  core::LocateReport Report = Session.locate(Oracle);
  std::printf("stage 4 -- Algorithm 2: located=%s, %zu iterations, %zu "
              "verifications, %zu edges (%zu strong)\n",
              Report.RootCauseFound ? "yes" : "no", Report.Iterations,
              Report.Verifications, Report.ExpandedEdges,
              Report.StrongEdges);
  std::printf("\nfailure-inducing chain (OS):\n");
  std::vector<bool> Chain = Session.failureChain(Runner.rootCause());
  for (TraceIdx I = 0; I < T.size(); ++I)
    if (Chain[I])
      std::printf("  [%u] %s\n", I,
                  lang::describeStmt(Prog, T.step(I).Stmt).c_str());
  return Report.RootCauseFound && Verdict == core::DepVerdict::StrongImplicit
             ? 0
             : 1;
}
