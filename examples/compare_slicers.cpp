//===-- examples/compare_slicers.cpp - DS vs RS vs IPS on any fault -------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Compares every slicing technique on a chosen workload fault and prints
// the fault-candidate listings a user would inspect.
//
//   $ ./examples/compare_slicers [fault-id]     (default: sed-v3-f2)
//   $ ./examples/compare_slicers --list
//
//===----------------------------------------------------------------------===//

#include "lang/PrettyPrinter.h"
#include "support/Table.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <cstring>
#include <set>

using namespace eoe;
using namespace eoe::workloads;

int main(int argc, char **argv) {
  const char *Id = argc > 1 ? argv[1] : "sed-v3-f2";
  if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
    for (const FaultInfo &F : faults())
      std::printf("%s\n", F.Id.c_str());
    return 0;
  }
  const FaultInfo *Fault = findFault(Id);
  if (!Fault) {
    std::fprintf(stderr, "unknown fault '%s' (try --list)\n", Id);
    return 1;
  }

  std::printf("== %s: %s ==\n\n", Fault->Id.c_str(),
              Fault->Description.c_str());
  FaultRunner Runner(*Fault);
  if (!Runner.valid()) {
    std::fprintf(stderr, "fault did not reproduce\n");
    return 1;
  }

  FaultRunner::Options Opts;
  ExperimentResult R = Runner.run(Opts);
  const lang::Program &Prog = Runner.faultyProgram();

  Table T({"Technique", "static", "dynamic", "root cause?"});
  T.addRow({"dynamic slice (DS)", std::to_string(R.DS.StaticStmts),
            std::to_string(R.DS.DynamicInstances),
            R.DSHasRoot ? "yes" : "no"});
  T.addRow({"relevant slice (RS)", std::to_string(R.RS.StaticStmts),
            std::to_string(R.RS.DynamicInstances),
            R.RSHasRoot ? "yes" : "no"});
  T.addRow({"pruned slice (PS)", std::to_string(R.PS.StaticStmts),
            std::to_string(R.PS.DynamicInstances),
            R.PSHasRoot ? "yes" : "no"});
  T.addRow({"after implicit deps (IPS)",
            std::to_string(R.Report.IPSStats.StaticStmts),
            std::to_string(R.Report.IPSStats.DynamicInstances),
            R.Report.RootCauseFound ? "yes" : "no"});
  T.addRow({"failure chain (OS)", std::to_string(R.OS.StaticStmts),
            std::to_string(R.OS.DynamicInstances), "yes"});
  std::printf("%s\n", T.str().c_str());

  std::printf("session: %zu prunings, %zu verifications, %zu iterations, "
              "%zu implicit edges\n\n",
              R.Report.UserPrunings, R.Report.Verifications,
              R.Report.Iterations, R.Report.ExpandedEdges);

  std::printf("final fault candidates (unique statements, most suspicious "
              "first):\n");
  // The report's slice is instance-level; present unique statements the
  // way a programmer would read them.
  std::set<StmtId> SeenStmts;
  core::DebugSession Session(Prog, Fault->FailingInput,
                             Runner.expectedOutputs(), Fault->TestSuite);
  for (TraceIdx I : R.Report.FinalPrunedSlice) {
    StmtId S = InvalidId;
    S = Session.trace().size() > I ? Session.trace().step(I).Stmt : InvalidId;
    if (!isValidId(S) || !SeenStmts.insert(S).second)
      continue;
    std::printf("  %s%s\n", lang::describeStmt(Prog, S).c_str(),
                S == Runner.rootCause() ? "   <== ROOT CAUSE" : "");
  }
  return R.Valid ? 0 : 1;
}
