//===-- examples/quickstart.cpp - Five-minute tour ------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Quickstart: parse a tiny Siml program with an execution omission error,
// watch classic dynamic slicing miss the root cause, verify one implicit
// dependence by predicate switching, and see the expanded slice expose it.
//
//   $ ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "support/Diagnostic.h"

#include <cstdio>

using namespace eoe;

namespace {

// A miniature execution omission error: `limit` is computed wrongly (the
// root cause, line 3), so the `if` on line 5 silently skips the discount
// and the printed price is too high. Nothing that *executed* connects the
// printed value to line 3.
const char *FaultyProgram =
    "fn main() {\n"                    // 1
    "var owed = input();\n"            // 2
    "var limit = 9999;\n"              // 3  <- root cause (should be 100)
    "var discount = 0;\n"              // 4
    "if (owed > limit) {\n"            // 5
    "discount = owed / 10;\n"          // 6  <- omitted
    "}\n"                              // 7
    "var price = owed - discount;\n"   // 8
    "print(owed);\n"                   // 9  correct output
    "print(price);\n"                  // 10 wrong output
    "}\n";

/// The "programmer": knows which statement is the root cause, never
/// vouches for anything else.
class QuickOracle : public slicing::Oracle {
public:
  explicit QuickOracle(StmtId Root) : Root(Root) {}
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
};

} // namespace

int main() {
  std::printf("== EOE quickstart: locating an execution omission error ==\n\n");
  std::printf("%s\n", FaultyProgram);

  // 1. Parse and check.
  DiagnosticEngine Diags;
  std::unique_ptr<lang::Program> Prog =
      lang::parseAndCheck(FaultyProgram, Diags);
  if (!Prog) {
    std::fprintf(stderr, "parse failed:\n%s", Diags.str().c_str());
    return 1;
  }

  // 2. Run the failing input. A correct program (limit = 100) would print
  //    owed=500, price=450; the faulty one prints price=500.
  core::DebugSession Session(*Prog, /*FailingInput=*/{500},
                             /*ExpectedOutputs=*/{500, 450},
                             /*TestSuite=*/{{50}, {200}, {800}});
  if (!Session.hasFailure()) {
    std::fprintf(stderr, "the fault did not reproduce\n");
    return 1;
  }
  std::printf("failing run printed: owed=500 (correct), price=500 "
              "(expected %lld)\n\n",
              static_cast<long long>(Session.verdicts().ExpectedValue));

  // 3. Classic dynamic slicing misses the root cause.
  StmtId Root = Prog->statementAtLine(3);
  slicing::SliceResult DS = Session.dynamicSlice();
  std::printf("dynamic slice of the wrong output: %zu statements, "
              "%zu instances\n",
              DS.Stats.StaticStmts, DS.Stats.DynamicInstances);
  std::printf("  contains the root cause (line 3)? %s\n",
              DS.containsStmt(Session.trace(), Root) ? "yes" : "NO -- the "
              "omission hides it");

  // 4. Relevant slicing captures it, conservatively.
  slicing::RelevantSliceResult RS = Session.relevantSlice();
  std::printf("relevant slice: %zu statements, %zu instances; contains "
              "root cause? %s\n\n",
              RS.Slice.Stats.StaticStmts, RS.Slice.Stats.DynamicInstances,
              RS.Slice.containsStmt(Session.trace(), Root) ? "yes" : "no");

  // 5. The paper's technique: switch the predicate and observe.
  QuickOracle Oracle(Root);
  core::LocateReport Report = Session.locate(Oracle);
  std::printf("demand-driven implicit dependence location:\n");
  std::printf("  verifications (predicate-switched re-executions): %zu\n",
              Report.Verifications);
  std::printf("  implicit edges added: %zu (%zu strong)\n",
              Report.ExpandedEdges, Report.StrongEdges);
  for (const auto &E : Session.graph().implicitEdges())
    std::printf("    edge: [%s]  --implicit-->  [%s]\n",
                lang::describeStmt(*Prog,
                                   Session.trace().step(E.Use).Stmt).c_str(),
                lang::describeStmt(*Prog,
                                   Session.trace().step(E.Pred).Stmt).c_str());
  std::printf("  root cause located? %s\n\n",
              Report.RootCauseFound ? "YES" : "no");

  std::printf("final fault candidates (most suspicious first):\n");
  for (TraceIdx I : Report.FinalPrunedSlice)
    std::printf("  %s\n",
                lang::describeStmt(*Prog, Session.trace().step(I).Stmt)
                    .c_str());
  return Report.RootCauseFound ? 0 : 1;
}
