//===-- tools/eoe-fuzz.cpp - Randomized pipeline fuzzer --------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Fuzzes the whole debugging pipeline: generates seeded random Siml
// programs, injects a synthetic execution omission fault into each, and
// checks the paper's end-to-end contract on every reproducing seed --
// the dynamic slice misses the root cause, the relevant slice captures
// it, and the demand-driven locator finds it. Any deviation is printed
// with the offending seed and program for triage.
//
//   eoe-fuzz [--fuzz=pipeline|diskstore|switched|chain] [--seeds N]
//            [--start S] [--verbose]
//
// --fuzz=diskstore targets the persistent checkpoint cache instead:
// each seed serializes a random program's snapshots, round-trips them,
// then mutates the byte image (bit flips, truncation, length-field
// corruption, version skew) and asserts the hardened loader either
// rejects cleanly or decodes the original state exactly -- never
// crashes, never fabricates a snapshot.
//
// --fuzz=switched targets the switched-run snapshot cache: each
// reproducing seed runs the locator three times -- cache off, cache on
// (two sessions around a seal(), so the second actually resumes from
// divergence-keyed snapshots and splices reconvergent suffixes), and
// cache size-capped -- and asserts the critical predicates, counters,
// and final pruned slice are bit-identical across all three.
//
// --fuzz=chain targets the multi-switch chain search: each reproducing
// seed runs the locator chain-off (depth 1) and chain-on (depth 2, at 1
// and 4 threads) and asserts chains only ever *add* located roots --
// whatever single-switch locating found, the chained locator must find
// too -- and that the chain-on outcome and chain counters are
// bit-identical across thread counts.
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"
#include "gen/RandomProgram.h"
#include "interp/CheckpointDiskStore.h"
#include "lang/Parser.h"
#include "support/Diagnostic.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>

using namespace eoe;

namespace {

class RootOnlyOracle : public slicing::Oracle {
public:
  explicit RootOnlyOracle(StmtId Root) : Root(Root) {}
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
};

struct Tally {
  size_t Generated = 0;
  size_t Masked = 0;
  size_t Located = 0;
  size_t DSMissed = 0;
  size_t RSCaptured = 0;
  size_t Failures = 0;
};

bool runSeed(uint64_t Seed, bool Verbose, Tally &T) {
  gen::RandomProgramGenerator Gen(Seed);
  auto Variant = Gen.generateOmission();
  ++T.Generated;

  DiagnosticEngine Diags;
  auto Fixed = lang::parseAndCheck(Variant.FixedSource, Diags);
  auto Faulty = lang::parseAndCheck(Variant.FaultySource, Diags);
  if (!Fixed || !Faulty) {
    std::printf("seed %llu: GENERATED PROGRAM DOES NOT PARSE\n%s\n%s\n",
                static_cast<unsigned long long>(Seed), Diags.str().c_str(),
                Variant.FaultySource.c_str());
    ++T.Failures;
    return false;
  }

  analysis::StaticAnalysis FixedSA(*Fixed);
  interp::Interpreter FixedInterp(*Fixed, FixedSA);
  interp::ExecutionTrace FixedRun = FixedInterp.run(Variant.Input);

  core::DebugSession Session(*Faulty, Variant.Input, FixedRun.outputValues(),
                             {});
  if (!Session.hasFailure()) {
    ++T.Masked;
    return true;
  }

  StmtId Root = Faulty->statementAtLine(Variant.RootCauseLine);
  bool DSMissed =
      !Session.dynamicSlice().containsStmt(Session.trace(), Root);
  bool RSCaptured =
      Session.relevantSlice().Slice.containsStmt(Session.trace(), Root);
  RootOnlyOracle Oracle(Root);
  core::LocateReport R = Session.locate(Oracle);

  T.DSMissed += DSMissed;
  T.RSCaptured += RSCaptured;
  T.Located += R.RootCauseFound;
  bool Ok = DSMissed && RSCaptured && R.RootCauseFound;
  if (!Ok) {
    std::printf("seed %llu: CONTRACT VIOLATED (DS missed=%d, RS "
                "captured=%d, located=%d)\n%s\n",
                static_cast<unsigned long long>(Seed), DSMissed, RSCaptured,
                R.RootCauseFound, Variant.FaultySource.c_str());
    ++T.Failures;
  } else if (Verbose) {
    std::printf("seed %llu: ok (%zu verifications, %zu edges, trace %zu)\n",
                static_cast<unsigned long long>(Seed), R.Verifications,
                R.ExpandedEdges, Session.trace().size());
  }
  return Ok;
}

//===----------------------------------------------------------------------===//
// Disk-store fuzzing: the loader must reject every corrupted cache image
// cleanly (or prove it decodes the original exactly -- a mutation the
// checksums cannot see must at least be harmless).
//===----------------------------------------------------------------------===//

struct DiskTally {
  size_t Generated = 0;
  size_t Snapshots = 0;
  size_t Mutations = 0;
  size_t Rejected = 0;
  size_t Harmless = 0;
  size_t Failures = 0;
};

using SnapshotList = std::vector<std::shared_ptr<const interp::Checkpoint>>;

bool sameSnapshots(const SnapshotList &A, const SnapshotList &B) {
  return A.size() == B.size() &&
         std::equal(A.begin(), A.end(), B.begin(),
                    [](const auto &X, const auto &Y) { return *X == *Y; });
}

bool runDiskstoreSeed(uint64_t Seed, bool Verbose, DiskTally &T) {
  gen::RandomProgramGenerator Gen(Seed);
  auto Variant = Gen.generateOmission();
  ++T.Generated;

  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Variant.FaultySource, Diags);
  if (!Prog) {
    std::printf("seed %llu: GENERATED PROGRAM DOES NOT PARSE\n%s\n",
                static_cast<unsigned long long>(Seed), Diags.str().c_str());
    ++T.Failures;
    return false;
  }
  analysis::StaticAnalysis SA(*Prog);
  interp::Interpreter Interp(*Prog, SA);
  interp::ExecutionTrace Trace = Interp.run(Variant.Input);

  // Snapshot up to 24 predicate instances spread over the trace, the
  // same way a collection pass would.
  std::vector<TraceIdx> Sites;
  for (TraceIdx I = 0; I < Trace.size(); ++I)
    if (Trace.step(I).isPredicateInstance())
      Sites.push_back(I);
  if (Sites.size() > 24) {
    std::vector<TraceIdx> Thinned;
    size_t Stride = Sites.size() / 24;
    for (size_t I = 0; I < Sites.size(); I += Stride)
      Thinned.push_back(Sites[I]);
    Sites = std::move(Thinned);
  }
  interp::CheckpointStore Store(interp::DefaultCheckpointMemBytes);
  interp::CheckpointPlan Plan;
  Plan.Sites = Sites;
  Plan.Store = &Store;
  interp::Interpreter::Options Opts;
  Opts.Checkpoints = &Plan;
  Interp.run(Variant.Input, Opts);

  SnapshotList Snaps;
  for (TraceIdx S : Sites)
    if (auto CP = Store.nearest(S))
      if (Snaps.empty() || Snaps.back()->Index < CP->Index)
        Snaps.push_back(CP);
  T.Snapshots += Snaps.size();

  const uint64_t MaxSteps = 1'000'000;
  const uint64_t Hash = interp::SharedCheckpointStore::hashProgram(*Prog);
  std::string Bytes =
      interp::serializeCheckpoints(Snaps, *Prog, Hash, MaxSteps);
  if (Bytes.empty()) {
    std::printf("seed %llu: SERIALIZATION FAILED\n",
                static_cast<unsigned long long>(Seed));
    ++T.Failures;
    return false;
  }

  std::string Err;
  auto Back =
      interp::deserializeCheckpoints(Bytes, *Prog, Hash, MaxSteps, &Err);
  if (!Back || !sameSnapshots(Snaps, *Back)) {
    std::printf("seed %llu: CLEAN ROUND-TRIP FAILED (%s)\n",
                static_cast<unsigned long long>(Seed),
                Back ? "decoded state differs" : Err.c_str());
    ++T.Failures;
    return false;
  }

  // Seeded mutations. Every decode attempt must come back as a clean
  // reject or as the exact original snapshots; anything else (crash, UB,
  // silently different state) is a loader bug.
  std::mt19937_64 Rng(Seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  bool Ok = true;
  for (int Trial = 0; Trial < 8; ++Trial) {
    std::string M = Bytes;
    const char *What = "";
    switch (Rng() % 4) {
    case 0: { // Bit flips.
      What = "bit flip";
      int Flips = 1 + static_cast<int>(Rng() % 4);
      for (int F = 0; F < Flips; ++F)
        M[Rng() % M.size()] ^= static_cast<char>(1u << (Rng() % 8));
      break;
    }
    case 1: // Truncation (always strictly shorter).
      What = "truncation";
      M.resize(Rng() % M.size());
      break;
    case 2: { // 4-byte stomp: length fields, CRCs, counts, anything.
      What = "length-field corruption";
      size_t At = Rng() % (M.size() - 3);
      uint32_t V = static_cast<uint32_t>(Rng());
      for (int B = 0; B < 4; ++B)
        M[At + B] = static_cast<char>((V >> (8 * B)) & 0xFF);
      break;
    }
    case 3: { // Version skew: any version but the current one.
      What = "version skew";
      uint32_t V = 2 + static_cast<uint32_t>(Rng() % 1000);
      for (int B = 0; B < 4; ++B)
        M[8 + B] = static_cast<char>((V >> (8 * B)) & 0xFF);
      break;
    }
    }
    if (M == Bytes)
      continue; // Mutation was a no-op (flip landed on the same bit twice).
    ++T.Mutations;
    auto R = interp::deserializeCheckpoints(M, *Prog, Hash, MaxSteps);
    if (!R) {
      ++T.Rejected;
    } else if (sameSnapshots(Snaps, *R)) {
      ++T.Harmless;
    } else {
      std::printf("seed %llu trial %d: LOADER ACCEPTED CORRUPTED CACHE "
                  "(%s, %zu -> %zu bytes)\n",
                  static_cast<unsigned long long>(Seed), Trial, What,
                  Bytes.size(), M.size());
      ++T.Failures;
      Ok = false;
    }
  }
  if (Verbose)
    std::printf("seed %llu: ok (%zu snapshots, %zu bytes)\n",
                static_cast<unsigned long long>(Seed), Snaps.size(),
                Bytes.size());
  return Ok;
}

//===----------------------------------------------------------------------===//
// Switched-cache fuzzing: the divergence-keyed snapshot cache must be
// invisible in every result -- only the re-execution work may change.
//===----------------------------------------------------------------------===//

struct SwitchedTally {
  size_t Generated = 0;
  size_t Masked = 0;
  size_t Hits = 0;
  size_t Splices = 0;
  size_t Failures = 0;
};

/// Everything the locator decides, canonicalized for comparison: the
/// verified implicit edges (the "critical predicates"), the Table 3
/// counters, and the final pruned slice.
std::string locateSignature(core::DebugSession &Session,
                            const core::LocateReport &R) {
  std::string Sig;
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "found=%d it=%zu ver=%zu re=%zu edges=%zu/%zu\n",
                R.RootCauseFound, R.Iterations, R.Verifications,
                R.Reexecutions, R.ExpandedEdges, R.StrongEdges);
  Sig += Buf;
  for (const auto &E : Session.graph().implicitEdges()) {
    std::snprintf(Buf, sizeof(Buf), "edge %u->%u strong=%d\n", E.Use, E.Pred,
                  E.Strong);
    Sig += Buf;
  }
  for (TraceIdx I : R.FinalPrunedSlice) {
    std::snprintf(Buf, sizeof(Buf), "ps %u\n", I);
    Sig += Buf;
  }
  return Sig;
}

/// Locates twice (two sessions around a seal(), so the second session's
/// switched runs actually resume from the first's staged snapshots) and
/// returns the concatenated signatures. \p CacheBytes 0 = reference.
/// Each pass gets a fresh registry (report counters read absolute
/// registry values); cache activity is summed into \p Tally when given.
std::string locateTwice(const lang::Program &Faulty,
                        const std::vector<int64_t> &Input,
                        const std::vector<int64_t> &Expected, StmtId Root,
                        size_t CacheBytes, SwitchedTally *Tally) {
  interp::SwitchedRunStore Store(CacheBytes);
  std::string Sig;
  for (int Pass = 0; Pass < 2; ++Pass) {
    support::StatsRegistry Stats;
    core::DebugSession::Config C;
    C.Locate.SwitchedCacheBytes = CacheBytes;
    if (CacheBytes > 0)
      C.SwitchedRuns = &Store;
    C.Stats = &Stats;
    core::DebugSession Session(Faulty, Input, Expected, {}, C);
    if (!Session.hasFailure())
      return Sig; // Caller already checked; belt and braces.
    RootOnlyOracle Oracle(Root);
    core::LocateReport R = Session.locate(Oracle);
    Sig += locateSignature(Session, R);
    Store.seal();
    if (Tally) {
      Tally->Hits += static_cast<size_t>(
          Stats.counter("verify.ckpt.switched_hits").get());
      Tally->Splices += static_cast<size_t>(
          Stats.counter("verify.ckpt.switched_spliced_suffix_steps").get());
    }
  }
  return Sig;
}

bool runSwitchedSeed(uint64_t Seed, bool Verbose, SwitchedTally &T) {
  gen::RandomProgramGenerator Gen(Seed);
  auto Variant = Gen.generateOmission();
  ++T.Generated;

  DiagnosticEngine Diags;
  auto Fixed = lang::parseAndCheck(Variant.FixedSource, Diags);
  auto Faulty = lang::parseAndCheck(Variant.FaultySource, Diags);
  if (!Fixed || !Faulty) {
    std::printf("seed %llu: GENERATED PROGRAM DOES NOT PARSE\n%s\n",
                static_cast<unsigned long long>(Seed), Diags.str().c_str());
    ++T.Failures;
    return false;
  }
  analysis::StaticAnalysis FixedSA(*Fixed);
  interp::Interpreter FixedInterp(*Fixed, FixedSA);
  std::vector<int64_t> Expected =
      FixedInterp.run(Variant.Input).outputValues();
  {
    core::DebugSession Probe(*Faulty, Variant.Input, Expected, {});
    if (!Probe.hasFailure()) {
      ++T.Masked;
      return true;
    }
  }
  StmtId Root = Faulty->statementAtLine(Variant.RootCauseLine);

  std::string Off = locateTwice(*Faulty, Variant.Input, Expected, Root,
                                /*CacheBytes=*/0, nullptr);
  std::string On = locateTwice(*Faulty, Variant.Input, Expected, Root,
                               interp::DefaultSwitchedCacheBytes, &T);
  // A tight cap forces the LRU admission path; 64 KiB keeps a bundle or
  // two while evicting the rest.
  std::string Capped = locateTwice(*Faulty, Variant.Input, Expected, Root,
                                   /*CacheBytes=*/64 << 10, nullptr);

  bool Ok = On == Off && Capped == Off;
  if (!Ok) {
    std::printf("seed %llu: SWITCHED CACHE CHANGED THE RESULT (on %s, "
                "capped %s)\n--- off ---\n%s--- on ---\n%s%s\n",
                static_cast<unsigned long long>(Seed),
                On == Off ? "ok" : "DIFFERS",
                Capped == Off ? "ok" : "DIFFERS", Off.c_str(), On.c_str(),
                Variant.FaultySource.c_str());
    ++T.Failures;
  } else if (Verbose) {
    std::printf("seed %llu: ok\n", static_cast<unsigned long long>(Seed));
  }
  return Ok;
}

//===----------------------------------------------------------------------===//
// Chain fuzzing: depth-2 perturbation chains may only add information.
// The chain search fires when both single-switch verdict pools come up
// empty, so a chained locator must find every root the single-switch
// locator finds; its extra work must also be thread-count invariant.
//===----------------------------------------------------------------------===//

struct ChainTally {
  size_t Generated = 0;
  size_t Masked = 0;
  size_t LocatedOff = 0;
  size_t LocatedOn = 0;
  size_t Gained = 0;
  size_t ChainRuns = 0;
  size_t Commits = 0;
  size_t Failures = 0;
};

struct ChainOutcome {
  bool Found = false;
  std::string Sig;
};

bool runChainSeed(uint64_t Seed, bool Verbose, ChainTally &T) {
  gen::RandomProgramGenerator Gen(Seed);
  // Alternate fault shapes: even seeds inject the chained omission (no
  // single switch exposes it -- the chain search must carry the day),
  // odd seeds the plain one (single switch suffices -- chains must not
  // get in the way).
  auto Variant =
      Seed % 2 == 0 ? Gen.generateChainedOmission() : Gen.generateOmission();
  ++T.Generated;

  DiagnosticEngine Diags;
  auto Fixed = lang::parseAndCheck(Variant.FixedSource, Diags);
  auto Faulty = lang::parseAndCheck(Variant.FaultySource, Diags);
  if (!Fixed || !Faulty) {
    std::printf("seed %llu: GENERATED PROGRAM DOES NOT PARSE\n%s\n",
                static_cast<unsigned long long>(Seed), Diags.str().c_str());
    ++T.Failures;
    return false;
  }
  analysis::StaticAnalysis FixedSA(*Fixed);
  interp::Interpreter FixedInterp(*Fixed, FixedSA);
  std::vector<int64_t> Expected =
      FixedInterp.run(Variant.Input).outputValues();
  {
    core::DebugSession Probe(*Faulty, Variant.Input, Expected, {});
    if (!Probe.hasFailure()) {
      ++T.Masked;
      return true;
    }
  }
  StmtId Root = Faulty->statementAtLine(Variant.RootCauseLine);

  auto Locate = [&](unsigned Depth, unsigned Threads,
                    support::StatsRegistry *Stats) {
    core::DebugSession::Config C;
    C.Opt.Reuse.ChainDepth = Depth;
    C.Opt.Exec.Threads = Threads;
    C.Opt.Exec.Stats = Stats;
    core::DebugSession Session(*Faulty, Variant.Input, Expected, {}, C);
    RootOnlyOracle Oracle(Root);
    core::LocateReport R = Session.locate(Oracle);
    ChainOutcome O;
    O.Found = R.RootCauseFound;
    O.Sig = locateSignature(Session, R);
    return O;
  };

  ChainOutcome Off = Locate(/*Depth=*/1, /*Threads=*/1, nullptr);
  support::StatsRegistry Reg1, Reg4;
  ChainOutcome On1 = Locate(/*Depth=*/2, /*Threads=*/1, &Reg1);
  ChainOutcome On4 = Locate(/*Depth=*/2, /*Threads=*/4, &Reg4);

  T.LocatedOff += Off.Found;
  T.LocatedOn += On1.Found;
  T.Gained += On1.Found && !Off.Found;
  T.ChainRuns +=
      static_cast<size_t>(Reg1.counter("verify.chain.runs").get());
  T.Commits +=
      static_cast<size_t>(Reg1.counter("locate.chain.commits").get());

  bool Monotone = !Off.Found || On1.Found;
  bool Deterministic =
      On1.Sig == On4.Sig &&
      Reg1.counter("verify.chain.runs").get() ==
          Reg4.counter("verify.chain.runs").get() &&
      Reg1.counter("locate.chain.commits").get() ==
          Reg4.counter("locate.chain.commits").get();
  bool Ok = Monotone && Deterministic;
  if (!Ok) {
    std::printf("seed %llu: CHAIN CONTRACT VIOLATED (monotone=%d, "
                "thread-invariant=%d; located off=%d on=%d)\n"
                "--- chain@1 ---\n%s--- chain@4 ---\n%s%s\n",
                static_cast<unsigned long long>(Seed), Monotone,
                Deterministic, Off.Found, On1.Found, On1.Sig.c_str(),
                On4.Sig.c_str(), Variant.FaultySource.c_str());
    ++T.Failures;
  } else if (Verbose) {
    std::printf("seed %llu: ok (located off=%d on=%d, %llu chain runs, "
                "%llu commits)\n",
                static_cast<unsigned long long>(Seed), Off.Found, On1.Found,
                static_cast<unsigned long long>(
                    Reg1.counter("verify.chain.runs").get()),
                static_cast<unsigned long long>(
                    Reg1.counter("locate.chain.commits").get()));
  }
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Seeds = 50;
  uint64_t Start = 1;
  bool Verbose = false;
  std::string Mode = "pipeline";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--seeds") == 0 && I + 1 < Argc)
      Seeds = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(Argv[I], "--start") == 0 && I + 1 < Argc)
      Start = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(Argv[I], "--verbose") == 0)
      Verbose = true;
    else if (std::strncmp(Argv[I], "--fuzz=", 7) == 0)
      Mode = Argv[I] + 7;
    else {
      std::fprintf(stderr, "usage: eoe-fuzz [--fuzz=pipeline|diskstore|"
                           "switched|chain] [--seeds N] [--start S] "
                           "[--verbose]\n");
      return 2;
    }
  }

  Timer Clock;
  if (Mode == "switched") {
    SwitchedTally T;
    for (uint64_t Seed = Start; Seed < Start + Seeds; ++Seed)
      runSwitchedSeed(Seed, Verbose, T);
    std::printf("switched-fuzzed %zu programs in %s s: %zu masked, %zu "
                "snapshot hits, %zu spliced steps, %zu violations\n",
                T.Generated, formatDouble(Clock.seconds(), 2).c_str(),
                T.Masked, T.Hits, T.Splices, T.Failures);
    return T.Failures == 0 ? 0 : 1;
  }
  if (Mode == "chain") {
    ChainTally T;
    for (uint64_t Seed = Start; Seed < Start + Seeds; ++Seed)
      runChainSeed(Seed, Verbose, T);
    // The even seeds exist to exercise the chain machinery; a run where
    // chains never located anything beyond single switches means the
    // mode silently stopped testing its subject.
    if (T.Generated > T.Masked && T.Gained == 0) {
      std::printf("chain fuzzing never gained a located root over "
                  "single-switch -- chained subjects are not firing\n");
      ++T.Failures;
    }
    std::printf("chain-fuzzed %zu programs in %s s: %zu masked, located "
                "%zu off / %zu on (%zu gained), %zu chain runs, %zu "
                "commits, %zu violations\n",
                T.Generated, formatDouble(Clock.seconds(), 2).c_str(),
                T.Masked, T.LocatedOff, T.LocatedOn, T.Gained, T.ChainRuns,
                T.Commits, T.Failures);
    return T.Failures == 0 ? 0 : 1;
  }
  if (Mode == "diskstore") {
    DiskTally T;
    for (uint64_t Seed = Start; Seed < Start + Seeds; ++Seed)
      runDiskstoreSeed(Seed, Verbose, T);
    std::printf("diskstore-fuzzed %zu programs in %s s: %zu snapshots, "
                "%zu mutations (%zu rejected, %zu harmless), %zu "
                "violations\n",
                T.Generated, formatDouble(Clock.seconds(), 2).c_str(),
                T.Snapshots, T.Mutations, T.Rejected, T.Harmless,
                T.Failures);
    return T.Failures == 0 ? 0 : 1;
  }
  if (Mode != "pipeline") {
    std::fprintf(stderr, "error: unknown --fuzz mode '%s'\n", Mode.c_str());
    return 2;
  }

  Tally T;
  for (uint64_t Seed = Start; Seed < Start + Seeds; ++Seed)
    runSeed(Seed, Verbose, T);

  std::printf("fuzzed %zu programs in %s s: %zu masked, %zu reproducing "
              "(DS missed %zu, RS captured %zu, located %zu), %zu "
              "violations\n",
              T.Generated, formatDouble(Clock.seconds(), 2).c_str(),
              T.Masked, T.Generated - T.Masked, T.DSMissed, T.RSCaptured,
              T.Located, T.Failures);
  return T.Failures == 0 ? 0 : 1;
}
