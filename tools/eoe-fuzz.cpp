//===-- tools/eoe-fuzz.cpp - Randomized pipeline fuzzer --------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// Fuzzes the whole debugging pipeline: generates seeded random Siml
// programs, injects a synthetic execution omission fault into each, and
// checks the paper's end-to-end contract on every reproducing seed --
// the dynamic slice misses the root cause, the relevant slice captures
// it, and the demand-driven locator finds it. Any deviation is printed
// with the offending seed and program for triage.
//
//   eoe-fuzz [--seeds N] [--start S] [--verbose]
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"
#include "gen/RandomProgram.h"
#include "lang/Parser.h"
#include "support/Diagnostic.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace eoe;

namespace {

class RootOnlyOracle : public slicing::Oracle {
public:
  explicit RootOnlyOracle(StmtId Root) : Root(Root) {}
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
};

struct Tally {
  size_t Generated = 0;
  size_t Masked = 0;
  size_t Located = 0;
  size_t DSMissed = 0;
  size_t RSCaptured = 0;
  size_t Failures = 0;
};

bool runSeed(uint64_t Seed, bool Verbose, Tally &T) {
  gen::RandomProgramGenerator Gen(Seed);
  auto Variant = Gen.generateOmission();
  ++T.Generated;

  DiagnosticEngine Diags;
  auto Fixed = lang::parseAndCheck(Variant.FixedSource, Diags);
  auto Faulty = lang::parseAndCheck(Variant.FaultySource, Diags);
  if (!Fixed || !Faulty) {
    std::printf("seed %llu: GENERATED PROGRAM DOES NOT PARSE\n%s\n%s\n",
                static_cast<unsigned long long>(Seed), Diags.str().c_str(),
                Variant.FaultySource.c_str());
    ++T.Failures;
    return false;
  }

  analysis::StaticAnalysis FixedSA(*Fixed);
  interp::Interpreter FixedInterp(*Fixed, FixedSA);
  interp::ExecutionTrace FixedRun = FixedInterp.run(Variant.Input);

  core::DebugSession Session(*Faulty, Variant.Input, FixedRun.outputValues(),
                             {});
  if (!Session.hasFailure()) {
    ++T.Masked;
    return true;
  }

  StmtId Root = Faulty->statementAtLine(Variant.RootCauseLine);
  bool DSMissed =
      !Session.dynamicSlice().containsStmt(Session.trace(), Root);
  bool RSCaptured =
      Session.relevantSlice().Slice.containsStmt(Session.trace(), Root);
  RootOnlyOracle Oracle(Root);
  core::LocateReport R = Session.locate(Oracle);

  T.DSMissed += DSMissed;
  T.RSCaptured += RSCaptured;
  T.Located += R.RootCauseFound;
  bool Ok = DSMissed && RSCaptured && R.RootCauseFound;
  if (!Ok) {
    std::printf("seed %llu: CONTRACT VIOLATED (DS missed=%d, RS "
                "captured=%d, located=%d)\n%s\n",
                static_cast<unsigned long long>(Seed), DSMissed, RSCaptured,
                R.RootCauseFound, Variant.FaultySource.c_str());
    ++T.Failures;
  } else if (Verbose) {
    std::printf("seed %llu: ok (%zu verifications, %zu edges, trace %zu)\n",
                static_cast<unsigned long long>(Seed), R.Verifications,
                R.ExpandedEdges, Session.trace().size());
  }
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  size_t Seeds = 50;
  uint64_t Start = 1;
  bool Verbose = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--seeds") == 0 && I + 1 < Argc)
      Seeds = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(Argv[I], "--start") == 0 && I + 1 < Argc)
      Start = std::strtoull(Argv[++I], nullptr, 10);
    else if (std::strcmp(Argv[I], "--verbose") == 0)
      Verbose = true;
    else {
      std::fprintf(stderr,
                   "usage: eoe-fuzz [--seeds N] [--start S] [--verbose]\n");
      return 2;
    }
  }

  Timer Clock;
  Tally T;
  for (uint64_t Seed = Start; Seed < Start + Seeds; ++Seed)
    runSeed(Seed, Verbose, T);

  std::printf("fuzzed %zu programs in %s s: %zu masked, %zu reproducing "
              "(DS missed %zu, RS captured %zu, located %zu), %zu "
              "violations\n",
              T.Generated, formatDouble(Clock.seconds(), 2).c_str(),
              T.Masked, T.Generated - T.Masked, T.DSMissed, T.RSCaptured,
              T.Located, T.Failures);
  return T.Failures == 0 ? 0 : 1;
}
