//===-- tools/eoec.cpp - The EOE command-line driver ----------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
// A command-line front end over the whole pipeline, operating on Siml
// source files:
//
//   eoec run     <file> [--input 1,2,3] [--no-trace] [--max-steps N]
//   eoec trace   <file> [--input ...] [--save out.eoetrace]
//   eoec switch  <file> --line L [--instance K] [--input ...]
//   eoec slice   <file> --expected v1,v2,... [--input ...] [--relevant]
//   eoec locate  <file> --expected v1,v2,... --root-line N [--input ...]
//   eoec dot-cfg     <file> [--function name]        (GraphViz to stdout)
//   eoec dot-regions <file> [--input ...]
//   eoec dot-ddg     <file> [--input ...] [--expected ... for slice-only]
//
// `--expected` is the output sequence of a correct run (e.g. obtained by
// running the fixed program); the first mismatch defines the wrong
// output o-cross and the expected value vexp.
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"
#include "interp/CheckpointDiskStore.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "support/Diagnostic.h"
#include "support/EventTracer.h"
#include "support/Options.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "interp/TraceIO.h"
#include "viz/Dot.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace eoe;

namespace {

struct CliOptions {
  std::string Command;
  std::string File;
  std::vector<int64_t> Input;
  std::vector<int64_t> Expected;
  /// Every shared knob (budgets, threads, checkpoint / switched-cache /
  /// chain options) lives in the unified bundle, parsed by
  /// support::parseCommonOption so the CLI cannot drift from the
  /// structs. Opt.Exec.Stats/Tracer are wired by main() when Cli asks
  /// for them.
  eoe::Options Opt;
  /// Observability requests (--stats[=json], --trace-out=FILE); the
  /// sinks are owned by main() and live through the whole command.
  support::CommonCliState Cli;
  uint32_t Line = 0;
  uint32_t Instance = 1;
  uint32_t RootLine = 0;
  bool NoTrace = false;
  bool Relevant = false;
  std::string Function = "main";
  std::string SavePath;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: eoec <command> <file.siml> [options]\n"
      "commands:\n"
      "  run      execute the program and print its outputs\n"
      "  trace    execute and dump the statement-instance trace\n"
      "  switch   re-execute with a predicate instance's outcome negated\n"
      "           (--line L [--instance K])\n"
      "  slice    dynamic slice of the wrong output (--expected ...;\n"
      "           add --relevant for the relevant slice)\n"
      "  locate   run the demand-driven implicit-dependence locator\n"
      "           (--expected ... --root-line N)\n"
      "options:\n"
      "  --input v1,v2,...     program input values (default: empty)\n"
      "  --expected v1,v2,...  correct-run outputs (slice/locate)\n"
      "  --line L              predicate source line (switch)\n"
      "  --instance K          1-based instance number (default 1)\n"
      "  --root-line N         known root cause line (locate)\n"
      "  --no-trace            run without dependence tracing (run)\n");
  std::fputs(support::commonOptionsHelp(), stderr);
}

std::vector<int64_t> parseIntList(const std::string &Text) {
  std::vector<int64_t> Out;
  for (const std::string &Part : splitString(Text, ',')) {
    if (trim(Part).empty())
      continue;
    Out.push_back(std::strtoll(std::string(trim(Part)).c_str(), nullptr, 10));
  }
  return Out;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  if (Argc < 3)
    return false;
  Opts.Command = Argv[1];
  Opts.File = Argv[2];
  for (int I = 3; I < Argc; ++I) {
    // The shared knobs (budgets, threads, checkpoint / switched-cache /
    // chain flags, observability) are handled by the one parser every
    // front end uses; only command-specific flags remain below.
    switch (support::parseCommonOption(Argc, Argv, I, Opts.Opt, &Opts.Cli)) {
    case support::ParseResult::Ok:
      continue;
    case support::ParseResult::Error:
      return false;
    case support::ParseResult::NoMatch:
      break;
    }
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--input") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Input = parseIntList(V);
    } else if (Arg == "--expected") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Expected = parseIntList(V);
    } else if (Arg == "--line") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Line = static_cast<uint32_t>(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--instance") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Instance = static_cast<uint32_t>(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--root-line") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.RootLine = static_cast<uint32_t>(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--save") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.SavePath = V;
    } else if (Arg == "--function") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Function = V;
    } else if (Arg == "--no-trace") {
      Opts.NoTrace = true;
    } else if (Arg == "--relevant") {
      Opts.Relevant = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<lang::Program> loadProgram(const std::string &Path) {
  std::ifstream Stream(Path);
  if (!Stream) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return nullptr;
  }
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  DiagnosticEngine Diags;
  auto Prog = lang::parseAndCheck(Buffer.str(), Diags);
  if (!Prog)
    std::fprintf(stderr, "%s", Diags.str().c_str());
  return Prog;
}

const char *exitReasonName(interp::ExitReason Reason) {
  switch (Reason) {
  case interp::ExitReason::Finished:
    return "finished";
  case interp::ExitReason::StepLimit:
    return "step limit exceeded";
  case interp::ExitReason::RuntimeError:
    return "runtime error";
  }
  return "?";
}

int cmdRun(const CliOptions &Opts, const lang::Program &Prog) {
  analysis::StaticAnalysis SA(Prog);
  interp::Interpreter Interp(Prog, SA, Opts.Opt.Exec.Stats);
  interp::Interpreter::Options RunOpts;
  RunOpts.MaxSteps = Opts.Opt.Exec.MaxSteps;
  RunOpts.Trace = !Opts.NoTrace;
  interp::ExecutionTrace T;
  {
    support::EventTracer::Span Span(Opts.Opt.Exec.Tracer, "interpret", "interp");
    T = Interp.run(Opts.Input, RunOpts);
  }
  for (const interp::OutputEvent &E : T.Outputs)
    std::printf("%lld\n", static_cast<long long>(E.Value));
  std::fprintf(stderr, "[%s; exit value %lld; %zu instances; %zu outputs]\n",
               exitReasonName(T.Exit), static_cast<long long>(T.ExitValue),
               T.size(), T.Outputs.size());
  return T.Exit == interp::ExitReason::Finished ? 0 : 1;
}

int cmdTrace(const CliOptions &Opts, const lang::Program &Prog) {
  analysis::StaticAnalysis SA(Prog);
  interp::Interpreter Interp(Prog, SA, Opts.Opt.Exec.Stats);
  interp::Interpreter::Options RunOpts;
  RunOpts.MaxSteps = Opts.Opt.Exec.MaxSteps;
  interp::ExecutionTrace T;
  {
    support::EventTracer::Span Span(Opts.Opt.Exec.Tracer, "interpret", "interp");
    T = Interp.run(Opts.Input, RunOpts);
  }
  if (!Opts.SavePath.empty()) {
    std::ofstream Out(Opts.SavePath);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.SavePath.c_str());
      return 2;
    }
    Out << interp::serializeTrace(T);
    std::fprintf(stderr, "[trace with %zu instances written to %s]\n",
                 T.size(), Opts.SavePath.c_str());
    return 0;
  }
  for (TraceIdx I = 0; I < T.size(); ++I) {
    const interp::StepRecord &Step = T.step(I);
    std::printf("%6u  parent=%-6s branch=%s  %s\n", I,
                Step.CdParent == InvalidId
                    ? "-"
                    : std::to_string(Step.CdParent).c_str(),
                Step.BranchTaken < 0 ? "-" : (Step.branch() ? "T" : "F"),
                lang::describeStmt(Prog, Step.Stmt).c_str());
  }
  return 0;
}

int cmdSwitch(const CliOptions &Opts, const lang::Program &Prog) {
  if (Opts.Line == 0) {
    std::fprintf(stderr, "error: switch requires --line\n");
    return 2;
  }
  StmtId Pred = Prog.statementAtLine(Opts.Line);
  if (!isValidId(Pred) || !Prog.statement(Pred)->isPredicate()) {
    std::fprintf(stderr, "error: no predicate on line %u\n", Opts.Line);
    return 2;
  }
  analysis::StaticAnalysis SA(Prog);
  interp::Interpreter Interp(Prog, SA, Opts.Opt.Exec.Stats);
  interp::ExecutionTrace Original, Switched;
  {
    support::EventTracer::Span Span(Opts.Opt.Exec.Tracer, "interpret", "interp");
    Original = Interp.run(Opts.Input);
  }
  {
    support::EventTracer::Span Span(Opts.Opt.Exec.Tracer, "reexec", "interp");
    Switched = Interp.runSwitched(Opts.Input, {Pred, Opts.Instance},
                                  Opts.Opt.Exec.MaxSteps);
  }

  std::printf("original outputs: ");
  for (int64_t V : Original.outputValues())
    std::printf("%lld ", static_cast<long long>(V));
  std::printf("\nswitched outputs: ");
  for (int64_t V : Switched.outputValues())
    std::printf("%lld ", static_cast<long long>(V));
  std::printf("\n");
  if (Switched.SwitchedStep == InvalidId) {
    std::fprintf(stderr, "warning: instance %u of line %u never executed\n",
                 Opts.Instance, Opts.Line);
    return 1;
  }
  std::fprintf(stderr, "[switched at instance index %u; %s]\n",
               Switched.SwitchedStep, exitReasonName(Switched.Exit));
  return 0;
}

int cmdSlice(const CliOptions &Opts, const lang::Program &Prog) {
  if (Opts.Expected.empty()) {
    std::fprintf(stderr, "error: slice requires --expected\n");
    return 2;
  }
  core::DebugSession::Config Config;
  Config.Opt = Opts.Opt;
  core::DebugSession Session(Prog, Opts.Input, Opts.Expected, {}, Config);
  if (!Session.hasFailure()) {
    std::printf("no failure: outputs match the expected sequence\n");
    return 0;
  }
  const auto &V = Session.verdicts();
  std::printf("wrong output #%zu: %lld (expected %lld)\n", V.WrongOutput,
              static_cast<long long>(
                  Session.trace().Outputs[V.WrongOutput].Value),
              static_cast<long long>(V.ExpectedValue));

  std::vector<bool> Member;
  if (Opts.Relevant) {
    auto RS = Session.relevantSlice();
    std::printf("relevant slice: %zu statements / %zu instances\n",
                RS.Slice.Stats.StaticStmts, RS.Slice.Stats.DynamicInstances);
    Member = RS.Slice.Member;
  } else {
    auto DS = Session.dynamicSlice();
    std::printf("dynamic slice: %zu statements / %zu instances\n",
                DS.Stats.StaticStmts, DS.Stats.DynamicInstances);
    Member = DS.Member;
  }
  std::set<StmtId> Seen;
  for (TraceIdx I = 0; I < Member.size(); ++I) {
    if (!Member[I])
      continue;
    StmtId S = Session.trace().step(I).Stmt;
    if (Seen.insert(S).second)
      std::printf("  %s\n", lang::describeStmt(Prog, S).c_str());
  }
  return 0;
}

/// Oracle for the CLI: the user supplies the root line; nothing is ever
/// declared benign (fully automatic pruning).
class CliOracle : public slicing::Oracle {
public:
  explicit CliOracle(StmtId Root) : Root(Root) {}
  bool isBenign(TraceIdx) override { return false; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
};

int cmdLocate(const CliOptions &Opts, const lang::Program &Prog) {
  if (Opts.Expected.empty() || Opts.RootLine == 0) {
    std::fprintf(stderr,
                 "error: locate requires --expected and --root-line\n");
    return 2;
  }
  StmtId Root = Prog.statementAtLine(Opts.RootLine);
  if (!isValidId(Root)) {
    std::fprintf(stderr, "error: no statement on line %u\n", Opts.RootLine);
    return 2;
  }
  core::DebugSession::Config Config;
  // The whole unified knob bundle forwards in one assignment; the
  // parser already filled every budget/thread/reuse/observability field.
  Config.Opt = Opts.Opt;
  // One CLI invocation is one session, but wiring the stores keeps the
  // promotion paths (and their counters) live for --stats users.
  interp::SharedCheckpointStore Shared;
  if (Opts.Opt.Reuse.CheckpointShare)
    Config.SharedCheckpoints = &Shared;
  interp::SwitchedRunStore SwitchedRuns(Opts.Opt.Reuse.SwitchedCacheBytes);
  if (Opts.Opt.Reuse.SwitchedCacheBytes > 0)
    Config.SwitchedRuns = &SwitchedRuns;
  core::DebugSession Session(Prog, Opts.Input, Opts.Expected, {}, Config);
  if (!Session.hasFailure()) {
    std::printf("no failure: outputs match the expected sequence\n");
    return 0;
  }
  CliOracle Oracle(Root);
  core::LocateReport R = Session.locate(Oracle);
  // Write-on-exit half of the warm start: persist whatever this session
  // loaded plus newly promoted under the same (program, budget) key the
  // session loaded with. Atomic (temp file + rename); best-effort.
  if (!Opts.Opt.Reuse.CheckpointDir.empty() &&
      Opts.Opt.Reuse.CheckpointShare) {
    interp::CheckpointDiskStore Disk(Opts.Opt.Reuse.CheckpointDir);
    if (!Disk.save(Shared, Prog, Config.Locate.MaxSteps, Opts.Opt.Exec.Stats))
      std::fprintf(stderr, "warning: could not write checkpoint cache in %s\n",
                   Opts.Opt.Reuse.CheckpointDir.c_str());
    // Cap the directory after the save so this invocation's own file
    // competes for the budget on equal (freshest-mtime) footing.
    if (Opts.Opt.Reuse.CheckpointDirCapBytes > 0)
      Disk.sweep(Opts.Opt.Reuse.CheckpointDirCapBytes, std::chrono::hours(1),
                 Opts.Opt.Exec.Stats);
  }
  std::printf("located: %s\n", R.RootCauseFound ? "yes" : "no");
  std::printf("iterations=%zu verifications=%zu re-executions=%zu "
              "edges=%zu (%zu strong)\n",
              R.Iterations, R.Verifications, R.Reexecutions, R.ExpandedEdges,
              R.StrongEdges);
  std::printf("implicit dependence edges:\n");
  for (const auto &E : Session.graph().implicitEdges())
    std::printf("  [%s] --> [%s]%s\n",
                lang::describeStmt(Prog, Session.trace().step(E.Use).Stmt)
                    .c_str(),
                lang::describeStmt(Prog, Session.trace().step(E.Pred).Stmt)
                    .c_str(),
                E.Strong ? "  (strong)" : "");
  std::printf("fault candidates (unique statements, ranked):\n");
  std::set<StmtId> Seen;
  for (TraceIdx I : R.FinalPrunedSlice) {
    StmtId S = Session.trace().step(I).Stmt;
    if (Seen.insert(S).second)
      std::printf("  %s%s\n", lang::describeStmt(Prog, S).c_str(),
                  S == Root ? "   <== root cause" : "");
  }
  return R.RootCauseFound ? 0 : 1;
}

int cmdDot(const CliOptions &Opts, const lang::Program &Prog) {
  if (Opts.Command == "dot-cfg") {
    FuncId F = Prog.findFunction(Opts.Function);
    if (!isValidId(F)) {
      std::fprintf(stderr, "error: no function '%s'\n",
                   Opts.Function.c_str());
      return 2;
    }
    analysis::StaticAnalysis SA(Prog);
    std::printf("%s", viz::cfgToDot(Prog, SA.cfg(F), *Prog.function(F))
                          .c_str());
    return 0;
  }

  analysis::StaticAnalysis SA(Prog);
  interp::Interpreter Interp(Prog, SA);
  interp::Interpreter::Options RunOpts;
  RunOpts.MaxSteps = Opts.Opt.Exec.MaxSteps;
  interp::ExecutionTrace T = Interp.run(Opts.Input, RunOpts);

  if (Opts.Command == "dot-regions") {
    align::RegionTree Tree(T);
    std::printf("%s", viz::regionTreeToDot(Prog, Tree).c_str());
    return 0;
  }
  // dot-ddg: optionally restricted to the wrong output's slice.
  ddg::DepGraph G(T);
  std::vector<bool> Member;
  const std::vector<bool> *Filter = nullptr;
  if (!Opts.Expected.empty()) {
    if (auto V = slicing::diffOutputs(T, Opts.Expected)) {
      Member = G.backwardClosure({T.Outputs.at(V->WrongOutput).Step},
                                 ddg::DepGraph::ClosureOptions());
      Filter = &Member;
    }
  }
  std::printf("%s", viz::depGraphToDot(Prog, G, Filter).c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage();
    return 2;
  }
  std::unique_ptr<lang::Program> Prog = loadProgram(Opts.File);
  if (!Prog)
    return 2;

  // The sinks outlive the command so the final dump sees everything.
  support::StatsRegistry Stats;
  support::EventTracer Tracer;
  if (Opts.Cli.Stats || !Opts.Cli.TraceOut.empty())
    Opts.Opt.Exec.Stats = &Stats;
  if (!Opts.Cli.TraceOut.empty())
    Opts.Opt.Exec.Tracer = &Tracer;

  int Rc = 2;
  bool Known = true;
  if (Opts.Command == "run")
    Rc = cmdRun(Opts, *Prog);
  else if (Opts.Command == "trace")
    Rc = cmdTrace(Opts, *Prog);
  else if (Opts.Command == "switch")
    Rc = cmdSwitch(Opts, *Prog);
  else if (Opts.Command == "slice")
    Rc = cmdSlice(Opts, *Prog);
  else if (Opts.Command == "locate")
    Rc = cmdLocate(Opts, *Prog);
  else if (Opts.Command == "dot-cfg" || Opts.Command == "dot-regions" ||
           Opts.Command == "dot-ddg")
    Rc = cmdDot(Opts, *Prog);
  else
    Known = false;
  if (!Known) {
    std::fprintf(stderr, "error: unknown command '%s'\n",
                 Opts.Command.c_str());
    usage();
    return 2;
  }

  if (!Opts.Cli.TraceOut.empty() && !Tracer.writeFile(Opts.Cli.TraceOut)) {
    std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                 Opts.Cli.TraceOut.c_str());
    return 2;
  }
  if (Opts.Cli.StatsJson)
    std::printf("%s\n", Stats.toJson().c_str());
  else if (Opts.Cli.Stats)
    std::fprintf(stderr, "%s", Stats.str().c_str());
  return Rc;
}
