//===-- workloads/MiniSed.cpp - Stream editor benchmark -----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// mini-sed: a stream editor applying s/old/new/ to its input lines, with
/// a global (g) flag and a line-scope option (substitute on every line vs
/// only the first). Its two faults include the paper's sed V3-F2 shape:
/// the root cause hides behind a *chain* of omitted branches, so locating
/// it needs more than one slice expansion.
///
/// Input:  gflag, opt_all, old codes 0-terminated, new codes
///         0-terminated, then the text lines, -1 terminated.
/// Output: every edited line's characters (then '\n'), then the
///         substitution count and the line count.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

const char *eoe::workloads::miniSedSource() {
  return R"siml(
// mini-sed: stream editor for s/old/new/ substitutions.
var old[32];
var oldlen = 0;
var repl[32];
var repllen = 0;
var line[256];
var llen = 0;
var out[512];
var outlen = 0;
var global = 0;
var scope_all = 0;
var nsubs = 0;
var nlines = 0;

fn read_old() {
  var c = input();
  while (c != 0 && c != -1) {
    if (oldlen < 32) {
      old[oldlen] = c;
      oldlen = oldlen + 1;
    }
    c = input();
  }
  return oldlen;
}

fn read_repl() {
  var c = input();
  while (c != 0 && c != -1) {
    if (repllen < 32) {
      repl[repllen] = c;
      repllen = repllen + 1;
    }
    c = input();
  }
  return repllen;
}

fn match_at(i) {
  var k = 0;
  while (k < oldlen) {
    if (i + k >= llen) {
      return 0;
    }
    if (line[i + k] != old[k]) {
      return 0;
    }
    k = k + 1;
  }
  return 1;
}

fn append_out(c) {
  if (outlen < 512) {
    out[outlen] = c;
    outlen = outlen + 1;
  }
  return outlen;
}

fn substitute() {
  outlen = 0;
  var i = 0;
  var done = 0;
  while (i < llen) {
    var m = 0;
    if (done == 0) {
      m = match_at(i);
    }
    if (m) {
      var k = 0;
      while (k < repllen) {
        append_out(repl[k]);
        k = k + 1;
      }
      nsubs = nsubs + 1;
      i = i + oldlen;
      if (global == 0) {
        done = 1;
      }
    } else {
      append_out(line[i]);
      i = i + 1;
    }
  }
  return outlen;
}

fn copy_line() {
  outlen = 0;
  var t = 0;
  while (t < llen) {
    append_out(line[t]);
    t = t + 1;
  }
  return outlen;
}

fn main() {
  var gflag = input();
  var opt_all = input();
  if (gflag > 0) {
    global = 1;
  }
  scope_all = opt_all > 0;
  read_old();
  read_repl();
  var c = input();
  while (c != -1) {
    llen = 0;
    while (c != 10 && c != -1) {
      if (llen < 256) {
        line[llen] = c;
        llen = llen + 1;
      }
      c = input();
    }
    nlines = nlines + 1;
    var do_sub = 0;
    if (scope_all || nlines == 1) {
      do_sub = 1;
    }
    if (do_sub) {
      substitute();
    } else {
      copy_line();
    }
    var j = 0;
    while (j < outlen) {
      print(out[j]);
      j = j + 1;
    }
    print(10);
    if (c == 10) {
      c = input();
    }
  }
  print(nsubs);
  print(nlines);
  return 0;
}
)siml";
}
