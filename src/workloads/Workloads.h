//===-- workloads/Workloads.h - Benchmark programs and faults ----*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation subjects: Siml re-implementations of the relevant cores
/// of the paper's four Siemens-suite utilities (flex, grep, gzip, sed),
/// each with seeded *execution omission* faults reproducing the nine
/// errors of the paper's Tables 2 and 3. Every fault is a single-line
/// mutation of the reference program whose effect is that a predicate
/// silently takes the wrong branch, omitting statements whose absence
/// surfaces as a wrong output value much later.
///
/// Faults are registered as (From -> To) line mutations so the faulty and
/// fixed sources stay line-aligned; the root cause line is derived from
/// the mutation site. Expected outputs are never hard-coded: harnesses
/// run the fixed program on the failing input.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_WORKLOADS_WORKLOADS_H
#define EOE_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eoe {
namespace workloads {

/// One benchmark program (Table 1 row).
struct BenchmarkInfo {
  std::string Name;
  std::string Description;
  std::string ErrorType;
  const char *ReferenceSource;
};

/// One seeded fault (Table 2/3 row).
struct FaultInfo {
  /// Paper-style id, e.g. "flex-v1-f9".
  std::string Id;
  std::string BenchmarkName;
  std::string Description;
  std::string FaultySource;
  std::string FixedSource;
  /// Source line of the mutated statement (same in both sources).
  uint32_t RootCauseLine = 0;
  /// The input exposing the failure.
  std::vector<int64_t> FailingInput;
  /// Inputs used for profiling (value profiles, union dependence graph).
  std::vector<std::vector<int64_t>> TestSuite;
};

/// The four benchmark programs.
const std::vector<BenchmarkInfo> &benchmarks();

/// The nine seeded execution omission faults.
const std::vector<FaultInfo> &faults();

/// Looks a fault up by id; null if unknown.
const FaultInfo *findFault(std::string_view Id);

/// Raw sources (reference = fixed versions).
const char *miniGzipSource();
const char *miniGrepSource();
const char *miniFlexSource();
const char *miniSedSource();

/// Encodes \p Text as character codes appended to \p Prefix, followed by
/// the -1 end-of-input sentinel.
std::vector<int64_t> makeInput(std::vector<int64_t> Prefix,
                               std::string_view Text);

} // namespace workloads
} // namespace eoe

#endif // EOE_WORKLOADS_WORKLOADS_H
