//===-- workloads/MiniGrep.cpp - Pattern matcher benchmark --------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// mini-grep: a line matcher with a Kernighan-Pike regular expression
/// core ('.' wildcard, '*' closure, '^' anchor) and a -i (caseless) flag.
/// Like the real grep, it emits nothing until the end, so a corrupted
/// match set propagates a long way before becoming observable -- the
/// paper's hardest case (grep V4-F2).
///
/// Input:  opt_i, pattern codes 0-terminated, then the text (lines
///         separated by '\n'), -1 terminated.
/// Output: the line number of every match, then the match count, then
///         the line count.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

const char *eoe::workloads::miniGrepSource() {
  return R"siml(
// mini-grep: regular-expression line matcher.
var pattern[64];
var plen = 0;
var line[256];
var llen = 0;
var matches[128];
var nmatches = 0;
var caseless = 0;
var anchored = 0;
var pstart = 0;
var total_lines = 0;

fn to_lower(c) {
  if (c >= 'A' && c <= 'Z') {
    return c + 32;
  }
  return c;
}

fn char_eq(c, p) {
  if (p == '.') {
    return 1;
  }
  if (caseless) {
    return to_lower(c) == to_lower(p);
  }
  return c == p;
}

fn match_star(p, li, pi) {
  var i = li;
  while (1) {
    if (match_here(i, pi)) {
      return 1;
    }
    if (i >= llen) {
      return 0;
    }
    if (char_eq(line[i], p) == 0) {
      return 0;
    }
    i = i + 1;
  }
  return 0;
}

fn match_here(li, pi) {
  if (pi >= plen) {
    return 1;
  }
  if (pi + 1 < plen && pattern[pi + 1] == '*') {
    return match_star(pattern[pi], li, pi + 2);
  }
  if (li < llen && char_eq(line[li], pattern[pi])) {
    return match_here(li + 1, pi + 1);
  }
  return 0;
}

fn match_line() {
  if (anchored) {
    return match_here(0, pstart);
  }
  var i = 0;
  while (i <= llen) {
    if (match_here(i, pstart)) {
      return 1;
    }
    i = i + 1;
  }
  return 0;
}

fn read_pattern() {
  var c = input();
  while (c != 0 && c != -1) {
    if (plen < 64) {
      pattern[plen] = c;
      plen = plen + 1;
    }
    c = input();
  }
  if (plen > 0 && pattern[0] == '^') {
    anchored = 1;
    pstart = 1;
  }
  return plen;
}

fn main() {
  var opt_i = input();
  if (opt_i == 1) {
    caseless = 1;
  }
  read_pattern();
  var c = input();
  while (c != -1) {
    llen = 0;
    while (c != 10 && c != -1) {
      if (llen < 256) {
        line[llen] = c;
        llen = llen + 1;
      }
      c = input();
    }
    total_lines = total_lines + 1;
    if (match_line()) {
      if (nmatches < 128) {
        matches[nmatches] = total_lines;
        nmatches = nmatches + 1;
      }
    }
    if (c == 10) {
      c = input();
    }
  }
  var i = 0;
  while (i < nmatches) {
    print(matches[i]);
    i = i + 1;
  }
  print(nmatches);
  print(total_lines);
  return 0;
}
)siml";
}
