//===-- workloads/Registry.cpp - Fault registry -------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <cassert>
#include <cstring>

using namespace eoe;
using namespace eoe::workloads;

std::vector<int64_t> eoe::workloads::makeInput(std::vector<int64_t> Prefix,
                                               std::string_view Text) {
  for (char C : Text)
    Prefix.push_back(static_cast<unsigned char>(C));
  Prefix.push_back(-1);
  return Prefix;
}

namespace {

/// Appends the character codes of \p Text to \p V (no terminator).
void appendCodes(std::vector<int64_t> &V, std::string_view Text) {
  for (char C : Text)
    V.push_back(static_cast<unsigned char>(C));
}

/// Builds a grep input: opt_i, pattern, 0, text, -1.
std::vector<int64_t> grepInput(int64_t OptI, std::string_view Pattern,
                               std::string_view Text) {
  std::vector<int64_t> V{OptI};
  appendCodes(V, Pattern);
  V.push_back(0);
  appendCodes(V, Text);
  V.push_back(-1);
  return V;
}

/// Builds a sed input: gflag, opt_all, old, 0, new, 0, text, -1.
std::vector<int64_t> sedInput(int64_t GFlag, int64_t OptAll,
                              std::string_view Old, std::string_view New,
                              std::string_view Text) {
  std::vector<int64_t> V{GFlag, OptAll};
  appendCodes(V, Old);
  V.push_back(0);
  appendCodes(V, New);
  V.push_back(0);
  appendCodes(V, Text);
  V.push_back(-1);
  return V;
}

/// Replaces the unique occurrence of \p From in \p Base with \p To and
/// reports the 1-based line of the mutation.
std::string mutate(const char *Base, const char *From, const char *To,
                   uint32_t &Line) {
  std::string Source(Base);
  size_t Pos = Source.find(From);
  assert(Pos != std::string::npos && "fault anchor not found");
  assert(Source.find(From, Pos + 1) == std::string::npos &&
         "fault anchor is ambiguous");
  Line = 1;
  for (size_t I = 0; I < Pos; ++I)
    if (Source[I] == '\n')
      ++Line;
  Source.replace(Pos, std::strlen(From), To);
  return Source;
}

FaultInfo makeFault(const char *Id, const char *Bench, const char *Desc,
                    const char *Base, const char *From, const char *To,
                    std::vector<int64_t> FailingInput,
                    std::vector<std::vector<int64_t>> Suite) {
  FaultInfo F;
  F.Id = Id;
  F.BenchmarkName = Bench;
  F.Description = Desc;
  F.FixedSource = Base;
  F.FaultySource = mutate(Base, From, To, F.RootCauseLine);
  F.FailingInput = std::move(FailingInput);
  F.TestSuite = std::move(Suite);
  return F;
}

std::vector<FaultInfo> buildFaults() {
  std::vector<FaultInfo> Out;
  const char *Gzip = miniGzipSource();
  const char *Grep = miniGrepSource();
  const char *Flex = miniFlexSource();
  const char *Sed = miniSedSource();

  // The common flex text: comments mid-line (line 1), plain tokens
  // (line 2), and a directive at the start of line 3.
  const char *FlexText = "ab 12 + #cc\nx9 - y\n#dir 5\n";
  const char *FlexSmall = "ab + 12\n";
  std::vector<std::vector<int64_t>> FlexSuite = {
      makeInput({1, 1, 1, 1, 6}, "abc def 123\n# full line\n"),
      makeInput({3, 3, -1, 2, 7}, "a+b\n#z\n"),
      makeInput({0, 0, 0, 0, 3}, "12 34"),
  };

  Out.push_back(makeFault(
      "flex-v1-f9", "flex",
      "comment rules never enter the DFA table: '#' scans as an unknown "
      "character instead of a comment token",
      Flex, "enable_comments = opt_comments > 0;",
      "enable_comments = opt_comments > 2;",
      makeInput({1, 1, 1, 1, 6}, FlexText), FlexSuite));

  Out.push_back(makeFault(
      "flex-v2-f14", "flex",
      "beginning-of-line tracking is silently disabled, so a directive on "
      "a later line is tokenized as a plain comment",
      Flex, "track_bol = opt_directives > 0;",
      "track_bol = opt_directives > 2;",
      makeInput({1, 1, 1, 1, 6}, FlexText), FlexSuite));

  Out.push_back(makeFault(
      "flex-v3-f10", "flex",
      "line counting is disabled: the newline branch omits the counter "
      "update and the trailer reports 0 lines",
      Flex, "count_lines = opt_lines > 0;", "count_lines = opt_lines < 0;",
      makeInput({1, 1, 1, 1, 6}, FlexSmall), FlexSuite));

  Out.push_back(makeFault(
      "flex-v4-f6", "flex",
      "the operator rule's accept entry is never registered, so operator "
      "tokens are emitted with code 0",
      Flex, "if (nrules > 5) {", "if (nrules > 6) {",
      makeInput({1, 1, 1, 1, 6}, FlexSmall), FlexSuite));

  Out.push_back(makeFault(
      "flex-v5-f6", "flex",
      "identifier statistics are disabled: the trailer's ident count "
      "stays 0",
      Flex, "count_idents = opt_stats > 0;", "count_idents = opt_stats > 1;",
      makeInput({1, 1, 1, 1, 6}, FlexSmall), FlexSuite));

  Out.push_back(makeFault(
      "grep-v4-f2", "grep",
      "the -i flag never enables caseless matching; missed matches "
      "surface only in the final match list and counts",
      Grep, "if (opt_i == 1) {", "if (opt_i == 2) {",
      grepInput(1, "ab",
                "ab\nxABy\nzzz\nAB\nqqabq\nABBA\nnope\nxyzzyAbab\n"
                "mmmmABmm\nlast ab line"),
      {grepInput(0, "a.c", "abc\nxxc\naxc"),
       grepInput(2, "x*y", "xy\nXXy\nzy"),
       grepInput(0, "^z", "zabc\naz")}));

  Out.push_back(makeFault(
      "gzip-v2-f3", "gzip",
      "save_orig_name is computed false, omitting the ORIG_NAME flag and "
      "the name field from the header (the paper's Figure 1)",
      Gzip, "save_orig_name = opt_name && name_len > 0;",
      "save_orig_name = opt_name && name_len > 3;",
      makeInput({1, 2}, "abcabcabc the quick brown fox abcabc jumps over "
                        "the lazy dog abcabcabc again and again abc"),
      {makeInput({1, 5}, "hello world hello"),
       makeInput({0, 0}, "aaaabbbb"),
       makeInput({1, 4}, "xyzxyzxyz")}));

  Out.push_back(makeFault(
      "sed-v3-f2", "sed",
      "the g flag never enables global substitution; the omission hides "
      "behind a chain of two predicates (done/global)",
      Sed, "if (gflag > 0) {", "if (gflag > 9) {",
      sedInput(1, 1, "ab", "XY",
               "xxabyyabzz\nqabq\nno hit here\nab at start ab twice\n"
               "trailing ab"),
      {sedInput(10, 1, "ab", "XY", "ababab\nqq"),
       sedInput(0, 1, "no", "NO", "hit no miss"),
       sedInput(10, 2, "a", "b", "aaa")}));

  Out.push_back(makeFault(
      "sed-v3-f3", "sed",
      "the all-lines scope option is ignored, so substitutions after the "
      "first line are omitted",
      Sed, "scope_all = opt_all > 0;", "scope_all = opt_all > 1;",
      sedInput(0, 1, "ab", "XY",
               "xxabyy\nqqabzz\nmore ab text\nab ab ab\nfinal abba"),
      {sedInput(0, 2, "ab", "XY", "abq\nqab"),
       sedInput(1, 2, "a", "b", "aaa\naa"),
       sedInput(0, 0, "zz", "qq", "zz\nzz")}));

  return Out;
}

} // namespace

const std::vector<BenchmarkInfo> &eoe::workloads::benchmarks() {
  static const std::vector<BenchmarkInfo> Benchmarks = {
      {"flex", "a fast lexical analyzer generator (table-driven scanner)",
       "seeded", miniFlexSource()},
      {"grep", "a unix utility to print lines matching a pattern",
       "seeded", miniGrepSource()},
      {"gzip", "a LZ77 based compressor", "seeded", miniGzipSource()},
      {"sed", "a stream editor for filtering and transforming text",
       "real & seeded", miniSedSource()},
  };
  return Benchmarks;
}

const std::vector<FaultInfo> &eoe::workloads::faults() {
  static const std::vector<FaultInfo> Faults = buildFaults();
  return Faults;
}

const FaultInfo *eoe::workloads::findFault(std::string_view Id) {
  for (const FaultInfo &F : faults())
    if (F.Id == Id)
      return &F;
  return nullptr;
}
