//===-- workloads/Runner.cpp - Experiment driver ------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "workloads/Runner.h"

#include "interp/CheckpointDiskStore.h"
#include "lang/Parser.h"
#include "support/Diagnostic.h"
#include "support/Timer.h"

#include <cassert>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::workloads;

FaultRunner::FaultRunner(const FaultInfo &Fault) : Fault(Fault) {
  DiagnosticEngine Diags;
  Faulty = lang::parseAndCheck(Fault.FaultySource, Diags);
  assert(Faulty && "faulty workload source must parse");
  Fixed = lang::parseAndCheck(Fault.FixedSource, Diags);
  assert(Fixed && "fixed workload source must parse");
  if (!Faulty || !Fixed)
    return;

  Root = Faulty->statementAtLine(Fault.RootCauseLine);
  assert(isValidId(Root) && "root cause line has no statement");

  // The expected outputs come from the fixed program, as a programmer
  // would obtain them from the specification.
  analysis::StaticAnalysis FixedSA(*Fixed);
  interp::Interpreter FixedInterp(*Fixed, FixedSA);
  Expected = FixedInterp.run(Fault.FailingInput).outputValues();

  // The fault is valid if the faulty program's outputs diverge.
  analysis::StaticAnalysis FaultySA(*Faulty);
  interp::Interpreter FaultyInterp(*Faulty, FaultySA);
  std::vector<int64_t> Observed =
      FaultyInterp.run(Fault.FailingInput).outputValues();
  Valid = Observed != Expected && isValidId(Root);
}

std::unique_ptr<DebugSession>
FaultRunner::makeSession(const Options &Opts,
                         interp::SharedCheckpointStore *Shared,
                         interp::SwitchedRunStore *SwitchedRuns) const {
  DebugSession::Config C;
  C.PDBackend = Opts.Backend;
  C.Locate.VerifyFanout = Opts.VerifyFanout;
  C.Locate.OnePerPredicate = Opts.OnePerPredicate;
  C.Locate.UsePathCheck = Opts.UsePathCheck;
  // The whole unified knob bundle forwards in one assignment; only the
  // session-budget field is runner-owned (the default failing-run
  // budget), so a caller's Opt.Exec.MaxSteps passes through too.
  C.Opt = Opts.Opt;
  C.SharedCheckpoints = Shared;
  C.SwitchedRuns = SwitchedRuns;
  return std::make_unique<DebugSession>(*Faulty, Fault.FailingInput, Expected,
                                        Fault.TestSuite, C);
}

ExperimentResult FaultRunner::run(const Options &Opts) {
  ExperimentResult R;
  R.FaultId = Fault.Id;
  if (!Valid)
    return R;

  // Both phases run the same program: share the input-independent
  // snapshots so phase B seeds its checkpoint store from phase A's
  // collection pass. The store outlives both sessions (scope of run()).
  interp::SharedCheckpointStore Shared;
  interp::SharedCheckpointStore *SharedPtr =
      Opts.Opt.Reuse.CheckpointShare ? &Shared : nullptr;

  // Both phases also re-execute the same switched runs: phase A stages
  // divergence-keyed snapshot bundles into this store, the seal between
  // the phases makes them visible (deterministic admission -- see
  // SwitchedRunStore.h), and phase B's switched runs resume from them.
  interp::SwitchedRunStore SwitchedRuns(Opts.Opt.Reuse.SwitchedCacheBytes);
  interp::SwitchedRunStore *SwitchedPtr =
      Opts.Opt.Reuse.SwitchedCacheBytes > 0 ? &SwitchedRuns : nullptr;

  // Phase A: discover the implicit edges with a root-only oracle, then
  // derive OS from the expanded dependence graph.
  std::unique_ptr<DebugSession> PhaseA =
      makeSession(Opts, SharedPtr, SwitchedPtr);
  assert(PhaseA->hasFailure());
  ProtocolOracle RootOnly(Root, nullptr);
  LocateReport ReportA = PhaseA->locate(RootOnly);
  std::vector<bool> Chain = PhaseA->failureChain(Root);
  R.OS = PhaseA->graph().stats(Chain);
  if (SwitchedPtr)
    SwitchedPtr->seal();

  // Phase B: the measured run, with the paper's OS-based oracle.
  std::unique_ptr<DebugSession> PhaseB =
      makeSession(Opts, SharedPtr, SwitchedPtr);
  assert(PhaseB->hasFailure());
  R.TraceLength = PhaseB->trace().size();

  if (Opts.ComputeSlices) {
    slicing::SliceResult DS = PhaseB->dynamicSlice();
    R.DS = DS.Stats;
    R.DSHasRoot = DS.containsStmt(PhaseB->trace(), Root);

    slicing::RelevantSliceResult RS = PhaseB->relevantSlice();
    R.RS = RS.Slice.Stats;
    R.RSPotentialEdges = RS.PotentialEdges;
    R.RSHasRoot = RS.Slice.containsStmt(PhaseB->trace(), Root);

    std::vector<TraceIdx> Pruned = PhaseB->prunedSlice();
    std::vector<bool> Member(PhaseB->trace().size(), false);
    for (TraceIdx I : Pruned)
      Member[I] = true;
    R.PS = PhaseB->graph().stats(Member);
    for (TraceIdx I : Pruned)
      if (PhaseB->trace().step(I).Stmt == Root)
        R.PSHasRoot = true;
  }

  ProtocolOracle ChainOracle(Root, &Chain);
  Timer VerifyTimer;
  R.Report = PhaseB->locate(ChainOracle);
  R.VerifySeconds = VerifyTimer.seconds();

  // Persist the shared store for the next process over this fault. The
  // sessions load under LocateConfig::MaxSteps (the default -- the
  // runner never overrides it), so save under the same key.
  if (SharedPtr && !Opts.Opt.Reuse.CheckpointDir.empty()) {
    interp::CheckpointDiskStore Disk(Opts.Opt.Reuse.CheckpointDir);
    Disk.save(*SharedPtr, *Faulty, core::LocateConfig().MaxSteps,
              Opts.Opt.Exec.Stats);
  }

  if (Opts.MeasureTimes) {
    analysis::StaticAnalysis SA(*Faulty);
    interp::Interpreter Interp(*Faulty, SA);
    interp::Interpreter::Options Plain;
    Plain.Trace = false;
    Timer PlainTimer;
    Interp.run(Fault.FailingInput, Plain);
    R.PlainSeconds = PlainTimer.seconds();

    interp::Interpreter::Options Traced;
    Timer GraphTimer;
    Interp.run(Fault.FailingInput, Traced);
    R.GraphSeconds = GraphTimer.seconds();
  }

  R.Valid = ReportA.RootCauseFound && R.Report.RootCauseFound;
  return R;
}
