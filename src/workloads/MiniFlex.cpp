//===-- workloads/MiniFlex.cpp - Table-driven scanner benchmark ---------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// mini-flex: a table-driven scanner shaped like flex-generated code: a
/// character-class function, a DFA transition table built at startup from
/// option flags, maximal-munch scanning, beginning-of-line (directive)
/// handling, and trailer statistics. Five of the paper's nine faults are
/// seeded into its table construction and bookkeeping.
///
/// Input:  opt_comments, opt_directives, opt_lines, opt_stats, nrules,
///         then the text, -1 terminated.
/// Output: (code, length) per token, then tok/nl/ident/directive counts.
/// Token codes: 1 ident, 2 number, 3 blanks, 4 newline (not printed),
/// 5 operator, 6 comment, 7 directive, 9 unknown.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

const char *eoe::workloads::miniFlexSource() {
  return R"siml(
// mini-flex: table-driven scanner in the style of flex-generated code.
var trans[256];
var accept[32];
var buf[512];
var buflen = 0;
var nl_count = 0;
var tok_count = 0;
var ident_count = 0;
var directive_count = 0;
var at_bol = 1;
var enable_comments = 0;
var track_bol = 0;
var count_lines = 0;
var count_idents = 0;

fn char_class(c) {
  if (c >= 'a' && c <= 'z') {
    return 1;
  }
  if (c >= 'A' && c <= 'Z') {
    return 1;
  }
  if (c >= '0' && c <= '9') {
    return 2;
  }
  if (c == ' ') {
    return 3;
  }
  if (c == 9) {
    return 3;
  }
  if (c == 10) {
    return 4;
  }
  if (c == '+' || c == '-' || c == '*' || c == '/') {
    return 5;
  }
  if (c == '#') {
    return 6;
  }
  return 7;
}

fn set_trans(s, cls, t) {
  trans[s * 8 + cls] = t;
  return t;
}

fn build_tables(opt_comments, opt_directives, opt_lines, opt_stats, nrules) {
  set_trans(0, 1, 1);
  set_trans(1, 1, 1);
  set_trans(1, 2, 1);
  accept[1] = 1;
  set_trans(0, 2, 2);
  set_trans(2, 2, 2);
  accept[2] = 2;
  set_trans(0, 3, 3);
  set_trans(3, 3, 3);
  accept[3] = 3;
  set_trans(0, 4, 4);
  accept[4] = 4;
  set_trans(0, 5, 5);
  if (nrules > 5) {
    accept[5] = 5;
  }
  enable_comments = opt_comments > 0;
  if (enable_comments) {
    set_trans(0, 6, 6);
    set_trans(6, 1, 6);
    set_trans(6, 2, 6);
    set_trans(6, 3, 6);
    set_trans(6, 5, 6);
    set_trans(6, 6, 6);
    set_trans(6, 7, 6);
    accept[6] = 6;
  }
  track_bol = opt_directives > 0;
  count_lines = opt_lines > 0;
  count_idents = opt_stats > 0;
  return nrules;
}

fn read_all() {
  var c = input();
  while (c != -1) {
    if (buflen < 512) {
      buf[buflen] = c;
      buflen = buflen + 1;
    }
    c = input();
  }
  return buflen;
}

fn emit_token(tok, len) {
  if (tok == 4) {
    if (count_lines) {
      nl_count = nl_count + 1;
    }
    return 0;
  }
  print(tok);
  print(len);
  tok_count = tok_count + 1;
  if (tok == 1) {
    if (count_idents) {
      ident_count = ident_count + 1;
    }
  }
  return 1;
}

fn scan() {
  var pos = 0;
  while (pos < buflen) {
    var state = 0;
    var len = 0;
    while (pos + len < buflen) {
      var cls = char_class(buf[pos + len]);
      var next = trans[state * 8 + cls];
      if (next == 0) {
        break;
      }
      state = next;
      len = len + 1;
    }
    if (len == 0) {
      emit_token(9, 1);
      at_bol = 0;
      pos = pos + 1;
      continue;
    }
    var tok = accept[state];
    if (tok == 6 && at_bol) {
      directive_count = directive_count + 1;
      tok = 7;
    }
    emit_token(tok, len);
    if (tok == 4) {
      if (track_bol) {
        at_bol = 1;
      }
    } else {
      at_bol = 0;
    }
    pos = pos + len;
  }
  return tok_count;
}

fn main() {
  var opt_comments = input();
  var opt_directives = input();
  var opt_lines = input();
  var opt_stats = input();
  var nrules = input();
  build_tables(opt_comments, opt_directives, opt_lines, opt_stats, nrules);
  read_all();
  scan();
  print(tok_count);
  print(nl_count);
  print(ident_count);
  print(directive_count);
  return 0;
}
)siml";
}
