//===-- workloads/Runner.h - Experiment driver -------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment driver reproducing the paper's evaluation protocol for
/// one fault:
///
///  Phase A ("manual OS identification"): run the demand-driven locator
///  with an oracle that knows only the root cause; once located, derive
///  OS -- the failure-inducing chain -- from the expanded graph.
///
///  Phase B (the measured run): a fresh session whose oracle answers the
///  paper's way ("statement instances not in OS were selected from the
///  pruned slice in order as being benign"), producing Table 3's user
///  prunings / verifications / iterations / expanded edges / IPS, with
///  Table 2's RS / DS / PS computed on the same failing execution.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_WORKLOADS_RUNNER_H
#define EOE_WORKLOADS_RUNNER_H

#include "core/DebugSession.h"
#include "support/Options.h"
#include "workloads/Workloads.h"

#include <memory>
#include <optional>

namespace eoe {
namespace workloads {

/// Oracle that knows the root cause; optionally also the OS chain for
/// benign answers (the paper's protocol).
class ProtocolOracle : public slicing::Oracle {
public:
  ProtocolOracle(StmtId Root, const std::vector<bool> *Chain)
      : Root(Root), Chain(Chain) {}

  bool isBenign(TraceIdx I) override { return Chain && !(*Chain)[I]; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
  const std::vector<bool> *Chain;
};

/// Everything the benches report about one fault.
struct ExperimentResult {
  std::string FaultId;
  bool Valid = false;

  // Table 2.
  ddg::SliceStats RS, DS, PS;
  size_t RSPotentialEdges = 0;
  bool RSHasRoot = false, DSHasRoot = false, PSHasRoot = false;

  // Table 3 (from the measured phase-B run).
  core::LocateReport Report;
  ddg::SliceStats OS;

  // Table 4 (seconds; only filled when Options::MeasureTimes).
  double PlainSeconds = 0;
  double GraphSeconds = 0;
  double VerifySeconds = 0;

  size_t TraceLength = 0;
};

/// Runs the full protocol for one fault.
class FaultRunner {
public:
  struct Options {
    slicing::PotentialDepAnalyzer::Backend Backend =
        slicing::PotentialDepAnalyzer::Backend::Static;
    bool VerifyFanout = true;
    bool OnePerPredicate = true;
    bool UsePathCheck = false;
    bool MeasureTimes = false;
    /// Skip the (slow) relevant-slice computation when only Table 3 is
    /// needed.
    bool ComputeSlices = true;

    /// The unified knob bundle (support/Options.h), forwarded wholesale
    /// into every DebugSession the protocol creates. Opt.Reuse wires the
    /// runner-owned SharedCheckpointStore / SwitchedRunStore between the
    /// phase-A and phase-B sessions (phase B resumes from phase A's
    /// snapshots; the store is sealed between phases), and Opt.Exec
    /// carries threads and the observability sinks. The flat members
    /// below are deprecated aliases into it.
    eoe::Options Opt;

    /// Deprecated: alias of Opt.Exec.Threads.
    unsigned &Threads = Opt.Exec.Threads;
    /// Deprecated: alias of Opt.Reuse.Checkpoints.
    unsigned &Checkpoints = Opt.Reuse.Checkpoints;
    /// Deprecated: alias of Opt.Reuse.CheckpointMemBytes.
    size_t &CheckpointMemBytes = Opt.Reuse.CheckpointMemBytes;
    /// Deprecated: alias of Opt.Reuse.CheckpointDelta.
    bool &CheckpointDelta = Opt.Reuse.CheckpointDelta;
    /// Deprecated: alias of Opt.Reuse.CheckpointShare.
    bool &ShareCheckpoints = Opt.Reuse.CheckpointShare;
    /// Deprecated: alias of Opt.Reuse.SwitchedCacheBytes.
    size_t &SwitchedCacheBytes = Opt.Reuse.SwitchedCacheBytes;
    /// Deprecated: alias of Opt.Reuse.CheckpointDir.
    std::string &CheckpointDir = Opt.Reuse.CheckpointDir;
    /// Deprecated: aliases of Opt.Exec.Stats / Opt.Exec.Tracer.
    support::StatsRegistry *&Stats = Opt.Exec.Stats;
    support::EventTracer *&Tracer = Opt.Exec.Tracer;

    // The alias members make the implicit copy operations wrong; copy
    // the value members and let the aliases rebind to this->Opt.
    Options() = default;
    Options(const Options &O)
        : Backend(O.Backend), VerifyFanout(O.VerifyFanout),
          OnePerPredicate(O.OnePerPredicate), UsePathCheck(O.UsePathCheck),
          MeasureTimes(O.MeasureTimes), ComputeSlices(O.ComputeSlices),
          Opt(O.Opt) {}
    Options &operator=(const Options &O) {
      Backend = O.Backend;
      VerifyFanout = O.VerifyFanout;
      OnePerPredicate = O.OnePerPredicate;
      UsePathCheck = O.UsePathCheck;
      MeasureTimes = O.MeasureTimes;
      ComputeSlices = O.ComputeSlices;
      Opt = O.Opt;
      return *this;
    }
  };

  explicit FaultRunner(const FaultInfo &Fault);

  /// False when the fault did not reproduce (fixed and faulty outputs
  /// agree) -- treated as a harness bug by the benches.
  bool valid() const { return Valid; }

  /// The faulty program's root cause statement.
  StmtId rootCause() const { return Root; }

  /// Executes the two-phase protocol and collects all numbers.
  ExperimentResult run(const Options &Opts);

  /// Expected (fixed-program) outputs on the failing input.
  const std::vector<int64_t> &expectedOutputs() const { return Expected; }

  const lang::Program &faultyProgram() const { return *Faulty; }

private:
  std::unique_ptr<core::DebugSession>
  makeSession(const Options &Opts,
              interp::SharedCheckpointStore *Shared = nullptr,
              interp::SwitchedRunStore *SwitchedRuns = nullptr) const;

  const FaultInfo &Fault;
  std::unique_ptr<lang::Program> Faulty;
  std::unique_ptr<lang::Program> Fixed;
  std::vector<int64_t> Expected;
  StmtId Root = InvalidId;
  bool Valid = false;
};

} // namespace workloads
} // namespace eoe

#endif // EOE_WORKLOADS_RUNNER_H
