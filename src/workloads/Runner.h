//===-- workloads/Runner.h - Experiment driver -------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment driver reproducing the paper's evaluation protocol for
/// one fault:
///
///  Phase A ("manual OS identification"): run the demand-driven locator
///  with an oracle that knows only the root cause; once located, derive
///  OS -- the failure-inducing chain -- from the expanded graph.
///
///  Phase B (the measured run): a fresh session whose oracle answers the
///  paper's way ("statement instances not in OS were selected from the
///  pruned slice in order as being benign"), producing Table 3's user
///  prunings / verifications / iterations / expanded edges / IPS, with
///  Table 2's RS / DS / PS computed on the same failing execution.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_WORKLOADS_RUNNER_H
#define EOE_WORKLOADS_RUNNER_H

#include "core/DebugSession.h"
#include "workloads/Workloads.h"

#include <memory>
#include <optional>

namespace eoe {
namespace workloads {

/// Oracle that knows the root cause; optionally also the OS chain for
/// benign answers (the paper's protocol).
class ProtocolOracle : public slicing::Oracle {
public:
  ProtocolOracle(StmtId Root, const std::vector<bool> *Chain)
      : Root(Root), Chain(Chain) {}

  bool isBenign(TraceIdx I) override { return Chain && !(*Chain)[I]; }
  bool isRootCause(StmtId S) override { return S == Root; }

private:
  StmtId Root;
  const std::vector<bool> *Chain;
};

/// Everything the benches report about one fault.
struct ExperimentResult {
  std::string FaultId;
  bool Valid = false;

  // Table 2.
  ddg::SliceStats RS, DS, PS;
  size_t RSPotentialEdges = 0;
  bool RSHasRoot = false, DSHasRoot = false, PSHasRoot = false;

  // Table 3 (from the measured phase-B run).
  core::LocateReport Report;
  ddg::SliceStats OS;

  // Table 4 (seconds; only filled when Options::MeasureTimes).
  double PlainSeconds = 0;
  double GraphSeconds = 0;
  double VerifySeconds = 0;

  size_t TraceLength = 0;
};

/// Runs the full protocol for one fault.
class FaultRunner {
public:
  struct Options {
    slicing::PotentialDepAnalyzer::Backend Backend =
        slicing::PotentialDepAnalyzer::Backend::Static;
    bool VerifyFanout = true;
    bool OnePerPredicate = true;
    bool UsePathCheck = false;
    bool MeasureTimes = false;
    /// Skip the (slow) relevant-slice computation when only Table 3 is
    /// needed.
    bool ComputeSlices = true;
    /// Verification engine threads (DebugSession::Config::Threads):
    /// 0 = hardware default, 1 = serial reference engine.
    unsigned Threads = 0;
    /// Checkpoint stride for switched-run re-execution
    /// (LocateConfig::Checkpoints): interp::CheckpointStrideAuto (0,
    /// default) = autotuned, N >= 1 = every Nth candidate,
    /// interp::CheckpointsOff = full replay.
    unsigned Checkpoints = interp::CheckpointStrideAuto;
    /// LRU byte budget for retained checkpoints.
    size_t CheckpointMemBytes = interp::DefaultCheckpointMemBytes;
    /// Delta-compress consecutive snapshots (LocateConfig).
    bool CheckpointDelta = true;
    /// Share input-independent snapshots between the protocol's phase-A
    /// and phase-B sessions (both run the same program on the same
    /// failing input): the runner owns a SharedCheckpointStore for the
    /// duration of run(), so phase B resumes from phase A's pre-input
    /// snapshots without re-collecting them.
    bool ShareCheckpoints = true;
    /// Switched-run snapshot cache (LocateConfig::SwitchedCacheBytes):
    /// the runner owns a SwitchedRunStore for the duration of run() and
    /// seals it between phase A and phase B, so phase B's switched runs
    /// resume from phase A's divergence-keyed snapshots and splice
    /// reconvergent suffixes. 0 = off (the reference full-interpretation
    /// behavior); any value yields bit-identical reports.
    size_t SwitchedCacheBytes = interp::DefaultSwitchedCacheBytes;
    /// Persistent checkpoint cache directory (LocateConfig::
    /// CheckpointDir): phase A loads the cache before running, and the
    /// runner saves the shared store back after phase B, so repeated
    /// protocol runs over the same fault warm-start across processes.
    /// Requires ShareCheckpoints; empty = no persistence.
    std::string CheckpointDir;
    /// Observability sinks forwarded to every session the protocol
    /// creates (both phases), so benches can print per-phase cost next
    /// to the paper tables. Null = off.
    support::StatsRegistry *Stats = nullptr;
    support::EventTracer *Tracer = nullptr;
  };

  explicit FaultRunner(const FaultInfo &Fault);

  /// False when the fault did not reproduce (fixed and faulty outputs
  /// agree) -- treated as a harness bug by the benches.
  bool valid() const { return Valid; }

  /// The faulty program's root cause statement.
  StmtId rootCause() const { return Root; }

  /// Executes the two-phase protocol and collects all numbers.
  ExperimentResult run(const Options &Opts);

  /// Expected (fixed-program) outputs on the failing input.
  const std::vector<int64_t> &expectedOutputs() const { return Expected; }

  const lang::Program &faultyProgram() const { return *Faulty; }

private:
  std::unique_ptr<core::DebugSession>
  makeSession(const Options &Opts,
              interp::SharedCheckpointStore *Shared = nullptr,
              interp::SwitchedRunStore *SwitchedRuns = nullptr) const;

  const FaultInfo &Fault;
  std::unique_ptr<lang::Program> Faulty;
  std::unique_ptr<lang::Program> Fixed;
  std::vector<int64_t> Expected;
  StmtId Root = InvalidId;
  bool Valid = false;
};

} // namespace workloads
} // namespace eoe

#endif // EOE_WORKLOADS_RUNNER_H
