//===-- workloads/MiniGzip.cpp - LZ77 compressor benchmark --------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// mini-gzip: an LZ77 compressor with a gzip-style header and trailer,
/// miniaturizing the code paths of the paper's Figure 1 (the real gzip's
/// save_orig_name / flags / outbuf interplay).
///
/// Input:  opt_name, name_len, then the bytes to compress, -1 terminated.
/// Output: the bytes of the compressed stream (header, tokens, trailer).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

const char *eoe::workloads::miniGzipSource() {
  return R"siml(
// mini-gzip: LZ77 compressor with gzip-style header and trailer.
var inbuf[512];
var inlen = 0;
var outbuf[2048];
var outcnt = 0;
var flags = 0;
var crc = 0;
var save_orig_name = 0;

fn read_all() {
  var v = input();
  while (v != -1) {
    if (inlen < 512) {
      inbuf[inlen] = v;
      inlen = inlen + 1;
    }
    v = input();
  }
  return inlen;
}

fn emit(b) {
  if (outcnt < 2048) {
    outbuf[outcnt] = b;
    outcnt = outcnt + 1;
  }
  return outcnt;
}

fn update_crc(b) {
  crc = (crc * 31 + b) % 65521;
  return crc;
}

fn longest_match(pos) {
  var best_len = 0;
  var best_dist = 0;
  var start = pos - 32;
  if (start < 0) {
    start = 0;
  }
  var j = start;
  while (j < pos) {
    var len = 0;
    while (pos + len < inlen && len < 10 && inbuf[j + len] == inbuf[pos + len]) {
      len = len + 1;
    }
    if (len > best_len) {
      best_len = len;
      best_dist = pos - j;
    }
    j = j + 1;
  }
  return best_len * 64 + best_dist;
}

fn deflate() {
  var pos = 0;
  while (pos < inlen) {
    var m = longest_match(pos);
    var len = m / 64;
    var dist = m % 64;
    if (len >= 3) {
      emit(200 + len);
      emit(dist);
      var k = 0;
      while (k < len) {
        update_crc(inbuf[pos + k]);
        k = k + 1;
      }
      pos = pos + len;
    } else {
      emit(inbuf[pos]);
      update_crc(inbuf[pos]);
      pos = pos + 1;
    }
  }
  return outcnt;
}

fn write_header(opt_name, name_len) {
  emit(31);
  emit(139);
  emit(8);
  save_orig_name = opt_name && name_len > 0;
  if (save_orig_name) {
    flags = flags + 8;
  }
  emit(flags);
  if (save_orig_name) {
    var n = 0;
    while (n < name_len) {
      emit(65 + n % 26);
      n = n + 1;
    }
    emit(0);
  }
  return outcnt;
}

fn main() {
  var opt_name = input();
  var name_len = input();
  read_all();
  write_header(opt_name, name_len);
  deflate();
  emit(crc % 256);
  emit(inlen % 256);
  var i = 0;
  while (i < outcnt) {
    print(outbuf[i]);
    i = i + 1;
  }
  return 0;
}
)siml";
}
