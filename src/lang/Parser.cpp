//===-- lang/Parser.cpp - Siml parser ---------------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "lang/Sema.h"
#include "support/Diagnostic.h"

#include <cassert>

using namespace eoe;
using namespace eoe::lang;

namespace {

/// Binary operator precedence; higher binds tighter. Returns -1 for tokens
/// that are not binary operators.
int binaryPrecedence(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::EqEq:
  case TokenKind::NotEq:
    return 3;
  case TokenKind::Less:
  case TokenKind::LessEq:
  case TokenKind::Greater:
  case TokenKind::GreaterEq:
    return 4;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 5;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 6;
  default:
    return -1;
  }
}

BinaryOp binaryOpFor(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::PipePipe:
    return BinaryOp::Or;
  case TokenKind::AmpAmp:
    return BinaryOp::And;
  case TokenKind::EqEq:
    return BinaryOp::Eq;
  case TokenKind::NotEq:
    return BinaryOp::Ne;
  case TokenKind::Less:
    return BinaryOp::Lt;
  case TokenKind::LessEq:
    return BinaryOp::Le;
  case TokenKind::Greater:
    return BinaryOp::Gt;
  case TokenKind::GreaterEq:
    return BinaryOp::Ge;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::Star:
    return BinaryOp::Mul;
  case TokenKind::Slash:
    return BinaryOp::Div;
  case TokenKind::Percent:
    return BinaryOp::Mod;
  default:
    assert(false && "not a binary operator token");
    return BinaryOp::Add;
  }
}

} // namespace

Parser::Parser(std::vector<Token> Toks, DiagnosticEngine &Diags)
    : Tokens(std::move(Toks)), Diags(Diags) {
  assert(!Tokens.empty() && Tokens.back().is(TokenKind::EndOfFile) &&
         "token stream must end with EndOfFile");
}

const Token &Parser::peek(size_t Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1;
  return Tokens[Index];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(peek().Loc, std::string("expected ") + tokenKindName(Kind) +
                              " " + Context + ", found " +
                              tokenKindName(peek().Kind));
  return false;
}

void Parser::synchronizeToStmt() {
  while (!check(TokenKind::EndOfFile)) {
    if (accept(TokenKind::Semicolon))
      return;
    if (check(TokenKind::RBrace))
      return;
    advance();
  }
}

std::unique_ptr<Program> Parser::parseProgram() {
  Prog = std::make_unique<Program>();
  while (!check(TokenKind::EndOfFile)) {
    parseTopLevel();
    if (Diags.errorCount() > 20)
      break; // Avoid error cascades on hopeless inputs.
  }
  return std::move(Prog);
}

void Parser::parseTopLevel() {
  if (check(TokenKind::KwVar)) {
    parseGlobalDecl();
    return;
  }
  if (check(TokenKind::KwFn)) {
    parseFunction();
    return;
  }
  Diags.error(peek().Loc, std::string("expected 'var' or 'fn' at top level, "
                                      "found ") +
                              tokenKindName(peek().Kind));
  advance();
}

void Parser::parseGlobalDecl() {
  Stmt *S = parseVarDecl();
  if (auto *Decl = dyn_cast<VarDeclStmt>(S)) {
    int64_t Unused;
    if (Decl->init() && !evaluateConstant(Decl->init(), Unused))
      Diags.error(Decl->loc(), "global initializer must be a constant");
    Prog->addGlobal(Decl);
  }
}

void Parser::parseFunction() {
  SourceLoc Loc = peek().Loc;
  expect(TokenKind::KwFn, "to start a function");
  std::string Name = peek().Text;
  if (!expect(TokenKind::Identifier, "as function name"))
    return;

  std::vector<std::string> Params;
  expect(TokenKind::LParen, "after function name");
  if (!check(TokenKind::RParen)) {
    do {
      if (check(TokenKind::Identifier)) {
        Params.push_back(peek().Text);
        advance();
      } else {
        Diags.error(peek().Loc, "expected parameter name");
        break;
      }
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameters");

  Function *F = Prog->createFunction(Loc, std::move(Name), std::move(Params));
  F->setBody(parseBlock());
}

std::vector<Stmt *> Parser::parseBlock() {
  std::vector<Stmt *> Body;
  if (!expect(TokenKind::LBrace, "to open a block"))
    return Body;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (Stmt *S = parseStatement())
      Body.push_back(S);
    else
      synchronizeToStmt();
    if (Diags.errorCount() > 20)
      break;
  }
  expect(TokenKind::RBrace, "to close a block");
  return Body;
}

Stmt *Parser::parseStatement() {
  SourceLoc Loc = peek().Loc;
  switch (peek().Kind) {
  case TokenKind::KwVar:
    return parseVarDecl();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwBreak: {
    advance();
    expect(TokenKind::Semicolon, "after 'break'");
    return Prog->createStmt<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    advance();
    expect(TokenKind::Semicolon, "after 'continue'");
    return Prog->createStmt<ContinueStmt>(Loc);
  }
  case TokenKind::KwReturn: {
    advance();
    Expr *Value = nullptr;
    if (!check(TokenKind::Semicolon))
      Value = parseExpr();
    expect(TokenKind::Semicolon, "after 'return'");
    return Prog->createStmt<ReturnStmt>(Loc, Value);
  }
  case TokenKind::KwPrint: {
    advance();
    expect(TokenKind::LParen, "after 'print'");
    std::vector<Expr *> Args;
    if (!check(TokenKind::RParen)) {
      do {
        if (Expr *E = parseExpr())
          Args.push_back(E);
        else
          return nullptr;
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "after print arguments");
    expect(TokenKind::Semicolon, "after print statement");
    return Prog->createStmt<PrintStmt>(Loc, std::move(Args));
  }
  case TokenKind::Identifier:
    return parseAssignOrCall();
  default:
    Diags.error(Loc, std::string("expected a statement, found ") +
                         tokenKindName(peek().Kind));
    return nullptr;
  }
}

Stmt *Parser::parseVarDecl() {
  SourceLoc Loc = peek().Loc;
  expect(TokenKind::KwVar, "to start a declaration");
  std::string Name = peek().Text;
  if (!expect(TokenKind::Identifier, "as variable name"))
    return nullptr;

  int64_t ArraySize = 0;
  Expr *Init = nullptr;
  if (accept(TokenKind::LBracket)) {
    if (check(TokenKind::IntLiteral)) {
      ArraySize = peek().Value;
      advance();
      if (ArraySize <= 0)
        Diags.error(Loc, "array size must be positive");
    } else {
      Diags.error(peek().Loc, "array size must be an integer literal");
    }
    expect(TokenKind::RBracket, "after array size");
  } else if (accept(TokenKind::Assign)) {
    Init = parseExpr();
  }
  expect(TokenKind::Semicolon, "after declaration");
  return Prog->createStmt<VarDeclStmt>(Loc, std::move(Name), ArraySize, Init);
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = peek().Loc;
  expect(TokenKind::KwIf, "to start an if");
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  std::vector<Stmt *> Then = parseBlock();
  std::vector<Stmt *> Else;
  if (accept(TokenKind::KwElse)) {
    if (check(TokenKind::KwIf)) {
      if (Stmt *Nested = parseIf())
        Else.push_back(Nested);
    } else {
      Else = parseBlock();
    }
  }
  return Prog->createStmt<IfStmt>(Loc, Cond, std::move(Then), std::move(Else));
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = peek().Loc;
  expect(TokenKind::KwWhile, "to start a while");
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  std::vector<Stmt *> Body = parseBlock();
  return Prog->createStmt<WhileStmt>(Loc, Cond, std::move(Body));
}

Stmt *Parser::parseAssignOrCall() {
  SourceLoc Loc = peek().Loc;
  std::string Name = advance().Text;

  if (check(TokenKind::LParen)) {
    std::vector<Expr *> Args = parseCallArgs();
    expect(TokenKind::Semicolon, "after call statement");
    CallExpr *Call =
        Prog->createExpr<CallExpr>(Loc, std::move(Name), std::move(Args));
    return Prog->createStmt<CallStmtNode>(Loc, Call);
  }

  if (accept(TokenKind::LBracket)) {
    Expr *Index = parseExpr();
    expect(TokenKind::RBracket, "after array index");
    expect(TokenKind::Assign, "in array assignment");
    Expr *Value = parseExpr();
    expect(TokenKind::Semicolon, "after assignment");
    return Prog->createStmt<ArrayAssignStmt>(Loc, std::move(Name), Index,
                                             Value);
  }

  if (!expect(TokenKind::Assign, "in assignment"))
    return nullptr;
  Expr *Value = parseExpr();
  expect(TokenKind::Semicolon, "after assignment");
  return Prog->createStmt<AssignStmt>(Loc, std::move(Name), Value);
}

std::vector<Expr *> Parser::parseCallArgs() {
  std::vector<Expr *> Args;
  expect(TokenKind::LParen, "to open argument list");
  if (!check(TokenKind::RParen)) {
    do {
      if (Expr *E = parseExpr())
        Args.push_back(E);
      else
        break;
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close argument list");
  return Args;
}

Expr *Parser::parseExpr() { return parseBinaryRHS(0, parseUnary()); }

Expr *Parser::parseBinaryRHS(int MinPrec, Expr *LHS) {
  if (!LHS)
    return nullptr;
  while (true) {
    int Prec = binaryPrecedence(peek().Kind);
    if (Prec < 0 || Prec < MinPrec)
      return LHS;
    TokenKind OpTok = peek().Kind;
    SourceLoc Loc = peek().Loc;
    advance();
    Expr *RHS = parseUnary();
    if (!RHS)
      return nullptr;
    int NextPrec = binaryPrecedence(peek().Kind);
    if (NextPrec > Prec)
      RHS = parseBinaryRHS(Prec + 1, RHS);
    if (!RHS)
      return nullptr;
    LHS = Prog->createExpr<BinaryExpr>(Loc, binaryOpFor(OpTok), LHS, RHS);
  }
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = peek().Loc;
  if (accept(TokenKind::Minus)) {
    Expr *Sub = parseUnary();
    return Sub ? Prog->createExpr<UnaryExpr>(Loc, UnaryOp::Neg, Sub) : nullptr;
  }
  if (accept(TokenKind::Bang)) {
    Expr *Sub = parseUnary();
    return Sub ? Prog->createExpr<UnaryExpr>(Loc, UnaryOp::Not, Sub) : nullptr;
  }
  return parsePrimary();
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  switch (peek().Kind) {
  case TokenKind::IntLiteral: {
    int64_t Value = advance().Value;
    return Prog->createExpr<IntLitExpr>(Loc, Value);
  }
  case TokenKind::KwInput: {
    advance();
    expect(TokenKind::LParen, "after 'input'");
    expect(TokenKind::RParen, "after 'input('");
    return Prog->createExpr<InputExpr>(Loc);
  }
  case TokenKind::LParen: {
    advance();
    Expr *Inner = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return Inner;
  }
  case TokenKind::Identifier: {
    std::string Name = advance().Text;
    if (check(TokenKind::LParen)) {
      std::vector<Expr *> Args = parseCallArgs();
      return Prog->createExpr<CallExpr>(Loc, std::move(Name), std::move(Args));
    }
    if (accept(TokenKind::LBracket)) {
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "after array index");
      return Prog->createExpr<ArrayRefExpr>(Loc, std::move(Name), Index);
    }
    return Prog->createExpr<VarRefExpr>(Loc, std::move(Name));
  }
  default:
    Diags.error(Loc, std::string("expected an expression, found ") +
                         tokenKindName(peek().Kind));
    return nullptr;
  }
}

std::unique_ptr<Program> lang::parseAndCheck(std::string_view Source,
                                             DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return nullptr;
  Parser P(std::move(Tokens), Diags);
  std::unique_ptr<Program> Prog = P.parseProgram();
  if (Diags.hasErrors())
    return nullptr;
  Sema S(*Prog, Diags);
  S.run();
  if (Diags.hasErrors())
    return nullptr;
  return Prog;
}
