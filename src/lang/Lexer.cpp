//===-- lang/Lexer.cpp - Siml lexer -----------------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include "support/Diagnostic.h"

#include <cctype>

using namespace eoe;
using namespace eoe::lang;

const char *lang::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwFn:
    return "'fn'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::KwInput:
    return "'input'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Unknown:
    return "unknown token";
  }
  return "?";
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = next();
    bool Done = T.is(TokenKind::EndOfFile);
    Tokens.push_back(std::move(T));
    if (Done)
      return Tokens;
  }
}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    return;
  }
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  std::string Text;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    Text += advance();

  TokenKind Kind = TokenKind::Identifier;
  if (Text == "var")
    Kind = TokenKind::KwVar;
  else if (Text == "fn")
    Kind = TokenKind::KwFn;
  else if (Text == "if")
    Kind = TokenKind::KwIf;
  else if (Text == "else")
    Kind = TokenKind::KwElse;
  else if (Text == "while")
    Kind = TokenKind::KwWhile;
  else if (Text == "break")
    Kind = TokenKind::KwBreak;
  else if (Text == "continue")
    Kind = TokenKind::KwContinue;
  else if (Text == "return")
    Kind = TokenKind::KwReturn;
  else if (Text == "print")
    Kind = TokenKind::KwPrint;
  else if (Text == "input")
    Kind = TokenKind::KwInput;

  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  int64_t Value = 0;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    Value = Value * 10 + (advance() - '0');

  Token T;
  T.Kind = TokenKind::IntLiteral;
  T.Loc = Loc;
  T.Value = Value;
  return T;
}

Token Lexer::lexCharLiteral(SourceLoc Loc) {
  // Opening quote already consumed by the caller.
  Token T;
  T.Kind = TokenKind::IntLiteral;
  T.Loc = Loc;
  if (atEnd()) {
    Diags.error(Loc, "unterminated character literal");
    T.Kind = TokenKind::Unknown;
    return T;
  }
  char C = advance();
  if (C == '\\' && !atEnd()) {
    char Esc = advance();
    switch (Esc) {
    case 'n':
      C = '\n';
      break;
    case 't':
      C = '\t';
      break;
    case '0':
      C = '\0';
      break;
    case '\\':
      C = '\\';
      break;
    case '\'':
      C = '\'';
      break;
    default:
      Diags.error(Loc, std::string("unknown escape '\\") + Esc + "'");
      break;
    }
  }
  T.Value = static_cast<unsigned char>(C);
  if (atEnd() || advance() != '\'') {
    Diags.error(Loc, "expected closing ' in character literal");
    T.Kind = TokenKind::Unknown;
  }
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Loc = here();
  Token T;
  T.Loc = Loc;
  if (atEnd()) {
    T.Kind = TokenKind::EndOfFile;
    return T;
  }

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);

  advance();
  switch (C) {
  case '\'':
    return lexCharLiteral(Loc);
  case '(':
    T.Kind = TokenKind::LParen;
    return T;
  case ')':
    T.Kind = TokenKind::RParen;
    return T;
  case '{':
    T.Kind = TokenKind::LBrace;
    return T;
  case '}':
    T.Kind = TokenKind::RBrace;
    return T;
  case '[':
    T.Kind = TokenKind::LBracket;
    return T;
  case ']':
    T.Kind = TokenKind::RBracket;
    return T;
  case ';':
    T.Kind = TokenKind::Semicolon;
    return T;
  case ',':
    T.Kind = TokenKind::Comma;
    return T;
  case '+':
    T.Kind = TokenKind::Plus;
    return T;
  case '-':
    T.Kind = TokenKind::Minus;
    return T;
  case '*':
    T.Kind = TokenKind::Star;
    return T;
  case '/':
    T.Kind = TokenKind::Slash;
    return T;
  case '%':
    T.Kind = TokenKind::Percent;
    return T;
  case '=':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::EqEq;
    } else {
      T.Kind = TokenKind::Assign;
    }
    return T;
  case '!':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::NotEq;
    } else {
      T.Kind = TokenKind::Bang;
    }
    return T;
  case '<':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::LessEq;
    } else {
      T.Kind = TokenKind::Less;
    }
    return T;
  case '>':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::GreaterEq;
    } else {
      T.Kind = TokenKind::Greater;
    }
    return T;
  case '&':
    if (peek() == '&') {
      advance();
      T.Kind = TokenKind::AmpAmp;
      return T;
    }
    break;
  case '|':
    if (peek() == '|') {
      advance();
      T.Kind = TokenKind::PipePipe;
      return T;
    }
    break;
  default:
    break;
  }
  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  T.Kind = TokenKind::Unknown;
  return T;
}
