//===-- lang/AST.h - Siml abstract syntax trees ------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node classes for Siml, the small C-like imperative language that
/// serves as this reproduction's execution substrate (the paper used x86
/// binaries under valgrind; see DESIGN.md section 2).
///
/// Siml has a single value type (int64), scalars and fixed-size arrays,
/// functions with by-value scalar parameters and a single return value,
/// structured control flow (if/else, while, break, continue, return), a
/// print statement producing observable output events, and an input()
/// expression reading the next value of the program input.
///
/// Every statement and expression node carries a dense id assigned at
/// creation by the owning Program; all later analyses (CFG, dependence
/// graphs, traces) index by these ids.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_LANG_AST_H
#define EOE_LANG_AST_H

#include "support/Casting.h"
#include "support/Diagnostic.h"
#include "support/Ids.h"

#include <memory>
#include <string>
#include <vector>

namespace eoe {
namespace lang {

class Program;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binary operators. And/Or short-circuit like C's && and ||.
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or
};

/// Unary operators.
enum class UnaryOp { Neg, Not };

/// Returns the source spelling of \p Op ("+", "==", "&&", ...).
const char *binaryOpSpelling(BinaryOp Op);

/// Returns the source spelling of \p Op ("-", "!").
const char *unaryOpSpelling(UnaryOp Op);

class Expr;

/// Evaluates \p E as a compile-time constant (an integer literal,
/// possibly under unary minus chains). Returns false when \p E is not
/// constant in that sense. Used for global initializers.
bool evaluateConstant(const Expr *E, int64_t &Value);

/// Base class of all Siml expressions.
class Expr {
public:
  enum class Kind { IntLit, VarRef, ArrayRef, Call, Input, Unary, Binary };

  Kind kind() const { return K; }
  ExprId id() const { return Id; }
  SourceLoc loc() const { return Loc; }

  // Nodes are owned polymorphically by Program, so the destructor must be
  // virtual even though the hierarchy is otherwise vtable-free.
  virtual ~Expr() = default;

protected:
  Expr(Kind K, ExprId Id, SourceLoc Loc) : K(K), Id(Id), Loc(Loc) {}

private:
  friend class Program;
  Kind K;
  ExprId Id;
  SourceLoc Loc;
};

/// An integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(ExprId Id, SourceLoc Loc, int64_t Value)
      : Expr(Kind::IntLit, Id, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// A read of a scalar variable.
class VarRefExpr : public Expr {
public:
  VarRefExpr(ExprId Id, SourceLoc Loc, std::string Name)
      : Expr(Kind::VarRef, Id, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Resolved variable; InvalidId until Sema runs.
  VarId var() const { return Var; }
  void setVar(VarId V) { Var = V; }

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
  VarId Var = InvalidId;
};

/// A read of an array element, a[index].
class ArrayRefExpr : public Expr {
public:
  ArrayRefExpr(ExprId Id, SourceLoc Loc, std::string Name, Expr *Index)
      : Expr(Kind::ArrayRef, Id, Loc), Name(std::move(Name)), Index(Index) {}

  const std::string &name() const { return Name; }
  Expr *index() const { return Index; }

  /// Resolved array variable; InvalidId until Sema runs.
  VarId var() const { return Var; }
  void setVar(VarId V) { Var = V; }

  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayRef; }

private:
  std::string Name;
  Expr *Index;
  VarId Var = InvalidId;
};

/// A call used as an expression; yields the callee's return value.
class CallExpr : public Expr {
public:
  CallExpr(ExprId Id, SourceLoc Loc, std::string Callee,
           std::vector<Expr *> Args)
      : Expr(Kind::Call, Id, Loc), CalleeName(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &calleeName() const { return CalleeName; }
  const std::vector<Expr *> &args() const { return Args; }

  /// Resolved callee; InvalidId until Sema runs.
  FuncId callee() const { return Callee; }
  void setCallee(FuncId F) { Callee = F; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  std::string CalleeName;
  std::vector<Expr *> Args;
  FuncId Callee = InvalidId;
};

/// input(): reads the next value of the program input; -1 at end of input.
class InputExpr : public Expr {
public:
  InputExpr(ExprId Id, SourceLoc Loc) : Expr(Kind::Input, Id, Loc) {}

  static bool classof(const Expr *E) { return E->kind() == Kind::Input; }
};

/// A unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(ExprId Id, SourceLoc Loc, UnaryOp Op, Expr *Sub)
      : Expr(Kind::Unary, Id, Loc), Op(Op), Sub(Sub) {}

  UnaryOp op() const { return Op; }
  Expr *sub() const { return Sub; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  Expr *Sub;
};

/// A binary operation; And/Or evaluate the RHS only when needed.
class BinaryExpr : public Expr {
public:
  BinaryExpr(ExprId Id, SourceLoc Loc, BinaryOp Op, Expr *LHS, Expr *RHS)
      : Expr(Kind::Binary, Id, Loc), Op(Op), LHS(LHS), RHS(RHS) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all Siml statements. A statement is the unit of tracing,
/// slicing, and alignment, exactly as in the paper.
class Stmt {
public:
  enum class Kind {
    VarDecl,
    Assign,
    ArrayAssign,
    If,
    While,
    Break,
    Continue,
    Return,
    Print,
    CallStmt
  };

  Kind kind() const { return K; }
  StmtId id() const { return Id; }
  SourceLoc loc() const { return Loc; }

  /// Returns true for statements whose execution evaluates a branch
  /// condition (if/while) -- the predicates of the paper.
  bool isPredicate() const { return K == Kind::If || K == Kind::While; }

  // Nodes are owned polymorphically by Program, so the destructor must be
  // virtual even though the hierarchy is otherwise vtable-free.
  virtual ~Stmt() = default;

protected:
  Stmt(Kind K, StmtId Id, SourceLoc Loc) : K(K), Id(Id), Loc(Loc) {}

private:
  Kind K;
  StmtId Id;
  SourceLoc Loc;
};

/// Declaration of a scalar or array variable, with optional scalar init.
/// Globals are represented with the same node at program scope.
class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(StmtId Id, SourceLoc Loc, std::string Name, int64_t ArraySize,
              Expr *Init)
      : Stmt(Kind::VarDecl, Id, Loc), Name(std::move(Name)),
        ArraySize(ArraySize), Init(Init) {}

  const std::string &name() const { return Name; }

  /// 0 for scalars; the (constant) element count for arrays.
  int64_t arraySize() const { return ArraySize; }
  bool isArray() const { return ArraySize != 0; }

  /// Optional initializer (scalars only); null if absent.
  Expr *init() const { return Init; }

  /// Resolved variable; InvalidId until Sema runs.
  VarId var() const { return Var; }
  void setVar(VarId V) { Var = V; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::VarDecl; }

private:
  std::string Name;
  int64_t ArraySize;
  Expr *Init;
  VarId Var = InvalidId;
};

/// Assignment to a scalar variable.
class AssignStmt : public Stmt {
public:
  AssignStmt(StmtId Id, SourceLoc Loc, std::string Name, Expr *Value)
      : Stmt(Kind::Assign, Id, Loc), Name(std::move(Name)), Value(Value) {}

  const std::string &name() const { return Name; }
  Expr *value() const { return Value; }

  VarId var() const { return Var; }
  void setVar(VarId V) { Var = V; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  std::string Name;
  Expr *Value;
  VarId Var = InvalidId;
};

/// Assignment to an array element, a[index] = value.
class ArrayAssignStmt : public Stmt {
public:
  ArrayAssignStmt(StmtId Id, SourceLoc Loc, std::string Name, Expr *Index,
                  Expr *Value)
      : Stmt(Kind::ArrayAssign, Id, Loc), Name(std::move(Name)), Index(Index),
        Value(Value) {}

  const std::string &name() const { return Name; }
  Expr *index() const { return Index; }
  Expr *value() const { return Value; }

  VarId var() const { return Var; }
  void setVar(VarId V) { Var = V; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::ArrayAssign; }

private:
  std::string Name;
  Expr *Index;
  Expr *Value;
  VarId Var = InvalidId;
};

/// if (Cond) { Then } else { Else }. The statement itself is the predicate.
class IfStmt : public Stmt {
public:
  IfStmt(StmtId Id, SourceLoc Loc, Expr *Cond, std::vector<Stmt *> Then,
         std::vector<Stmt *> Else)
      : Stmt(Kind::If, Id, Loc), Cond(Cond), Then(std::move(Then)),
        Else(std::move(Else)) {}

  Expr *cond() const { return Cond; }
  const std::vector<Stmt *> &thenBody() const { return Then; }
  const std::vector<Stmt *> &elseBody() const { return Else; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  Expr *Cond;
  std::vector<Stmt *> Then;
  std::vector<Stmt *> Else;
};

/// while (Cond) { Body }. Every evaluation of Cond is one predicate
/// instance, so each loop iteration forms a region nested in the previous
/// iteration's region (Definition 3 of the paper).
class WhileStmt : public Stmt {
public:
  WhileStmt(StmtId Id, SourceLoc Loc, Expr *Cond, std::vector<Stmt *> Body)
      : Stmt(Kind::While, Id, Loc), Cond(Cond), Body(std::move(Body)) {}

  Expr *cond() const { return Cond; }
  const std::vector<Stmt *> &body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  Expr *Cond;
  std::vector<Stmt *> Body;
};

/// break; exits the innermost loop.
class BreakStmt : public Stmt {
public:
  BreakStmt(StmtId Id, SourceLoc Loc) : Stmt(Kind::Break, Id, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

/// continue; jumps to the innermost loop's condition.
class ContinueStmt : public Stmt {
public:
  ContinueStmt(StmtId Id, SourceLoc Loc) : Stmt(Kind::Continue, Id, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

/// return [value]; defines the frame's return-value location.
class ReturnStmt : public Stmt {
public:
  ReturnStmt(StmtId Id, SourceLoc Loc, Expr *Value)
      : Stmt(Kind::Return, Id, Loc), Value(Value) {}

  /// Null when the return carries no value (the frame's return value
  /// location is then defined as 0).
  Expr *value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  Expr *Value;
};

/// print(e0, e1, ...); each argument produces one observable output event.
class PrintStmt : public Stmt {
public:
  PrintStmt(StmtId Id, SourceLoc Loc, std::vector<Expr *> Args)
      : Stmt(Kind::Print, Id, Loc), Args(std::move(Args)) {}

  const std::vector<Expr *> &args() const { return Args; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Print; }

private:
  std::vector<Expr *> Args;
};

/// A call whose return value is discarded, used as a statement.
class CallStmtNode : public Stmt {
public:
  CallStmtNode(StmtId Id, SourceLoc Loc, CallExpr *Call)
      : Stmt(Kind::CallStmt, Id, Loc), Call(Call) {}

  CallExpr *call() const { return Call; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::CallStmt; }

private:
  CallExpr *Call;
};

//===----------------------------------------------------------------------===//
// Functions, variables, and the program
//===----------------------------------------------------------------------===//

/// One Siml function.
class Function {
public:
  Function(FuncId Id, SourceLoc Loc, std::string Name,
           std::vector<std::string> ParamNames)
      : Id(Id), Loc(Loc), Name(std::move(Name)),
        ParamNames(std::move(ParamNames)) {}

  FuncId id() const { return Id; }
  SourceLoc loc() const { return Loc; }
  const std::string &name() const { return Name; }
  const std::vector<std::string> &paramNames() const { return ParamNames; }

  const std::vector<Stmt *> &body() const { return Body; }
  void setBody(std::vector<Stmt *> B) { Body = std::move(B); }

  /// Parameter variables in declaration order; filled by Sema.
  const std::vector<VarId> &params() const { return Params; }
  void setParams(std::vector<VarId> P) { Params = std::move(P); }

  /// Number of int64 slots a frame of this function needs (params, locals,
  /// array storage); computed by Sema.
  uint32_t frameSlots() const { return FrameSlots; }
  void setFrameSlots(uint32_t N) { FrameSlots = N; }

private:
  FuncId Id;
  SourceLoc Loc;
  std::string Name;
  std::vector<std::string> ParamNames;
  std::vector<Stmt *> Body;
  std::vector<VarId> Params;
  uint32_t FrameSlots = 0;
};

/// Metadata for one resolved variable (global or local), filled by Sema.
struct VarInfo {
  std::string Name;
  /// Owning function, or InvalidId for globals.
  FuncId Func = InvalidId;
  /// Offset of the first slot in global memory or the owning frame.
  uint32_t Slot = 0;
  /// 0 for scalars; the element count for arrays.
  int64_t ArraySize = 0;
  /// The declaring statement (InvalidId for parameters).
  StmtId Decl = InvalidId;

  bool isGlobal() const { return Func == InvalidId; }
  bool isArray() const { return ArraySize != 0; }
  /// Number of memory slots this variable occupies.
  uint32_t slotCount() const {
    return ArraySize == 0 ? 1u : static_cast<uint32_t>(ArraySize);
  }
};

/// Owns every AST node of one Siml program and provides the dense-id
/// registries (statements, expressions, variables, functions) that all
/// analyses index by.
class Program {
public:
  Program() = default;
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  /// Creates and registers an expression node, assigning its ExprId.
  template <typename T, typename... ArgTs> T *createExpr(ArgTs &&...Args) {
    auto Node = std::make_unique<T>(static_cast<ExprId>(Exprs.size()),
                                    std::forward<ArgTs>(Args)...);
    T *Raw = Node.get();
    ExprOwner.push_back(std::move(Node));
    Exprs.push_back(Raw);
    return Raw;
  }

  /// Creates and registers a statement node, assigning its StmtId.
  template <typename T, typename... ArgTs> T *createStmt(ArgTs &&...Args) {
    auto Node = std::make_unique<T>(static_cast<StmtId>(Stmts.size()),
                                    std::forward<ArgTs>(Args)...);
    T *Raw = Node.get();
    StmtOwner.push_back(std::move(Node));
    Stmts.push_back(Raw);
    return Raw;
  }

  /// Creates and registers a function, assigning its FuncId.
  Function *createFunction(SourceLoc Loc, std::string Name,
                           std::vector<std::string> ParamNames);

  /// Registers a resolved variable; returns its VarId. Called by Sema.
  VarId addVariable(VarInfo Info);

  const std::vector<Stmt *> &statements() const { return Stmts; }
  const std::vector<Expr *> &expressions() const { return Exprs; }
  const std::vector<Function *> &functions() const { return Funcs; }
  const std::vector<VarInfo> &variables() const { return Vars; }

  Stmt *statement(StmtId Id) const { return Stmts.at(Id); }
  Expr *expression(ExprId Id) const { return Exprs.at(Id); }
  Function *function(FuncId Id) const { return Funcs.at(Id); }
  const VarInfo &variable(VarId Id) const { return Vars.at(Id); }

  /// Top-level global declarations in source order (VarDeclStmt nodes).
  const std::vector<VarDeclStmt *> &globals() const { return Globals; }
  void addGlobal(VarDeclStmt *G) { Globals.push_back(G); }

  /// The entry function; InvalidId until Sema resolves "main".
  FuncId mainFunction() const { return MainFunc; }
  void setMainFunction(FuncId F) { MainFunc = F; }

  /// Total number of int64 slots of global memory; computed by Sema.
  uint32_t globalSlots() const { return GlobalSlots; }
  void setGlobalSlots(uint32_t N) { GlobalSlots = N; }

  /// Looks up a function by name; returns InvalidId if absent.
  FuncId findFunction(const std::string &Name) const;

  /// Returns the first statement whose source line is \p Line, or
  /// InvalidId. Used by the workload fault registry to anchor root causes.
  StmtId statementAtLine(uint32_t Line) const;

private:
  std::vector<std::unique_ptr<Expr>> ExprOwner;
  std::vector<std::unique_ptr<Stmt>> StmtOwner;
  std::vector<std::unique_ptr<Function>> FuncOwner;
  std::vector<Expr *> Exprs;
  std::vector<Stmt *> Stmts;
  std::vector<Function *> Funcs;
  std::vector<VarInfo> Vars;
  std::vector<VarDeclStmt *> Globals;
  FuncId MainFunc = InvalidId;
  uint32_t GlobalSlots = 0;
};

} // namespace lang
} // namespace eoe

#endif // EOE_LANG_AST_H
