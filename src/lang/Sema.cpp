//===-- lang/Sema.cpp - Siml semantic checking ------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "support/Diagnostic.h"

#include <cassert>

using namespace eoe;
using namespace eoe::lang;

Sema::Sema(Program &Prog, DiagnosticEngine &Diags)
    : Prog(Prog), Diags(Diags) {}

void Sema::run() {
  Scopes.clear();
  Scopes.emplace_back(); // Global scope.
  declareGlobals();

  // Reject duplicate function names up front so call resolution is
  // unambiguous.
  for (Function *F : Prog.functions())
    for (Function *Other : Prog.functions())
      if (F != Other && F->name() == Other->name() && F->id() < Other->id())
        Diags.error(Other->loc(),
                    "duplicate function '" + Other->name() + "'");

  for (Function *F : Prog.functions())
    checkFunction(*F);

  FuncId Main = Prog.findFunction("main");
  if (!isValidId(Main)) {
    Diags.error(SourceLoc{1, 1}, "program has no 'main' function");
    return;
  }
  if (!Prog.function(Main)->paramNames().empty())
    Diags.error(Prog.function(Main)->loc(), "'main' must take no parameters");
  Prog.setMainFunction(Main);
}

void Sema::declareGlobals() {
  uint32_t Slot = 0;
  for (VarDeclStmt *G : Prog.globals()) {
    if (Scopes[0].Vars.count(G->name())) {
      Diags.error(G->loc(), "duplicate global '" + G->name() + "'");
      continue;
    }
    VarInfo Info;
    Info.Name = G->name();
    Info.Func = InvalidId;
    Info.Slot = Slot;
    Info.ArraySize = G->arraySize();
    Info.Decl = G->id();
    Slot += Info.slotCount();
    VarId Id = Prog.addVariable(std::move(Info));
    G->setVar(Id);
    Scopes[0].Vars[G->name()] = Id;
  }
  Prog.setGlobalSlots(Slot);
}

VarId Sema::declareVar(const std::string &Name, int64_t ArraySize, StmtId Decl,
                       SourceLoc Loc) {
  assert(CurFunc && "local declaration outside a function");
  Scope &Inner = Scopes.back();
  if (Inner.Vars.count(Name)) {
    Diags.error(Loc, "duplicate variable '" + Name + "' in this scope");
    return Inner.Vars[Name];
  }
  VarInfo Info;
  Info.Name = Name;
  Info.Func = CurFunc->id();
  Info.Slot = NextSlot;
  Info.ArraySize = ArraySize;
  Info.Decl = Decl;
  NextSlot += Info.slotCount();
  VarId Id = Prog.addVariable(std::move(Info));
  Inner.Vars[Name] = Id;
  return Id;
}

VarId Sema::lookupVar(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Vars.find(Name);
    if (Found != It->Vars.end())
      return Found->second;
  }
  return InvalidId;
}

void Sema::requireScalar(VarId Var, SourceLoc Loc, const std::string &Name) {
  if (isValidId(Var) && Prog.variable(Var).isArray())
    Diags.error(Loc, "array '" + Name + "' used as a scalar");
}

void Sema::requireArray(VarId Var, SourceLoc Loc, const std::string &Name) {
  if (isValidId(Var) && !Prog.variable(Var).isArray())
    Diags.error(Loc, "scalar '" + Name + "' indexed like an array");
}

void Sema::checkFunction(Function &F) {
  CurFunc = &F;
  NextSlot = 0;
  LoopDepth = 0;
  Scopes.resize(1); // Keep only the global scope.
  Scopes.emplace_back();

  std::vector<VarId> Params;
  for (const std::string &PName : F.paramNames())
    Params.push_back(declareVar(PName, /*ArraySize=*/0,
                                /*Decl=*/InvalidId, F.loc()));
  F.setParams(std::move(Params));

  checkBody(F.body());
  F.setFrameSlots(NextSlot);
  CurFunc = nullptr;
}

void Sema::checkBody(const std::vector<Stmt *> &Body) {
  Scopes.emplace_back();
  for (Stmt *S : Body)
    checkStmt(S);
  Scopes.pop_back();
}

void Sema::checkStmt(Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::VarDecl: {
    auto *Decl = cast<VarDeclStmt>(S);
    if (Decl->init())
      checkExpr(Decl->init());
    if (Decl->isArray() && Decl->init())
      Diags.error(Decl->loc(), "arrays cannot have initializers");
    Decl->setVar(
        declareVar(Decl->name(), Decl->arraySize(), Decl->id(), Decl->loc()));
    return;
  }
  case Stmt::Kind::Assign: {
    auto *A = cast<AssignStmt>(S);
    checkExpr(A->value());
    VarId Var = lookupVar(A->name());
    if (!isValidId(Var)) {
      Diags.error(A->loc(), "unknown variable '" + A->name() + "'");
      return;
    }
    requireScalar(Var, A->loc(), A->name());
    A->setVar(Var);
    return;
  }
  case Stmt::Kind::ArrayAssign: {
    auto *A = cast<ArrayAssignStmt>(S);
    checkExpr(A->index());
    checkExpr(A->value());
    VarId Var = lookupVar(A->name());
    if (!isValidId(Var)) {
      Diags.error(A->loc(), "unknown array '" + A->name() + "'");
      return;
    }
    requireArray(Var, A->loc(), A->name());
    A->setVar(Var);
    return;
  }
  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    checkExpr(If->cond());
    checkBody(If->thenBody());
    checkBody(If->elseBody());
    return;
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    checkExpr(W->cond());
    ++LoopDepth;
    checkBody(W->body());
    --LoopDepth;
    return;
  }
  case Stmt::Kind::Break:
    if (LoopDepth == 0)
      Diags.error(S->loc(), "'break' outside a loop");
    return;
  case Stmt::Kind::Continue:
    if (LoopDepth == 0)
      Diags.error(S->loc(), "'continue' outside a loop");
    return;
  case Stmt::Kind::Return: {
    auto *R = cast<ReturnStmt>(S);
    if (R->value())
      checkExpr(R->value());
    return;
  }
  case Stmt::Kind::Print: {
    auto *P = cast<PrintStmt>(S);
    if (P->args().empty())
      Diags.error(P->loc(), "print requires at least one argument");
    for (Expr *Arg : P->args())
      checkExpr(Arg);
    return;
  }
  case Stmt::Kind::CallStmt:
    checkExpr(cast<CallStmtNode>(S)->call());
    return;
  }
}

void Sema::checkExpr(Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::Input:
    return;
  case Expr::Kind::VarRef: {
    auto *Ref = cast<VarRefExpr>(E);
    VarId Var = lookupVar(Ref->name());
    if (!isValidId(Var)) {
      Diags.error(Ref->loc(), "unknown variable '" + Ref->name() + "'");
      return;
    }
    requireScalar(Var, Ref->loc(), Ref->name());
    Ref->setVar(Var);
    return;
  }
  case Expr::Kind::ArrayRef: {
    auto *Ref = cast<ArrayRefExpr>(E);
    checkExpr(Ref->index());
    VarId Var = lookupVar(Ref->name());
    if (!isValidId(Var)) {
      Diags.error(Ref->loc(), "unknown array '" + Ref->name() + "'");
      return;
    }
    requireArray(Var, Ref->loc(), Ref->name());
    Ref->setVar(Var);
    return;
  }
  case Expr::Kind::Call: {
    auto *Call = cast<CallExpr>(E);
    for (Expr *Arg : Call->args())
      checkExpr(Arg);
    FuncId Callee = Prog.findFunction(Call->calleeName());
    if (!isValidId(Callee)) {
      Diags.error(Call->loc(),
                  "call to unknown function '" + Call->calleeName() + "'");
      return;
    }
    const Function *F = Prog.function(Callee);
    if (F->paramNames().size() != Call->args().size())
      Diags.error(Call->loc(), "call to '" + Call->calleeName() + "' with " +
                                   std::to_string(Call->args().size()) +
                                   " arguments; expected " +
                                   std::to_string(F->paramNames().size()));
    Call->setCallee(Callee);
    return;
  }
  case Expr::Kind::Unary:
    checkExpr(cast<UnaryExpr>(E)->sub());
    return;
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    checkExpr(B->lhs());
    checkExpr(B->rhs());
    return;
  }
  }
}
