//===-- lang/Parser.h - Siml parser ------------------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for Siml. Produces a Program whose nodes are
/// unresolved (names only); run Sema afterwards to resolve variables,
/// functions, and frame layouts.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_LANG_PARSER_H
#define EOE_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Token.h"

#include <memory>
#include <vector>

namespace eoe {
class DiagnosticEngine;

namespace lang {

/// Parses a token stream into a Program.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses a full program. On error, diagnostics are reported and the
  /// returned Program may be partial; callers must check Diags.hasErrors().
  std::unique_ptr<Program> parseProgram();

private:
  const Token &peek(size_t Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void synchronizeToStmt();

  void parseTopLevel();
  void parseGlobalDecl();
  void parseFunction();
  std::vector<Stmt *> parseBlock();
  Stmt *parseStatement();
  Stmt *parseVarDecl();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseAssignOrCall();

  Expr *parseExpr();
  Expr *parseBinaryRHS(int MinPrec, Expr *LHS);
  Expr *parseUnary();
  Expr *parsePrimary();
  std::vector<Expr *> parseCallArgs();

  std::vector<Token> Tokens;
  size_t Pos = 0;
  DiagnosticEngine &Diags;
  std::unique_ptr<Program> Prog;
};

/// Convenience entry point: lex + parse + sema in one call. Returns null
/// and fills \p Diags on any error.
std::unique_ptr<Program> parseAndCheck(std::string_view Source,
                                       DiagnosticEngine &Diags);

} // namespace lang
} // namespace eoe

#endif // EOE_LANG_PARSER_H
