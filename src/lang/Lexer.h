//===-- lang/Lexer.h - Siml lexer --------------------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for Siml. Supports // line comments, decimal integer
/// literals, and character literals ('a' lexes as the character code, so
/// workload sources can compare input bytes readably).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_LANG_LEXER_H
#define EOE_LANG_LEXER_H

#include "lang/Token.h"

#include <string_view>
#include <vector>

namespace eoe {
class DiagnosticEngine;

namespace lang {

/// Turns a Siml source buffer into a token stream.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes the entire buffer; the result always ends with EndOfFile.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(size_t Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc here() const { return {Line, Col}; }
  void skipTrivia();
  Token lexIdentifierOrKeyword(SourceLoc Loc);
  Token lexNumber(SourceLoc Loc);
  Token lexCharLiteral(SourceLoc Loc);

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace lang
} // namespace eoe

#endif // EOE_LANG_LEXER_H
