//===-- lang/Sema.h - Siml semantic checking ---------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and semantic checks for Siml programs: binds variable
/// references and calls, lays out global and frame memory slots, and
/// validates structural rules (break/continue placement, array vs scalar
/// usage, call arity, presence of a zero-argument main).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_LANG_SEMA_H
#define EOE_LANG_SEMA_H

#include "lang/AST.h"

#include <map>
#include <string>
#include <vector>

namespace eoe {
class DiagnosticEngine;

namespace lang {

/// Resolves and validates a parsed Program in place.
class Sema {
public:
  Sema(Program &Prog, DiagnosticEngine &Diags);

  /// Runs all checks; afterwards the program is fully resolved unless
  /// Diags.hasErrors().
  void run();

private:
  struct Scope {
    std::map<std::string, VarId> Vars;
  };

  void declareGlobals();
  void checkFunction(Function &F);
  void checkBody(const std::vector<Stmt *> &Body);
  void checkStmt(Stmt *S);
  void checkExpr(Expr *E);
  VarId declareVar(const std::string &Name, int64_t ArraySize, StmtId Decl,
                   SourceLoc Loc);
  VarId lookupVar(const std::string &Name) const;
  void requireScalar(VarId Var, SourceLoc Loc, const std::string &Name);
  void requireArray(VarId Var, SourceLoc Loc, const std::string &Name);

  Program &Prog;
  DiagnosticEngine &Diags;
  std::vector<Scope> Scopes;   // innermost last; Scopes[0] = globals
  Function *CurFunc = nullptr; // function being checked
  uint32_t NextSlot = 0;       // next free frame slot in CurFunc
  unsigned LoopDepth = 0;      // nesting depth of while statements
};

} // namespace lang
} // namespace eoe

#endif // EOE_LANG_SEMA_H
