//===-- lang/PrettyPrinter.h - Siml source rendering -------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders AST nodes back to source text. Used by the debugging reports
/// (fault candidate listings) and by examples; also round-trip-tested.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_LANG_PRETTYPRINTER_H
#define EOE_LANG_PRETTYPRINTER_H

#include "lang/AST.h"

#include <string>

namespace eoe {
namespace lang {

/// Renders \p E as an expression string.
std::string exprToString(const Expr *E);

/// Renders the head of \p S on one line. Compound statements render only
/// their header ("if (x > 0)", "while (i < n)"), matching how the paper
/// reports predicates.
std::string stmtToString(const Stmt *S);

/// Renders \p S with "line L: " prefixed, e.g. "line 12: flags = flags + 32".
std::string describeStmt(const Program &Prog, StmtId Id);

/// Renders the whole program as (re-parsable) source text.
std::string programToString(const Program &Prog);

} // namespace lang
} // namespace eoe

#endif // EOE_LANG_PRETTYPRINTER_H
