//===-- lang/PrettyPrinter.cpp - Siml source rendering ----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "lang/PrettyPrinter.h"

#include <sstream>

using namespace eoe;
using namespace eoe::lang;

namespace {

void printExpr(std::ostringstream &OS, const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    OS << cast<IntLitExpr>(E)->value();
    return;
  case Expr::Kind::VarRef:
    OS << cast<VarRefExpr>(E)->name();
    return;
  case Expr::Kind::ArrayRef: {
    const auto *Ref = cast<ArrayRefExpr>(E);
    OS << Ref->name() << '[';
    printExpr(OS, Ref->index());
    OS << ']';
    return;
  }
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(E);
    OS << Call->calleeName() << '(';
    for (size_t I = 0; I < Call->args().size(); ++I) {
      if (I != 0)
        OS << ", ";
      printExpr(OS, Call->args()[I]);
    }
    OS << ')';
    return;
  }
  case Expr::Kind::Input:
    OS << "input()";
    return;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    OS << unaryOpSpelling(U->op());
    OS << '(';
    printExpr(OS, U->sub());
    OS << ')';
    return;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    OS << '(';
    printExpr(OS, B->lhs());
    OS << ' ' << binaryOpSpelling(B->op()) << ' ';
    printExpr(OS, B->rhs());
    OS << ')';
    return;
  }
  }
}

void printStmtHead(std::ostringstream &OS, const Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::VarDecl: {
    const auto *Decl = cast<VarDeclStmt>(S);
    OS << "var " << Decl->name();
    if (Decl->isArray())
      OS << '[' << Decl->arraySize() << ']';
    if (Decl->init()) {
      OS << " = ";
      printExpr(OS, Decl->init());
    }
    OS << ';';
    return;
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    OS << A->name() << " = ";
    printExpr(OS, A->value());
    OS << ';';
    return;
  }
  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(S);
    OS << A->name() << '[';
    printExpr(OS, A->index());
    OS << "] = ";
    printExpr(OS, A->value());
    OS << ';';
    return;
  }
  case Stmt::Kind::If: {
    OS << "if (";
    printExpr(OS, cast<IfStmt>(S)->cond());
    OS << ')';
    return;
  }
  case Stmt::Kind::While: {
    OS << "while (";
    printExpr(OS, cast<WhileStmt>(S)->cond());
    OS << ')';
    return;
  }
  case Stmt::Kind::Break:
    OS << "break;";
    return;
  case Stmt::Kind::Continue:
    OS << "continue;";
    return;
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    OS << "return";
    if (R->value()) {
      OS << ' ';
      printExpr(OS, R->value());
    }
    OS << ';';
    return;
  }
  case Stmt::Kind::Print: {
    const auto *P = cast<PrintStmt>(S);
    OS << "print(";
    for (size_t I = 0; I < P->args().size(); ++I) {
      if (I != 0)
        OS << ", ";
      printExpr(OS, P->args()[I]);
    }
    OS << ");";
    return;
  }
  case Stmt::Kind::CallStmt:
    printExpr(OS, cast<CallStmtNode>(S)->call());
    OS << ';';
    return;
  }
}

void printBody(std::ostringstream &OS, const std::vector<Stmt *> &Body,
               int Indent);

void printFullStmt(std::ostringstream &OS, const Stmt *S, int Indent) {
  OS << std::string(static_cast<size_t>(Indent) * 2, ' ');
  if (const auto *If = dyn_cast<IfStmt>(S)) {
    OS << "if (";
    printExpr(OS, If->cond());
    OS << ") {\n";
    printBody(OS, If->thenBody(), Indent + 1);
    OS << std::string(static_cast<size_t>(Indent) * 2, ' ') << '}';
    if (!If->elseBody().empty()) {
      OS << " else {\n";
      printBody(OS, If->elseBody(), Indent + 1);
      OS << std::string(static_cast<size_t>(Indent) * 2, ' ') << '}';
    }
    OS << '\n';
    return;
  }
  if (const auto *W = dyn_cast<WhileStmt>(S)) {
    OS << "while (";
    printExpr(OS, W->cond());
    OS << ") {\n";
    printBody(OS, W->body(), Indent + 1);
    OS << std::string(static_cast<size_t>(Indent) * 2, ' ') << "}\n";
    return;
  }
  printStmtHead(OS, S);
  OS << '\n';
}

void printBody(std::ostringstream &OS, const std::vector<Stmt *> &Body,
               int Indent) {
  for (const Stmt *S : Body)
    printFullStmt(OS, S, Indent);
}

} // namespace

std::string lang::exprToString(const Expr *E) {
  std::ostringstream OS;
  printExpr(OS, E);
  return OS.str();
}

std::string lang::stmtToString(const Stmt *S) {
  std::ostringstream OS;
  printStmtHead(OS, S);
  return OS.str();
}

std::string lang::describeStmt(const Program &Prog, StmtId Id) {
  const Stmt *S = Prog.statement(Id);
  std::ostringstream OS;
  OS << "line " << S->loc().Line << ": ";
  printStmtHead(OS, S);
  return OS.str();
}

std::string lang::programToString(const Program &Prog) {
  std::ostringstream OS;
  for (const VarDeclStmt *G : Prog.globals()) {
    printStmtHead(OS, G);
    OS << '\n';
  }
  for (const Function *F : Prog.functions()) {
    OS << "fn " << F->name() << '(';
    for (size_t I = 0; I < F->paramNames().size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << F->paramNames()[I];
    }
    OS << ") {\n";
    printBody(OS, F->body(), 1);
    OS << "}\n";
  }
  return OS.str();
}
