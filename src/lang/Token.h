//===-- lang/Token.h - Siml tokens -------------------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the Siml lexer.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_LANG_TOKEN_H
#define EOE_LANG_TOKEN_H

#include "support/Diagnostic.h"

#include <cstdint>
#include <string>

namespace eoe {
namespace lang {

/// Every lexical token category of Siml.
enum class TokenKind {
  EndOfFile,
  Identifier,
  IntLiteral,
  // Keywords.
  KwVar,
  KwFn,
  KwIf,
  KwElse,
  KwWhile,
  KwBreak,
  KwContinue,
  KwReturn,
  KwPrint,
  KwInput,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Bang,
  // Lexer error placeholder.
  Unknown
};

/// Returns a human-readable name for \p Kind, used in parse errors.
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Text is filled for identifiers; Value for literals.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceLoc Loc;
  std::string Text;
  int64_t Value = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace lang
} // namespace eoe

#endif // EOE_LANG_TOKEN_H
