//===-- lang/AST.cpp - Siml abstract syntax trees --------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "lang/AST.h"

using namespace eoe;
using namespace eoe::lang;

const char *lang::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

const char *lang::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::Not:
    return "!";
  }
  return "?";
}

bool lang::evaluateConstant(const Expr *E, int64_t &Value) {
  if (const auto *Lit = dyn_cast<IntLitExpr>(E)) {
    Value = Lit->value();
    return true;
  }
  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    if (U->op() != UnaryOp::Neg)
      return false;
    if (!evaluateConstant(U->sub(), Value))
      return false;
    Value = -Value;
    return true;
  }
  return false;
}

Function *Program::createFunction(SourceLoc Loc, std::string Name,
                                  std::vector<std::string> ParamNames) {
  auto Node = std::make_unique<Function>(static_cast<FuncId>(Funcs.size()),
                                         Loc, std::move(Name),
                                         std::move(ParamNames));
  Function *Raw = Node.get();
  FuncOwner.push_back(std::move(Node));
  Funcs.push_back(Raw);
  return Raw;
}

VarId Program::addVariable(VarInfo Info) {
  Vars.push_back(std::move(Info));
  return static_cast<VarId>(Vars.size() - 1);
}

FuncId Program::findFunction(const std::string &Name) const {
  for (const Function *F : Funcs)
    if (F->name() == Name)
      return F->id();
  return InvalidId;
}

StmtId Program::statementAtLine(uint32_t Line) const {
  for (const Stmt *S : Stmts)
    if (S->loc().Line == Line)
      return S->id();
  return InvalidId;
}
