//===-- slicing/OutputVerdicts.h - Correct/wrong output labels ---*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The failure specification every debugging stage consumes: which output
/// events of the failing run are known correct (the paper's Ov), which is
/// the first wrong output (o-cross), and the value the programmer expected
/// there (vexp, used to recognize strong implicit dependences).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SLICING_OUTPUTVERDICTS_H
#define EOE_SLICING_OUTPUTVERDICTS_H

#include "interp/Trace.h"

#include <optional>
#include <vector>

namespace eoe {
namespace slicing {

/// Labels over a failing run's output events.
struct OutputVerdicts {
  /// Indices into ExecutionTrace::Outputs that carry correct values.
  std::vector<size_t> CorrectOutputs;
  /// Index of the first wrong output event.
  size_t WrongOutput = 0;
  /// The expected (correct) value at the wrong output.
  int64_t ExpectedValue = 0;
};

/// Builds verdicts by comparing the failing run's outputs to the expected
/// output sequence (in practice obtained from the fixed program on the
/// same input). Outputs before the first mismatch are correct; outputs
/// after it are left unlabeled, mirroring how a programmer reads a log up
/// to the first wrong value. Returns nullopt when the runs agree on every
/// common prefix value (no observable value failure).
std::optional<OutputVerdicts>
diffOutputs(const interp::ExecutionTrace &Failing,
            const std::vector<int64_t> &Expected);

} // namespace slicing
} // namespace eoe

#endif // EOE_SLICING_OUTPUTVERDICTS_H
