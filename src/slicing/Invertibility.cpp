//===-- slicing/Invertibility.cpp - One-to-one value flow ---------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "slicing/Invertibility.h"

#include "support/Casting.h"

using namespace eoe;
using namespace eoe::lang;
using namespace eoe::slicing;

bool eoe::slicing::exprContains(const Expr *Root, ExprId Target) {
  if (Root->id() == Target)
    return true;
  switch (Root->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::VarRef:
  case Expr::Kind::Input:
    return false;
  case Expr::Kind::ArrayRef:
    return exprContains(cast<ArrayRefExpr>(Root)->index(), Target);
  case Expr::Kind::Call: {
    for (const Expr *Arg : cast<CallExpr>(Root)->args())
      if (exprContains(Arg, Target))
        return true;
    return false;
  }
  case Expr::Kind::Unary:
    return exprContains(cast<UnaryExpr>(Root)->sub(), Target);
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(Root);
    return exprContains(B->lhs(), Target) || exprContains(B->rhs(), Target);
  }
  }
  return false;
}

bool eoe::slicing::invertiblePath(const Expr *Root, ExprId Load) {
  if (Root->id() == Load)
    return true;
  switch (Root->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::VarRef:
  case Expr::Kind::Input:
    return false;
  case Expr::Kind::ArrayRef:
    // The element's value is not a one-to-one function of the index.
    return false;
  case Expr::Kind::Call:
    // A callee is an arbitrary (usually many-to-one) function of its
    // arguments. The load being the call's return-value read itself is
    // handled by the identity case above.
    return false;
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(Root);
    if (!exprContains(U->sub(), Load))
      return false;
    // Negation is a bijection; logical not collapses to two values.
    return U->op() == UnaryOp::Neg && invertiblePath(U->sub(), Load);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(Root);
    const Expr *Side = nullptr;
    const Expr *Other = nullptr;
    if (exprContains(B->lhs(), Load)) {
      Side = B->lhs();
      Other = B->rhs();
    } else if (exprContains(B->rhs(), Load)) {
      Side = B->rhs();
      Other = B->lhs();
    } else {
      return false;
    }
    switch (B->op()) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
      return invertiblePath(Side, Load);
    case BinaryOp::Mul: {
      // One-to-one only when scaling by a nonzero constant.
      const auto *Lit = dyn_cast<IntLitExpr>(Other);
      return Lit && Lit->value() != 0 && invertiblePath(Side, Load);
    }
    default:
      return false; // div, mod, comparisons, logic: many-to-one.
    }
  }
  }
  return false;
}

const Expr *eoe::slicing::valueRoot(const Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::VarDecl:
    return cast<VarDeclStmt>(S)->init();
  case Stmt::Kind::Assign:
    return cast<AssignStmt>(S)->value();
  case Stmt::Kind::ArrayAssign:
    return cast<ArrayAssignStmt>(S)->value();
  case Stmt::Kind::Return:
    return cast<ReturnStmt>(S)->value();
  default:
    return nullptr;
  }
}

std::vector<const Expr *> eoe::slicing::evaluatedRoots(const Stmt *S) {
  std::vector<const Expr *> Out;
  switch (S->kind()) {
  case Stmt::Kind::VarDecl:
    if (const Expr *Init = cast<VarDeclStmt>(S)->init())
      Out.push_back(Init);
    break;
  case Stmt::Kind::Assign:
    Out.push_back(cast<AssignStmt>(S)->value());
    break;
  case Stmt::Kind::ArrayAssign:
    Out.push_back(cast<ArrayAssignStmt>(S)->index());
    Out.push_back(cast<ArrayAssignStmt>(S)->value());
    break;
  case Stmt::Kind::If:
    Out.push_back(cast<IfStmt>(S)->cond());
    break;
  case Stmt::Kind::While:
    Out.push_back(cast<WhileStmt>(S)->cond());
    break;
  case Stmt::Kind::Return:
    if (const Expr *Value = cast<ReturnStmt>(S)->value())
      Out.push_back(Value);
    break;
  case Stmt::Kind::Print:
    for (const Expr *Arg : cast<PrintStmt>(S)->args())
      Out.push_back(Arg);
    break;
  case Stmt::Kind::CallStmt:
    Out.push_back(cast<CallStmtNode>(S)->call());
    break;
  default:
    break;
  }
  return Out;
}

void eoe::slicing::collectCallsPostorder(const Expr *Root,
                                         std::vector<const CallExpr *> &Out) {
  switch (Root->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::VarRef:
  case Expr::Kind::Input:
    return;
  case Expr::Kind::ArrayRef:
    collectCallsPostorder(cast<ArrayRefExpr>(Root)->index(), Out);
    return;
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(Root);
    for (const Expr *Arg : Call->args())
      collectCallsPostorder(Arg, Out);
    Out.push_back(Call);
    return;
  }
  case Expr::Kind::Unary:
    collectCallsPostorder(cast<UnaryExpr>(Root)->sub(), Out);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(Root);
    collectCallsPostorder(B->lhs(), Out);
    collectCallsPostorder(B->rhs(), Out);
    return;
  }
  }
}
