//===-- slicing/Confidence.cpp - Confidence analysis --------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "slicing/Confidence.h"

#include "slicing/Invertibility.h"
#include "support/Casting.h"

#include <algorithm>
#include <cmath>

using namespace eoe;
using namespace eoe::interp;
using namespace eoe::slicing;

ConfidenceAnalysis::ConfidenceAnalysis(const lang::Program &Prog,
                                       const ddg::DepGraph &G,
                                       const ValueProfile *Values,
                                       const OutputVerdicts &V, Options Opts)
    : Prog(Prog), G(G), Values(Values), V(V), Opts(Opts) {
  recompute({});
}

void ConfidenceAnalysis::recompute(const std::vector<TraceIdx> &BenignMarks,
                                   const std::set<TraceIdx> &Corrupted) {
  const ExecutionTrace &T = G.trace();
  ddg::DepGraph::ClosureOptions All;

  WrongSlice =
      G.backwardClosure({T.Outputs.at(V.WrongOutput).Step}, All, &Depth);

  std::vector<TraceIdx> CorrectSeeds;
  for (size_t O : V.CorrectOutputs)
    CorrectSeeds.push_back(T.Outputs.at(O).Step);
  ReachesCorrect = G.backwardClosure(CorrectSeeds, All);

  UserBenign.assign(T.size(), false);
  for (TraceIdx B : BenignMarks)
    UserBenign[B] = true;

  inferCorrectValues(BenignMarks, Corrupted);
  rank();
}

namespace {

/// The expression whose evaluation produced the definition of \p Loc at
/// \p Step: the statement's value root for its own definition, or the
/// corresponding argument expression for a callee-parameter store. Null
/// when the def cannot be attributed (e.g. short-circuiting skipped a
/// call, making the def layout ambiguous).
const lang::Expr *rootExprForDef(const lang::Program &Prog,
                                 const StepRecord &Step, uint64_t LocRaw) {
  size_t DefIdx = Step.Defs.size();
  for (size_t I = 0; I < Step.Defs.size(); ++I) {
    if (Step.Defs[I].Loc.Raw == LocRaw) {
      DefIdx = I;
      break;
    }
  }
  if (DefIdx == Step.Defs.size())
    return nullptr;

  const lang::Stmt *S = Prog.statement(Step.Stmt);
  std::vector<const lang::CallExpr *> Calls;
  for (const lang::Expr *Root : evaluatedRoots(S))
    collectCallsPostorder(Root, Calls);

  // Expected layout: per call, one def per argument (parameter stores),
  // then the statement's own definition if it has one.
  const lang::Expr *Own = valueRoot(S);
  bool HasOwnDef = Own != nullptr || S->kind() == lang::Stmt::Kind::Return;
  size_t Expected = HasOwnDef ? 1 : 0;
  for (const lang::CallExpr *Call : Calls)
    Expected += Call->args().size();
  if (Expected != Step.Defs.size()) {
    // Short-circuit skipped some call: fall back to trusting only the
    // final (own) definition.
    if (HasOwnDef && DefIdx == Step.Defs.size() - 1)
      return Own;
    return nullptr;
  }

  size_t Cursor = 0;
  for (const lang::CallExpr *Call : Calls) {
    if (DefIdx < Cursor + Call->args().size())
      return Call->args()[DefIdx - Cursor];
    Cursor += Call->args().size();
  }
  return Own; // The statement's own definition.
}

} // namespace

void ConfidenceAnalysis::markDefCorrect(TraceIdx Def, MemLoc Loc,
                                        PropagationWork &Work) {
  if (Def == InvalidId)
    return;
  if (!CorrectDefs.insert({Def, Loc.Raw}).second)
    return;
  // Propagate backward through the expression that produced this
  // definition (the value root, or the argument expression of a
  // parameter store -- the interprocedural case).
  const lang::Expr *Root =
      rootExprForDef(Prog, G.trace().step(Def), Loc.Raw);
  if (Root)
    Work.push_back({Def, Root});
}

void ConfidenceAnalysis::inferCorrectValues(
    const std::vector<TraceIdx> &BenignMarks,
    const std::set<TraceIdx> &Corrupted) {
  const ExecutionTrace &T = G.trace();
  // Instances pinned as corrupted: the user's verdict (or the wrong
  // output itself) overrides any inference from the values they read.
  auto IsPinned = [&](TraceIdx I) {
    return I == T.Outputs.at(V.WrongOutput).Step || Corrupted.count(I) != 0;
  };
  CorrectDefs.clear();
  PropagationWork Work;

  // Seeds from correct outputs: an output value known correct verifies
  // the defs feeding it through one-to-one argument expressions.
  for (size_t O : V.CorrectOutputs) {
    const OutputEvent &E = T.Outputs.at(O);
    const auto *P = cast<lang::PrintStmt>(Prog.statement(T.step(E.Step).Stmt));
    const lang::Expr *Root = P->args().at(E.ArgNo);
    for (const UseRecord &Use : T.step(E.Step).Uses)
      if (exprContains(Root, Use.LoadExpr) &&
          invertiblePath(Root, Use.LoadExpr))
        markDefCorrect(Use.Def, Use.Loc, Work);
  }

  // Seeds from user-declared benign instances: their definitions carry
  // correct values.
  for (TraceIdx B : BenignMarks)
    for (const DefRecord &D : T.step(B).Defs)
      markDefCorrect(B, D.Loc, Work);

  // Backward propagation through invertible value expressions, across
  // call boundaries via parameter-store roots.
  while (!Work.empty()) {
    auto [I, Root] = Work.back();
    Work.pop_back();
    for (const UseRecord &Use : T.step(I).Uses)
      if (exprContains(Root, Use.LoadExpr) &&
          invertiblePath(Root, Use.LoadExpr))
        markDefCorrect(Use.Def, Use.Loc, Work);
  }

  // Instance-level verdicts.
  Correct.assign(T.size(), false);
  for (TraceIdx I = 0; I < T.size(); ++I) {
    if (IsPinned(I))
      continue;
    if (UserBenign[I]) {
      Correct[I] = true;
      continue;
    }
    const StepRecord &Step = T.step(I);
    if (!Step.Defs.empty()) {
      Correct[I] =
          CorrectDefs.count({I, Step.Defs.back().Loc.Raw}) != 0;
      continue;
    }
    // Print instances: the emitted values ARE the used values, so a
    // print whose observed values are all verified is correct. The same
    // inference is deliberately NOT applied to predicates: a predicate
    // can be the fault itself (a mutated condition computes a wrong
    // branch from perfectly correct inputs -- e.g. the seeded
    // boundary-condition faults), so correct inputs must not sanitize
    // it. Predicates are only pruned via user marks or the Figure 5
    // implicit-dependent rule below.
    if (Prog.statement(Step.Stmt)->kind() == lang::Stmt::Kind::Print &&
        !Step.Uses.empty()) {
      bool AllUsesCorrect = true;
      for (const UseRecord &Use : Step.Uses) {
        if (Use.Def == InvalidId ||
            !CorrectDefs.count({Use.Def, Use.Loc.Raw})) {
          AllUsesCorrect = false;
          break;
        }
      }
      Correct[I] = AllUsesCorrect;
    }
  }

  // Figure 5: verified implicit dependents that are all correct sanitize
  // their predicate. One round suffices for the chains the procedure
  // builds, but iterate to a fixpoint for robustness.
  if (Opts.PropagateAcrossImplicit && !G.implicitEdges().empty()) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (TraceIdx I = 0; I < T.size(); ++I) {
        if (Correct[I] || IsPinned(I))
          continue;
        bool Any = false, All = true;
        for (const auto &E : G.implicitEdges()) {
          if (E.Pred != I)
            continue;
          Any = true;
          All = All && Correct[E.Use];
        }
        if (Any && All) {
          Correct[I] = true;
          Changed = true;
        }
      }
    }
  }
}

double ConfidenceAnalysis::confidence(TraceIdx I) const {
  if (I >= WrongSlice.size() || !WrongSlice[I])
    return 1.0;
  if (Correct[I])
    return 1.0;
  if (!ReachesCorrect[I])
    return 0.0;
  // Reaches a correct output through a many-to-one mapping: confidence
  // grows with the statement's observed value range (PLDI'06's
  // 1 - log|alt| / log|range| with |alt| unresolvable from profiles
  // alone; calibrated so richer ranges give more credit but never 1).
  double Range = 2.0;
  if (Values)
    Range = std::max<double>(2.0, static_cast<double>(
                                      Values->rangeSize(G.trace().step(I).Stmt)));
  return 0.5 + 0.5 * (1.0 - 1.0 / std::log2(Range + 2.0));
}

void ConfidenceAnalysis::rank() {
  const ExecutionTrace &T = G.trace();
  Ranked.clear();
  for (TraceIdx I = 0; I < T.size(); ++I)
    if (WrongSlice[I] && !Correct[I])
      Ranked.push_back(I);
  std::stable_sort(Ranked.begin(), Ranked.end(),
                   [this](TraceIdx A, TraceIdx B) {
                     double CA = confidence(A), CB = confidence(B);
                     if (CA != CB)
                       return CA < CB;
                     if (Depth[A] != Depth[B])
                       return Depth[A] < Depth[B];
                     return A > B;
                   });
}
