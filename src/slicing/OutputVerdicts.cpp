//===-- slicing/OutputVerdicts.cpp - Correct/wrong output labels --------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "slicing/OutputVerdicts.h"

#include <algorithm>

using namespace eoe;
using namespace eoe::slicing;

std::optional<OutputVerdicts>
eoe::slicing::diffOutputs(const interp::ExecutionTrace &Failing,
                          const std::vector<int64_t> &Expected) {
  size_t Common = std::min(Failing.Outputs.size(), Expected.size());
  for (size_t I = 0; I < Common; ++I) {
    if (Failing.Outputs[I].Value == Expected[I])
      continue;
    OutputVerdicts V;
    for (size_t J = 0; J < I; ++J)
      V.CorrectOutputs.push_back(J);
    V.WrongOutput = I;
    V.ExpectedValue = Expected[I];
    return V;
  }
  return std::nullopt;
}
