//===-- slicing/DynamicSlicer.cpp - Classic dynamic slicing -------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "slicing/DynamicSlicer.h"

using namespace eoe;
using namespace eoe::slicing;

bool SliceResult::containsStmt(const interp::ExecutionTrace &T,
                               StmtId S) const {
  for (TraceIdx I = 0; I < Member.size(); ++I)
    if (Member[I] && T.step(I).Stmt == S)
      return true;
  return false;
}

SliceResult eoe::slicing::computeDynamicSlice(const ddg::DepGraph &G,
                                              TraceIdx Seed) {
  SliceResult R;
  R.Member = G.backwardClosure({Seed}, ddg::DepGraph::ClosureOptions());
  R.Stats = G.stats(R.Member);
  return R;
}

SliceResult eoe::slicing::sliceOfWrongOutput(const ddg::DepGraph &G,
                                             const OutputVerdicts &V) {
  return computeDynamicSlice(G, G.trace().Outputs.at(V.WrongOutput).Step);
}
