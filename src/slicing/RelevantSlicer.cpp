//===-- slicing/RelevantSlicer.cpp - Relevant slicing -------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "slicing/RelevantSlicer.h"

#include <deque>

using namespace eoe;
using namespace eoe::slicing;
using namespace eoe::interp;

RelevantSliceResult
eoe::slicing::computeRelevantSlice(const ddg::DepGraph &G,
                                   const PotentialDepAnalyzer &PD,
                                   TraceIdx Seed) {
  const ExecutionTrace &T = G.trace();
  RelevantSliceResult R;
  R.Slice.Member.assign(T.size(), false);

  std::deque<TraceIdx> Work;
  auto Visit = [&](TraceIdx I) {
    if (I == InvalidId || R.Slice.Member[I])
      return;
    R.Slice.Member[I] = true;
    Work.push_back(I);
  };
  Visit(Seed);

  while (!Work.empty()) {
    TraceIdx I = Work.front();
    Work.pop_front();
    const StepRecord &Step = T.step(I);
    Visit(Step.CdParent);
    for (const UseRecord &Use : Step.Uses) {
      Visit(Use.Def);
      // Potential dependences: every qualifying predicate instance, not
      // just one per static predicate -- this is what makes relevant
      // slices explode dynamically (paper section 2's 100-instances
      // discussion).
      for (TraceIdx P : PD.compute(I, Use, /*OnePerPredicate=*/false)) {
        ++R.PotentialEdges;
        Visit(P);
      }
    }
  }
  R.Slice.Stats = G.stats(R.Slice.Member);
  return R;
}

RelevantSliceResult eoe::slicing::relevantSliceOfWrongOutput(
    const ddg::DepGraph &G, const PotentialDepAnalyzer &PD,
    const OutputVerdicts &V) {
  return computeRelevantSlice(G, PD, G.trace().Outputs.at(V.WrongOutput).Step);
}
