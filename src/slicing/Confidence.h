//===-- slicing/Confidence.h - Confidence analysis ---------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Confidence analysis ("Pruning dynamic slices with confidence",
/// PLDI'06), the pruning engine the paper's demand-driven procedure calls
/// PruneSlicing(). Each instance in the dynamic slice of the wrong output
/// receives a confidence in [0,1]:
///
///  - 1 when the instance's produced value is *inferred correct*: it
///    reaches a known-correct output (or a user-declared benign value)
///    through a chain of one-to-one mappings (see Invertibility.h), like
///    Figure 4's "b = a % 2 printed correctly => b's def is correct";
///  - 0 when the instance reaches only the wrong output;
///  - an intermediate value, increasing with the statement's observed
///    value range, when it reaches a correct output through a
///    many-to-one mapping (the "a = 1" of Figure 4: alt cannot be ruled
///    out, confidence estimated from the value profile).
///
/// Instances with confidence 1 are pruned; the remainder is ranked most
/// suspicious first (low confidence, then short dependence distance to
/// the failure).
///
/// Verified implicit dependence edges participate (paper Figure 5): when
/// every implicit dependent of a predicate instance is inferred correct,
/// the predicate is considered correct too -- this is exactly why the
/// demand-driven algorithm verifies p -> t for all t in PD^-1(p), and it
/// is safe only because the edges are verified, not merely potential
/// (section 3.2's "sanitizes the root cause" discussion).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SLICING_CONFIDENCE_H
#define EOE_SLICING_CONFIDENCE_H

#include "ddg/DepGraph.h"
#include "interp/Profiler.h"
#include "lang/AST.h"
#include "slicing/OutputVerdicts.h"

#include <set>
#include <vector>

namespace eoe {
namespace slicing {

/// Confidence values and the pruned, ranked fault candidate set.
class ConfidenceAnalysis {
public:
  struct Options {
    /// Figure 5 mechanism: let inferred-correct implicit dependents
    /// sanitize their predicate. Disable to ablate.
    bool PropagateAcrossImplicit = true;
  };

  /// \p Values may be null (ranges then default to "unknown, small").
  ConfidenceAnalysis(const lang::Program &Prog, const ddg::DepGraph &G,
                     const interp::ValueProfile *Values,
                     const OutputVerdicts &V, Options Opts);

  /// Same, with default options.
  ConfidenceAnalysis(const lang::Program &Prog, const ddg::DepGraph &G,
                     const interp::ValueProfile *Values,
                     const OutputVerdicts &V)
      : ConfidenceAnalysis(Prog, G, Values, V, Options()) {}

  /// Recomputes everything against the graph's current edges and the
  /// user's benign marks (instances whose state the user vouched for).
  /// \p Corrupted pins instances the user declared corrupted: they are
  /// never inferred correct, even when the values they *read* are. This
  /// matters precisely for execution omission errors, where a stale
  /// definition carries a locally-correct value to a point that should
  /// have received a different definition altogether. The wrong output
  /// instance is always pinned.
  void recompute(const std::vector<TraceIdx> &BenignMarks,
                 const std::set<TraceIdx> &Corrupted);

  /// Convenience overload with no pinned instances beyond the wrong
  /// output.
  void recompute(const std::vector<TraceIdx> &BenignMarks) {
    recompute(BenignMarks, {});
  }

  /// The trace the analysis ranges over.
  const interp::ExecutionTrace &trace() const { return G.trace(); }

  /// Confidence of \p I in [0,1]; 1 outside the wrong output's slice.
  double confidence(TraceIdx I) const;

  /// True if \p I's produced value was inferred correct (confidence 1).
  bool inferredCorrect(TraceIdx I) const { return Correct[I]; }

  /// Membership bitset of the dynamic slice of the wrong output under
  /// the graph's current edges (including implicit ones).
  const std::vector<bool> &wrongOutputSlice() const { return WrongSlice; }

  /// The pruned slice: instances of the wrong output's slice that are
  /// still fault candidates, most suspicious first.
  const std::vector<TraceIdx> &prunedSlice() const { return Ranked; }

private:
  /// Pending backward-propagation items: an instance whose definition
  /// was verified, paired with the expression that produced it.
  using PropagationWork =
      std::vector<std::pair<TraceIdx, const lang::Expr *>>;

  void inferCorrectValues(const std::vector<TraceIdx> &BenignMarks,
                          const std::set<TraceIdx> &Corrupted);
  void markDefCorrect(TraceIdx Def, interp::MemLoc Loc,
                      PropagationWork &Work);
  void rank();

  const lang::Program &Prog;
  const ddg::DepGraph &G;
  const interp::ValueProfile *Values;
  const OutputVerdicts &V;
  Options Opts;

  std::vector<bool> WrongSlice;
  std::vector<uint32_t> Depth;
  std::vector<bool> ReachesCorrect;
  std::vector<bool> Correct;   // inferred correct per instance
  std::vector<bool> UserBenign;
  std::set<std::pair<TraceIdx, uint64_t>> CorrectDefs;
  std::vector<TraceIdx> Ranked;
};

} // namespace slicing
} // namespace eoe

#endif // EOE_SLICING_CONFIDENCE_H
