//===-- slicing/Pruning.h - Interactive slice pruning ------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interactive PruneSlicing() procedure of the paper's Algorithm 2:
/// the system presents fault-candidate instances in rank order and the
/// programmer (an Oracle here) declares each benign or corrupted; benign
/// answers feed back into the confidence analysis until every remaining
/// instance is known corrupted -- the minimal pruned slice.
///
/// The experiment driver implements the Oracle with the paper's own
/// evaluation protocol: instances outside the manually-identified
/// failure-inducing chain (OS) are benign.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SLICING_PRUNING_H
#define EOE_SLICING_PRUNING_H

#include "slicing/Confidence.h"
#include "support/Stats.h"

#include <set>
#include <vector>

namespace eoe {
namespace slicing {

/// The programmer in the loop.
class Oracle {
public:
  virtual ~Oracle() = default;

  /// True if the program state produced by instance \p I is correct.
  virtual bool isBenign(TraceIdx I) = 0;

  /// True if statement \p S is the fault's root cause. Drives Algorithm
  /// 2's "while the root cause is not found".
  virtual bool isRootCause(StmtId S) = 0;
};

/// State carried across pruning rounds (oracle answers are remembered so
/// re-pruning after slice expansion does not re-ask).
struct PruneState {
  std::vector<TraceIdx> BenignMarks;
  std::set<TraceIdx> KnownCorrupted;
  /// Statements the user has vouched for (a user interaction reasons at
  /// statement granularity even though marks apply per instance).
  std::set<StmtId> BenignStmts;
  /// Number of distinct statements declared benign (Table 3's
  /// "# of user prunings"; see EXPERIMENTS.md on granularity).
  size_t UserPrunings = 0;
};

/// Runs one interactive pruning session: recomputes confidences, asks the
/// oracle about unresolved candidates in rank order, and stops when every
/// remaining candidate is known corrupted. Returns the minimal pruned
/// slice, most suspicious first. When \p Stats is given, records the
/// session's cost (slicing.prune_rounds, slicing.oracle_queries,
/// slicing.benign_marks, slicing.corrupted_marks) and the returned slice
/// size (slicing.pruned_slice_size histogram).
std::vector<TraceIdx> pruneSlicing(ConfidenceAnalysis &CA, Oracle &O,
                                   PruneState &State,
                                   support::StatsRegistry *Stats = nullptr);

} // namespace slicing
} // namespace eoe

#endif // EOE_SLICING_PRUNING_H
