//===-- slicing/Invertibility.h - One-to-one value flow ----------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static invertibility analysis backing the confidence computation
/// (PLDI'06, "Pruning dynamic slices with confidence"): a statement's
/// produced value is a one-to-one function of a given loaded operand when
/// the expression path from the load to the statement's value root
/// consists only of invertible operations. If a downstream value is known
/// correct and the mapping is one-to-one, the operand's defining instance
/// must have produced a correct value as well -- the inference that lets
/// pruning assign confidence 1.
///
/// Invertible (other operands fixed): copies, unary minus, + and -, and
/// multiplication by a nonzero constant. Everything else (div, mod,
/// comparisons, logical ops, array indexing into a value, calls) is
/// treated as many-to-one, like the paper's Figure 4 "b = a % 2".
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SLICING_INVERTIBILITY_H
#define EOE_SLICING_INVERTIBILITY_H

#include "lang/AST.h"

namespace eoe {
namespace slicing {

/// True if the subtree of \p Root contains the expression \p Target.
bool exprContains(const lang::Expr *Root, ExprId Target);

/// True if the value of \p Root is a one-to-one function of the value
/// loaded at \p Load (which must be a VarRef/ArrayRef/Call node inside
/// \p Root), holding all other inputs fixed.
bool invertiblePath(const lang::Expr *Root, ExprId Load);

/// The expression whose value a statement "produces": the RHS of an
/// assignment or scalar declaration, the stored value of an array store,
/// or a return's operand. Null for statements that produce no value.
const lang::Expr *valueRoot(const lang::Stmt *S);

/// The expressions a statement evaluates, in evaluation order (condition,
/// index/value operands, print arguments, ...).
std::vector<const lang::Expr *> evaluatedRoots(const lang::Stmt *S);

/// Collects the call expressions inside \p Root in invocation-completion
/// order (inner calls first), matching the order in which the tracing
/// interpreter pushes callee-parameter definitions.
void collectCallsPostorder(const lang::Expr *Root,
                           std::vector<const lang::CallExpr *> &Out);

} // namespace slicing
} // namespace eoe

#endif // EOE_SLICING_INVERTIBILITY_H
