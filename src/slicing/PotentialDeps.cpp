//===-- slicing/PotentialDeps.cpp - Potential dependences ---------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "slicing/PotentialDeps.h"

#include <algorithm>

using namespace eoe;
using namespace eoe::slicing;
using namespace eoe::interp;

PotentialDepAnalyzer::PotentialDepAnalyzer(
    const analysis::StaticAnalysis &SA, const ExecutionTrace &Trace, Backend B,
    const UnionDependenceGraph *Union)
    : SA(SA), Trace(Trace), B(B), Union(Union) {
  for (const lang::Stmt *S : SA.program().statements())
    if (S->isPredicate())
      PredStmts.push_back(S->id());
  for (TraceIdx I = 0; I < Trace.size(); ++I)
    if (Trace.step(I).isPredicateInstance())
      PredInstances[Trace.step(I).Stmt].push_back(I);
}

const std::vector<PotentialDepAnalyzer::CandidatePred> &
PotentialDepAnalyzer::candidates(VarId Var, ExprId LoadExpr) const {
  ExprId Key = B == Backend::UnionGraph ? LoadExpr : InvalidId;
  auto CacheKey = std::make_pair(Var, Key);
  auto It = CandidateCache.find(CacheKey);
  if (It != CandidateCache.end())
    return It->second;

  std::vector<CandidatePred> Out;
  const std::vector<StmtId> &Defs = SA.defsOfVar(Var);
  for (StmtId Pred : PredStmts) {
    CandidatePred C{Pred, false, false};
    for (StmtId D : Defs) {
      // Under the union backend, only defs that were ever observed to
      // flow into this very load qualify (Definition 1(iv), sharpened by
      // the profile). The static backend keeps every may-alias def.
      if (B == Backend::UnionGraph && Union &&
          !Union->contains(D, LoadExpr))
        continue;
      if (!C.DefsOnTrue && SA.cdRegionContains(Pred, true, D))
        C.DefsOnTrue = true;
      if (!C.DefsOnFalse && SA.cdRegionContains(Pred, false, D))
        C.DefsOnFalse = true;
      if (C.DefsOnTrue && C.DefsOnFalse)
        break;
    }
    if (C.DefsOnTrue || C.DefsOnFalse)
      Out.push_back(C);
  }
  return CandidateCache.emplace(CacheKey, std::move(Out)).first->second;
}

void PotentialDepAnalyzer::collectAncestors(TraceIdx UseInst,
                                            std::vector<TraceIdx> &Out) const {
  for (TraceIdx A = Trace.step(UseInst).CdParent; A != InvalidId;
       A = Trace.step(A).CdParent)
    Out.push_back(A);
}

std::vector<TraceIdx>
PotentialDepAnalyzer::compute(TraceIdx UseInst, const UseRecord &Use,
                              bool OnePerPredicate) const {
  std::vector<TraceIdx> Result;
  if (!isValidId(Use.Var))
    return Result; // Return-value reads have no location class.

  // Condition (iii): only predicates after the reaching definition. When
  // the location was never written the "definition" is program start.
  TraceIdx Lo = isValidId(Use.Def) ? Use.Def : 0;

  std::vector<TraceIdx> Ancestors;
  collectAncestors(UseInst, Ancestors);

  for (const CandidatePred &C : candidates(Use.Var, Use.LoadExpr)) {
    auto It = PredInstances.find(C.Pred);
    if (It == PredInstances.end())
      continue;
    const std::vector<TraceIdx> &Insts = It->second;
    // Instances strictly between the reaching def and the use.
    auto Begin = std::upper_bound(Insts.begin(), Insts.end(), Lo);
    auto End = std::lower_bound(Begin, Insts.end(), UseInst);
    // Walk closest-first so OnePerPredicate keeps the nearest instance.
    for (auto Rev = End; Rev != Begin;) {
      --Rev;
      TraceIdx P = *Rev;
      // Condition (iv): a def must sit on the branch p did NOT take.
      bool Taken = Trace.step(P).branch();
      if (!(Taken ? C.DefsOnFalse : C.DefsOnTrue))
        continue;
      // Condition (ii): u must not be control dependent on p.
      if (std::find(Ancestors.begin(), Ancestors.end(), P) != Ancestors.end())
        continue;
      Result.push_back(P);
      if (OnePerPredicate)
        break;
    }
  }
  std::sort(Result.begin(), Result.end(), std::greater<TraceIdx>());
  return Result;
}

bool PotentialDepAnalyzer::isPotentialDep(TraceIdx PredInst, TraceIdx UseInst,
                                          const UseRecord &Use) const {
  if (!isValidId(Use.Var))
    return false;
  const StepRecord &P = Trace.step(PredInst);
  if (!P.isPredicateInstance() || PredInst >= UseInst)
    return false;
  TraceIdx Lo = isValidId(Use.Def) ? Use.Def : 0;
  if (PredInst <= Lo && isValidId(Use.Def))
    return false;
  for (TraceIdx A = Trace.step(UseInst).CdParent; A != InvalidId;
       A = Trace.step(A).CdParent)
    if (A == PredInst)
      return false;
  for (const CandidatePred &C : candidates(Use.Var, Use.LoadExpr)) {
    if (C.Pred != P.Stmt)
      continue;
    return P.branch() ? C.DefsOnFalse : C.DefsOnTrue;
  }
  return false;
}
