//===-- slicing/Pruning.cpp - Interactive slice pruning -----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "slicing/Pruning.h"

using namespace eoe;
using namespace eoe::slicing;

std::vector<TraceIdx> eoe::slicing::pruneSlicing(ConfidenceAnalysis &CA,
                                                 Oracle &O, PruneState &State,
                                                 support::StatsRegistry *Stats) {
  using support::StatsRegistry;
  const interp::ExecutionTrace &T = CA.trace();
  auto Finish = [&](const std::vector<TraceIdx> &Ranked) {
    StatsRegistry::sample(Stats, "slicing.pruned_slice_size", Ranked.size());
    return Ranked;
  };
  while (true) {
    StatsRegistry::add(Stats, "slicing.prune_rounds");
    CA.recompute(State.BenignMarks, State.KnownCorrupted);
    const std::vector<TraceIdx> &Ranked = CA.prunedSlice();

    // The session ends as soon as the programmer recognizes the root
    // cause among the presented candidates.
    for (TraceIdx I : Ranked)
      if (O.isRootCause(T.step(I).Stmt))
        return Finish(Ranked);

    TraceIdx Next = InvalidId;
    for (TraceIdx I : Ranked) {
      if (State.KnownCorrupted.count(I))
        continue;
      Next = I;
      break;
    }
    if (Next == InvalidId) // Everything left is known corrupted: minimal
      return Finish(Ranked); // slice.

    StatsRegistry::add(Stats, "slicing.oracle_queries");
    if (O.isBenign(Next)) {
      StatsRegistry::add(Stats, "slicing.benign_marks");
      State.BenignMarks.push_back(Next);
      // One user interaction covers a statement; later instances of the
      // same statement are vouched for by the same act of understanding.
      if (State.BenignStmts.insert(T.step(Next).Stmt).second)
        ++State.UserPrunings;
      continue; // Benign feedback enables more automatic pruning.
    }
    StatsRegistry::add(Stats, "slicing.corrupted_marks");
    State.KnownCorrupted.insert(Next);
  }
}
