//===-- slicing/PotentialDeps.h - Potential dependences ----------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Potential dependences (the paper's Definition 1, from relevant slicing
/// [Gyimothy et al. 99]): a use u potentially depends on predicate
/// instance p iff
///   (i)   p executes before u,
///   (ii)  u is not (dynamically, transitively) control dependent on p,
///   (iii) the definition reaching u occurs before p, and
///   (iv)  a different definition could potentially reach u if p had
///         taken the other branch.
///
/// Condition (iv) is a static question and is where conservatism enters.
/// Two backends are provided, matching the paper's prototype which built
/// a *union dependence graph* over many test runs:
///  - Static: some statement defining a may-alias of u's location lies in
///    the code guarded by the not-taken outcome and may reach u's
///    statement (pure static reaching-definitions reasoning);
///  - UnionGraph: additionally requires that some profiled run actually
///    carried a value from that defining statement to u's load.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SLICING_POTENTIALDEPS_H
#define EOE_SLICING_POTENTIALDEPS_H

#include "analysis/StaticAnalysis.h"
#include "interp/Profiler.h"
#include "interp/Trace.h"

#include <map>
#include <vector>

namespace eoe {
namespace slicing {

/// Computes PD(u) sets over one execution trace.
class PotentialDepAnalyzer {
public:
  enum class Backend { Static, UnionGraph };

  /// \p Union may be null for the Static backend.
  PotentialDepAnalyzer(const analysis::StaticAnalysis &SA,
                       const interp::ExecutionTrace &Trace,
                       Backend B = Backend::Static,
                       const interp::UnionDependenceGraph *Union = nullptr);

  /// Returns the predicate instances that use \p Use of instance
  /// \p UseInst potentially depends on, ordered closest-first (descending
  /// trace index). With \p OnePerPredicate only the closest instance of
  /// each static predicate is returned -- the demand-driven verifier's
  /// candidate set; relevant slicing passes false to get the full set.
  std::vector<TraceIdx> compute(TraceIdx UseInst,
                                const interp::UseRecord &Use,
                                bool OnePerPredicate) const;

  /// True if predicate instance \p PredInst is in PD of the given use.
  bool isPotentialDep(TraceIdx PredInst, TraceIdx UseInst,
                      const interp::UseRecord &Use) const;

  Backend backend() const { return B; }

private:
  struct CandidatePred {
    StmtId Pred;
    /// Whether the true/false side's region contains a qualifying def.
    bool DefsOnTrue = false;
    bool DefsOnFalse = false;
  };

  /// Candidate static predicates for a location class (and, under the
  /// union backend, a specific load); memoized.
  const std::vector<CandidatePred> &candidates(VarId Var,
                                               ExprId LoadExpr) const;

  /// Collects u's transitive dynamic control-dependence ancestors.
  void collectAncestors(TraceIdx UseInst, std::vector<TraceIdx> &Out) const;

  const analysis::StaticAnalysis &SA;
  const interp::ExecutionTrace &Trace;
  Backend B;
  const interp::UnionDependenceGraph *Union;

  /// All predicate statements of the program.
  std::vector<StmtId> PredStmts;
  /// Instances per predicate statement, ascending.
  std::map<StmtId, std::vector<TraceIdx>> PredInstances;
  /// Memoized candidate sets; key ExprId is InvalidId for Static backend.
  mutable std::map<std::pair<VarId, ExprId>, std::vector<CandidatePred>>
      CandidateCache;
};

} // namespace slicing
} // namespace eoe

#endif // EOE_SLICING_POTENTIALDEPS_H
