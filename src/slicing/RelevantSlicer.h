//===-- slicing/RelevantSlicer.h - Relevant slicing --------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relevant slicing (Gyimothy et al., the paper's RS baseline): the
/// backward closure over dynamic data/control dependences *plus* every
/// potential dependence edge. Always captures execution omission errors,
/// at the cost of slices that the paper shows are orders of magnitude
/// larger dynamically than classic dynamic slices.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SLICING_RELEVANTSLICER_H
#define EOE_SLICING_RELEVANTSLICER_H

#include "ddg/DepGraph.h"
#include "slicing/DynamicSlicer.h"
#include "slicing/PotentialDeps.h"

namespace eoe {
namespace slicing {

/// A relevant slice, with the number of potential-dependence edges the
/// closure traversed (a measure of the conservatism relevant slicing
/// pays; reported by the Table 2 bench).
struct RelevantSliceResult {
  SliceResult Slice;
  size_t PotentialEdges = 0;
};

/// Computes the relevant slice of instance \p Seed.
RelevantSliceResult computeRelevantSlice(const ddg::DepGraph &G,
                                         const PotentialDepAnalyzer &PD,
                                         TraceIdx Seed);

/// Computes the relevant slice of the wrong output of \p V.
RelevantSliceResult relevantSliceOfWrongOutput(const ddg::DepGraph &G,
                                               const PotentialDepAnalyzer &PD,
                                               const OutputVerdicts &V);

} // namespace slicing
} // namespace eoe

#endif // EOE_SLICING_RELEVANTSLICER_H
