//===-- slicing/DynamicSlicer.h - Classic dynamic slicing --------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic Korel/Laski dynamic slicing (the paper's DS baseline): the
/// backward closure over dynamic data and control dependences from the
/// wrong output. Misses execution omission errors by construction.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SLICING_DYNAMICSLICER_H
#define EOE_SLICING_DYNAMICSLICER_H

#include "ddg/DepGraph.h"
#include "slicing/OutputVerdicts.h"

namespace eoe {
namespace slicing {

/// A computed slice: membership bitset over trace instances plus sizes.
struct SliceResult {
  std::vector<bool> Member;
  ddg::SliceStats Stats;

  bool contains(TraceIdx I) const { return I < Member.size() && Member[I]; }

  /// True if any instance of \p S is in the slice.
  bool containsStmt(const interp::ExecutionTrace &T, StmtId S) const;
};

/// Computes the dynamic slice of instance \p Seed over \p G (data +
/// control + any already-added implicit edges).
SliceResult computeDynamicSlice(const ddg::DepGraph &G, TraceIdx Seed);

/// Computes the dynamic slice of the wrong output of \p V.
SliceResult sliceOfWrongOutput(const ddg::DepGraph &G,
                               const OutputVerdicts &V);

} // namespace slicing
} // namespace eoe

#endif // EOE_SLICING_DYNAMICSLICER_H
