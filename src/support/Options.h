//===-- support/Options.h - Unified configuration surface --------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one configuration surface shared by `LocateConfig`,
/// `DebugSession::Config`, and `FaultRunner::Options`. Historically each
/// of those structs re-declared the same Threads / Checkpoint* /
/// SwitchedCache / Stats / Tracer members and every CLI front end
/// re-parsed the matching flags by hand; `eoe::Options` is embedded by
/// value in all three so a knob added here is immediately available
/// everywhere, and `support::parseCommonOption` is the single flag
/// parser (used by `eoec` and the benches) so the CLI and the structs
/// cannot drift.
///
/// The split mirrors what the knobs govern:
///  - `ReuseOptions`: everything that only trades re-execution work for
///    memory/disk -- checkpoint stride/budget, the switched-run cache,
///    the persistent cache directory, and the perturbation-chain
///    depth/budget. Every combination yields bit-identical reports.
///  - `ExecOptions`: execution-shape knobs -- step budget, worker
///    threads, and the observability sinks.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SUPPORT_OPTIONS_H
#define EOE_SUPPORT_OPTIONS_H

#include "interp/Checkpoint.h"
#include "interp/SwitchedRunStore.h"

#include <cstdint>
#include <string>

namespace eoe {

namespace support {
class StatsRegistry;
class EventTracer;
} // namespace support

/// Default maximum decisions per perturbation chain. 1 means chaining is
/// off: the locator only ever issues single-switch runs (the pre-chain
/// behavior). Depth >= 2 lets `core::ChainSearch` extend inconclusive
/// single-switch verdicts with follow-up switches (paper section 5's
/// perturbation chains).
inline constexpr unsigned DefaultChainDepth = 1;

/// Default total chained re-executions allowed per locate call. The
/// budget is consumed deterministically (serial chain enumeration), so
/// any value is thread-count invariant.
inline constexpr unsigned DefaultChainBudget = 32;

/// Reuse/caching knobs. Every field only trades re-execution work for
/// memory or disk: all combinations produce bit-identical locate
/// reports at any thread count.
struct ReuseOptions {
  /// Checkpoint stride for switched runs: snapshot every Nth candidate
  /// predicate instance and resume instead of replaying the prefix.
  /// interp::CheckpointStrideAuto (default) tunes the stride from trace
  /// length, candidate density, and the memory budget;
  /// interp::CheckpointsOff disables checkpointing (full replay).
  unsigned Checkpoints = interp::CheckpointStrideAuto;
  /// Checkpoint LRU memory budget in bytes.
  size_t CheckpointMemBytes = interp::DefaultCheckpointMemBytes;
  /// Delta-compress consecutive snapshots, charging the budget with
  /// encoded bytes.
  bool CheckpointDelta = true;
  /// Promote input-independent snapshots into a cross-session store.
  bool CheckpointShare = true;
  /// Persistent checkpoint cache directory: load input-independent
  /// snapshots on start, write them back atomically on exit. Empty =
  /// no persistence. Requires CheckpointShare.
  std::string CheckpointDir;
  /// After saving, cap CheckpointDir at this many bytes (stale-tmp
  /// age-out, then oldest-mtime eviction). 0 = unlimited.
  size_t CheckpointDirCapBytes = 0;
  /// Switched-run snapshot cache budget in bytes: capture
  /// divergence-keyed snapshots past the switch point, resume deeper
  /// switched runs from them, and splice the original trace's suffix
  /// once a switched run reconverges. 0 = always interpret the full
  /// switched run.
  size_t SwitchedCacheBytes = interp::DefaultSwitchedCacheBytes;
  /// Maximum decisions per perturbation chain (1 = chaining off).
  unsigned ChainDepth = DefaultChainDepth;
  /// Total chained re-executions allowed per locate call.
  unsigned ChainBudget = DefaultChainBudget;
};

/// Execution-shape knobs: budgets, parallelism, observability.
struct ExecOptions {
  /// Statement-instance budget for the failing run.
  uint64_t MaxSteps = 5'000'000;
  /// Verification worker threads. 0 = all hardware threads, 1 = the
  /// serial reference (bit-identical to any other value).
  unsigned Threads = 0;
  /// Optional metrics sink; null = observability disabled.
  support::StatsRegistry *Stats = nullptr;
  /// Optional Chrome trace_event sink; null = disabled.
  support::EventTracer *Tracer = nullptr;
};

/// The unified knob bundle embedded in LocateConfig,
/// DebugSession::Config, and FaultRunner::Options.
struct Options {
  ReuseOptions Reuse;
  ExecOptions Exec;
};

namespace support {

/// Result of offering one argv slot to the common-option parser.
enum class ParseResult {
  Ok,      ///< Consumed (possibly also the following value token).
  NoMatch, ///< Not a common option; caller handles it.
  Error,   ///< Recognized but malformed (message already printed).
};

/// Observability flags that need main()-owned sinks rather than Options
/// fields: parseCommonOption records the request here and the front end
/// wires Stats/Tracer pointers itself.
struct CommonCliState {
  bool Stats = false;
  bool StatsJson = false;
  std::string TraceOut;
};

/// Offers Argv[I] to the shared flag parser. Handles every
/// ReuseOptions/ExecOptions field (--max-steps, --threads,
/// --checkpoints, --checkpoint-mem, --checkpoint-delta,
/// --checkpoint-share, --switched-cache, --checkpoint-dir,
/// --checkpoint-dir-cap, --chain-depth, --chain-budget) in both
/// "--flag=value" and "--flag value" forms, plus --stats[=json] /
/// --trace-out when \p Cli is given. Advances \p I past a consumed
/// value token.
ParseResult parseCommonOption(int Argc, char **Argv, int &I, Options &O,
                              CommonCliState *Cli = nullptr);

/// The help text for everything parseCommonOption accepts, grouped into
/// "common options:", "checkpoint options ...", and "chain options ..."
/// sections. Front ends print this after their command-specific flags
/// so the CLI surface and the Options structs share one source of
/// truth.
const char *commonOptionsHelp();

} // namespace support
} // namespace eoe

#endif // EOE_SUPPORT_OPTIONS_H
