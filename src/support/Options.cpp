//===-- support/Options.cpp - Shared flag parsing --------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace eoe {
namespace support {

namespace {

/// Matches Argv[I] against \p Name in both "--flag=value" and
/// "--flag value" forms. On a match returns true with \p Val filled
/// (advancing \p I for the two-token form); a matched flag with no
/// value prints an error and sets \p Err.
bool takeValue(int Argc, char **Argv, int &I, const char *Name,
               std::string &Val, bool &Err) {
  const char *Arg = Argv[I];
  size_t NameLen = std::strlen(Name);
  if (std::strncmp(Arg, Name, NameLen) == 0 && Arg[NameLen] == '=') {
    Val = Arg + NameLen + 1;
    return true;
  }
  if (std::strcmp(Arg, Name) == 0) {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "error: %s needs a value\n", Name);
      Err = true;
      return true;
    }
    Val = Argv[++I];
    return true;
  }
  return false;
}

} // namespace

ParseResult parseCommonOption(int Argc, char **Argv, int &I, Options &O,
                              CommonCliState *Cli) {
  bool Err = false;
  std::string V;
  auto Take = [&](const char *Name) {
    return takeValue(Argc, Argv, I, Name, V, Err);
  };
  auto Mebibytes = [&]() {
    return static_cast<size_t>(std::strtoull(V.c_str(), nullptr, 10)) << 20;
  };

  if (Take("--max-steps")) {
    if (Err)
      return ParseResult::Error;
    O.Exec.MaxSteps = std::strtoull(V.c_str(), nullptr, 10);
    return ParseResult::Ok;
  }
  if (Take("--threads")) {
    if (Err)
      return ParseResult::Error;
    O.Exec.Threads = static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
    return ParseResult::Ok;
  }
  if (Take("--checkpoints")) {
    if (Err)
      return ParseResult::Error;
    O.Reuse.Checkpoints =
        V == "off" ? interp::CheckpointsOff
        : V == "auto"
            ? interp::CheckpointStrideAuto
            : static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
    return ParseResult::Ok;
  }
  if (Take("--checkpoint-mem")) {
    if (Err)
      return ParseResult::Error;
    O.Reuse.CheckpointMemBytes = Mebibytes();
    return ParseResult::Ok;
  }
  if (Take("--checkpoint-delta")) {
    if (Err)
      return ParseResult::Error;
    O.Reuse.CheckpointDelta = V != "off";
    return ParseResult::Ok;
  }
  if (Take("--checkpoint-share")) {
    if (Err)
      return ParseResult::Error;
    O.Reuse.CheckpointShare = V != "off";
    return ParseResult::Ok;
  }
  if (Take("--switched-cache")) {
    if (Err)
      return ParseResult::Error;
    O.Reuse.SwitchedCacheBytes = V == "off" ? 0 : Mebibytes();
    return ParseResult::Ok;
  }
  // --checkpoint-dir-cap before --checkpoint-dir: distinct names, but
  // keeping the longer one first makes the intent obvious.
  if (Take("--checkpoint-dir-cap")) {
    if (Err)
      return ParseResult::Error;
    O.Reuse.CheckpointDirCapBytes = Mebibytes();
    return ParseResult::Ok;
  }
  if (Take("--checkpoint-dir")) {
    if (Err)
      return ParseResult::Error;
    O.Reuse.CheckpointDir = V;
    return ParseResult::Ok;
  }
  if (Take("--chain-depth")) {
    if (Err)
      return ParseResult::Error;
    O.Reuse.ChainDepth =
        static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
    return ParseResult::Ok;
  }
  if (Take("--chain-budget")) {
    if (Err)
      return ParseResult::Error;
    O.Reuse.ChainBudget =
        static_cast<unsigned>(std::strtoul(V.c_str(), nullptr, 10));
    return ParseResult::Ok;
  }
  if (Cli) {
    if (std::strcmp(Argv[I], "--stats") == 0) {
      Cli->Stats = true;
      return ParseResult::Ok;
    }
    if (std::strcmp(Argv[I], "--stats=json") == 0) {
      Cli->Stats = true;
      Cli->StatsJson = true;
      return ParseResult::Ok;
    }
    if (Take("--trace-out")) {
      if (Err)
        return ParseResult::Error;
      Cli->TraceOut = V;
      return ParseResult::Ok;
    }
  }
  return ParseResult::NoMatch;
}

const char *commonOptionsHelp() {
  return
      "common options:\n"
      "  --max-steps N         step budget (default 5000000)\n"
      "  --threads N           verification worker threads (locate);\n"
      "                        0 = all hardware threads, 1 = serial\n"
      "  --stats[=json]        per-phase pipeline statistics: a table on\n"
      "                        stderr, or =json for schema eoe-stats-v1\n"
      "                        JSON as the last stdout line\n"
      "  --trace-out=FILE      write a Chrome trace_event JSON timeline\n"
      "                        (open in chrome://tracing or Perfetto)\n"
      "checkpoint options (locate; every knob yields bit-identical\n"
      "reports -- they only trade re-execution work for memory/disk):\n"
      "  --checkpoints=N|auto|off\n"
      "                        checkpoint stride for switched runs:\n"
      "                        snapshot every Nth candidate predicate\n"
      "                        instance and resume instead of replaying\n"
      "                        the prefix; auto (default) tunes the\n"
      "                        stride from trace length, candidate\n"
      "                        density, and the memory budget; off = full\n"
      "                        replay\n"
      "  --checkpoint-mem MB   checkpoint LRU memory budget in MiB\n"
      "                        (default 256)\n"
      "  --checkpoint-delta=on|off\n"
      "                        delta-compress consecutive snapshots,\n"
      "                        charging the budget with encoded bytes\n"
      "                        (default on)\n"
      "  --checkpoint-share=on|off\n"
      "                        promote input-independent snapshots into a\n"
      "                        cross-session store (default on)\n"
      "  --switched-cache=MB|off\n"
      "                        switched-run snapshot cache: capture\n"
      "                        divergence-keyed snapshots past the switch\n"
      "                        point, resume deeper switched runs from\n"
      "                        them, and splice the original trace's\n"
      "                        suffix once a switched run reconverges\n"
      "                        (default 64 MiB; off = always interpret\n"
      "                        the full switched run)\n"
      "  --checkpoint-dir=DIR  persistent checkpoint cache: load\n"
      "                        input-independent snapshots for this\n"
      "                        program from DIR on start and write them\n"
      "                        back atomically on exit, warm-starting\n"
      "                        later invocations (requires\n"
      "                        --checkpoint-share=on)\n"
      "  --checkpoint-dir-cap=MB\n"
      "                        after saving, cap DIR at MB MiB: delete\n"
      "                        stale writer temp files, then evict cache\n"
      "                        files oldest-first until under the cap\n"
      "                        (default: unlimited)\n"
      "chain options (locate; multi-switch perturbation chains --\n"
      "bit-identical at any thread count):\n"
      "  --chain-depth=N       maximum decisions per perturbation chain:\n"
      "                        1 (default) issues only single-switch\n"
      "                        runs, N>=2 lets the locator extend\n"
      "                        inconclusive single-switch verdicts with\n"
      "                        follow-up switches that resume from the\n"
      "                        shorter chain's divergence snapshots\n"
      "  --chain-budget=N      total chained re-executions allowed per\n"
      "                        locate call (default 32)\n";
}

} // namespace support
} // namespace eoe
