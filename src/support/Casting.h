//===-- support/Casting.h - isa/cast/dyn_cast helpers ------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style checked casting without RTTI. Classes opt in by providing a
/// static classof(const Base *) predicate, typically backed by a Kind tag.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SUPPORT_CASTING_H
#define EOE_SUPPORT_CASTING_H

#include <cassert>

namespace eoe {

/// Returns true if \p V is an instance of To. \p V must be non-null.
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> on a null pointer");
  return To::classof(V);
}

/// Checked downcast; asserts that \p V really is a To.
template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<To *>(V);
}

/// Checked downcast (const); asserts that \p V really is a To.
template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<const To *>(V);
}

/// Downcast returning nullptr when \p V is not a To.
template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

/// Downcast returning nullptr when \p V is not a To (const).
template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace eoe

#endif // EOE_SUPPORT_CASTING_H
