//===-- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal monotonic wall-clock timer used by the Table 4 performance
/// harness to time plain execution, graph construction, and verification.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SUPPORT_TIMER_H
#define EOE_SUPPORT_TIMER_H

#include <chrono>

namespace eoe {

/// Measures elapsed wall time from construction (or the last reset()).
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { Start = Clock::now(); }

  /// Returns seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace eoe

#endif // EOE_SUPPORT_TIMER_H
