//===-- support/EventTracer.cpp - Chrome trace_event spans --------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/EventTracer.h"

#include "support/StringUtils.h"

#include <fstream>
#include <sstream>

using namespace eoe;
using namespace eoe::support;

uint32_t EventTracer::tidForCurrentThread() {
  auto [It, Inserted] =
      Tids.emplace(std::this_thread::get_id(),
                   static_cast<uint32_t>(Tids.size() + 1));
  return It->second;
}

void EventTracer::instant(std::string_view Name, std::string_view Category) {
  uint64_t Ts = nowNs();
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back({std::string(Name), std::string(Category), 'i', Ts, 0,
                    tidForCurrentThread()});
}

void EventTracer::completeSpan(std::string Name, std::string Category,
                               uint64_t StartNs) {
  uint64_t End = nowNs();
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back({std::move(Name), std::move(Category), 'X', StartNs,
                    End - StartNs, tidForCurrentThread()});
}

size_t EventTracer::eventCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events.size();
}

std::vector<EventTracer::Event> EventTracer::events() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events;
}

std::string EventTracer::json() const {
  std::vector<Event> Copy = events();
  std::ostringstream Out;
  Out << "{\"traceEvents\":[";
  for (size_t I = 0; I < Copy.size(); ++I) {
    const Event &E = Copy[I];
    if (I)
      Out << ',';
    // Chrome expects microsecond timestamps; keep sub-microsecond
    // precision as a fraction.
    Out << "{\"name\":\"" << jsonEscape(E.Name) << "\",\"cat\":\""
        << jsonEscape(E.Category) << "\",\"ph\":\"" << E.Phase
        << "\",\"ts\":" << formatDouble(static_cast<double>(E.StartNs) / 1000.0, 3)
        << ",\"pid\":1,\"tid\":" << E.Tid;
    if (E.Phase == 'X')
      Out << ",\"dur\":"
          << formatDouble(static_cast<double>(E.DurationNs) / 1000.0, 3);
    if (E.Phase == 'i')
      Out << ",\"s\":\"t\"";
    Out << '}';
  }
  Out << "],\"displayTimeUnit\":\"ms\"}";
  return Out.str();
}

bool EventTracer::writeFile(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << json() << '\n';
  return static_cast<bool>(Out);
}
