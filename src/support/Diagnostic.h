//===-- support/Diagnostic.h - Source diagnostics ----------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and the diagnostic sink used by the Siml frontend.
///
/// EOE libraries do not use exceptions; fallible frontend stages append
/// diagnostics to a DiagnosticEngine and callers check hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SUPPORT_DIAGNOSTIC_H
#define EOE_SUPPORT_DIAGNOSTIC_H

#include <string>
#include <vector>

namespace eoe {

/// A 1-based line/column position in a Siml source buffer.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }
  bool operator==(const SourceLoc &Other) const = default;
};

/// Severity of a diagnostic. Errors make the producing stage fail.
enum class DiagSeverity { Error, Warning, Note };

/// One diagnostic message anchored at a source location.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics emitted by the lexer, parser, and semantic checker.
class DiagnosticEngine {
public:
  /// Appends an error at \p Loc with message \p Message.
  void error(SourceLoc Loc, std::string Message);

  /// Appends a warning at \p Loc with message \p Message.
  void warning(SourceLoc Loc, std::string Message);

  /// Returns true if at least one error was reported.
  bool hasErrors() const { return NumErrors != 0; }

  /// Returns the number of errors reported so far.
  unsigned errorCount() const { return NumErrors; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic as "line:col: severity: message" lines.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace eoe

#endif // EOE_SUPPORT_DIAGNOSTIC_H
