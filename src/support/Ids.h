//===-- support/Ids.h - Common identifier types ------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain integral identifier types shared by every EOE library.
///
/// All program entities are referred to by dense indices into registries
/// owned by lang::Program (statements, expressions, variables, functions)
/// or by a trace (statement instances). Dense ids keep the dynamic
/// dependence graph and the interpreter's shadow state vector-indexed.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SUPPORT_IDS_H
#define EOE_SUPPORT_IDS_H

#include <cstdint>
#include <limits>

namespace eoe {

/// Index of a statement in lang::Program::statements().
using StmtId = uint32_t;

/// Index of an expression node in lang::Program::expressions().
using ExprId = uint32_t;

/// Index of a variable in lang::Program::variables().
using VarId = uint32_t;

/// Index of a function in lang::Program::functions().
using FuncId = uint32_t;

/// Index of a statement instance in an interp::ExecutionTrace.
using TraceIdx = uint32_t;

/// Sentinel for "no entity" across all of the id types above.
inline constexpr uint32_t InvalidId = std::numeric_limits<uint32_t>::max();

/// Returns true if \p Id is a real entity id (not the sentinel).
inline bool isValidId(uint32_t Id) { return Id != InvalidId; }

} // namespace eoe

#endif // EOE_SUPPORT_IDS_H
