//===-- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size std::thread pool with a single FIFO queue -- deliberately
/// work-stealing-free. The consumers (the parallel verification engine)
/// submit batches of coarse-grained, mutually independent tasks (one
/// switched re-execution + alignment each), so a shared queue has no
/// contention worth optimizing away and keeps completion order reasoning
/// trivial.
///
/// Contract:
///  - submit() returns a std::future<void>; an exception escaping the
///    task is captured and rethrown from future::get().
///  - The destructor *drains*: every task submitted before destruction
///    runs to completion before the workers join. Tasks are never
///    silently dropped (a dropped packaged_task would surface as a
///    broken-promise future in a waiting scheduler).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SUPPORT_THREADPOOL_H
#define EOE_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace eoe {
namespace support {

/// Fixed-size worker pool over one FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p ThreadCount workers (clamped to at least 1).
  explicit ThreadPool(unsigned ThreadCount);

  /// Drains the queue (all submitted tasks run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task. The returned future completes when the task has
  /// run; it rethrows any exception the task let escape.
  std::future<void> submit(std::function<void()> Task);

  /// Submits every thunk and waits for all of them. The first exception
  /// (in submission order) is rethrown after every task has finished, so
  /// no task is left running against destroyed captures.
  void runAll(std::vector<std::function<void()>> Tasks);

  /// The Threads=0 default: hardware_concurrency, at least 1.
  static unsigned defaultThreadCount();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::packaged_task<void()>> Queue;
  std::mutex QueueMutex;
  std::condition_variable QueueCV;
  bool Stopping = false;
};

} // namespace support
} // namespace eoe

#endif // EOE_SUPPORT_THREADPOOL_H
