//===-- support/Stats.h - Hierarchical statistics registry -------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline's observability substrate: a thread-safe registry of
/// named counters, timers, and histograms. The paper's whole argument is
/// a cost story (how many re-executions, alignments, and verified edges
/// each fault needs -- Tables 3 and 4); the registry makes those numbers
/// first-class across every layer instead of ad-hoc members scattered
/// through the verifier.
///
/// Design constraints, in order:
///  - Hot-path increments are single relaxed atomic adds. Registration
///    (name -> metric lookup) takes a mutex, so components resolve their
///    metric handles once and cache the pointers.
///  - Disabled means absent: components hold a nullable StatsRegistry*;
///    every helper here is null-tolerant, so the disabled cost is one
///    branch on a pointer -- not measurable next to an interpreter step.
///  - Names are hierarchical dotted paths ("verify.verdict.strong");
///    snapshots and the JSON renderer group by the leading component, so
///    per-phase cost reads off directly.
///  - snapshot() is race-free by construction: metric storage is atomic
///    and the name table is mutex-guarded, so concurrent increments and
///    snapshots never constitute a data race (the TSan suite exercises
///    exactly this).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SUPPORT_STATS_H
#define EOE_SUPPORT_STATS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace eoe {
namespace support {

/// A monotonically increasing event count. Safe to increment from any
/// thread; reads are relaxed (a snapshot is a moment's view, not a
/// linearization point).
class StatCounter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t get() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Accumulated wall time plus the number of measured intervals.
class StatTimer {
public:
  void record(uint64_t DurationNs) {
    Nanos.fetch_add(DurationNs, std::memory_order_relaxed);
    Laps.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t totalNanos() const { return Nanos.load(std::memory_order_relaxed); }
  uint64_t count() const { return Laps.load(std::memory_order_relaxed); }
  double seconds() const { return static_cast<double>(totalNanos()) * 1e-9; }
  void reset() {
    Nanos.store(0, std::memory_order_relaxed);
    Laps.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Nanos{0};
  std::atomic<uint64_t> Laps{0};
};

/// RAII interval measurement into a StatTimer; a null timer makes the
/// scope free, so call sites need no enabled/disabled branching.
class ScopedTimer {
public:
  explicit ScopedTimer(StatTimer *T)
      : T(T), Start(T ? Clock::now() : Clock::time_point()) {}
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() { stop(); }

  /// Ends the interval early; the destructor becomes a no-op.
  void stop() {
    if (!T)
      return;
    T->record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count()));
    T = nullptr;
  }

private:
  using Clock = std::chrono::steady_clock;
  StatTimer *T;
  Clock::time_point Start;
};

/// A power-of-two-bucketed histogram of uint64 samples (bucket i counts
/// values whose bit width is i, i.e. [2^(i-1), 2^i)), plus exact count,
/// sum, and max. Good enough for slice sizes and batch widths without
/// per-sample allocation.
class StatHistogram {
public:
  static constexpr size_t NumBuckets = 64;

  void record(uint64_t Sample);
  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  double mean() const {
    uint64_t N = count();
    return N ? static_cast<double>(sum()) / static_cast<double>(N) : 0.0;
  }
  void reset();

  /// Bucket index a sample lands in (the sample's bit width).
  static size_t bucketFor(uint64_t Sample);

private:
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
};

/// A registry's state frozen at one moment, for tests and reporting.
struct StatsSnapshot {
  struct TimerValue {
    uint64_t Count = 0;
    double Seconds = 0;
  };
  struct HistogramValue {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Max = 0;
    /// Trailing zero buckets trimmed.
    std::vector<uint64_t> Buckets;
  };
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, TimerValue> Timers;
  std::map<std::string, HistogramValue> Histograms;
};

/// Thread-safe registry of named metrics. Metric objects live as long as
/// the registry and their addresses are stable, so callers resolve once
/// and increment lock-free afterwards.
class StatsRegistry {
public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry &) = delete;
  StatsRegistry &operator=(const StatsRegistry &) = delete;

  /// Finds or creates the named metric. O(log n) under a mutex -- resolve
  /// once, not per event.
  StatCounter &counter(std::string_view Name);
  StatTimer &timer(std::string_view Name);
  StatHistogram &histogram(std::string_view Name);

  /// Null-tolerant conveniences so call sites read as one line.
  static void add(StatsRegistry *Reg, std::string_view Name, uint64_t N = 1) {
    if (Reg)
      Reg->counter(Name).add(N);
  }
  static void sample(StatsRegistry *Reg, std::string_view Name, uint64_t V) {
    if (Reg)
      Reg->histogram(Name).record(V);
  }

  /// Zeroes every registered metric (names stay registered).
  void reset();

  /// A coherent copy of all metrics, keyed by full dotted name.
  StatsSnapshot snapshot() const;

  /// Renders the registry as schema "eoe-stats-v1" JSON: the three metric
  /// sections, each grouped hierarchically by the name's leading dotted
  /// component (see docs/observability.md).
  std::string toJson() const;

  /// Human-readable table of all metrics, for --stats and bench logs.
  std::string str() const;

private:
  mutable std::mutex M;
  // Node-based maps: metric addresses must survive later insertions.
  std::map<std::string, std::unique_ptr<StatCounter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<StatTimer>, std::less<>> Timers;
  std::map<std::string, std::unique_ptr<StatHistogram>, std::less<>>
      Histograms;
};

} // namespace support
} // namespace eoe

#endif // EOE_SUPPORT_STATS_H
