//===-- support/Diagnostic.cpp - Source diagnostics -----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"

#include <sstream>

using namespace eoe;

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    OS << D.Loc.Line << ':' << D.Loc.Col << ": ";
    switch (D.Severity) {
    case DiagSeverity::Error:
      OS << "error: ";
      break;
    case DiagSeverity::Warning:
      OS << "warning: ";
      break;
    case DiagSeverity::Note:
      OS << "note: ";
      break;
    }
    OS << D.Message << '\n';
  }
  return OS.str();
}
