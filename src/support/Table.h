//===-- support/Table.h - ASCII table rendering ------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width ASCII table rendering used by every bench binary to print
/// paper-style rows (Tables 1-4) next to our measured values.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SUPPORT_TABLE_H
#define EOE_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace eoe {

/// Accumulates rows of string cells and renders them with aligned columns.
class Table {
public:
  /// Creates a table whose header row is \p Header.
  explicit Table(std::vector<std::string> Header);

  /// Appends a data row; short rows are padded with empty cells.
  void addRow(std::vector<std::string> Row);

  /// Renders the header, a separator, and all rows.
  std::string str() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace eoe

#endif // EOE_SUPPORT_TABLE_H
