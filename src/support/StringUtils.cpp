//===-- support/StringUtils.cpp - Small string helpers --------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>

using namespace eoe;

std::vector<std::string> eoe::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  size_t Begin = 0;
  while (true) {
    size_t End = Text.find(Sep, Begin);
    if (End == std::string_view::npos) {
      Out.emplace_back(Text.substr(Begin));
      return Out;
    }
    Out.emplace_back(Text.substr(Begin, End - Begin));
    Begin = End + 1;
  }
}

std::string_view eoe::trim(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string eoe::joinStrings(const std::vector<std::string> &Parts,
                             std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string eoe::formatDouble(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  std::string S(Buf);
  if (S.find('.') == std::string::npos)
    return S;
  size_t Last = S.find_last_not_of('0');
  if (S[Last] == '.')
    --Last;
  S.erase(Last + 1);
  return S;
}

std::string eoe::jsonEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::vector<int64_t> eoe::encodeString(std::string_view Text) {
  std::vector<int64_t> Out;
  Out.reserve(Text.size());
  for (char C : Text)
    Out.push_back(static_cast<unsigned char>(C));
  return Out;
}

std::string eoe::decodeString(const std::vector<int64_t> &Codes) {
  std::string Out;
  for (int64_t V : Codes) {
    if (V >= 32 && V <= 126) {
      Out += static_cast<char>(V);
      continue;
    }
    char Buf[8];
    std::snprintf(Buf, sizeof(Buf), "\\x%02x", static_cast<unsigned>(V & 0xff));
    Out += Buf;
  }
  return Out;
}
