//===-- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the frontend, the table printers, and tests.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SUPPORT_STRINGUTILS_H
#define EOE_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eoe {

/// Splits \p Text on \p Sep; empty fields are preserved.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Strips ASCII whitespace from both ends of \p Text.
std::string_view trim(std::string_view Text);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

/// Formats \p Value with at most \p Digits fractional digits, trimming
/// trailing zeros ("1.50" -> "1.5", "2.00" -> "2").
std::string formatDouble(double Value, int Digits);

/// Escapes \p Text for embedding in a JSON string literal (quotes,
/// backslashes, and control characters; no surrounding quotes added).
std::string jsonEscape(std::string_view Text);

/// Converts the ASCII string \p Text into its character codes, one int64
/// per character. Used to feed textual inputs to Siml programs, whose only
/// value type is int64.
std::vector<int64_t> encodeString(std::string_view Text);

/// Inverse of encodeString for values in the printable range; values
/// outside [32, 126] are rendered as "\xNN".
std::string decodeString(const std::vector<int64_t> &Codes);

} // namespace eoe

#endif // EOE_SUPPORT_STRINGUTILS_H
