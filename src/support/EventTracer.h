//===-- support/EventTracer.h - Chrome trace_event spans ---------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped-span event tracing emitting the Chrome trace_event JSON format,
/// so a whole debugging session -- interpret, align, verify, locate --
/// can be opened in chrome://tracing or Perfetto and read as a timeline.
///
/// Spans are RAII: construct at phase entry, the destructor records one
/// complete ("ph":"X") event with the span's wall-clock duration. The
/// tracer is safe to use from ThreadPool workers: events append under a
/// mutex (tracing granularity is per re-execution, not per interpreter
/// step, so the lock is nowhere near any hot path), and each native
/// thread is mapped to a stable small tid on first use.
///
/// Like StatsRegistry, absence is the off switch: every entry point
/// accepts a null tracer and degenerates to nothing.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SUPPORT_EVENTTRACER_H
#define EOE_SUPPORT_EVENTTRACER_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace eoe {
namespace support {

/// Collects trace events in memory; render with json() / writeFile().
class EventTracer {
public:
  /// One recorded event (a complete span or an instant marker).
  struct Event {
    std::string Name;
    std::string Category;
    /// 'X' = complete span, 'i' = instant.
    char Phase = 'X';
    /// Start, nanoseconds since tracer construction.
    uint64_t StartNs = 0;
    uint64_t DurationNs = 0;
    uint32_t Tid = 0;
  };

  /// RAII span. Null-tracer spans cost one branch.
  class Span {
  public:
    Span(EventTracer *T, std::string_view Name,
         std::string_view Category = "eoe")
        : T(T) {
      if (T) {
        this->Name = Name;
        this->Category = Category;
        StartNs = T->nowNs();
      }
    }
    Span(Span &&Other) noexcept { *this = std::move(Other); }
    Span &operator=(Span &&Other) noexcept {
      end();
      T = Other.T;
      Name = std::move(Other.Name);
      Category = std::move(Other.Category);
      StartNs = Other.StartNs;
      Other.T = nullptr;
      return *this;
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    ~Span() { end(); }

    /// Closes the span early; the destructor becomes a no-op.
    void end() {
      if (!T)
        return;
      T->completeSpan(std::move(Name), std::move(Category), StartNs);
      T = nullptr;
    }

  private:
    EventTracer *T = nullptr;
    std::string Name;
    std::string Category;
    uint64_t StartNs = 0;
  };

  EventTracer() : Epoch(Clock::now()) {}
  EventTracer(const EventTracer &) = delete;
  EventTracer &operator=(const EventTracer &) = delete;

  /// Records an instant marker. Null-tolerant via the static overload.
  void instant(std::string_view Name, std::string_view Category = "eoe");
  static void instant(EventTracer *T, std::string_view Name,
                      std::string_view Category = "eoe") {
    if (T)
      T->instant(Name, Category);
  }

  size_t eventCount() const;

  /// A copy of the recorded events (tests; order is record order).
  std::vector<Event> events() const;

  /// The full Chrome trace JSON document:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string json() const;

  /// Writes json() to \p Path; false (with errno set) on I/O failure.
  bool writeFile(const std::string &Path) const;

private:
  friend class Span;
  using Clock = std::chrono::steady_clock;

  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Epoch)
            .count());
  }
  void completeSpan(std::string Name, std::string Category, uint64_t StartNs);
  uint32_t tidForCurrentThread(); // callers hold M

  Clock::time_point Epoch;
  mutable std::mutex M;
  std::vector<Event> Events;
  std::map<std::thread::id, uint32_t> Tids;
};

} // namespace support
} // namespace eoe

#endif // EOE_SUPPORT_EVENTTRACER_H
