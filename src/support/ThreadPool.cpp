//===-- support/ThreadPool.cpp - Fixed-size worker pool -----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <exception>

using namespace eoe;
using namespace eoe::support;

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount == 0)
    ThreadCount = 1;
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  QueueCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::packaged_task<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCV.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task(); // Exceptions land in the task's future.
  }
}

std::future<void> ThreadPool::submit(std::function<void()> Task) {
  std::packaged_task<void()> Packaged(std::move(Task));
  std::future<void> Result = Packaged.get_future();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Queue.push_back(std::move(Packaged));
  }
  QueueCV.notify_one();
  return Result;
}

void ThreadPool::runAll(std::vector<std::function<void()>> Tasks) {
  std::vector<std::future<void>> Futures;
  Futures.reserve(Tasks.size());
  for (std::function<void()> &T : Tasks)
    Futures.push_back(submit(std::move(T)));
  std::exception_ptr First;
  for (std::future<void> &F : Futures) {
    try {
      F.get();
    } catch (...) {
      if (!First)
        First = std::current_exception();
    }
  }
  if (First)
    std::rethrow_exception(First);
}

unsigned ThreadPool::defaultThreadCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}
