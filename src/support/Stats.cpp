//===-- support/Stats.cpp - Hierarchical statistics registry ------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include "support/StringUtils.h"
#include "support/Table.h"

#include <sstream>

using namespace eoe;
using namespace eoe::support;

void StatHistogram::record(uint64_t Sample) {
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  Buckets[bucketFor(Sample)].fetch_add(1, std::memory_order_relaxed);
  uint64_t Seen = Max.load(std::memory_order_relaxed);
  while (Sample > Seen &&
         !Max.compare_exchange_weak(Seen, Sample, std::memory_order_relaxed))
    ;
}

void StatHistogram::reset() {
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

size_t StatHistogram::bucketFor(uint64_t Sample) {
  size_t Bits = 0;
  while (Sample) {
    Sample >>= 1;
    ++Bits;
  }
  return Bits < NumBuckets ? Bits : NumBuckets - 1;
}

StatCounter &StatsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<StatCounter>())
             .first;
  return *It->second;
}

StatTimer &StatsRegistry::timer(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Timers.find(Name);
  if (It == Timers.end())
    It = Timers.emplace(std::string(Name), std::make_unique<StatTimer>())
             .first;
  return *It->second;
}

StatHistogram &StatsRegistry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms
             .emplace(std::string(Name), std::make_unique<StatHistogram>())
             .first;
  return *It->second;
}

void StatsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, T] : Timers)
    T->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

StatsSnapshot StatsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  StatsSnapshot S;
  for (const auto &[Name, C] : Counters)
    S.Counters[Name] = C->get();
  for (const auto &[Name, T] : Timers)
    S.Timers[Name] = {T->count(), T->seconds()};
  for (const auto &[Name, H] : Histograms) {
    StatsSnapshot::HistogramValue V;
    V.Count = H->count();
    V.Sum = H->sum();
    V.Max = H->max();
    size_t Last = 0;
    for (size_t I = 0; I < StatHistogram::NumBuckets; ++I)
      if (H->bucket(I))
        Last = I + 1;
    for (size_t I = 0; I < Last; ++I)
      V.Buckets.push_back(H->bucket(I));
    S.Histograms[Name] = V;
  }
  return S;
}

namespace {

/// Splits "align.queries" into its leading component and remainder;
/// names without a dot group under "" (emitted flat).
std::pair<std::string, std::string> splitHead(const std::string &Name) {
  size_t Dot = Name.find('.');
  if (Dot == std::string::npos)
    return {"", Name};
  return {Name.substr(0, Dot), Name.substr(Dot + 1)};
}

/// Renders one metric section as a JSON object grouped by the leading
/// name component. \p Emit renders one metric's value.
template <typename Map, typename Fn>
void emitSection(std::ostringstream &Out, const char *Section, const Map &Metrics,
                 Fn Emit) {
  Out << '"' << Section << "\":{";
  // Group preserving the map's name order; ungrouped names come first in
  // their natural sort position because "" sorts before any component.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      Groups;
  for (const auto &[Name, Value] : Metrics) {
    auto [Head, Rest] = splitHead(Name);
    std::ostringstream One;
    Emit(One, Value);
    Groups[Head].push_back({Rest, One.str()});
  }
  bool FirstGroup = true;
  for (const auto &[Head, Members] : Groups) {
    auto EmitMembers = [&](bool &First) {
      for (const auto &[Leaf, Rendered] : Members) {
        if (!First)
          Out << ',';
        First = false;
        Out << '"' << jsonEscape(Leaf) << "\":" << Rendered;
      }
    };
    if (Head.empty()) {
      EmitMembers(FirstGroup);
      continue;
    }
    if (!FirstGroup)
      Out << ',';
    FirstGroup = false;
    Out << '"' << jsonEscape(Head) << "\":{";
    bool FirstMember = true;
    EmitMembers(FirstMember);
    Out << '}';
  }
  Out << '}';
}

} // namespace

std::string StatsRegistry::toJson() const {
  StatsSnapshot S = snapshot();
  std::ostringstream Out;
  Out << "{\"schema\":\"eoe-stats-v1\",";
  emitSection(Out, "counters", S.Counters,
              [](std::ostringstream &O, uint64_t V) { O << V; });
  Out << ',';
  emitSection(Out, "timers", S.Timers,
              [](std::ostringstream &O,
                 const StatsSnapshot::TimerValue &V) {
                O << "{\"count\":" << V.Count
                  << ",\"seconds\":" << formatDouble(V.Seconds, 6) << '}';
              });
  Out << ',';
  emitSection(Out, "histograms", S.Histograms,
              [](std::ostringstream &O,
                 const StatsSnapshot::HistogramValue &V) {
                O << "{\"count\":" << V.Count << ",\"sum\":" << V.Sum
                  << ",\"max\":" << V.Max << ",\"buckets\":[";
                for (size_t I = 0; I < V.Buckets.size(); ++I)
                  O << (I ? "," : "") << V.Buckets[I];
                O << "]}";
              });
  Out << '}';
  return Out.str();
}

std::string StatsRegistry::str() const {
  StatsSnapshot S = snapshot();
  Table T({"metric", "value", "count", "mean"});
  for (const auto &[Name, V] : S.Counters)
    T.addRow({Name, std::to_string(V)});
  for (const auto &[Name, V] : S.Timers) {
    double MeanMs = V.Count ? V.Seconds * 1000 / V.Count : 0;
    T.addRow({Name, formatDouble(V.Seconds * 1000, 2) + " ms",
              std::to_string(V.Count), formatDouble(MeanMs, 3) + " ms"});
  }
  for (const auto &[Name, V] : S.Histograms) {
    double Mean = V.Count ? static_cast<double>(V.Sum) / V.Count : 0;
    T.addRow({Name, "sum " + std::to_string(V.Sum) + ", max " +
                        std::to_string(V.Max),
              std::to_string(V.Count), formatDouble(Mean, 2)});
  }
  return T.str();
}
