//===-- support/Table.cpp - ASCII table rendering --------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>

using namespace eoe;

Table::Table(std::vector<std::string> Hdr) : Header(std::move(Hdr)) {}

void Table::addRow(std::vector<std::string> Row) {
  Row.resize(Header.size());
  Rows.push_back(std::move(Row));
}

std::string Table::str() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t C = 0; C < Row.size(); ++C) {
      Line += "| ";
      Line += Row[C];
      Line += std::string(Widths[C] - Row[C].size() + 1, ' ');
    }
    Line += "|\n";
    return Line;
  };

  std::string Out = RenderRow(Header);
  std::string Sep;
  for (size_t C = 0; C < Header.size(); ++C) {
    Sep += '|';
    Sep += std::string(Widths[C] + 2, '-');
  }
  Sep += "|\n";
  Out += Sep;
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}
