//===-- support/RNG.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny splitmix64-based RNG so workload inputs and property tests are
/// reproducible across platforms (std::mt19937 distributions are not
/// guaranteed identical across standard library implementations).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_SUPPORT_RNG_H
#define EOE_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace eoe {

/// Deterministic 64-bit RNG (splitmix64).
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniform in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow bound must be positive");
    return next() % Bound;
  }

  /// Returns a value uniform in [Lo, Hi] (inclusive). Requires Lo <= Hi.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

private:
  uint64_t State;
};

} // namespace eoe

#endif // EOE_SUPPORT_RNG_H
