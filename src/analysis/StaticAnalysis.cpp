//===-- analysis/StaticAnalysis.cpp - Whole-program static facts ------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticAnalysis.h"

#include <cassert>
#include <deque>

using namespace eoe;
using namespace eoe::analysis;
using namespace eoe::lang;

const std::vector<StmtId> StaticAnalysis::NoDefs;

StaticAnalysis::StaticAnalysis(const lang::Program &Prog) : Prog(Prog) {
  StmtFunc.assign(Prog.statements().size(), InvalidId);
  DefVar.assign(Prog.statements().size(), InvalidId);
  VarDefs.assign(Prog.variables().size(), {});
  StmtCallees.assign(Prog.statements().size(), {});
  FuncStmts.assign(Prog.functions().size(), {});

  // Global declarations: defs of their variable, owned by no function.
  for (VarDeclStmt *G : Prog.globals()) {
    DefVar[G->id()] = G->var();
    if (isValidId(G->var()))
      VarDefs[G->var()].push_back(G->id());
  }

  for (Function *F : Prog.functions()) {
    CFGs.push_back(CFG::build(Prog, *F));
    CDs.push_back(ControlDependence::build(CFGs.back()));
    indexFunction(*F);
  }
}

void StaticAnalysis::indexFunction(const lang::Function &F) {
  for (const Stmt *S : F.body())
    indexStmt(S, F.id());
}

void StaticAnalysis::collectCallees(const lang::Expr *E,
                                    std::vector<FuncId> &Out) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::VarRef:
  case Expr::Kind::Input:
    return;
  case Expr::Kind::ArrayRef:
    collectCallees(cast<ArrayRefExpr>(E)->index(), Out);
    return;
  case Expr::Kind::Call: {
    const auto *Call = cast<CallExpr>(E);
    if (isValidId(Call->callee()))
      Out.push_back(Call->callee());
    for (const Expr *Arg : Call->args())
      collectCallees(Arg, Out);
    return;
  }
  case Expr::Kind::Unary:
    collectCallees(cast<UnaryExpr>(E)->sub(), Out);
    return;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    collectCallees(B->lhs(), Out);
    collectCallees(B->rhs(), Out);
    return;
  }
  }
}

void StaticAnalysis::indexStmt(const lang::Stmt *S, FuncId F) {
  StmtFunc[S->id()] = F;
  FuncStmts[F].push_back(S->id());
  VarId Defined = InvalidId;
  std::vector<FuncId> &Callees = StmtCallees[S->id()];
  switch (S->kind()) {
  case Stmt::Kind::VarDecl: {
    const auto *Decl = cast<VarDeclStmt>(S);
    Defined = Decl->var();
    if (Decl->init())
      collectCallees(Decl->init(), Callees);
    break;
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    Defined = A->var();
    collectCallees(A->value(), Callees);
    break;
  }
  case Stmt::Kind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(S);
    Defined = A->var();
    collectCallees(A->index(), Callees);
    collectCallees(A->value(), Callees);
    break;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    collectCallees(If->cond(), Callees);
    for (const Stmt *Child : If->thenBody())
      indexStmt(Child, F);
    for (const Stmt *Child : If->elseBody())
      indexStmt(Child, F);
    break;
  }
  case Stmt::Kind::While: {
    collectCallees(cast<WhileStmt>(S)->cond(), Callees);
    for (const Stmt *Child : cast<WhileStmt>(S)->body())
      indexStmt(Child, F);
    break;
  }
  case Stmt::Kind::Return:
    if (cast<ReturnStmt>(S)->value())
      collectCallees(cast<ReturnStmt>(S)->value(), Callees);
    break;
  case Stmt::Kind::Print:
    for (const lang::Expr *Arg : cast<PrintStmt>(S)->args())
      collectCallees(Arg, Callees);
    break;
  case Stmt::Kind::CallStmt:
    collectCallees(cast<CallStmtNode>(S)->call(), Callees);
    break;
  default:
    break;
  }
  if (isValidId(Defined)) {
    DefVar[S->id()] = Defined;
    VarDefs[Defined].push_back(S->id());
  }
}

const std::vector<ControlDependence::Parent> &
StaticAnalysis::cdParents(StmtId Stmt) const {
  FuncId F = StmtFunc.at(Stmt);
  if (!isValidId(F)) {
    static const std::vector<ControlDependence::Parent> Empty;
    return Empty;
  }
  return CDs[F].parents(Stmt);
}

const std::vector<StmtId> &StaticAnalysis::cdChildren(StmtId Pred,
                                                      bool Branch) const {
  FuncId F = StmtFunc.at(Pred);
  assert(isValidId(F) && "predicate outside any function");
  return CDs[F].children(Pred, Branch);
}

bool StaticAnalysis::cdRegionContains(StmtId Pred, bool Branch,
                                      StmtId Stmt) const {
  auto Key = std::make_pair(Pred, Branch);
  auto It = RegionCache.find(Key);
  if (It == RegionCache.end()) {
    // Flood downward from the direct children of (Pred, Branch), following
    // both outcomes of nested predicates and descending into callees:
    // code in a function invoked from the region executes only when the
    // region does.
    std::vector<bool> Member(Prog.statements().size(), false);
    std::deque<StmtId> Work(cdChildren(Pred, Branch).begin(),
                            cdChildren(Pred, Branch).end());
    std::vector<bool> FuncSeen(Prog.functions().size(), false);
    while (!Work.empty()) {
      StmtId S = Work.front();
      Work.pop_front();
      if (Member[S])
        continue;
      Member[S] = true;
      for (bool B : {true, false})
        for (StmtId Child : cdChildren(S, B))
          if (!Member[Child])
            Work.push_back(Child);
      for (FuncId Callee : StmtCallees[S]) {
        if (FuncSeen[Callee])
          continue;
        FuncSeen[Callee] = true;
        for (StmtId Inner : FuncStmts[Callee])
          if (!Member[Inner])
            Work.push_back(Inner);
      }
    }
    // A loop predicate is control dependent on itself; keep Pred out of
    // its own region so regions describe *other* guarded statements.
    Member[Pred] = false;
    It = RegionCache.emplace(Key, std::move(Member)).first;
  }
  return It->second[Stmt];
}

bool StaticAnalysis::mayReach(StmtId From, StmtId To) const {
  FuncId FF = StmtFunc.at(From);
  FuncId TF = StmtFunc.at(To);
  if (!isValidId(FF) || !isValidId(TF))
    return true; // Global declarations precede everything.
  if (FF != TF)
    return true; // Conservative across functions.

  const CFG &G = CFGs[FF];
  uint32_t FromNode = G.nodeOf(From);
  uint32_t ToNode = G.nodeOf(To);
  if (FromNode == InvalidId || ToNode == InvalidId)
    return true;

  auto Key = std::make_pair(FF, FromNode);
  auto It = ReachCache.find(Key);
  if (It == ReachCache.end()) {
    std::vector<bool> Seen(G.size(), false);
    std::deque<uint32_t> Work;
    // Reachability *from* From: start at its successors so a statement
    // does not trivially reach itself unless it sits on a cycle.
    for (uint32_t S : G.node(FromNode).Succs)
      Work.push_back(S);
    while (!Work.empty()) {
      uint32_t N = Work.front();
      Work.pop_front();
      if (Seen[N])
        continue;
      Seen[N] = true;
      for (uint32_t S : G.node(N).Succs)
        Work.push_back(S);
    }
    It = ReachCache.emplace(Key, std::move(Seen)).first;
  }
  return It->second[ToNode];
}

const std::vector<StmtId> &StaticAnalysis::defsOfVar(VarId Var) const {
  if (Var >= VarDefs.size())
    return NoDefs;
  return VarDefs[Var];
}

size_t StaticAnalysis::statementCount(FuncId F) const {
  size_t Count = 0;
  for (StmtId S = 0; S < StmtFunc.size(); ++S)
    if (StmtFunc[S] == F)
      ++Count;
  return Count;
}
