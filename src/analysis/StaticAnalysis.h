//===-- analysis/StaticAnalysis.h - Whole-program static facts ---*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program static facts derived once per Program: per-function CFGs
/// and control dependence merged into StmtId-indexed tables, a definition
/// index per variable class, intraprocedural reachability, and transitive
/// control-dependence region membership.
///
/// Aliasing model: Siml has no pointers; the only statically ambiguous
/// accesses are array elements, so the "location class" of any access is
/// simply its variable (whole arrays alias). This mirrors the conservative
/// points-to treatment that makes the paper's potential dependences
/// over-approximate (its Figure 1: any store to outbuf may reach any load
/// of outbuf).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_ANALYSIS_STATICANALYSIS_H
#define EOE_ANALYSIS_STATICANALYSIS_H

#include "analysis/CFG.h"
#include "analysis/ControlDependence.h"
#include "lang/AST.h"

#include <map>
#include <vector>

namespace eoe {
namespace analysis {

/// Immutable static-analysis results for one Program.
class StaticAnalysis {
public:
  explicit StaticAnalysis(const lang::Program &Prog);

  const lang::Program &program() const { return Prog; }

  /// The CFG of function \p F.
  const CFG &cfg(FuncId F) const { return CFGs.at(F); }

  /// The function containing \p Stmt; InvalidId for global declarations.
  FuncId functionOf(StmtId Stmt) const { return StmtFunc.at(Stmt); }

  /// Direct static control-dependence parents of \p Stmt.
  const std::vector<ControlDependence::Parent> &cdParents(StmtId Stmt) const;

  /// Direct static control-dependence children of (\p Pred, \p Branch).
  const std::vector<StmtId> &cdChildren(StmtId Pred, bool Branch) const;

  /// True if \p Stmt is inside the code guarded by predicate \p Pred
  /// taking outcome \p Branch: the transitive control-dependence region,
  /// extended interprocedurally -- statements of functions called from
  /// within the region belong to it too (they only execute when the
  /// guarded code does). Context-insensitive, hence conservative, exactly
  /// like the static component of the paper's prototype.
  bool cdRegionContains(StmtId Pred, bool Branch, StmtId Stmt) const;

  /// Functions directly called by \p Stmt (anywhere in its expressions).
  const std::vector<FuncId> &calleesOf(StmtId Stmt) const {
    return StmtCallees.at(Stmt);
  }

  /// All statements of function \p F.
  const std::vector<StmtId> &statementsOf(FuncId F) const {
    return FuncStmts.at(F);
  }

  /// True if control can flow from \p From to \p To. Intraprocedurally
  /// this is CFG reachability; across functions it conservatively returns
  /// true when the defined class is visible to both (the consumers only
  /// need an over-approximation).
  bool mayReach(StmtId From, StmtId To) const;

  /// Statements that define (assign, declare, or store into) variable
  /// class \p Var, program-wide.
  const std::vector<StmtId> &defsOfVar(VarId Var) const;

  /// The variable class a definition statement writes; InvalidId when
  /// \p Stmt defines nothing (predicates, print, break, ...).
  VarId definedVar(StmtId Stmt) const { return DefVar.at(Stmt); }

  /// Number of statements in function \p F (procedure size, Table 1).
  size_t statementCount(FuncId F) const;

private:
  void indexFunction(const lang::Function &F);
  void indexStmt(const lang::Stmt *S, FuncId F);
  void collectCallees(const lang::Expr *E, std::vector<FuncId> &Out);

  const lang::Program &Prog;
  std::vector<CFG> CFGs;                    // indexed by FuncId
  std::vector<ControlDependence> CDs;       // indexed by FuncId
  std::vector<FuncId> StmtFunc;             // indexed by StmtId
  std::vector<VarId> DefVar;                // indexed by StmtId
  std::vector<std::vector<StmtId>> VarDefs; // indexed by VarId
  std::vector<std::vector<FuncId>> StmtCallees; // indexed by StmtId
  std::vector<std::vector<StmtId>> FuncStmts;   // indexed by FuncId
  static const std::vector<StmtId> NoDefs;

  /// Memoized transitive region membership, keyed by (Pred, Branch).
  mutable std::map<std::pair<StmtId, bool>, std::vector<bool>> RegionCache;
  /// Memoized intraprocedural reachability, keyed by CFG node per function.
  mutable std::map<std::pair<FuncId, uint32_t>, std::vector<bool>> ReachCache;
};

} // namespace analysis
} // namespace eoe

#endif // EOE_ANALYSIS_STATICANALYSIS_H
