//===-- analysis/ControlDependence.cpp - Static control dependence ----------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "analysis/ControlDependence.h"

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace eoe;
using namespace eoe::analysis;

const std::vector<ControlDependence::Parent> ControlDependence::EmptyParents;
const std::vector<StmtId> ControlDependence::EmptyKids;

ControlDependence ControlDependence::build(const CFG &G) {
  uint32_t N = static_cast<uint32_t>(G.size());

  // Post-dominators: dominators of the reversed CFG rooted at Exit.
  std::vector<std::vector<uint32_t>> Succs(N), Preds(N);
  for (uint32_t I = 0; I < N; ++I) {
    Succs[I] = G.node(I).Preds; // reversed
    Preds[I] = G.node(I).Succs; // reversed
  }
  std::vector<uint32_t> IPDom =
      computeImmediateDominators(CFG::ExitNode, Succs, Preds);

  // Ferrante-Ottenstein-Warren: for every branch edge (A -> B, Label) where
  // B does not post-dominate A, every node on the post-dominator-tree path
  // from B up to (exclusive) ipdom(A) is control dependent on (A, Label).
  std::map<StmtId, PerStmt> Table;
  for (uint32_t A = 0; A < N; ++A) {
    if (!G.isBranch(A))
      continue;
    StmtId PredStmt = G.node(A).Stmt;
    assert(isValidId(PredStmt) && "branch node without a statement");
    for (int LabelIdx = 0; LabelIdx < 2; ++LabelIdx) {
      bool Label = LabelIdx == 0;
      uint32_t B = G.branchTarget(A, Label);
      uint32_t Stop = IPDom[A];
      for (uint32_t Runner = B; Runner != Stop; Runner = IPDom[Runner]) {
        assert(Runner != InvalidId && "walked off the post-dominator tree");
        StmtId RunnerStmt = G.node(Runner).Stmt;
        if (isValidId(RunnerStmt)) {
          Table[RunnerStmt].Parents.push_back({PredStmt, Label});
          if (Label)
            Table[PredStmt].TrueKids.push_back(RunnerStmt);
          else
            Table[PredStmt].FalseKids.push_back(RunnerStmt);
        }
        if (Runner == IPDom[Runner])
          break; // Defensive: avoid looping on a self-idom root.
      }
    }
  }

  ControlDependence CD;
  for (auto &[Stmt, Info] : Table) {
    CD.Stmts.push_back(Stmt);
    CD.Info.push_back(std::move(Info));
  }
  return CD;
}

const ControlDependence::PerStmt *ControlDependence::find(StmtId Stmt) const {
  auto It = std::lower_bound(Stmts.begin(), Stmts.end(), Stmt);
  if (It == Stmts.end() || *It != Stmt)
    return nullptr;
  return &Info[static_cast<size_t>(It - Stmts.begin())];
}

const std::vector<ControlDependence::Parent> &
ControlDependence::parents(StmtId Stmt) const {
  const PerStmt *P = find(Stmt);
  return P ? P->Parents : EmptyParents;
}

const std::vector<StmtId> &ControlDependence::children(StmtId Pred,
                                                       bool Branch) const {
  const PerStmt *P = find(Pred);
  if (!P)
    return EmptyKids;
  return Branch ? P->TrueKids : P->FalseKids;
}
