//===-- analysis/CFG.h - Control-flow graphs ---------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function control-flow graphs over Siml statements. Each statement
/// is one CFG node (if/while nodes are the branch points); two synthetic
/// nodes represent function entry and exit. The paper's prototype obtained
/// the same information from diablo on x86 binaries.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_ANALYSIS_CFG_H
#define EOE_ANALYSIS_CFG_H

#include "lang/AST.h"
#include "support/Ids.h"

#include <vector>

namespace eoe {
namespace analysis {

/// A control-flow graph for one function.
///
/// Node numbering: node 0 is Entry, node 1 is Exit, statement nodes follow.
/// Predicate nodes have exactly two successors: Succs[0] is the target when
/// the condition is true, Succs[1] when it is false.
class CFG {
public:
  static constexpr uint32_t EntryNode = 0;
  static constexpr uint32_t ExitNode = 1;

  struct Node {
    /// The statement this node represents; InvalidId for Entry/Exit.
    StmtId Stmt = InvalidId;
    std::vector<uint32_t> Succs;
    std::vector<uint32_t> Preds;
  };

  /// Builds the CFG of \p F (whose nodes belong to \p Prog).
  static CFG build(const lang::Program &Prog, const lang::Function &F);

  const std::vector<Node> &nodes() const { return Nodes; }
  const Node &node(uint32_t Index) const { return Nodes.at(Index); }
  size_t size() const { return Nodes.size(); }

  /// Returns the node index of \p Stmt; InvalidId if the statement is not
  /// part of this function.
  uint32_t nodeOf(StmtId Stmt) const;

  /// True if \p Node branches (it has two successors).
  bool isBranch(uint32_t Node) const { return Nodes[Node].Succs.size() == 2; }

  /// Returns the successor of branch node \p Node for outcome \p Taken.
  uint32_t branchTarget(uint32_t Node, bool Taken) const {
    return Nodes[Node].Succs[Taken ? 0 : 1];
  }

private:
  std::vector<Node> Nodes;
  /// Maps global StmtId to node index (only statements of this function).
  std::vector<std::pair<StmtId, uint32_t>> StmtToNode;
};

} // namespace analysis
} // namespace eoe

#endif // EOE_ANALYSIS_CFG_H
