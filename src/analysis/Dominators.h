//===-- analysis/Dominators.h - Dominator computation ------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immediate-dominator computation (Cooper-Harvey-Kennedy iterative
/// algorithm) over an explicit adjacency representation. Post-dominators
/// are obtained by running it on the reversed CFG with Exit as the root.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_ANALYSIS_DOMINATORS_H
#define EOE_ANALYSIS_DOMINATORS_H

#include "support/Ids.h"

#include <cstdint>
#include <vector>

namespace eoe {
namespace analysis {

/// Computes immediate dominators of a flow graph.
///
/// \param Root the graph's entry node.
/// \param Succs per-node successor lists (forward edges of the graph being
///        dominated -- pass reversed edges to get post-dominators).
/// \param Preds per-node predecessor lists (must be consistent with Succs).
/// \returns IDom[N] for every node; Root maps to itself and nodes
///          unreachable from Root map to InvalidId.
std::vector<uint32_t>
computeImmediateDominators(uint32_t Root,
                           const std::vector<std::vector<uint32_t>> &Succs,
                           const std::vector<std::vector<uint32_t>> &Preds);

/// Returns true if \p A dominates \p B (reflexively) under \p IDom.
bool dominates(const std::vector<uint32_t> &IDom, uint32_t A, uint32_t B,
               uint32_t Root);

} // namespace analysis
} // namespace eoe

#endif // EOE_ANALYSIS_DOMINATORS_H
