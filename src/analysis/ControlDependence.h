//===-- analysis/ControlDependence.h - Static control dependence -*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static control dependence computed per function with the classic
/// Ferrante-Ottenstein-Warren construction (post-dominance frontiers).
///
/// The results drive three consumers:
///  - the interpreter resolves each statement instance's *dynamic* control
///    dependence parent as the most recent instance of one of its static
///    control-dependence parents (which yields the paper's region tree,
///    Definition 3);
///  - relevant slicing checks Definition 1(iv) against the statements
///    guarded by a predicate's not-taken outcome;
///  - verifyDep's region containment test (paper section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_ANALYSIS_CONTROLDEPENDENCE_H
#define EOE_ANALYSIS_CONTROLDEPENDENCE_H

#include "analysis/CFG.h"
#include "support/Ids.h"

#include <vector>

namespace eoe {
namespace analysis {

/// Control dependences of one function's statements.
class ControlDependence {
public:
  /// One direct control dependence: the dependent statement executes iff
  /// predicate \c Pred takes outcome \c Branch (subject to outer control).
  struct Parent {
    StmtId Pred;
    bool Branch;
    bool operator==(const Parent &O) const = default;
  };

  /// Computes control dependence for \p G using its post-dominator tree.
  static ControlDependence build(const CFG &G);

  /// Direct control-dependence parents of \p Stmt (usually one; multiple
  /// in the presence of break/continue/return). Empty when the statement
  /// is only control dependent on function entry.
  const std::vector<Parent> &parents(StmtId Stmt) const;

  /// Direct control-dependence children of predicate \p Pred under outcome
  /// \p Branch, in CFG construction order.
  const std::vector<StmtId> &children(StmtId Pred, bool Branch) const;

  /// All statements of this function that have control-dependence entries.
  const std::vector<StmtId> &statements() const { return Stmts; }

private:
  struct PerStmt {
    std::vector<Parent> Parents;
    std::vector<StmtId> TrueKids;
    std::vector<StmtId> FalseKids;
  };

  const PerStmt *find(StmtId Stmt) const;

  std::vector<StmtId> Stmts;                  // sorted
  std::vector<PerStmt> Info;                  // parallel to Stmts
  static const std::vector<Parent> EmptyParents;
  static const std::vector<StmtId> EmptyKids;
};

} // namespace analysis
} // namespace eoe

#endif // EOE_ANALYSIS_CONTROLDEPENDENCE_H
