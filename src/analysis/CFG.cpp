//===-- analysis/CFG.cpp - Control-flow graphs ------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include <algorithm>
#include <cassert>

using namespace eoe;
using namespace eoe::analysis;
using namespace eoe::lang;

namespace {

/// Builds CFG nodes bottom-up: statements are visited in reverse so every
/// statement knows its fall-through successor when its node is created.
class Builder {
public:
  explicit Builder(CFG::Node *NodesUnused) { (void)NodesUnused; }

  std::vector<CFG::Node> Nodes;
  std::vector<std::pair<StmtId, uint32_t>> StmtToNode;

  uint32_t addNode(StmtId Stmt) {
    Nodes.push_back({Stmt, {}, {}});
    if (isValidId(Stmt))
      StmtToNode.push_back({Stmt, static_cast<uint32_t>(Nodes.size() - 1)});
    return static_cast<uint32_t>(Nodes.size() - 1);
  }

  /// Returns the entry node of \p Body when its fall-through continuation
  /// is \p Next; break/continue inside jump to \p BreakTo / \p ContinueTo.
  uint32_t buildBody(const std::vector<Stmt *> &Body, uint32_t Next,
                     uint32_t BreakTo, uint32_t ContinueTo) {
    uint32_t Entry = Next;
    for (auto It = Body.rbegin(); It != Body.rend(); ++It)
      Entry = buildStmt(*It, Entry, BreakTo, ContinueTo);
    return Entry;
  }

  uint32_t buildStmt(Stmt *S, uint32_t Next, uint32_t BreakTo,
                     uint32_t ContinueTo) {
    switch (S->kind()) {
    case Stmt::Kind::If: {
      auto *If = cast<IfStmt>(S);
      uint32_t ThenEntry = buildBody(If->thenBody(), Next, BreakTo, ContinueTo);
      uint32_t ElseEntry = buildBody(If->elseBody(), Next, BreakTo, ContinueTo);
      uint32_t N = addNode(S->id());
      Nodes[N].Succs = {ThenEntry, ElseEntry};
      return N;
    }
    case Stmt::Kind::While: {
      auto *W = cast<WhileStmt>(S);
      uint32_t N = addNode(S->id());
      uint32_t BodyEntry =
          buildBody(W->body(), /*Next=*/N, /*BreakTo=*/Next, /*ContinueTo=*/N);
      Nodes[N].Succs = {BodyEntry, Next};
      return N;
    }
    case Stmt::Kind::Break: {
      uint32_t N = addNode(S->id());
      assert(BreakTo != InvalidId && "break outside loop survived Sema");
      Nodes[N].Succs = {BreakTo};
      return N;
    }
    case Stmt::Kind::Continue: {
      uint32_t N = addNode(S->id());
      assert(ContinueTo != InvalidId && "continue outside loop survived Sema");
      Nodes[N].Succs = {ContinueTo};
      return N;
    }
    case Stmt::Kind::Return: {
      uint32_t N = addNode(S->id());
      Nodes[N].Succs = {CFG::ExitNode};
      return N;
    }
    default: {
      uint32_t N = addNode(S->id());
      Nodes[N].Succs = {Next};
      return N;
    }
    }
  }
};

} // namespace

CFG CFG::build(const lang::Program &Prog, const lang::Function &F) {
  (void)Prog;
  Builder B(nullptr);
  uint32_t Entry = B.addNode(InvalidId);
  uint32_t Exit = B.addNode(InvalidId);
  assert(Entry == EntryNode && Exit == ExitNode);
  (void)Entry;
  (void)Exit;

  uint32_t BodyEntry = B.buildBody(F.body(), ExitNode, InvalidId, InvalidId);
  B.Nodes[EntryNode].Succs = {BodyEntry};

  CFG G;
  G.Nodes = std::move(B.Nodes);
  G.StmtToNode = std::move(B.StmtToNode);
  std::sort(G.StmtToNode.begin(), G.StmtToNode.end());

  for (uint32_t N = 0; N < G.Nodes.size(); ++N)
    for (uint32_t Succ : G.Nodes[N].Succs)
      G.Nodes[Succ].Preds.push_back(N);
  return G;
}

uint32_t CFG::nodeOf(StmtId Stmt) const {
  auto It = std::lower_bound(StmtToNode.begin(), StmtToNode.end(),
                             std::make_pair(Stmt, 0u));
  if (It == StmtToNode.end() || It->first != Stmt)
    return InvalidId;
  return It->second;
}
