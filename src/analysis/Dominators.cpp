//===-- analysis/Dominators.cpp - Dominator computation ---------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace eoe;
using namespace eoe::analysis;

std::vector<uint32_t> eoe::analysis::computeImmediateDominators(
    uint32_t Root, const std::vector<std::vector<uint32_t>> &Succs,
    const std::vector<std::vector<uint32_t>> &Preds) {
  uint32_t N = static_cast<uint32_t>(Succs.size());
  assert(Preds.size() == Succs.size() && "inconsistent adjacency");

  // Reverse postorder from Root (iterative DFS with explicit stack).
  std::vector<uint32_t> PostOrder;
  PostOrder.reserve(N);
  std::vector<uint8_t> State(N, 0); // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.push_back({Root, 0});
  State[Root] = 1;
  while (!Stack.empty()) {
    auto &[Node, NextSucc] = Stack.back();
    if (NextSucc < Succs[Node].size()) {
      uint32_t S = Succs[Node][NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    State[Node] = 2;
    PostOrder.push_back(Node);
    Stack.pop_back();
  }

  std::vector<uint32_t> RpoNumber(N, InvalidId);
  for (size_t I = 0; I < PostOrder.size(); ++I)
    RpoNumber[PostOrder[I]] =
        static_cast<uint32_t>(PostOrder.size() - 1 - I);

  std::vector<uint32_t> IDom(N, InvalidId);
  IDom[Root] = Root;

  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RpoNumber[A] > RpoNumber[B])
        A = IDom[A];
      while (RpoNumber[B] > RpoNumber[A])
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Process in reverse postorder (PostOrder backwards), skipping Root.
    for (auto It = PostOrder.rbegin(); It != PostOrder.rend(); ++It) {
      uint32_t Node = *It;
      if (Node == Root)
        continue;
      uint32_t NewIDom = InvalidId;
      for (uint32_t P : Preds[Node]) {
        if (IDom[P] == InvalidId)
          continue; // Not yet processed or unreachable.
        NewIDom = (NewIDom == InvalidId) ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != InvalidId && IDom[Node] != NewIDom) {
        IDom[Node] = NewIDom;
        Changed = true;
      }
    }
  }
  return IDom;
}

bool eoe::analysis::dominates(const std::vector<uint32_t> &IDom, uint32_t A,
                              uint32_t B, uint32_t Root) {
  // Walk B's dominator chain up to the root.
  while (true) {
    if (A == B)
      return true;
    if (B == Root || IDom[B] == InvalidId)
      return false;
    B = IDom[B];
  }
}
