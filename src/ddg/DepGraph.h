//===-- ddg/DepGraph.h - Dynamic dependence graphs ---------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic dependence graph: an execution trace (whose UseRecord.Def
/// fields are the data-dependence edges and CdParent fields the control-
/// dependence edges) plus any implicit dependence edges added by the
/// verification procedure. Provides backward/forward closures (slices)
/// and slice-size accounting in both the static (unique statements) and
/// dynamic (statement instances) senses the paper's Table 2 reports.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_DDG_DEPGRAPH_H
#define EOE_DDG_DEPGRAPH_H

#include "interp/Trace.h"
#include "support/Ids.h"

#include <vector>

namespace eoe {
namespace ddg {

/// Static/dynamic size of a slice (Table 2's "static/dynamic" columns).
struct SliceStats {
  size_t StaticStmts = 0;
  size_t DynamicInstances = 0;
};

/// A dynamic dependence graph over one execution trace.
///
/// The trace is borrowed and must outlive the graph.
class DepGraph {
public:
  /// One verified implicit dependence edge: \c Use (a statement instance)
  /// implicitly depends on predicate instance \c Pred (the paper's
  /// p -id-> u, stored use-first for backward traversal).
  struct ImplicitEdge {
    TraceIdx Use = InvalidId;
    TraceIdx Pred = InvalidId;
    bool Strong = false;
  };

  /// Which edge kinds a closure follows.
  struct ClosureOptions {
    bool Data = true;
    bool Control = true;
    bool Implicit = true;
  };

  explicit DepGraph(const interp::ExecutionTrace &Trace) : Trace(Trace) {}

  const interp::ExecutionTrace &trace() const { return Trace; }

  /// Adds a verified implicit dependence edge. Duplicate (Use, Pred)
  /// pairs are ignored.
  void addImplicitEdge(TraceIdx Use, TraceIdx Pred, bool Strong);

  const std::vector<ImplicitEdge> &implicitEdges() const { return Edges; }

  /// Predicate instances that \p Use implicitly depends on.
  std::vector<TraceIdx> implicitPredsOf(TraceIdx Use) const;

  /// Computes the backward closure (dynamic slice) from \p Seeds.
  /// \param Depth if non-null, receives per-instance dependence distance
  ///        (edge count from the nearest seed); untouched entries are
  ///        UINT32_MAX. Used by the confidence ranking.
  std::vector<bool> backwardClosure(const std::vector<TraceIdx> &Seeds,
                                    const ClosureOptions &Opts,
                                    std::vector<uint32_t> *Depth = nullptr) const;

  /// Computes the forward closure from \p Seeds: every instance that
  /// (transitively) depends on a seed. Used to derive the paper's OS
  /// (failure-inducing chain) as forward(root cause) ∩ backward(failure).
  std::vector<bool> forwardClosure(const std::vector<TraceIdx> &Seeds,
                                   const ClosureOptions &Opts) const;

  /// Counts unique statements and instances among \p Member.
  SliceStats stats(const std::vector<bool> &Member) const;

private:
  /// Lazily builds the forward adjacency (instance -> dependents).
  void buildForwardIndex(const ClosureOptions &Opts) const;

  const interp::ExecutionTrace &Trace;
  std::vector<ImplicitEdge> Edges;

  struct ForwardIndex {
    ClosureOptions Opts;
    size_t EdgeCountWhenBuilt = 0;
    std::vector<std::vector<TraceIdx>> Dependents;
    bool Valid = false;
  };
  mutable ForwardIndex Fwd;
};

} // namespace ddg
} // namespace eoe

#endif // EOE_DDG_DEPGRAPH_H
