//===-- ddg/DepGraph.cpp - Dynamic dependence graphs -------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "ddg/DepGraph.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

using namespace eoe;
using namespace eoe::ddg;
using namespace eoe::interp;

void DepGraph::addImplicitEdge(TraceIdx Use, TraceIdx Pred, bool Strong) {
  for (ImplicitEdge &E : Edges) {
    if (E.Use == Use && E.Pred == Pred) {
      E.Strong = E.Strong || Strong;
      return;
    }
  }
  Edges.push_back({Use, Pred, Strong});
  Fwd.Valid = false;
}

std::vector<TraceIdx> DepGraph::implicitPredsOf(TraceIdx Use) const {
  std::vector<TraceIdx> Out;
  for (const ImplicitEdge &E : Edges)
    if (E.Use == Use)
      Out.push_back(E.Pred);
  return Out;
}

std::vector<bool>
DepGraph::backwardClosure(const std::vector<TraceIdx> &Seeds,
                          const ClosureOptions &Opts,
                          std::vector<uint32_t> *Depth) const {
  std::vector<bool> Member(Trace.size(), false);
  if (Depth)
    Depth->assign(Trace.size(), std::numeric_limits<uint32_t>::max());

  std::deque<TraceIdx> Work;
  for (TraceIdx Seed : Seeds) {
    if (Seed == InvalidId || Member[Seed])
      continue;
    Member[Seed] = true;
    if (Depth)
      (*Depth)[Seed] = 0;
    Work.push_back(Seed);
  }

  auto Visit = [&](TraceIdx From, TraceIdx To) {
    if (To == InvalidId || Member[To])
      return;
    Member[To] = true;
    if (Depth)
      (*Depth)[To] = (*Depth)[From] + 1;
    Work.push_back(To);
  };

  while (!Work.empty()) {
    TraceIdx I = Work.front();
    Work.pop_front();
    const StepRecord &Step = Trace.step(I);
    if (Opts.Data)
      for (const UseRecord &Use : Step.Uses)
        Visit(I, Use.Def);
    if (Opts.Control)
      Visit(I, Step.CdParent);
    if (Opts.Implicit)
      for (const ImplicitEdge &E : Edges)
        if (E.Use == I)
          Visit(I, E.Pred);
  }
  return Member;
}

void DepGraph::buildForwardIndex(const ClosureOptions &Opts) const {
  if (Fwd.Valid && Fwd.Opts.Data == Opts.Data &&
      Fwd.Opts.Control == Opts.Control && Fwd.Opts.Implicit == Opts.Implicit &&
      Fwd.EdgeCountWhenBuilt == Edges.size())
    return;
  Fwd.Opts = Opts;
  Fwd.EdgeCountWhenBuilt = Edges.size();
  Fwd.Dependents.assign(Trace.size(), {});
  for (TraceIdx I = 0; I < Trace.size(); ++I) {
    const StepRecord &Step = Trace.step(I);
    if (Opts.Data)
      for (const UseRecord &Use : Step.Uses)
        if (isValidId(Use.Def))
          Fwd.Dependents[Use.Def].push_back(I);
    if (Opts.Control && isValidId(Step.CdParent))
      Fwd.Dependents[Step.CdParent].push_back(I);
  }
  if (Opts.Implicit)
    for (const ImplicitEdge &E : Edges)
      Fwd.Dependents[E.Pred].push_back(E.Use);
  Fwd.Valid = true;
}

std::vector<bool> DepGraph::forwardClosure(const std::vector<TraceIdx> &Seeds,
                                           const ClosureOptions &Opts) const {
  buildForwardIndex(Opts);
  std::vector<bool> Member(Trace.size(), false);
  std::deque<TraceIdx> Work;
  for (TraceIdx Seed : Seeds) {
    if (Seed == InvalidId || Member[Seed])
      continue;
    Member[Seed] = true;
    Work.push_back(Seed);
  }
  while (!Work.empty()) {
    TraceIdx I = Work.front();
    Work.pop_front();
    for (TraceIdx Dep : Fwd.Dependents[I]) {
      if (Member[Dep])
        continue;
      Member[Dep] = true;
      Work.push_back(Dep);
    }
  }
  return Member;
}

SliceStats DepGraph::stats(const std::vector<bool> &Member) const {
  SliceStats S;
  std::set<StmtId> Unique;
  for (TraceIdx I = 0; I < Member.size(); ++I) {
    if (!Member[I])
      continue;
    ++S.DynamicInstances;
    Unique.insert(Trace.step(I).Stmt);
  }
  S.StaticStmts = Unique.size();
  return S;
}
