//===-- align/RegionTree.h - Execution regions -------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The region decomposition of an execution (the paper's Definition 3):
/// a statement execution s and the statement executions control dependent
/// on s form a region. Because the interpreter records every instance's
/// dynamic control-dependence parent, the region structure is exactly the
/// forest induced by CdParent; each loop iteration nests inside the
/// previous iteration's region, and callee instances nest inside their
/// call statement's region.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_ALIGN_REGIONTREE_H
#define EOE_ALIGN_REGIONTREE_H

#include "interp/Trace.h"
#include "support/Ids.h"

#include <vector>

namespace eoe {
namespace align {

/// The region forest of one execution trace. Regions are identified by
/// their head instance (the trace index of the statement execution that
/// heads them); the virtual whole-execution region is InvalidId.
class RegionTree {
public:
  explicit RegionTree(const interp::ExecutionTrace &Trace);

  const interp::ExecutionTrace &trace() const { return Trace; }

  /// Head of the region immediately surrounding \p Node (the paper's
  /// Region(s)); InvalidId when \p Node is a top-level instance.
  TraceIdx parent(TraceIdx Node) const { return Trace.step(Node).CdParent; }

  /// Direct sub-instances of the region headed by \p Head in execution
  /// order; pass InvalidId for the virtual whole-execution region.
  const std::vector<TraceIdx> &children(TraceIdx Head) const;

  /// True if \p Node lies in the region headed by \p Head, including the
  /// head itself; every node is in the virtual region (Head == InvalidId).
  bool inRegion(TraceIdx Node, TraceIdx Head) const;

  /// Number of nodes in the region headed by \p Head (including the head).
  size_t regionSize(TraceIdx Head) const;

  /// Depth of \p Node in the forest (top-level instances have depth 0).
  uint32_t depth(TraceIdx Node) const { return Depth[Node]; }

private:
  const interp::ExecutionTrace &Trace;
  std::vector<std::vector<TraceIdx>> Children; // per node
  std::vector<TraceIdx> Roots;
  /// DFS intervals for O(1) subtree membership tests.
  std::vector<uint32_t> Enter;
  std::vector<uint32_t> Exit;
  std::vector<uint32_t> Depth;
};

} // namespace align
} // namespace eoe

#endif // EOE_ALIGN_REGIONTREE_H
