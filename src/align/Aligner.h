//===-- align/Aligner.h - Execution alignment (Algorithm 1) ------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Region-based execution alignment: the paper's Algorithm 1. Given an
/// original execution E, a switched execution E' (same program, same
/// input, one predicate instance's outcome negated), and a point u in E,
/// the aligner finds the point in E' that corresponds to u, or reports
/// that no such point exists and why.
///
/// Key invariant exploited: E and E' are byte-identical up to the switch
/// point, so the switched instance and everything before it (including
/// every region enclosing the switched predicate) have equal trace
/// indices in both executions. Below the common ancestor region, regions
/// are matched positionally, sibling by sibling, comparing static
/// statements and branch outcomes exactly as the paper describes (with
/// single-entry-multiple-exit regions failing the walk when the switched
/// run exits a region early -- the paper's Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_ALIGN_ALIGNER_H
#define EOE_ALIGN_ALIGNER_H

#include "align/RegionTree.h"
#include "interp/Trace.h"
#include "support/Stats.h"

#include <optional>

namespace eoe {
namespace align {

/// Why an alignment query failed to find a corresponding point.
enum class AlignFailure {
  None,
  /// The switched run left the enclosing region before reaching the
  /// sibling subregion that contains u (Figure 3's break case).
  RegionEndedEarly,
  /// A predicate on the path to u took a different branch in the
  /// switched run (Algorithm 1 line 23).
  BranchDiverged,
  /// Lockstep siblings disagree on their static statement -- control
  /// flow reconverged differently; treated as no-match.
  StaticMismatch,
  /// The switched run never reached the predicate (cannot happen for
  /// well-formed queries; reported defensively, e.g. after a step-limit
  /// abort before the switch point).
  SwitchNotApplied
};

/// Result of one alignment query.
struct AlignResult {
  /// The instance in E' corresponding to u; InvalidId when not found.
  TraceIdx Matched = InvalidId;
  AlignFailure Why = AlignFailure::None;

  bool found() const { return Matched != InvalidId; }
};

/// Aligns a switched execution against its original.
class ExecutionAligner {
public:
  /// Both traces must outlive the aligner. \p Switched should carry a
  /// SwitchedStep (the flipped predicate instance); aligning two
  /// identical executions (no switch) degenerates to the identity.
  /// When \p Stats is given, queries record their outcome mix and the
  /// number of region-tree siblings walked (align.queries, align.matched,
  /// align.no_match.*, align.regions_walked, align.prefix_hits).
  ///
  /// \p SharedOriginalTree, when non-null, must be the RegionTree of
  /// \p Original and must outlive the aligner; the aligner then skips
  /// rebuilding it. The original trace's tree is identical across every
  /// switched run verified against it, so the verifier builds it once and
  /// shares it -- halving per-switched-run alignment setup.
  ExecutionAligner(const interp::ExecutionTrace &Original,
                   const interp::ExecutionTrace &Switched,
                   support::StatsRegistry *Stats = nullptr,
                   const RegionTree *SharedOriginalTree = nullptr);

  /// Convenience overload for callers that already hold \p Original's
  /// RegionTree: passing the tree by reference makes the sharing
  /// mandatory (no silently rebuilding it on a typo'd null) and keeps
  /// the stats sink optional.
  ExecutionAligner(const interp::ExecutionTrace &Original,
                   const interp::ExecutionTrace &Switched,
                   const RegionTree &SharedOriginalTree,
                   support::StatsRegistry *Stats = nullptr)
      : ExecutionAligner(Original, Switched, Stats, &SharedOriginalTree) {}

  // TreeE may point into OwnedTreeE, so the aligner must stay put.
  ExecutionAligner(const ExecutionAligner &) = delete;
  ExecutionAligner &operator=(const ExecutionAligner &) = delete;

  /// Finds the point in the switched run corresponding to instance \p U
  /// of the original run. \p U may be any instance (before or after the
  /// switch point).
  AlignResult match(TraceIdx U) const;

  const RegionTree &originalTree() const { return *TreeE; }
  const RegionTree &switchedTree() const { return TreeEP; }

  /// The switched predicate instance (equal index in both runs);
  /// InvalidId when the switched run carries no switch.
  TraceIdx switchPoint() const { return Switch; }

private:
  AlignResult matchImpl(TraceIdx U) const;
  AlignResult matchInsideRegion(TraceIdx R, TraceIdx U, TraceIdx RPrime) const;

  const interp::ExecutionTrace &E;
  const interp::ExecutionTrace &EP;
  /// Engaged only when the original tree is not shared.
  std::optional<RegionTree> OwnedTreeE;
  /// The original run's region tree: &*OwnedTreeE or the shared one.
  const RegionTree *TreeE;
  RegionTree TreeEP;
  TraceIdx Switch;

  /// Metric handles; all null on unobserved aligners.
  support::StatCounter *CQueries = nullptr;
  support::StatCounter *CMatched = nullptr;
  support::StatCounter *CPrefixHits = nullptr;
  support::StatCounter *CRegionsWalked = nullptr;
  support::StatCounter *CFailEndedEarly = nullptr;
  support::StatCounter *CFailBranchDiverged = nullptr;
  support::StatCounter *CFailStaticMismatch = nullptr;
  support::StatCounter *CFailSwitchNotApplied = nullptr;
};

} // namespace align
} // namespace eoe

#endif // EOE_ALIGN_ALIGNER_H
