//===-- align/Aligner.cpp - Execution alignment (Algorithm 1) ----------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "align/Aligner.h"

#include <cassert>

using namespace eoe;
using namespace eoe::align;
using namespace eoe::interp;

ExecutionAligner::ExecutionAligner(const ExecutionTrace &Original,
                                   const ExecutionTrace &Switched,
                                   support::StatsRegistry *Stats,
                                   const RegionTree *SharedOriginalTree)
    : E(Original), EP(Switched), TreeEP(Switched),
      Switch(Switched.SwitchedStep) {
  if (SharedOriginalTree) {
    TreeE = SharedOriginalTree;
  } else {
    OwnedTreeE.emplace(Original);
    TreeE = &*OwnedTreeE;
  }
  if (Stats) {
    Stats->counter("align.aligners").add();
    CQueries = &Stats->counter("align.queries");
    CMatched = &Stats->counter("align.matched");
    CPrefixHits = &Stats->counter("align.prefix_hits");
    CRegionsWalked = &Stats->counter("align.regions_walked");
    CFailEndedEarly = &Stats->counter("align.no_match.region_ended_early");
    CFailBranchDiverged = &Stats->counter("align.no_match.branch_diverged");
    CFailStaticMismatch = &Stats->counter("align.no_match.static_mismatch");
    CFailSwitchNotApplied =
        &Stats->counter("align.no_match.switch_not_applied");
  }
}

AlignResult ExecutionAligner::match(TraceIdx U) const {
  AlignResult R = matchImpl(U);
  if (CQueries) {
    CQueries->add();
    if (R.found()) {
      CMatched->add();
      // The shared-prefix early-out: everything at or before the switch
      // point matches itself without walking any region.
      if (Switch != InvalidId && U <= Switch)
        CPrefixHits->add();
    } else {
      switch (R.Why) {
      case AlignFailure::RegionEndedEarly:
        CFailEndedEarly->add();
        break;
      case AlignFailure::BranchDiverged:
        CFailBranchDiverged->add();
        break;
      case AlignFailure::StaticMismatch:
        CFailStaticMismatch->add();
        break;
      case AlignFailure::SwitchNotApplied:
        CFailSwitchNotApplied->add();
        break;
      case AlignFailure::None:
        break;
      }
    }
  }
  return R;
}

AlignResult ExecutionAligner::matchImpl(TraceIdx U) const {
  assert(U < E.size() && "query point outside the original trace");

  if (Switch == InvalidId) {
    // No switch was applied: the runs are identical; E' may still be
    // shorter if it aborted early.
    if (U < EP.size() && EP.step(U).Stmt == E.step(U).Stmt)
      return {U, AlignFailure::None};
    return {InvalidId, AlignFailure::SwitchNotApplied};
  }

  // Everything up to and including the switch point is shared verbatim.
  if (U <= Switch)
    return {U, AlignFailure::None};

  // Climb from Region(p) until the region contains u (Algorithm 1,
  // Match()). These regions all start before the switch point, so their
  // heads have identical indices in both executions.
  TraceIdx R = TreeE->parent(Switch);
  while (R != InvalidId && !TreeE->inRegion(U, R))
    R = TreeE->parent(R);
  // R == InvalidId denotes the virtual whole-execution region.
  return matchInsideRegion(R, U, R);
}

AlignResult ExecutionAligner::matchInsideRegion(TraceIdx R, TraceIdx U,
                                                TraceIdx RPrime) const {
  // Tallied locally and flushed once per query, so the sibling walk does
  // no atomic work per region.
  struct WalkTally {
    support::StatCounter *C;
    uint64_t N = 0;
    ~WalkTally() {
      if (C && N)
        C->add(N);
    }
  } Walked{CRegionsWalked};

  // Iterative descent: region nesting depth grows with loop iteration
  // counts (each iteration nests inside the previous one), so recursion
  // would overflow the stack on long-running loops.
  while (true) {
    ++Walked.N;
    assert(TreeE->inRegion(U, R) && "region does not contain the query point");
    if (R != InvalidId && U == R)
      return {RPrime, AlignFailure::None};

    const std::vector<TraceIdx> &Cs = TreeE->children(R);
    const std::vector<TraceIdx> &CsP = TreeEP.children(RPrime);

    bool Descended = false;
    for (size_t I = 0; I < Cs.size(); ++I) {
      TraceIdx C = Cs[I];
      // Algorithm 1 lines 16/20: the switched run exhausted this
      // region's subregions before reaching the one that contains u.
      if (I >= CsP.size())
        return {InvalidId, AlignFailure::RegionEndedEarly};
      TraceIdx CP = CsP[I];
      if (E.step(C).Stmt != EP.step(CP).Stmt)
        return {InvalidId, AlignFailure::StaticMismatch};

      if (!TreeE->inRegion(U, C))
        continue; // Keep walking siblings in lockstep.

      if (C == U)
        return {CP, AlignFailure::None}; // Line 22: FirstStmt(r) == u.

      // Line 23: a predicate on the path to u must take the same branch.
      if (E.step(C).isPredicateInstance() &&
          E.step(C).BranchTaken != EP.step(CP).BranchTaken)
        return {InvalidId, AlignFailure::BranchDiverged};

      R = C; // Line 24: descend one region level.
      RPrime = CP;
      Descended = true;
      break;
    }
    if (!Descended) {
      assert(false && "inRegion(U, R) held but no child contains U");
      return {InvalidId, AlignFailure::StaticMismatch};
    }
  }
}
