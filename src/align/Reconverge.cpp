//===-- align/Reconverge.cpp - Reconvergence probe sites ----------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "align/Reconverge.h"

#include <algorithm>

using namespace eoe;
using namespace eoe::align;
using namespace eoe::interp;

static void setBit(std::vector<uint64_t> &Bits, uint64_t I) {
  Bits[I >> 6] |= 1ull << (I & 63);
}

ReconvergePlan eoe::align::buildReconvergePlan(
    const ExecutionTrace &E, const RegionTree &Tree,
    std::vector<std::shared_ptr<const Checkpoint>> Snapshots) {
  ReconvergePlan Plan;
  Plan.Original = &E;
  if (E.Exit != ExitReason::Finished || Snapshots.empty())
    return Plan;

  // Keep only snapshots that are genuinely sites of E, ascending, and
  // thin evenly to the cap (the plan pins decoded snapshots in memory).
  std::sort(Snapshots.begin(), Snapshots.end(),
            [](const auto &A, const auto &B) { return A->Index < B->Index; });
  Snapshots.erase(std::remove_if(Snapshots.begin(), Snapshots.end(),
                                 [&](const auto &CP) {
                                   return !CP || CP->Index >= E.size() ||
                                          !CP->Divergence.empty();
                                 }),
                  Snapshots.end());
  if (Snapshots.empty())
    return Plan;
  if (Snapshots.size() > MaxReconvergeSites) {
    std::vector<std::shared_ptr<const Checkpoint>> Thinned;
    size_t Stride =
        (Snapshots.size() + MaxReconvergeSites - 1) / MaxReconvergeSites;
    for (size_t I = 0; I < Snapshots.size(); I += Stride)
      Thinned.push_back(Snapshots[I]);
    Snapshots.swap(Thinned);
  }

  // Mask dimensions come from the snapshots themselves (InstCount is
  // sized to the statement count, GlobalMem to the global frame).
  size_t StmtCount = 0, SlotCount = 0;
  for (const auto &CP : Snapshots) {
    StmtCount = std::max(StmtCount, CP->InstCount.size());
    SlotCount = std::max(SlotCount, CP->GlobalMem.size());
  }
  size_t StmtWords = (StmtCount + 63) / 64;
  size_t SlotWords = (SlotCount + 63) / 64;

  // One backward sweep over E accumulates, for every probe site, which
  // statements execute in the suffix [CP->Index, end) and which global
  // slots the suffix reads. Both masks only grow as the sweep moves
  // earlier, so a site's masks are snapshotted the moment the sweep
  // passes its index. No write-kill tracking: a slot written before its
  // first suffix read is still marked when read later, which only makes
  // the probe stricter, never unsound.
  std::vector<uint64_t> Stmts(StmtWords, 0), Reads(SlotWords, 0);
  Plan.Sites.resize(Snapshots.size());
  size_t Next = Snapshots.size(); // Sites with Index > I, processed count.
  for (size_t I = E.size(); I-- > 0;) {
    const StepRecord &R = E.Steps[I];
    if (R.Stmt < StmtCount)
      setBit(Stmts, R.Stmt);
    for (const UseRecord &U : R.Uses)
      if (U.Loc.isGlobal() && U.Loc.slot() < SlotCount)
        setBit(Reads, U.Loc.slot());
    while (Next > 0 && Snapshots[Next - 1]->Index == I) {
      --Next;
      ReconvergeSite &Site = Plan.Sites[Next];
      Site.CP = Snapshots[Next];
      Site.Stmt = R.Stmt;
      Site.InstanceNo = R.InstanceNo;
      Site.CdParent = Tree.parent(I);
      Site.RegionDepth = static_cast<uint32_t>(Tree.depth(I));
      Site.SuffixStmts = Stmts;
      Site.SuffixReads = Reads;
    }
  }
  // Sites the sweep never reached (defensive: duplicate indices) get no
  // checkpoint; drop them.
  Plan.Sites.erase(std::remove_if(Plan.Sites.begin(), Plan.Sites.end(),
                                  [](const ReconvergeSite &S) { return !S.CP; }),
                   Plan.Sites.end());
  return Plan;
}
