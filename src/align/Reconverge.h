//===-- align/Reconverge.h - Reconvergence probe sites -----------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the interp::ReconvergePlan a switched run probes against: for
/// each retained original-run checkpoint, the site's region identity in
/// the original RegionTree (the paper's Definition 3 region forest) and
/// the relaxed state footprint of the original trace's suffix from
/// there. The footprints are what make the probe fire in practice: a
/// switched run re-enters the original control flow with *some* state
/// divergence left behind (instance counters of statements confined to
/// the switched region, globals the suffix never reads); requiring
/// equality only on what the suffix can observe keeps the comparison
/// exact where it matters and permissive where it cannot.
///
/// Soundness: if the probe's checks pass, every statement the suffix
/// executes reads only state the comparison proved equal, so by
/// induction over the remaining steps the continuation is identical to
/// the original run's -- splicing the original suffix is byte-for-byte
/// what full interpretation would have produced (see
/// docs/checkpointing.md, "Switched-run reuse").
///
//===----------------------------------------------------------------------===//

#ifndef EOE_ALIGN_RECONVERGE_H
#define EOE_ALIGN_RECONVERGE_H

#include "align/RegionTree.h"
#include "interp/SwitchedRunStore.h"

#include <memory>
#include <vector>

namespace eoe {
namespace align {

/// Builds the probe plan for \p E from the original run's retained
/// snapshots. Snapshots must come from a collection pass over \p E
/// (ascending by Index, Divergence empty); \p Tree must be E's
/// RegionTree. Sites are thinned evenly to interp::MaxReconvergeSites.
/// Returns an empty plan (no sites) when \p E did not finish normally --
/// splicing the suffix of an aborted trace would also splice its abort.
interp::ReconvergePlan buildReconvergePlan(
    const interp::ExecutionTrace &E, const RegionTree &Tree,
    std::vector<std::shared_ptr<const interp::Checkpoint>> Snapshots);

} // namespace align
} // namespace eoe

#endif // EOE_ALIGN_RECONVERGE_H
