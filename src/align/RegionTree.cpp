//===-- align/RegionTree.cpp - Execution regions ------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "align/RegionTree.h"

#include <cassert>

using namespace eoe;
using namespace eoe::align;
using namespace eoe::interp;

RegionTree::RegionTree(const ExecutionTrace &Trace) : Trace(Trace) {
  size_t N = Trace.size();
  Children.assign(N, {});
  Enter.assign(N, 0);
  Exit.assign(N, 0);
  Depth.assign(N, 0);

  for (TraceIdx I = 0; I < N; ++I) {
    TraceIdx P = Trace.step(I).CdParent;
    if (P == InvalidId) {
      Roots.push_back(I);
      continue;
    }
    assert(P < I && "control-dependence parent must precede its children");
    Children[P].push_back(I);
  }

  // Iterative DFS assigning Euler intervals for subtree membership.
  uint32_t Clock = 0;
  std::vector<std::pair<TraceIdx, size_t>> Stack;
  for (TraceIdx Root : Roots) {
    Stack.push_back({Root, 0});
    Enter[Root] = Clock++;
    Depth[Root] = 0;
    while (!Stack.empty()) {
      auto &[Node, NextChild] = Stack.back();
      if (NextChild < Children[Node].size()) {
        TraceIdx C = Children[Node][NextChild++];
        Enter[C] = Clock++;
        Depth[C] = Depth[Node] + 1;
        Stack.push_back({C, 0});
        continue;
      }
      Exit[Node] = Clock++;
      Stack.pop_back();
    }
  }
}

const std::vector<TraceIdx> &RegionTree::children(TraceIdx Head) const {
  if (Head == InvalidId)
    return Roots;
  return Children.at(Head);
}

bool RegionTree::inRegion(TraceIdx Node, TraceIdx Head) const {
  if (Head == InvalidId)
    return true;
  return Enter[Head] <= Enter[Node] && Exit[Node] <= Exit[Head];
}

size_t RegionTree::regionSize(TraceIdx Head) const {
  if (Head == InvalidId)
    return Trace.size();
  // Euler intervals contain two events per node.
  return (Exit[Head] - Enter[Head] + 1) / 2;
}
