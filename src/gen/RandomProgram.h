//===-- gen/RandomProgram.h - Random Siml program generator ----*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of well-formed, terminating, runtime-error-free
/// Siml programs for property testing. Structural guarantees:
///  - every while loop uses a dedicated counter with a literal bound and
///    exactly one increment, so all executions terminate;
///  - array accesses index with `counter % size` (counters are
///    non-negative), so no run can go out of bounds;
///  - division/modulo only by positive literals, so no run can trap;
///  - every program prints at least one value and contains predicates.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_GEN_RANDOMPROGRAM_H
#define EOE_GEN_RANDOMPROGRAM_H

#include "support/RNG.h"

#include <string>
#include <vector>

namespace eoe {
namespace gen {

/// Generates one random program per seed.
class RandomProgramGenerator {
public:
  explicit RandomProgramGenerator(uint64_t Seed) : Rng(Seed) {}

  /// Returns the program source. Deterministic per seed.
  std::string generate() {
    Source.clear();
    Scalars = {"g0", "g1"};
    Counters.clear();
    LoopDepth = 0;

    emit("var g0 = " + std::to_string(Rng.nextInRange(-5, 9)) + ";");
    emit("var g1 = " + std::to_string(Rng.nextInRange(0, 7)) + ";");
    emit("var arr[" + std::to_string(ArraySize) + "];");

    // A helper function exercising calls, params, and returns.
    emit("fn mix(a, b) {");
    emit("if (a > b) {");
    emit("return a - b;");
    emit("}");
    emit("return a + b * 2;");
    emit("}");

    emit("fn main() {");
    size_t NumLocals = 2 + Rng.nextBelow(3);
    for (size_t I = 0; I < NumLocals; ++I) {
      std::string Name = "v" + std::to_string(I);
      emit("var " + Name + " = " + expr(2) + ";");
      Scalars.push_back(Name);
    }
    body(3 + Rng.nextBelow(5), /*Depth=*/0);
    emit("print(" + rvalue() + ");");
    emit("print(g0 + g1);");
    emit("}");
    return Source;
  }

  /// A matching random input vector (for the input() expressions).
  std::vector<int64_t> input(size_t Len = 8) {
    std::vector<int64_t> In;
    for (size_t I = 0; I < Len; ++I)
      In.push_back(Rng.nextInRange(-9, 20));
    return In;
  }

  /// A generated program pair differing in one line: the faulty variant
  /// silences a guard, omitting an update of an observed global -- a
  /// synthetic execution omission error embedded in random surroundings.
  struct OmissionVariant {
    std::string FixedSource;
    std::string FaultySource;
    uint32_t RootCauseLine = 0;
    /// Inputs are all positive so the guard is taken in the fixed run
    /// regardless of where its input() lands in the stream.
    std::vector<int64_t> Input;
  };

  /// Generates a random program with an injected omission fault. The
  /// fault's state lives in dedicated globals the random surroundings
  /// never touch: this keeps the two variants' control flow (and hence
  /// their input-stream consumption) identical outside the skeleton, so
  /// the failure is always a clean wrong *value* at the trailing print --
  /// the paper's problem shape -- rather than an input-position artifact.
  OmissionVariant generateOmission() {
    OmissionVariant Out;

    std::string Body = generate();

    const std::string Anchor = "fn main() {\n";
    size_t Pos = Body.find(Anchor) + Anchor.size();
    std::string FixedGuard = "var omflag = input() > 0;\n";
    std::string FaultyGuard = "var omflag = input() > 9999;\n";
    std::string Skeleton = "if (omflag) {\n"
                           "omsum = omsum + 7;\n"
                           "}\n";
    std::string Globals = "var omsum = 3;\n";
    size_t LastBrace = Body.rfind('}');
    std::string Trailer = "print(omsum);\n";

    auto Assemble = [&](const std::string &Guard) {
      std::string S = Globals + Body.substr(0, Pos) + Guard + Skeleton;
      S += Body.substr(Pos, LastBrace - Pos) + Trailer;
      S += Body.substr(LastBrace);
      return S;
    };
    Out.FixedSource = Assemble(FixedGuard);
    Out.FaultySource = Assemble(FaultyGuard);

    // The guard sits right after the injected global and main's opener.
    Out.RootCauseLine = 2;
    for (size_t I = 0; I < Pos; ++I)
      if (Body[I] == '\n')
        ++Out.RootCauseLine;

    for (size_t I = 0; I < 8; ++I)
      Out.Input.push_back(Rng.nextInRange(1, 20));
    return Out;
  }

  /// Generates a random program with an injected omission no *single*
  /// predicate switch can expose: the silenced guard opens a gate, and
  /// the observed update sits behind both the gate and the guard.
  /// Switching the gate's test alone leaves the inner guard cold (the
  /// observed value never changes), and the inner guard has no instance
  /// in the failing run, so every single-switch verdict is NOT_ID --
  /// only the two-decision chain [if(omgate), if(omflag)] reproduces
  /// the expected output. The natural subject for `eoe-fuzz
  /// --fuzz=chain`.
  OmissionVariant generateChainedOmission() {
    OmissionVariant Out;

    std::string Body = generate();

    const std::string Anchor = "fn main() {\n";
    size_t Pos = Body.find(Anchor) + Anchor.size();
    std::string FixedGuard = "var omflag = input() > 0;\n";
    std::string FaultyGuard = "var omflag = input() > 9999;\n";
    std::string Skeleton = "var omgate = 0;\n"
                           "if (omflag) {\n"
                           "omgate = 1;\n"
                           "}\n"
                           "var omobs = 0;\n"
                           "if (omgate) {\n"
                           "if (omflag) {\n"
                           "omobs = 1;\n"
                           "}\n"
                           "}\n";
    size_t LastBrace = Body.rfind('}');
    std::string Trailer = "print(omobs);\n";

    auto Assemble = [&](const std::string &Guard) {
      std::string S = Body.substr(0, Pos) + Guard + Skeleton;
      S += Body.substr(Pos, LastBrace - Pos) + Trailer;
      S += Body.substr(LastBrace);
      return S;
    };
    Out.FixedSource = Assemble(FixedGuard);
    Out.FaultySource = Assemble(FaultyGuard);

    // The guard is the first line after main's opener.
    Out.RootCauseLine = 1;
    for (size_t I = 0; I < Pos; ++I)
      if (Body[I] == '\n')
        ++Out.RootCauseLine;

    for (size_t I = 0; I < 8; ++I)
      Out.Input.push_back(Rng.nextInRange(1, 20));
    return Out;
  }

private:
  static constexpr int ArraySize = 8;

  void emit(const std::string &Line) {
    Source += Line;
    Source += '\n';
  }

  std::string rvalue() {
    switch (Rng.nextBelow(4)) {
    case 0:
      return std::to_string(Rng.nextInRange(-6, 12));
    case 1:
      return Scalars[Rng.nextBelow(Scalars.size())];
    case 2:
      if (!Counters.empty())
        return "arr[" + Counters[Rng.nextBelow(Counters.size())] + " % " +
               std::to_string(ArraySize) + "]";
      return Scalars[Rng.nextBelow(Scalars.size())];
    default:
      return "input()";
    }
  }

  std::string expr(int Depth) {
    if (Depth <= 0 || Rng.chance(1, 3))
      return rvalue();
    static const char *Ops[] = {"+", "-", "*", "<", "==", ">", "%", "/"};
    std::string Op = Ops[Rng.nextBelow(8)];
    if (Op == "%" || Op == "/")
      return "(" + expr(Depth - 1) + " " + Op + " " +
             std::to_string(Rng.nextInRange(2, 9)) + ")";
    if (Op == "*")
      return "(" + expr(Depth - 1) + " * " +
             std::to_string(Rng.nextInRange(1, 3)) + ")";
    return "(" + expr(Depth - 1) + " " + Op + " " + expr(Depth - 1) + ")";
  }

  void statement(int Depth) {
    switch (Rng.nextBelow(6)) {
    case 0: { // scalar assignment
      emit(Scalars[Rng.nextBelow(Scalars.size())] + " = " + expr(2) + ";");
      return;
    }
    case 1: { // array store (safe index)
      std::string Index =
          Counters.empty()
              ? std::to_string(Rng.nextBelow(ArraySize))
              : Counters[Rng.nextBelow(Counters.size())] + " % " +
                    std::to_string(ArraySize);
      emit("arr[" + Index + "] = " + expr(2) + ";");
      return;
    }
    case 2: { // if/else
      emit("if (" + expr(2) + ") {");
      body(1 + Rng.nextBelow(2), Depth + 1);
      if (Rng.chance(1, 2)) {
        emit("} else {");
        body(1 + Rng.nextBelow(2), Depth + 1);
      }
      emit("}");
      return;
    }
    case 3: { // bounded loop
      if (LoopDepth >= 2) {
        emit("print(" + rvalue() + ");");
        return;
      }
      std::string Counter = "c" + std::to_string(NextCounterId++);
      int Bound = static_cast<int>(1 + Rng.nextBelow(4));
      emit("var " + Counter + " = 0;");
      emit("while (" + Counter + " < " + std::to_string(Bound) + ") {");
      Counters.push_back(Counter);
      ++LoopDepth;
      body(1 + Rng.nextBelow(2), Depth + 1);
      emit(Counter + " = " + Counter + " + 1;");
      emit("}");
      --LoopDepth;
      Counters.pop_back();
      return;
    }
    case 4: // call
      emit(Scalars[Rng.nextBelow(Scalars.size())] + " = mix(" + rvalue() +
           ", " + rvalue() + ");");
      return;
    default:
      emit("print(" + rvalue() + ");");
      return;
    }
  }

  void body(size_t Count, int Depth) {
    for (size_t I = 0; I < Count; ++I)
      statement(Depth);
  }

  RNG Rng;
  std::string Source;
  std::vector<std::string> Scalars;
  std::vector<std::string> Counters;
  int LoopDepth = 0;
  unsigned NextCounterId = 0;
};

} // namespace gen
} // namespace eoe

#endif // EOE_GEN_RANDOMPROGRAM_H
