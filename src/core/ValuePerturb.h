//===-- core/ValuePerturb.h - Value-perturbation verification ----*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension the paper's section 5 proposes for its documented
/// unsoundness: when nested predicates test the same faulty definition,
/// switching one branch outcome at a time cannot expose the implicit
/// dependence (Table 5(b)), but *perturbing the definition's value*
/// can -- at the cost of exploring an integer domain instead of a binary
/// one. This verifier re-executes with candidate values substituted at a
/// definition instance and applies the same alignment machinery to
/// decide whether a later use (or the wrong output) is affected.
///
/// Candidate values typically come from the statement's value profile;
/// the paper notes the expense, which the reexecution counter surfaces.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_CORE_VALUEPERTURB_H
#define EOE_CORE_VALUEPERTURB_H

#include "interp/Interpreter.h"
#include "slicing/OutputVerdicts.h"

#include <vector>

namespace eoe {
namespace core {

/// Verifies definition-to-use implicit dependences by value perturbation.
class ValuePerturbVerifier {
public:
  struct Config {
    uint64_t MaxSteps = 2'000'000;
  };

  struct Result {
    /// True if some candidate value observably changed the use.
    bool DependenceExposed = false;
    /// True if some candidate value produced the expected value at the
    /// wrong output's matching point (the "strong" analogue).
    bool OutputCorrected = false;
    /// The first candidate value that exposed the dependence.
    int64_t WitnessValue = 0;
    /// Re-executions performed (the paper's cost argument).
    size_t Reexecutions = 0;
  };

  /// \p E must be the unperturbed trace of running \p Input.
  ValuePerturbVerifier(const interp::Interpreter &Interp,
                       const interp::ExecutionTrace &E,
                       std::vector<int64_t> Input,
                       const slicing::OutputVerdicts &V, Config C);

  /// Tests whether the use at (\p UseInst, \p UseLoad) depends on the
  /// definition instance \p DefInst, trying each of \p CandidateValues
  /// in turn and stopping at the first witness.
  Result verify(TraceIdx DefInst, TraceIdx UseInst, ExprId UseLoad,
                const std::vector<int64_t> &CandidateValues) const;

private:
  const interp::Interpreter &Interp;
  const interp::ExecutionTrace &E;
  std::vector<int64_t> Input;
  const slicing::OutputVerdicts &V;
  Config C;
};

} // namespace core
} // namespace eoe

#endif // EOE_CORE_VALUEPERTURB_H
