//===-- core/VerifyDep.cpp - Implicit dependence verification -----------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/VerifyDep.h"

#include <cassert>
#include <deque>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;

const char *eoe::core::depVerdictName(DepVerdict V) {
  switch (V) {
  case DepVerdict::StrongImplicit:
    return "STRONG_ID";
  case DepVerdict::Implicit:
    return "ID";
  case DepVerdict::NotImplicit:
    return "NOT_ID";
  }
  return "?";
}

ImplicitDepVerifier::ImplicitDepVerifier(const Interpreter &Interp,
                                         const ExecutionTrace &E,
                                         std::vector<int64_t> Input,
                                         const slicing::OutputVerdicts &V,
                                         Config C)
    : Interp(Interp), E(E), Input(std::move(Input)), V(V), C(C) {}

const ImplicitDepVerifier::SwitchedRun &
ImplicitDepVerifier::switchedRunFor(TraceIdx PredInst) {
  auto It = Runs.find(PredInst);
  if (It != Runs.end())
    return *It->second;

  const StepRecord &P = E.step(PredInst);
  assert(P.isPredicateInstance() && "can only switch predicates");
  SwitchSpec Spec{P.Stmt, P.InstanceNo};

  auto Run = std::make_unique<SwitchedRun>();
  Run->Trace = Interp.runSwitched(Input, Spec, C.MaxSteps);
  ++Reexecutions;
  Run->Aligner = std::make_unique<align::ExecutionAligner>(E, Run->Trace);
  return *Runs.emplace(PredInst, std::move(Run)).first->second;
}

const ExecutionTrace *
ImplicitDepVerifier::switchedRun(TraceIdx PredInst) const {
  auto It = Runs.find(PredInst);
  return It == Runs.end() ? nullptr : &It->second->Trace;
}

DepVerdict ImplicitDepVerifier::verify(TraceIdx PredInst, TraceIdx UseInst,
                                       ExprId UseLoad) {
  auto Key = std::make_tuple(PredInst, UseInst, UseLoad);
  auto Cached = VerdictCache.find(Key);
  if (Cached != VerdictCache.end())
    return Cached->second;
  ++Verifications;

  const SwitchedRun &Run = switchedRunFor(PredInst);
  const ExecutionTrace &EP = Run.Trace;
  const align::ExecutionAligner &A = *Run.Aligner;

  DepVerdict Verdict = DepVerdict::NotImplicit;
  do {
    if (EP.SwitchedStep == InvalidId)
      break; // Defensive: the switch was never reached.

    // The paper's timer policy: a switched run that exhausts its budget
    // (or crashes) "aggressively concludes the verification fails and
    // thus there is no dependence". Without this, a truncated trace
    // would read as a disappeared use and over-report dependences.
    if (EP.Exit != ExitReason::Finished)
      break;

    // Lines 27-28: if the switched run produces the expected value at the
    // point matching the wrong output, the dependence is strong. (The
    // pseudocode returns STRONG_ID on the output evidence alone; we
    // follow it, noting it subsumes Definition 4's condition (ii).)
    const OutputEvent &Wrong = E.Outputs.at(V.WrongOutput);
    align::AlignResult OMatch = A.match(Wrong.Step);
    if (OMatch.found()) {
      for (const OutputEvent &EPrimeEvent : EP.Outputs) {
        if (EPrimeEvent.Step != OMatch.Matched ||
            EPrimeEvent.ArgNo != Wrong.ArgNo)
          continue;
        if (EPrimeEvent.Value == V.ExpectedValue)
          Verdict = DepVerdict::StrongImplicit;
        break;
      }
      if (Verdict == DepVerdict::StrongImplicit)
        break;
    }

    // Lines 29-30: u disappears when the predicate is switched => the
    // switch affected u (Definition 2 condition (i)).
    align::AlignResult UMatch = A.match(UseInst);
    if (!UMatch.found()) {
      Verdict = DepVerdict::Implicit;
      break;
    }

    // Lines 31-35: u's match exists; the dependence holds iff the value
    // it reads now comes from inside the switched predicate's region
    // (the edge-based check).
    const UseRecord *MatchedUse = nullptr;
    for (const UseRecord &Use : EP.step(UMatch.Matched).Uses) {
      if (Use.LoadExpr == UseLoad) {
        MatchedUse = &Use;
        break;
      }
    }
    if (!MatchedUse) {
      // The load itself vanished (e.g. short-circuit took another path):
      // the switch visibly altered u's evaluation.
      Verdict = DepVerdict::Implicit;
      break;
    }
    if (C.UsePathCheck) {
      // Definition 2(ii) verbatim: an explicit dependence path between
      // p' and u' in the switched run.
      SwitchedRun &MutRun = *Runs.find(PredInst)->second;
      if (!MutRun.ReachableBuilt) {
        // Forward flood over data and control edges from the switched
        // instance. Edges can point forward in index space (call/return),
        // so iterate a worklist over a prebuilt dependents index.
        std::vector<std::vector<TraceIdx>> Dependents(EP.size());
        for (TraceIdx I = 0; I < EP.size(); ++I) {
          for (const UseRecord &U : EP.step(I).Uses)
            if (U.Def != InvalidId)
              Dependents[U.Def].push_back(I);
          if (EP.step(I).CdParent != InvalidId)
            Dependents[EP.step(I).CdParent].push_back(I);
        }
        MutRun.ReachableFromSwitch.assign(EP.size(), false);
        std::deque<TraceIdx> Flood{EP.SwitchedStep};
        MutRun.ReachableFromSwitch[EP.SwitchedStep] = true;
        while (!Flood.empty()) {
          TraceIdx I = Flood.front();
          Flood.pop_front();
          for (TraceIdx D : Dependents[I]) {
            if (!MutRun.ReachableFromSwitch[D]) {
              MutRun.ReachableFromSwitch[D] = true;
              Flood.push_back(D);
            }
          }
        }
        MutRun.ReachableBuilt = true;
      }
      if (MutRun.ReachableFromSwitch[UMatch.Matched])
        Verdict = DepVerdict::Implicit;
      break;
    }
    if (MatchedUse->Def != InvalidId &&
        A.switchedTree().inRegion(MatchedUse->Def, EP.SwitchedStep))
      Verdict = DepVerdict::Implicit;
  } while (false);

  VerdictCache.emplace(Key, Verdict);
  return Verdict;
}
