//===-- core/VerifyDep.cpp - Implicit dependence verification -----------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/VerifyDep.h"

#include "align/Reconverge.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <set>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;

const char *eoe::core::depVerdictName(DepVerdict V) {
  switch (V) {
  case DepVerdict::StrongImplicit:
    return "STRONG_ID";
  case DepVerdict::Implicit:
    return "ID";
  case DepVerdict::NotImplicit:
    return "NOT_ID";
  }
  return "?";
}

ImplicitDepVerifier::ImplicitDepVerifier(const Interpreter &Interp,
                                         const ExecutionTrace &E,
                                         std::vector<int64_t> Input,
                                         const slicing::OutputVerdicts &V,
                                         Config C)
    : Interp(Interp), E(E), Input(std::move(Input)), V(V), C(C) {
  Reg = this->C.Stats ? this->C.Stats : &OwnStats;
  CVerifications = &Reg->counter("verify.verifications");
  CReexecutions = &Reg->counter("verify.reexecutions");
  CVerdictCacheHits = &Reg->counter("verify.verdict_cache_hits");
  CVerdictCacheMisses = &Reg->counter("verify.verdict_cache_misses");
  CVerdictStrong = &Reg->counter("verify.verdict.strong");
  CVerdictImplicit = &Reg->counter("verify.verdict.implicit");
  CVerdictNot = &Reg->counter("verify.verdict.not_implicit");
  CReexecAborts = &Reg->counter("verify.reexec_aborts");
  // Registered even with checkpointing off, so the eoe-stats-v1 surface
  // always carries the verify.ckpt.* keys (CheckObservability asserts
  // their presence).
  CCkptHits = &Reg->counter("verify.ckpt.hits");
  CCkptMisses = &Reg->counter("verify.ckpt.misses");
  CCkptStored = &Reg->counter("verify.ckpt.stored");
  CCkptBytes = &Reg->counter("verify.ckpt.bytes");
  CCkptEvictions = &Reg->counter("verify.ckpt.evictions");
  CCkptSkippedDirty = &Reg->counter("verify.ckpt.skipped_dirty");
  CCkptDeltas = &Reg->counter("verify.ckpt.delta_encoded");
  CCkptKeyframes = &Reg->counter("verify.ckpt.keyframes");
  CCkptEncodedBytes = &Reg->counter("verify.ckpt.encoded_bytes");
  CCkptRawBytes = &Reg->counter("verify.ckpt.raw_bytes");
  CCkptSharedHits = &Reg->counter("verify.ckpt.shared_hits");
  CCkptAutoStride = &Reg->counter("verify.ckpt.auto_stride");
  CCkptDiskHits = &Reg->counter("verify.ckpt.disk_hits");
  // Switched-run reuse. interpreted_steps is recorded unconditionally
  // (cache off included), so the bench's work-count comparison reads the
  // same key on both sides.
  // Multi-switch chain verification (docs/chains.md). Registered eagerly
  // so the eoe-stats-v1 surface always carries the verify.chain.* keys,
  // chains enabled or not.
  CChainRuns = &Reg->counter("verify.chain.runs");
  CChainPrefixHits = &Reg->counter("verify.chain.prefix_hits");
  CChainExtSteps = &Reg->counter("verify.chain.extended_steps");
  HChainDepth = &Reg->histogram("verify.chain.depth_hist");
  CSwHits = &Reg->counter("verify.ckpt.switched_hits");
  CSwPromotions = &Reg->counter("verify.ckpt.switched_promotions");
  CSwSplicedSuffix = &Reg->counter("verify.ckpt.switched_spliced_suffix_steps");
  CSwProbes = &Reg->counter("verify.ckpt.switched_reconverge_probes");
  CSwInterpreted = &Reg->counter("verify.ckpt.switched_interpreted_steps");
  // Registered eagerly (the disk store bumps them through the registry by
  // name) so --stats always shows the full verify.ckpt.* key set and the
  // determinism allowlist can assert them at any thread count.
  Reg->counter("verify.ckpt.disk_loads");
  Reg->counter("verify.ckpt.disk_rejects");
  Reg->counter("verify.ckpt.disk_write_bytes");
  TReexec = &Reg->timer("verify.reexec_time");
  TCkptRestore = &Reg->timer("verify.ckpt.restore_time");
  TCkptCollect = &Reg->timer("verify.ckpt.collect_time");
  TLatStrong = &Reg->timer("verify.latency.strong");
  TLatImplicit = &Reg->timer("verify.latency.implicit");
  TLatNot = &Reg->timer("verify.latency.not_implicit");
  HReexecSteps = &Reg->histogram("verify.reexec_steps");
  Arena.bindStats(this->C.Stats);
  if (this->C.CheckpointStride != CheckpointsOff) {
    CheckpointStore::Options SO;
    SO.BudgetBytes = this->C.CheckpointMemBytes;
    SO.DeltaEncode = this->C.CheckpointDelta;
    SO.KeyframeInterval = this->C.CheckpointKeyframeEvery;
    Ckpts = std::make_unique<CheckpointStore>(SO);
  }
}

ImplicitDepVerifier::~ImplicitDepVerifier() = default;

unsigned ImplicitDepVerifier::effectiveThreads() const {
  return C.Threads == 0 ? support::ThreadPool::defaultThreadCount()
                        : C.Threads;
}

support::ThreadPool *ImplicitDepVerifier::pool() {
  unsigned Threads = effectiveThreads();
  if (Threads <= 1)
    return nullptr;
  std::call_once(PoolOnce, [&] {
    Pool = std::make_unique<support::ThreadPool>(Threads);
  });
  return Pool.get();
}

ImplicitDepVerifier::SwitchedRun &
ImplicitDepVerifier::cellFor(TraceIdx PredInst) {
  std::lock_guard<std::mutex> Lock(RunsMutex);
  std::unique_ptr<SwitchedRun> &Slot = Runs[PredInst];
  if (!Slot)
    Slot = std::make_unique<SwitchedRun>();
  return *Slot;
}

ImplicitDepVerifier::SwitchedRun &
ImplicitDepVerifier::chainCellFor(const std::vector<SwitchDecision> &Chain) {
  std::lock_guard<std::mutex> Lock(RunsMutex);
  std::unique_ptr<SwitchedRun> &Slot = ChainRuns[Chain];
  if (!Slot)
    Slot = std::make_unique<SwitchedRun>();
  return *Slot;
}

void ImplicitDepVerifier::computeSwitchedRun(TraceIdx PredInst,
                                             SwitchedRun &Run) {
  const StepRecord &P = E.step(PredInst);
  assert(P.isPredicateInstance() && "can only switch predicates");
  SwitchSpec Spec{P.Stmt, P.InstanceNo};

  Interpreter::Options Opts;
  Opts.MaxSteps = C.MaxSteps;
  Opts.Switch = Spec;

  // Resume from the nearest dominating snapshot when one exists: the
  // switched run is byte-identical to the original up to the switch
  // point, so any checkpoint at or before PredInst is a valid start.
  std::shared_ptr<const Checkpoint> CP;
  if (Ckpts) {
    CP = Ckpts->nearest(PredInst);
    if (CP) {
      CCkptHits->add();
      std::lock_guard<std::mutex> Lock(SharedIdxMutex);
      if (SharedIdx.count(CP->Index))
        CCkptSharedHits->add();
      if (DiskIdx.count(CP->Index))
        CCkptDiskHits->add();
    } else {
      CCkptMisses->add();
    }
  }

  // Switched-run reuse (published by maybeCollectCheckpoints). A
  // divergence-keyed snapshot wins over the plain prefix snapshot only
  // when strictly deeper; its splice source is then the capturing
  // *switched* run's trimmed trace, not E.
  SwitchedReuse *SR = SwitchedPub.load(std::memory_order_acquire);
  std::vector<SwitchDecision> DivKey{
      {P.Stmt, P.InstanceNo, /*Perturb=*/false, /*Value=*/0}};
  std::shared_ptr<const ExecutionTrace> SwPrefix;
  if (SR && SR->StoreOn) {
    if (std::optional<SwitchedRunStore::Hit> H =
            C.SwitchedRuns->lookup(SR->Key, DivKey)) {
      if (!CP || H->CP->Index > CP->Index) {
        CP = H->CP;
        SwPrefix = H->Prefix;
        CSwHits->add();
      }
    }
  }
  SwitchedCapturePlan Capture;
  const bool DoCapture = SR && SR->StoreOn && !SwPrefix;
  if (SR) {
    Opts.Reconverge = &SR->Plan;
    if (DoCapture) {
      // Scale the capture spacing down for short traces (a pure function
      // of E, so every thread computes the same plan): the default 2048
      // would never fire on a trace a few hundred steps long.
      Capture.SpacingSteps = std::min<uint64_t>(
          Capture.SpacingSteps, std::max<uint64_t>(16, E.size() / 4));
      Opts.SwitchedCapture = &Capture;
    }
  }

  {
    support::EventTracer::Span Reexec(C.Tracer, "reexec", "interp");
    support::ScopedTimer Timed(TReexec);
    ExecContextPool::Lease Ctx = Arena.acquire();
    if (CP) {
      support::ScopedTimer Restore(TCkptRestore);
      Run.Trace = Interp.runFrom(*CP, SwPrefix ? *SwPrefix : E, Input, Opts,
                                 *Ctx);
    } else {
      Run.Trace = Interp.run(Input, Opts, *Ctx);
    }
  }
  CReexecutions->add();
  HReexecSteps->record(Run.Trace.size());
  if (Run.Trace.Exit != ExitReason::Finished)
    CReexecAborts->add();

  // Work accounting: what this run actually interpreted, net of the
  // spliced prefix and the spliced reconvergence suffix. Recorded with
  // the cache off too, so the ratio between configurations is a pure
  // counter comparison.
  const TraceIdx PrefixLen = CP ? CP->Index : 0;
  CSwInterpreted->add(Run.Trace.size() - PrefixLen - Run.Trace.SplicedSuffix);
  if (SR) {
    CSwProbes->add(Run.Trace.ReconvergeProbes);
    CSwSplicedSuffix->add(Run.Trace.SplicedSuffix);
  }

  // Promote this run's divergence-keyed snapshots: trim the trace to the
  // deepest snapshot (the part a resume can splice) and stage the bundle.
  // Admission happens at the store's next seal(), in canonical order, so
  // the sealed set does not depend on which run stages first.
  if (DoCapture && !Capture.Captured.empty()) {
    const std::shared_ptr<const Checkpoint> &Deep = Capture.Captured.back();
    auto Prefix = std::make_shared<ExecutionTrace>();
    Prefix->Steps.assign(Run.Trace.Steps.begin(),
                         Run.Trace.Steps.begin() + Deep->Index);
    Prefix->Outputs.assign(Run.Trace.Outputs.begin(),
                           Run.Trace.Outputs.begin() + Deep->OutputCount);
    Prefix->SwitchedStep = Run.Trace.SwitchedStep;
    if (Run.Trace.FirstInputStep != InvalidId &&
        Run.Trace.FirstInputStep < Deep->Index)
      Prefix->FirstInputStep = Run.Trace.FirstInputStep;
    SwitchedRunStore::Bundle B;
    B.Key = DivKey;
    B.Prefix = std::move(Prefix);
    B.Snapshots = std::move(Capture.Captured);
    C.SwitchedRuns->stage(SR->Key, std::move(B));
    CSwPromotions->add();
  }
  {
    support::EventTracer::Span Align(C.Tracer, "align", "align");
    std::call_once(OrigTreeOnce,
                   [&] { OrigTree = std::make_unique<align::RegionTree>(E); });
    Run.Aligner = std::make_unique<align::ExecutionAligner>(
        E, Run.Trace, C.Stats, OrigTree.get());
  }
  Run.Ready.store(true, std::memory_order_release);
}

void ImplicitDepVerifier::computeChainRun(TraceIdx BaseInst,
                                          const std::vector<SwitchDecision> &Chain,
                                          SwitchedRun &Run) {
  assert(Chain.size() >= 2 && "single decisions go through the TraceIdx cache");
  assert(E.step(BaseInst).Stmt == Chain.front().Stmt &&
         E.step(BaseInst).InstanceNo == Chain.front().InstanceNo &&
         "BaseInst must be the chain's first decision in the original trace");

  Interpreter::Options Opts;
  Opts.MaxSteps = C.MaxSteps;
  Opts.Decisions = Chain;

  // The chained run is byte-identical to the original up to the first
  // decision's fire point, so any original-run snapshot at or before
  // BaseInst is a valid start.
  std::shared_ptr<const Checkpoint> CP;
  if (Ckpts) {
    CP = Ckpts->nearest(BaseInst);
    if (CP)
      CCkptHits->add();
    else
      CCkptMisses->add();
  }

  // Prefix-keyed reuse: the deepest sealed bundle whose divergence key
  // prefixes the chain wins over the plain prefix snapshot when strictly
  // deeper. Depth-k runs staged bundles under their own chain key, so a
  // sealed depth-k snapshot seeds this depth-k+1 run past the whole
  // shared divergent prefix.
  SwitchedReuse *SR = SwitchedPub.load(std::memory_order_acquire);
  std::shared_ptr<const ExecutionTrace> SwPrefix;
  if (SR && SR->StoreOn) {
    if (std::optional<SwitchedRunStore::Hit> H =
            C.SwitchedRuns->lookup(SR->Key, Chain)) {
      if (!CP || H->CP->Index > CP->Index) {
        CP = H->CP;
        SwPrefix = H->Prefix;
        CChainPrefixHits->add();
      }
    }
  }
  // Re-capture unless the hit already covers the full chain (its key --
  // carried on the snapshot -- has the chain's length): deeper snapshots
  // under this exact key could only duplicate a prior session's bundle.
  const bool Exact = SwPrefix && CP->Divergence.size() == Chain.size();
  SwitchedCapturePlan Capture;
  const bool DoCapture = SR && SR->StoreOn && !Exact;
  if (SR) {
    Opts.Reconverge = &SR->Plan;
    if (DoCapture) {
      Capture.SpacingSteps = std::min<uint64_t>(
          Capture.SpacingSteps, std::max<uint64_t>(16, E.size() / 4));
      Opts.SwitchedCapture = &Capture;
    }
  }

  {
    support::EventTracer::Span Reexec(C.Tracer, "reexec.chain", "interp");
    support::ScopedTimer Timed(TReexec);
    ExecContextPool::Lease Ctx = Arena.acquire();
    if (CP) {
      support::ScopedTimer Restore(TCkptRestore);
      Run.Trace = Interp.runFrom(*CP, SwPrefix ? *SwPrefix : E, Input, Opts,
                                 *Ctx);
    } else {
      Run.Trace = Interp.run(Input, Opts, *Ctx);
    }
  }
  CReexecutions->add();
  CChainRuns->add();
  HChainDepth->record(Chain.size());
  HReexecSteps->record(Run.Trace.size());
  if (Run.Trace.Exit != ExitReason::Finished)
    CReexecAborts->add();

  // Chain-only work accounting: what this run interpreted net of spliced
  // prefix and suffix. Kept out of the single-switch counters so their
  // established semantics (and determinism assertions) are untouched.
  const TraceIdx PrefixLen = CP ? CP->Index : 0;
  CChainExtSteps->add(Run.Trace.size() - PrefixLen - Run.Trace.SplicedSuffix);

  // Promote this run's chain-keyed snapshots for the next depth level.
  // Captures only start once every decision has fired, so each carries
  // the full chain as its divergence key; the guard is defensive (a run
  // that never fired its tail decisions stages nothing).
  if (DoCapture && !Capture.Captured.empty() &&
      Capture.Captured.front()->Divergence == Chain) {
    const std::shared_ptr<const Checkpoint> &Deep = Capture.Captured.back();
    auto Prefix = std::make_shared<ExecutionTrace>();
    Prefix->Steps.assign(Run.Trace.Steps.begin(),
                         Run.Trace.Steps.begin() + Deep->Index);
    Prefix->Outputs.assign(Run.Trace.Outputs.begin(),
                           Run.Trace.Outputs.begin() + Deep->OutputCount);
    Prefix->SwitchedStep = Run.Trace.SwitchedStep;
    if (Run.Trace.FirstInputStep != InvalidId &&
        Run.Trace.FirstInputStep < Deep->Index)
      Prefix->FirstInputStep = Run.Trace.FirstInputStep;
    SwitchedRunStore::Bundle B;
    B.Key = Chain;
    B.Prefix = std::move(Prefix);
    B.Snapshots = std::move(Capture.Captured);
    C.SwitchedRuns->stage(SR->Key, std::move(B));
    CSwPromotions->add();
  }
  {
    support::EventTracer::Span Align(C.Tracer, "align", "align");
    std::call_once(OrigTreeOnce,
                   [&] { OrigTree = std::make_unique<align::RegionTree>(E); });
    Run.Aligner = std::make_unique<align::ExecutionAligner>(E, Run.Trace,
                                                            *OrigTree, C.Stats);
  }
  Run.Ready.store(true, std::memory_order_release);
}

void ImplicitDepVerifier::sealSwitchedStage() {
  if (C.SwitchedRuns)
    C.SwitchedRuns->seal();
}

void ImplicitDepVerifier::maybeCollectCheckpoints(
    const std::vector<TraceIdx> &Candidates) {
  if (!Ckpts || Candidates.empty())
    return;
  std::call_once(CkptOnce, [&] {
    CheckpointPlan Plan;
    Plan.Store = Ckpts.get();
    std::vector<TraceIdx> Sorted(Candidates);
    std::sort(Sorted.begin(), Sorted.end());
    Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());

    // Cross-input sharing: seed the session store with the snapshots
    // earlier sessions promoted for this (program, budget) -- they cover
    // the common pre-input prefix -- and arrange for this session's own
    // input-independent captures to be promoted in turn. Seeded indices
    // are remembered so resumes from them can be attributed
    // (verify.ckpt.shared_hits).
    if (C.CheckpointShare && C.CheckpointShareProgram) {
      Plan.Share = C.CheckpointShare;
      Plan.ShareHash =
          SharedCheckpointStore::hashProgram(*C.CheckpointShareProgram);
      Plan.ShareProgram = C.CheckpointShareProgram;
      Plan.ShareMaxSteps = C.MaxSteps;
      std::vector<TraceIdx> FromDisk = C.CheckpointShare->diskIndicesFor(
          Plan.ShareHash, Plan.ShareProgram, Plan.ShareMaxSteps);
      std::lock_guard<std::mutex> Lock(SharedIdxMutex);
      for (const std::shared_ptr<const Checkpoint> &CP :
           C.CheckpointShare->snapshotsFor(Plan.ShareHash, Plan.ShareProgram,
                                           Plan.ShareMaxSteps)) {
        if (CP->Index > E.size())
          continue; // Defensive: resume() splices E's prefix up to Index.
        Ckpts->insert(CP);
        SharedIdx.insert(CP->Index);
        if (std::binary_search(FromDisk.begin(), FromDisk.end(), CP->Index))
          DiskIdx.insert(CP->Index);
      }
    }

    if (C.CheckpointStride == CheckpointStrideAuto) {
      // Hand the engine every candidate plus the tuning inputs; it
      // estimates the per-snapshot cost from its first capture and thins
      // the sites itself (see CheckpointPlan::AutoBudgetBytes).
      Plan.Sites = Sorted;
      Plan.AutoBudgetBytes = C.CheckpointMemBytes;
      Plan.TraceLength = E.size();
    } else {
      Plan.Sites.reserve(Sorted.size() / C.CheckpointStride + 1);
      for (size_t I = 0; I < Sorted.size(); I += C.CheckpointStride)
        Plan.Sites.push_back(Sorted[I]);
    }

    // Replay the unswitched input once with collection instrumentation.
    // The switched-run budget bounds the pass, so no snapshot can exist
    // past the point where a full-replay switched run would have halted
    // -- that keeps resumed runs byte-identical to full replays even at
    // the step limit.
    Interpreter::Options Opts;
    Opts.MaxSteps = C.MaxSteps;
    Opts.Checkpoints = &Plan;
    {
      support::EventTracer::Span Collect(C.Tracer, "ckpt.collect", "interp");
      support::ScopedTimer Timed(TCkptCollect);
      ExecContextPool::Lease Ctx = Arena.acquire();
      Interp.run(Input, Opts, *Ctx);
    }
    CCkptStored->add(Plan.Collected);
    CCkptBytes->add(Ckpts->bytes());
    CCkptEvictions->add(Ckpts->evictions());
    CCkptSkippedDirty->add(Plan.SkippedDirty);
    CCkptDeltas->add(Ckpts->deltaCount());
    CCkptKeyframes->add(Ckpts->keyframes());
    CCkptEncodedBytes->add(Ckpts->encodedBytes());
    CCkptRawBytes->add(Ckpts->rawBytes());
    if (Plan.AutoStride)
      CCkptAutoStride->add(Plan.AutoStride);

    // Switched-run reuse rides on the collected snapshots: the probe
    // sites are the retained original-run checkpoints (decoded once,
    // thinned to MaxReconvergeSites), and the store key binds staged
    // bundles to this exact (program, input, budget). Published last via
    // release store; concurrent switched runs either see all of it or
    // run plain.
    if (C.SwitchedCacheBytes > 0) {
      std::call_once(OrigTreeOnce, [&] {
        OrigTree = std::make_unique<align::RegionTree>(E);
      });
      auto SR = std::make_unique<SwitchedReuse>();
      SR->Plan = align::buildReconvergePlan(E, *OrigTree,
                                            Ckpts->sample(MaxReconvergeSites));
      if (C.SwitchedRuns && C.SwitchedProgram) {
        SR->StoreOn = true;
        SR->Key.ProgramHash =
            SharedCheckpointStore::hashProgram(*C.SwitchedProgram);
        SR->Key.Program = C.SwitchedProgram;
        SR->Key.InputHash = SwitchedRunStore::hashInput(Input);
        SR->Key.MaxSteps = C.MaxSteps;
      }
      if (!SR->Plan.Sites.empty() || SR->StoreOn) {
        Switched = std::move(SR);
        SwitchedPub.store(Switched.get(), std::memory_order_release);
      }
    }
  });
}

const ImplicitDepVerifier::SwitchedRun &
ImplicitDepVerifier::switchedRunFor(TraceIdx PredInst) {
  SwitchedRun &Run = cellFor(PredInst);
  std::call_once(Run.Computed, [&] { computeSwitchedRun(PredInst, Run); });
  return Run;
}

bool ImplicitDepVerifier::hasSwitchedRun(TraceIdx PredInst) const {
  std::lock_guard<std::mutex> Lock(RunsMutex);
  auto It = Runs.find(PredInst);
  return It != Runs.end() && It->second->Ready.load(std::memory_order_acquire);
}

void ImplicitDepVerifier::prepareSwitchedRuns(
    const std::vector<TraceIdx> &Preds) {
  // Dedup; cached runs need no task at all.
  std::vector<TraceIdx> Todo;
  std::set<TraceIdx> Seen;
  for (TraceIdx P : Preds)
    if (!hasSwitchedRun(P) && Seen.insert(P).second)
      Todo.push_back(P);
  if (Todo.empty())
    return;
  // Dispatch in ascending switch position: with checkpointing on, early
  // tasks touch early snapshots first, keeping the LRU order aligned
  // with the batch; verdicts are order-independent either way.
  std::sort(Todo.begin(), Todo.end());
  Reg->counter("verify.prepare_batches").add();
  Reg->counter("verify.prepared_runs").add(Todo.size());

  support::ThreadPool *TP = pool();
  if (!TP || Todo.size() == 1) {
    for (TraceIdx P : Todo)
      switchedRunFor(P);
    return;
  }
  std::vector<std::function<void()>> Tasks;
  Tasks.reserve(Todo.size());
  for (TraceIdx P : Todo)
    Tasks.push_back([this, P] { switchedRunFor(P); });
  TP->runAll(std::move(Tasks));
}

const ExecutionTrace *
ImplicitDepVerifier::switchedRun(TraceIdx PredInst) const {
  std::lock_guard<std::mutex> Lock(RunsMutex);
  auto It = Runs.find(PredInst);
  if (It == Runs.end() || !It->second->Ready.load(std::memory_order_acquire))
    return nullptr;
  return &It->second->Trace;
}

const std::vector<bool> &
ImplicitDepVerifier::reachableFromSwitch(SwitchedRun &Run) {
  std::call_once(Run.ReachableOnce, [&] {
    const ExecutionTrace &EP = Run.Trace;
    // Forward flood over data and control edges from the switched
    // instance. Edges can point forward in index space (call/return),
    // so iterate a worklist over a prebuilt dependents index.
    std::vector<std::vector<TraceIdx>> Dependents(EP.size());
    for (TraceIdx I = 0; I < EP.size(); ++I) {
      for (const UseRecord &U : EP.step(I).Uses)
        if (U.Def != InvalidId)
          Dependents[U.Def].push_back(I);
      if (EP.step(I).CdParent != InvalidId)
        Dependents[EP.step(I).CdParent].push_back(I);
    }
    Run.ReachableFromSwitch.assign(EP.size(), false);
    std::deque<TraceIdx> Flood{EP.SwitchedStep};
    Run.ReachableFromSwitch[EP.SwitchedStep] = true;
    while (!Flood.empty()) {
      TraceIdx I = Flood.front();
      Flood.pop_front();
      for (TraceIdx D : Dependents[I]) {
        if (!Run.ReachableFromSwitch[D]) {
          Run.ReachableFromSwitch[D] = true;
          Flood.push_back(D);
        }
      }
    }
  });
  return Run.ReachableFromSwitch;
}

DepVerdict ImplicitDepVerifier::verify(TraceIdx PredInst, TraceIdx UseInst,
                                       ExprId UseLoad) {
  auto Key = std::make_tuple(PredInst, UseInst, UseLoad);
  {
    std::lock_guard<std::mutex> Lock(VerdictMutex);
    auto Cached = VerdictCache.find(Key);
    if (Cached != VerdictCache.end()) {
      CVerdictCacheHits->add();
      return Cached->second;
    }
  }
  CVerdictCacheMisses->add();
  support::EventTracer::Span VerifySpan(C.Tracer, "verify", "verify");
  auto LatencyStart = std::chrono::steady_clock::now();

  // Compute outside the verdict lock: the switched-run cache has its own
  // synchronization and the verdict logic only reads immutable state, so
  // concurrent verifications of different keys proceed in parallel. A
  // rare duplicate computation of the same key yields the same verdict
  // (it is a pure function) and is deduplicated at insert below.
  SwitchedRun &MutRun = cellFor(PredInst);
  std::call_once(MutRun.Computed, [&] { computeSwitchedRun(PredInst, MutRun); });
  DepVerdict Verdict = classify(MutRun, UseInst, UseLoad);

  // Per-verdict latency of the uncached computation (Table 4's switched
  // re-execution plus alignment cost, attributed to the outcome).
  uint64_t LatencyNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - LatencyStart)
          .count());

  {
    std::lock_guard<std::mutex> Lock(VerdictMutex);
    auto [It, Inserted] = VerdictCache.emplace(Key, Verdict);
    // Count distinct verifications only, exactly like the serial engine:
    // a racing duplicate keeps the first verdict and is not re-counted.
    if (Inserted) {
      CVerifications->add();
      switch (It->second) {
      case DepVerdict::StrongImplicit:
        CVerdictStrong->add();
        TLatStrong->record(LatencyNs);
        break;
      case DepVerdict::Implicit:
        CVerdictImplicit->add();
        TLatImplicit->record(LatencyNs);
        break;
      case DepVerdict::NotImplicit:
        CVerdictNot->add();
        TLatNot->record(LatencyNs);
        break;
      }
    }
    return It->second;
  }
}

DepVerdict ImplicitDepVerifier::classify(SwitchedRun &MutRun, TraceIdx UseInst,
                                         ExprId UseLoad) {
  const SwitchedRun &Run = MutRun;
  const ExecutionTrace &EP = Run.Trace;
  const align::ExecutionAligner &A = *Run.Aligner;

  DepVerdict Verdict = DepVerdict::NotImplicit;
  do {
    if (EP.SwitchedStep == InvalidId)
      break; // Defensive: the switch was never reached.

    // The paper's timer policy: a switched run that exhausts its budget
    // (or crashes) "aggressively concludes the verification fails and
    // thus there is no dependence". Without this, a truncated trace
    // would read as a disappeared use and over-report dependences.
    if (EP.Exit != ExitReason::Finished)
      break;

    // Lines 27-28: if the switched run produces the expected value at the
    // point matching the wrong output, the dependence is strong. (The
    // pseudocode returns STRONG_ID on the output evidence alone; we
    // follow it, noting it subsumes Definition 4's condition (ii).)
    const OutputEvent &Wrong = E.Outputs.at(V.WrongOutput);
    align::AlignResult OMatch = A.match(Wrong.Step);
    if (OMatch.found()) {
      for (const OutputEvent &EPrimeEvent : EP.Outputs) {
        if (EPrimeEvent.Step != OMatch.Matched ||
            EPrimeEvent.ArgNo != Wrong.ArgNo)
          continue;
        if (EPrimeEvent.Value == V.ExpectedValue)
          Verdict = DepVerdict::StrongImplicit;
        break;
      }
      if (Verdict == DepVerdict::StrongImplicit)
        break;
    }

    // Lines 29-30: u disappears when the predicate is switched => the
    // switch affected u (Definition 2 condition (i)).
    align::AlignResult UMatch = A.match(UseInst);
    if (!UMatch.found()) {
      Verdict = DepVerdict::Implicit;
      break;
    }

    // Lines 31-35: u's match exists; the dependence holds iff the value
    // it reads now comes from inside the switched predicate's region
    // (the edge-based check).
    const UseRecord *MatchedUse = nullptr;
    for (const UseRecord &Use : EP.step(UMatch.Matched).Uses) {
      if (Use.LoadExpr == UseLoad) {
        MatchedUse = &Use;
        break;
      }
    }
    if (!MatchedUse) {
      // The load itself vanished (e.g. short-circuit took another path):
      // the switch visibly altered u's evaluation.
      Verdict = DepVerdict::Implicit;
      break;
    }
    if (C.UsePathCheck) {
      // Definition 2(ii) verbatim: an explicit dependence path between
      // p' and u' in the switched run.
      if (reachableFromSwitch(MutRun)[UMatch.Matched])
        Verdict = DepVerdict::Implicit;
      break;
    }
    if (MatchedUse->Def != InvalidId &&
        A.switchedTree().inRegion(MatchedUse->Def, EP.SwitchedStep))
      Verdict = DepVerdict::Implicit;
  } while (false);
  return Verdict;
}

DepVerdict
ImplicitDepVerifier::verifyChain(TraceIdx BaseInst,
                                 const std::vector<SwitchDecision> &Chain,
                                 TraceIdx UseInst, ExprId UseLoad) {
  support::EventTracer::Span VerifySpan(C.Tracer, "verify.chain", "verify");
  SwitchedRun &Run = chainCellFor(Chain);
  std::call_once(Run.Computed,
                 [&] { computeChainRun(BaseInst, Chain, Run); });
  return classify(Run, UseInst, UseLoad);
}

const ExecutionTrace &
ImplicitDepVerifier::chainTrace(TraceIdx BaseInst,
                                const std::vector<SwitchDecision> &Chain) {
  SwitchedRun &Run = chainCellFor(Chain);
  std::call_once(Run.Computed,
                 [&] { computeChainRun(BaseInst, Chain, Run); });
  return Run.Trace;
}
