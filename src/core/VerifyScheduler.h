//===-- core/VerifyScheduler.h - Batched parallel verification ---*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batched scheduling for implicit-dependence verification. The
/// verifications inside one expansion round of the paper's Algorithm 2
/// -- the candidate set PD(u) of the selected use, and the fan-out set
/// p -> t of the winning predicates -- are mutually independent: each
/// depends only on (program, input, switched predicate instance). The
/// scheduler exploits that:
///
///   1. collect a whole round's verification requests into a batch;
///   2. deduplicate against the verifier's switched-run cache, so one
///      re-execution still serves every use tested against the same
///      predicate instance;
///   3. run the missing switched re-executions and their alignments
///      concurrently on the verifier's thread pool;
///   4. join, then compute the verdicts serially in the original request
///      order against the now-warm cache.
///
/// Step 4 is what makes the parallel engine *deterministic*: verdicts,
/// LocateReport counters, expanded-edge order, and the final IPS are
/// bit-identical to the serial engine at any thread count (see
/// docs/parallelism.md). With no pool configured the scheduler
/// degenerates to the plain serial loop.
///
/// Switched-run snapshot promotion (SwitchedRunStore) composes with the
/// batching: each re-execution's snapshot bundle is only *staged* during
/// the session, and the store's seal() between sessions admits staged
/// bundles in a canonical order -- so the set a later batch can resume
/// from is independent of the concurrent completion order here, keeping
/// the cache-on path as thread-count-invariant as the cache-off path.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_CORE_VERIFYSCHEDULER_H
#define EOE_CORE_VERIFYSCHEDULER_H

#include "core/VerifyDep.h"

#include <vector>

namespace eoe {
namespace core {

/// One VerifyDep(p, u) request: does the use at (UseInst, UseLoad)
/// implicitly depend on predicate instance PredInst?
struct VerifyRequest {
  TraceIdx PredInst = InvalidId;
  TraceIdx UseInst = InvalidId;
  ExprId UseLoad = InvalidId;
};

/// Schedules batches of verification requests onto a verifier.
class VerifyScheduler {
public:
  explicit VerifyScheduler(ImplicitDepVerifier &Verifier)
      : Verifier(Verifier) {}

  /// True when batches actually fan out onto a pool (the verifier is
  /// configured with more than one thread).
  bool parallel() { return Verifier.pool() != nullptr; }

  /// Verifies the whole batch; Out[i] is the verdict for Batch[i].
  /// Re-executions for distinct uncached predicates run concurrently;
  /// results are joined in request order. Equivalent to calling
  /// Verifier.verify() element by element, including the effect on the
  /// Verifications / Reexecutions counters.
  std::vector<DepVerdict> verifyBatch(const std::vector<VerifyRequest> &Batch);

private:
  ImplicitDepVerifier &Verifier;
};

} // namespace core
} // namespace eoe

#endif // EOE_CORE_VERIFYSCHEDULER_H
