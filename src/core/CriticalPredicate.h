//===-- core/CriticalPredicate.h - Predicate-switching baseline --*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automated predicate switching (Zhang, N. Gupta, R. Gupta; ICSE 2006):
/// search for a *critical predicate* -- a predicate instance whose
/// switched execution produces the fully correct output. The PLDI'07
/// paper derives its switching machinery from this technique but uses it
/// "for a different purpose of disclosing implicit dependences" (section
/// 6): a critical predicate merely sits on the failure path, whereas
/// implicit-dependence location chains all the way back to the root
/// cause, and -- as the mini-gzip fault shows -- a single switch often
/// cannot even reproduce the correct output when the omitted branch had
/// several effects.
///
/// Implemented search orders, following the ICSE'06 prioritizations:
///  - LastExecutedFirst (LEFS): instances closest to the failure first;
///  - FirstExecutedFirst: program order (the naive baseline);
///  - DependenceAware (PRIOR): predicates in the wrong output's dynamic
///    slice first (closest first), then the rest.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_CORE_CRITICALPREDICATE_H
#define EOE_CORE_CRITICALPREDICATE_H

#include "ddg/DepGraph.h"
#include "interp/Interpreter.h"
#include "slicing/OutputVerdicts.h"

#include <vector>

namespace eoe {
namespace core {

/// Brute-force critical-predicate search over one failing execution.
class CriticalPredicateSearch {
public:
  enum class Order { LastExecutedFirst, FirstExecutedFirst, DependenceAware };

  struct Config {
    Order SearchOrder = Order::DependenceAware;
    /// Step budget per switched run.
    uint64_t MaxSteps = 2'000'000;
    /// Cap on attempted switches (the technique is brute force). Chained
    /// runs count against the same cap.
    size_t MaxSwitches = 100'000;
    /// Maximum decision-sequence length. ICSE'06 is single-switch (1,
    /// the default); the PLDI'07 paper's section 5 observes that one
    /// switch often cannot reproduce the correct output when the omitted
    /// branch had several effects. At >= 2, a candidate whose single
    /// switch fails is extended depth-first with further switches chosen
    /// from its own switched trace (see extendChain).
    unsigned ChainDepth = 1;
  };

  struct Result {
    /// True if a critical predicate (or chain) was found.
    bool Found = false;
    /// The critical predicate instance in the failing trace; for a
    /// chained find, the chain's base instance.
    TraceIdx CriticalInstance = InvalidId;
    /// The full critical decision sequence when found via a chain
    /// (size >= 2); empty when a single switch sufficed.
    std::vector<interp::SwitchDecision> CriticalChain;
    /// Switched runs attempted, chained runs included (the cost).
    size_t Switches = 0;
  };

  /// \p E must be the unswitched trace of \p Input; \p Expected is the
  /// full correct output sequence.
  CriticalPredicateSearch(const interp::Interpreter &Interp,
                          const interp::ExecutionTrace &E,
                          std::vector<int64_t> Input,
                          std::vector<int64_t> Expected, Config C);

  /// Runs the search: switches candidate predicate instances one at a
  /// time until some switched run prints exactly the expected outputs.
  Result search() const;

  /// The candidate order the configuration induces (exposed for tests).
  std::vector<TraceIdx> candidateOrder() const;

private:
  /// Depth-first chain extension: appends one more switch -- the first
  /// instance per static predicate executed after \p Chain's last
  /// decision fired in \p EP -- re-runs, and recurses until ChainDepth
  /// or MaxSwitches. Returns true (with \p R filled) when some chained
  /// run reproduces the expected output. \p Chain is used as scratch.
  bool extendChain(std::vector<interp::SwitchDecision> &Chain,
                   const interp::ExecutionTrace &EP, Result &R,
                   interp::ExecContext &Ctx) const;

  const interp::Interpreter &Interp;
  const interp::ExecutionTrace &E;
  std::vector<int64_t> Input;
  std::vector<int64_t> Expected;
  Config C;
};

} // namespace core
} // namespace eoe

#endif // EOE_CORE_CRITICALPREDICATE_H
