//===-- core/CriticalPredicate.h - Predicate-switching baseline --*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automated predicate switching (Zhang, N. Gupta, R. Gupta; ICSE 2006):
/// search for a *critical predicate* -- a predicate instance whose
/// switched execution produces the fully correct output. The PLDI'07
/// paper derives its switching machinery from this technique but uses it
/// "for a different purpose of disclosing implicit dependences" (section
/// 6): a critical predicate merely sits on the failure path, whereas
/// implicit-dependence location chains all the way back to the root
/// cause, and -- as the mini-gzip fault shows -- a single switch often
/// cannot even reproduce the correct output when the omitted branch had
/// several effects.
///
/// Implemented search orders, following the ICSE'06 prioritizations:
///  - LastExecutedFirst (LEFS): instances closest to the failure first;
///  - FirstExecutedFirst: program order (the naive baseline);
///  - DependenceAware (PRIOR): predicates in the wrong output's dynamic
///    slice first (closest first), then the rest.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_CORE_CRITICALPREDICATE_H
#define EOE_CORE_CRITICALPREDICATE_H

#include "ddg/DepGraph.h"
#include "interp/Interpreter.h"
#include "slicing/OutputVerdicts.h"

#include <vector>

namespace eoe {
namespace core {

/// Brute-force critical-predicate search over one failing execution.
class CriticalPredicateSearch {
public:
  enum class Order { LastExecutedFirst, FirstExecutedFirst, DependenceAware };

  struct Config {
    Order SearchOrder = Order::DependenceAware;
    /// Step budget per switched run.
    uint64_t MaxSteps = 2'000'000;
    /// Cap on attempted switches (the technique is brute force).
    size_t MaxSwitches = 100'000;
  };

  struct Result {
    /// True if a critical predicate was found.
    bool Found = false;
    /// The critical predicate instance in the failing trace.
    TraceIdx CriticalInstance = InvalidId;
    /// Switched runs attempted (the technique's cost).
    size_t Switches = 0;
  };

  /// \p E must be the unswitched trace of \p Input; \p Expected is the
  /// full correct output sequence.
  CriticalPredicateSearch(const interp::Interpreter &Interp,
                          const interp::ExecutionTrace &E,
                          std::vector<int64_t> Input,
                          std::vector<int64_t> Expected, Config C);

  /// Runs the search: switches candidate predicate instances one at a
  /// time until some switched run prints exactly the expected outputs.
  Result search() const;

  /// The candidate order the configuration induces (exposed for tests).
  std::vector<TraceIdx> candidateOrder() const;

private:
  const interp::Interpreter &Interp;
  const interp::ExecutionTrace &E;
  std::vector<int64_t> Input;
  std::vector<int64_t> Expected;
  Config C;
};

} // namespace core
} // namespace eoe

#endif // EOE_CORE_CRITICALPREDICATE_H
