//===-- core/VerifyDep.h - Implicit dependence verification ------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implicit dependence verification: the paper's VerifyDep() (section
/// 3.2), realizing Definition 2 (implicit dependence) and Definition 4
/// (strong implicit dependence).
///
/// To test whether use u implicitly depends on predicate instance p, the
/// program is re-executed with p's branch outcome switched and the two
/// runs are aligned (Algorithm 1):
///  - if the point matching the wrong output exists in the switched run
///    and carries the expected value vexp, the dependence is STRONG;
///  - if u has no matching point, the dependence holds (u was affected);
///  - if u's match exists but its reaching definition lies inside the
///    switched predicate's region, a new definition reached u: the
///    dependence holds (the paper's deliberately "unsafe" edge-based
///    check -- cheaper than full path reasoning, see section 3.2);
///  - otherwise there is no implicit dependence.
///
/// A switched run that exhausts its step budget or crashes simply fails
/// to produce matches, which the paper treats as "verification fails".
///
//===----------------------------------------------------------------------===//

#ifndef EOE_CORE_VERIFYDEP_H
#define EOE_CORE_VERIFYDEP_H

#include "align/Aligner.h"
#include "interp/Interpreter.h"
#include "slicing/OutputVerdicts.h"

#include <map>
#include <memory>

namespace eoe {
namespace core {

/// Outcome of one verification (the paper's STRONG_ID / ID / NOT_ID).
enum class DepVerdict { StrongImplicit, Implicit, NotImplicit };

/// Returns "STRONG_ID" / "ID" / "NOT_ID".
const char *depVerdictName(DepVerdict V);

/// Verifies implicit dependences against one failing execution,
/// re-executing with predicate switches on demand. Switched runs and
/// their alignments are cached per predicate instance, so verifying many
/// uses against the same predicate costs one re-execution.
class ImplicitDepVerifier {
public:
  struct Config {
    /// Step budget for switched runs (the paper's timer).
    uint64_t MaxSteps = 2'000'000;
    /// Definition 2 asks for an explicit dependence *path* between p'
    /// and u' in the switched run; the paper's VerifyDep deliberately
    /// checks only a single data *edge* (u's matched definition inside
    /// p's region), trading a documented unsoundness for far fewer fault
    /// candidates per step (section 3.2). Enable this to use the safe
    /// path check instead.
    bool UsePathCheck = false;
  };

  /// \p E must be the unswitched trace of running \p Input.
  ImplicitDepVerifier(const interp::Interpreter &Interp,
                      const interp::ExecutionTrace &E,
                      std::vector<int64_t> Input,
                      const slicing::OutputVerdicts &V, Config C);

  /// VerifyDep(p, u): does the use at (\p UseInst, \p UseLoad) implicitly
  /// depend on predicate instance \p PredInst?
  DepVerdict verify(TraceIdx PredInst, TraceIdx UseInst, ExprId UseLoad);

  /// Number of distinct (p, u) verifications performed (Table 3).
  size_t verificationCount() const { return Verifications; }

  /// Number of switched re-executions actually run (Table 4's Verif cost
  /// driver; smaller than verificationCount thanks to caching).
  size_t reexecutionCount() const { return Reexecutions; }

  /// The switched run used to verify against \p PredInst (for reports).
  const interp::ExecutionTrace *switchedRun(TraceIdx PredInst) const;

private:
  struct SwitchedRun {
    interp::ExecutionTrace Trace;
    std::unique_ptr<align::ExecutionAligner> Aligner;
    /// Instances explicitly (data/control) reachable from the switched
    /// predicate in the switched run; built on demand for the path
    /// check.
    std::vector<bool> ReachableFromSwitch;
    bool ReachableBuilt = false;
  };

  const SwitchedRun &switchedRunFor(TraceIdx PredInst);

  const interp::Interpreter &Interp;
  const interp::ExecutionTrace &E;
  std::vector<int64_t> Input;
  const slicing::OutputVerdicts &V;
  Config C;

  std::map<TraceIdx, std::unique_ptr<SwitchedRun>> Runs;
  std::map<std::tuple<TraceIdx, TraceIdx, ExprId>, DepVerdict> VerdictCache;
  size_t Verifications = 0;
  size_t Reexecutions = 0;
};

} // namespace core
} // namespace eoe

#endif // EOE_CORE_VERIFYDEP_H
