//===-- core/VerifyDep.h - Implicit dependence verification ------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implicit dependence verification: the paper's VerifyDep() (section
/// 3.2), realizing Definition 2 (implicit dependence) and Definition 4
/// (strong implicit dependence).
///
/// To test whether use u implicitly depends on predicate instance p, the
/// program is re-executed with p's branch outcome switched and the two
/// runs are aligned (Algorithm 1):
///  - if the point matching the wrong output exists in the switched run
///    and carries the expected value vexp, the dependence is STRONG;
///  - if u has no matching point, the dependence holds (u was affected);
///  - if u's match exists but its reaching definition lies inside the
///    switched predicate's region, a new definition reached u: the
///    dependence holds (the paper's deliberately "unsafe" edge-based
///    check -- cheaper than full path reasoning, see section 3.2);
///  - otherwise there is no implicit dependence.
///
/// A switched run that exhausts its step budget or crashes simply fails
/// to produce matches, which the paper treats as "verification fails".
///
/// Concurrency: the verifier is safe to call from multiple threads. The
/// switched-run cache is a mutex-guarded map of once-initialized cells,
/// so one re-execution serves every use verified against the same
/// predicate instance even under concurrent demand; verdicts are
/// memoized under a second mutex. Each re-execution leases recycled
/// interpreter state from an internal ExecContextPool. Verdicts are pure
/// functions of (program, input, switched predicate instance, use), so
/// results -- and the Verifications / Reexecutions counters, which count
/// distinct keys -- are bit-identical regardless of thread count or
/// verification order.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_CORE_VERIFYDEP_H
#define EOE_CORE_VERIFYDEP_H

#include "align/Aligner.h"
#include "interp/ExecContext.h"
#include "interp/Interpreter.h"
#include "slicing/OutputVerdicts.h"
#include "support/EventTracer.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>

namespace eoe {
namespace core {

/// Outcome of one verification (the paper's STRONG_ID / ID / NOT_ID).
enum class DepVerdict { StrongImplicit, Implicit, NotImplicit };

/// Returns "STRONG_ID" / "ID" / "NOT_ID".
const char *depVerdictName(DepVerdict V);

/// Verifies implicit dependences against one failing execution,
/// re-executing with predicate switches on demand. Switched runs and
/// their alignments are cached per predicate instance, so verifying many
/// uses against the same predicate costs one re-execution.
class ImplicitDepVerifier {
public:
  struct Config {
    /// Step budget for switched runs (the paper's timer).
    uint64_t MaxSteps = 2'000'000;
    /// Definition 2 asks for an explicit dependence *path* between p'
    /// and u' in the switched run; the paper's VerifyDep deliberately
    /// checks only a single data *edge* (u's matched definition inside
    /// p's region), trading a documented unsoundness for far fewer fault
    /// candidates per step (section 3.2). Enable this to use the safe
    /// path check instead.
    bool UsePathCheck = false;
    /// Worker threads for batched verification (VerifyScheduler /
    /// prepareSwitchedRuns). 0 = hardware_concurrency. 1 disables the
    /// pool entirely: every re-execution happens on the calling thread,
    /// which is the serial reference path. The pool is created lazily,
    /// so plain verify()-only users never spawn threads.
    unsigned Threads = 0;
    /// Checkpointed re-execution (docs/checkpointing.md). When enabled,
    /// the first non-empty candidate set passed to
    /// maybeCollectCheckpoints triggers one instrumented pass over the
    /// unswitched input that snapshots full interpreter state at every
    /// CheckpointStride-th candidate predicate instance; switched runs
    /// then resume from the nearest dominating snapshot, splicing the
    /// recorded trace prefix instead of replaying it. Results are
    /// byte-identical to full replay.
    /// interp::CheckpointsOff disables checkpointing entirely (the
    /// reference behavior, and the default: plain verifier users opt in);
    /// interp::CheckpointStrideAuto (0) autotunes the stride from trace
    /// length, candidate density, and CheckpointMemBytes.
    unsigned CheckpointStride = interp::CheckpointsOff;
    /// LRU byte budget for retained checkpoints; overflowing snapshots
    /// are evicted and affected switched runs fall back to full replay.
    size_t CheckpointMemBytes = interp::DefaultCheckpointMemBytes;
    /// Delta-compress consecutive snapshots against each other, keeping a
    /// full keyframe every CheckpointKeyframeEvery entries (the budget is
    /// then charged with encoded bytes, multiplying effective capacity).
    bool CheckpointDelta = true;
    unsigned CheckpointKeyframeEvery = interp::DefaultKeyframeInterval;
    /// Cross-input checkpoint sharing: when both are set, the collection
    /// pass promotes input-independent snapshots into this store, and the
    /// session seeds its own store from it before collecting -- so the
    /// profiler's and the confidence analysis's many-input sessions over
    /// the same program share the common pre-input prefix. The store must
    /// outlive the verifier; CheckpointShareProgram must be the very
    /// Program object this verifier's interpreter executes.
    interp::SharedCheckpointStore *CheckpointShare = nullptr;
    const lang::Program *CheckpointShareProgram = nullptr;
    /// Switched-run reuse (docs/checkpointing.md, "Switched-run reuse").
    /// Requires checkpointing (CheckpointStride != CheckpointsOff) and
    /// SwitchedCacheBytes > 0. Two independent mechanisms share the same
    /// plumbing:
    ///  - Reconvergence suffix splicing: always on when enabled -- each
    ///    switched run probes the original run's retained snapshots and,
    ///    on reconvergence, splices the rest of the original trace
    ///    instead of interpreting it.
    ///  - Divergence-keyed snapshot promotion: when SwitchedRuns is also
    ///    set (it must outlive the verifier, and SwitchedProgram must be
    ///    the very Program this verifier's interpreter executes), runs
    ///    past the switch point keep checkpointing, tagged with their
    ///    divergence key, and stage the bundles into the store; a later
    ///    session over the same (program, input, budget) resumes new
    ///    switched runs from the deepest staged-and-sealed snapshot whose
    ///    key prefixes the requested switch set.
    /// Results are byte-identical with the cache on, off, or size-capped,
    /// at any thread count.
    interp::SwitchedRunStore *SwitchedRuns = nullptr;
    const lang::Program *SwitchedProgram = nullptr;
    /// 0 disables both mechanisms (the reference behavior). Budget
    /// enforcement itself lives in the store; this knob only gates the
    /// per-run capture/probe instrumentation.
    size_t SwitchedCacheBytes = interp::DefaultSwitchedCacheBytes;
    /// External observability sinks. When Stats is null the verifier
    /// records into a private registry, so the distinct-key counters (and
    /// their accessors) work identically either way; when Tracer is null
    /// no spans are emitted.
    support::StatsRegistry *Stats = nullptr;
    support::EventTracer *Tracer = nullptr;
  };

  /// \p E must be the unswitched trace of running \p Input.
  ImplicitDepVerifier(const interp::Interpreter &Interp,
                      const interp::ExecutionTrace &E,
                      std::vector<int64_t> Input,
                      const slicing::OutputVerdicts &V, Config C);
  ~ImplicitDepVerifier();

  /// VerifyDep(p, u): does the use at (\p UseInst, \p UseLoad) implicitly
  /// depend on predicate instance \p PredInst? Thread-safe.
  DepVerdict verify(TraceIdx PredInst, TraceIdx UseInst, ExprId UseLoad);

  /// Multi-switch chain verification (docs/chains.md): re-executes with
  /// every decision in \p Chain applied in execution order and runs the
  /// same verdict ladder as verify() against the chained trace, treating
  /// \p Chain's first decision as the dependence source. \p BaseInst must
  /// be that first decision's instance in the original trace. Chained
  /// runs are cached by the full decision sequence; with a switched-run
  /// store configured they resume from the deepest sealed snapshot whose
  /// divergence key prefixes \p Chain (a depth-k run's snapshots seed
  /// depth-k+1 -- see SwitchedRunStore::lookup). Thread-safe, but chain
  /// search is deliberately serial (ChainSearch), so the chain counters
  /// are thread-count invariant.
  DepVerdict verifyChain(TraceIdx BaseInst,
                         const std::vector<interp::SwitchDecision> &Chain,
                         TraceIdx UseInst, ExprId UseLoad);

  /// The chained run's trace for \p Chain (extension-candidate
  /// enumeration in ChainSearch); computed and cached on demand under
  /// the same key as verifyChain.
  const interp::ExecutionTrace &
  chainTrace(TraceIdx BaseInst,
             const std::vector<interp::SwitchDecision> &Chain);

  /// Seals the switched-run store (no-op without one): bundles staged by
  /// completed runs -- single-switch and shallower chains -- become
  /// visible to later lookups. ChainSearch calls this between depth
  /// levels so depth-k chain snapshots seed depth-k+1 resumes within one
  /// session. Safe mid-session: already-computed runs are cached by
  /// once-cells and never re-resolved, and a single-decision request can
  /// only hit its own run's bundle.
  void sealSwitchedStage();

  /// Warm-up for a batch: runs the switched re-executions (and builds the
  /// alignments) for every predicate instance in \p Preds that has no
  /// cached run yet, concurrently on the pool when one is configured.
  /// After this, verify() against those predicates is re-execution-free.
  /// Exceptions from worker tasks propagate to the caller.
  void prepareSwitchedRuns(const std::vector<TraceIdx> &Preds);

  /// True once \p PredInst's switched run is cached (no re-execution
  /// would be needed to verify against it).
  bool hasSwitchedRun(TraceIdx PredInst) const;

  /// Checkpoint collection hook (no-op when Config::CheckpointStride is
  /// 0 or \p Candidates is empty). The first non-empty call runs one
  /// instrumented re-execution of the unswitched input, snapshotting at
  /// every CheckpointStride-th of the (sorted, deduplicated) candidate
  /// predicate instances; later calls return immediately. locateFault
  /// invokes this right after computing each candidate set, before any
  /// verification -- the same point on the serial and batched paths, so
  /// checkpoint state (and the verify.ckpt.* counters) is thread-count
  /// invariant. Thread-safe.
  void maybeCollectCheckpoints(const std::vector<TraceIdx> &Candidates);

  /// The pool used for batched verification; nullptr when the effective
  /// thread count is 1 (serial mode). Created on first use.
  support::ThreadPool *pool();

  /// The configured thread count with the 0 = hardware default resolved.
  unsigned effectiveThreads() const;

  /// Number of distinct (p, u) verifications performed (Table 3). A thin
  /// view over the registry's verify.verifications counter: one atomic
  /// metric serves the accessor, --stats, and the bench dumps, so there
  /// is a single source of truth and snapshotting involves no locks.
  size_t verificationCount() const { return CVerifications->get(); }

  /// Number of switched re-executions actually run (Table 4's Verif cost
  /// driver; smaller than verificationCount thanks to caching). Thin view
  /// over verify.reexecutions.
  size_t reexecutionCount() const { return CReexecutions->get(); }

  /// The registry verification metrics land in: the externally configured
  /// one, else the verifier's private fallback. Never null.
  support::StatsRegistry &stats() { return *Reg; }

  /// The configured tracer; null when tracing is off.
  support::EventTracer *tracer() const { return C.Tracer; }

  /// The switched run used to verify against \p PredInst (for reports).
  const interp::ExecutionTrace *switchedRun(TraceIdx PredInst) const;

private:
  /// One cached switched run. Cells are created under RunsMutex but
  /// computed outside it via call_once, so concurrent demands for
  /// *different* predicates re-execute in parallel while concurrent
  /// demands for the *same* predicate share one re-execution.
  struct SwitchedRun {
    std::once_flag Computed;
    std::atomic<bool> Ready{false};
    interp::ExecutionTrace Trace;
    std::unique_ptr<align::ExecutionAligner> Aligner;
    /// Instances explicitly (data/control) reachable from the switched
    /// predicate in the switched run; built on demand for the path
    /// check.
    std::once_flag ReachableOnce;
    std::vector<bool> ReachableFromSwitch;
  };

  SwitchedRun &cellFor(TraceIdx PredInst);
  SwitchedRun &chainCellFor(const std::vector<interp::SwitchDecision> &Chain);
  const SwitchedRun &switchedRunFor(TraceIdx PredInst);
  void computeSwitchedRun(TraceIdx PredInst, SwitchedRun &Run);
  void computeChainRun(TraceIdx BaseInst,
                       const std::vector<interp::SwitchDecision> &Chain,
                       SwitchedRun &Run);
  /// The verdict ladder shared by verify() and verifyChain(): classifies
  /// (UseInst, UseLoad) against one (single- or multi-decision) switched
  /// run. Pure given the run.
  DepVerdict classify(SwitchedRun &Run, TraceIdx UseInst, ExprId UseLoad);
  const std::vector<bool> &reachableFromSwitch(SwitchedRun &Run);

  const interp::Interpreter &Interp;
  const interp::ExecutionTrace &E;
  std::vector<int64_t> Input;
  const slicing::OutputVerdicts &V;
  Config C;

  mutable std::mutex RunsMutex;
  std::map<TraceIdx, std::unique_ptr<SwitchedRun>> Runs;
  /// Chained runs, keyed by the full decision sequence (a depth-1 chain
  /// is still a distinct key from the TraceIdx-keyed single-switch runs;
  /// ChainSearch never requests depth 1 here).
  std::map<std::vector<interp::SwitchDecision>, std::unique_ptr<SwitchedRun>>
      ChainRuns;
  std::mutex VerdictMutex;
  std::map<std::tuple<TraceIdx, TraceIdx, ExprId>, DepVerdict> VerdictCache;

  /// Fallback registry when none is configured; Reg points at it or at
  /// C.Stats. The paper's Table 3/4 counters used to be two ad-hoc
  /// atomics here -- they now live in the registry so one mechanism
  /// covers accessors, JSON dumps, and snapshots.
  support::StatsRegistry OwnStats;
  support::StatsRegistry *Reg = nullptr;
  support::StatCounter *CVerifications = nullptr;
  support::StatCounter *CReexecutions = nullptr;
  support::StatCounter *CVerdictCacheHits = nullptr;
  support::StatCounter *CVerdictCacheMisses = nullptr;
  support::StatCounter *CVerdictStrong = nullptr;
  support::StatCounter *CVerdictImplicit = nullptr;
  support::StatCounter *CVerdictNot = nullptr;
  support::StatCounter *CReexecAborts = nullptr;
  support::StatCounter *CCkptHits = nullptr;
  support::StatCounter *CCkptMisses = nullptr;
  support::StatCounter *CCkptStored = nullptr;
  support::StatCounter *CCkptBytes = nullptr;
  support::StatCounter *CCkptEvictions = nullptr;
  support::StatCounter *CCkptSkippedDirty = nullptr;
  support::StatCounter *CCkptDeltas = nullptr;
  support::StatCounter *CCkptKeyframes = nullptr;
  support::StatCounter *CCkptEncodedBytes = nullptr;
  support::StatCounter *CCkptRawBytes = nullptr;
  support::StatCounter *CCkptSharedHits = nullptr;
  support::StatCounter *CCkptAutoStride = nullptr;
  support::StatCounter *CCkptDiskHits = nullptr;
  support::StatCounter *CChainRuns = nullptr;
  support::StatCounter *CChainPrefixHits = nullptr;
  support::StatCounter *CChainExtSteps = nullptr;
  support::StatHistogram *HChainDepth = nullptr;
  support::StatCounter *CSwHits = nullptr;
  support::StatCounter *CSwPromotions = nullptr;
  support::StatCounter *CSwSplicedSuffix = nullptr;
  support::StatCounter *CSwProbes = nullptr;
  support::StatCounter *CSwInterpreted = nullptr;
  support::StatTimer *TReexec = nullptr;
  support::StatTimer *TCkptRestore = nullptr;
  support::StatTimer *TCkptCollect = nullptr;
  support::StatTimer *TLatStrong = nullptr;
  support::StatTimer *TLatImplicit = nullptr;
  support::StatTimer *TLatNot = nullptr;
  support::StatHistogram *HReexecSteps = nullptr;

  /// Recycled per-run interpreter state for switched re-executions.
  interp::ExecContextPool Arena;

  /// Snapshot store for checkpointed re-execution; null when
  /// Config::CheckpointStride is interp::CheckpointsOff. Populated once
  /// by maybeCollectCheckpoints (guarded by CkptOnce).
  std::unique_ptr<interp::CheckpointStore> Ckpts;
  std::once_flag CkptOnce;
  /// Trace indices of snapshots seeded from Config::CheckpointShare;
  /// switched runs resuming from one count as verify.ckpt.shared_hits.
  std::mutex SharedIdxMutex;
  std::set<TraceIdx> SharedIdx;
  /// Subset of SharedIdx whose snapshots the shared store revived from
  /// the persistent cache; resumes count as verify.ckpt.disk_hits.
  std::set<TraceIdx> DiskIdx;

  /// The original trace's region tree, built once and shared by every
  /// aligner (it is identical across all switched runs).
  std::once_flag OrigTreeOnce;
  std::unique_ptr<align::RegionTree> OrigTree;

  /// Switched-run reuse state, built at the end of the checkpoint
  /// collection pass (it feeds on the collected snapshots) and published
  /// to concurrent computeSwitchedRun calls via an acquire/release
  /// pointer: a run either sees the complete state or none.
  struct SwitchedReuse {
    interp::ReconvergePlan Plan;
    interp::SwitchedRunStore::ValidityKey Key;
    bool StoreOn = false;
  };
  std::unique_ptr<SwitchedReuse> Switched;
  std::atomic<SwitchedReuse *> SwitchedPub{nullptr};

  std::once_flag PoolOnce;
  std::unique_ptr<support::ThreadPool> Pool;
};

} // namespace core
} // namespace eoe

#endif // EOE_CORE_VERIFYDEP_H
