//===-- core/DebugSession.h - End-to-end debugging facade --------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level public API: owns every stage of the paper's pipeline for
/// one failing program run --
///
///   parse/check -> static analysis -> profile test suite (union deps +
///   value profile) -> trace the failing run -> label outputs ->
///   DS / RS / PS baselines -> demand-driven implicit-dependence location.
///
/// This mirrors the paper's prototype structure: an online component
/// (tracing interpreter), a static component (CFG + control dependence +
/// union dependence graph), and the debugging component (confidence
/// pruning, demand-driven expansion, verification).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_CORE_DEBUGSESSION_H
#define EOE_CORE_DEBUGSESSION_H

#include "analysis/StaticAnalysis.h"
#include "core/LocateFault.h"
#include "core/VerifyDep.h"
#include "ddg/DepGraph.h"
#include "interp/Interpreter.h"
#include "interp/Profiler.h"
#include "slicing/DynamicSlicer.h"
#include "slicing/RelevantSlicer.h"

#include <memory>
#include <optional>
#include <vector>

namespace eoe {
namespace core {

/// A complete debugging session over one failing input.
class DebugSession {
public:
  struct Config {
    /// Backend for Definition 1(iv); the paper's prototype used the
    /// profile-union graph, the pure static backend is more conservative.
    slicing::PotentialDepAnalyzer::Backend PDBackend =
        slicing::PotentialDepAnalyzer::Backend::Static;
    /// Cross-session checkpoint sharing: when set (and
    /// Opt.Reuse.CheckpointShare is on), input-independent snapshots are
    /// promoted into this store and later sessions over the same program
    /// seed their checkpoint stores from it. The store must outlive every
    /// session using it; the owner is whoever runs multiple sessions over
    /// one program (FaultRunner, a bench, the CLI).
    interp::SharedCheckpointStore *SharedCheckpoints = nullptr;
    /// Switched-run snapshot cache: when set (and
    /// Opt.Reuse.SwitchedCacheBytes > 0), switched runs stage divergence-
    /// keyed snapshot bundles here and later sessions over the same
    /// (program, input, budget) resume from them. Same ownership rules as
    /// SharedCheckpoints; the owner must seal() the store between
    /// sessions for staged bundles to become visible.
    interp::SwitchedRunStore *SwitchedRuns = nullptr;
    /// Algorithm 2 tunables, including the unified knob bundle.
    LocateConfig Locate;

    /// The unified knob bundle (support/Options.h). One storage location
    /// shared with Locate.Opt, so session-level and locate-level code
    /// configure the same knobs: Opt.Exec.MaxSteps is the failing-run
    /// step budget, Opt.Exec.Threads the verification worker count,
    /// Opt.Exec.Stats/Tracer the observability sinks wired through every
    /// pipeline layer, and Opt.Reuse every checkpoint / switched-cache /
    /// chain knob.
    eoe::Options &Opt = Locate.Opt;

    /// Deprecated: alias of Opt.Exec.MaxSteps (failing-run step budget;
    /// switched verification runs use the tighter Locate.MaxSteps).
    uint64_t &MaxSteps = Opt.Exec.MaxSteps;
    /// Deprecated: alias of Opt.Exec.Threads. 0 = hardware_concurrency,
    /// 1 = the serial reference engine; any value is bit-identical (see
    /// docs/parallelism.md).
    unsigned &Threads = Opt.Exec.Threads;
    /// Deprecated: aliases of Opt.Exec.Stats / Opt.Exec.Tracer. Null =
    /// off; see docs/observability.md.
    support::StatsRegistry *&Stats = Opt.Exec.Stats;
    support::EventTracer *&Tracer = Opt.Exec.Tracer;

    // The alias members make the implicit copy operations wrong (they
    // would rebind to the source object); copy the value members and
    // let the alias initializers bind to this object's Locate.Opt.
    Config() = default;
    Config(const Config &O)
        : PDBackend(O.PDBackend), SharedCheckpoints(O.SharedCheckpoints),
          SwitchedRuns(O.SwitchedRuns), Locate(O.Locate) {}
    Config &operator=(const Config &O) {
      PDBackend = O.PDBackend;
      SharedCheckpoints = O.SharedCheckpoints;
      SwitchedRuns = O.SwitchedRuns;
      Locate = O.Locate;
      return *this;
    }
  };

  /// \p Prog must outlive the session. \p ExpectedOutputs is the output
  /// sequence of the correct program on \p FailingInput (how vexp and the
  /// Ov/o-cross labels are derived). \p TestSuite are passing inputs used
  /// for profiling; may be empty.
  DebugSession(const lang::Program &Prog, std::vector<int64_t> FailingInput,
               std::vector<int64_t> ExpectedOutputs,
               std::vector<std::vector<int64_t>> TestSuite, Config C);

  /// Same, with default configuration.
  DebugSession(const lang::Program &Prog, std::vector<int64_t> FailingInput,
               std::vector<int64_t> ExpectedOutputs,
               std::vector<std::vector<int64_t>> TestSuite)
      : DebugSession(Prog, std::move(FailingInput), std::move(ExpectedOutputs),
                     std::move(TestSuite), Config()) {}

  /// False when the run produced no observable wrong value (nothing to
  /// debug). All further queries require hasFailure().
  bool hasFailure() const { return Verdicts.has_value(); }

  const lang::Program &program() const { return Prog; }
  const analysis::StaticAnalysis &staticAnalysis() const { return SA; }
  const interp::Interpreter &interpreter() const { return Interp; }
  const interp::ExecutionTrace &trace() const { return Trace; }
  const interp::Profile &profile() const { return Prof; }
  const slicing::OutputVerdicts &verdicts() const { return *Verdicts; }
  ddg::DepGraph &graph() { return *Graph; }
  const ddg::DepGraph &graph() const { return *Graph; }
  const slicing::PotentialDepAnalyzer &potentialDeps() const { return *PD; }

  /// Classic dynamic slice of the wrong output (Table 2's DS).
  slicing::SliceResult dynamicSlice() const;

  /// Relevant slice of the wrong output (Table 2's RS).
  slicing::RelevantSliceResult relevantSlice() const;

  /// Automatically pruned dynamic slice (Table 2's PS): confidence
  /// pruning from Ov and o-cross with no user interaction.
  std::vector<TraceIdx> prunedSlice() const;

  /// Runs the paper's Algorithm 2; adds verified implicit edges to
  /// graph() and returns the Table 3 counters.
  LocateReport locate(slicing::Oracle &O);

  /// OS (the failure-inducing chain) on the current graph; meaningful
  /// after locate() has added the implicit edges.
  std::vector<bool> failureChain(StmtId RootCause) const;

  /// The verifier, exposed so examples can verify single dependences.
  ImplicitDepVerifier &verifier() { return *Verifier; }

private:
  const lang::Program &Prog;
  std::vector<int64_t> FailingInput;
  std::vector<int64_t> ExpectedOutputs;
  Config C;

  analysis::StaticAnalysis SA;
  interp::Interpreter Interp;
  interp::Profile Prof;
  interp::ExecutionTrace Trace;
  std::optional<slicing::OutputVerdicts> Verdicts;
  std::unique_ptr<ddg::DepGraph> Graph;
  std::unique_ptr<slicing::PotentialDepAnalyzer> PD;
  std::unique_ptr<ImplicitDepVerifier> Verifier;
};

} // namespace core
} // namespace eoe

#endif // EOE_CORE_DEBUGSESSION_H
