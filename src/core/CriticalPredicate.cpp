//===-- core/CriticalPredicate.cpp - Predicate-switching baseline --------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/CriticalPredicate.h"

#include <algorithm>
#include <set>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;

CriticalPredicateSearch::CriticalPredicateSearch(const Interpreter &Interp,
                                                 const ExecutionTrace &E,
                                                 std::vector<int64_t> Input,
                                                 std::vector<int64_t> Expected,
                                                 Config C)
    : Interp(Interp), E(E), Input(std::move(Input)),
      Expected(std::move(Expected)), C(C) {}

std::vector<TraceIdx> CriticalPredicateSearch::candidateOrder() const {
  std::vector<TraceIdx> Preds;
  for (TraceIdx I = 0; I < E.size(); ++I)
    if (E.step(I).isPredicateInstance())
      Preds.push_back(I);

  switch (C.SearchOrder) {
  case Order::FirstExecutedFirst:
    return Preds;
  case Order::LastExecutedFirst:
    std::reverse(Preds.begin(), Preds.end());
    return Preds;
  case Order::DependenceAware: {
    // Predicates in the dynamic slice of the first wrong output first
    // (closest to the failure leading), then the remainder, also
    // last-executed-first.
    std::vector<TraceIdx> InSlice, Rest;
    std::vector<bool> Member;
    if (auto V = slicing::diffOutputs(E, Expected)) {
      ddg::DepGraph G(E);
      Member = G.backwardClosure({E.Outputs.at(V->WrongOutput).Step},
                                 ddg::DepGraph::ClosureOptions());
    }
    for (auto It = Preds.rbegin(); It != Preds.rend(); ++It) {
      if (!Member.empty() && Member[*It])
        InSlice.push_back(*It);
      else
        Rest.push_back(*It);
    }
    InSlice.insert(InSlice.end(), Rest.begin(), Rest.end());
    return InSlice;
  }
  }
  return Preds;
}

bool CriticalPredicateSearch::extendChain(std::vector<SwitchDecision> &Chain,
                                          const ExecutionTrace &EP, Result &R,
                                          interp::ExecContext &Ctx) const {
  if (Chain.size() >= C.ChainDepth)
    return false;
  // The last decision's fire step: instance numbers are unique per
  // statement within a trace, so one scan finds it.
  const SwitchDecision &LastD = Chain.back();
  TraceIdx Last = InvalidId;
  for (TraceIdx I = 0; I < EP.size(); ++I) {
    const StepRecord &S = EP.step(I);
    if (S.Stmt == LastD.Stmt && S.InstanceNo == LastD.InstanceNo) {
      Last = I;
      break;
    }
  }
  if (Last == InvalidId)
    return false; // The decision never fired: nothing sound to extend.

  // Unlike ChainSearch (which only follows control dependences of its
  // base, hunting one use's implicit source), a critical chain may need
  // coordinated switches of *unrelated* predicates -- "if (t) {...}
  // if (t) {...}" needs both -- so every downstream predicate is a
  // candidate, first instance per statement, in execution order.
  std::vector<TraceIdx> Exts;
  std::set<StmtId> SeenStmt;
  for (TraceIdx I = Last + 1; I < EP.size(); ++I) {
    const StepRecord &S = EP.step(I);
    if (S.isPredicateInstance() && SeenStmt.insert(S.Stmt).second)
      Exts.push_back(I);
  }

  for (TraceIdx Ext : Exts) {
    if (R.Switches >= C.MaxSwitches)
      return false;
    const StepRecord &S = EP.step(Ext);
    Chain.push_back({S.Stmt, S.InstanceNo, /*Perturb=*/false, /*Value=*/0});
    ExecutionTrace ET = Interp.runSwitched(Input, Chain, C.MaxSteps, &Ctx);
    ++R.Switches;
    if (ET.Exit == ExitReason::Finished) {
      if (ET.outputValues() == Expected) {
        R.Found = true;
        R.CriticalChain = Chain;
        return true;
      }
      if (extendChain(Chain, ET, R, Ctx))
        return true;
    }
    Chain.pop_back();
  }
  return false;
}

CriticalPredicateSearch::Result CriticalPredicateSearch::search() const {
  Result R;
  // One pooled context for the whole sweep: each runSwitched used to
  // construct (and tear down) a throwaway ExecContext, so long candidate
  // orders paid an allocation storm per switch.
  interp::ExecContext Ctx;
  for (TraceIdx P : candidateOrder()) {
    if (R.Switches >= C.MaxSwitches)
      return R;
    const StepRecord &Step = E.step(P);
    ExecutionTrace EP =
        Interp.runSwitched(Input, {Step.Stmt, Step.InstanceNo}, C.MaxSteps,
                           &Ctx);
    ++R.Switches;
    if (EP.Exit != ExitReason::Finished)
      continue;
    if (EP.outputValues() == Expected) {
      R.Found = true;
      R.CriticalInstance = P;
      return R;
    }
    // Chain mode: extend this failed single switch depth-first before
    // moving to the next candidate (the chain that repairs the output
    // usually shares its base with the best single switch).
    if (C.ChainDepth >= 2) {
      std::vector<SwitchDecision> Chain{
          {Step.Stmt, Step.InstanceNo, /*Perturb=*/false, /*Value=*/0}};
      if (extendChain(Chain, EP, R, Ctx)) {
        R.CriticalInstance = P;
        return R;
      }
    }
  }
  return R;
}
