//===-- core/CriticalPredicate.cpp - Predicate-switching baseline --------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/CriticalPredicate.h"

#include <algorithm>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;

CriticalPredicateSearch::CriticalPredicateSearch(const Interpreter &Interp,
                                                 const ExecutionTrace &E,
                                                 std::vector<int64_t> Input,
                                                 std::vector<int64_t> Expected,
                                                 Config C)
    : Interp(Interp), E(E), Input(std::move(Input)),
      Expected(std::move(Expected)), C(C) {}

std::vector<TraceIdx> CriticalPredicateSearch::candidateOrder() const {
  std::vector<TraceIdx> Preds;
  for (TraceIdx I = 0; I < E.size(); ++I)
    if (E.step(I).isPredicateInstance())
      Preds.push_back(I);

  switch (C.SearchOrder) {
  case Order::FirstExecutedFirst:
    return Preds;
  case Order::LastExecutedFirst:
    std::reverse(Preds.begin(), Preds.end());
    return Preds;
  case Order::DependenceAware: {
    // Predicates in the dynamic slice of the first wrong output first
    // (closest to the failure leading), then the remainder, also
    // last-executed-first.
    std::vector<TraceIdx> InSlice, Rest;
    std::vector<bool> Member;
    if (auto V = slicing::diffOutputs(E, Expected)) {
      ddg::DepGraph G(E);
      Member = G.backwardClosure({E.Outputs.at(V->WrongOutput).Step},
                                 ddg::DepGraph::ClosureOptions());
    }
    for (auto It = Preds.rbegin(); It != Preds.rend(); ++It) {
      if (!Member.empty() && Member[*It])
        InSlice.push_back(*It);
      else
        Rest.push_back(*It);
    }
    InSlice.insert(InSlice.end(), Rest.begin(), Rest.end());
    return InSlice;
  }
  }
  return Preds;
}

CriticalPredicateSearch::Result CriticalPredicateSearch::search() const {
  Result R;
  // One pooled context for the whole sweep: each runSwitched used to
  // construct (and tear down) a throwaway ExecContext, so long candidate
  // orders paid an allocation storm per switch.
  interp::ExecContext Ctx;
  for (TraceIdx P : candidateOrder()) {
    if (R.Switches >= C.MaxSwitches)
      return R;
    const StepRecord &Step = E.step(P);
    ExecutionTrace EP =
        Interp.runSwitched(Input, {Step.Stmt, Step.InstanceNo}, C.MaxSteps,
                           &Ctx);
    ++R.Switches;
    if (EP.Exit != ExitReason::Finished)
      continue;
    if (EP.outputValues() == Expected) {
      R.Found = true;
      R.CriticalInstance = P;
      return R;
    }
  }
  return R;
}
