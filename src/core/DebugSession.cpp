//===-- core/DebugSession.cpp - End-to-end debugging facade -------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"

#include "interp/CheckpointDiskStore.h"

#include <cassert>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;
using namespace eoe::slicing;

DebugSession::DebugSession(const lang::Program &Prog,
                           std::vector<int64_t> FailingInputIn,
                           std::vector<int64_t> ExpectedOutputsIn,
                           std::vector<std::vector<int64_t>> TestSuite,
                           Config CIn)
    : Prog(Prog), FailingInput(std::move(FailingInputIn)),
      ExpectedOutputs(std::move(ExpectedOutputsIn)), C(CIn), SA(Prog),
      Interp(Prog, SA, CIn.Stats), Prof(Prog.statements().size()) {
  const bool ShareWired = C.Locate.CheckpointShare && C.SharedCheckpoints;

  // Warm start: revive this (program, budget) key's persisted snapshots
  // into the shared store before anything runs. Best-effort -- a missing
  // or corrupt cache only costs the warm start (and bumps
  // verify.ckpt.disk_rejects), never the session.
  if (ShareWired && !C.Locate.CheckpointDir.empty()) {
    support::EventTracer::Span LoadSpan(C.Tracer, "ckpt.disk_load", "interp");
    interp::CheckpointDiskStore Disk(C.Locate.CheckpointDir);
    Disk.load(*C.SharedCheckpoints, Prog, C.Locate.MaxSteps, C.Stats);
  }

  {
    support::EventTracer::Span ProfileSpan(C.Tracer, "profile", "interp");
    ProfileOptions PO;
    PO.MaxStepsPerRun = C.MaxSteps;
    if (ShareWired) {
      // The profiler's re-executions double as checkpoint collection for
      // the shared store (and thus, via the session owner's save, for
      // the persistent cache).
      PO.Share = C.SharedCheckpoints;
      PO.ShareMaxSteps = C.Locate.MaxSteps;
    }
    Prof = profileTestSuite(Interp, Prog, TestSuite, PO);
  }

  Interpreter::Options Opts;
  Opts.MaxSteps = C.MaxSteps;
  {
    support::EventTracer::Span InterpretSpan(C.Tracer, "interpret", "interp");
    Trace = Interp.run(FailingInput, Opts);
  }
  Verdicts = diffOutputs(Trace, ExpectedOutputs);
  if (C.Stats)
    C.Stats->histogram("session.trace_steps").record(Trace.size());
  if (!Verdicts)
    return;

  {
    support::EventTracer::Span GraphSpan(C.Tracer, "graph", "ddg");
    support::ScopedTimer Timed(
        C.Stats ? &C.Stats->timer("session.graph_build_time") : nullptr);
    Graph = std::make_unique<ddg::DepGraph>(Trace);
  }
  PD = std::make_unique<PotentialDepAnalyzer>(
      SA, Trace, C.PDBackend,
      C.PDBackend == PotentialDepAnalyzer::Backend::UnionGraph
          ? &Prof.UnionDeps
          : nullptr);
  ImplicitDepVerifier::Config VC;
  VC.MaxSteps = C.Locate.MaxSteps;
  VC.UsePathCheck = C.Locate.UsePathCheck;
  VC.Threads = C.Threads;
  VC.CheckpointStride = C.Locate.Checkpoints;
  VC.CheckpointMemBytes = C.Locate.CheckpointMemBytes;
  VC.CheckpointDelta = C.Locate.CheckpointDelta;
  if (C.Locate.CheckpointShare && C.SharedCheckpoints) {
    VC.CheckpointShare = C.SharedCheckpoints;
    VC.CheckpointShareProgram = &Prog;
  }
  VC.SwitchedCacheBytes = C.Locate.SwitchedCacheBytes;
  if (C.SwitchedRuns) {
    VC.SwitchedRuns = C.SwitchedRuns;
    VC.SwitchedProgram = &Prog;
  }
  VC.Stats = C.Stats;
  VC.Tracer = C.Tracer;
  Verifier = std::make_unique<ImplicitDepVerifier>(Interp, Trace,
                                                   FailingInput, *Verdicts, VC);
}

SliceResult DebugSession::dynamicSlice() const {
  assert(hasFailure() && "no failure to slice");
  support::EventTracer::Span SliceSpan(C.Tracer, "dynamic_slice", "slicing");
  // DS deliberately ignores implicit edges even if locate() added some.
  ddg::DepGraph::ClosureOptions Opts;
  Opts.Implicit = false;
  SliceResult R;
  R.Member = Graph->backwardClosure(
      {Trace.Outputs.at(Verdicts->WrongOutput).Step}, Opts);
  R.Stats = Graph->stats(R.Member);
  if (C.Stats) {
    C.Stats->counter("slicing.dynamic_slices").add();
    C.Stats->histogram("slicing.ds_static_stmts").record(R.Stats.StaticStmts);
    C.Stats->histogram("slicing.ds_dynamic_instances")
        .record(R.Stats.DynamicInstances);
  }
  return R;
}

RelevantSliceResult DebugSession::relevantSlice() const {
  assert(hasFailure() && "no failure to slice");
  support::EventTracer::Span SliceSpan(C.Tracer, "relevant_slice", "slicing");
  RelevantSliceResult R = relevantSliceOfWrongOutput(*Graph, *PD, *Verdicts);
  if (C.Stats) {
    C.Stats->counter("slicing.relevant_slices").add();
    C.Stats->histogram("slicing.rs_static_stmts")
        .record(R.Slice.Stats.StaticStmts);
    C.Stats->histogram("slicing.rs_dynamic_instances")
        .record(R.Slice.Stats.DynamicInstances);
  }
  return R;
}

std::vector<TraceIdx> DebugSession::prunedSlice() const {
  assert(hasFailure() && "no failure to prune");
  ConfidenceAnalysis CA(Prog, *Graph, &Prof.Values, *Verdicts);
  return CA.prunedSlice();
}

LocateReport DebugSession::locate(Oracle &O) {
  assert(hasFailure() && "no failure to locate");
  LocateConfig LC = C.Locate;
  // Threads == 1 means "the serial reference engine": take the original
  // one-at-a-time code path in locateFault, not batches of size one.
  if (LC.Threads == 0 && C.Threads == 1)
    LC.Threads = 1;
  return locateFault(Prog, *Graph, *PD, *Verifier, &Prof.Values, *Verdicts, O,
                     LC);
}

std::vector<bool> DebugSession::failureChain(StmtId RootCause) const {
  assert(hasFailure() && "no failure chain without a failure");
  return failureInducingChain(*Graph, RootCause, *Verdicts);
}
