//===-- core/DebugSession.cpp - End-to-end debugging facade -------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/DebugSession.h"

#include "interp/CheckpointDiskStore.h"

#include <cassert>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;
using namespace eoe::slicing;

DebugSession::DebugSession(const lang::Program &Prog,
                           std::vector<int64_t> FailingInputIn,
                           std::vector<int64_t> ExpectedOutputsIn,
                           std::vector<std::vector<int64_t>> TestSuite,
                           Config CIn)
    : Prog(Prog), FailingInput(std::move(FailingInputIn)),
      ExpectedOutputs(std::move(ExpectedOutputsIn)), C(CIn), SA(Prog),
      Interp(Prog, SA, CIn.Opt.Exec.Stats), Prof(Prog.statements().size()) {
  const bool ShareWired = C.Opt.Reuse.CheckpointShare && C.SharedCheckpoints;

  // Warm start: revive this (program, budget) key's persisted snapshots
  // into the shared store before anything runs. Best-effort -- a missing
  // or corrupt cache only costs the warm start (and bumps
  // verify.ckpt.disk_rejects), never the session.
  if (ShareWired && !C.Opt.Reuse.CheckpointDir.empty()) {
    support::EventTracer::Span LoadSpan(C.Opt.Exec.Tracer, "ckpt.disk_load",
                                        "interp");
    interp::CheckpointDiskStore Disk(C.Opt.Reuse.CheckpointDir);
    Disk.load(*C.SharedCheckpoints, Prog, C.Locate.MaxSteps, C.Opt.Exec.Stats);
  }

  {
    support::EventTracer::Span ProfileSpan(C.Opt.Exec.Tracer, "profile",
                                           "interp");
    ProfileOptions PO;
    PO.MaxStepsPerRun = C.Opt.Exec.MaxSteps;
    if (ShareWired) {
      // The profiler's re-executions double as checkpoint collection for
      // the shared store (and thus, via the session owner's save, for
      // the persistent cache).
      PO.Share = C.SharedCheckpoints;
      PO.ShareMaxSteps = C.Locate.MaxSteps;
    }
    Prof = profileTestSuite(Interp, Prog, TestSuite, PO);
  }

  Interpreter::Options Opts;
  Opts.MaxSteps = C.Opt.Exec.MaxSteps;
  {
    support::EventTracer::Span InterpretSpan(C.Opt.Exec.Tracer, "interpret", "interp");
    Trace = Interp.run(FailingInput, Opts);
  }
  Verdicts = diffOutputs(Trace, ExpectedOutputs);
  if (C.Opt.Exec.Stats)
    C.Opt.Exec.Stats->histogram("session.trace_steps").record(Trace.size());
  if (!Verdicts)
    return;

  {
    support::EventTracer::Span GraphSpan(C.Opt.Exec.Tracer, "graph", "ddg");
    support::ScopedTimer Timed(
        C.Opt.Exec.Stats ? &C.Opt.Exec.Stats->timer("session.graph_build_time") : nullptr);
    Graph = std::make_unique<ddg::DepGraph>(Trace);
  }
  PD = std::make_unique<PotentialDepAnalyzer>(
      SA, Trace, C.PDBackend,
      C.PDBackend == PotentialDepAnalyzer::Backend::UnionGraph
          ? &Prof.UnionDeps
          : nullptr);
  ImplicitDepVerifier::Config VC;
  VC.MaxSteps = C.Locate.MaxSteps;
  VC.UsePathCheck = C.Locate.UsePathCheck;
  VC.Threads = C.Opt.Exec.Threads;
  VC.CheckpointStride = C.Opt.Reuse.Checkpoints;
  VC.CheckpointMemBytes = C.Opt.Reuse.CheckpointMemBytes;
  VC.CheckpointDelta = C.Opt.Reuse.CheckpointDelta;
  if (C.Opt.Reuse.CheckpointShare && C.SharedCheckpoints) {
    VC.CheckpointShare = C.SharedCheckpoints;
    VC.CheckpointShareProgram = &Prog;
  }
  VC.SwitchedCacheBytes = C.Opt.Reuse.SwitchedCacheBytes;
  if (C.SwitchedRuns) {
    VC.SwitchedRuns = C.SwitchedRuns;
    VC.SwitchedProgram = &Prog;
  }
  VC.Stats = C.Opt.Exec.Stats;
  VC.Tracer = C.Opt.Exec.Tracer;
  Verifier = std::make_unique<ImplicitDepVerifier>(Interp, Trace,
                                                   FailingInput, *Verdicts, VC);
}

SliceResult DebugSession::dynamicSlice() const {
  assert(hasFailure() && "no failure to slice");
  support::EventTracer::Span SliceSpan(C.Opt.Exec.Tracer, "dynamic_slice", "slicing");
  // DS deliberately ignores implicit edges even if locate() added some.
  ddg::DepGraph::ClosureOptions Opts;
  Opts.Implicit = false;
  SliceResult R;
  R.Member = Graph->backwardClosure(
      {Trace.Outputs.at(Verdicts->WrongOutput).Step}, Opts);
  R.Stats = Graph->stats(R.Member);
  if (C.Opt.Exec.Stats) {
    C.Opt.Exec.Stats->counter("slicing.dynamic_slices").add();
    C.Opt.Exec.Stats->histogram("slicing.ds_static_stmts").record(R.Stats.StaticStmts);
    C.Opt.Exec.Stats->histogram("slicing.ds_dynamic_instances")
        .record(R.Stats.DynamicInstances);
  }
  return R;
}

RelevantSliceResult DebugSession::relevantSlice() const {
  assert(hasFailure() && "no failure to slice");
  support::EventTracer::Span SliceSpan(C.Opt.Exec.Tracer, "relevant_slice", "slicing");
  RelevantSliceResult R = relevantSliceOfWrongOutput(*Graph, *PD, *Verdicts);
  if (C.Opt.Exec.Stats) {
    C.Opt.Exec.Stats->counter("slicing.relevant_slices").add();
    C.Opt.Exec.Stats->histogram("slicing.rs_static_stmts")
        .record(R.Slice.Stats.StaticStmts);
    C.Opt.Exec.Stats->histogram("slicing.rs_dynamic_instances")
        .record(R.Slice.Stats.DynamicInstances);
  }
  return R;
}

std::vector<TraceIdx> DebugSession::prunedSlice() const {
  assert(hasFailure() && "no failure to prune");
  ConfidenceAnalysis CA(Prog, *Graph, &Prof.Values, *Verdicts);
  return CA.prunedSlice();
}

LocateReport DebugSession::locate(Oracle &O) {
  assert(hasFailure() && "no failure to locate");
  // Since Config::Opt and Locate.Opt share storage, the thread knob the
  // verifier was built with is the one locateFault schedules by: at
  // Threads == 1 it takes the original one-at-a-time serial path, not
  // batches of size one.
  return locateFault(Prog, *Graph, *PD, *Verifier, &Prof.Values, *Verdicts, O,
                     C.Locate);
}

std::vector<bool> DebugSession::failureChain(StmtId RootCause) const {
  assert(hasFailure() && "no failure chain without a failure");
  return failureInducingChain(*Graph, RootCause, *Verdicts);
}
