//===-- core/ChainSearch.cpp - Multi-switch perturbation chains ---------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/ChainSearch.h"

#include <set>
#include <utility>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;

ChainSearch::ChainSearch(ImplicitDepVerifier &Verifier,
                         const ExecutionTrace &T, unsigned MaxDepth,
                         unsigned Budget)
    : Verifier(Verifier), T(T), MaxDepth(MaxDepth), Budget(Budget) {
  // Registered eagerly so the locate.chain.* keys are part of the stats
  // surface whenever chains are configured, searches attempted or not.
  Verifier.stats().counter("locate.chain.searches");
  Verifier.stats().counter("locate.chain.commits");
}

std::vector<TraceIdx>
ChainSearch::extensions(const ExecutionTrace &EP,
                        const std::vector<SwitchDecision> &Chain) const {
  // Locate each decision's fire step in the chained run. Instance
  // numbers are unique per statement within a trace, so one ascending
  // scan finds them all; decisions fire in chain order by construction.
  std::set<std::pair<StmtId, uint32_t>> Want;
  for (const SwitchDecision &D : Chain)
    Want.insert({D.Stmt, D.InstanceNo});
  std::vector<bool> IsFire(EP.size(), false);
  TraceIdx Last = InvalidId;
  size_t Fired = 0;
  for (TraceIdx I = 0; I < EP.size(); ++I) {
    const StepRecord &S = EP.step(I);
    if (Want.count({S.Stmt, S.InstanceNo})) {
      IsFire[I] = true;
      Last = I;
      ++Fired;
    }
  }
  if (Fired != Want.size())
    return {}; // Some decision never fired: nothing sound to extend.

  // Predicate instances downstream of the chain: executed after the last
  // decision and controlled -- transitively -- by a fired decision. The
  // control-dependence restriction keeps the branching factor at the
  // predicates the chain itself exposed (switching an unrelated later
  // predicate is the job of that predicate's own candidate entry).
  std::set<StmtId> SeenStmt;
  std::vector<TraceIdx> Out;
  for (TraceIdx I = Last + 1; I < EP.size(); ++I) {
    const StepRecord &S = EP.step(I);
    if (!S.isPredicateInstance() || SeenStmt.count(S.Stmt))
      continue;
    bool Related = false;
    for (TraceIdx A = S.CdParent; A != InvalidId; A = EP.step(A).CdParent) {
      if (IsFire[A]) {
        Related = true;
        break;
      }
    }
    if (!Related)
      continue;
    SeenStmt.insert(S.Stmt);
    Out.push_back(I);
  }
  return Out;
}

ChainSearch::Result ChainSearch::search(const std::vector<TraceIdx> &Candidates,
                                        TraceIdx UseInst, ExprId UseLoad) {
  Result Fallback;
  if (MaxDepth < 2 || Used >= Budget)
    return Fallback;
  Verifier.stats().counter("locate.chain.searches").add();

  for (TraceIdx P : Candidates) {
    const StepRecord &PS = T.step(P);
    std::vector<std::vector<SwitchDecision>> Frontier;
    Frontier.push_back({{PS.Stmt, PS.InstanceNo, /*Perturb=*/false,
                         /*Value=*/0}});
    for (unsigned Depth = 2; Depth <= MaxDepth && !Frontier.empty(); ++Depth) {
      // Make bundles staged by shallower runs visible to this depth's
      // store lookups: a depth-k run's snapshots seed depth-k+1 resumes.
      Verifier.sealSwitchedStage();
      std::vector<std::vector<SwitchDecision>> Next;
      for (const std::vector<SwitchDecision> &Chain : Frontier) {
        // Depth-1 traces come from the single-switch cache (computed by
        // the verdict pass that triggered this search); deeper ones from
        // the chain cache.
        const ExecutionTrace *EP = Chain.size() == 1
                                       ? Verifier.switchedRun(P)
                                       : &Verifier.chainTrace(P, Chain);
        if (!EP || EP->Exit != ExitReason::Finished ||
            EP->SwitchedStep == InvalidId)
          continue;
        for (TraceIdx Ext : extensions(*EP, Chain)) {
          if (Used >= Budget)
            return Fallback;
          const StepRecord &ES = EP->step(Ext);
          std::vector<SwitchDecision> NewChain = Chain;
          NewChain.push_back({ES.Stmt, ES.InstanceNo, /*Perturb=*/false,
                              /*Value=*/0});
          ++Used;
          DepVerdict V = Verifier.verifyChain(P, NewChain, UseInst, UseLoad);
          if (V == DepVerdict::StrongImplicit) {
            Result R;
            R.Found = true;
            R.Strong = true;
            R.BasePred = P;
            R.Chain = std::move(NewChain);
            return R;
          }
          if (V == DepVerdict::Implicit && !Fallback.Found) {
            Fallback.Found = true;
            Fallback.BasePred = P;
            Fallback.Chain = NewChain;
          }
          Next.push_back(std::move(NewChain));
        }
      }
      Frontier = std::move(Next);
    }
  }
  return Fallback;
}
