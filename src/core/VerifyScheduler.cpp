//===-- core/VerifyScheduler.cpp - Batched parallel verification --------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/VerifyScheduler.h"

using namespace eoe;
using namespace eoe::core;

std::vector<DepVerdict>
VerifyScheduler::verifyBatch(const std::vector<VerifyRequest> &Batch) {
  support::StatsRegistry &Reg = Verifier.stats();
  if (!Batch.empty()) {
    Reg.counter("verify.batches").add();
    Reg.counter("verify.batch_requests").add(Batch.size());
    Reg.histogram("verify.batch_size").record(Batch.size());
  }
  support::EventTracer::Span BatchSpan(
      Batch.empty() ? nullptr : Verifier.tracer(), "verify.batch", "verify");

  // Phase 1: warm the switched-run cache concurrently. Only predicates
  // without a cached run re-execute -- the same set the serial engine
  // would have re-executed while walking this batch one by one (a cached
  // *verdict* implies a cached run, so no request can demand a run the
  // serial sweep would have skipped).
  if (Batch.size() > 1 && parallel()) {
    std::vector<TraceIdx> Preds;
    Preds.reserve(Batch.size());
    for (const VerifyRequest &R : Batch)
      Preds.push_back(R.PredInst);
    Verifier.prepareSwitchedRuns(Preds);
  }

  // Phase 2: deterministic join -- verdicts in original request order.
  // Every switched run is now cached, so this is pure (cheap) alignment
  // queries and classification on the calling thread.
  std::vector<DepVerdict> Out;
  Out.reserve(Batch.size());
  for (const VerifyRequest &R : Batch)
    Out.push_back(Verifier.verify(R.PredInst, R.UseInst, R.UseLoad));
  return Out;
}
