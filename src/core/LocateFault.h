//===-- core/LocateFault.h - Demand-driven fault location --------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demand-driven procedure of the paper's Algorithm 2 (LocateFault):
///
///   PS = PruneSlicing(G, Ov, o-cross)
///   while the root cause is not found:
///     select a use u from PS (rank order);
///     verify the potential dependences PD(u), grouping the results;
///     strong implicit dependences override plain ones;
///     for each winning predicate p, also verify p -> t for every other
///       use t that potentially depends on p (Figure 5: enables pruning);
///     add the verified edges to the dependence graph;
///     PS = PruneSlicing(G, Ov, o-cross)
///
/// The procedure mutates the dependence graph (adding implicit edges) and
/// reports the counters of the paper's Table 3: user prunings,
/// verifications, iterations, expanded edges, and the final pruned slice
/// (IPS) that contains the root cause.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_CORE_LOCATEFAULT_H
#define EOE_CORE_LOCATEFAULT_H

#include "core/VerifyDep.h"
#include "core/VerifyScheduler.h"
#include "ddg/DepGraph.h"
#include "slicing/Confidence.h"
#include "slicing/PotentialDeps.h"
#include "slicing/Pruning.h"

#include <string>

namespace eoe {
namespace core {

/// Tunables of the demand-driven procedure; the defaults reproduce the
/// paper's configuration and the non-defaults drive the ablation bench.
struct LocateConfig {
  /// Verify p -> t for all other potential dependents of a winning p
  /// (Figure 5). Off = only the selected use's edge is added.
  bool VerifyFanout = true;
  /// Candidate set per use: closest instance per static predicate (on),
  /// or every qualifying instance (off).
  bool OnePerPredicate = true;
  /// Use the safe explicit-path check instead of the paper's edge check
  /// in VerifyDep (section 3.2; see ImplicitDepVerifier::Config).
  bool UsePathCheck = false;
  /// Step budget for switched runs.
  uint64_t MaxSteps = 2'000'000;
  /// Safety cap on expansion rounds.
  size_t MaxIterations = 200;
  /// Verification scheduling. 0 = follow the verifier's configuration
  /// (batched onto its pool when it has one). 1 = force the serial
  /// reference path: candidates are verified one by one on the calling
  /// thread exactly like the original engine, regardless of the
  /// verifier's pool. Results are bit-identical either way (see
  /// docs/parallelism.md); the serial path exists as the reference the
  /// determinism tests compare against.
  unsigned Threads = 0;
  /// Checkpointed switched-run re-execution (docs/checkpointing.md):
  /// snapshot interpreter state at candidate predicate instances during
  /// one instrumented pass, then resume switched runs from the nearest
  /// dominating snapshot instead of replaying the whole prefix.
  /// interp::CheckpointStrideAuto (0, the default) tunes the stride from
  /// trace length, candidate density, and CheckpointMemBytes; N >= 1
  /// checkpoints every Nth candidate; interp::CheckpointsOff is the
  /// reference full-replay behavior. Bit-identical results in every
  /// mode.
  unsigned Checkpoints = interp::CheckpointStrideAuto;
  /// LRU byte budget for retained checkpoints.
  size_t CheckpointMemBytes = interp::DefaultCheckpointMemBytes;
  /// Delta-compress consecutive snapshots (encoded-byte LRU accounting;
  /// see CheckpointStore).
  bool CheckpointDelta = true;
  /// Promote input-independent snapshots into a cross-session store and
  /// seed from it (wired by DebugSession when its config carries a
  /// SharedCheckpointStore).
  bool CheckpointShare = true;
  /// Switched-run snapshot cache byte budget (docs/checkpointing.md,
  /// "Switched-run reuse"): switched runs keep checkpointing past the
  /// switch point (divergence-keyed snapshots, staged into the
  /// SwitchedRunStore the session owner wires through DebugSession) and
  /// probe the original run's snapshots to splice reconvergent suffixes.
  /// 0 turns both mechanisms off (the reference behavior); any value is
  /// bit-identical, it only trades memory for interpreted steps.
  size_t SwitchedCacheBytes = interp::DefaultSwitchedCacheBytes;
  /// Persistent checkpoint cache directory (docs/checkpointing.md,
  /// "The on-disk cache"). When non-empty and CheckpointShare is on,
  /// DebugSession seeds the shared store from the cache file keyed by
  /// (program hash, MaxSteps) before profiling, and the session owner
  /// (eoec, FaultRunner, a bench) saves the store back on exit. Empty =
  /// in-memory sharing only.
  std::string CheckpointDir;
};

/// The paper's Table 3 row for one debugging session.
struct LocateReport {
  bool RootCauseFound = false;
  size_t UserPrunings = 0;
  size_t Verifications = 0;
  size_t Reexecutions = 0;
  size_t Iterations = 0;
  size_t ExpandedEdges = 0;
  size_t StrongEdges = 0;
  /// The final pruned slice (IPS), most suspicious first.
  std::vector<TraceIdx> FinalPrunedSlice;
  ddg::SliceStats IPSStats;
};

/// Runs Algorithm 2 against one failing execution.
///
/// \param G the failing run's dependence graph; verified implicit edges
///        are added to it (so OS can be derived from it afterwards).
/// \param O the programmer in the loop (experiments: the OS protocol).
LocateReport locateFault(const lang::Program &Prog, ddg::DepGraph &G,
                         const slicing::PotentialDepAnalyzer &PD,
                         ImplicitDepVerifier &Verifier,
                         const interp::ValueProfile *Values,
                         const slicing::OutputVerdicts &V,
                         slicing::Oracle &O, const LocateConfig &Config);

/// Derives the paper's OS -- the failure-inducing dependence chain from
/// the root cause to the failure -- on \p G's current edges (run
/// locateFault first so verified implicit edges are present): instances
/// reachable forward from any instance of \p RootCause and backward from
/// the wrong output.
std::vector<bool> failureInducingChain(const ddg::DepGraph &G,
                                       StmtId RootCause,
                                       const slicing::OutputVerdicts &V);

} // namespace core
} // namespace eoe

#endif // EOE_CORE_LOCATEFAULT_H
