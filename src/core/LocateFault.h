//===-- core/LocateFault.h - Demand-driven fault location --------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The demand-driven procedure of the paper's Algorithm 2 (LocateFault):
///
///   PS = PruneSlicing(G, Ov, o-cross)
///   while the root cause is not found:
///     select a use u from PS (rank order);
///     verify the potential dependences PD(u), grouping the results;
///     strong implicit dependences override plain ones;
///     for each winning predicate p, also verify p -> t for every other
///       use t that potentially depends on p (Figure 5: enables pruning);
///     add the verified edges to the dependence graph;
///     PS = PruneSlicing(G, Ov, o-cross)
///
/// The procedure mutates the dependence graph (adding implicit edges) and
/// reports the counters of the paper's Table 3: user prunings,
/// verifications, iterations, expanded edges, and the final pruned slice
/// (IPS) that contains the root cause.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_CORE_LOCATEFAULT_H
#define EOE_CORE_LOCATEFAULT_H

#include "core/VerifyDep.h"
#include "core/VerifyScheduler.h"
#include "ddg/DepGraph.h"
#include "slicing/Confidence.h"
#include "slicing/PotentialDeps.h"
#include "slicing/Pruning.h"
#include "support/Options.h"

#include <string>

namespace eoe {
namespace core {

/// Tunables of the demand-driven procedure; the defaults reproduce the
/// paper's configuration and the non-defaults drive the ablation bench.
struct LocateConfig {
  /// Verify p -> t for all other potential dependents of a winning p
  /// (Figure 5). Off = only the selected use's edge is added.
  bool VerifyFanout = true;
  /// Candidate set per use: closest instance per static predicate (on),
  /// or every qualifying instance (off).
  bool OnePerPredicate = true;
  /// Use the safe explicit-path check instead of the paper's edge check
  /// in VerifyDep (section 3.2; see ImplicitDepVerifier::Config).
  bool UsePathCheck = false;
  /// Step budget for switched runs. Deliberately NOT Opt.Exec.MaxSteps:
  /// that is the failing-run budget (a DebugSession-level knob);
  /// switched verification runs use this tighter budget, implementing
  /// the paper's verification timer.
  uint64_t MaxSteps = 2'000'000;
  /// Safety cap on expansion rounds.
  size_t MaxIterations = 200;

  /// The unified knob bundle (support/Options.h) -- authoritative for
  /// threads, every checkpoint/switched-cache knob, the perturbation-
  /// chain depth/budget, and the observability sinks. The flat members
  /// below are deprecated aliases into it, kept for one release so
  /// downstream code keeps compiling; new code should read and write
  /// Opt directly.
  eoe::Options Opt;

  /// Deprecated: alias of Opt.Exec.Threads. Verification scheduling.
  /// 0 = follow the verifier's configuration (batched onto its pool
  /// when it has one). 1 = force the serial reference path (bit-
  /// identical; see docs/parallelism.md).
  unsigned &Threads = Opt.Exec.Threads;
  /// Deprecated: alias of Opt.Reuse.Checkpoints (stride for checkpointed
  /// switched-run re-execution; see docs/checkpointing.md).
  unsigned &Checkpoints = Opt.Reuse.Checkpoints;
  /// Deprecated: alias of Opt.Reuse.CheckpointMemBytes.
  size_t &CheckpointMemBytes = Opt.Reuse.CheckpointMemBytes;
  /// Deprecated: alias of Opt.Reuse.CheckpointDelta.
  bool &CheckpointDelta = Opt.Reuse.CheckpointDelta;
  /// Deprecated: alias of Opt.Reuse.CheckpointShare.
  bool &CheckpointShare = Opt.Reuse.CheckpointShare;
  /// Deprecated: alias of Opt.Reuse.SwitchedCacheBytes (switched-run
  /// snapshot cache; docs/checkpointing.md "Switched-run reuse").
  size_t &SwitchedCacheBytes = Opt.Reuse.SwitchedCacheBytes;
  /// Deprecated: alias of Opt.Reuse.CheckpointDir (persistent checkpoint
  /// cache; docs/checkpointing.md "The on-disk cache").
  std::string &CheckpointDir = Opt.Reuse.CheckpointDir;

  // The reference aliases make the implicit copy operations wrong (they
  // would rebind to the source object's Opt), so spell them out: copy
  // the value members, let the alias initializers bind to this->Opt.
  LocateConfig() = default;
  LocateConfig(const LocateConfig &O)
      : VerifyFanout(O.VerifyFanout), OnePerPredicate(O.OnePerPredicate),
        UsePathCheck(O.UsePathCheck), MaxSteps(O.MaxSteps),
        MaxIterations(O.MaxIterations), Opt(O.Opt) {}
  LocateConfig &operator=(const LocateConfig &O) {
    VerifyFanout = O.VerifyFanout;
    OnePerPredicate = O.OnePerPredicate;
    UsePathCheck = O.UsePathCheck;
    MaxSteps = O.MaxSteps;
    MaxIterations = O.MaxIterations;
    Opt = O.Opt;
    return *this;
  }
};

/// The paper's Table 3 row for one debugging session.
struct LocateReport {
  bool RootCauseFound = false;
  size_t UserPrunings = 0;
  size_t Verifications = 0;
  size_t Reexecutions = 0;
  size_t Iterations = 0;
  size_t ExpandedEdges = 0;
  size_t StrongEdges = 0;
  /// The final pruned slice (IPS), most suspicious first.
  std::vector<TraceIdx> FinalPrunedSlice;
  ddg::SliceStats IPSStats;
};

/// Runs Algorithm 2 against one failing execution.
///
/// \param G the failing run's dependence graph; verified implicit edges
///        are added to it (so OS can be derived from it afterwards).
/// \param O the programmer in the loop (experiments: the OS protocol).
LocateReport locateFault(const lang::Program &Prog, ddg::DepGraph &G,
                         const slicing::PotentialDepAnalyzer &PD,
                         ImplicitDepVerifier &Verifier,
                         const interp::ValueProfile *Values,
                         const slicing::OutputVerdicts &V,
                         slicing::Oracle &O, const LocateConfig &Config);

/// Derives the paper's OS -- the failure-inducing dependence chain from
/// the root cause to the failure -- on \p G's current edges (run
/// locateFault first so verified implicit edges are present): instances
/// reachable forward from any instance of \p RootCause and backward from
/// the wrong output.
std::vector<bool> failureInducingChain(const ddg::DepGraph &G,
                                       StmtId RootCause,
                                       const slicing::OutputVerdicts &V);

} // namespace core
} // namespace eoe

#endif // EOE_CORE_LOCATEFAULT_H
