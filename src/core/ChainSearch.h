//===-- core/ChainSearch.h - Multi-switch perturbation chains ----*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-switch perturbation chains (docs/chains.md; the paper's section
/// 5 observes that a single switch often cannot force the omitted code
/// because a second predicate downstream still blocks it -- the mini-gzip
/// fault needed several coordinated alterations).
///
/// When every single-switch verdict for a use comes back NOT_ID,
/// locateFault hands the candidate set to this search, which extends the
/// decision sequence breadth-first: from the base switch [p] it switches
/// one additional predicate instance chosen from the chained run's own
/// trace -- an instance that executes after the last decision fired and
/// is (transitively) control-dependent on a fired decision -- and asks
/// the verifier to classify the use against the multi-decision run. A
/// STRONG_ID chain wins immediately; the first ID chain is remembered as
/// a fallback. The committed dependence edge is (use -> p): the chain is
/// evidence that p's outcome (together with downstream outcomes it
/// gates) implicitly affects the use.
///
/// The search is deliberately serial and its exploration order is a pure
/// function of (trace, candidate order, depth, budget), so chain results
/// -- and the verify.chain.* counters -- are bit-identical at any thread
/// count. Chained runs are cached by the full decision sequence in the
/// verifier, and between depth levels the switched-run store is sealed so
/// a depth-k run's divergence-keyed snapshots seed depth-k+1 resumes
/// (SwitchedRunStore's longest-matching-prefix lookup).
///
//===----------------------------------------------------------------------===//

#ifndef EOE_CORE_CHAINSEARCH_H
#define EOE_CORE_CHAINSEARCH_H

#include "core/VerifyDep.h"

#include <vector>

namespace eoe {
namespace core {

/// Breadth-first multi-switch chain search over one failing execution.
/// One instance serves a whole locateFault invocation: the re-execution
/// budget is global across uses, so a pathological early use cannot be
/// retried ad infinitum while later uses starve.
class ChainSearch {
public:
  struct Result {
    bool Found = false;
    /// True when the winning chain produced the expected output at the
    /// wrong output's matched point (STRONG_ID); false for an ID chain.
    bool Strong = false;
    /// The chain's base predicate instance in the original trace -- the
    /// committed edge's source.
    TraceIdx BasePred = InvalidId;
    /// The full decision sequence, base first (size >= 2).
    std::vector<interp::SwitchDecision> Chain;
  };

  /// \p T must be the verifier's original failing trace. \p MaxDepth is
  /// the longest decision sequence tried (< 2 disables the search);
  /// \p Budget caps chained verifications across this object's lifetime.
  ChainSearch(ImplicitDepVerifier &Verifier, const interp::ExecutionTrace &T,
              unsigned MaxDepth, unsigned Budget);

  /// Searches for a chain rooted at one of \p Candidates (the use's
  /// single-switch candidate set, which must already have been verified
  /// -- the depth-1 traces come from the verifier's cache) that verifies
  /// (\p UseInst, \p UseLoad). Serial; deterministic.
  Result search(const std::vector<TraceIdx> &Candidates, TraceIdx UseInst,
                ExprId UseLoad);

  /// Chained verifications spent so far against the budget.
  size_t used() const { return Used; }

private:
  /// Extension candidates of a chained run: predicate instances in \p EP
  /// strictly after the last fired decision whose dynamic control-
  /// dependence chain reaches a fired decision, deduplicated per static
  /// statement (closest instance first), in trace order. Empty when some
  /// decision never fired.
  std::vector<TraceIdx>
  extensions(const interp::ExecutionTrace &EP,
             const std::vector<interp::SwitchDecision> &Chain) const;

  ImplicitDepVerifier &Verifier;
  const interp::ExecutionTrace &T;
  unsigned MaxDepth;
  unsigned Budget;
  size_t Used = 0;
};

} // namespace core
} // namespace eoe

#endif // EOE_CORE_CHAINSEARCH_H
