//===-- core/LocateFault.cpp - Demand-driven fault location -------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/LocateFault.h"

#include "core/ChainSearch.h"

#include <deque>
#include <map>
#include <memory>
#include <set>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;
using namespace eoe::slicing;

namespace {

/// True if any instance of the ranked slice belongs to the root cause.
bool containsRootCause(const std::vector<TraceIdx> &Ranked,
                       const ExecutionTrace &T, Oracle &O) {
  for (TraceIdx I : Ranked)
    if (O.isRootCause(T.step(I).Stmt))
      return true;
  return false;
}

} // namespace

LocateReport eoe::core::locateFault(const lang::Program &Prog,
                                    ddg::DepGraph &G,
                                    const PotentialDepAnalyzer &PD,
                                    ImplicitDepVerifier &Verifier,
                                    const ValueProfile *Values,
                                    const OutputVerdicts &V, Oracle &O,
                                    const LocateConfig &Config) {
  const ExecutionTrace &T = G.trace();
  LocateReport Report;

  // Batched scheduling: the candidate set of the selected use and the
  // fan-out set of a winning predicate are collected into batches whose
  // switched re-executions run concurrently on the verifier's pool.
  // Verdicts are pure and joined in request order, so the batched path
  // is bit-identical to the serial one; Threads == 1 keeps the original
  // one-at-a-time reference loop.
  VerifyScheduler Scheduler(Verifier);
  const bool Batched = Config.Threads != 1;

  // One registry serves the whole locate pipeline: the verifier's
  // configured registry (or its private fallback), so Table 3 counters
  // and the per-round breakdown land next to each other.
  support::StatsRegistry &Reg = Verifier.stats();
  support::EventTracer *Tracer = Verifier.tracer();
  support::EventTracer::Span LocateSpan(Tracer, "locate", "core");
  support::ScopedTimer LocateTimed(&Reg.timer("locate.total_time"));

  // Multi-switch perturbation chains (docs/chains.md): when every
  // single-switch verdict for a use comes back NOT_ID, the search below
  // extends the decision sequence. One object for the whole procedure:
  // the re-execution budget is global across uses and rounds.
  std::unique_ptr<ChainSearch> Chains;
  if (Config.Opt.Reuse.ChainDepth >= 2)
    Chains = std::make_unique<ChainSearch>(
        Verifier, T, Config.Opt.Reuse.ChainDepth, Config.Opt.Reuse.ChainBudget);

  ConfidenceAnalysis CA(Prog, G, Values, V);
  PruneState Prune;
  std::vector<TraceIdx> Ranked;
  {
    support::EventTracer::Span PruneSpan(Tracer, "prune", "slicing");
    Ranked = pruneSlicing(CA, O, Prune, &Reg);
  }

  // Verified-but-uncommitted expansions, keyed by (instance, load).
  struct VerifiedUse {
    TraceIdx Use = InvalidId;
    ExprId Load = InvalidId;
    std::vector<TraceIdx> Strong;
    std::vector<TraceIdx> Plain;
  };
  std::map<std::pair<TraceIdx, ExprId>, VerifiedUse> Pool;
  std::set<std::pair<TraceIdx, ExprId>> Committed;

  while (!containsRootCause(Ranked, T, O) &&
         Report.Iterations < Config.MaxIterations) {
    support::EventTracer::Span RoundSpan(Tracer, "locate.round", "core");
    support::ScopedTimer RoundTimed(&Reg.timer("locate.round_time"));
    // Sweep the pruned slice's uses in rank order, verifying each use's
    // candidate predicates. Strong implicit dependences override plain
    // ones (Algorithm 2 lines 10-11); the sweep commits the first use
    // with strong evidence, or -- when no strong dependence exists
    // anywhere in the candidate set -- the highest-ranked use with plain
    // evidence.
    const VerifiedUse *ToCommit = nullptr;
    const VerifiedUse *FirstPlain = nullptr;
    for (TraceIdx I : Ranked) {
      for (const UseRecord &Use : T.step(I).Uses) {
        auto Key = std::make_pair(I, Use.LoadExpr);
        if (Committed.count(Key))
          continue;
        auto It = Pool.find(Key);
        if (It == Pool.end()) {
          VerifiedUse VU;
          VU.Use = I;
          VU.Load = Use.LoadExpr;
          std::vector<TraceIdx> Candidates =
              PD.compute(I, Use, Config.OnePerPredicate);
          Reg.counter("locate.candidate_requests").add(Candidates.size());
          Reg.histogram("locate.candidates_per_use").record(Candidates.size());
          // One-shot checkpoint collection over the first non-empty
          // candidate set -- before any verification, and at the same
          // point on the serial and batched paths, so checkpoint state
          // is invariant across thread counts.
          Verifier.maybeCollectCheckpoints(Candidates);
          std::vector<DepVerdict> Verdicts;
          if (Batched) {
            // The whole candidate set PD(u) as one batch: its switched
            // runs are independent and fan out onto the pool.
            std::vector<VerifyRequest> Requests;
            Requests.reserve(Candidates.size());
            for (TraceIdx P : Candidates)
              Requests.push_back({P, I, Use.LoadExpr});
            Verdicts = Scheduler.verifyBatch(Requests);
          } else {
            Verdicts.reserve(Candidates.size());
            for (TraceIdx P : Candidates)
              Verdicts.push_back(Verifier.verify(P, I, Use.LoadExpr));
          }
          for (size_t N = 0; N < Candidates.size(); ++N) {
            switch (Verdicts[N]) {
            case DepVerdict::StrongImplicit:
              VU.Strong.push_back(Candidates[N]);
              break;
            case DepVerdict::Implicit:
              VU.Plain.push_back(Candidates[N]);
              break;
            case DepVerdict::NotImplicit:
              break;
            }
          }
          // Single-switch evidence exhausted: extend into multi-switch
          // chains. The trigger is a pure function of the verdicts --
          // which are thread-count invariant -- and the search itself is
          // serial, so the batched path reaches the same chains in the
          // same order as the serial one. A winning chain commits its
          // base predicate: the chain is evidence that the base's
          // outcome implicitly affects the use.
          if (Chains && VU.Strong.empty() && VU.Plain.empty() &&
              !Candidates.empty()) {
            ChainSearch::Result CR =
                Chains->search(Candidates, I, Use.LoadExpr);
            if (CR.Found) {
              (CR.Strong ? VU.Strong : VU.Plain).push_back(CR.BasePred);
              Reg.counter("locate.chain.commits").add();
            }
          }
          It = Pool.emplace(Key, std::move(VU)).first;
        }
        const VerifiedUse &VU = It->second;
        if (!VU.Strong.empty()) {
          ToCommit = &VU;
          break;
        }
        if (!FirstPlain && !VU.Plain.empty())
          FirstPlain = &VU;
      }
      if (ToCommit)
        break;
    }
    if (!ToCommit)
      ToCommit = FirstPlain;
    if (!ToCommit)
      break; // No verifiable dependence left: the procedure failed.

    ++Report.Iterations;
    Reg.counter("locate.rounds").add();
    Committed.insert({ToCommit->Use, ToCommit->Load});
    bool UseStrong = !ToCommit->Strong.empty();
    const std::vector<TraceIdx> &Winners =
        UseStrong ? ToCommit->Strong : ToCommit->Plain;

    // Add the verified edges. The fanout of Algorithm 2 lines 12-18
    // additionally verifies p -> t for other potential dependents t of
    // each winning predicate; per Figure 5 its purpose is to let
    // *verified-correct* dependents sanitize p during re-pruning, so only
    // those targets are considered.
    //
    // The fanout target sets depend only on the trace, the potential-
    // dependence analysis, and the confidence state -- all fixed until
    // the re-prune below -- so the whole round's requests can be
    // collected up front and batched; edges are then committed in the
    // same order the serial loop would have produced.
    std::vector<VerifyRequest> FanoutRequests;
    std::vector<size_t> FanoutBegin; // per winner, index into requests
    if (Config.VerifyFanout) {
      const std::vector<bool> &Slice = CA.wrongOutputSlice();
      for (TraceIdx P : Winners) {
        FanoutBegin.push_back(FanoutRequests.size());
        for (TraceIdx TInst = 0; TInst < T.size(); ++TInst) {
          if (TInst == ToCommit->Use || !Slice[TInst] ||
              !CA.inferredCorrect(TInst))
            continue;
          for (const UseRecord &Use : T.step(TInst).Uses)
            if (PD.isPotentialDep(P, TInst, Use))
              FanoutRequests.push_back({P, TInst, Use.LoadExpr});
        }
      }
      FanoutBegin.push_back(FanoutRequests.size());
      Reg.counter("locate.fanout_requests").add(FanoutRequests.size());
    }
    std::vector<DepVerdict> FanoutVerdicts;
    if (Batched) {
      FanoutVerdicts = Scheduler.verifyBatch(FanoutRequests);
    } else {
      FanoutVerdicts.reserve(FanoutRequests.size());
      for (const VerifyRequest &R : FanoutRequests)
        FanoutVerdicts.push_back(
            Verifier.verify(R.PredInst, R.UseInst, R.UseLoad));
    }

    for (size_t W = 0; W < Winners.size(); ++W) {
      TraceIdx P = Winners[W];
      G.addImplicitEdge(ToCommit->Use, P, UseStrong);
      ++Report.ExpandedEdges;
      if (UseStrong)
        ++Report.StrongEdges;
      if (!Config.VerifyFanout)
        continue;
      for (size_t R = FanoutBegin[W]; R < FanoutBegin[W + 1]; ++R) {
        DepVerdict Verdict = FanoutVerdicts[R];
        bool Matches = UseStrong ? Verdict == DepVerdict::StrongImplicit
                                 : Verdict == DepVerdict::Implicit;
        if (Matches) {
          G.addImplicitEdge(FanoutRequests[R].UseInst, P, UseStrong);
          ++Report.ExpandedEdges;
          if (UseStrong)
            ++Report.StrongEdges;
        }
      }
    }

    // Re-prune with the expanded graph (Algorithm 2 line 19).
    {
      support::EventTracer::Span PruneSpan(Tracer, "prune", "slicing");
      Ranked = pruneSlicing(CA, O, Prune, &Reg);
    }
  }

  Report.RootCauseFound = containsRootCause(Ranked, T, O);
  Reg.counter("locate.expanded_edges").add(Report.ExpandedEdges);
  Reg.counter("locate.strong_edges").add(Report.StrongEdges);
  Reg.histogram("locate.final_slice_size").record(Ranked.size());
  Report.UserPrunings = Prune.UserPrunings;
  Report.Verifications = Verifier.verificationCount();
  Report.Reexecutions = Verifier.reexecutionCount();
  Report.FinalPrunedSlice = Ranked;
  std::vector<bool> Member(T.size(), false);
  for (TraceIdx I : Ranked)
    Member[I] = true;
  Report.IPSStats = G.stats(Member);
  return Report;
}

std::vector<bool>
eoe::core::failureInducingChain(const ddg::DepGraph &G, StmtId RootCause,
                                const OutputVerdicts &V) {
  const ExecutionTrace &T = G.trace();

  // The paper's OS is the failure-inducing dependence *chain* -- a thin
  // path from the root cause to the failure, identified manually. We
  // reconstruct it as a shortest backward dependence path from the wrong
  // output to an instance of the root cause over the expanded graph
  // (data, control, and verified implicit edges).
  std::vector<TraceIdx> Parent(T.size(), InvalidId);
  std::vector<bool> Seen(T.size(), false);
  std::deque<TraceIdx> Work;
  TraceIdx Start = T.Outputs.at(V.WrongOutput).Step;
  Seen[Start] = true;
  Work.push_back(Start);
  TraceIdx Hit = InvalidId;

  auto Visit = [&](TraceIdx From, TraceIdx To) {
    if (To == InvalidId || Seen[To])
      return;
    Seen[To] = true;
    Parent[To] = From;
    Work.push_back(To);
  };

  while (!Work.empty() && Hit == InvalidId) {
    TraceIdx I = Work.front();
    Work.pop_front();
    if (T.step(I).Stmt == RootCause) {
      Hit = I;
      break;
    }
    const StepRecord &Step = T.step(I);
    for (const UseRecord &Use : Step.Uses)
      Visit(I, Use.Def);
    Visit(I, Step.CdParent);
    for (const ddg::DepGraph::ImplicitEdge &E : G.implicitEdges())
      if (E.Use == I)
        Visit(I, E.Pred);
  }

  std::vector<bool> Chain(T.size(), false);
  if (Hit == InvalidId) {
    // No dependence path (e.g. before locate() has added the implicit
    // edges): fall back to the forward/backward intersection.
    ddg::DepGraph::ClosureOptions All;
    std::vector<TraceIdx> Roots;
    for (TraceIdx I = 0; I < T.size(); ++I)
      if (T.step(I).Stmt == RootCause)
        Roots.push_back(I);
    std::vector<bool> Forward = G.forwardClosure(Roots, All);
    std::vector<bool> Backward = G.backwardClosure({Start}, All);
    for (TraceIdx I = 0; I < T.size(); ++I)
      Chain[I] = Forward[I] && Backward[I];
    return Chain;
  }
  for (TraceIdx I = Hit; I != InvalidId; I = Parent[I])
    Chain[I] = true;
  return Chain;
}
