//===-- core/ValuePerturb.cpp - Value-perturbation verification ---------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "core/ValuePerturb.h"

#include "align/Aligner.h"

#include <cassert>

using namespace eoe;
using namespace eoe::core;
using namespace eoe::interp;

ValuePerturbVerifier::ValuePerturbVerifier(const Interpreter &Interp,
                                           const ExecutionTrace &E,
                                           std::vector<int64_t> Input,
                                           const slicing::OutputVerdicts &V,
                                           Config C)
    : Interp(Interp), E(E), Input(std::move(Input)), V(V), C(C) {}

ValuePerturbVerifier::Result
ValuePerturbVerifier::verify(TraceIdx DefInst, TraceIdx UseInst,
                             ExprId UseLoad,
                             const std::vector<int64_t> &CandidateValues) const {
  Result R;
  const StepRecord &DefStep = E.step(DefInst);
  assert(!DefStep.Defs.empty() && "perturbation target defines nothing");

  // The original value the use observed, for change detection.
  int64_t OriginalValue = 0;
  bool HaveOriginal = false;
  for (const UseRecord &Use : E.step(UseInst).Uses) {
    if (Use.LoadExpr == UseLoad) {
      OriginalValue = Use.Value;
      HaveOriginal = true;
      break;
    }
  }

  for (int64_t Candidate : CandidateValues) {
    if (Candidate == DefStep.Value)
      continue; // Re-executing with the same value proves nothing.

    Interpreter::Options Opts;
    Opts.MaxSteps = C.MaxSteps;
    Opts.Perturb = PerturbSpec{DefStep.Stmt, DefStep.InstanceNo, Candidate};
    ExecutionTrace EP = Interp.run(Input, Opts);
    ++R.Reexecutions;
    if (EP.SwitchedStep == InvalidId || EP.Exit != ExitReason::Finished)
      continue; // Not reached, timed out, or crashed: no evidence.

    align::ExecutionAligner A(E, EP);

    // Strong analogue: did the wrong output's matching point produce the
    // expected value?
    const OutputEvent &Wrong = E.Outputs.at(V.WrongOutput);
    align::AlignResult OMatch = A.match(Wrong.Step);
    if (OMatch.found()) {
      for (const OutputEvent &Event : EP.Outputs) {
        if (Event.Step == OMatch.Matched && Event.ArgNo == Wrong.ArgNo &&
            Event.Value == V.ExpectedValue) {
          R.DependenceExposed = true;
          R.OutputCorrected = true;
          R.WitnessValue = Candidate;
          return R;
        }
      }
    }

    // The use disappeared, or observes a different value: exposed.
    align::AlignResult UMatch = A.match(UseInst);
    if (!UMatch.found()) {
      R.DependenceExposed = true;
      R.WitnessValue = Candidate;
      return R;
    }
    for (const UseRecord &Use : EP.step(UMatch.Matched).Uses) {
      if (Use.LoadExpr != UseLoad)
        continue;
      if (HaveOriginal && Use.Value != OriginalValue) {
        R.DependenceExposed = true;
        R.WitnessValue = Candidate;
        return R;
      }
      break;
    }
  }
  return R;
}
