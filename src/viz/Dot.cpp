//===-- viz/Dot.cpp - GraphViz exports ------------------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "viz/Dot.h"

#include "lang/PrettyPrinter.h"

#include <sstream>

using namespace eoe;
using namespace eoe::viz;

namespace {

/// Escapes a label for inclusion in a double-quoted dot string.
std::string escape(const std::string &Text) {
  std::string Out;
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string stmtLabel(const lang::Program &Prog, StmtId S) {
  return escape(lang::stmtToString(Prog.statement(S)));
}

} // namespace

std::string viz::cfgToDot(const lang::Program &Prog, const analysis::CFG &G,
                          const lang::Function &F) {
  std::ostringstream OS;
  OS << "digraph cfg_" << F.name() << " {\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";
  for (uint32_t N = 0; N < G.size(); ++N) {
    std::string Label;
    if (N == analysis::CFG::EntryNode)
      Label = "ENTRY " + F.name();
    else if (N == analysis::CFG::ExitNode)
      Label = "EXIT";
    else
      Label = stmtLabel(Prog, G.node(N).Stmt);
    OS << "  n" << N << " [label=\"" << Label << "\"";
    if (G.isBranch(N))
      OS << ", shape=diamond";
    OS << "];\n";
  }
  for (uint32_t N = 0; N < G.size(); ++N) {
    const auto &Succs = G.node(N).Succs;
    for (size_t I = 0; I < Succs.size(); ++I) {
      OS << "  n" << N << " -> n" << Succs[I];
      if (G.isBranch(N))
        OS << " [label=\"" << (I == 0 ? "T" : "F") << "\"]";
      OS << ";\n";
    }
  }
  OS << "}\n";
  return OS.str();
}

std::string viz::regionTreeToDot(const lang::Program &Prog,
                                 const align::RegionTree &Tree,
                                 size_t MaxNodes) {
  const interp::ExecutionTrace &T = Tree.trace();
  size_t Limit = std::min<size_t>(T.size(), MaxNodes);
  std::ostringstream OS;
  OS << "digraph regions {\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";
  for (TraceIdx I = 0; I < Limit; ++I) {
    OS << "  i" << I << " [label=\"[" << I << "] "
       << stmtLabel(Prog, T.step(I).Stmt) << "\"";
    if (T.step(I).isPredicateInstance())
      OS << ", shape=diamond, label=\"[" << I << "] "
         << stmtLabel(Prog, T.step(I).Stmt) << " ("
         << (T.step(I).branch() ? "T" : "F") << ")\"";
    OS << "];\n";
  }
  for (TraceIdx I = 0; I < Limit; ++I)
    if (Tree.parent(I) != InvalidId && Tree.parent(I) < Limit)
      OS << "  i" << Tree.parent(I) << " -> i" << I << ";\n";
  if (Limit < T.size())
    OS << "  truncated [shape=plaintext, label=\"... " << (T.size() - Limit)
       << " more instances\"];\n";
  OS << "}\n";
  return OS.str();
}

std::string viz::depGraphToDot(const lang::Program &Prog,
                               const ddg::DepGraph &G,
                               const std::vector<bool> *Filter,
                               size_t MaxNodes) {
  const interp::ExecutionTrace &T = G.trace();
  auto Included = [&](TraceIdx I) {
    return (!Filter || (*Filter)[I]) && I < MaxNodes;
  };

  std::ostringstream OS;
  OS << "digraph ddg {\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";
  size_t Shown = 0;
  for (TraceIdx I = 0; I < T.size(); ++I) {
    if (!Included(I))
      continue;
    ++Shown;
    OS << "  i" << I << " [label=\"[" << I << "] "
       << stmtLabel(Prog, T.step(I).Stmt) << "\"];\n";
  }
  for (TraceIdx I = 0; I < T.size(); ++I) {
    if (!Included(I))
      continue;
    for (const interp::UseRecord &Use : T.step(I).Uses)
      if (Use.Def != InvalidId && Included(Use.Def))
        OS << "  i" << I << " -> i" << Use.Def << ";\n";
    if (T.step(I).CdParent != InvalidId && Included(T.step(I).CdParent))
      OS << "  i" << I << " -> i" << T.step(I).CdParent
         << " [style=dashed];\n";
  }
  for (const ddg::DepGraph::ImplicitEdge &E : G.implicitEdges())
    if (Included(E.Use) && Included(E.Pred))
      OS << "  i" << E.Use << " -> i" << E.Pred
         << " [color=red, penwidth=2, label=\""
         << (E.Strong ? "strong id" : "id") << "\"];\n";
  if (Shown == 0)
    OS << "  empty [shape=plaintext, label=\"(no instances selected)\"];\n";
  OS << "}\n";
  return OS.str();
}
