//===-- viz/Dot.h - GraphViz exports -----------------------------*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GraphViz (.dot) renderings of the project's graph structures, for
/// inspecting what the algorithms operate on: control-flow graphs,
/// dynamic region trees (Definition 3), and dynamic dependence graphs
/// with their verified implicit edges. Exposed through `eoec dot-*`.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_VIZ_DOT_H
#define EOE_VIZ_DOT_H

#include "align/RegionTree.h"
#include "analysis/CFG.h"
#include "ddg/DepGraph.h"
#include "lang/AST.h"

#include <string>

namespace eoe {
namespace viz {

/// Renders function \p F's CFG. Branch edges are labeled T/F.
std::string cfgToDot(const lang::Program &Prog, const analysis::CFG &G,
                     const lang::Function &F);

/// Renders the region forest of \p Tree (one node per statement
/// instance). Traces longer than \p MaxNodes are truncated with a note.
std::string regionTreeToDot(const lang::Program &Prog,
                            const align::RegionTree &Tree,
                            size_t MaxNodes = 400);

/// Renders \p G's dynamic dependences: solid edges for data, dashed for
/// control, bold red for verified implicit dependences. When \p Filter
/// is non-null only instances with Filter[i] set are included (pass a
/// slice's membership bitset to render just the slice).
std::string depGraphToDot(const lang::Program &Prog, const ddg::DepGraph &G,
                          const std::vector<bool> *Filter = nullptr,
                          size_t MaxNodes = 400);

} // namespace viz
} // namespace eoe

#endif // EOE_VIZ_DOT_H
