//===-- interp/CheckpointDiskStore.cpp - Persistent checkpoints ---------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/CheckpointDiskStore.h"

#include "lang/AST.h"
#include "support/Stats.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unordered_map>

using namespace eoe;
using namespace eoe::interp;

//===----------------------------------------------------------------------===//
// CRC32
//===----------------------------------------------------------------------===//

static std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> T{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    T[I] = C;
  }
  return T;
}

uint32_t eoe::interp::ckptCrc32(const void *Data, size_t Len) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  uint32_t C = 0xFFFFFFFFu;
  const auto *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I)
    C = Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// Byte stream primitives
//===----------------------------------------------------------------------===//

namespace {

constexpr char Magic[8] = {'E', 'O', 'E', 'C', 'K', 'P', 'T', '\0'};

class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void raw(const char *Data, size_t Len) { Buf.append(Data, Len); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void i8(int8_t V) { u8(static_cast<uint8_t>(V)); }

  size_t size() const { return Buf.size(); }
  std::string take() { return std::move(Buf); }
  const std::string &str() const { return Buf; }

  /// Overwrites 4 bytes at \p At (for back-patching the header CRC).
  void patchU32(size_t At, uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf[At + I] = static_cast<char>((V >> (8 * I)) & 0xFF);
  }

private:
  std::string Buf;
};

/// Bounds-checked little-endian reader. Every accessor returns false on
/// exhaustion instead of reading past the end; callers propagate.
class ByteReader {
public:
  explicit ByteReader(std::string_view Bytes) : Bytes(Bytes) {}

  size_t remaining() const { return Bytes.size() - Pos; }
  bool done() const { return Pos == Bytes.size(); }

  bool u8(uint8_t &V) {
    if (remaining() < 1)
      return false;
    V = static_cast<uint8_t>(Bytes[Pos++]);
    return true;
  }
  bool u32(uint32_t &V) {
    if (remaining() < 4)
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(Bytes[Pos + I]))
           << (8 * I);
    Pos += 4;
    return true;
  }
  bool u64(uint64_t &V) {
    if (remaining() < 8)
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(Bytes[Pos + I]))
           << (8 * I);
    Pos += 8;
    return true;
  }
  bool i64(int64_t &V) {
    uint64_t U;
    if (!u64(U))
      return false;
    V = static_cast<int64_t>(U);
    return true;
  }
  bool i8(int8_t &V) {
    uint8_t U;
    if (!u8(U))
      return false;
    V = static_cast<int8_t>(U);
    return true;
  }
  /// Reads a count that prefixes \p ElemMin-byte-minimum elements; false
  /// when the claimed count cannot fit in the bytes left (a corrupted
  /// length field must not drive a multi-gigabyte reserve).
  bool count(uint32_t &N, size_t ElemMin) {
    if (!u32(N))
      return false;
    return static_cast<uint64_t>(N) * ElemMin <= remaining();
  }
  bool slice(std::string_view &Out, size_t Len) {
    if (remaining() < Len)
      return false;
    Out = Bytes.substr(Pos, Len);
    Pos += Len;
    return true;
  }

private:
  std::string_view Bytes;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Structure serializers
//===----------------------------------------------------------------------===//

using FuncIndex = std::unordered_map<const lang::Function *, uint32_t>;

void writeStepRecord(ByteWriter &W, const StepRecord &R) {
  W.u32(R.Stmt);
  W.u32(R.CdParent);
  W.u32(R.InstanceNo);
  W.i8(R.BranchTaken);
  W.i64(R.Value);
  W.u32(static_cast<uint32_t>(R.Uses.size()));
  for (const UseRecord &U : R.Uses) {
    W.u64(U.Loc.Raw);
    W.u32(U.Def);
    W.u32(U.LoadExpr);
    W.u32(U.Var);
    W.i64(U.Value);
  }
  W.u32(static_cast<uint32_t>(R.Defs.size()));
  for (const DefRecord &D : R.Defs) {
    W.u64(D.Loc.Raw);
    W.u32(D.Var);
    W.i64(D.Value);
  }
}

bool readStepRecord(ByteReader &R, StepRecord &Out) {
  uint32_t N;
  if (!R.u32(Out.Stmt) || !R.u32(Out.CdParent) || !R.u32(Out.InstanceNo) ||
      !R.i8(Out.BranchTaken) || !R.i64(Out.Value))
    return false;
  if (!R.count(N, 28))
    return false;
  Out.Uses.resize(N);
  for (UseRecord &U : Out.Uses)
    if (!R.u64(U.Loc.Raw) || !R.u32(U.Def) || !R.u32(U.LoadExpr) ||
        !R.u32(U.Var) || !R.i64(U.Value))
      return false;
  if (!R.count(N, 20))
    return false;
  Out.Defs.resize(N);
  for (DefRecord &D : Out.Defs)
    if (!R.u64(D.Loc.Raw) || !R.u32(D.Var) || !R.i64(D.Value))
      return false;
  return true;
}

void writeVecI64(ByteWriter &W, const std::vector<int64_t> &V) {
  W.u32(static_cast<uint32_t>(V.size()));
  for (int64_t X : V)
    W.i64(X);
}

bool readVecI64(ByteReader &R, std::vector<int64_t> &V) {
  uint32_t N;
  if (!R.count(N, 8))
    return false;
  V.resize(N);
  for (int64_t &X : V)
    if (!R.i64(X))
      return false;
  return true;
}

void writeVecU32(ByteWriter &W, const std::vector<uint32_t> &V) {
  W.u32(static_cast<uint32_t>(V.size()));
  for (uint32_t X : V)
    W.u32(X);
}

bool readVecU32(ByteReader &R, std::vector<uint32_t> &V) {
  uint32_t N;
  if (!R.count(N, 4))
    return false;
  V.resize(N);
  for (uint32_t &X : V)
    if (!R.u32(X))
      return false;
  return true;
}

void writePath(ByteWriter &W, const std::vector<ResumeEntry> &Path) {
  W.u32(static_cast<uint32_t>(Path.size()));
  for (const ResumeEntry &E : Path) {
    W.u8(static_cast<uint8_t>(E.In));
    W.u32(E.Index);
  }
}

bool readPath(ByteReader &R, std::vector<ResumeEntry> &Path) {
  uint32_t N;
  if (!R.count(N, 5))
    return false;
  Path.resize(N);
  for (ResumeEntry &E : Path) {
    uint8_t In;
    if (!R.u8(In) || !R.u32(E.Index))
      return false;
    if (In > static_cast<uint8_t>(ResumeEntry::Body::Loop))
      return false;
    E.In = static_cast<ResumeEntry::Body>(In);
  }
  return true;
}

void writePredMap(ByteWriter &W,
                  const std::unordered_map<StmtId, TraceIdx> &Map) {
  // Sorted for a canonical byte image: equal maps serialize identically
  // regardless of hash-table iteration order.
  std::vector<std::pair<StmtId, TraceIdx>> Sorted(Map.begin(), Map.end());
  std::sort(Sorted.begin(), Sorted.end());
  W.u32(static_cast<uint32_t>(Sorted.size()));
  for (const auto &[Stmt, Inst] : Sorted) {
    W.u32(Stmt);
    W.u32(Inst);
  }
}

bool readPredMap(ByteReader &R, std::unordered_map<StmtId, TraceIdx> &Map) {
  uint32_t N;
  if (!R.count(N, 8))
    return false;
  Map.clear();
  Map.reserve(N);
  for (uint32_t I = 0; I < N; ++I) {
    uint32_t Stmt, Inst;
    if (!R.u32(Stmt) || !R.u32(Inst))
      return false;
    Map[Stmt] = Inst;
  }
  return true;
}

bool writeFrame(ByteWriter &W, const CheckpointFrame &CF,
                const FuncIndex &Funcs) {
  auto It = Funcs.find(CF.State.Func);
  if (It == Funcs.end())
    return false; // Frame references a function outside this Program.
  W.u64(CF.State.Serial);
  W.u32(It->second);
  writeVecI64(W, CF.State.Mem);
  writeVecU32(W, CF.State.LastDef);
  W.i64(CF.State.RetVal);
  W.u32(CF.State.RetValDef);
  W.u32(CF.State.CallSite);
  writePredMap(W, CF.State.LastPredInstance);
  writePath(W, CF.Path);
  W.u32(CF.PendingRec);
  writeStepRecord(W, CF.PendingSnapshot);
  return true;
}

bool readFrame(ByteReader &R, const lang::Program &Prog, CheckpointFrame &CF) {
  uint32_t FuncId;
  if (!R.u64(CF.State.Serial) || !R.u32(FuncId))
    return false;
  if (FuncId >= Prog.functions().size())
    return false;
  CF.State.Func = Prog.functions()[FuncId];
  if (!readVecI64(R, CF.State.Mem) || !readVecU32(R, CF.State.LastDef) ||
      !R.i64(CF.State.RetVal) || !R.u32(CF.State.RetValDef) ||
      !R.u32(CF.State.CallSite) || !readPredMap(R, CF.State.LastPredInstance) ||
      !readPath(R, CF.Path) || !R.u32(CF.PendingRec) ||
      !readStepRecord(R, CF.PendingSnapshot))
    return false;
  return true;
}

bool readBool(ByteReader &R, bool &B) {
  uint8_t V;
  if (!R.u8(V) || V > 1) // Canonical bools only: re-encode is byte-stable.
    return false;
  B = V != 0;
  return true;
}

bool writeCheckpoint(ByteWriter &W, const Checkpoint &CP,
                     const FuncIndex &Funcs) {
  W.u32(CP.Index);
  W.u64(CP.InputCursor);
  W.u64(CP.StepCount);
  W.u64(CP.FrameCounter);
  W.u64(CP.OutputCount);
  W.u8(CP.InputIndependent ? 1 : 0);
  writeVecI64(W, CP.GlobalMem);
  writeVecU32(W, CP.GlobalLastDef);
  writeVecU32(W, CP.InstCount);
  W.u32(static_cast<uint32_t>(CP.Frames.size()));
  for (const CheckpointFrame &CF : CP.Frames)
    if (!writeFrame(W, CF, Funcs))
      return false;
  return true;
}

bool readCheckpoint(ByteReader &R, const lang::Program &Prog, Checkpoint &CP) {
  uint64_t InputCursor, OutputCount;
  if (!R.u32(CP.Index) || !R.u64(InputCursor) || !R.u64(CP.StepCount) ||
      !R.u64(CP.FrameCounter) || !R.u64(OutputCount) ||
      !readBool(R, CP.InputIndependent))
    return false;
  CP.InputCursor = static_cast<size_t>(InputCursor);
  CP.OutputCount = static_cast<size_t>(OutputCount);
  if (!readVecI64(R, CP.GlobalMem) || !readVecU32(R, CP.GlobalLastDef) ||
      !readVecU32(R, CP.InstCount))
    return false;
  uint32_t NFrames;
  if (!R.count(NFrames, 8))
    return false;
  CP.Frames.resize(NFrames);
  for (CheckpointFrame &CF : CP.Frames)
    if (!readFrame(R, Prog, CF))
      return false;
  return true;
}

void writeArrayDeltaI64(ByteWriter &W, const ArrayDelta<int64_t> &D) {
  W.u32(D.Size);
  W.u32(static_cast<uint32_t>(D.Changed.size()));
  for (const auto &[Idx, Val] : D.Changed) {
    W.u32(Idx);
    W.i64(Val);
  }
}

bool readArrayDeltaI64(ByteReader &R, ArrayDelta<int64_t> &D) {
  uint32_t N;
  if (!R.u32(D.Size) || !R.count(N, 12))
    return false;
  D.Changed.resize(N);
  for (auto &[Idx, Val] : D.Changed) {
    if (!R.u32(Idx) || !R.i64(Val))
      return false;
    if (Idx >= D.Size) // apply() writes Out[Idx] after resize(Size).
      return false;
  }
  return true;
}

void writeArrayDeltaU32(ByteWriter &W, const ArrayDelta<uint32_t> &D) {
  W.u32(D.Size);
  W.u32(static_cast<uint32_t>(D.Changed.size()));
  for (const auto &[Idx, Val] : D.Changed) {
    W.u32(Idx);
    W.u32(Val);
  }
}

bool readArrayDeltaU32(ByteReader &R, ArrayDelta<uint32_t> &D) {
  uint32_t N;
  if (!R.u32(D.Size) || !R.count(N, 8))
    return false;
  D.Changed.resize(N);
  for (auto &[Idx, Val] : D.Changed) {
    if (!R.u32(Idx) || !R.u32(Val))
      return false;
    if (Idx >= D.Size)
      return false;
  }
  return true;
}

void writePredMapDelta(ByteWriter &W, const PredMapDelta &D) {
  W.u32(static_cast<uint32_t>(D.Upserts.size()));
  for (const auto &[Stmt, Inst] : D.Upserts) {
    W.u32(Stmt);
    W.u32(Inst);
  }
  W.u32(static_cast<uint32_t>(D.Erased.size()));
  for (StmtId S : D.Erased)
    W.u32(S);
}

bool readPredMapDelta(ByteReader &R, PredMapDelta &D) {
  uint32_t N;
  if (!R.count(N, 8))
    return false;
  D.Upserts.resize(N);
  for (auto &[Stmt, Inst] : D.Upserts)
    if (!R.u32(Stmt) || !R.u32(Inst))
      return false;
  if (!R.count(N, 4))
    return false;
  D.Erased.resize(N);
  for (StmtId &S : D.Erased)
    if (!R.u32(S))
      return false;
  return true;
}

bool writeCheckpointDelta(ByteWriter &W, const CheckpointDelta &D,
                          const FuncIndex &Funcs) {
  W.u32(D.Index);
  W.u64(D.InputCursor);
  W.u64(D.StepCount);
  W.u64(D.FrameCounter);
  W.u64(D.OutputCount);
  W.u8(D.InputIndependent ? 1 : 0);
  writeArrayDeltaI64(W, D.GlobalMem);
  writeArrayDeltaU32(W, D.GlobalLastDef);
  writeArrayDeltaU32(W, D.InstCount);
  W.u32(static_cast<uint32_t>(D.Frames.size()));
  for (const CheckpointFrameDelta &FD : D.Frames) {
    W.u8(FD.Full ? 1 : 0);
    if (FD.Full) {
      if (!writeFrame(W, FD.Whole, Funcs))
        return false;
      continue;
    }
    W.u64(FD.Serial);
    W.i64(FD.RetVal);
    W.u32(FD.RetValDef);
    W.u32(FD.CallSite);
    writeArrayDeltaI64(W, FD.Mem);
    writeArrayDeltaU32(W, FD.LastDef);
    writePredMapDelta(W, FD.Preds);
    writePath(W, FD.Path);
    W.u32(FD.PendingRec);
    writeStepRecord(W, FD.PendingSnapshot);
  }
  return true;
}

/// \p Base is the previously decoded checkpoint the delta chains off;
/// non-Full frame deltas must resolve to a frame of \p Base or the file
/// is rejected (applyCheckpointDelta indexes Base.Frames unchecked).
bool readCheckpointDelta(ByteReader &R, const lang::Program &Prog,
                         const Checkpoint &Base, CheckpointDelta &D) {
  uint64_t InputCursor, OutputCount;
  if (!R.u32(D.Index) || !R.u64(InputCursor) || !R.u64(D.StepCount) ||
      !R.u64(D.FrameCounter) || !R.u64(OutputCount) ||
      !readBool(R, D.InputIndependent))
    return false;
  D.InputCursor = static_cast<size_t>(InputCursor);
  D.OutputCount = static_cast<size_t>(OutputCount);
  if (!readArrayDeltaI64(R, D.GlobalMem) ||
      !readArrayDeltaU32(R, D.GlobalLastDef) ||
      !readArrayDeltaU32(R, D.InstCount))
    return false;
  uint32_t NFrames;
  if (!R.count(NFrames, 1))
    return false;
  D.Frames.resize(NFrames);
  for (uint32_t I = 0; I < NFrames; ++I) {
    CheckpointFrameDelta &FD = D.Frames[I];
    if (!readBool(R, FD.Full))
      return false;
    if (FD.Full) {
      if (!readFrame(R, Prog, FD.Whole))
        return false;
      continue;
    }
    if (I >= Base.Frames.size())
      return false; // Delta against a frame the base does not have.
    if (!R.u64(FD.Serial) || !R.i64(FD.RetVal) || !R.u32(FD.RetValDef) ||
        !R.u32(FD.CallSite) || !readArrayDeltaI64(R, FD.Mem) ||
        !readArrayDeltaU32(R, FD.LastDef) || !readPredMapDelta(R, FD.Preds) ||
        !readPath(R, FD.Path) || !R.u32(FD.PendingRec) ||
        !readStepRecord(R, FD.PendingSnapshot))
      return false;
  }
  return true;
}

bool fail(std::string *Error, const char *Why) {
  if (Error)
    *Error = Why;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// File image encode / decode
//===----------------------------------------------------------------------===//

std::string eoe::interp::serializeCheckpoints(
    const std::vector<std::shared_ptr<const Checkpoint>> &Snapshots,
    const lang::Program &Prog, uint64_t ProgramHash, uint64_t MaxSteps,
    unsigned KeyframeInterval) {
  if (KeyframeInterval < 1)
    KeyframeInterval = 1;
  FuncIndex Funcs;
  for (uint32_t I = 0; I < Prog.functions().size(); ++I)
    Funcs[Prog.functions()[I]] = I;

  ByteWriter W;
  W.raw(Magic, sizeof(Magic));
  W.u32(CheckpointDiskVersion);
  W.u64(ProgramHash);
  W.u64(MaxSteps);
  W.u32(static_cast<uint32_t>(Snapshots.size()));
  size_t HeaderCrcAt = W.size();
  W.u32(0); // Header CRC placeholder.
  W.patchU32(HeaderCrcAt, ckptCrc32(W.str().data(), HeaderCrcAt));

  const Checkpoint *Prev = nullptr;
  unsigned ChainLen = 0;
  for (const auto &CP : Snapshots) {
    if (!CP)
      return {};
    ByteWriter Key;
    Key.u8(0);
    if (!writeCheckpoint(Key, *CP, Funcs))
      return {}; // Snapshot references functions outside Prog.
    std::string Payload = Key.take();
    if (Prev && ChainLen < KeyframeInterval) {
      ByteWriter Dw;
      Dw.u8(1);
      if (!writeCheckpointDelta(Dw, encodeCheckpointDelta(*Prev, *CP), Funcs))
        return {};
      // Mirror the in-memory store's rule: a delta that fails to shrink
      // below the full snapshot starts a fresh keyframe.
      if (Dw.size() < Payload.size()) {
        Payload = Dw.take();
        ++ChainLen;
      } else {
        ChainLen = 1;
      }
    } else {
      ChainLen = 1;
    }
    W.u32(static_cast<uint32_t>(Payload.size()));
    W.u32(ckptCrc32(Payload.data(), Payload.size()));
    W.raw(Payload.data(), Payload.size());
    Prev = CP.get();
  }
  return W.take();
}

static std::optional<std::vector<std::shared_ptr<const Checkpoint>>>
decodeImpl(std::string_view Bytes, const lang::Program &Prog,
           uint64_t ExpectedHash, uint64_t ExpectedMaxSteps,
           std::string *Error) {
  auto Reject = [&](const char *Why)
      -> std::optional<std::vector<std::shared_ptr<const Checkpoint>>> {
    fail(Error, Why);
    return std::nullopt;
  };

  constexpr size_t HeaderLen = 8 + 4 + 8 + 8 + 4 + 4;
  if (Bytes.size() < HeaderLen)
    return Reject("truncated header");
  if (std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0)
    return Reject("bad magic");
  ByteReader R(Bytes);
  std::string_view MagicBytes;
  (void)R.slice(MagicBytes, sizeof(Magic));
  uint32_t Version, RecordCount, HeaderCrc;
  uint64_t Hash, MaxSteps;
  (void)R.u32(Version);
  (void)R.u64(Hash);
  (void)R.u64(MaxSteps);
  (void)R.u32(RecordCount);
  (void)R.u32(HeaderCrc);
  if (ckptCrc32(Bytes.data(), HeaderLen - 4) != HeaderCrc)
    return Reject("header checksum mismatch");
  if (Version != CheckpointDiskVersion)
    return Reject("unsupported version");
  if (Hash != ExpectedHash)
    return Reject("stale program hash");
  if (MaxSteps != ExpectedMaxSteps)
    return Reject("step budget mismatch");

  std::vector<std::shared_ptr<const Checkpoint>> Out;
  Out.reserve(std::min<uint64_t>(RecordCount, R.remaining() / 9));
  std::shared_ptr<const Checkpoint> Prev;
  int64_t LastIndex = -1;
  for (uint32_t Rec = 0; Rec < RecordCount; ++Rec) {
    uint32_t Len, Crc;
    if (!R.u32(Len) || !R.u32(Crc))
      return Reject("truncated record frame");
    std::string_view Payload;
    if (!R.slice(Payload, Len))
      return Reject("record length past end of file");
    if (ckptCrc32(Payload.data(), Payload.size()) != Crc)
      return Reject("record checksum mismatch");
    ByteReader PR(Payload);
    uint8_t Kind;
    if (!PR.u8(Kind))
      return Reject("empty record");
    std::shared_ptr<Checkpoint> CP;
    if (Kind == 0) {
      CP = std::make_shared<Checkpoint>();
      if (!readCheckpoint(PR, Prog, *CP))
        return Reject("malformed keyframe");
    } else if (Kind == 1) {
      if (!Prev)
        return Reject("delta record with no keyframe base");
      CheckpointDelta D;
      if (!readCheckpointDelta(PR, Prog, *Prev, D))
        return Reject("malformed delta");
      CP = applyCheckpointDelta(*Prev, D);
    } else {
      return Reject("unknown record kind");
    }
    if (!PR.done())
      return Reject("trailing bytes in record");
    if (static_cast<int64_t>(CP->Index) <= LastIndex)
      return Reject("record indices not ascending");
    if (CP->StepCount > ExpectedMaxSteps)
      return Reject("snapshot past step budget");
    LastIndex = CP->Index;
    Prev = CP;
    Out.push_back(std::move(CP));
  }
  if (!R.done())
    return Reject("trailing bytes after last record");
  return Out;
}

std::optional<std::vector<std::shared_ptr<const Checkpoint>>>
eoe::interp::deserializeCheckpoints(std::string_view Bytes,
                                    const lang::Program &Prog,
                                    uint64_t ExpectedHash,
                                    uint64_t ExpectedMaxSteps,
                                    std::string *Error) {
  return decodeImpl(Bytes, Prog, ExpectedHash, ExpectedMaxSteps, Error);
}

//===----------------------------------------------------------------------===//
// CheckpointDiskStore
//===----------------------------------------------------------------------===//

std::string CheckpointDiskStore::fileNameFor(uint64_t ProgramHash,
                                             uint64_t MaxSteps) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "ckpt-%016llx-%llu.eoeckpt",
                static_cast<unsigned long long>(ProgramHash),
                static_cast<unsigned long long>(MaxSteps));
  return Buf;
}

std::string CheckpointDiskStore::pathFor(uint64_t ProgramHash,
                                         uint64_t MaxSteps) const {
  return (std::filesystem::path(Dir) / fileNameFor(ProgramHash, MaxSteps))
      .string();
}

size_t CheckpointDiskStore::load(SharedCheckpointStore &Shared,
                                 const lang::Program &Prog, uint64_t MaxSteps,
                                 support::StatsRegistry *Stats) {
  uint64_t Hash = SharedCheckpointStore::hashProgram(Prog);
  std::string Path = pathFor(Hash, MaxSteps);
  std::error_code Ec;
  if (!std::filesystem::exists(Path, Ec) || Ec)
    return 0; // Cold cache: not an error.
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    support::StatsRegistry::add(Stats, "verify.ckpt.disk_rejects");
    return 0;
  }
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof()) {
    support::StatsRegistry::add(Stats, "verify.ckpt.disk_rejects");
    return 0;
  }
  auto Decoded = deserializeCheckpoints(Bytes, Prog, Hash, MaxSteps);
  if (!Decoded) {
    support::StatsRegistry::add(Stats, "verify.ckpt.disk_rejects");
    return 0;
  }
  size_t Promoted = 0;
  for (const auto &CP : *Decoded)
    if (Shared.promote(CP, Hash, &Prog, MaxSteps, /*FromDisk=*/true))
      ++Promoted;
  support::StatsRegistry::add(Stats, "verify.ckpt.disk_loads", Promoted);
  return Promoted;
}

bool CheckpointDiskStore::save(const SharedCheckpointStore &Shared,
                               const lang::Program &Prog, uint64_t MaxSteps,
                               support::StatsRegistry *Stats) {
  uint64_t Hash = SharedCheckpointStore::hashProgram(Prog);
  auto Snapshots = Shared.snapshotsFor(Hash, &Prog, MaxSteps);
  if (Snapshots.empty())
    return true; // Nothing to persist; leave any previous cache alone.
  std::string Bytes = serializeCheckpoints(Snapshots, Prog, Hash, MaxSteps);
  if (Bytes.empty())
    return false;
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return false;
  std::string Path = pathFor(Hash, MaxSteps);
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out.good())
      return false;
  }
  // Atomic publish: readers see the old complete file or the new one,
  // never a half-written cache.
  std::filesystem::rename(Tmp, Path, Ec);
  if (Ec) {
    std::filesystem::remove(Tmp, Ec);
    return false;
  }
  support::StatsRegistry::add(Stats, "verify.ckpt.disk_write_bytes",
                              Bytes.size());
  return true;
}

CheckpointDiskStore::SweepResult
CheckpointDiskStore::sweep(uint64_t MaxBytes, std::chrono::seconds MaxTmpAge,
                           support::StatsRegistry *Stats) {
  namespace fs = std::filesystem;
  SweepResult R;
  std::error_code Ec;
  fs::directory_iterator It(Dir, Ec), End;
  if (Ec)
    return R; // Missing or unreadable directory: nothing to cap.

  struct Entry {
    fs::path Path;
    std::string Name;
    uint64_t Size = 0;
    fs::file_time_type MTime;
  };
  std::vector<Entry> Caches;
  const fs::file_time_type Now = fs::file_time_type::clock::now();
  auto Remove = [&](const fs::path &P, uint64_t Size) {
    std::error_code RmEc;
    if (!fs::remove(P, RmEc) || RmEc)
      return; // Lost a race or lack permission: fine, best-effort.
    ++R.Files;
    R.Bytes += Size;
  };

  for (; It != End; It.increment(Ec)) {
    if (Ec)
      break;
    std::error_code EntEc;
    if (!It->is_regular_file(EntEc) || EntEc)
      continue;
    std::string Name = It->path().filename().string();
    const bool IsTmp = Name.ends_with(".eoeckpt.tmp");
    const bool IsCache = !IsTmp && Name.starts_with("ckpt-") &&
                         Name.ends_with(".eoeckpt");
    if (!IsTmp && !IsCache)
      continue; // Foreign file sharing the directory: never ours to touch.
    uint64_t Size = It->file_size(EntEc);
    if (EntEc)
      continue;
    fs::file_time_type MTime = It->last_write_time(EntEc);
    if (EntEc)
      continue;
    if (IsTmp) {
      // A live writer's temp is seconds old; only debris from crashed
      // writers crosses the age threshold.
      if (Now - MTime > MaxTmpAge)
        Remove(It->path(), Size);
      continue;
    }
    Caches.push_back({It->path(), std::move(Name), Size, MTime});
  }

  uint64_t Total = 0;
  for (const Entry &E : Caches)
    Total += E.Size;
  if (Total > MaxBytes) {
    // Oldest first; equal mtimes (coarse filesystems) break by name so
    // every sweeper picks the same victims.
    std::sort(Caches.begin(), Caches.end(), [](const Entry &A, const Entry &B) {
      if (A.MTime != B.MTime)
        return A.MTime < B.MTime;
      return A.Name < B.Name;
    });
    for (const Entry &E : Caches) {
      if (Total <= MaxBytes)
        break;
      Remove(E.Path, E.Size);
      Total -= E.Size;
    }
  }

  if (R.Files) {
    support::StatsRegistry::add(Stats, "verify.ckpt.disk_sweep_files", R.Files);
    support::StatsRegistry::add(Stats, "verify.ckpt.disk_sweep_bytes", R.Bytes);
  }
  return R;
}
