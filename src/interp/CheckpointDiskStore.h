//===-- interp/CheckpointDiskStore.h - Persistent checkpoints ----*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk persistence for the cross-input SharedCheckpointStore, so a
/// later process over the same program starts its switched-run
/// verification warm instead of re-deriving every input-independent
/// snapshot. One cache file holds the snapshots of one
/// (program hash, step budget) validity key; the program-identity half of
/// the in-memory key is re-established at load time by rebinding each
/// frame's Function pointer through the loading session's Program.
///
/// File format (version 1, all integers little-endian, fixed width):
///
///   header   := magic[8]="EOECKPT\0" u32 version u64 programHash
///               u64 maxSteps u32 recordCount u32 headerCrc
///   record   := u32 payloadLen u32 payloadCrc payload[payloadLen]
///   payload  := u8 kind (0 = keyframe, 1 = delta) body
///
/// A keyframe body is a full serialized Checkpoint; a delta body is a
/// serialized CheckpointDelta applied against the previously decoded
/// checkpoint, mirroring the in-memory segment chains (keyframe +
/// chained ArrayDelta/PredMapDelta/CheckpointFrameDelta records). The
/// first record must be a keyframe and a fresh keyframe is emitted at
/// least every KeyframeInterval records or whenever the delta fails to
/// shrink, so decode cost stays bounded.
///
/// The loader is hardened: every read is bounds-checked, vector counts
/// are validated against the bytes remaining, header and per-record
/// CRC32 checksums must match, function ids and delta base frames must
/// resolve, and trailing garbage is rejected -- a truncated, bit-flipped
/// or version-skewed file yields a clean reject (load() counts it under
/// verify.ckpt.disk_rejects), never a crash or a wrong splice. Writes go
/// to a temp file renamed into place, so a crashed writer leaves either
/// the old cache or none.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_INTERP_CHECKPOINTDISKSTORE_H
#define EOE_INTERP_CHECKPOINTDISKSTORE_H

#include "interp/Checkpoint.h"

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace eoe {

namespace lang {
class Program;
}

namespace support {
class StatsRegistry;
}

namespace interp {

/// Cache file format version. Bump on any layout change; the loader
/// rejects every other value (the golden-file test under tests/golden/
/// turns silent format drift into an explicit bump).
inline constexpr uint32_t CheckpointDiskVersion = 1;

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over \p Len bytes. Exposed
/// for the fuzzer and tests; detects all single-bit and burst-below-32
/// corruptions of a record payload.
uint32_t ckptCrc32(const void *Data, size_t Len);

/// Serializes \p Snapshots (ascending by trace index, all captured from
/// runs of \p Prog) into the version-1 cache file format under the
/// (ProgramHash, MaxSteps) validity key. Frames reference \p Prog's
/// functions by id. Deterministic: equal snapshot lists produce equal
/// bytes (maps are emitted sorted).
std::string
serializeCheckpoints(const std::vector<std::shared_ptr<const Checkpoint>> &Snapshots,
                     const lang::Program &Prog, uint64_t ProgramHash,
                     uint64_t MaxSteps,
                     unsigned KeyframeInterval = DefaultKeyframeInterval);

/// Decodes a cache file image. Returns the snapshots (ascending by trace
/// index, frames rebound to \p Prog) or std::nullopt on any structural
/// problem: bad magic/version, checksum mismatch, truncation, oversized
/// counts, unknown record kinds, unresolvable function ids, delta records
/// without a base, stale ProgramHash or MaxSteps, trailing bytes. When
/// \p Error is non-null it receives a one-line reason.
std::optional<std::vector<std::shared_ptr<const Checkpoint>>>
deserializeCheckpoints(std::string_view Bytes, const lang::Program &Prog,
                       uint64_t ExpectedHash, uint64_t ExpectedMaxSteps,
                       std::string *Error = nullptr);

/// Directory of cache files, one per (program hash, step budget) key.
/// load() seeds a SharedCheckpointStore from the matching file; save()
/// atomically (write temp + rename) persists the store's entries for the
/// key. Both are best-effort: a missing directory or corrupt file never
/// fails the session, it only costs the warm start.
class CheckpointDiskStore {
public:
  explicit CheckpointDiskStore(std::string Dir) : Dir(std::move(Dir)) {}

  const std::string &directory() const { return Dir; }

  /// Cache file name for a validity key: "ckpt-<hash16>-<maxsteps>.eoeckpt".
  static std::string fileNameFor(uint64_t ProgramHash, uint64_t MaxSteps);
  std::string pathFor(uint64_t ProgramHash, uint64_t MaxSteps) const;

  /// Reads the cache file for (hashProgram(Prog), MaxSteps) and promotes
  /// every decoded snapshot into \p Shared under that key. Returns the
  /// number of snapshots promoted. Missing file: 0, no error. Corrupt
  /// file: 0, bumps verify.ckpt.disk_rejects. Promoted snapshots bump
  /// verify.ckpt.disk_loads and are tagged disk-origin in \p Shared so
  /// resumes from them count as verify.ckpt.disk_hits.
  size_t load(SharedCheckpointStore &Shared, const lang::Program &Prog,
              uint64_t MaxSteps, support::StatsRegistry *Stats = nullptr);

  /// Serializes \p Shared's snapshots for (hashProgram(Prog), MaxSteps)
  /// and renames them into place over any previous cache file. A store
  /// with no snapshots for the key writes nothing. Returns false only on
  /// an I/O failure. Written bytes bump verify.ckpt.disk_write_bytes.
  bool save(const SharedCheckpointStore &Shared, const lang::Program &Prog,
            uint64_t MaxSteps, support::StatsRegistry *Stats = nullptr);

  /// What one sweep() pass removed.
  struct SweepResult {
    size_t Files = 0;       ///< Cache + stale temp files deleted.
    uint64_t Bytes = 0;     ///< Bytes those files held.
  };

  /// Caps the cache directory: first deletes stale writer temp files
  /// ("*.eoeckpt.tmp" older than \p MaxTmpAge -- a live writer's temp is
  /// younger than any sane age, so the write-temp-then-rename discipline
  /// stays safe), then evicts cache files ("ckpt-*.eoeckpt")
  /// oldest-mtime-first until the survivors total at most \p MaxBytes.
  /// Only files matching those two patterns are ever touched; anything
  /// else sharing the directory (a crowded /tmp) is left alone. Ties on
  /// mtime break by file name so concurrent sweepers agree. Best-effort:
  /// unreadable entries are skipped, never an error. Deletions bump
  /// verify.ckpt.disk_sweep_files / verify.ckpt.disk_sweep_bytes.
  SweepResult sweep(uint64_t MaxBytes,
                    std::chrono::seconds MaxTmpAge = std::chrono::hours(1),
                    support::StatsRegistry *Stats = nullptr);

private:
  std::string Dir;
};

} // namespace interp
} // namespace eoe

#endif // EOE_INTERP_CHECKPOINTDISKSTORE_H
