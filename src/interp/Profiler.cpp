//===-- interp/Profiler.cpp - Test-suite profiling ---------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"

using namespace eoe;
using namespace eoe::interp;

bool UnionDependenceGraph::definesSomething(StmtId Def) const {
  auto It = Deps.lower_bound({Def, 0});
  return It != Deps.end() && It->first == Def;
}

void eoe::interp::accumulateTrace(Profile &P, const ExecutionTrace &Trace) {
  for (TraceIdx I = 0; I < Trace.Steps.size(); ++I) {
    const StepRecord &Step = Trace.Steps[I];
    for (const UseRecord &Use : Step.Uses) {
      if (!isValidId(Use.Def))
        continue;
      P.UnionDeps.addDataDep(Trace.Steps[Use.Def].Stmt, Use.LoadExpr);
    }
    for (const DefRecord &Def : Step.Defs)
      P.Values.addValue(Step.Stmt, Def.Value);
  }
  ++P.Runs;
}

Profile eoe::interp::profileTestSuite(
    const Interpreter &Interp, const lang::Program &Prog,
    const std::vector<std::vector<int64_t>> &Suite, uint64_t MaxStepsPerRun) {
  Profile P(Prog.statements().size());
  Interpreter::Options Opts;
  Opts.MaxSteps = MaxStepsPerRun;
  for (const auto &Input : Suite) {
    ExecutionTrace Trace = Interp.run(Input, Opts);
    accumulateTrace(P, Trace);
  }
  return P;
}
