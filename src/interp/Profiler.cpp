//===-- interp/Profiler.cpp - Test-suite profiling ---------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"

using namespace eoe;
using namespace eoe::interp;

bool UnionDependenceGraph::definesSomething(StmtId Def) const {
  auto It = Deps.lower_bound({Def, 0});
  return It != Deps.end() && It->first == Def;
}

void eoe::interp::accumulateTrace(Profile &P, const ExecutionTrace &Trace) {
  for (TraceIdx I = 0; I < Trace.Steps.size(); ++I) {
    const StepRecord &Step = Trace.Steps[I];
    for (const UseRecord &Use : Step.Uses) {
      if (!isValidId(Use.Def))
        continue;
      P.UnionDeps.addDataDep(Trace.Steps[Use.Def].Stmt, Use.LoadExpr);
    }
    for (const DefRecord &Def : Step.Defs)
      P.Values.addValue(Step.Stmt, Def.Value);
  }
  ++P.Runs;
}

Profile eoe::interp::profileTestSuite(
    const Interpreter &Interp, const lang::Program &Prog,
    const std::vector<std::vector<int64_t>> &Suite, const ProfileOptions &PO) {
  Profile P(Prog.statements().size());
  Interpreter::Options Opts;
  Opts.MaxSteps = PO.MaxStepsPerRun;

  // Checkpoint warming piggybacks on the suite's existing re-executions:
  // the first run's trace names the capture sites (its pre-input prefix
  // is shared by every run of the program), the second run is executed
  // with collection instrumentation attached. Captures land in a
  // throwaway local store; what matters is their promotion into Share.
  const bool Warm = PO.Share && PO.ShareMaxSteps > 0 && Suite.size() >= 2;
  CheckpointPlan Plan;
  std::unique_ptr<CheckpointStore> Local;

  for (size_t I = 0; I < Suite.size(); ++I) {
    Interpreter::Options RunOpts = Opts;
    if (I == 1 && Warm && !Plan.Sites.empty())
      RunOpts.Checkpoints = &Plan;
    ExecutionTrace Trace = Interp.run(Suite[I], RunOpts);
    accumulateTrace(P, Trace);
    if (I == 0 && Warm) {
      // Sites: predicate instances strictly before the first input()
      // read (so captures are input-independent on any run) and within
      // the shared key's step budget (so a resumed run never outlives
      // the budget it is keyed by).
      TraceIdx Limit = Trace.FirstInputStep == InvalidId
                           ? static_cast<TraceIdx>(Trace.size())
                           : Trace.FirstInputStep;
      if (PO.ShareMaxSteps < Limit)
        Limit = static_cast<TraceIdx>(PO.ShareMaxSteps);
      for (TraceIdx S = 0; S < Limit; ++S)
        if (Trace.step(S).isPredicateInstance())
          Plan.Sites.push_back(S);
      if (!Plan.Sites.empty()) {
        CheckpointStore::Options SO;
        SO.BudgetBytes = PO.ShareBudgetBytes;
        SO.DeltaEncode = true;
        Local = std::make_unique<CheckpointStore>(SO);
        Plan.Store = Local.get();
        Plan.AutoBudgetBytes = PO.ShareBudgetBytes;
        Plan.TraceLength = Trace.size();
        Plan.Share = PO.Share;
        Plan.ShareHash = SharedCheckpointStore::hashProgram(Prog);
        Plan.ShareProgram = &Prog;
        Plan.ShareMaxSteps = PO.ShareMaxSteps;
      }
    }
  }
  return P;
}

Profile eoe::interp::profileTestSuite(
    const Interpreter &Interp, const lang::Program &Prog,
    const std::vector<std::vector<int64_t>> &Suite, uint64_t MaxStepsPerRun) {
  ProfileOptions PO;
  PO.MaxStepsPerRun = MaxStepsPerRun;
  return profileTestSuite(Interp, Prog, Suite, PO);
}
