//===-- interp/TraceIO.cpp - Trace serialization --------------------------------===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//

#include "interp/TraceIO.h"

#include <sstream>

using namespace eoe;
using namespace eoe::interp;

namespace {

constexpr const char *Magic = "EOETRACE";
// Version 2 added the `firstinput` record (the input-independence
// watermark). Version-1 documents are still read: they predate the field,
// which then keeps its InvalidId default.
constexpr int Version = 2;
constexpr int MinVersion = 1;

const char *exitName(ExitReason Reason) {
  switch (Reason) {
  case ExitReason::Finished:
    return "finished";
  case ExitReason::StepLimit:
    return "steplimit";
  case ExitReason::RuntimeError:
    return "runtimeerror";
  }
  return "?";
}

bool parseExit(const std::string &Name, ExitReason &Out) {
  if (Name == "finished")
    Out = ExitReason::Finished;
  else if (Name == "steplimit")
    Out = ExitReason::StepLimit;
  else if (Name == "runtimeerror")
    Out = ExitReason::RuntimeError;
  else
    return false;
  return true;
}

bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

} // namespace

std::string eoe::interp::serializeTrace(const ExecutionTrace &Trace) {
  std::ostringstream OS;
  OS << Magic << ' ' << Version << '\n';
  OS << "exit " << exitName(Trace.Exit) << ' ' << Trace.ExitValue << '\n';
  OS << "switched ";
  if (Trace.SwitchedStep == InvalidId)
    OS << '-';
  else
    OS << Trace.SwitchedStep;
  OS << '\n';
  OS << "firstinput ";
  if (Trace.FirstInputStep == InvalidId)
    OS << '-';
  else
    OS << Trace.FirstInputStep;
  OS << '\n';

  OS << "steps " << Trace.Steps.size() << '\n';
  for (const StepRecord &Step : Trace.Steps) {
    OS << "s " << Step.Stmt << ' ';
    if (Step.CdParent == InvalidId)
      OS << '-';
    else
      OS << Step.CdParent;
    OS << ' ' << Step.InstanceNo << ' ' << static_cast<int>(Step.BranchTaken)
       << ' ' << Step.Value << ' ' << Step.Uses.size() << ' '
       << Step.Defs.size() << '\n';
    for (const UseRecord &Use : Step.Uses) {
      OS << "u " << Use.Loc.Raw << ' ';
      if (Use.Def == InvalidId)
        OS << '-';
      else
        OS << Use.Def;
      OS << ' ' << Use.LoadExpr << ' ';
      if (Use.Var == InvalidId)
        OS << '-';
      else
        OS << Use.Var;
      OS << ' ' << Use.Value << '\n';
    }
    for (const DefRecord &Def : Step.Defs) {
      OS << "d " << Def.Loc.Raw << ' ';
      if (Def.Var == InvalidId)
        OS << '-';
      else
        OS << Def.Var;
      OS << ' ' << Def.Value << '\n';
    }
  }

  OS << "outputs " << Trace.Outputs.size() << '\n';
  for (const OutputEvent &E : Trace.Outputs)
    OS << "o " << E.Step << ' ' << E.ArgNo << ' ' << E.ArgExpr << ' '
       << E.Value << '\n';
  return OS.str();
}

namespace {

/// Reads a uint32 field that may be the '-' sentinel.
bool readIdx(std::istream &IS, uint32_t &Out) {
  std::string Tok;
  if (!(IS >> Tok))
    return false;
  if (Tok == "-") {
    Out = InvalidId;
    return true;
  }
  char *End = nullptr;
  unsigned long Value = std::strtoul(Tok.c_str(), &End, 10);
  if (End == Tok.c_str() || *End != '\0')
    return false;
  Out = static_cast<uint32_t>(Value);
  return true;
}

} // namespace

std::optional<ExecutionTrace>
eoe::interp::deserializeTrace(const std::string &Text, std::string *Error) {
  std::istringstream IS(Text);
  std::string Word;
  int Ver = 0;
  if (!(IS >> Word >> Ver) || Word != Magic) {
    fail(Error, "bad header");
    return std::nullopt;
  }
  if (Ver < MinVersion || Ver > Version) {
    fail(Error, "unsupported version " + std::to_string(Ver));
    return std::nullopt;
  }

  ExecutionTrace Trace;
  std::string ExitWord;
  if (!(IS >> Word >> ExitWord >> Trace.ExitValue) || Word != "exit" ||
      !parseExit(ExitWord, Trace.Exit)) {
    fail(Error, "bad exit record");
    return std::nullopt;
  }
  if (!(IS >> Word) || Word != "switched" ||
      !readIdx(IS, Trace.SwitchedStep)) {
    fail(Error, "bad switched record");
    return std::nullopt;
  }
  if (Ver >= 2) {
    if (!(IS >> Word) || Word != "firstinput" ||
        !readIdx(IS, Trace.FirstInputStep)) {
      fail(Error, "bad firstinput record");
      return std::nullopt;
    }
  }

  size_t NumSteps = 0;
  if (!(IS >> Word >> NumSteps) || Word != "steps") {
    fail(Error, "bad steps header");
    return std::nullopt;
  }
  Trace.Steps.reserve(NumSteps);
  for (size_t I = 0; I < NumSteps; ++I) {
    StepRecord Step;
    int Branch = 0;
    size_t NumUses = 0, NumDefs = 0;
    if (!(IS >> Word) || Word != "s" || !readIdx(IS, Step.Stmt) ||
        !readIdx(IS, Step.CdParent) || !(IS >> Step.InstanceNo) ||
        !(IS >> Branch) || !(IS >> Step.Value) || !(IS >> NumUses) ||
        !(IS >> NumDefs)) {
      fail(Error, "bad step record " + std::to_string(I));
      return std::nullopt;
    }
    Step.BranchTaken = static_cast<int8_t>(Branch);
    if (Step.CdParent != InvalidId && Step.CdParent >= I) {
      fail(Error, "step " + std::to_string(I) + " parent out of order");
      return std::nullopt;
    }
    for (size_t U = 0; U < NumUses; ++U) {
      UseRecord Use;
      if (!(IS >> Word) || Word != "u" || !(IS >> Use.Loc.Raw) ||
          !readIdx(IS, Use.Def) || !readIdx(IS, Use.LoadExpr) ||
          !readIdx(IS, Use.Var) || !(IS >> Use.Value)) {
        fail(Error, "bad use record in step " + std::to_string(I));
        return std::nullopt;
      }
      Step.Uses.push_back(Use);
    }
    for (size_t D = 0; D < NumDefs; ++D) {
      DefRecord Def;
      if (!(IS >> Word) || Word != "d" || !(IS >> Def.Loc.Raw) ||
          !readIdx(IS, Def.Var) || !(IS >> Def.Value)) {
        fail(Error, "bad def record in step " + std::to_string(I));
        return std::nullopt;
      }
      Step.Defs.push_back(Def);
    }
    Trace.Steps.push_back(std::move(Step));
  }

  size_t NumOutputs = 0;
  if (!(IS >> Word >> NumOutputs) || Word != "outputs") {
    fail(Error, "bad outputs header");
    return std::nullopt;
  }
  for (size_t I = 0; I < NumOutputs; ++I) {
    OutputEvent E;
    if (!(IS >> Word) || Word != "o" || !readIdx(IS, E.Step) ||
        !(IS >> E.ArgNo) || !readIdx(IS, E.ArgExpr) || !(IS >> E.Value)) {
      fail(Error, "bad output record " + std::to_string(I));
      return std::nullopt;
    }
    if (E.Step != InvalidId && E.Step >= Trace.Steps.size()) {
      fail(Error, "output " + std::to_string(I) + " dangling step index");
      return std::nullopt;
    }
    Trace.Outputs.push_back(E);
  }

  if (Trace.FirstInputStep != InvalidId &&
      Trace.FirstInputStep >= Trace.Steps.size()) {
    fail(Error, "firstinput dangling step index");
    return std::nullopt;
  }

  // Use records may reference defining instances *later* in the trace
  // (call-site reads of return values), so validate them at the end.
  for (size_t I = 0; I < Trace.Steps.size(); ++I)
    for (const UseRecord &Use : Trace.Steps[I].Uses)
      if (Use.Def != InvalidId && Use.Def >= Trace.Steps.size()) {
        fail(Error, "step " + std::to_string(I) + " dangling def index");
        return std::nullopt;
      }
  return Trace;
}
