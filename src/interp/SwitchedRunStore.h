//===-- interp/SwitchedRunStore.h - Switched-run snapshot cache --*- C++ -*-===//
//
// Part of the EOE project, a reproduction of "Towards Locating Execution
// Omission Errors" (Zhang, Tallam, Gupta, Gupta; PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-input reuse of *switched* runs. CheckpointStore amortizes the
/// original-trace prefix of every switched run; this layer amortizes the
/// other two pieces of the run graph:
///
///  - SwitchedCapturePlan + SwitchedRunStore: during a switched run, the
///    engine keeps capturing checkpoints *past* the switch point, each
///    tagged with the run's divergence key (the ordered SwitchDecision
///    sequence applied so far). A later run requesting a decision
///    sequence that starts with a stored key resumes from the deepest
///    such snapshot -- its switched prefix is spliced from the capturing
///    run's trace exactly the way runFrom splices original prefixes.
///
///  - ReconvergePlan: probe sites on the *original* trace where a
///    switched run may have reconverged -- the original run's retained
///    checkpoints plus, per site, the relaxed state footprint the suffix
///    actually depends on. When the probe matches, the engine stops
///    interpreting and splices the rest of the original trace's steps and
///    outputs (suffix splicing). Site construction lives in
///    align/Reconverge.h because it walks the RegionTree; this header is
///    the pure data contract the engine consumes.
///
/// Determinism (the hard invariant: bit-identical results at any thread
/// count) shapes the store's API. True LRU admission is arrival-order-
/// dependent -- with a 15 MB budget and concurrent arrivals A(10 MB),
/// B(10 MB), C(4 MB), the retained set depends on which of A/B lands
/// first -- so the store is *two-phase*: runs stage() bundles in any
/// order, and a single-threaded seal() between sessions sorts the staged
/// multiset into a canonical order and admits greedily into the byte
/// budget. The sealed set is a pure function of the staged multiset, and
/// lookup() only ever sees sealed bundles, so cache hits (and the stats
/// keyed off them) are identical at any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef EOE_INTERP_SWITCHEDRUNSTORE_H
#define EOE_INTERP_SWITCHEDRUNSTORE_H

#include "interp/Checkpoint.h"
#include "interp/Trace.h"

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace eoe {
namespace interp {

/// Default byte budget for the switched-run snapshot cache (staged +
/// sealed bundles). 0 disables the feature everywhere.
inline constexpr size_t DefaultSwitchedCacheBytes = 64ull << 20;

/// Cap on reconvergence probe sites per original trace: the plan holds
/// decoded snapshots, so an uncapped plan over a delta-compressed store
/// could pin many times the store budget in raw bytes.
inline constexpr size_t MaxReconvergeSites = 256;

/// One reconvergence probe site: an original-run checkpoint plus the
/// relaxed footprint of the original trace's suffix from there.
struct ReconvergeSite {
  /// Original-run snapshot at the site (Divergence empty).
  std::shared_ptr<const Checkpoint> CP;
  /// Statement and instance number of the site's step record, and its
  /// dynamic control-dependence parent (the region identity: equal
  /// CdParent means the switched run sits in the same region instance of
  /// the RegionTree as the original did; see align/Reconverge.cpp).
  StmtId Stmt = InvalidId;
  uint32_t InstanceNo = 0;
  TraceIdx CdParent = InvalidId;
  /// Region depth of the site in the original RegionTree (diagnostics).
  uint32_t RegionDepth = 0;
  /// Bitset over StmtId: statements that execute in the original suffix
  /// [CP->Index, end). Instance counters must match only on these --
  /// counters of statements confined to the divergent region may differ
  /// without affecting the suffix.
  std::vector<uint64_t> SuffixStmts;
  /// Bitset over global slots read anywhere in the suffix. Global memory
  /// and last-def tables must match only on these ("store-state epoch
  /// check"); slots the suffix never reads are written before any use or
  /// not touched at all, so both runs rewrite them identically.
  std::vector<uint64_t> SuffixReads;
};

/// All probe sites for one original trace, ascending by CP->Index.
/// Built once per verifier session (align::buildReconvergePlan) and
/// shared read-only by every concurrent switched run.
struct ReconvergePlan {
  const ExecutionTrace *Original = nullptr;
  std::vector<ReconvergeSite> Sites;
};

/// Per-run instruction to capture divergence-keyed snapshots on a
/// switched/perturbed run. Owned by the caller (one per run; written by
/// the engine, so never shared between concurrent runs).
struct SwitchedCapturePlan {
  /// Minimum steps between captures, counted from the last applied
  /// decision (the prefix store already covers everything before it).
  uint64_t SpacingSteps = 2048;
  /// Hard cap per run.
  size_t MaxSnapshots = 8;

  /// Out-params: the captured snapshots (ascending by Index, Divergence
  /// set to the run's applied decisions) and sites skipped because a
  /// surrounding call was mid-expression.
  std::vector<std::shared_ptr<const Checkpoint>> Captured;
  size_t SkippedDirty = 0;
};

/// Thread-safe, deterministically admitted store of switched-run
/// snapshot bundles, keyed by (program, input, step budget) validity and
/// looked up by divergence key. See the file comment for why admission
/// is two-phase (stage/seal) rather than LRU-on-insert.
class SwitchedRunStore {
public:
  /// Validity key: bundles only serve runs of the same program (content
  /// hash + AST identity, mirroring SharedCheckpointStore) on the same
  /// input under the same step budget.
  struct ValidityKey {
    uint64_t ProgramHash = 0;
    const void *Program = nullptr;
    uint64_t InputHash = 0;
    uint64_t MaxSteps = 0;

    bool operator<(const ValidityKey &O) const {
      if (ProgramHash != O.ProgramHash)
        return ProgramHash < O.ProgramHash;
      if (Program != O.Program)
        return Program < O.Program;
      if (InputHash != O.InputHash)
        return InputHash < O.InputHash;
      return MaxSteps < O.MaxSteps;
    }
    bool operator==(const ValidityKey &O) const = default;
  };

  /// One capturing run's contribution: its divergence key, its trace
  /// trimmed to the deepest snapshot (the resume splice source), and the
  /// snapshots themselves (ascending by Index; every Divergence == Key).
  struct Bundle {
    std::vector<SwitchDecision> Key;
    std::shared_ptr<const ExecutionTrace> Prefix;
    std::vector<std::shared_ptr<const Checkpoint>> Snapshots;
  };

  /// A successful lookup: resume with Interpreter::runFrom(*CP, *Prefix).
  struct Hit {
    std::shared_ptr<const Checkpoint> CP;
    std::shared_ptr<const ExecutionTrace> Prefix;
  };

  explicit SwitchedRunStore(size_t BudgetBytes = DefaultSwitchedCacheBytes)
      : Budget(BudgetBytes) {}

  /// Queues \p B for the next seal(). Thread-safe; never visible to
  /// lookup() until sealed. Bundles with no snapshots are ignored.
  void stage(const ValidityKey &K, Bundle B);

  /// Rebuilds the sealed set from everything staged so far: sort by
  /// (validity key, earliest divergence step, divergence key), dedup by
  /// (validity key, divergence key) keeping the first, then admit
  /// greedily into the byte budget. Single canonical order => the sealed
  /// set is independent of staging order. Call from one thread between
  /// verification sessions. Returns the number of sealed bundles.
  size_t seal();

  /// Deepest sealed snapshot usable for \p Requested under \p K: its
  /// bundle's divergence key must be a prefix of \p Requested, and every
  /// decision *not* yet covered by the key must still be ahead of the
  /// snapshot (its instance counter below the decision's instance). On
  /// an equal-depth tie the longer key wins -- it covers more of the
  /// request. This longest-matching-prefix rule is what lets a depth-k
  /// chain's captures seed every depth-k+1 extension (docs/chains.md).
  /// Deterministic given the sealed set. Null before the first seal().
  std::optional<Hit> lookup(const ValidityKey &K,
                            const std::vector<SwitchDecision> &Requested);

  bool sealed() const;
  size_t stagedCount() const;
  size_t sealedCount() const;
  /// Bundles dropped by the last seal()'s byte budget.
  size_t droppedCount() const;
  /// Bytes retained by the sealed set.
  size_t bytes() const;
  size_t lookups() const;
  size_t hits() const;

  /// FNV-1a over the input vector: the input half of the validity key.
  static uint64_t hashInput(const std::vector<int64_t> &Input);
  /// Approximate resident size of a trace (the bundle byte accounting).
  static size_t traceBytes(const ExecutionTrace &T);

private:
  struct StagedBundle {
    ValidityKey K;
    Bundle B;
    size_t Bytes = 0;
  };

  mutable std::mutex M;
  /// deque: stage() keeps appending after seal(), and the sealed index
  /// holds pointers into this container -- addresses must be stable.
  std::deque<StagedBundle> Staged;
  std::map<ValidityKey, std::vector<const StagedBundle *>> Sealed;
  size_t Budget;
  bool SealedOnce = false;
  size_t SealedN = 0;
  size_t DroppedN = 0;
  size_t SealedBytes = 0;
  size_t Lookups = 0;
  size_t Hits = 0;
};

} // namespace interp
} // namespace eoe

#endif // EOE_INTERP_SWITCHEDRUNSTORE_H
